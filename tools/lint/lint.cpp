#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/parallel.h"

namespace uesr::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer.  Produces a token stream (identifiers, numbers, punctuation,
// whole preprocessor directives) with 1-based line numbers, plus the
// comment text attached to each line (for allow() suppressions and the
// ordered-reduce tag) and the set of lines that carry at least one token
// (a suppression on a comment-only line covers the line below it).
// Strings and character literals are consumed and dropped so banned
// tokens inside messages never fire.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kDirective };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 1;
};

struct Lexed {
  std::vector<Token> tokens;
  std::map<int, std::string> comment_on_line;  ///< line -> comment text
  std::set<int> token_lines;                   ///< lines with code tokens
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : s_(src) {}

  Lexed run() {
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }

  void add_comment(int line, const std::string& text) {
    auto& slot = out_.comment_on_line[line];
    if (!slot.empty()) slot += ' ';
    slot += text;
  }

  void emit(Token::Kind kind, std::string text) {
    out_.token_lines.insert(line_);
    out_.tokens.push_back(Token{kind, std::move(text), line_});
  }

  void line_comment() {
    const std::size_t start = i_ + 2;
    while (i_ < s_.size() && s_[i_] != '\n') ++i_;
    add_comment(line_, s_.substr(start, i_ - start));
  }

  void block_comment() {
    i_ += 2;
    std::size_t seg = i_;
    while (i_ + 1 < s_.size() && !(s_[i_] == '*' && s_[i_ + 1] == '/')) {
      if (s_[i_] == '\n') {
        add_comment(line_, s_.substr(seg, i_ - seg));
        ++line_;
        seg = i_ + 1;
      }
      ++i_;
    }
    add_comment(line_, s_.substr(seg, std::min(i_, s_.size()) - seg));
    i_ = std::min(i_ + 2, s_.size());
  }

  /// Consumes a whole preprocessor line (backslash continuations included)
  /// into one kDirective token; a trailing // comment is still recorded.
  void directive() {
    const int start_line = line_;
    std::string text;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          ++line_;
          ++i_;
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      text += c;
      ++i_;
    }
    const int saved = line_;
    line_ = start_line;
    emit(Token::Kind::kDirective, std::move(text));
    line_ = saved;
    at_line_start_ = true;
  }

  void string_literal() {
    ++i_;  // opening quote
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\\') {
        i_ += 2;
        continue;
      }
      if (c == '\n') ++line_;  // ill-formed, but keep line counts sane
      ++i_;
      if (c == '"') break;
    }
  }

  /// Raw string literal: the opening R" was consumed by identifier().
  void raw_string() {
    ++i_;  // the quote
    std::string delim;
    while (i_ < s_.size() && s_[i_] != '(') delim += s_[i_++];
    const std::string close = ")" + delim + "\"";
    const std::size_t end = s_.find(close, i_);
    const std::size_t stop = end == std::string::npos ? s_.size()
                                                      : end + close.size();
    for (std::size_t j = i_; j < stop && j < s_.size(); ++j)
      if (s_[j] == '\n') ++line_;
    i_ = stop;
  }

  void char_literal() {
    ++i_;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\\') {
        i_ += 2;
        continue;
      }
      ++i_;
      if (c == '\'') break;
    }
  }

  void number() {
    std::string text;
    while (i_ < s_.size() &&
           (ident_char(s_[i_]) || s_[i_] == '\'' ||
            ((s_[i_] == '+' || s_[i_] == '-') &&
             (peek(0) != '\0' && (s_[i_ - 1] == 'e' || s_[i_ - 1] == 'E' ||
                                  s_[i_ - 1] == 'p' || s_[i_ - 1] == 'P'))) ||
            s_[i_] == '.')) {
      text += s_[i_++];
    }
    emit(Token::Kind::kNumber, std::move(text));
  }

  void identifier() {
    std::string text;
    while (i_ < s_.size() && ident_char(s_[i_])) text += s_[i_++];
    // R"...(  /  u8R"...(  etc: a raw-string prefix, not an identifier.
    if (i_ < s_.size() && s_[i_] == '"' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
         text == "LR")) {
      raw_string();
      return;
    }
    if (i_ < s_.size() && s_[i_] == '"') {
      string_literal();  // encoding prefix (u8"...", L"...")
      return;
    }
    emit(Token::Kind::kIdent, std::move(text));
  }

  void punct() {
    // Only :: and -> are fused; every other punctuator is one character.
    if (s_[i_] == ':' && peek(1) == ':') {
      emit(Token::Kind::kPunct, "::");
      i_ += 2;
      return;
    }
    if (s_[i_] == '-' && peek(1) == '>') {
      emit(Token::Kind::kPunct, "->");
      i_ += 2;
      return;
    }
    emit(Token::Kind::kPunct, std::string(1, s_[i_]));
    ++i_;
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  Lexed out_;
};

// ---------------------------------------------------------------------------
// Path scoping helpers.  Paths are compared on forward-slash form; a
// "prefix" matches at the string start or after any '/' so both
// "src/util/rng.h" and "/abs/repo/src/util/rng.h" scope the same way.
// ---------------------------------------------------------------------------

std::string normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_under(const std::string& path, const std::string& prefix) {
  const std::string p = normalize(path);
  if (p.rfind(prefix, 0) == 0) return true;
  return p.find("/" + prefix) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Suppressions.  `// uesr-lint: allow(Rn) — reason` on the flagged line or
// on a comment-only line directly above.  `// uesr-lint: ordered-reduce —
// reason` is the R5 acknowledgement tag.  Anything else after `uesr-lint:`
// is an R0 diagnostic so typos cannot silently disable a rule.
// ---------------------------------------------------------------------------

struct Allows {
  std::map<int, std::set<std::string>> by_line;
  std::vector<Diagnostic> errors;  ///< R0: malformed directives
};

bool reason_ok(const std::string& text) {
  int alnum = 0;
  for (const char c : text)
    if (std::isalnum(static_cast<unsigned char>(c))) ++alnum;
  return alnum >= 3;
}

Allows parse_allows(const std::string& file, const Lexed& lx) {
  static const char kTag[] = "uesr-lint:";
  Allows out;
  for (const auto& [line, text] : lx.comment_on_line) {
    std::size_t pos = 0;
    while ((pos = text.find(kTag, pos)) != std::string::npos) {
      std::size_t p = pos + sizeof(kTag) - 1;
      pos = p;  // continue searching after this directive
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
      if (text.compare(p, 14, "ordered-reduce") == 0) continue;  // R5 tag
      if (text.compare(p, 6, "allow(") != 0) {
        out.errors.push_back(
            {file, line, "R0",
             "unknown uesr-lint directive (expected allow(Rn) or "
             "ordered-reduce)"});
        continue;
      }
      p += 6;
      const std::size_t close = text.find(')', p);
      if (close == std::string::npos) {
        out.errors.push_back({file, line, "R0", "unterminated allow("});
        continue;
      }
      std::string rule = text.substr(p, close - p);
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](char c) {
                                  return std::isspace(
                                      static_cast<unsigned char>(c));
                                }),
                 rule.end());
      const bool known = rule.size() == 2 && rule[0] == 'R' &&
                         rule[1] >= '1' && rule[1] <= '6';
      if (!known) {
        out.errors.push_back({file, line, "R0",
                              "allow() names unknown rule '" + rule + "'"});
        continue;
      }
      // Reason: everything after ')' up to the next directive (if any).
      std::size_t rbegin = close + 1;
      std::size_t rend = text.find(kTag, rbegin);
      if (rend == std::string::npos) rend = text.size();
      if (!reason_ok(text.substr(rbegin, rend - rbegin))) {
        out.errors.push_back(
            {file, line, "R0",
             "allow(" + rule + ") requires a reason after the paren"});
        continue;
      }
      out.by_line[line].insert(rule);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule scanner.
// ---------------------------------------------------------------------------

class Scanner {
 public:
  Scanner(const std::string& path, const Lexed& lx) : path_(path), lx_(lx) {}

  std::vector<Diagnostic> run() {
    rule1_banned_nondeterminism();
    rule2_raw_threading();
    rule3_pcg32_in_fanout();
    rule4_unordered_iteration();
    rule5_float_merge_untagged();
    rule6_missing_fresh();
    return std::move(out_);
  }

 private:
  const std::vector<Token>& toks() const { return lx_.tokens; }

  bool is(std::size_t i, const char* text) const {
    return i < toks().size() && toks()[i].text == text;
  }
  bool is_ident(std::size_t i) const {
    return i < toks().size() && toks()[i].kind == Token::Kind::kIdent;
  }
  bool prev_is_member_access(std::size_t i) const {
    return i > 0 && (toks()[i - 1].text == "." || toks()[i - 1].text == "->");
  }

  void emit(int line, const char* rule, std::string msg) {
    out_.push_back({path_, line, rule, std::move(msg)});
  }

  /// Index of the token matching the opener at `open` ("(" / "{"), or
  /// toks().size() when unmatched.  Parens and braces are balanced
  /// independently in well-formed code, so counting the opener's kind
  /// alone is sufficient.
  std::size_t match(std::size_t open) const {
    const std::string& o = toks()[open].text;
    const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t i = open; i < toks().size(); ++i) {
      if (toks()[i].text == o) ++depth;
      if (toks()[i].text == c && --depth == 0) return i;
    }
    return toks().size();
  }

  /// Matches a template argument list starting at `open` ("<").  Reliable
  /// for type argument lists (no comparison operators inside).
  std::size_t match_angle(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < toks().size(); ++i) {
      if (toks()[i].text == "<") ++depth;
      if (toks()[i].text == ">" && --depth == 0) return i;
    }
    return toks().size();
  }

  // R1 — banned nondeterminism sources.
  void rule1_banned_nondeterminism() {
    const bool in_src = path_under(path_, "src/");
    const bool in_util = path_under(path_, "src/util/");
    for (std::size_t i = 0; i < toks().size(); ++i) {
      if (!is_ident(i)) continue;
      const std::string& t = toks()[i].text;
      const int line = toks()[i].line;
      if ((t == "rand" || t == "srand") && is(i + 1, "(") &&
          !prev_is_member_access(i)) {
        emit(line, "R1",
             t + "() is banned — use util::Pcg32 seeded via counter_hash");
      } else if (t == "random_device") {
        emit(line, "R1",
             "std::random_device is banned — seeds must be explicit");
      } else if (t.rfind("mt19937", 0) == 0) {
        emit(line, "R1",
             "std::" + t + " is banned — use util::Pcg32 (seed-explicit)");
      } else if (t == "time" && is(i + 1, "(") && !prev_is_member_access(i) &&
                 (is(i + 2, "nullptr") || is(i + 2, "NULL") ||
                  is(i + 2, "0"))) {
        emit(line, "R1",
             "time(" + toks()[i + 2].text +
                 ") wall-clock seeding is banned — seeds must be explicit");
      } else if ((t == "steady_clock" || t == "system_clock" ||
                  t == "high_resolution_clock") &&
                 is(i + 1, "::") && is(i + 2, "now") && in_src) {
        emit(line, "R1",
             t + "::now() in library code breaks seed-purity — time in "
                 "bench/ via bench_common Timer");
      } else if (t == "getenv" && !in_util && !prev_is_member_access(i)) {
        emit(line, "R1",
             "getenv outside src/util/ — environment reads are resolved in "
             "util::resolve_threads only");
      }
    }
  }

  // R2 — raw threading primitives outside src/util/parallel.*.
  void rule2_raw_threading() {
    if (path_under(path_, "src/util/parallel.")) return;
    for (std::size_t i = 0; i < toks().size(); ++i) {
      if (toks()[i].kind == Token::Kind::kDirective) {
        const std::string& d = toks()[i].text;
        if (d.find("pragma") != std::string::npos &&
            d.find("omp") != std::string::npos) {
          emit(toks()[i].line, "R2",
               "#pragma omp outside util/parallel — fan out through "
               "util::ThreadPool");
        }
        continue;
      }
      if (!is_ident(i)) continue;
      const std::string& t = toks()[i].text;
      const bool std_qualified = i >= 2 && is(i - 1, "::") && is(i - 2, "std");
      if (t == "thread" && std_qualified && !is(i + 1, "::")) {
        emit(toks()[i].line, "R2",
             "raw std::thread outside util/parallel — use util::ThreadPool "
             "(ordered-merge determinism)");
      } else if ((t == "jthread" || t == "async") && std_qualified) {
        emit(toks()[i].line, "R2",
             "std::" + t + " outside util/parallel — use util::ThreadPool");
      } else if (t == "pthread_create") {
        emit(toks()[i].line, "R2",
             "pthread_create outside util/parallel — use util::ThreadPool");
      }
    }
  }

  // R3 — Pcg32 constructed inside a parallel fan-out extent with a seed
  // expression that never passes through counter_hash.
  void rule3_pcg32_in_fanout() {
    std::set<std::size_t> reported;
    for (std::size_t i = 0; i < toks().size(); ++i) {
      if (!is_ident(i)) continue;
      const std::string& t = toks()[i].text;
      if (t != "parallel_for" && t != "parallel_reduce" &&
          t != "parallel_prefix_search")
        continue;
      std::size_t open = i + 1;
      if (is(open, "<")) open = match_angle(open) + 1;  // explicit <T>
      if (!is(open, "(")) continue;
      const std::size_t close = match(open);
      for (std::size_t j = open + 1; j < close; ++j) {
        if (!is_ident(j) || toks()[j].text != "Pcg32") continue;
        if (reported.count(j)) continue;  // nested extents
        // Construction forms: `Pcg32 name(args)`, `Pcg32 name{args}`,
        // `Pcg32(args)` (temporary).  `Pcg32&` / `Pcg32*` / template
        // arguments are uses, not constructions.
        std::size_t argopen = j + 1;
        if (is_ident(argopen)) ++argopen;  // variable name
        if (!is(argopen, "(") && !is(argopen, "{")) continue;
        const std::size_t argclose = match(argopen);
        bool hashed = false;
        for (std::size_t k = argopen + 1; k < argclose; ++k)
          if (toks()[k].text == "counter_hash") hashed = true;
        if (!hashed) {
          reported.insert(j);
          emit(toks()[j].line, "R3",
               "Pcg32 inside a parallel fan-out must derive its seed via "
               "counter_hash(seed, index) — never a shared stream");
        }
      }
    }
  }

  // R4 — iteration over unordered containers (ordering-dependent output).
  void rule4_unordered_iteration() {
    // Pass A: names declared with an unordered_{map,set} type.
    std::set<std::string> tracked;
    for (std::size_t i = 0; i < toks().size(); ++i) {
      if (!is_ident(i)) continue;
      const std::string& t = toks()[i].text;
      if (t != "unordered_map" && t != "unordered_set" &&
          t != "unordered_multimap" && t != "unordered_multiset")
        continue;
      std::size_t j = i + 1;
      if (is(j, "<")) j = match_angle(j) + 1;
      if (is(j, "::")) continue;  // nested-type use, not a declaration
      while (is(j, "&") || is(j, "*") || is(j, "const")) ++j;  // declarator
      if (is_ident(j) && !is(j + 1, "(")) tracked.insert(toks()[j].text);
    }
    if (tracked.empty()) return;
    // Pass B: range-for over a tracked name, or explicit .begin() on one.
    for (std::size_t i = 0; i < toks().size(); ++i) {
      if (is(i, "for") && is(i + 1, "(")) {
        const std::size_t close = match(i + 1);
        // The range-for colon at the for-parens' own depth.
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          const std::string& t = toks()[j].text;
          if (t == "(" || t == "[" || t == "{") ++depth;
          if (t == ")" || t == "]" || t == "}") --depth;
          if (t == ":" && depth == 1) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_ident(j) && tracked.count(toks()[j].text)) {
            emit(toks()[i].line, "R4",
                 "range-for over unordered container '" + toks()[j].text +
                     "' — iteration order is unspecified; use an ordered "
                     "container or sort first");
            break;
          }
        }
      }
      if (is_ident(i) && tracked.count(toks()[i].text) &&
          (is(i + 1, ".") || is(i + 1, "->")) &&
          (is(i + 2, "begin") || is(i + 2, "cbegin") || is(i + 2, "rbegin")) &&
          is(i + 3, "(")) {
        emit(toks()[i].line, "R4",
             "iterating unordered container '" + toks()[i].text +
                 "' — order is unspecified; membership tests are fine");
      }
    }
  }

  // R5 — float/double in a parallel_reduce merge argument without the
  // ordered-reduce acknowledgement tag.
  void rule5_float_merge_untagged() {
    for (std::size_t i = 0; i < toks().size(); ++i) {
      if (!is_ident(i) || toks()[i].text != "parallel_reduce") continue;
      std::size_t open = i + 1;
      if (is(open, "<")) open = match_angle(open) + 1;
      if (!is(open, "(")) continue;
      const std::size_t close = match(open);
      // Final top-level argument: the combine callable.
      std::size_t last_comma = open;
      int depth = 0;
      for (std::size_t j = open; j < close; ++j) {
        const std::string& t = toks()[j].text;
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        if (t == "," && depth == 1) last_comma = j;
      }
      bool has_float = false;
      for (std::size_t j = last_comma + 1; j < close; ++j)
        if (is_ident(j) &&
            (toks()[j].text == "float" || toks()[j].text == "double"))
          has_float = true;
      if (!has_float) continue;
      bool tagged = false;
      const int first = toks()[i].line - 3;
      const int last = close < toks().size() ? toks()[close].line
                                             : toks()[i].line;
      for (int ln = first; ln <= last && !tagged; ++ln) {
        const auto it = lx_.comment_on_line.find(ln);
        if (it != lx_.comment_on_line.end() &&
            it->second.find("ordered-reduce") != std::string::npos)
          tagged = true;
      }
      if (!tagged) {
        const std::size_t at = last_comma == open ? open : last_comma + 1;
        emit(toks()[std::min(at + 1, close)].line, "R5",
             "float accumulation in a parallel_reduce merge — add a "
             "`// uesr-lint: ordered-reduce — <why>` tag acknowledging the "
             "in-order fold");
      }
    }
  }

  // R6 — *Scenario / *Plan classes must declare fresh().
  void rule6_missing_fresh() {
    for (std::size_t i = 0; i + 1 < toks().size(); ++i) {
      if (!is(i, "class") && !is(i, "struct")) continue;
      if (i > 0 && is(i - 1, "enum")) continue;
      if (!is_ident(i + 1)) continue;
      const std::string& name = toks()[i + 1].text;
      const bool shaped =
          (name.size() > 8 &&
           name.compare(name.size() - 8, 8, "Scenario") == 0) ||
          (name.size() > 4 && name.compare(name.size() - 4, 4, "Plan") == 0);
      if (!shaped) continue;
      // Find the body opener; a ';' first means a forward declaration.
      std::size_t j = i + 2;
      while (j < toks().size() && !is(j, "{") && !is(j, ";")) {
        if (is(j, "<")) j = match_angle(j);
        ++j;
      }
      if (!is(j, "{")) continue;
      const std::size_t end = match(j);
      bool has_fresh = false;
      for (std::size_t k = j + 1; k < end; ++k)
        if (is_ident(k) && toks()[k].text == "fresh" && is(k + 1, "("))
          has_fresh = true;
      if (!has_fresh) {
        emit(toks()[i].line, "R6",
             name + " has no fresh() — scenario/fault schedules must be "
                    "seed-pure and replayable (PR 4/8 convention)");
      }
    }
  }

  const std::string& path_;
  const Lexed& lx_;
  std::vector<Diagnostic> out_;
};

bool diag_less(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

}  // namespace

std::vector<Diagnostic> scan_source(const std::string& path,
                                    const std::string& content) {
  const Lexed lx = Lexer(content).run();
  const Allows allows = parse_allows(path, lx);
  std::vector<Diagnostic> out = Scanner(path, lx).run();

  // Apply per-line suppressions: the allow() may sit on the flagged line
  // or on a comment-only line directly above it.  R0 is never suppressed.
  auto allowed = [&](const Diagnostic& d) {
    auto has = [&](int line) {
      const auto it = allows.by_line.find(line);
      return it != allows.by_line.end() && it->second.count(d.rule) > 0;
    };
    if (has(d.line)) return true;
    return !lx.token_lines.count(d.line - 1) && has(d.line - 1);
  };
  out.erase(std::remove_if(out.begin(), out.end(), allowed), out.end());
  out.insert(out.end(), allows.errors.begin(), allows.errors.end());
  std::sort(out.begin(), out.end(), diag_less);
  return out;
}

const std::vector<std::string>& default_subdirs() {
  static const std::vector<std::string> kDirs = {"src", "bench", "tests",
                                                 "examples"};
  return kDirs;
}

std::vector<Diagnostic> scan_tree(const std::string& root,
                                  const std::vector<std::string>& subdirs,
                                  unsigned threads) {
  namespace fs = std::filesystem;
  // Collect (relative, absolute) pairs, then sort by relative path: the
  // scan order — and therefore the report — is a pure function of the
  // tree, not of directory-entry order.
  std::vector<std::pair<std::string, fs::path>> files;
  for (const auto& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::is_directory(dir))
      throw std::runtime_error("uesr-lint: not a directory: " + dir.string());
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp")
        continue;
      files.emplace_back(
          normalize(fs::relative(entry.path(), root).string()), entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  util::ThreadPool pool(threads);
  // uesr-lint: ordered-reduce — diagnostics merge in file order so the
  // report is bit-identical for any thread count (no floats here; the tag
  // documents the contract this tool itself enforces).
  return util::parallel_reduce<std::vector<Diagnostic>>(
      pool, files.size(), util::default_chunk(files.size(), pool.size()),
      std::vector<Diagnostic>{},
      [&](const util::ChunkRange& c) {
        std::vector<Diagnostic> part;
        for (std::uint64_t i = c.begin; i < c.end; ++i) {
          std::ifstream in(files[i].second, std::ios::binary);
          if (!in)
            throw std::runtime_error("uesr-lint: cannot read " +
                                     files[i].second.string());
          std::ostringstream buf;
          buf << in.rdbuf();
          auto diags = scan_source(files[i].first, buf.str());
          part.insert(part.end(), std::make_move_iterator(diags.begin()),
                      std::make_move_iterator(diags.end()));
        }
        return part;
      },
      [](std::vector<Diagnostic> acc, std::vector<Diagnostic> part) {
        acc.insert(acc.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
        return acc;
      });
}

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

}  // namespace uesr::lint
