// uesr_lint driver: scans the repo's C++ tree for determinism/invariant
// violations (rules R1–R6, lint/lint.h) and exits nonzero on any hit.
//
//   uesr_lint --root <repo> [--threads N] [subdir...]
//
// With no subdirs the default roots (src bench tests examples) are
// scanned.  Diagnostics print to stdout as `file:line: [Rn] message`,
// sorted by (file, line, rule) — deterministic across runs and thread
// counts.  Registered in ctest under the `lint` label (`ctest -L lint`).
#include <exception>
#include <iostream>

#include "lint/lint.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace uesr;
  try {
    util::Cli cli(argc, argv);
    if (cli.get_bool("help", false)) {
      std::cout << "usage: " << cli.program()
                << " [--root DIR] [--threads N] [subdir...]\n"
                   "scans DIR/{src,bench,tests,examples} (or the given "
                   "subdirs) for determinism-invariant violations\n";
      return 0;
    }
    const std::string root = cli.get("root", ".");
    const auto threads =
        static_cast<unsigned>(cli.get_int("threads", 0));
    std::vector<std::string> subdirs = cli.positional();
    if (subdirs.empty()) subdirs = lint::default_subdirs();

    const auto diags = lint::scan_tree(root, subdirs, threads);
    for (const auto& d : diags) std::cout << lint::format(d) << "\n";
    std::cerr << "uesr-lint: " << diags.size() << " diagnostic(s)\n";
    return diags.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
