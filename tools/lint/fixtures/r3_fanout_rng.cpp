// R3 fixture: a Pcg32 constructed inside a parallel fan-out must derive
// its seed through counter_hash (the shared-stream bug class PR 3
// eradicated).  Constructions outside fan-outs and per-index streams
// inside them are clean.  Never compiled.
#include "util/parallel.h"
#include "util/rng.h"

using uesr::util::ChunkRange;
using uesr::util::Pcg32;
using uesr::util::ThreadPool;

double fire_shared_stream(ThreadPool& pool, std::uint64_t seed) {
  return uesr::util::parallel_reduce<double>(
      pool, 100, 10, 0.0,
      [&](const ChunkRange& c) {
        Pcg32 rng(seed);                      // EXPECT(R3)
        double acc = 0;
        for (auto i = c.begin; i < c.end; ++i) acc += rng.next_double();
        return acc;
      },
      // uesr-lint: ordered-reduce — fixture: doubles merge in chunk order
      [](double a, double b) { return a + b; });
}

double clean_per_trial_stream(ThreadPool& pool, std::uint64_t seed) {
  return uesr::util::parallel_reduce<double>(
      pool, 100, 10, 0.0,
      [&](const ChunkRange& c) {
        double acc = 0;
        for (auto i = c.begin; i < c.end; ++i) {
          Pcg32 rng(uesr::util::counter_hash(seed, i));  // per-trial stream
          acc += rng.next_double();
        }
        return acc;
      },
      // uesr-lint: ordered-reduce — fixture: doubles merge in chunk order
      [](double a, double b) { return a + b; });
}

// Outside any fan-out a serial Pcg32(seed) is the normal idiom.
double clean_serial_use(std::uint64_t seed) {
  Pcg32 rng(seed);
  return rng.next_double();
}

void fire_in_parallel_for(ThreadPool& pool, std::uint64_t seed,
                          double* out) {
  uesr::util::parallel_for(pool, 64, 8, [&](const ChunkRange& c) {
    Pcg32 rng{seed};                          // EXPECT(R3)
    out[c.index] = rng.next_double();
  });
}

void allowed_shared_stream(ThreadPool& pool, std::uint64_t seed,
                           double* out) {
  uesr::util::parallel_for(pool, 64, 8, [&](const ChunkRange& c) {
    // uesr-lint: allow(R3) — fixture: lanes here are provably disjoint
    Pcg32 rng(seed ^ c.index);
    out[c.index] = rng.next_double();
  });
}

// References and temporaries that only USE an existing engine are clean.
void clean_reference_param(ThreadPool& pool, Pcg32& rng, double* out) {
  uesr::util::parallel_for(pool, 1, 1,
                           [&](const ChunkRange&) { out[0] = rng.next_double(); });
}
