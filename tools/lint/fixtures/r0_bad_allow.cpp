// R0 fixture: malformed suppressions are themselves diagnostics, so a
// typo can never silently disable a rule — and R0 is not suppressible.
// lint_test pins this file's expectations explicitly (EXPECT markers
// would read as reason text).  Expected: R0+R1 on each of the three
// malformed lines, nothing on the valid one.  Never compiled.
#include <cstdlib>

int unknown_rule() {
  return rand();  // uesr-lint: allow(R9) — no such rule
}

int missing_reason() {
  return rand();  // uesr-lint: allow(R1)
}

int unknown_directive() {
  return rand();  // uesr-lint: disable-next-line
}

int valid_suppression_still_works() {
  return rand();  // uesr-lint: allow(R1) — reason present, no R0 here
}
