// Clean fixture: the repo's idioms as written — seed-explicit Pcg32,
// per-trial counter_hash streams inside fan-outs, ordered containers in
// report paths, fresh() on scenario shapes.  Zero diagnostics expected.
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

using uesr::util::ChunkRange;
using uesr::util::Pcg32;
using uesr::util::ThreadPool;

// Serial seed-explicit RNG at the top of a pure function: the E2 idiom.
std::vector<std::uint32_t> draw_pairs(std::uint64_t seed, int n) {
  Pcg32 rng(seed);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.next_below(1000));
  return out;
}

// Fan-out with per-trial streams and an integer merge.
std::uint64_t count_hits(ThreadPool& pool, std::uint64_t seed) {
  return uesr::util::parallel_reduce<std::uint64_t>(
      pool, 1 << 12, 1 << 8, std::uint64_t{0},
      [&](const ChunkRange& c) {
        std::uint64_t part = 0;
        for (auto i = c.begin; i < c.end; ++i) {
          Pcg32 rng(uesr::util::counter_hash(seed, i));
          part += rng.next_double() < 0.5;
        }
        return part;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

// Ordered container in a report path: iteration order is the key order.
std::uint64_t histogram_sum(const std::map<int, int>& histogram) {
  std::uint64_t sum = 0;
  for (const auto& [k, v] : histogram) sum += static_cast<std::uint64_t>(v);
  return sum;
}

// A scenario shape with the replay contract.
class Tides2DScenario {
 public:
  explicit Tides2DScenario(std::uint64_t seed) : seed_(seed) {}
  std::unique_ptr<Tides2DScenario> fresh() const {
    return std::make_unique<Tides2DScenario>(seed_);
  }
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};
