// R6 fixture: classes shaped like scenarios or fault plans (*Scenario,
// *Plan) must expose fresh() — the seed-pure replay contract from PR 4
// (churn scenarios) and PR 8 (FaultPlan).  Never compiled.
#include <cstdint>
#include <memory>

struct BrownoutScenario {                     // EXPECT(R6)
  std::uint64_t seed = 0;
  void advance() {}
};

class OutagePlan {                            // EXPECT(R6)
 public:
  explicit OutagePlan(std::uint64_t seed) : seed_(seed) {}

 private:
  std::uint64_t seed_;
};

// The compliant shape: replayable via fresh().
class MeteorScenario {
 public:
  explicit MeteorScenario(std::uint64_t seed) : seed_(seed) {}
  std::unique_ptr<MeteorScenario> fresh() const {
    return std::make_unique<MeteorScenario>(seed_);
  }

 private:
  std::uint64_t seed_;
};

// Forward declarations and unrelated names never fire.
class EclipseScenario;
struct RoutePlanner {
  int plan = 0;
};
enum class FallbackPlan { kNone, kRetry };

// uesr-lint: allow(R6) — fixture: a stateless plan with nothing to replay
struct StaticPlan {
  static constexpr int kPhases = 3;
};
