// R2 fixture: raw threading primitives outside src/util/parallel.*.
// Queries on std::thread (hardware_concurrency, ::id) are allowed — they
// read topology, they do not spawn.  Never compiled.
#include <future>
#include <thread>
#include <vector>

void fire_spawns() {
  std::thread t([] {});                       // EXPECT(R2)
  std::jthread jt([] {});                     // EXPECT(R2)
  auto f = std::async([] { return 1; });      // EXPECT(R2)
  std::vector<std::thread> pool;              // EXPECT(R2)
  t.join();
  (void)f.get();
}

void fire_omp(int* data, int n) {
#pragma omp parallel for                      // EXPECT(R2)
  for (int i = 0; i < n; ++i) data[i] = i;
}

unsigned queries_are_fine() {
  std::thread::id nobody;
  (void)nobody;
  return std::thread::hardware_concurrency();
}

void allowed_spawn() {
  // uesr-lint: allow(R2) — fixture: a justified raw thread outside the pool
  std::thread t([] {});
  t.join();
}
