// R1 fixture: banned nondeterminism sources.  An EXPECT marker names the
// rule that must flag its line; the allow() lines must be suppressed.
// This file is lint-test data, never compiled.
#include <cstdlib>
#include <ctime>
#include <random>

int fire_rand() {
  ::srand(42);                                // EXPECT(R1)
  return rand() % 6;                          // EXPECT(R1)
}

unsigned fire_engines() {
  std::random_device rd;                      // EXPECT(R1)
  std::mt19937 gen(1234);                     // EXPECT(R1)
  std::mt19937_64 wide(1234);                 // EXPECT(R1)
  return gen() ^ static_cast<unsigned>(wide()) ^ rd();
}

long fire_wallclock_seed() {
  return time(nullptr) ^ time(0);             // EXPECT(R1) EXPECT(R1)
}

const char* fire_getenv() {
  return std::getenv("UESR_THREADS");         // EXPECT(R1)
}

int allowed_rand() {
  return rand();  // uesr-lint: allow(R1) — fixture proving suppression works
}

const char* allowed_getenv() {
  // uesr-lint: allow(R1) — preceding-comment-line form of the suppression
  return std::getenv("HOME");
}

// Banned tokens inside strings and comments must NOT fire: rand(),
// std::mt19937, time(nullptr).
const char* strings_are_stripped() {
  return "call rand() or std::random_device or time(0) here";
}

// A member named rand is not ::rand.
struct HasRandMember {
  int rand() { return 4; }  // uesr-lint: allow(R1) — declaration shares the banned name
  int use() { return this->rand(); }
};
