// R1 clock fixture: wall-clock reads are banned in src/ (library code must
// be a pure function of its seeds) but legitimate in bench/tests/examples
// (timing).  lint_test scans this content twice — once under a synthetic
// src/ path (the EXPECT markers apply) and once under a bench/ path
// (zero diagnostics).  Never compiled.
#include <chrono>

long fire_in_src_only() {
  auto a = std::chrono::steady_clock::now();            // EXPECT(R1)
  auto b = std::chrono::system_clock::now();            // EXPECT(R1)
  auto c = std::chrono::high_resolution_clock::now();   // EXPECT(R1)
  return (a - b).count() + c.time_since_epoch().count();
}

long allowed_in_src() {
  // uesr-lint: allow(R1) — fixture: a justified library-side clock read
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
