// R4 fixture: iterating a std::unordered_map / std::unordered_set makes
// output depend on hash-bucket order and breaks replay pinning.
// Membership tests (find/count/contains) and ordered containers are
// clean.  Never compiled.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::uint64_t fire_range_for(const std::unordered_map<int, int>& histogram) {
  std::uint64_t sum = 0;
  for (const auto& [k, v] : histogram) sum += k * v;  // EXPECT(R4)
  return sum;
}

std::uint64_t fire_begin(std::unordered_set<int> pending) {
  std::uint64_t first = 0;
  auto it = pending.begin();                          // EXPECT(R4)
  if (it != pending.end()) first = *it;
  return first;
}

bool clean_membership(const std::unordered_set<std::uint64_t>& cancelled,
                      std::uint64_t id) {
  return cancelled.find(id) != cancelled.end() || cancelled.count(id) > 0;
}

std::uint64_t clean_ordered(const std::map<int, int>& ordered) {
  std::uint64_t sum = 0;
  for (const auto& [k, v] : ordered) sum += k * v;
  return sum;
}

std::uint64_t allowed_iteration(const std::unordered_set<int>& alive) {
  std::uint64_t count = 0;
  // uesr-lint: allow(R4) — fixture: a count is order-independent
  for (int v : alive) count += v > 0;
  return count;
}
