// R5 fixture: a parallel_reduce whose merge (final) argument accumulates
// float/double must carry an `ordered-reduce` tag acknowledging that the
// result is only deterministic because the fold runs in chunk order.
// Integer merges and tagged merges are clean.  Never compiled.
#include <cstdint>

#include "util/parallel.h"

using uesr::util::ChunkRange;
using uesr::util::ThreadPool;

double fire_untagged(ThreadPool& pool) {
  return uesr::util::parallel_reduce<double>(
      pool, 1000, 100, 0.0,
      [](const ChunkRange& c) { return static_cast<double>(c.end - c.begin); },
      [](double acc, double part) { return acc + part; });  // EXPECT(R5)
}

double clean_tagged(ThreadPool& pool) {
  // uesr-lint: ordered-reduce — fp sums fold left-to-right in chunk order
  return uesr::util::parallel_reduce<double>(
      pool, 1000, 100, 0.0,
      [](const ChunkRange& c) { return static_cast<double>(c.end - c.begin); },
      [](double acc, double part) { return acc + part; });
}

std::uint64_t clean_integer_merge(ThreadPool& pool) {
  return uesr::util::parallel_reduce<std::uint64_t>(
      pool, 1000, 100, std::uint64_t{0},
      [](const ChunkRange& c) { return c.end - c.begin; },
      [](std::uint64_t acc, std::uint64_t part) { return acc + part; });
}

double allowed_untagged(ThreadPool& pool) {
  return uesr::util::parallel_reduce<double>(
      pool, 1000, 100, 0.0,
      [](const ChunkRange& c) { return static_cast<double>(c.end - c.begin); },
      // uesr-lint: allow(R5) — fixture: suppression instead of the tag
      [](double acc, double part) { return acc + part; });
}
