// uesr-lint: a token/AST-lite static-analysis pass enforcing the repo's
// written determinism invariants (DESIGN.md §5).
//
// Every guarantee this reproduction makes — sound certificates under
// loss/chaos, bit-identical reports for any thread/shard count,
// byte-identical replay traces — rests on conventions that used to live
// only as prose in CHANGES.md.  This tool machine-checks them:
//
//   R1  banned nondeterminism sources: rand()/srand(), std::random_device,
//       std::mt19937*, time(NULL/nullptr/0), wall-clock reads
//       (*_clock::now) inside src/ (library code must be a pure function
//       of its seeds; timing belongs in bench/), and getenv outside
//       src/util/ (UESR_THREADS is resolved in exactly one place).
//   R2  raw threading primitives (std::thread construction, std::jthread,
//       std::async, #pragma omp) outside src/util/parallel.* — all
//       fan-outs go through util::ThreadPool so the ordered-merge
//       determinism contract holds.  Queries like
//       std::thread::hardware_concurrency() are allowed.
//   R3  a Pcg32 constructed inside a parallel fan-out extent
//       (parallel_for / parallel_reduce / parallel_prefix_search call)
//       whose seed expression never passes through counter_hash — the
//       shared-stream bug class PR 3 eradicated.
//   R4  iteration (range-for, or .begin()) over a std::unordered_map /
//       std::unordered_set variable — ordering-dependent output breaks
//       replay pinning; membership tests (find/count/contains) are fine.
//   R5  float/double accumulation in the merge (final) argument of a
//       parallel_reduce call without an `ordered-reduce` comment tag
//       acknowledging that determinism rests on the in-order fold.
//   R6  a class/struct named *Scenario or *Plan with no fresh() method —
//       scenario/fault schedules must be seed-pure and replayable
//       (the PR 4 / PR 8 convention).
//
// Suppression is per-line and must carry a reason:
//
//   do_banned_thing();  // uesr-lint: allow(R1) — fixture exercising X
//
// The comment may sit on the flagged line or on a comment-only line
// directly above it.  An allow() with an unknown rule or a missing reason
// is itself a diagnostic (R0) and is not suppressible.
//
// The scanner is deliberately lexical (no libclang): it tokenizes C++,
// strips strings, records comments, and pattern-matches token sequences.
// That keeps it dependency-free and fast, at the cost of type blindness —
// rules are written so their false positives are rare and suppressible.
#pragma once

#include <string>
#include <vector>

namespace uesr::lint {

/// One finding.  `rule` is "R0".."R6"; `file` is the path as given to the
/// scanner (root-relative under scan_tree); `line` is 1-based.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Scans one in-memory translation unit.  `path` participates in the
/// path-scoped rules (R1 clock/getenv scoping, R2 parallel.* exemption),
/// so callers may pass a synthetic path to exercise them.  Diagnostics
/// come back sorted by (line, rule) and already filtered through the
/// per-line allow() suppressions found in `content`.
std::vector<Diagnostic> scan_source(const std::string& path,
                                    const std::string& content);

/// Recursively scans every *.h / *.hpp / *.cc / *.cpp file under
/// root/<subdir> for each subdir, in lexicographic path order, fanning the
/// per-file scans out over `threads` lanes (0 = resolve_threads default)
/// with the merge in path order — the diagnostic list is bit-identical
/// for any thread count.  Paths in diagnostics are root-relative.
/// Throws std::runtime_error when a subdir does not exist.
std::vector<Diagnostic> scan_tree(const std::string& root,
                                  const std::vector<std::string>& subdirs,
                                  unsigned threads = 0);

/// The default scan roots: src, bench, tests, examples.
const std::vector<std::string>& default_subdirs();

/// "file:line: [Rn] message" — the stable one-line rendering.
std::string format(const Diagnostic& d);

}  // namespace uesr::lint
