// Pins the uesr-lint rule engine against the fixture corpus: every rule
// R1–R6 both fires and is suppressible with a reasoned allow(), malformed
// suppressions surface as R0, path scoping works, and the tree scan is
// bit-identical for any thread count.
//
// Fixtures carry their own expectations: `// EXPECT(Rn)` marks a line the
// scanner must flag (multiple markers per line allowed); everything else
// must be clean.  The R0 fixture is the one exception — markers would
// read as allow() reason text — so its expectations are pinned here.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using uesr::lint::Diagnostic;
using uesr::lint::scan_source;
using uesr::lint::scan_tree;

using LineRule = std::pair<int, std::string>;

std::string fixture_path(const std::string& name) {
  return std::string(UESR_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Parses the `EXPECT(Rn)` markers: the (line, rule) multiset the scan
/// must produce exactly.
std::multiset<LineRule> expected_markers(const std::string& content) {
  std::multiset<LineRule> out;
  std::istringstream lines(content);
  std::string line;
  for (int ln = 1; std::getline(lines, line); ++ln) {
    std::size_t pos = 0;
    while ((pos = line.find("EXPECT(", pos)) != std::string::npos) {
      const std::size_t close = line.find(')', pos);
      if (close == std::string::npos) break;
      out.emplace(ln, line.substr(pos + 7, close - pos - 7));
      pos = close + 1;
    }
  }
  return out;
}

std::multiset<LineRule> as_line_rules(const std::vector<Diagnostic>& diags) {
  std::multiset<LineRule> out;
  for (const auto& d : diags) out.emplace(d.line, d.rule);
  return out;
}

/// Scans a fixture under `path` (the fixture name by default; synthetic
/// paths exercise the path-scoped rules) and checks the marker contract.
void check_fixture(const std::string& name, const std::string& path = "") {
  const std::string content = read_fixture(name);
  const auto diags = scan_source(path.empty() ? name : path, content);
  EXPECT_EQ(expected_markers(content), as_line_rules(diags)) << name;
}

TEST(LintRules, R1BannedNondeterminismFiresAndSuppresses) {
  check_fixture("r1_banned_rng.cpp");
}

TEST(LintRules, R1ClockReadsFireOnlyInLibraryCode) {
  const std::string content = read_fixture("r1_clock.cpp");
  // Under a src/ path the EXPECT markers apply...
  const auto in_src = scan_source("src/net/clock_probe.cpp", content);
  EXPECT_EQ(expected_markers(content), as_line_rules(in_src));
  // ...under bench/ (timing is legitimate there) the file is clean.
  EXPECT_TRUE(scan_source("bench/clock_probe.cpp", content).empty());
}

TEST(LintRules, R1GetenvAllowedOnlyInUtil) {
  const std::string snippet = "int f() { return std::getenv(\"X\") != 0; }\n";
  EXPECT_TRUE(scan_source("src/util/parallel.cpp", snippet).empty());
  const auto elsewhere = scan_source("src/core/route.cpp", snippet);
  ASSERT_EQ(elsewhere.size(), 1u);
  EXPECT_EQ(elsewhere[0].rule, "R1");
}

TEST(LintRules, R2RawThreadingFiresAndSuppresses) {
  check_fixture("r2_threading.cpp");
}

TEST(LintRules, R2ParallelHeaderIsExempt) {
  const std::string snippet = "std::thread t([]{}); std::async([]{});\n";
  EXPECT_TRUE(scan_source("src/util/parallel.h", snippet).empty());
  EXPECT_TRUE(scan_source("src/util/parallel.cpp", snippet).empty());
  EXPECT_FALSE(scan_source("src/core/traffic.cpp", snippet).empty());
}

TEST(LintRules, R3SharedStreamInFanoutFiresAndSuppresses) {
  check_fixture("r3_fanout_rng.cpp");
}

TEST(LintRules, R4UnorderedIterationFiresAndSuppresses) {
  check_fixture("r4_unordered.cpp");
}

TEST(LintRules, R5UntaggedFloatMergeFiresAndSuppresses) {
  check_fixture("r5_float_merge.cpp");
}

TEST(LintRules, R6ScenarioWithoutFreshFiresAndSuppresses) {
  check_fixture("r6_scenario.cpp");
}

TEST(LintRules, R0MalformedSuppressionsAreDiagnostics) {
  const std::string content = read_fixture("r0_bad_allow.cpp");
  const auto got = as_line_rules(scan_source("r0_bad_allow.cpp", content));
  // Three malformed allow lines: each yields the R0 plus the undimmed R1.
  const std::multiset<LineRule> want = {{9, "R0"},  {9, "R1"},
                                        {13, "R0"}, {13, "R1"},
                                        {17, "R0"}, {17, "R1"}};
  EXPECT_EQ(want, got);
}

TEST(LintRules, CleanFixtureIsClean) { check_fixture("clean.cpp"); }

TEST(LintEngine, BannedTokensInStringsAndCommentsDoNotFire) {
  EXPECT_TRUE(scan_source("src/x.cpp",
                          "// rand() std::mt19937 time(0)\n"
                          "const char* s = \"rand() time(0)\";\n"
                          "const char* r = R\"(std::random_device)\";\n")
                  .empty());
}

TEST(LintEngine, FormatIsStable) {
  EXPECT_EQ(uesr::lint::format({"src/a.cpp", 12, "R3", "msg"}),
            "src/a.cpp:12: [R3] msg");
}

TEST(LintEngine, TreeScanIsThreadCountInvariant) {
  const auto one = scan_tree(UESR_LINT_FIXTURE_DIR, {"."}, 1);
  const auto four = scan_tree(UESR_LINT_FIXTURE_DIR, {"."}, 4);
  const auto eight = scan_tree(UESR_LINT_FIXTURE_DIR, {"."}, 8);
  EXPECT_FALSE(one.empty());  // the corpus is designed to fire
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
  // Deterministic ordering: (file, line, rule) ascending.
  for (std::size_t i = 1; i < one.size(); ++i) {
    const auto key = [](const Diagnostic& d) {
      return std::make_tuple(d.file, d.line, d.rule, d.message);
    };
    EXPECT_LE(key(one[i - 1]), key(one[i]));
  }
}

TEST(LintEngine, RepeatedScansAreIdentical) {
  const std::string content = read_fixture("r1_banned_rng.cpp");
  EXPECT_EQ(scan_source("r1_banned_rng.cpp", content),
            scan_source("r1_banned_rng.cpp", content));
}

}  // namespace
