// Minimal command-line flag parser for examples and bench binaries.
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace uesr::util {

class Cli {
 public:
  /// Parses argv.  Unknown flags are kept and reported via unknown_flags();
  /// positional arguments are collected in order.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  std::string program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace uesr::util
