#include "util/rng.h"

#include <stdexcept>

namespace uesr::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next();
  state_ += seed;
  next();
}

std::uint32_t Pcg32::next() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  if (bound == 0) throw std::invalid_argument("Pcg32::next_below: bound == 0");
  // Lemire-style rejection for an unbiased draw.
  std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    std::uint32_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::next_double() {
  // 53 random bits into [0,1).
  std::uint64_t hi = next();
  std::uint64_t lo = next();
  std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

std::uint64_t Pcg32::next_u64() {
  std::uint64_t hi = next();
  std::uint64_t lo = next();
  return (hi << 32) | lo;
}

}  // namespace uesr::util
