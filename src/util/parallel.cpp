#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace uesr::util {

namespace {

/// The pool whose run() is currently executing on this thread, if any.
/// Lets a nested run() on the same pool fall back to an inline call
/// instead of deadlocking on its own busy workers.
thread_local const ThreadPool* t_active_pool = nullptr;

struct ActivePoolScope {
  const ThreadPool* prev;
  explicit ActivePoolScope(const ThreadPool* p) : prev(t_active_pool) {
    t_active_pool = p;
  }
  ~ActivePoolScope() { t_active_pool = prev; }
};

}  // namespace

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  if (const char* env = std::getenv("UESR_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return std::min(static_cast<unsigned>(v), kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) : lanes_(resolve_threads(threads)) {
  workers_.reserve(lanes_ - 1);
  for (unsigned lane = 1; lane < lanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_main(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    {
      ActivePoolScope scope(this);
      try {
        (*job)(lane);
      } catch (...) {
        std::lock_guard<std::mutex> lock(m_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(m_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(const std::function<void(unsigned)>& fn) {
  if (lanes_ == 1 || t_active_pool == this) {
    // Serial pool, or a nested run from one of our own jobs: inline call.
    fn(0);
    return;
  }
  // Serialize concurrent external callers (e.g. two application threads
  // both defaulting to shared_pool()): the second dispatch waits for the
  // first to drain instead of clobbering job_/remaining_/generation_.
  // The nested-run inline path above never reaches this lock.
  std::lock_guard<std::mutex> run_lock(run_m_);
  {
    std::lock_guard<std::mutex> lock(m_);
    job_ = &fn;
    error_ = nullptr;
    remaining_ = lanes_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  std::exception_ptr caller_error;
  {
    ActivePoolScope scope(this);
    try {
      fn(0);
    } catch (...) {
      caller_error = std::current_exception();
    }
  }
  std::unique_lock<std::mutex> lock(m_);
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (caller_error && !error_) error_ = caller_error;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool(0);
  return pool;
}

std::uint64_t default_chunk(std::uint64_t n, unsigned threads,
                            std::uint64_t min_chunk) {
  const std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(threads) * 8);
  return std::max<std::uint64_t>(std::max<std::uint64_t>(min_chunk, 1),
                                 (n + target - 1) / target);
}

void parallel_for(ThreadPool& pool, std::uint64_t n, std::uint64_t chunk,
                  const std::function<void(const ChunkRange&)>& body) {
  const std::uint64_t chunks = chunk_count(n, chunk);
  std::atomic<std::uint64_t> next{0};
  pool.run([&](unsigned) {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks) return;
      body({i, i * chunk, std::min(n, (i + 1) * chunk)});
    }
  });
}

}  // namespace uesr::util
