// Small statistics toolkit used by tests and benches: online moments,
// percentiles over stored samples, and least-squares fits (notably log-log
// slope fits, which the scaling experiments use to estimate polynomial
// exponents).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace uesr::util {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator). 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with percentile queries (stores all samples).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  /// Appends other's samples in their stored order — the deterministic
  /// chunk-order merge the parallel experiment drivers rely on.
  void add_all(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }
  std::size_t count() const { return values_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// p in [0,100]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y = slope*x + intercept.
/// Requires xs.size() == ys.size() >= 2 and nonzero x variance.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Fit y = C * x^slope by OLS in log-log space.  All inputs must be > 0.
/// The slope estimates the polynomial exponent of a scaling law.
LinearFit loglog_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace uesr::util
