#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace uesr::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double p) const {
  if (values_.empty()) throw std::logic_error("Samples::percentile: empty");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("Samples::percentile: p out of [0,100]");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("linear_fit: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("linear_fit: need >= 2 points");
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("linear_fit: zero x variance");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double e = ys[i] - (f.slope * xs[i] + f.intercept);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

LinearFit loglog_fit(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0)
      throw std::invalid_argument("loglog_fit: inputs must be positive");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return linear_fit(lx, ly);
}

}  // namespace uesr::util
