#include "util/cli.h"

#include <stdexcept>

namespace uesr::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  // Full-token parse: stoll alone would silently accept trailing garbage
  // ("--trials=100k" used to read as 100), so require every character to
  // be consumed.
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(it->second, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " is not an integer: " +
                                it->second);
  }
  if (consumed != it->second.size())
    throw std::invalid_argument("flag --" + name +
                                " has trailing characters: " + it->second);
  return value;
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " is not a number: " +
                                it->second);
  }
  if (consumed != it->second.size())
    throw std::invalid_argument("flag --" + name +
                                " has trailing characters: " + it->second);
  return value;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " is not a boolean: " + v);
}

}  // namespace uesr::util
