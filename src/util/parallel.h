// Deterministic parallelism primitives.
//
// The verification workloads (universality checks, certificates, experiment
// drivers) are embarrassingly parallel — independent labellings × start
// edges × trials — but their *reports* must not depend on how the work was
// scheduled.  The contract of everything in this header is therefore:
//
//   bit-identical results for any thread count.
//
// Achieved by three rules:
//   1. Work is split into *indexed chunks* of a range [0, n).  Chunks are
//      claimed by workers in any order via an atomic counter.
//   2. Per-chunk partial results are merged strictly in chunk-index order
//      on the calling thread (parallel_reduce / parallel_prefix_search), so
//      floating-point sums, sample orders, and witness selection are the
//      same as a serial left-to-right evaluation.
//   3. Randomized chunk bodies must derive their RNG from the chunk/trial
//      index alone — e.g. Pcg32(counter_hash(seed, index)) — never from a
//      shared stream, so sampled/adversarial regimes are thread-count
//      invariant (see rng.h).
//
// Early exit (searching for a counterexample) is deterministic too:
// parallel_prefix_search prunes chunks *above* the lowest hit so far, but
// every chunk below it still runs to completion, and merged output stops at
// the first hit in index order — exactly what a serial scan that stops at
// the first hit would have produced.
//
// A ThreadPool of size 1 never spawns a thread and runs every job inline on
// the caller: threads == 1 reproduces serial behaviour exactly, overhead
// included.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace uesr::util {

/// Sanity ceiling on worker lanes (spawning more OS threads than this is
/// never a sane request for these workloads; callers clamp rather than
/// crash mid-spawn).
inline constexpr unsigned kMaxThreads = 4096;

/// Number of worker lanes to use: `requested` when nonzero, else the
/// UESR_THREADS environment variable when set to a positive integer, else
/// std::thread::hardware_concurrency() (minimum 1).  Results are clamped
/// to kMaxThreads.
unsigned resolve_threads(unsigned requested = 0);

/// Small fixed thread pool.  The calling thread participates as lane 0, so
/// a pool of size k owns k-1 OS threads and a pool of size 1 owns none.
/// run() dispatched from inside one of the pool's own jobs degrades to an
/// inline serial call instead of deadlocking (results are identical by the
/// determinism contract; only the parallelism is lost).
class ThreadPool {
 public:
  /// threads == 0 resolves via resolve_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return lanes_; }

  /// Executes fn(lane) once per lane (0 .. size()-1), blocking until every
  /// lane returns.  The first exception thrown by any lane is rethrown.
  /// Safe to call from multiple application threads: concurrent dispatches
  /// serialize (one job drains before the next starts), so sharing
  /// shared_pool() across threads degrades throughput, never correctness.
  void run(const std::function<void(unsigned)>& fn);

 private:
  void worker_main(unsigned lane);

  unsigned lanes_;
  std::vector<std::thread> workers_;

  std::mutex run_m_;  ///< serializes external run() callers
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

/// Process-wide pool sized resolve_threads(0), created on first use.  The
/// verification layer uses it when the caller does not request an explicit
/// thread count, so repeated checks do not respawn threads.
ThreadPool& shared_pool();

/// One indexed chunk of a range [0, n): item indices [begin, end).
struct ChunkRange {
  std::uint64_t index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Number of chunks a range of n items splits into at the given chunk size.
inline std::uint64_t chunk_count(std::uint64_t n, std::uint64_t chunk) {
  return n == 0 ? 0 : (n + chunk - 1) / chunk;
}

/// A chunk size that aims at ~8 chunks per lane (load balance) without
/// dropping below `min_chunk` items (amortizing per-chunk setup).  Chunk
/// geometry never affects merged results — only scheduling granularity.
std::uint64_t default_chunk(std::uint64_t n, unsigned threads,
                            std::uint64_t min_chunk = 1);

/// Runs body over every chunk of [0, n), any order, no result.  Use only
/// when the body's effects are order-independent (e.g. disjoint writes).
void parallel_for(ThreadPool& pool, std::uint64_t n, std::uint64_t chunk,
                  const std::function<void(const ChunkRange&)>& body);

/// Deterministic early-exit fan-out.  map(ChunkRange) -> R is evaluated per
/// chunk on any lane; hit(R) marks a chunk that found what the caller is
/// searching for.  Returns the results of chunks 0..k in index order, where
/// k is the lowest hit chunk (all chunks when none hits).  Chunks above the
/// lowest known hit are pruned when they have not started; results computed
/// above the winning chunk are discarded.  The output is identical to a
/// serial left-to-right scan stopping at its first hit, for any pool size.
template <typename R, typename Map, typename Hit>
std::vector<R> parallel_prefix_search(ThreadPool& pool, std::uint64_t n,
                                      std::uint64_t chunk, Map&& map,
                                      Hit&& hit) {
  const std::uint64_t chunks = chunk_count(n, chunk);
  std::vector<std::optional<R>> slots(chunks);
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> bound{chunks};  // lowest chunk index known to hit
  pool.run([&](unsigned) {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks) return;
      // Prune strictly above the bound: the bound only ever decreases, and
      // only to indices of actual hits, so every chunk at or below the
      // final bound is guaranteed to run.
      if (i > bound.load(std::memory_order_acquire)) continue;
      const ChunkRange r{i, i * chunk, std::min(n, (i + 1) * chunk)};
      R part = map(r);
      if (hit(static_cast<const R&>(part))) {
        std::uint64_t b = bound.load(std::memory_order_relaxed);
        while (i < b &&
               !bound.compare_exchange_weak(b, i, std::memory_order_release)) {
        }
      }
      slots[i] = std::move(part);
    }
  });
  std::vector<R> out;
  out.reserve(chunks);
  for (std::uint64_t i = 0; i < chunks; ++i) {
    out.push_back(std::move(*slots[i]));
    if (hit(static_cast<const R&>(out.back()))) break;
  }
  return out;
}

/// Deterministic ordered reduction: acc = combine(acc, map(chunk_i)) folded
/// in chunk-index order on the calling thread.  Bit-identical for any pool
/// size (floating point included).
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::uint64_t n, std::uint64_t chunk,
                  T init, Map&& map, Combine&& combine) {
  auto parts = parallel_prefix_search<T>(pool, n, chunk,
                                         std::forward<Map>(map),
                                         [](const T&) { return false; });
  T acc = std::move(init);
  for (auto& p : parts) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace uesr::util
