// Deterministic, seed-explicit random number generation.
//
// Everything in this library that uses randomness takes an explicit 64-bit
// seed; there is no global RNG state (C++ Core Guidelines I.2).  Two engines
// are provided:
//
//  * SplitMix64 — a tiny stateful engine used to seed/derive streams.
//  * Pcg32      — the main stateful engine for simulations.
//  * counter_hash / CounterRng — *stateless* draws: the k-th value is a pure
//    function of (seed, k).  This mirrors the paper's requirement that the
//    i-th symbol of an exploration sequence be recomputable on demand in
//    O(log n) space, without storing the stream.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace uesr::util {

/// SplitMix64 (Steele, Lea, Flood).  Passes BigCrush; used for seeding.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix: a high-quality 64-bit hash of (seed, counter).
/// The same (seed, counter) pair always yields the same value.
/// Inline so block evaluation (ExplorationSequence::fill) pipelines the
/// independent per-counter hashes instead of paying a call per element.
inline std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t counter) {
  // Two rounds of SplitMix-style finalization over a seed/counter blend.
  std::uint64_t z = seed ^ (counter * 0x9e3779b97f4a7c15ULL) ^
                    0xd1b54a32d192ed03ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  // Second round keyed differently so (seed, k) and (seed ^ x, k') collisions
  // do not line up trivially.
  z += seed;
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

/// PCG32 (O'Neill): small, fast, statistically strong 32-bit generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  std::uint32_t next();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// std::uniform_random_bit_generator interface (for std::shuffle etc.)
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Stateless counter-based generator: value(k) is a pure function of
/// (seed, k).  Suitable for modelling log-space-recomputable streams.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t value(std::uint64_t k) const { return counter_hash(seed_, k); }

  /// k-th draw reduced to [0, bound).  bound must be > 0.  The tiny modulo
  /// bias (< 2^-32 for bound <= 2^32) is irrelevant for our uses.
  std::uint32_t value_below(std::uint64_t k, std::uint32_t bound) const {
    if (bound == 0)
      throw std::invalid_argument("CounterRng::value_below: bound == 0");
    // Multiply-shift reduction of the high 32 bits; bias < bound / 2^32.
    std::uint64_t v = value(k) >> 32;
    return static_cast<std::uint32_t>((v * bound) >> 32);
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace uesr::util
