// Markdown/CSV table emitter for the benchmark harness.  Every experiment
// binary prints its results as a table whose rows mirror the experiment
// index in DESIGN.md §4, so bench output can be diffed against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace uesr::util {

/// Column-aligned table.  Cells are strings; helpers format numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row.  Calls to `cell` fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(bool value);

  /// Any integer type.
  template <typename T>
    requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
  Table& cell(T value) {
    return cell(std::to_string(value));
  }

  std::size_t row_count() const { return rows_.size(); }

  /// GitHub-flavoured markdown rendering with aligned pipes.
  std::string to_markdown() const;
  /// RFC-4180-ish CSV (no quoting of commas; our cells never contain them).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision, trimming trailing zeros.
std::string format_double(double value, int precision);

}  // namespace uesr::util
