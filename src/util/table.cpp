#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace uesr::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
  if (!rows_.empty() && rows_.back().size() != headers_.size())
    throw std::logic_error("Table::row: previous row incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("Table::cell: call row() first");
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("Table::cell: row already full");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(bool value) { return cell(std::string(value ? "yes" : "no")); }

std::string Table::to_markdown() const {
  if (!rows_.empty() && rows_.back().size() != headers_.size())
    throw std::logic_error("Table::to_markdown: last row incomplete");
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells,
                      std::ostringstream& os) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << " " << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  emit_row(headers_, os);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& r : rows_) emit_row(r, os);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_markdown(); }

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace uesr::util
