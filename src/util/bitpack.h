// Bit-level size accounting for the O(log n) space claims (Theorem 1),
// plus packed fixed-width storage.
//
// The paper bounds two quantities: the message-header overhead and the
// per-node working space, both O(log n) where n is the namespace size.  The
// width helpers compute exact bit widths so benches/tests can verify the
// bound with real numbers rather than hand-waving.
//
// PackedArray turns those widths into storage: a flat array of w-bit
// unsigned entries packed into 64-bit words.  The motivating consumer is
// graph::Graph's 3-regular fast path, whose far-end ports fit 2 bits each —
// packing them quarters the port storage of a million-gadget reduced graph
// and keeps the whole array cache-resident under the multi-walk stepping
// kernel (DESIGN.md §2.13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uesr::util {

/// Number of bits needed to represent values in [0, v] (bit_width(v), >= 1).
int bits_for_value(std::uint64_t v);

/// Number of bits needed to index a set of `count` items ([0, count-1]).
/// By convention 0 for empty/singleton sets (no information needed).
int bits_for_count(std::uint64_t count);

/// ceil(log2(v)) for v >= 1.
int ceil_log2(std::uint64_t v);

/// floor(log2(v)) for v >= 1.
int floor_log2(std::uint64_t v);

/// Fixed-width packed unsigned storage: `size` entries of `width` bits each
/// (1 <= width <= 57), packed little-endian into 64-bit words.  Entries may
/// straddle a word boundary; get() is branch-light and inline because the
/// hot consumers (rotation-map lookups) call it once per walk step.
///
/// The width cap of 57 guarantees an entry spans at most two words, which
/// keeps the straddle path a single extra load.  Values wider than the
/// width are masked on set() (callers that care should range-check first).
class PackedArray {
 public:
  PackedArray() = default;
  /// Zero-initialized array of `size` w-bit entries.
  PackedArray(int width, std::size_t size);

  std::size_t size() const { return size_; }
  int width() const { return width_; }
  bool empty() const { return size_ == 0; }

  /// Entry i, zero-extended to 64 bits.  Precondition: i < size().
  std::uint64_t get(std::size_t i) const {
    const std::size_t bit = i * static_cast<std::size_t>(width_);
    const std::size_t word = bit >> 6;
    const unsigned shift = static_cast<unsigned>(bit & 63);
    std::uint64_t v = words_[word] >> shift;
    if (shift + static_cast<unsigned>(width_) > 64)
      v |= words_[word + 1] << (64 - shift);
    return v & mask_;
  }

  /// Stores value & ((1 << width) - 1) at entry i.  Precondition: i < size().
  void set(std::size_t i, std::uint64_t value);

  /// Heap bytes of the packed words — the number the memory-lean claims in
  /// DESIGN.md §2.13 are stated over.
  std::size_t byte_size() const { return words_.size() * sizeof(std::uint64_t); }

  /// The word holding entry i's low bits — a prefetch target only (the
  /// multi-walk kernel's sweeps warm it a slot ahead of get()).
  const std::uint64_t* word_of(std::size_t i) const {
    return words_.data() + ((i * static_cast<std::size_t>(width_)) >> 6);
  }

  friend bool operator==(const PackedArray&, const PackedArray&) = default;

 private:
  int width_ = 0;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
  /// One spare word so the straddle read in get() never runs off the end.
  std::vector<std::uint64_t> words_;
};

}  // namespace uesr::util
