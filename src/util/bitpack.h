// Bit-level size accounting for the O(log n) space claims (Theorem 1).
//
// The paper bounds two quantities: the message-header overhead and the
// per-node working space, both O(log n) where n is the namespace size.  The
// helpers here compute exact bit widths so benches/tests can verify the
// bound with real numbers rather than hand-waving.
#pragma once

#include <cstdint>

namespace uesr::util {

/// Number of bits needed to represent values in [0, v] (bit_width(v), >= 1).
int bits_for_value(std::uint64_t v);

/// Number of bits needed to index a set of `count` items ([0, count-1]).
/// By convention 0 for empty/singleton sets (no information needed).
int bits_for_count(std::uint64_t count);

/// ceil(log2(v)) for v >= 1.
int ceil_log2(std::uint64_t v);

/// floor(log2(v)) for v >= 1.
int floor_log2(std::uint64_t v);

}  // namespace uesr::util
