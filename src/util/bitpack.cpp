#include "util/bitpack.h"

#include <bit>
#include <stdexcept>

namespace uesr::util {

int bits_for_value(std::uint64_t v) {
  if (v == 0) return 1;
  return std::bit_width(v);
}

int bits_for_count(std::uint64_t count) {
  if (count <= 1) return 0;
  return std::bit_width(count - 1);
}

int ceil_log2(std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("ceil_log2: v == 0");
  return std::bit_width(v - 1);
}

int floor_log2(std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("floor_log2: v == 0");
  return std::bit_width(v) - 1;
}

PackedArray::PackedArray(int width, std::size_t size)
    : width_(width),
      mask_(width >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << width) - 1),
      size_(size) {
  if (width < 1 || width > 57)
    throw std::invalid_argument("PackedArray: width must be in [1, 57]");
  const std::size_t bits = size * static_cast<std::size_t>(width);
  // +1 spare word: get()'s unconditional-looking straddle load may touch
  // word+1 for the last entry.
  words_.assign((bits + 63) / 64 + 1, 0);
}

void PackedArray::set(std::size_t i, std::uint64_t value) {
  value &= mask_;
  const std::size_t bit = i * static_cast<std::size_t>(width_);
  const std::size_t word = bit >> 6;
  const unsigned shift = static_cast<unsigned>(bit & 63);
  words_[word] = (words_[word] & ~(mask_ << shift)) | (value << shift);
  if (shift + static_cast<unsigned>(width_) > 64) {
    const unsigned spill = 64 - shift;
    words_[word + 1] =
        (words_[word + 1] & ~(mask_ >> spill)) | (value >> spill);
  }
}

}  // namespace uesr::util
