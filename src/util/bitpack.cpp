#include "util/bitpack.h"

#include <bit>
#include <stdexcept>

namespace uesr::util {

int bits_for_value(std::uint64_t v) {
  if (v == 0) return 1;
  return std::bit_width(v);
}

int bits_for_count(std::uint64_t count) {
  if (count <= 1) return 0;
  return std::bit_width(count - 1);
}

int ceil_log2(std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("ceil_log2: v == 0");
  return std::bit_width(v - 1);
}

int floor_log2(std::uint64_t v) {
  if (v == 0) throw std::invalid_argument("floor_log2: v == 0");
  return std::bit_width(v) - 1;
}

}  // namespace uesr::util
