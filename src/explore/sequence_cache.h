// Process-wide cache of immutable exploration sequences.
//
// ExplorationSequence objects are stateless and immutable (sequence.h), so
// two sessions asking for "the standard T_n at (seed, size bound)" have no
// reason to hold distinct objects.  Before this cache, every multiplexed
// caller rebuilt its own: route_adaptive constructed a fresh standard_ues
// per call, every DynamicRouteSession rebuilt one per epoch restart, and a
// traffic engine admitting a thousand sessions over one topology would
// have built a thousand identical T_n.  SequenceCache keys on
// (family, seed, size bound) and hands every hit the *identical* object
// (shared_ptr to one instance) — sharing is observable as pointer equality,
// which is also how the tests pin the cached/fresh bit-identity.
//
// Thread-safe: lookups may race from parallel session lanes
// (core::TrafficEngine steps sessions over a thread pool).  The hit path —
// what a million concurrent sessions hammer — takes only a shared lock, so
// readers proceed in parallel; a miss upgrades to the exclusive lock,
// re-checks, and builds, so a key is still built exactly once.  Hit/miss
// counters are relaxed atomics (they are statistics, not synchronization).
// Cached sequences are never evicted — entries are a few dozen bytes
// (counter-based families store no symbols) — but clear() exists for tests
// and long-lived processes that sweep many one-off bounds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::explore {

class SequenceCache {
 public:
  /// The standard_ues() family, cached: same (n, seed) -> the same object
  /// every time, bit-identical to a freshly built standard_ues(n, seed).
  std::shared_ptr<const ExplorationSequence> standard(graph::NodeId n,
                                                      std::uint64_t seed);

  /// Generic keyed lookup: returns the cached sequence for
  /// (family, seed, size_bound), invoking build() only on a miss.  The
  /// builder must be a pure function of the key (same key -> semantically
  /// identical sequence), or the cache would change behaviour.
  std::shared_ptr<const ExplorationSequence> get(
      const std::string& family, graph::NodeId size_bound,
      std::uint64_t seed,
      const std::function<std::shared_ptr<const ExplorationSequence>()>&
          build);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

  /// The process-wide instance every library-internal caller shares.
  static SequenceCache& global();

 private:
  struct Key {
    std::string family;
    std::uint64_t seed;
    graph::NodeId size_bound;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.family != b.family) return a.family < b.family;
      if (a.seed != b.seed) return a.seed < b.seed;
      return a.size_bound < b.size_bound;
    }
  };

  mutable std::shared_mutex m_;
  std::map<Key, std::shared_ptr<const ExplorationSequence>> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Shorthand for SequenceCache::global().standard(n, seed) — the drop-in
/// cached equivalent of standard_ues(n, seed).
std::shared_ptr<const ExplorationSequence> cached_standard_ues(
    graph::NodeId n, std::uint64_t seed = 0x5eed0001);

}  // namespace uesr::explore
