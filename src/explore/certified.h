// Certified universal exploration sequences.
//
// Reingold's Theorem 4 supplies, for every n, a deterministically
// constructed sequence T_n that is provably universal for 3-regular graphs
// of size <= n.  Its constants are astronomically impractical (see
// DESIGN.md §3), so this module produces concrete sequences whose universality
// is *certified by enumeration* instead of by theorem:
//
//   corpus(n) = all isomorphism classes of connected simple cubic graphs
//               with <= n vertices (exhaustive catalogue, self-checked
//               against OEIS A002851)
//             ∪ all tiny cubic multigraphs with loops/parallel edges
//               (hand-enumerated for 1-2 vertices, plus the outputs of
//               degree reduction on small graphs — precisely the loop
//               patterns the router walks in practice)
//
// For each corpus member the candidate sequence is checked over every port
// labelling and start edge when the labelling space is small enough
// (exhaustive certificate), and over sampled + adversarial labellings
// otherwise.  Candidates are drawn from the seeded pseudorandom family at
// doubling lengths until one passes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "explore/sequence.h"
#include "explore/universal.h"
#include "graph/graph.h"

namespace uesr::explore {

/// All 3-regular multigraphs on 1 and 2 vertices (half loops, full loops,
/// parallel edges), plus the 3-vertex triangle-with-half-loops that degree
/// reduction produces for isolated vertices.
std::vector<graph::Graph> tiny_cubic_multigraphs();

/// The certification corpus for size n (see file comment).
std::vector<graph::Graph> certification_corpus(graph::NodeId n,
                                               std::uint64_t seed);

enum class CertLevel {
  kExhaustive,   ///< every labelling × every start edge, whole corpus
  kAdversarial,  ///< sampled + hill-climbed labellings (graphs too big for
                 ///  exhaustive labelling enumeration)
};

struct Certificate {
  CertLevel level = CertLevel::kAdversarial;
  std::uint64_t graphs_checked = 0;
  std::uint64_t labelings_checked = 0;
  std::uint64_t walks_checked = 0;
};

struct CertifiedUes {
  std::shared_ptr<const ExplorationSequence> sequence;
  Certificate certificate;
};

/// Smallest (by doubling) pseudorandom sequence certified universal for
/// size n.  `exhaustive_labeling_limit` bounds the labelling space a graph
/// may have to be checked exhaustively (default 6^6).  `threads` fans the
/// per-graph universality checks out over a util::ThreadPool (0 = default
/// resolution; 1 = serial); the certificate is thread-count invariant.
CertifiedUes find_certified_ues(graph::NodeId n, std::uint64_t seed,
                                std::uint64_t exhaustive_labeling_limit =
                                    46656,
                                unsigned threads = 0);

/// Verifies an arbitrary sequence against the corpus; returns false on
/// refutation (with nothing else — use check_universal_* directly for the
/// witness).  Corpus graphs are checked in order with each graph's
/// labelling/trial space fanned out over `threads` workers, so the
/// certificate counts are identical for any thread count.
bool certify_sequence(const ExplorationSequence& seq, graph::NodeId n,
                      std::uint64_t seed, Certificate& out,
                      std::uint64_t exhaustive_labeling_limit = 46656,
                      unsigned threads = 0);

}  // namespace uesr::explore
