// Degree reduction to 3-regular graphs (paper Fig. 1, after Koucký).
//
// Every vertex v of G becomes a cycle of c(v) = max(deg(v), 3) gadget
// vertices in G'; gadget j carries the original's j-th port as its
// "external" connection.  Port convention at every gadget vertex:
//
//     port 0 — cycle predecessor
//     port 1 — cycle successor
//     port 2 — external edge (the original edge), or a half-loop when the
//              original vertex had degree < 3 (padding)
//
// The result is exactly 3-regular, preserves connectivity component-wise,
// and its size is Σ max(deg v, 3) <= 2|E| + 3|V| — linear in the input and
// in particular "at most squaring" as the paper remarks.
//
// Routing operates on G'; the maps below translate between the two worlds
// (a message reaches original t when it reaches *any* gadget of t).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace uesr::explore {

struct ReducedGraph {
  graph::Graph cubic;  ///< the 3-regular graph G'

  /// gadget vertex -> its original vertex.
  std::vector<graph::NodeId> original_of;
  /// original vertex -> id of its gadget 0.
  std::vector<graph::NodeId> first_gadget;
  /// original vertex -> number of gadget vertices (cycle length).
  std::vector<graph::NodeId> gadget_count;

  /// The gadget vertex of original v that carries v's original port p.
  graph::NodeId gadget(graph::NodeId v, graph::Port p) const;

  /// Any canonical gadget for v (gadget 0) — where routing starts/ends.
  graph::NodeId entry_gadget(graph::NodeId v) const;

  /// True if gadget vertex gv belongs to original v.
  bool belongs_to(graph::NodeId gv, graph::NodeId v) const;
};

/// Builds G' from G.  Works for any multigraph including loops.
ReducedGraph reduce_to_cubic(const graph::Graph& g);

}  // namespace uesr::explore
