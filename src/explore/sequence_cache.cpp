#include "explore/sequence_cache.h"

namespace uesr::explore {

std::shared_ptr<const ExplorationSequence> SequenceCache::standard(
    graph::NodeId n, std::uint64_t seed) {
  return get("standard", n, seed, [&] { return standard_ues(n, seed); });
}

std::shared_ptr<const ExplorationSequence> SequenceCache::get(
    const std::string& family, graph::NodeId size_bound, std::uint64_t seed,
    const std::function<std::shared_ptr<const ExplorationSequence>()>&
        build) {
  std::lock_guard<std::mutex> lock(m_);
  auto [it, inserted] =
      entries_.try_emplace(Key{family, seed, size_bound}, nullptr);
  if (inserted) {
    ++misses_;
    // Built under the lock so a key is built exactly once; builders are
    // cheap (counter-based families store no symbols).
    try {
      it->second = build();
    } catch (...) {
      entries_.erase(it);  // never cache a failed build as a null hit
      throw;
    }
  } else {
    ++hits_;
  }
  return it->second;
}

std::size_t SequenceCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return entries_.size();
}

std::uint64_t SequenceCache::hits() const {
  std::lock_guard<std::mutex> lock(m_);
  return hits_;
}

std::uint64_t SequenceCache::misses() const {
  std::lock_guard<std::mutex> lock(m_);
  return misses_;
}

void SequenceCache::clear() {
  std::lock_guard<std::mutex> lock(m_);
  entries_.clear();
  hits_ = misses_ = 0;
}

SequenceCache& SequenceCache::global() {
  static SequenceCache cache;
  return cache;
}

std::shared_ptr<const ExplorationSequence> cached_standard_ues(
    graph::NodeId n, std::uint64_t seed) {
  return SequenceCache::global().standard(n, seed);
}

}  // namespace uesr::explore
