#include "explore/sequence_cache.h"

#include <mutex>

namespace uesr::explore {

std::shared_ptr<const ExplorationSequence> SequenceCache::standard(
    graph::NodeId n, std::uint64_t seed) {
  return get("standard", n, seed, [&] { return standard_ues(n, seed); });
}

std::shared_ptr<const ExplorationSequence> SequenceCache::get(
    const std::string& family, graph::NodeId size_bound, std::uint64_t seed,
    const std::function<std::shared_ptr<const ExplorationSequence>()>&
        build) {
  const Key key{family, seed, size_bound};
  {
    // Hit path: shared lock only, so concurrent lanes read in parallel.  A
    // null value is never visible here — entries are inserted and built
    // while the exclusive lock is held.
    std::shared_lock<std::shared_mutex> lock(m_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(m_);
  auto [it, inserted] = entries_.try_emplace(key, nullptr);
  if (!inserted) {
    // Lost the upgrade race: another thread built it between our locks.
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Built under the exclusive lock so a key is built exactly once; builders
  // are cheap (counter-based families store no symbols).
  try {
    it->second = build();
  } catch (...) {
    entries_.erase(it);  // never cache a failed build as a null hit
    throw;
  }
  return it->second;
}

std::size_t SequenceCache::size() const {
  std::shared_lock<std::shared_mutex> lock(m_);
  return entries_.size();
}

std::uint64_t SequenceCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t SequenceCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

void SequenceCache::clear() {
  std::unique_lock<std::shared_mutex> lock(m_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

SequenceCache& SequenceCache::global() {
  static SequenceCache cache;
  return cache;
}

std::shared_ptr<const ExplorationSequence> cached_standard_ues(
    graph::NodeId n, std::uint64_t seed) {
  return SequenceCache::global().standard(n, seed);
}

}  // namespace uesr::explore
