// Exploration sequences (paper §2).
//
// An exploration sequence is a stream of integer "directions" t_1, t_2, …:
// entering vertex v through port p, the walk leaves through port
// (p + t_i) mod deg(v).  The central object of the paper is a *universal*
// exploration sequence (UES) — one whose walk covers every connected
// 3-regular graph of size <= n, for every port labelling and start edge
// (Definition 3).
//
// The interface deliberately exposes only `symbol(i)` as a pure function of
// the index: this models the log-space requirement of Theorem 4 — a node
// holding just the O(log n)-bit index i can recompute t_i from scratch,
// storing nothing else.  Implementations must be stateless and
// deterministic.
//
// Families provided:
//  * RandomExplorationSequence — seeded counter-based pseudorandom symbols.
//    By the probabilistic argument in §2, almost every sequence of length
//    O(n^2 log n) over {0,1,2} is universal for 3-regular graphs of size n;
//    a fixed seed gives a concrete deterministic sequence that plays the
//    role of Reingold's T_n at practical lengths.  (See DESIGN.md §3 for the
//    substitution record — Reingold's construction itself is reproduced in
//    src/reingold as the derandomization engine.)
//  * FixedExplorationSequence — explicit symbol vector; used for the
//    exhaustively *certified* universal sequences over the cubic catalogue.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace uesr::explore {

/// Port offset; applied modulo the degree of the current vertex.
using Symbol = std::uint32_t;

class ExplorationSequence {
 public:
  virtual ~ExplorationSequence() = default;

  /// Number of symbols; the routing algorithm walks exactly this many steps
  /// before declaring failure.
  virtual std::uint64_t length() const = 0;

  /// The i-th symbol, 1-based (i in [1, length()]).  Pure and stateless:
  /// the same i always yields the same symbol.
  virtual Symbol symbol(std::uint64_t i) const = 0;

  /// Bulk evaluation: writes symbols i_begin .. i_begin + count - 1
  /// (1-based; the range must lie within [1, length()]) into out.
  /// Semantically identical to calling symbol() element-wise — `fill` is a
  /// pure function of the index range, so the log-space model is intact: a
  /// node recomputes any window from scratch and stores nothing between
  /// calls.  Overridden by the concrete families to amortize the virtual
  /// dispatch over a whole block; the default loops over symbol().
  virtual void fill(std::uint64_t i_begin, std::uint64_t count,
                    Symbol* out) const;

  /// The graph size this sequence targets (it aims to cover all connected
  /// 3-regular graphs with at most this many vertices).
  virtual graph::NodeId target_size() const = 0;

  virtual std::string name() const = 0;
};

/// Deterministic pseudorandom sequence over {0, .., alphabet-1}.
class RandomExplorationSequence final : public ExplorationSequence {
 public:
  RandomExplorationSequence(std::uint64_t seed, std::uint64_t length,
                            graph::NodeId target_size, Symbol alphabet = 3);

  std::uint64_t length() const override { return length_; }
  Symbol symbol(std::uint64_t i) const override;
  void fill(std::uint64_t i_begin, std::uint64_t count,
            Symbol* out) const override;
  graph::NodeId target_size() const override { return target_size_; }
  std::string name() const override;

  std::uint64_t seed() const { return rng_.seed(); }

 private:
  util::CounterRng rng_;
  std::uint64_t length_;
  graph::NodeId target_size_;
  Symbol alphabet_;
};

/// Explicit symbol vector.
class FixedExplorationSequence final : public ExplorationSequence {
 public:
  FixedExplorationSequence(std::vector<Symbol> symbols,
                           graph::NodeId target_size, std::string name);

  std::uint64_t length() const override { return symbols_.size(); }
  Symbol symbol(std::uint64_t i) const override;
  void fill(std::uint64_t i_begin, std::uint64_t count,
            Symbol* out) const override;
  graph::NodeId target_size() const override { return target_size_; }
  std::string name() const override { return name_; }

  const std::vector<Symbol>& symbols() const { return symbols_; }

 private:
  std::vector<Symbol> symbols_;
  graph::NodeId target_size_;
  std::string name_;
};

/// Forward block cursor over a sequence: hands out symbols i, i+1, ... with
/// one virtual fill() per kBlock symbols instead of one virtual symbol()
/// per step.  Purely an access-pattern optimisation — the values returned
/// are exactly seq.symbol(i) element-wise.  Throws std::out_of_range when
/// advanced past length().
class SymbolStream {
 public:
  static constexpr std::size_t kBlock = 1024;

  explicit SymbolStream(const ExplorationSequence& seq,
                        std::uint64_t first = 1)
      : seq_(&seq), next_(first) {}

  /// The symbol at the cursor; advances by one.
  Symbol next() {
    if (pos_ == avail_) refill();
    return buf_[pos_++];
  }

 private:
  void refill();

  const ExplorationSequence* seq_;
  std::uint64_t next_;  ///< next index to fetch into the buffer
  std::size_t pos_ = 0;
  std::size_t avail_ = 0;
  /// Geometric ramp (doubling up to kBlock): short walks pay for the
  /// symbols they use, long walks amortize to full blocks.
  std::size_t next_block_ = 64;
  std::vector<Symbol> buf_;
};

/// Length of the library-default pseudorandom T_n: c * n^2 * (log2(n)+1),
/// comfortably above the O(n^2)-ish random-walk cover time of 3-regular
/// graphs cited in §2 [Feige '93, Lovász '96].
std::uint64_t default_ues_length(graph::NodeId n);

/// The library-default T_n used by the router when none is supplied.
std::shared_ptr<const ExplorationSequence> standard_ues(
    graph::NodeId n, std::uint64_t seed = 0x5eed0001);

}  // namespace uesr::explore
