#include "explore/degree_reduce.h"

#include <stdexcept>

namespace uesr::explore {

using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

NodeId ReducedGraph::gadget(NodeId v, Port p) const {
  if (v >= first_gadget.size())
    throw std::invalid_argument("ReducedGraph::gadget: bad vertex");
  if (p >= gadget_count[v])
    throw std::invalid_argument("ReducedGraph::gadget: bad port");
  return first_gadget[v] + p;
}

NodeId ReducedGraph::entry_gadget(NodeId v) const {
  if (v >= first_gadget.size())
    throw std::invalid_argument("ReducedGraph::entry_gadget: bad vertex");
  return first_gadget[v];
}

bool ReducedGraph::belongs_to(NodeId gv, NodeId v) const {
  if (gv >= original_of.size())
    throw std::invalid_argument("ReducedGraph::belongs_to: bad gadget");
  return original_of[gv] == v;
}

ReducedGraph reduce_to_cubic(const graph::Graph& g) {
  ReducedGraph r;
  const NodeId n = g.num_nodes();
  r.first_gadget.resize(n);
  r.gadget_count.resize(n);
  NodeId total = 0;
  for (NodeId v = 0; v < n; ++v) {
    r.first_gadget[v] = total;
    r.gadget_count[v] = std::max<NodeId>(g.degree(v), 3);
    total += r.gadget_count[v];
  }
  r.original_of.resize(total);
  for (NodeId v = 0; v < n; ++v)
    for (NodeId j = 0; j < r.gadget_count[v]; ++j)
      r.original_of[r.first_gadget[v] + j] = v;

  // Build the 3-regular rotation map directly in flat CSR form: gadget
  // vertex gv's half-edges live at half[3*gv + port].
  std::vector<HalfEdge> half(3 * static_cast<std::size_t>(total));
  // Gadget cycles: port 1 of gadget j meets port 0 of gadget j+1 (mod c).
  for (NodeId v = 0; v < n; ++v) {
    NodeId base = r.first_gadget[v];
    NodeId c = r.gadget_count[v];
    for (NodeId j = 0; j < c; ++j) {
      NodeId cur = base + j;
      NodeId nxt = base + (j + 1) % c;
      half[3 * static_cast<std::size_t>(cur) + 1] = {nxt, 0};
      half[3 * static_cast<std::size_t>(nxt) + 0] = {cur, 1};
    }
  }
  // External edges: original port p of v is carried by gadget(v, p) port 2.
  for (NodeId v = 0; v < n; ++v) {
    Port d = g.degree(v);
    for (Port p = 0; p < d; ++p) {
      HalfEdge far = g.rotate(v, p);
      NodeId mine = r.first_gadget[v] + p;
      NodeId theirs = r.first_gadget[far.node] + far.port;
      // Involution holds: the far side writes the mirror entry on its turn.
      half[3 * static_cast<std::size_t>(mine) + 2] = {theirs, 2};
    }
    // Padding: unused external ports become half-loops.
    for (NodeId j = d; j < r.gadget_count[v]; ++j) {
      NodeId cur = r.first_gadget[v] + j;
      half[3 * static_cast<std::size_t>(cur) + 2] = {cur, 2};
    }
  }
  std::vector<std::size_t> offsets(static_cast<std::size_t>(total) + 1);
  for (std::size_t i = 0; i <= total; ++i) offsets[i] = 3 * i;
  r.cubic = graph::from_rotation(std::move(offsets), std::move(half));
  return r;
}

}  // namespace uesr::explore
