#include "explore/degree_reduce.h"

#include <stdexcept>

namespace uesr::explore {

using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

NodeId ReducedGraph::gadget(NodeId v, Port p) const {
  if (v >= first_gadget.size())
    throw std::invalid_argument("ReducedGraph::gadget: bad vertex");
  if (p >= gadget_count[v])
    throw std::invalid_argument("ReducedGraph::gadget: bad port");
  return first_gadget[v] + p;
}

NodeId ReducedGraph::entry_gadget(NodeId v) const {
  if (v >= first_gadget.size())
    throw std::invalid_argument("ReducedGraph::entry_gadget: bad vertex");
  return first_gadget[v];
}

bool ReducedGraph::belongs_to(NodeId gv, NodeId v) const {
  if (gv >= original_of.size())
    throw std::invalid_argument("ReducedGraph::belongs_to: bad gadget");
  return original_of[gv] == v;
}

ReducedGraph reduce_to_cubic(const graph::Graph& g) {
  ReducedGraph r;
  const NodeId n = g.num_nodes();
  r.first_gadget.resize(n);
  r.gadget_count.resize(n);
  NodeId total = 0;
  for (NodeId v = 0; v < n; ++v) {
    r.first_gadget[v] = total;
    r.gadget_count[v] = std::max<NodeId>(g.degree(v), 3);
    total += r.gadget_count[v];
  }
  r.original_of.resize(total);
  for (NodeId v = 0; v < n; ++v)
    for (NodeId j = 0; j < r.gadget_count[v]; ++j)
      r.original_of[r.first_gadget[v] + j] = v;

  std::vector<std::vector<HalfEdge>> adj(total, std::vector<HalfEdge>(3));
  // Gadget cycles: port 1 of gadget j meets port 0 of gadget j+1 (mod c).
  for (NodeId v = 0; v < n; ++v) {
    NodeId base = r.first_gadget[v];
    NodeId c = r.gadget_count[v];
    for (NodeId j = 0; j < c; ++j) {
      NodeId cur = base + j;
      NodeId nxt = base + (j + 1) % c;
      adj[cur][1] = {nxt, 0};
      adj[nxt][0] = {cur, 1};
    }
  }
  // External edges: original port p of v is carried by gadget(v, p) port 2.
  for (NodeId v = 0; v < n; ++v) {
    Port d = g.degree(v);
    for (Port p = 0; p < d; ++p) {
      HalfEdge far = g.rotate(v, p);
      NodeId mine = r.first_gadget[v] + p;
      NodeId theirs = r.first_gadget[far.node] + far.port;
      adj[mine][2] = {theirs, 2};  // involution holds: the far side writes
                                   // the mirror entry when its turn comes
    }
    // Padding: unused external ports become half-loops.
    for (NodeId j = d; j < r.gadget_count[v]; ++j) {
      NodeId cur = r.first_gadget[v] + j;
      adj[cur][2] = {cur, 2};
    }
  }
  r.cubic = graph::from_rotation(std::move(adj));
  return r;
}

}  // namespace uesr::explore
