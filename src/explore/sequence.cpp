#include "explore/sequence.h"

#include <sstream>
#include <stdexcept>

#include "util/bitpack.h"

namespace uesr::explore {

RandomExplorationSequence::RandomExplorationSequence(std::uint64_t seed,
                                                     std::uint64_t length,
                                                     graph::NodeId target_size,
                                                     Symbol alphabet)
    : rng_(seed), length_(length), target_size_(target_size),
      alphabet_(alphabet) {
  if (alphabet_ == 0)
    throw std::invalid_argument("RandomExplorationSequence: empty alphabet");
}

Symbol RandomExplorationSequence::symbol(std::uint64_t i) const {
  if (i == 0 || i > length_)
    throw std::out_of_range("RandomExplorationSequence::symbol: bad index");
  return rng_.value_below(i, alphabet_);
}

std::string RandomExplorationSequence::name() const {
  std::ostringstream os;
  os << "pseudorandom(seed=" << rng_.seed() << ",n=" << target_size_
     << ",L=" << length_ << ")";
  return os.str();
}

FixedExplorationSequence::FixedExplorationSequence(std::vector<Symbol> symbols,
                                                   graph::NodeId target_size,
                                                   std::string name)
    : symbols_(std::move(symbols)), target_size_(target_size),
      name_(std::move(name)) {}

Symbol FixedExplorationSequence::symbol(std::uint64_t i) const {
  if (i == 0 || i > symbols_.size())
    throw std::out_of_range("FixedExplorationSequence::symbol: bad index");
  return symbols_[i - 1];
}

std::uint64_t default_ues_length(graph::NodeId n) {
  if (n == 0) throw std::invalid_argument("default_ues_length: n == 0");
  std::uint64_t nn = n;
  std::uint64_t log = static_cast<std::uint64_t>(util::bits_for_value(n));
  return std::max<std::uint64_t>(64, 24 * nn * nn * log);
}

std::shared_ptr<const ExplorationSequence> standard_ues(graph::NodeId n,
                                                        std::uint64_t seed) {
  return std::make_shared<RandomExplorationSequence>(
      seed, default_ues_length(n), n);
}

}  // namespace uesr::explore
