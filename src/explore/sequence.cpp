#include "explore/sequence.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/bitpack.h"

namespace uesr::explore {

namespace {

void check_fill_range(std::uint64_t i_begin, std::uint64_t count,
                      std::uint64_t length, const char* who) {
  if (i_begin == 0 || i_begin > length || count > length - i_begin + 1)
    throw std::out_of_range(std::string(who) + ": bad index range");
}

}  // namespace

void ExplorationSequence::fill(std::uint64_t i_begin, std::uint64_t count,
                               Symbol* out) const {
  // Correct reference loop; concrete families override for block speed.
  for (std::uint64_t k = 0; k < count; ++k) out[k] = symbol(i_begin + k);
}

void SymbolStream::refill() {
  const std::uint64_t length = seq_->length();
  if (next_ == 0 || next_ > length)
    throw std::out_of_range("SymbolStream: sequence exhausted");
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(next_block_, length - next_ + 1));
  next_block_ = std::min(next_block_ * 2, kBlock);
  buf_.resize(n);
  seq_->fill(next_, n, buf_.data());
  next_ += n;
  pos_ = 0;
  avail_ = n;
}

RandomExplorationSequence::RandomExplorationSequence(std::uint64_t seed,
                                                     std::uint64_t length,
                                                     graph::NodeId target_size,
                                                     Symbol alphabet)
    : rng_(seed), length_(length), target_size_(target_size),
      alphabet_(alphabet) {
  if (alphabet_ == 0)
    throw std::invalid_argument("RandomExplorationSequence: empty alphabet");
}

Symbol RandomExplorationSequence::symbol(std::uint64_t i) const {
  if (i == 0 || i > length_)
    throw std::out_of_range("RandomExplorationSequence::symbol: bad index");
  return rng_.value_below(i, alphabet_);
}

void RandomExplorationSequence::fill(std::uint64_t i_begin,
                                     std::uint64_t count, Symbol* out) const {
  if (count == 0) return;
  check_fill_range(i_begin, count, length_,
                   "RandomExplorationSequence::fill");
  // One bounds check for the whole block, then straight-line counter
  // hashing with no virtual dispatch per element.
  for (std::uint64_t k = 0; k < count; ++k)
    out[k] = rng_.value_below(i_begin + k, alphabet_);
}

std::string RandomExplorationSequence::name() const {
  std::ostringstream os;
  os << "pseudorandom(seed=" << rng_.seed() << ",n=" << target_size_
     << ",L=" << length_ << ")";
  return os.str();
}

FixedExplorationSequence::FixedExplorationSequence(std::vector<Symbol> symbols,
                                                   graph::NodeId target_size,
                                                   std::string name)
    : symbols_(std::move(symbols)), target_size_(target_size),
      name_(std::move(name)) {}

Symbol FixedExplorationSequence::symbol(std::uint64_t i) const {
  if (i == 0 || i > symbols_.size())
    throw std::out_of_range("FixedExplorationSequence::symbol: bad index");
  return symbols_[i - 1];
}

void FixedExplorationSequence::fill(std::uint64_t i_begin,
                                    std::uint64_t count, Symbol* out) const {
  if (count == 0) return;
  check_fill_range(i_begin, count, symbols_.size(),
                   "FixedExplorationSequence::fill");
  std::copy_n(symbols_.begin() + static_cast<std::ptrdiff_t>(i_begin - 1),
              count, out);
}

std::uint64_t default_ues_length(graph::NodeId n) {
  if (n == 0) throw std::invalid_argument("default_ues_length: n == 0");
  std::uint64_t nn = n;
  std::uint64_t log = static_cast<std::uint64_t>(util::bits_for_value(n));
  return std::max<std::uint64_t>(64, 24 * nn * nn * log);
}

std::shared_ptr<const ExplorationSequence> standard_ues(graph::NodeId n,
                                                        std::uint64_t seed) {
  return std::make_shared<RandomExplorationSequence>(
      seed, default_ues_length(n), n);
}

}  // namespace uesr::explore
