// Universality verification (Definition 3).
//
// A sequence is universal for size n if its walk covers every connected
// 3-regular graph with <= n vertices, under EVERY port labelling and from
// EVERY start edge.  This module provides three verification regimes:
//
//  * exhaustive  — enumerate all Π_v deg(v)! labellings and all start
//    half-edges (feasible for graphs with ~<= 6 vertices: 6^6 ≈ 4.7e4);
//  * sampled     — random labellings (statistical evidence at any size);
//  * adversarial — stochastic hill-climbing over labellings trying to
//    maximize the number of unvisited vertices (a much stronger refuter
//    than uniform sampling in practice).
//
// A *certificate* for a sequence combines exhaustive checks over the small
// cubic catalogue — including the multigraphs with loops and parallel edges
// that degree reduction actually produces — with sampled/adversarial checks
// beyond; see certified.h.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::explore {

/// True if the walk covers the component of every start half-edge of g
/// (under g's own labelling).
bool covers_all_starts(const graph::Graph& g, const ExplorationSequence& seq);

/// Enumerates every port labelling of g (the product of per-vertex port
/// permutations) and calls `visit`; stops early when visit returns false.
/// Returns true iff the enumeration ran to completion.
bool for_each_labeling(const graph::Graph& g,
                       const std::function<bool(const graph::Graph&)>& visit);

/// Number of labellings of g (Π_v deg(v)!); throws on overflow.
std::uint64_t labeling_count(const graph::Graph& g);

/// A concrete refutation: this labelled graph, from this start edge, is not
/// covered by the sequence.
struct FailureWitness {
  graph::Graph labeled;
  graph::HalfEdge start;
};

struct UniversalityReport {
  bool universal = false;  ///< no counterexample found in the checked space
  std::uint64_t labelings_checked = 0;
  /// Cover walks actually performed (every regime counts real walks; the
  /// adversarial search reports the walks its scoring ran, not an estimate).
  std::uint64_t walks_checked = 0;
  std::optional<FailureWitness> witness;
};

/// Exhaustive over all labellings and all start edges of g.
UniversalityReport check_universal_exhaustive(const graph::Graph& g,
                                              const ExplorationSequence& seq);

/// `samples` random labellings, all start edges each.
UniversalityReport check_universal_sampled(const graph::Graph& g,
                                           const ExplorationSequence& seq,
                                           std::uint64_t samples,
                                           std::uint64_t seed);

/// Stochastic hill-climb over labellings: proposes single-vertex port
/// permutation changes and keeps those that worsen coverage (more unvisited
/// vertices; ties broken by later cover time).  Several restarts.
UniversalityReport check_universal_adversarial(const graph::Graph& g,
                                               const ExplorationSequence& seq,
                                               std::uint64_t iterations,
                                               std::uint64_t seed);

}  // namespace uesr::explore
