// Universality verification (Definition 3).
//
// A sequence is universal for size n if its walk covers every connected
// 3-regular graph with <= n vertices, under EVERY port labelling and from
// EVERY start edge.  This module provides three verification regimes:
//
//  * exhaustive  — enumerate all Π_v deg(v)! labellings and all start
//    half-edges (feasible for graphs with ~<= 6 vertices: 6^6 ≈ 4.7e4);
//  * sampled     — random labellings (statistical evidence at any size);
//  * adversarial — stochastic hill-climbing over labellings trying to
//    maximize the number of unvisited vertices (a much stronger refuter
//    than uniform sampling in practice).
//
// All three regimes fan out over a util::ThreadPool and are *thread-count
// invariant*: the report (counts, universal flag, witness identity) is
// bit-identical for any `threads` value.  The determinism contract:
//
//  * The labelling space is ordered by its mixed-radix rank (vertex 0's
//    permutation is the least significant digit, permutations in
//    lexicographic order — exactly the order for_each_labeling visits).
//    Exhaustive workers seek directly to a rank sub-range; partial reports
//    merge in rank order.
//  * Sampled trial s relabels with Pcg32(counter_hash(seed, s)); the
//    adversarial restart r hill-climbs with Pcg32(counter_hash(seed, r)).
//    A trial's outcome therefore depends only on (seed, trial index),
//    never on scheduling or on other trials.
//  * The reported witness is pinned to the lowest (labelling rank | trial
//    index, start edge) failure; counts cover exactly the prefix of the
//    search space up to that witness, as a serial scan would have.
//
// A *certificate* for a sequence combines exhaustive checks over the small
// cubic catalogue — including the multigraphs with loops and parallel edges
// that degree reduction actually produces — with sampled/adversarial checks
// beyond; see certified.h.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::explore {

/// True if the walk covers the component of every start half-edge of g
/// (under g's own labelling).  Starts fan out over `threads` workers
/// (0 = util::resolve_threads default; 1 = serial).
bool covers_all_starts(const graph::Graph& g, const ExplorationSequence& seq,
                       unsigned threads = 0);

/// Enumerates every port labelling of g (the product of per-vertex port
/// permutations) and calls `visit`; stops early when visit returns false.
/// Returns true iff the enumeration ran to completion.
bool for_each_labeling(const graph::Graph& g,
                       const std::function<bool(const graph::Graph&)>& visit);

/// Sub-range variant: visits only the labellings with mixed-radix rank in
/// [rank_begin, rank_end), in rank order, seeking directly to rank_begin
/// (no stepping through the prefix).  rank_end must not exceed
/// labeling_count(g).  for_each_labeling(g, v) ==
/// for_each_labeling_range(g, 0, labeling_count(g), v) visit-for-visit;
/// this is what lets exhaustive verification shard its enumeration across
/// threads — and across machines.
bool for_each_labeling_range(
    const graph::Graph& g, std::uint64_t rank_begin, std::uint64_t rank_end,
    const std::function<bool(const graph::Graph&)>& visit);

/// Number of labellings of g (Π_v deg(v)!); throws on overflow.
std::uint64_t labeling_count(const graph::Graph& g);

/// A concrete refutation: this labelled graph, from this start edge, is not
/// covered by the sequence.
struct FailureWitness {
  graph::Graph labeled;
  graph::HalfEdge start;
};

struct UniversalityReport {
  bool universal = false;  ///< no counterexample found in the checked space
  std::uint64_t labelings_checked = 0;
  /// Cover walks actually performed (every regime counts real walks; the
  /// adversarial search reports the walks its scoring ran, not an estimate).
  std::uint64_t walks_checked = 0;
  std::optional<FailureWitness> witness;
};

/// Exhaustive over all labellings and all start edges of g.  The witness,
/// when one exists, is the lowest (labelling rank, start edge) failure and
/// the counts cover exactly the ranks up to it — identical for any thread
/// count, and identical to the serial scan.
UniversalityReport check_universal_exhaustive(const graph::Graph& g,
                                              const ExplorationSequence& seq,
                                              unsigned threads = 0);

/// Shard of the exhaustive check: only labelling ranks in
/// [rank_begin, rank_end).  Reports from a partition of [0, total) merged
/// in rank order (sum counts; first witness wins) reproduce the full
/// check_universal_exhaustive report — the cross-machine sharding story.
UniversalityReport check_universal_exhaustive_range(
    const graph::Graph& g, const ExplorationSequence& seq,
    std::uint64_t rank_begin, std::uint64_t rank_end, unsigned threads = 0);

/// `samples` random labellings, all start edges each.  Trial s draws its
/// labelling from Pcg32(counter_hash(seed, s)), so any sub-range of trials
/// is reproducible in isolation and the report is thread-count invariant.
UniversalityReport check_universal_sampled(const graph::Graph& g,
                                           const ExplorationSequence& seq,
                                           std::uint64_t samples,
                                           std::uint64_t seed,
                                           unsigned threads = 0);

/// Stochastic hill-climb over labellings: proposes single-vertex port
/// permutation changes and keeps those that worsen coverage (more unvisited
/// vertices; ties broken by later cover time).  Restarts run in parallel,
/// each on Pcg32(counter_hash(seed, restart)); the merge is a deterministic
/// best-of in restart order (first refuting restart supplies the witness).
UniversalityReport check_universal_adversarial(const graph::Graph& g,
                                               const ExplorationSequence& seq,
                                               std::uint64_t iterations,
                                               std::uint64_t seed,
                                               unsigned threads = 0);

}  // namespace uesr::explore
