#include "explore/universal.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "explore/walker.h"
#include "graph/algorithms.h"

namespace uesr::explore {

using graph::Graph;
using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

bool covers_all_starts(const Graph& g, const ExplorationSequence& seq) {
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p)
      if (!covers_component(g, {v, p}, seq)) return false;
  return true;
}

std::uint64_t labeling_count(const Graph& g) {
  std::uint64_t total = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint64_t f = 1;
    for (Port k = 2; k <= g.degree(v); ++k) f *= k;
    if (total > UINT64_MAX / std::max<std::uint64_t>(f, 1))
      throw std::overflow_error("labeling_count: overflow");
    total *= f;
  }
  return total;
}

bool for_each_labeling(const Graph& g,
                       const std::function<bool(const Graph&)>& visit) {
  const NodeId n = g.num_nodes();
  // Odometer over per-vertex permutations, each enumerated via
  // std::next_permutation from the identity.
  std::vector<std::vector<Port>> perms(n);
  for (NodeId v = 0; v < n; ++v) {
    perms[v].resize(g.degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
  }
  for (;;) {
    if (!visit(g.relabeled(perms))) return false;
    // Advance the odometer: next permutation at the lowest vertex; on wrap,
    // carry to the next vertex.
    NodeId v = 0;
    while (v < n && !std::next_permutation(perms[v].begin(), perms[v].end()))
      ++v;  // wrapped to identity; carry
    if (v == n) return true;  // full cycle: every labelling visited
  }
}

UniversalityReport check_universal_exhaustive(const Graph& g,
                                              const ExplorationSequence& seq) {
  UniversalityReport rep;
  bool complete = for_each_labeling(g, [&](const Graph& labeled) {
    ++rep.labelings_checked;
    for (NodeId v = 0; v < labeled.num_nodes(); ++v)
      for (Port p = 0; p < labeled.degree(v); ++p) {
        ++rep.walks_checked;
        if (!covers_component(labeled, {v, p}, seq)) {
          rep.witness = FailureWitness{labeled, {v, p}};
          return false;
        }
      }
    return true;
  });
  rep.universal = complete;
  return rep;
}

UniversalityReport check_universal_sampled(const Graph& g,
                                           const ExplorationSequence& seq,
                                           std::uint64_t samples,
                                           std::uint64_t seed) {
  UniversalityReport rep;
  util::Pcg32 rng(seed);
  for (std::uint64_t s = 0; s < samples; ++s) {
    Graph labeled = g.randomly_relabeled(rng);
    ++rep.labelings_checked;
    for (NodeId v = 0; v < labeled.num_nodes(); ++v)
      for (Port p = 0; p < labeled.degree(v); ++p) {
        ++rep.walks_checked;
        if (!covers_component(labeled, {v, p}, seq)) {
          rep.witness = FailureWitness{labeled, {v, p}};
          return rep;
        }
      }
  }
  rep.universal = true;
  return rep;
}

namespace {

/// Adversary's score for a labelling: worst (uncovered count, last cover
/// step) over all start edges.  Bigger is worse for the sequence.
std::pair<std::uint64_t, std::uint64_t> adversary_score(
    const Graph& labeled, const ExplorationSequence& seq) {
  std::uint64_t worst_uncovered = 0;
  std::uint64_t worst_time = 0;
  for (NodeId v = 0; v < labeled.num_nodes(); ++v)
    for (Port p = 0; p < labeled.degree(v); ++p) {
      auto ct = cover_time(labeled, {v, p}, seq);
      if (!ct.has_value()) {
        // Count how many vertices stay unvisited for this start.
        auto tr = trace_walk(labeled, {v, p}, seq, seq.length());
        std::uint64_t uncovered = 0;
        auto comp = graph::component_of(labeled, v);
        for (NodeId u : comp)
          if (!tr.visited[u]) ++uncovered;
        worst_uncovered = std::max(worst_uncovered, uncovered);
        worst_time = seq.length() + 1;
      } else {
        worst_time = std::max(worst_time, *ct);
      }
    }
  return {worst_uncovered, worst_time};
}

}  // namespace

UniversalityReport check_universal_adversarial(const Graph& g,
                                               const ExplorationSequence& seq,
                                               std::uint64_t iterations,
                                               std::uint64_t seed) {
  UniversalityReport rep;
  util::Pcg32 rng(seed);
  constexpr int kRestarts = 4;
  for (int restart = 0; restart < kRestarts; ++restart) {
    Graph current = g.randomly_relabeled(rng);
    auto score = adversary_score(current, seq);
    ++rep.labelings_checked;
    for (std::uint64_t it = 0; it < iterations / kRestarts; ++it) {
      if (score.first > 0) {
        // Found an uncovered labelling; locate a witness start edge.
        for (NodeId v = 0; v < current.num_nodes(); ++v)
          for (Port p = 0; p < current.degree(v); ++p)
            if (!covers_component(current, {v, p}, seq)) {
              rep.witness = FailureWitness{current, {v, p}};
              return rep;
            }
      }
      // Propose: re-randomize the permutation of one random vertex.
      NodeId v = rng.next_below(g.num_nodes());
      std::vector<std::vector<Port>> perms(current.num_nodes());
      for (NodeId u = 0; u < current.num_nodes(); ++u) {
        perms[u].resize(current.degree(u));
        std::iota(perms[u].begin(), perms[u].end(), Port{0});
      }
      std::shuffle(perms[v].begin(), perms[v].end(), rng);
      Graph proposal = current.relabeled(perms);
      auto pscore = adversary_score(proposal, seq);
      ++rep.labelings_checked;
      rep.walks_checked += proposal.num_nodes() * 3;
      if (pscore >= score) {  // plateau moves allowed: keeps search mobile
        current = std::move(proposal);
        score = pscore;
      }
    }
  }
  rep.universal = true;
  return rep;
}

}  // namespace uesr::explore
