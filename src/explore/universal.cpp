#include "explore/universal.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "explore/walker.h"
#include "graph/algorithms.h"

namespace uesr::explore {

using graph::Graph;
using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

namespace {

/// Component size of every vertex, from one BFS sweep.  Port relabelling
/// never changes the edge set, so these survive across every labelling of
/// the same graph — compute once, thread through all cover checks.
std::vector<std::size_t> component_need(const Graph& g) {
  const auto id = graph::connected_components(g);
  std::vector<std::size_t> size;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (id[v] >= size.size()) size.resize(id[v] + 1, 0);
    ++size[id[v]];
  }
  std::vector<std::size_t> need(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) need[v] = size[id[v]];
  return need;
}

}  // namespace

bool covers_all_starts(const Graph& g, const ExplorationSequence& seq) {
  const auto need = component_need(g);
  WalkScratch scratch;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p)
      if (!covers_component(g, {v, p}, seq, need[v], scratch)) return false;
  return true;
}

std::uint64_t labeling_count(const Graph& g) {
  std::uint64_t total = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint64_t f = 1;
    for (Port k = 2; k <= g.degree(v); ++k) f *= k;
    if (total > UINT64_MAX / std::max<std::uint64_t>(f, 1))
      throw std::overflow_error("labeling_count: overflow");
    total *= f;
  }
  return total;
}

bool for_each_labeling(const Graph& g,
                       const std::function<bool(const Graph&)>& visit) {
  const NodeId n = g.num_nodes();
  // Odometer over per-vertex permutations, each enumerated via
  // std::next_permutation from the identity.
  std::vector<std::vector<Port>> perms(n);
  for (NodeId v = 0; v < n; ++v) {
    perms[v].resize(g.degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
  }
  for (;;) {
    if (!visit(g.relabeled(perms))) return false;
    // Advance the odometer: next permutation at the lowest vertex; on wrap,
    // carry to the next vertex.
    NodeId v = 0;
    while (v < n && !std::next_permutation(perms[v].begin(), perms[v].end()))
      ++v;  // wrapped to identity; carry
    if (v == n) return true;  // full cycle: every labelling visited
  }
}

UniversalityReport check_universal_exhaustive(const Graph& g,
                                              const ExplorationSequence& seq) {
  UniversalityReport rep;
  const auto need = component_need(g);
  WalkScratch scratch;
  bool complete = for_each_labeling(g, [&](const Graph& labeled) {
    ++rep.labelings_checked;
    for (NodeId v = 0; v < labeled.num_nodes(); ++v)
      for (Port p = 0; p < labeled.degree(v); ++p) {
        ++rep.walks_checked;
        if (!covers_component(labeled, {v, p}, seq, need[v], scratch)) {
          rep.witness = FailureWitness{labeled, {v, p}};
          return false;
        }
      }
    return true;
  });
  rep.universal = complete;
  return rep;
}

UniversalityReport check_universal_sampled(const Graph& g,
                                           const ExplorationSequence& seq,
                                           std::uint64_t samples,
                                           std::uint64_t seed) {
  UniversalityReport rep;
  const auto need = component_need(g);
  WalkScratch scratch;
  util::Pcg32 rng(seed);
  for (std::uint64_t s = 0; s < samples; ++s) {
    Graph labeled = g.randomly_relabeled(rng);
    ++rep.labelings_checked;
    for (NodeId v = 0; v < labeled.num_nodes(); ++v)
      for (Port p = 0; p < labeled.degree(v); ++p) {
        ++rep.walks_checked;
        if (!covers_component(labeled, {v, p}, seq, need[v], scratch)) {
          rep.witness = FailureWitness{labeled, {v, p}};
          return rep;
        }
      }
  }
  rep.universal = true;
  return rep;
}

namespace {

/// Adversary's score for a labelling, plus the number of cover walks it
/// actually ran (one per start half-edge) so reports can cite real work
/// instead of an estimate.
struct AdversaryScore {
  std::uint64_t worst_uncovered = 0;  ///< most vertices left unvisited
  std::uint64_t worst_time = 0;       ///< latest cover step (len+1 = never)
  std::uint64_t walks = 0;            ///< cover walks performed

  std::pair<std::uint64_t, std::uint64_t> key() const {
    return {worst_uncovered, worst_time};
  }
};

/// Worst (uncovered count, last cover step) over all start edges.  Bigger
/// is worse for the sequence.  `need` is the per-vertex component size of
/// the underlying graph (labelling-invariant).
AdversaryScore adversary_score(const Graph& labeled,
                               const ExplorationSequence& seq,
                               const std::vector<std::size_t>& need,
                               WalkScratch& scratch) {
  AdversaryScore score;
  for (NodeId v = 0; v < labeled.num_nodes(); ++v)
    for (Port p = 0; p < labeled.degree(v); ++p) {
      ++score.walks;
      auto outcome = cover_outcome(labeled, {v, p}, seq, need[v], scratch);
      if (!outcome.cover_step.has_value()) {
        // One walk yields both verdict and visited count: the vertices the
        // exhausted walk missed are need[v] - visited.
        score.worst_uncovered = std::max<std::uint64_t>(
            score.worst_uncovered, need[v] - outcome.visited);
        score.worst_time = seq.length() + 1;
      } else {
        score.worst_time = std::max(score.worst_time, *outcome.cover_step);
      }
    }
  return score;
}

}  // namespace

UniversalityReport check_universal_adversarial(const Graph& g,
                                               const ExplorationSequence& seq,
                                               std::uint64_t iterations,
                                               std::uint64_t seed) {
  UniversalityReport rep;
  const auto need = component_need(g);
  WalkScratch scratch;
  util::Pcg32 rng(seed);
  constexpr int kRestarts = 4;
  for (int restart = 0; restart < kRestarts; ++restart) {
    Graph current = g.randomly_relabeled(rng);
    auto score = adversary_score(current, seq, need, scratch);
    ++rep.labelings_checked;
    rep.walks_checked += score.walks;
    for (std::uint64_t it = 0; it < iterations / kRestarts; ++it) {
      if (score.worst_uncovered > 0) {
        // Found an uncovered labelling; locate a witness start edge.
        for (NodeId v = 0; v < current.num_nodes(); ++v)
          for (Port p = 0; p < current.degree(v); ++p) {
            ++rep.walks_checked;
            if (!covers_component(current, {v, p}, seq, need[v], scratch)) {
              rep.witness = FailureWitness{current, {v, p}};
              return rep;
            }
          }
      }
      // Propose: re-randomize the permutation of one random vertex.
      NodeId v = rng.next_below(g.num_nodes());
      std::vector<std::vector<Port>> perms(current.num_nodes());
      for (NodeId u = 0; u < current.num_nodes(); ++u) {
        perms[u].resize(current.degree(u));
        std::iota(perms[u].begin(), perms[u].end(), Port{0});
      }
      std::shuffle(perms[v].begin(), perms[v].end(), rng);
      Graph proposal = current.relabeled(perms);
      auto pscore = adversary_score(proposal, seq, need, scratch);
      ++rep.labelings_checked;
      rep.walks_checked += pscore.walks;
      if (pscore.key() >= score.key()) {  // plateau moves keep search mobile
        current = std::move(proposal);
        score = pscore;
      }
    }
  }
  rep.universal = true;
  return rep;
}

}  // namespace uesr::explore
