#include "explore/universal.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "explore/walker.h"
#include "graph/algorithms.h"
#include "util/parallel.h"

namespace uesr::explore {

using graph::Graph;
using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

namespace {

/// Component size of every vertex, from one BFS sweep.  Port relabelling
/// never changes the edge set, so these survive across every labelling of
/// the same graph — compute once, thread through all cover checks.
std::vector<std::size_t> component_need(const Graph& g) {
  const auto id = graph::connected_components(g);
  std::vector<std::size_t> size;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (id[v] >= size.size()) size.resize(id[v] + 1, 0);
    ++size[id[v]];
  }
  std::vector<std::size_t> need(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) need[v] = size[id[v]];
  return need;
}

/// Hands f a pool of resolve_threads(threads) lanes: the shared pool when
/// it already has that size, otherwise a per-thread pool cached by size so
/// repeated explicit-thread-count calls (certificate sweeps, tests,
/// benches) reuse workers instead of respawning them per call (size 1
/// spawns no threads, so `threads == 1` is a zero-overhead serial run).
template <typename F>
auto with_pool(unsigned threads, F&& f) {
  const unsigned t = util::resolve_threads(threads);
  if (t == 1) {
    util::ThreadPool serial(1);
    return f(serial);
  }
  if (util::shared_pool().size() == t) return f(util::shared_pool());
  thread_local std::unique_ptr<util::ThreadPool> cached;
  if (!cached || cached->size() != t)
    cached = std::make_unique<util::ThreadPool>(t);
  return f(*cached);
}

std::uint64_t factorial_checked(Port d) {
  if (d > 20) throw std::overflow_error("labeling rank: degree! overflows");
  std::uint64_t f = 1;
  for (Port k = 2; k <= d; ++k) f *= k;
  return f;
}

/// The d-th permutation of 0..k-1 in lexicographic order (factorial number
/// system unranking) — how a worker seeks one vertex's digit of a labelling
/// rank without stepping through predecessors.
std::vector<Port> nth_permutation(Port k, std::uint64_t d) {
  std::vector<Port> pool(k);
  std::iota(pool.begin(), pool.end(), Port{0});
  std::vector<Port> out;
  out.reserve(k);
  for (Port i = k; i > 0; --i) {
    const std::uint64_t f = factorial_checked(static_cast<Port>(i - 1));
    const std::uint64_t idx = d / f;
    d %= f;
    out.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return out;
}

/// Shared partial-report shape for all regimes: counts plus the first
/// witness found inside the chunk (which, because every chunk enumerates
/// its sub-range in order, is the chunk's lowest-(rank, start) failure).
struct ReportPartial {
  std::uint64_t labelings = 0;
  std::uint64_t walks = 0;
  std::optional<FailureWitness> witness;
};

bool partial_hit(const ReportPartial& p) { return p.witness.has_value(); }

/// Index-order merge: counts accumulate over the prefix of chunks up to and
/// including the first refuting one (parallel_prefix_search already
/// truncated the list there), so the totals equal a serial scan's.
UniversalityReport merge_partials(std::vector<ReportPartial> parts) {
  UniversalityReport rep;
  for (auto& p : parts) {
    rep.labelings_checked += p.labelings;
    rep.walks_checked += p.walks;
    if (p.witness) rep.witness = std::move(p.witness);
  }
  rep.universal = !rep.witness.has_value();
  return rep;
}

/// All start half-edges of g in (vertex, port) order — the witness order
/// every regime pins reports to.
std::vector<HalfEdge> all_starts(const Graph& g) {
  std::vector<HalfEdge> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p) starts.push_back({v, p});
  return starts;
}

/// Walks every start of `labeled` in order; on the first failure records
/// the witness in `part` and returns false.  Counts every walk performed.
bool check_all_starts(const Graph& labeled, const ExplorationSequence& seq,
                      const std::vector<std::size_t>& need,
                      WalkScratch& scratch, ReportPartial& part) {
  for (NodeId v = 0; v < labeled.num_nodes(); ++v)
    for (Port p = 0; p < labeled.degree(v); ++p) {
      ++part.walks;
      if (!covers_component(labeled, {v, p}, seq, need[v], scratch)) {
        part.witness = FailureWitness{labeled, {v, p}};
        return false;
      }
    }
  return true;
}

}  // namespace

bool covers_all_starts(const Graph& g, const ExplorationSequence& seq,
                       unsigned threads) {
  const auto need = component_need(g);
  const auto starts = all_starts(g);
  if (starts.empty()) return true;
  return with_pool(threads, [&](util::ThreadPool& pool) {
    struct Part {
      bool ok = true;
    };
    const std::uint64_t chunk =
        util::default_chunk(starts.size(), pool.size());
    auto parts = util::parallel_prefix_search<Part>(
        pool, starts.size(), chunk,
        [&](const util::ChunkRange& c) {
          Part part;
          WalkScratch scratch;
          for (std::uint64_t i = c.begin; i < c.end; ++i)
            if (!covers_component(g, starts[i], seq, need[starts[i].node],
                                  scratch)) {
              part.ok = false;
              break;
            }
          return part;
        },
        [](const Part& p) { return !p.ok; });
    return parts.back().ok;
  });
}

std::uint64_t labeling_count(const Graph& g) {
  std::uint64_t total = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint64_t f = 1;
    for (Port k = 2; k <= g.degree(v); ++k) f *= k;
    if (total > UINT64_MAX / std::max<std::uint64_t>(f, 1))
      throw std::overflow_error("labeling_count: overflow");
    total *= f;
  }
  return total;
}

bool for_each_labeling(const Graph& g,
                       const std::function<bool(const Graph&)>& visit) {
  const NodeId n = g.num_nodes();
  // Odometer over per-vertex permutations, each enumerated via
  // std::next_permutation from the identity.
  std::vector<std::vector<Port>> perms(n);
  for (NodeId v = 0; v < n; ++v) {
    perms[v].resize(g.degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
  }
  for (;;) {
    if (!visit(g.relabeled(perms))) return false;
    // Advance the odometer: next permutation at the lowest vertex; on wrap,
    // carry to the next vertex.
    NodeId v = 0;
    while (v < n && !std::next_permutation(perms[v].begin(), perms[v].end()))
      ++v;  // wrapped to identity; carry
    if (v == n) return true;  // full cycle: every labelling visited
  }
}

bool for_each_labeling_range(
    const Graph& g, std::uint64_t rank_begin, std::uint64_t rank_end,
    const std::function<bool(const Graph&)>& visit) {
  if (rank_begin >= rank_end) return true;
  const NodeId n = g.num_nodes();
  // Seek: decompose rank_begin in the mixed radix (vertex 0 = least
  // significant digit, digit value = lexicographic permutation index) —
  // exactly the order the odometer in for_each_labeling advances through.
  std::vector<std::vector<Port>> perms(n);
  std::uint64_t r = rank_begin;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t f = factorial_checked(g.degree(v));
    perms[v] = nth_permutation(g.degree(v), r % f);
    r /= f;
  }
  if (r != 0)
    throw std::invalid_argument(
        "for_each_labeling_range: rank_begin >= labeling_count(g)");
  for (std::uint64_t rank = rank_begin; rank < rank_end; ++rank) {
    if (!visit(g.relabeled(perms))) return false;
    NodeId v = 0;
    while (v < n && !std::next_permutation(perms[v].begin(), perms[v].end()))
      ++v;
    if (v == n && rank + 1 < rank_end)
      throw std::invalid_argument(
          "for_each_labeling_range: rank_end > labeling_count(g)");
  }
  return true;
}

UniversalityReport check_universal_exhaustive_range(
    const Graph& g, const ExplorationSequence& seq, std::uint64_t rank_begin,
    std::uint64_t rank_end, unsigned threads) {
  if (rank_begin > rank_end || rank_end > labeling_count(g))
    throw std::invalid_argument(
        "check_universal_exhaustive_range: bad rank range");
  const auto need = component_need(g);
  const std::uint64_t items = rank_end - rank_begin;
  return with_pool(threads, [&](util::ThreadPool& pool) {
    const std::uint64_t chunk = util::default_chunk(items, pool.size(), 16);
    auto parts = util::parallel_prefix_search<ReportPartial>(
        pool, items, chunk,
        [&](const util::ChunkRange& c) {
          ReportPartial part;
          WalkScratch scratch;
          for_each_labeling_range(
              g, rank_begin + c.begin, rank_begin + c.end,
              [&](const Graph& labeled) {
                ++part.labelings;
                return check_all_starts(labeled, seq, need, scratch, part);
              });
          return part;
        },
        partial_hit);
    return merge_partials(std::move(parts));
  });
}

UniversalityReport check_universal_exhaustive(const Graph& g,
                                              const ExplorationSequence& seq,
                                              unsigned threads) {
  return check_universal_exhaustive_range(g, seq, 0, labeling_count(g),
                                          threads);
}

UniversalityReport check_universal_sampled(const Graph& g,
                                           const ExplorationSequence& seq,
                                           std::uint64_t samples,
                                           std::uint64_t seed,
                                           unsigned threads) {
  const auto need = component_need(g);
  return with_pool(threads, [&](util::ThreadPool& pool) {
    const std::uint64_t chunk = util::default_chunk(samples, pool.size());
    auto parts = util::parallel_prefix_search<ReportPartial>(
        pool, samples, chunk,
        [&](const util::ChunkRange& c) {
          ReportPartial part;
          WalkScratch scratch;
          for (std::uint64_t s = c.begin; s < c.end; ++s) {
            // Trial-indexed RNG: the labelling of trial s is a pure
            // function of (seed, s), independent of chunk geometry and
            // thread count.
            util::Pcg32 rng(util::counter_hash(seed, s));
            Graph labeled = g.randomly_relabeled(rng);
            ++part.labelings;
            if (!check_all_starts(labeled, seq, need, scratch, part)) break;
          }
          return part;
        },
        partial_hit);
    return merge_partials(std::move(parts));
  });
}

namespace {

/// Adversary's score for a labelling, plus the number of cover walks it
/// actually ran (one per start half-edge) so reports can cite real work
/// instead of an estimate.
struct AdversaryScore {
  std::uint64_t worst_uncovered = 0;  ///< most vertices left unvisited
  std::uint64_t worst_time = 0;       ///< latest cover step (len+1 = never)
  std::uint64_t walks = 0;            ///< cover walks performed

  std::pair<std::uint64_t, std::uint64_t> key() const {
    return {worst_uncovered, worst_time};
  }
};

/// Worst (uncovered count, last cover step) over all start edges.  Bigger
/// is worse for the sequence.  `need` is the per-vertex component size of
/// the underlying graph (labelling-invariant).
AdversaryScore adversary_score(const Graph& labeled,
                               const ExplorationSequence& seq,
                               const std::vector<std::size_t>& need,
                               WalkScratch& scratch) {
  AdversaryScore score;
  for (NodeId v = 0; v < labeled.num_nodes(); ++v)
    for (Port p = 0; p < labeled.degree(v); ++p) {
      ++score.walks;
      auto outcome = cover_outcome(labeled, {v, p}, seq, need[v], scratch);
      if (!outcome.cover_step.has_value()) {
        // One walk yields both verdict and visited count: the vertices the
        // exhausted walk missed are need[v] - visited.
        score.worst_uncovered = std::max<std::uint64_t>(
            score.worst_uncovered, need[v] - outcome.visited);
        score.worst_time = seq.length() + 1;
      } else {
        score.worst_time = std::max(score.worst_time, *outcome.cover_step);
      }
    }
  return score;
}

}  // namespace

UniversalityReport check_universal_adversarial(const Graph& g,
                                               const ExplorationSequence& seq,
                                               std::uint64_t iterations,
                                               std::uint64_t seed,
                                               unsigned threads) {
  const auto need = component_need(g);
  constexpr std::uint64_t kRestarts = 4;
  const std::uint64_t budget = iterations / kRestarts;
  return with_pool(threads, [&](util::ThreadPool& pool) {
    auto parts = util::parallel_prefix_search<ReportPartial>(
        pool, kRestarts, 1,
        [&](const util::ChunkRange& c) {
          const std::uint64_t restart = c.index;
          ReportPartial part;
          WalkScratch scratch;
          util::Pcg32 rng(util::counter_hash(seed, restart));
          Graph current = g.randomly_relabeled(rng);
          auto score = adversary_score(current, seq, need, scratch);
          ++part.labelings;
          part.walks += score.walks;
          for (std::uint64_t it = 0; it < budget; ++it) {
            if (score.worst_uncovered > 0) {
              // Found an uncovered labelling; locate a witness start edge.
              if (!check_all_starts(current, seq, need, scratch, part))
                return part;
            }
            // Propose: re-randomize the permutation of one random vertex.
            NodeId v = rng.next_below(g.num_nodes());
            std::vector<std::vector<Port>> perms(current.num_nodes());
            for (NodeId u = 0; u < current.num_nodes(); ++u) {
              perms[u].resize(current.degree(u));
              std::iota(perms[u].begin(), perms[u].end(), Port{0});
            }
            std::shuffle(perms[v].begin(), perms[v].end(), rng);
            Graph proposal = current.relabeled(perms);
            auto pscore = adversary_score(proposal, seq, need, scratch);
            ++part.labelings;
            part.walks += pscore.walks;
            if (pscore.key() >= score.key()) {  // plateau moves keep search
              current = std::move(proposal);    // mobile
              score = pscore;
            }
          }
          return part;
        },
        partial_hit);
    return merge_partials(std::move(parts));
  });
}

}  // namespace uesr::explore
