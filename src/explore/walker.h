// The exploration walk and its reversal (paper §2).
//
// A walk is represented by its *departure half-edges*: d_j = (v, p) means
// step j leaves vertex v through port p.  With arrival a_j = rot(d_j):
//
//   forward:  d_{j+1} = (a_j.node, (a_j.port + t_{j+1}) mod deg)
//   reverse:  a_{j-1} = (d_j.node, (d_j.port - t_j)   mod deg),
//             d_{j-1} = rot(a_{j-1})
//
// The reverse rule is the reversibility property the paper's backtracking
// confirmation relies on; `reverse_step(forward_step(x)) == x` is pinned by
// property tests across graphs, labellings, and sequences.
//
// The step loops below stream symbols in blocks (ExplorationSequence::fill)
// and, for the many-walks-per-graph callers (universality checking), reuse
// a WalkScratch so the per-start cost is the walk itself, not allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::explore {

/// (x mod deg) for x = port + symbol sums.  Exactly equivalent to x % deg
/// (including the uint32 wrap-around of the sum) but skips the hardware
/// divide in the ubiquitous x < 2*deg case of small symbols — and keeps
/// that case a conditional move, not a branch: whether x wraps past deg is
/// data-dependent coin-flip noise a predictor cannot learn.
inline graph::Port wrap_port(std::uint32_t x, graph::Port deg) {
  if (x >= 2 * deg) return x % deg;  // cold: symbols are < deg in practice
  return x < deg ? x : x - deg;
}

/// One forward step: given the departure half-edge of step j and symbol
/// t_{j+1}, the departure half-edge of step j+1.  Inline: the walk is a
/// serial load chain (each rotation depends on the previous), so keeping
/// the body visible lets callers hoist the graph's invariant loads out of
/// their step loops.
inline graph::HalfEdge forward_step(const graph::Graph& g,
                                    graph::HalfEdge d_j, Symbol t_next) {
  graph::HalfEdge a = g.rotate(d_j.node, d_j.port);
  return {a.node, wrap_port(a.port + t_next, g.degree(a.node))};
}

/// One reverse step: given the departure half-edge of step j and symbol
/// t_j, the departure half-edge of step j-1.
inline graph::HalfEdge reverse_step(const graph::Graph& g,
                                    graph::HalfEdge d_j, Symbol t_j) {
  graph::Port deg = g.degree(d_j.node);
  graph::Port t = t_j < deg ? t_j : t_j % deg;
  // (port - t) mod deg without relying on signed arithmetic.
  graph::Port entry = wrap_port(d_j.port + deg - t, deg);
  return g.rotate(d_j.node, entry);
}

struct WalkTrace {
  /// Departure half-edges d_0 .. d_k (k = steps taken).
  std::vector<graph::HalfEdge> departures;
  /// Vertices in first-visit order; starts with the start vertex.
  std::vector<graph::NodeId> first_visits;
  /// visited[v] true iff the walk entered (or started at) v.
  std::vector<bool> visited;
};

/// Reusable buffers for running many walks over the same graph: the visited
/// set is an epoch-stamped array (O(1) reset per start instead of an O(n)
/// clear or a fresh allocation), and `symbols` holds the current fill()
/// block.  A default-constructed scratch adapts to any graph size; reuse
/// one instance across starts and labellings of same-sized graphs for the
/// full benefit.
struct WalkScratch {
  std::vector<std::uint32_t> visit_epoch;  ///< stamp per vertex
  std::uint32_t epoch = 0;                 ///< current stamp value
  std::vector<Symbol> symbols;             ///< block buffer for fill()

  /// Readies the scratch for a graph with n vertices; returns the stamp to
  /// mark visits with this walk.
  std::uint32_t begin_walk(std::size_t n);
};

/// Follows `seq` from the start half-edge for `steps` steps (capped at
/// seq.length()).  d_0 = start consumes no symbol; step j consumes t_j.
WalkTrace trace_walk(const graph::Graph& g, graph::HalfEdge start,
                     const ExplorationSequence& seq, std::uint64_t steps);

/// The departure half-edge after exactly j steps (d_j), computed without
/// storing the trace — the log-space replay a node performs.  j <= length.
graph::HalfEdge walk_position(const graph::Graph& g, graph::HalfEdge start,
                              const ExplorationSequence& seq, std::uint64_t j);

/// First step count at which all vertices of the component of start.node
/// are visited, or nullopt if the sequence is exhausted first.
std::optional<std::uint64_t> cover_time(const graph::Graph& g,
                                        graph::HalfEdge start,
                                        const ExplorationSequence& seq);

/// cover_time with the component size precomputed: `need` must equal the
/// size of the component of start.node (the wrapper above computes it with
/// one BFS; callers sweeping many starts of the same graph compute it once
/// and thread it through).  `scratch` is reused across calls.
std::optional<std::uint64_t> cover_time(const graph::Graph& g,
                                        graph::HalfEdge start,
                                        const ExplorationSequence& seq,
                                        std::size_t need,
                                        WalkScratch& scratch);

/// True if the walk visits every vertex of the component of start.node.
bool covers_component(const graph::Graph& g, graph::HalfEdge start,
                      const ExplorationSequence& seq);

/// covers_component with precomputed component size and reusable scratch.
bool covers_component(const graph::Graph& g, graph::HalfEdge start,
                      const ExplorationSequence& seq, std::size_t need,
                      WalkScratch& scratch);

/// Number of distinct vertices the full walk visits (start included).
std::size_t visited_count(const graph::Graph& g, graph::HalfEdge start,
                          const ExplorationSequence& seq,
                          WalkScratch& scratch);

/// Cover step and visited count from ONE walk: `cover_step` as cover_time,
/// and `visited` the distinct vertices seen up to that step (== need when
/// covered, the full-walk count otherwise).  What the adversarial
/// universality search scores labellings by without walking twice.
struct CoverOutcome {
  std::optional<std::uint64_t> cover_step;
  std::size_t visited = 0;
};
CoverOutcome cover_outcome(const graph::Graph& g, graph::HalfEdge start,
                           const ExplorationSequence& seq, std::size_t need,
                           WalkScratch& scratch);

}  // namespace uesr::explore
