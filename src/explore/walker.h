// The exploration walk and its reversal (paper §2).
//
// A walk is represented by its *departure half-edges*: d_j = (v, p) means
// step j leaves vertex v through port p.  With arrival a_j = rot(d_j):
//
//   forward:  d_{j+1} = (a_j.node, (a_j.port + t_{j+1}) mod deg)
//   reverse:  a_{j-1} = (d_j.node, (d_j.port - t_j)   mod deg),
//             d_{j-1} = rot(a_{j-1})
//
// The reverse rule is the reversibility property the paper's backtracking
// confirmation relies on; `reverse_step(forward_step(x)) == x` is pinned by
// property tests across graphs, labellings, and sequences.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::explore {

/// One forward step: given the departure half-edge of step j and symbol
/// t_{j+1}, the departure half-edge of step j+1.
graph::HalfEdge forward_step(const graph::Graph& g, graph::HalfEdge d_j,
                             Symbol t_next);

/// One reverse step: given the departure half-edge of step j and symbol
/// t_j, the departure half-edge of step j-1.
graph::HalfEdge reverse_step(const graph::Graph& g, graph::HalfEdge d_j,
                             Symbol t_j);

struct WalkTrace {
  /// Departure half-edges d_0 .. d_k (k = steps taken).
  std::vector<graph::HalfEdge> departures;
  /// Vertices in first-visit order; starts with the start vertex.
  std::vector<graph::NodeId> first_visits;
  /// visited[v] true iff the walk entered (or started at) v.
  std::vector<bool> visited;
};

/// Follows `seq` from the start half-edge for `steps` steps (capped at
/// seq.length()).  d_0 = start consumes no symbol; step j consumes t_j.
WalkTrace trace_walk(const graph::Graph& g, graph::HalfEdge start,
                     const ExplorationSequence& seq, std::uint64_t steps);

/// The departure half-edge after exactly j steps (d_j), computed without
/// storing the trace — the log-space replay a node performs.  j <= length.
graph::HalfEdge walk_position(const graph::Graph& g, graph::HalfEdge start,
                              const ExplorationSequence& seq, std::uint64_t j);

/// First step count at which all vertices of the component of start.node
/// are visited, or nullopt if the sequence is exhausted first.
std::optional<std::uint64_t> cover_time(const graph::Graph& g,
                                        graph::HalfEdge start,
                                        const ExplorationSequence& seq);

/// True if the walk visits every vertex of the component of start.node.
bool covers_component(const graph::Graph& g, graph::HalfEdge start,
                      const ExplorationSequence& seq);

}  // namespace uesr::explore
