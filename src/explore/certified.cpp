#include "explore/certified.h"

#include <stdexcept>

#include "explore/degree_reduce.h"
#include "graph/algorithms.h"
#include "graph/catalog.h"
#include "graph/generators.h"

namespace uesr::explore {

using graph::Graph;
using graph::GraphBuilder;
using graph::HalfEdge;
using graph::NodeId;

std::vector<Graph> tiny_cubic_multigraphs() {
  std::vector<Graph> out;
  // 1 vertex, three half loops.
  {
    GraphBuilder b(1);
    b.add_half_loop(0);
    b.add_half_loop(0);
    b.add_half_loop(0);
    out.push_back(std::move(b).build());
  }
  // 1 vertex, full loop + half loop.
  {
    GraphBuilder b(1);
    b.add_edge(0, 0);
    b.add_half_loop(0);
    out.push_back(std::move(b).build());
  }
  // 2 vertices, triple edge (theta graph).
  {
    GraphBuilder b(2);
    b.add_edge(0, 1);
    b.add_edge(0, 1);
    b.add_edge(0, 1);
    out.push_back(std::move(b).build());
  }
  // 2 vertices, single edge + a half loop on each... needs degree 3:
  // edge + two half loops per vertex.
  {
    GraphBuilder b(2);
    b.add_edge(0, 1);
    b.add_half_loop(0);
    b.add_half_loop(0);
    b.add_half_loop(1);
    b.add_half_loop(1);
    out.push_back(std::move(b).build());
  }
  // 2 vertices, "dumbbell": full loop on each + connecting edge.
  {
    GraphBuilder b(2);
    b.add_edge(0, 0);
    b.add_edge(1, 1);
    b.add_edge(0, 1);
    out.push_back(std::move(b).build());
  }
  // 2 vertices, double edge + one half loop each.
  {
    GraphBuilder b(2);
    b.add_edge(0, 1);
    b.add_edge(0, 1);
    b.add_half_loop(0);
    b.add_half_loop(1);
    out.push_back(std::move(b).build());
  }
  // 3 vertices: triangle with a half loop on each vertex (degree reduction
  // of an isolated vertex).
  {
    GraphBuilder b(3);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 0);
    b.add_half_loop(0);
    b.add_half_loop(1);
    b.add_half_loop(2);
    out.push_back(std::move(b).build());
  }
  return out;
}

std::vector<Graph> certification_corpus(NodeId n, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("certification_corpus: n >= 1");
  std::vector<Graph> corpus;
  for (const Graph& g : tiny_cubic_multigraphs())
    if (g.num_nodes() <= n) corpus.push_back(g);
  for (NodeId m = 4; m <= n; m += 2)
    for (Graph& g : graph::connected_cubic_graphs(m, seed))
      corpus.push_back(std::move(g));
  // Degree-reduction outputs of small graphs: the loop patterns routing
  // actually traverses.
  const std::vector<Graph> smalls = {
      graph::path(2),  graph::path(3), graph::star(3), graph::cycle(3),
      graph::complete(4)};
  for (const Graph& g : smalls) {
    ReducedGraph r = reduce_to_cubic(g);
    if (r.cubic.num_nodes() <= n) corpus.push_back(std::move(r.cubic));
  }
  return corpus;
}

bool certify_sequence(const ExplorationSequence& seq, NodeId n,
                      std::uint64_t seed, Certificate& out,
                      std::uint64_t exhaustive_labeling_limit,
                      unsigned threads) {
  out = Certificate{};
  out.level = CertLevel::kExhaustive;
  // Corpus graphs are visited serially in corpus order; each graph's
  // labelling/trial space is what fans out (workers own their scratch
  // inside check_universal_*).  Counts accumulate in corpus order, so the
  // certificate is bit-identical for any thread count.
  for (const Graph& g : certification_corpus(n, seed)) {
    ++out.graphs_checked;
    UniversalityReport rep;
    if (labeling_count(g) <= exhaustive_labeling_limit) {
      rep = check_universal_exhaustive(g, seq, threads);
    } else {
      out.level = CertLevel::kAdversarial;
      rep = check_universal_sampled(g, seq, 200, seed ^ 0xabcdef, threads);
      if (rep.universal) {
        UniversalityReport adv = check_universal_adversarial(
            g, seq, 200, seed ^ 0x123456, threads);
        rep.labelings_checked += adv.labelings_checked;
        rep.walks_checked += adv.walks_checked;
        rep.universal = adv.universal;
        rep.witness = adv.witness;
      }
    }
    out.labelings_checked += rep.labelings_checked;
    out.walks_checked += rep.walks_checked;
    if (!rep.universal) return false;
  }
  return true;
}

CertifiedUes find_certified_ues(NodeId n, std::uint64_t seed,
                                std::uint64_t exhaustive_labeling_limit,
                                unsigned threads) {
  // Start well below the default length so the certificate, not the
  // safety margin, determines the final size.
  std::uint64_t len = std::max<std::uint64_t>(16, 4ULL * n * n);
  for (int doubling = 0; doubling < 24; ++doubling) {
    auto cand =
        std::make_shared<RandomExplorationSequence>(seed, len, n);
    Certificate cert;
    if (certify_sequence(*cand, n, seed, cert, exhaustive_labeling_limit,
                         threads)) {
      // Materialize so the certificate refers to an immutable artifact.
      std::vector<Symbol> symbols(len);
      for (std::uint64_t i = 1; i <= len; ++i)
        symbols[i - 1] = cand->symbol(i);
      CertifiedUes out;
      out.sequence = std::make_shared<FixedExplorationSequence>(
          std::move(symbols), n,
          "certified(n=" + std::to_string(n) + ",L=" + std::to_string(len) +
              ")");
      out.certificate = cert;
      return out;
    }
    len *= 2;
  }
  throw std::runtime_error("find_certified_ues: no certified length found");
}

}  // namespace uesr::explore
