#include "explore/walker.h"

#include <stdexcept>

#include "graph/algorithms.h"

namespace uesr::explore {

graph::HalfEdge forward_step(const graph::Graph& g, graph::HalfEdge d_j,
                             Symbol t_next) {
  graph::HalfEdge a = g.rotate(d_j.node, d_j.port);
  graph::Port deg = g.degree(a.node);
  return {a.node, (a.port + t_next) % deg};
}

graph::HalfEdge reverse_step(const graph::Graph& g, graph::HalfEdge d_j,
                             Symbol t_j) {
  graph::Port deg = g.degree(d_j.node);
  // (port - t) mod deg without relying on signed arithmetic.
  graph::Port entry = (d_j.port + deg - (t_j % deg)) % deg;
  return g.rotate(d_j.node, entry);
}

WalkTrace trace_walk(const graph::Graph& g, graph::HalfEdge start,
                     const ExplorationSequence& seq, std::uint64_t steps) {
  if (start.node >= g.num_nodes() || start.port >= g.degree(start.node))
    throw std::invalid_argument("trace_walk: bad start half-edge");
  steps = std::min(steps, seq.length());
  WalkTrace tr;
  tr.visited.assign(g.num_nodes(), false);
  auto visit = [&](graph::NodeId v) {
    if (!tr.visited[v]) {
      tr.visited[v] = true;
      tr.first_visits.push_back(v);
    }
  };
  graph::HalfEdge d = start;
  visit(d.node);
  tr.departures.reserve(steps + 1);
  tr.departures.push_back(d);
  // d_0 brings the walk to rot(d_0) before any symbol is consumed.
  visit(g.rotate(d.node, d.port).node);
  for (std::uint64_t j = 1; j <= steps; ++j) {
    d = forward_step(g, d, seq.symbol(j));
    tr.departures.push_back(d);
    visit(g.rotate(d.node, d.port).node);
  }
  return tr;
}

graph::HalfEdge walk_position(const graph::Graph& g, graph::HalfEdge start,
                              const ExplorationSequence& seq,
                              std::uint64_t j) {
  if (j > seq.length())
    throw std::out_of_range("walk_position: j beyond sequence");
  graph::HalfEdge d = start;
  for (std::uint64_t i = 1; i <= j; ++i) d = forward_step(g, d, seq.symbol(i));
  return d;
}

std::optional<std::uint64_t> cover_time(const graph::Graph& g,
                                        graph::HalfEdge start,
                                        const ExplorationSequence& seq) {
  std::size_t need = graph::component_of(g, start.node).size();
  std::vector<bool> visited(g.num_nodes(), false);
  std::size_t seen = 0;
  auto visit = [&](graph::NodeId v) {
    if (!visited[v]) {
      visited[v] = true;
      ++seen;
    }
  };
  graph::HalfEdge d = start;
  visit(d.node);
  visit(g.rotate(d.node, d.port).node);
  if (seen == need) return 0;
  for (std::uint64_t j = 1; j <= seq.length(); ++j) {
    d = forward_step(g, d, seq.symbol(j));
    visit(g.rotate(d.node, d.port).node);
    if (seen == need) return j;
  }
  return std::nullopt;
}

bool covers_component(const graph::Graph& g, graph::HalfEdge start,
                      const ExplorationSequence& seq) {
  return cover_time(g, start, seq).has_value();
}

}  // namespace uesr::explore
