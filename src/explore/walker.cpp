#include "explore/walker.h"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.h"

namespace uesr::explore {

using graph::Graph;
using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

std::uint32_t WalkScratch::begin_walk(std::size_t n) {
  if (visit_epoch.size() != n) {
    visit_epoch.assign(n, 0);
    epoch = 0;
  }
  if (++epoch == 0) {  // stamp wrapped: reset the array once per 2^32 walks
    std::fill(visit_epoch.begin(), visit_epoch.end(), 0u);
    epoch = 1;
  }
  return epoch;
}

WalkTrace trace_walk(const graph::Graph& g, graph::HalfEdge start,
                     const ExplorationSequence& seq, std::uint64_t steps) {
  if (start.node >= g.num_nodes() || start.port >= g.degree(start.node))
    throw std::invalid_argument("trace_walk: bad start half-edge");
  steps = std::min(steps, seq.length());
  WalkTrace tr;
  tr.visited.assign(g.num_nodes(), false);
  auto visit = [&](graph::NodeId v) {
    if (!tr.visited[v]) {
      tr.visited[v] = true;
      tr.first_visits.push_back(v);
    }
  };
  // Chain arrivals so each rotation map entry is loaded once per step.
  HalfEdge d = start;
  HalfEdge a = g.rotate(d.node, d.port);
  visit(d.node);
  tr.departures.reserve(steps + 1);
  tr.departures.push_back(d);
  // d_0 brings the walk to rot(d_0) before any symbol is consumed.
  visit(a.node);
  SymbolStream symbols(seq);
  for (std::uint64_t j = 1; j <= steps; ++j) {
    d = {a.node, wrap_port(a.port + symbols.next(), g.degree(a.node))};
    a = g.rotate(d.node, d.port);
    tr.departures.push_back(d);
    visit(a.node);
  }
  return tr;
}

graph::HalfEdge walk_position(const graph::Graph& g, graph::HalfEdge start,
                              const ExplorationSequence& seq,
                              std::uint64_t j) {
  if (j > seq.length())
    throw std::out_of_range("walk_position: j beyond sequence");
  HalfEdge d = start;
  if (j == 0) return d;
  HalfEdge a = g.rotate(d.node, d.port);
  SymbolStream symbols(seq);
  for (std::uint64_t i = 1; i <= j; ++i) {
    d = {a.node, wrap_port(a.port + symbols.next(), g.degree(a.node))};
    a = g.rotate(d.node, d.port);
  }
  return d;
}

namespace {

/// Shared cover loop: walks until `need` distinct vertices are stamped or
/// the sequence runs out.  Returns the cover step; `*out_seen` (optional)
/// receives the number of distinct vertices visited.
std::optional<std::uint64_t> cover_walk(const Graph& g, HalfEdge start,
                                        const ExplorationSequence& seq,
                                        std::size_t need, WalkScratch& scratch,
                                        std::size_t* out_seen) {
  const std::uint32_t stamp = scratch.begin_walk(g.num_nodes());
  std::size_t seen = 0;
  auto visit = [&](NodeId v) {
    if (scratch.visit_epoch[v] != stamp) {
      scratch.visit_epoch[v] = stamp;
      ++seen;
    }
  };
  HalfEdge d = start;
  HalfEdge a = g.rotate(d.node, d.port);
  visit(d.node);
  visit(a.node);
  if (seen == need) {
    if (out_seen) *out_seen = seen;
    return 0;
  }
  const std::uint64_t length = seq.length();
  std::uint64_t j = 0;
  // Geometric block ramp: a walk that covers in a few steps only pays for
  // a few symbols, while long walks amortize to full blocks.
  std::size_t block_size = 64;
  while (j < length) {
    const std::size_t block = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size, length - j));
    block_size = std::min(block_size * 2, SymbolStream::kBlock);
    scratch.symbols.resize(block);
    seq.fill(j + 1, block, scratch.symbols.data());
    for (std::size_t k = 0; k < block; ++k) {
      d = {a.node, wrap_port(a.port + scratch.symbols[k], g.degree(a.node))};
      a = g.rotate(d.node, d.port);
      ++j;
      visit(a.node);
      if (seen == need) {
        if (out_seen) *out_seen = seen;
        return j;
      }
    }
  }
  if (out_seen) *out_seen = seen;
  return std::nullopt;
}

}  // namespace

std::optional<std::uint64_t> cover_time(const graph::Graph& g,
                                        graph::HalfEdge start,
                                        const ExplorationSequence& seq) {
  WalkScratch scratch;
  return cover_time(g, start, seq,
                    graph::component_of(g, start.node).size(), scratch);
}

std::optional<std::uint64_t> cover_time(const graph::Graph& g,
                                        graph::HalfEdge start,
                                        const ExplorationSequence& seq,
                                        std::size_t need,
                                        WalkScratch& scratch) {
  return cover_walk(g, start, seq, need, scratch, nullptr);
}

bool covers_component(const graph::Graph& g, graph::HalfEdge start,
                      const ExplorationSequence& seq) {
  return cover_time(g, start, seq).has_value();
}

bool covers_component(const graph::Graph& g, graph::HalfEdge start,
                      const ExplorationSequence& seq, std::size_t need,
                      WalkScratch& scratch) {
  return cover_time(g, start, seq, need, scratch).has_value();
}

std::size_t visited_count(const graph::Graph& g, graph::HalfEdge start,
                          const ExplorationSequence& seq,
                          WalkScratch& scratch) {
  std::size_t seen = 0;
  // need that can never be met: the walk always runs to exhaustion.
  cover_walk(g, start, seq, static_cast<std::size_t>(-1), scratch, &seen);
  return seen;
}

CoverOutcome cover_outcome(const graph::Graph& g, graph::HalfEdge start,
                           const ExplorationSequence& seq, std::size_t need,
                           WalkScratch& scratch) {
  CoverOutcome out;
  out.cover_step = cover_walk(g, start, seq, need, scratch, &out.visited);
  return out;
}

}  // namespace uesr::explore
