#include "reingold/transform.h"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "util/rng.h"

namespace uesr::reingold {

void TransformParams::validate() const {
  if (!h) throw std::invalid_argument("TransformParams: null H");
  if (k == 0) throw std::invalid_argument("TransformParams: k == 0");
  std::uint64_t want = 1;
  for (std::uint32_t i = 0; i < 2 * k; ++i) want *= h->degree();
  if (h->num_vertices() != want)
    throw std::invalid_argument(
        "TransformParams: need |V(H)| == deg(H)^(2k) so degrees telescope");
}

std::shared_ptr<const RotationOracle> transform_level(
    std::shared_ptr<const RotationOracle> g, const TransformParams& params) {
  params.validate();
  if (g->degree() != params.h->num_vertices())
    throw std::invalid_argument(
        "transform_level: deg(G) must equal |V(H)|");
  return power(zigzag(std::move(g), params.h), params.k);
}

std::vector<std::shared_ptr<const RotationOracle>> transform_ladder(
    std::shared_ptr<const RotationOracle> g0, const TransformParams& params,
    unsigned levels) {
  std::vector<std::shared_ptr<const RotationOracle>> ladder{std::move(g0)};
  for (unsigned i = 0; i < levels; ++i)
    ladder.push_back(transform_level(ladder.back(), params));
  return ladder;
}

double lambda_oracle(const RotationOracle& g, int iterations,
                     std::uint64_t seed) {
  const std::uint64_t n = g.num_vertices();
  const std::uint32_t d = g.degree();
  if (n < 2) throw std::invalid_argument("lambda_oracle: need >= 2 vertices");
  util::Pcg32 rng(seed);
  std::vector<double> x(n), y(n);
  for (double& xi : x) xi = rng.next_double() - 0.5;
  auto deflate = [&](std::vector<double>& v) {
    double mean = 0.0;
    for (double vi : v) mean += vi;
    mean /= static_cast<double>(n);
    for (double& vi : v) vi -= mean;  // uniform vector is the top eigvec
  };
  auto normalize = [&](std::vector<double>& v) {
    double s = 0.0;
    for (double vi : v) s += vi * vi;
    s = std::sqrt(s);
    if (s > 0)
      for (double& vi : v) vi /= s;
    return s;
  };
  deflate(x);
  normalize(x);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    for (std::uint64_t v = 0; v < n; ++v) {
      double xv = x[v] / d;
      for (std::uint32_t i = 0; i < d; ++i)
        y[g.rotate({v, i}).vertex] += xv;
    }
    deflate(y);
    lambda = normalize(y);
    std::swap(x, y);
  }
  return lambda;
}

namespace {

std::vector<std::uint32_t> oracle_bfs(const RotationOracle& g,
                                      std::uint64_t from) {
  std::vector<std::uint32_t> dist(g.num_vertices(), ~0u);
  std::deque<std::uint64_t> queue{from};
  dist[from] = 0;
  while (!queue.empty()) {
    std::uint64_t v = queue.front();
    queue.pop_front();
    for (std::uint32_t i = 0; i < g.degree(); ++i) {
      std::uint64_t w = g.rotate({v, i}).vertex;
      if (dist[w] == ~0u) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace

bool oracle_connected(const RotationOracle& g, std::uint64_t from,
                      std::uint64_t to) {
  if (from >= g.num_vertices() || to >= g.num_vertices())
    throw std::invalid_argument("oracle_connected: vertex out of range");
  return oracle_bfs(g, from)[to] != ~0u;
}

std::uint32_t oracle_eccentricity(const RotationOracle& g,
                                  std::uint64_t from) {
  auto dist = oracle_bfs(g, from);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist)
    if (d != ~0u) ecc = std::max(ecc, d);
  return ecc;
}

}  // namespace uesr::reingold
