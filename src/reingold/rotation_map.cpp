#include "reingold/rotation_map.h"

#include <stdexcept>

namespace uesr::reingold {

DenseRotationMap::DenseRotationMap(std::uint64_t n, std::uint32_t d)
    : n_(n), d_(d), rot_(n * d) {
  if (d == 0) throw std::invalid_argument("DenseRotationMap: degree 0");
  // Initialize as all self-loops; set() overwrites.
  for (std::uint64_t v = 0; v < n; ++v)
    for (std::uint32_t i = 0; i < d; ++i) rot_[v * d_ + i] = {v, i};
}

Place DenseRotationMap::rotate(Place p) const {
  if (p.vertex >= n_ || p.edge >= d_)
    throw std::out_of_range("DenseRotationMap::rotate: bad place");
  return rot_[idx(p)];
}

void DenseRotationMap::set(Place a, Place b) {
  if (a.vertex >= n_ || a.edge >= d_ || b.vertex >= n_ || b.edge >= d_)
    throw std::out_of_range("DenseRotationMap::set: bad place");
  rot_[idx(a)] = b;
  rot_[idx(b)] = a;
}

void DenseRotationMap::validate() const {
  for (std::uint64_t v = 0; v < n_; ++v)
    for (std::uint32_t i = 0; i < d_; ++i) {
      Place p{v, i};
      Place q = rot_[idx(p)];
      if (q.vertex >= n_ || q.edge >= d_)
        throw std::logic_error("DenseRotationMap: place out of range");
      if (rot_[idx(q)] != p)
        throw std::logic_error("DenseRotationMap: not an involution");
    }
}

DenseRotationMap DenseRotationMap::from_graph(const graph::Graph& g) {
  std::uint32_t d = g.max_degree();
  if (!g.is_regular(d))
    throw std::invalid_argument("from_graph: graph not regular");
  DenseRotationMap m(g.num_nodes(), d);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    for (graph::Port p = 0; p < d; ++p) {
      graph::HalfEdge far = g.rotate(v, p);
      m.set({v, p}, {far.node, far.port});
    }
  m.validate();
  return m;
}

graph::Graph DenseRotationMap::to_graph() const {
  // rot_ is already a flat d-regular rotation map; hand it to the graph in
  // CSR form without building n per-vertex vectors.
  std::vector<graph::HalfEdge> half(n_ * d_);
  for (std::uint64_t v = 0; v < n_; ++v)
    for (std::uint32_t i = 0; i < d_; ++i) {
      Place q = rot_[v * d_ + i];
      half[v * d_ + i] = {static_cast<graph::NodeId>(q.vertex), q.edge};
    }
  std::vector<std::size_t> offsets(n_ + 1);
  for (std::uint64_t v = 0; v <= n_; ++v) offsets[v] = v * d_;
  return graph::from_rotation(std::move(offsets), std::move(half));
}

DenseRotationMap DenseRotationMap::materialize(const RotationOracle& o) {
  DenseRotationMap m(o.num_vertices(), o.degree());
  for (std::uint64_t v = 0; v < o.num_vertices(); ++v)
    for (std::uint32_t i = 0; i < o.degree(); ++i) {
      Place q = o.rotate({v, i});
      m.rot_[m.idx({v, i})] = q;
    }
  m.validate();
  return m;
}

DenseRotationMap pad_to_regular(const graph::Graph& g, std::uint32_t d) {
  if (g.max_degree() > d)
    throw std::invalid_argument("pad_to_regular: max degree exceeds d");
  DenseRotationMap m(g.num_nodes(), d);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    for (graph::Port p = 0; p < g.degree(v); ++p) {
      graph::HalfEdge far = g.rotate(v, p);
      m.set({v, p}, {far.node, far.port});
    }
  // Remaining places stay initialized as self-loops.
  m.validate();
  return m;
}

}  // namespace uesr::reingold
