#include "reingold/expander.h"

#include <cmath>
#include <stdexcept>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/spectral.h"

namespace uesr::reingold {

double ramanujan_bound(std::uint32_t d) {
  if (d < 2) throw std::invalid_argument("ramanujan_bound: d >= 2");
  return 2.0 * std::sqrt(static_cast<double>(d) - 1.0) / d;
}

ExpanderInfo find_expander(std::uint64_t D, std::uint32_t d,
                           std::uint64_t seed, int candidates) {
  if (D < d + 1)
    throw std::invalid_argument("find_expander: need D > d");
  util::SplitMix64 seeder(seed);
  ExpanderInfo best{DenseRotationMap(1, 1), 2.0};
  bool have = false;
  for (int c = 0; c < candidates; ++c) {
    graph::Graph g;
    try {
      // The configuration model's rejection rate explodes past d ~ 5;
      // switch-based sampling handles any degree.
      auto n = static_cast<graph::NodeId>(D);
      g = d <= 5 ? graph::random_connected_regular(n, d, seeder.next())
                 : graph::random_connected_regular_switch(n, d,
                                                          seeder.next());
    } catch (const std::exception&) {
      continue;  // parity or rejection issues at tiny sizes
    }
    if (graph::is_bipartite(g)) continue;  // lambda would be 1
    double lambda = D <= 220 ? graph::lambda_exact(g)
                             : graph::lambda_power(g, 500, seeder.next());
    if (!have || lambda < best.lambda) {
      best.rotation = DenseRotationMap::from_graph(g);
      best.lambda = lambda;
      have = true;
    }
  }
  if (!have)
    throw std::runtime_error(
        "find_expander: no usable candidate (D*d parity? bipartite?)");
  return best;
}

}  // namespace uesr::reingold
