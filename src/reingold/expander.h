// Base-expander search.
//
// Reingold's transform consumes a fixed (D, d, 1/2)-expander H.  At his
// parameters (D = d^16) H exists by brute force; at laptop scale we find
// good H by seeded random search: sample connected non-bipartite d-regular
// graphs on D vertices and keep the one with the smallest measured
// normalized second eigenvalue.  Random regular graphs are near-Ramanujan
// (lambda ~ 2*sqrt(d-1)/d) with high probability, so a handful of samples
// gets within a few percent of optimal.
#pragma once

#include <cstdint>

#include "reingold/rotation_map.h"

namespace uesr::reingold {

struct ExpanderInfo {
  DenseRotationMap rotation;
  double lambda = 1.0;  ///< measured normalized second eigenvalue
};

/// Best of `candidates` random d-regular graphs on D vertices (connected,
/// non-bipartite).  Deterministic per seed.
ExpanderInfo find_expander(std::uint64_t D, std::uint32_t d,
                           std::uint64_t seed, int candidates = 20);

/// Ramanujan bound 2*sqrt(d-1)/d — the best lambda any d-regular graph
/// family can approach; used to sanity-check search results.
double ramanujan_bound(std::uint32_t d);

}  // namespace uesr::reingold
