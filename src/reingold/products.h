// Graph products on rotation maps: powering, zig-zag, replacement.
//
// These are the combinators of Reingold's transform (and of the
// Reingold–Vadhan–Wigderson expander construction).  Each is provided as a
// lazy RotationOracle — products compose recursively, and evaluating one
// rotation of the product costs O(1) rotations of the factors, which is
// exactly the log-space evaluation trick the paper's Theorem 4 rests on —
// plus a materialization helper for small instances.
//
// Spectral facts the tests verify numerically:
//   * lambda(G^k)      =  lambda(G)^k
//   * lambda(G (z) H) <=  lambda(G) + lambda(H) + lambda(H)^2   [RVW Thm 4.3]
//   * both preserve connectivity of the underlying graph.
#pragma once

#include <cstdint>
#include <memory>

#include "reingold/rotation_map.h"

namespace uesr::reingold {

/// k-th power: vertices unchanged, degree D^k; an edge is a k-step walk,
/// labelled by the step sequence (little-endian in base D); the reverse
/// label is the reversed sequence of reverse steps.
std::shared_ptr<RotationOracle> power(std::shared_ptr<const RotationOracle> g,
                                      std::uint32_t k);

/// Zig-zag product G (z) H.  Requires |V(H)| == deg(G).  Result:
/// N*D vertices ((v,a) encoded as v*D + a), degree d^2 (label (i,j)
/// encoded i + j*d... see .cpp for the exact convention).
std::shared_ptr<RotationOracle> zigzag(std::shared_ptr<const RotationOracle> g,
                                       std::shared_ptr<const RotationOracle> h);

/// Replacement product G (r) H: N*D vertices, degree d+1 (labels < d walk
/// inside the H-cloud, label d crosses the G-edge).
std::shared_ptr<RotationOracle> replacement(
    std::shared_ptr<const RotationOracle> g,
    std::shared_ptr<const RotationOracle> h);

/// Convenience: wrap a dense map in a shared oracle.
std::shared_ptr<const RotationOracle> share(DenseRotationMap m);

}  // namespace uesr::reingold
