// Reingold's main transform and its instrumentation.
//
// The transform iterates   G_{i+1} = (G_i (z) H)^k   where H is a fixed
// (D, d)-expander with D = d^(2k): the zig-zag product drops the degree to
// d^2 (paying a bounded spectral loss) and the k-th power raises it back
// to D while *squaring-per-factor* the spectral gap.  After O(log N)
// levels the graph is a constant-gap expander, whose O(log N) diameter is
// what makes log-space connectivity possible.
//
// Reingold's own constants (D = d^16, k = 8) are famously astronomical;
// this module implements the transform exactly but is exercised at
// laptop-scale parameters, with every structural invariant tested and the
// spectral trajectory *measured* rather than assumed (bench E8).  See
// DESIGN.md §3's substitution record.
//
// Measured facts the tests pin:
//   * each level multiplies the vertex count by D and preserves degree D;
//   * rotation maps stay involutions at every level;
//   * connectivity is preserved level to level;
//   * lambda(G^k) = lambda(G)^k and the RVW zig-zag bound hold numerically.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "reingold/expander.h"
#include "reingold/products.h"
#include "reingold/rotation_map.h"

namespace uesr::reingold {

struct TransformParams {
  std::shared_ptr<const RotationOracle> h;  ///< (D, d) base expander
  std::uint32_t k = 2;                      ///< powering exponent

  /// Checks D == d^(2k); throws std::invalid_argument otherwise.
  void validate() const;
};

/// One transform level as a lazy oracle (O(k) factor-rotations per query).
std::shared_ptr<const RotationOracle> transform_level(
    std::shared_ptr<const RotationOracle> g, const TransformParams& params);

/// `levels` applications starting from g0; element 0 is g0 itself.
std::vector<std::shared_ptr<const RotationOracle>> transform_ladder(
    std::shared_ptr<const RotationOracle> g0, const TransformParams& params,
    unsigned levels);

/// Normalized second eigenvalue of an oracle-backed regular graph,
/// estimated by power iteration with deflation of the uniform vector.
/// Costs iterations * N * D rotations — materialization-free but meant
/// for moderate N * D.
double lambda_oracle(const RotationOracle& g, int iterations = 300,
                     std::uint64_t seed = 0x5eed);

/// True iff place-b is reachable from place-a's vertex, by BFS over the
/// oracle (used to verify connectivity preservation; NOT log-space — it is
/// the ground-truth checker, not the algorithm).
bool oracle_connected(const RotationOracle& g, std::uint64_t from,
                      std::uint64_t to);

/// Eccentricity of vertex `from` (max BFS distance within its component).
std::uint32_t oracle_eccentricity(const RotationOracle& g,
                                  std::uint64_t from);

}  // namespace uesr::reingold
