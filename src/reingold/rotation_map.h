// Rotation maps for regular graphs — the data structure of Reingold's
// algorithm [8] and of the zig-zag machinery (Reingold–Vadhan–Wigderson).
//
// A D-regular rotation map is a permutation-involution
//     Rot : [N] x [D] -> [N] x [D],   Rot(v, i) = (w, j)
// meaning "the i-th edge of v leads to w, and is w's j-th edge".  Fixed
// points (Rot(v,i) = (v,i)) are self-loops — the padding device Reingold
// uses to regularize graphs.
//
// Two representations:
//  * DenseRotationMap     — materialized flat array (fast, memory-bound);
//  * RotationOracle       — an interface evaluating Rot on demand, which is
//    how the log-space algorithm really works: products of oracles compose
//    *recursively* without materializing the (astronomically large)
//    product graphs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"

namespace uesr::reingold {

struct Place {
  std::uint64_t vertex = 0;
  std::uint32_t edge = 0;

  friend bool operator==(const Place&, const Place&) = default;
};

/// On-demand rotation evaluation.
class RotationOracle {
 public:
  virtual ~RotationOracle() = default;
  virtual std::uint64_t num_vertices() const = 0;
  virtual std::uint32_t degree() const = 0;
  virtual Place rotate(Place p) const = 0;
};

/// Materialized rotation map.
class DenseRotationMap final : public RotationOracle {
 public:
  DenseRotationMap(std::uint64_t n, std::uint32_t d);

  std::uint64_t num_vertices() const override { return n_; }
  std::uint32_t degree() const override { return d_; }
  Place rotate(Place p) const override;

  void set(Place a, Place b);  ///< sets Rot(a)=b and Rot(b)=a

  /// Verifies the involution property; throws std::logic_error otherwise.
  void validate() const;

  /// Builds from a d-regular port-labelled graph (loops allowed: a half
  /// loop becomes a rotation fixed point).
  static DenseRotationMap from_graph(const graph::Graph& g);

  /// Converts back to a Graph (for spectral tools and tests).
  graph::Graph to_graph() const;

  /// Materializes any oracle (use only when n*d is small!).
  static DenseRotationMap materialize(const RotationOracle& o);

 private:
  std::uint64_t n_;
  std::uint32_t d_;
  std::vector<Place> rot_;

  std::size_t idx(Place p) const { return p.vertex * d_ + p.edge; }
};

/// Regularization: pad an arbitrary graph to degree d with self-loops
/// (requires max degree <= d).  This is Reingold's G_0 preparation step.
DenseRotationMap pad_to_regular(const graph::Graph& g, std::uint32_t d);

}  // namespace uesr::reingold
