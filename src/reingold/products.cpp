#include "reingold/products.h"

#include <stdexcept>
#include <vector>

namespace uesr::reingold {

namespace {

class PowerOracle final : public RotationOracle {
 public:
  PowerOracle(std::shared_ptr<const RotationOracle> g, std::uint32_t k)
      : g_(std::move(g)), k_(k) {
    if (k_ == 0) throw std::invalid_argument("power: k == 0");
    degree_ = 1;
    for (std::uint32_t i = 0; i < k_; ++i) {
      if (degree_ > (std::uint32_t{1} << 30) / g_->degree())
        throw std::invalid_argument("power: degree overflow");
      degree_ *= g_->degree();
    }
  }

  std::uint64_t num_vertices() const override { return g_->num_vertices(); }
  std::uint32_t degree() const override { return degree_; }

  Place rotate(Place p) const override {
    const std::uint32_t D = g_->degree();
    // Decode the walk labels a_1..a_k (little-endian base D).
    std::vector<std::uint32_t> labels(k_);
    std::uint32_t e = p.edge;
    for (std::uint32_t i = 0; i < k_; ++i) {
      labels[i] = e % D;
      e /= D;
    }
    // Walk, collecting the reverse labels b_1..b_k.
    std::uint64_t v = p.vertex;
    std::vector<std::uint32_t> back(k_);
    for (std::uint32_t i = 0; i < k_; ++i) {
      Place q = g_->rotate({v, labels[i]});
      v = q.vertex;
      back[i] = q.edge;
    }
    // The reverse walk takes b_k, b_{k-1}, ..., b_1.
    std::uint32_t rev = 0;
    for (std::uint32_t i = 0; i < k_; ++i)
      rev = rev * D + back[i];  // b_1 ends most significant -> b_k first
    return {v, rev};
  }

 private:
  std::shared_ptr<const RotationOracle> g_;
  std::uint32_t k_;
  std::uint32_t degree_;
};

class ZigzagOracle final : public RotationOracle {
 public:
  ZigzagOracle(std::shared_ptr<const RotationOracle> g,
               std::shared_ptr<const RotationOracle> h)
      : g_(std::move(g)), h_(std::move(h)) {
    if (h_->num_vertices() != g_->degree())
      throw std::invalid_argument("zigzag: |V(H)| must equal deg(G)");
    if (h_->degree() > (1u << 15))
      throw std::invalid_argument("zigzag: H degree too large");
  }

  std::uint64_t num_vertices() const override {
    return g_->num_vertices() * g_->degree();
  }
  std::uint32_t degree() const override {
    return h_->degree() * h_->degree();
  }

  Place rotate(Place p) const override {
    const std::uint32_t D = g_->degree();
    const std::uint32_t d = h_->degree();
    std::uint64_t v = p.vertex / D;
    std::uint32_t a = static_cast<std::uint32_t>(p.vertex % D);
    std::uint32_t i = p.edge % d;
    std::uint32_t j = p.edge / d;
    // Zig: step inside the cloud.
    Place z1 = h_->rotate({a, i});
    std::uint32_t a1 = static_cast<std::uint32_t>(z1.vertex);
    std::uint32_t i1 = z1.edge;
    // Cross the G edge.
    Place z2 = g_->rotate({v, a1});
    std::uint64_t w = z2.vertex;
    std::uint32_t b1 = z2.edge;
    // Zag: step inside the far cloud.
    Place z3 = h_->rotate({b1, j});
    std::uint32_t b = static_cast<std::uint32_t>(z3.vertex);
    std::uint32_t j1 = z3.edge;
    // Reverse label is (j', i').
    return {w * D + b, j1 + i1 * d};
  }

 private:
  std::shared_ptr<const RotationOracle> g_;
  std::shared_ptr<const RotationOracle> h_;
};

class ReplacementOracle final : public RotationOracle {
 public:
  ReplacementOracle(std::shared_ptr<const RotationOracle> g,
                    std::shared_ptr<const RotationOracle> h)
      : g_(std::move(g)), h_(std::move(h)) {
    if (h_->num_vertices() != g_->degree())
      throw std::invalid_argument("replacement: |V(H)| must equal deg(G)");
  }

  std::uint64_t num_vertices() const override {
    return g_->num_vertices() * g_->degree();
  }
  std::uint32_t degree() const override { return h_->degree() + 1; }

  Place rotate(Place p) const override {
    const std::uint32_t D = g_->degree();
    const std::uint32_t d = h_->degree();
    std::uint64_t v = p.vertex / D;
    std::uint32_t a = static_cast<std::uint32_t>(p.vertex % D);
    if (p.edge < d) {
      Place q = h_->rotate({a, p.edge});
      return {v * D + q.vertex, q.edge};
    }
    Place q = g_->rotate({v, a});
    return {q.vertex * D + q.edge, d};
  }

 private:
  std::shared_ptr<const RotationOracle> g_;
  std::shared_ptr<const RotationOracle> h_;
};

}  // namespace

std::shared_ptr<RotationOracle> power(std::shared_ptr<const RotationOracle> g,
                                      std::uint32_t k) {
  return std::make_shared<PowerOracle>(std::move(g), k);
}

std::shared_ptr<RotationOracle> zigzag(
    std::shared_ptr<const RotationOracle> g,
    std::shared_ptr<const RotationOracle> h) {
  return std::make_shared<ZigzagOracle>(std::move(g), std::move(h));
}

std::shared_ptr<RotationOracle> replacement(
    std::shared_ptr<const RotationOracle> g,
    std::shared_ptr<const RotationOracle> h) {
  return std::make_shared<ReplacementOracle>(std::move(g), std::move(h));
}

std::shared_ptr<const RotationOracle> share(DenseRotationMap m) {
  return std::make_shared<DenseRotationMap>(std::move(m));
}

}  // namespace uesr::reingold
