#include "graph/io.h"

#include <sstream>
#include <stdexcept>

namespace uesr::graph {

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << "uesr-graph " << g.num_nodes() << "\n";
  // One line per half-edge pair, emitted from the lexicographically smaller
  // side; half loops emit themselves.  Exact rotation-map round trip.
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p) {
      HalfEdge far = g.rotate(v, p);
      if (HalfEdge{v, p} <= far)
        os << v << " " << p << " " << far.node << " " << far.port << "\n";
    }
  return os.str();
}

Graph from_edge_list(std::istream& is) {
  std::string magic;
  NodeId n = 0;
  if (!(is >> magic >> n) || magic != "uesr-graph")
    throw std::invalid_argument("from_edge_list: bad header");
  constexpr const char* kSpace = " \t\r";
  std::string line;
  std::getline(is, line);  // remainder of the header line
  if (line.find_first_not_of(kSpace) != std::string::npos)
    throw std::invalid_argument("from_edge_list: junk after header: '" +
                                line + "'");
  std::vector<std::vector<HalfEdge>> adj(n);
  auto place = [&](NodeId a, Port ap, HalfEdge far) {
    if (a >= n) throw std::invalid_argument("from_edge_list: node out of range");
    if (adj[a].size() <= ap) adj[a].resize(ap + 1, HalfEdge{a, Port(~0u)});
    if (adj[a][ap].port != Port(~0u))
      throw std::invalid_argument("from_edge_list: duplicate half-edge");
    adj[a][ap] = far;
  };
  // One record per line, parsed line-by-line so EOF is distinguishable
  // from junk: the old `is >> v >> p >> w >> q` loop stopped silently on
  // the first parse failure, turning a truncated or corrupted record into
  // an accepted prefix.
  while (std::getline(is, line)) {
    if (line.find_first_not_of(kSpace) == std::string::npos) continue;
    std::istringstream ls(line);
    NodeId v, w;
    Port p, q;
    if (!(ls >> v >> p >> w >> q))
      throw std::invalid_argument("from_edge_list: malformed line: '" +
                                  line + "'");
    ls >> std::ws;
    if (!ls.eof())
      throw std::invalid_argument("from_edge_list: trailing junk on line: '" +
                                  line + "'");
    place(v, p, {w, q});
    if (HalfEdge{v, p} != HalfEdge{w, q}) place(w, q, {v, p});
  }
  for (NodeId a = 0; a < n; ++a)
    for (Port ap = 0; ap < adj[a].size(); ++ap)
      if (adj[a][ap].port == Port(~0u))
        throw std::invalid_argument("from_edge_list: port gap");
  return from_rotation(std::move(adj));
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  return from_edge_list(is);
}

std::string to_dot(const Graph& g, const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p) {
      HalfEdge far = g.rotate(v, p);
      if (g.is_half_loop(v, p))
        os << "  " << v << " -- " << v << " [label=\"h\"];\n";
      else if (HalfEdge{v, p} < far)
        os << "  " << v << " -- " << far.node << ";\n";
    }
  os << "}\n";
  return os.str();
}

}  // namespace uesr::graph
