#include "graph/churn.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/table.h"

namespace uesr::graph {

namespace {

std::vector<std::pair<NodeId, NodeId>> edge_list(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (Port p = 0; p < g.degree(u); ++p) {
      NodeId v = g.neighbor(u, p);
      if (v > u) edges.push_back({u, v});
    }
  return edges;
}

}  // namespace

// ---- LinkFlapScenario ----------------------------------------------------

LinkFlapScenario::LinkFlapScenario(Graph base, unsigned flaps_per_epoch,
                                   std::uint64_t seed)
    : base_(std::move(base)), base_edges_(edge_list(base_)),
      flaps_(flaps_per_epoch), seed_(seed) {}

std::string LinkFlapScenario::name() const {
  return "flap(" + std::to_string(flaps_) + ")";
}

DynamicGraph LinkFlapScenario::initial() {
  tick_ = 0;
  return DynamicGraph(base_);
}

void LinkFlapScenario::advance(DynamicGraph& g) {
  ++tick_;
  if (!base_edges_.empty()) {
    util::Pcg32 rng(util::counter_hash(seed_, tick_));
    for (unsigned f = 0; f < flaps_; ++f) {
      const auto& [u, v] = base_edges_[rng.next_below(
          static_cast<std::uint32_t>(base_edges_.size()))];
      if (g.has_edge(u, v))
        g.remove_edge(u, v);
      else
        g.add_edge(u, v);
    }
  }
  g.commit();
}

std::unique_ptr<Scenario> LinkFlapScenario::fresh() const {
  return std::make_unique<LinkFlapScenario>(base_, flaps_, seed_);
}

// ---- NodeChurnScenario ---------------------------------------------------

NodeChurnScenario::NodeChurnScenario(Graph base, double p_leave,
                                     double p_join, std::uint64_t seed)
    : base_(std::move(base)), base_edges_(edge_list(base_)),
      p_leave_(p_leave), p_join_(p_join), seed_(seed) {
  if (p_leave < 0.0 || p_leave > 1.0 || p_join < 0.0 || p_join > 1.0)
    throw std::invalid_argument("NodeChurnScenario: probabilities in [0,1]");
}

std::string NodeChurnScenario::name() const {
  return "churn(" + util::format_double(p_leave_, 2) + "," +
         util::format_double(p_join_, 2) + ")";
}

DynamicGraph NodeChurnScenario::initial() {
  tick_ = 0;
  return DynamicGraph(base_);
}

void NodeChurnScenario::advance(DynamicGraph& g) {
  ++tick_;
  util::Pcg32 rng(util::counter_hash(seed_, tick_));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double r = rng.next_double();
    if (g.alive(v)) {
      if (r < p_leave_) g.set_alive(v, false);
    } else {
      if (r < p_join_) g.set_alive(v, true);
    }
  }
  // Live links are exactly the base links both of whose endpoints are up:
  // leaves dropped theirs above; rejoined pairs get theirs back here.
  for (const auto& [u, v] : base_edges_)
    if (g.alive(u) && g.alive(v)) g.add_edge(u, v);
  g.commit();
}

std::unique_ptr<Scenario> NodeChurnScenario::fresh() const {
  return std::make_unique<NodeChurnScenario>(base_, p_leave_, p_join_, seed_);
}

// ---- WaypointScenario ----------------------------------------------------

WaypointScenario::WaypointScenario(NodeId n, int dim, double radius,
                                   double speed, std::uint64_t seed)
    : n_(n), dim_(dim), radius_(radius), speed_(speed), seed_(seed) {
  if (n < 1) throw std::invalid_argument("WaypointScenario: n >= 1");
  if (dim != 2 && dim != 3)
    throw std::invalid_argument("WaypointScenario: dim is 2 or 3");
  if (radius <= 0.0 || speed <= 0.0)
    throw std::invalid_argument("WaypointScenario: radius, speed > 0");
}

std::string WaypointScenario::name() const {
  return "waypoint" + std::to_string(dim_) + "d(r=" +
         util::format_double(radius_, 2) + ",v=" +
         util::format_double(speed_, 2) + ")";
}

double WaypointScenario::draw_coord(std::uint64_t salt, NodeId i,
                                    int c) const {
  const std::uint64_t counter =
      (salt << 34) ^ (static_cast<std::uint64_t>(i) << 2) ^
      static_cast<std::uint64_t>(c);
  // 53-bit mantissa of a uniform double in [0, 1).
  return static_cast<double>(util::counter_hash(seed_, counter) >> 11) *
         0x1.0p-53;
}

DynamicGraph WaypointScenario::initial() {
  tick_ = 0;
  waypoint_draws_ = 0;
  points_.resize(n_);
  waypoints_.resize(n_);
  for (NodeId i = 0; i < n_; ++i) {
    points_[i] = {draw_coord(0, i, 0), draw_coord(0, i, 1),
                  dim_ == 3 ? draw_coord(0, i, 2) : 0.0};
    waypoints_[i] = {draw_coord(1, i, 0), draw_coord(1, i, 1),
                     dim_ == 3 ? draw_coord(1, i, 2) : 0.0};
  }
  DynamicGraph g(n_);
  if (dim_ == 2) {
    std::vector<Point2> pos(n_);
    for (NodeId i = 0; i < n_; ++i) pos[i] = {points_[i].x, points_[i].y};
    g.set_positions(std::move(pos));
  } else {
    g.set_positions(points_);
  }
  g.rederive_unit_disk(radius_);
  g.commit();
  return g;
}

void WaypointScenario::move_points() {
  for (NodeId i = 0; i < n_; ++i) {
    Point3& p = points_[i];
    const Point3& w = waypoints_[i];
    const double dx = w.x - p.x, dy = w.y - p.y, dz = w.z - p.z;
    const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (dist <= speed_) {
      p = w;  // arrived: draw the next private waypoint
      ++waypoint_draws_;
      waypoints_[i] = {draw_coord(1 + waypoint_draws_, i, 0),
                       draw_coord(1 + waypoint_draws_, i, 1),
                       dim_ == 3 ? draw_coord(1 + waypoint_draws_, i, 2)
                                 : 0.0};
    } else {
      const double step = speed_ / dist;
      p.x += dx * step;
      p.y += dy * step;
      p.z += dz * step;
    }
  }
}

void WaypointScenario::advance(DynamicGraph& g) {
  ++tick_;
  move_points();
  if (dim_ == 2) {
    std::vector<Point2> pos(n_);
    for (NodeId i = 0; i < n_; ++i) pos[i] = {points_[i].x, points_[i].y};
    g.set_positions(std::move(pos));
  } else {
    g.set_positions(points_);
  }
  g.rederive_unit_disk(radius_);
  g.commit();
}

std::unique_ptr<Scenario> WaypointScenario::fresh() const {
  return std::make_unique<WaypointScenario>(n_, dim_, radius_, speed_, seed_);
}

}  // namespace uesr::graph
