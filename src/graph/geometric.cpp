#include "graph/geometric.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "graph/algorithms.h"
#include "util/table.h"

namespace uesr::graph {

double distance(const Point2& a, const Point2& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double distance(const Point3& a, const Point3& b) {
  double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

Positioned2 unit_disk_2d(NodeId n, double radius, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("unit_disk_2d: n >= 1");
  if (radius <= 0.0) throw std::invalid_argument("unit_disk_2d: radius > 0");
  util::Pcg32 rng(seed);
  std::vector<Point2> pos(n);
  for (auto& p : pos) p = {rng.next_double(), rng.next_double()};
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (distance(pos[i], pos[j]) <= radius) b.add_edge(i, j);
  return {std::move(b).build(), std::move(pos)};
}

Positioned3 unit_disk_3d(NodeId n, double radius, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("unit_disk_3d: n >= 1");
  if (radius <= 0.0) throw std::invalid_argument("unit_disk_3d: radius > 0");
  util::Pcg32 rng(seed);
  std::vector<Point3> pos(n);
  for (auto& p : pos)
    p = {rng.next_double(), rng.next_double(), rng.next_double()};
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (distance(pos[i], pos[j]) <= radius) b.add_edge(i, j);
  return {std::move(b).build(), std::move(pos)};
}

namespace {

constexpr std::uint32_t kConnectedResampleBudget = 10000;

[[noreturn]] void throw_sub_critical(const char* who, NodeId n,
                                     double radius) {
  throw std::runtime_error(
      std::string(who) + ": no connected instance in " +
      std::to_string(kConnectedResampleBudget) + " attempts (n=" +
      std::to_string(n) + ", radius=" + util::format_double(radius, 6) +
      "); the radius is sub-critical for this n");
}

}  // namespace

Positioned2 connected_unit_disk_2d(NodeId n, double radius,
                                   std::uint64_t seed) {
  util::SplitMix64 seeder(seed);
  for (std::uint32_t attempt = 0; attempt < kConnectedResampleBudget;
       ++attempt) {
    Positioned2 g = unit_disk_2d(n, radius, seeder.next());
    if (is_connected(g.graph)) {
      g.resamples = attempt;
      return g;
    }
  }
  throw_sub_critical("connected_unit_disk_2d", n, radius);
}

Positioned3 connected_unit_disk_3d(NodeId n, double radius,
                                   std::uint64_t seed) {
  util::SplitMix64 seeder(seed);
  for (std::uint32_t attempt = 0; attempt < kConnectedResampleBudget;
       ++attempt) {
    Positioned3 g = unit_disk_3d(n, radius, seeder.next());
    if (is_connected(g.graph)) {
      g.resamples = attempt;
      return g;
    }
  }
  throw_sub_critical("connected_unit_disk_3d", n, radius);
}

Positioned2 gabriel_subgraph(const Positioned2& in) {
  const Graph& g = in.graph;
  const auto& pos = in.positions;
  GraphBuilder b(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (Port p = 0; p < g.degree(u); ++p) {
      NodeId v = g.neighbor(u, p);
      if (v <= u) continue;  // undirected: handle each edge once; skip loops
      Point2 mid{(pos[u].x + pos[v].x) / 2.0, (pos[u].y + pos[v].y) / 2.0};
      double r = distance(pos[u], pos[v]) / 2.0;
      bool keep = true;
      for (NodeId w = 0; w < g.num_nodes() && keep; ++w) {
        if (w == u || w == v) continue;
        // Strictly inside the diametral circle blocks the edge.
        if (distance(pos[w], mid) < r * (1.0 - 1e-12)) keep = false;
      }
      if (keep) b.add_edge(u, v);
    }
  }
  return {std::move(b).build(), pos, in.resamples};
}

namespace {

int orientation(const Point2& a, const Point2& b, const Point2& c) {
  double cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  constexpr double kEps = 1e-12;
  if (cross > kEps) return 1;
  if (cross < -kEps) return -1;
  return 0;
}

bool on_segment(const Point2& a, const Point2& b, const Point2& p) {
  return std::min(a.x, b.x) - 1e-12 <= p.x && p.x <= std::max(a.x, b.x) + 1e-12 &&
         std::min(a.y, b.y) - 1e-12 <= p.y && p.y <= std::max(a.y, b.y) + 1e-12;
}

/// Proper crossing test for segments ab, cd sharing no endpoint.
bool segments_cross(const Point2& a, const Point2& b, const Point2& c,
                    const Point2& d) {
  int o1 = orientation(a, b, c), o2 = orientation(a, b, d);
  int o3 = orientation(c, d, a), o4 = orientation(c, d, b);
  if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0)
    return true;
  // Collinear overlap also counts as a crossing for planarity purposes.
  if (o1 == 0 && on_segment(a, b, c)) return true;
  if (o2 == 0 && on_segment(a, b, d)) return true;
  if (o3 == 0 && on_segment(c, d, a)) return true;
  if (o4 == 0 && on_segment(c, d, b)) return true;
  return false;
}

}  // namespace

bool is_plane_embedding(const Positioned2& in) {
  const Graph& g = in.graph;
  const auto& pos = in.positions;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (Port p = 0; p < g.degree(u); ++p) {
      NodeId v = g.neighbor(u, p);
      if (v > u) edges.push_back({u, v});
    }
  for (std::size_t i = 0; i < edges.size(); ++i)
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      auto [a, b] = edges[i];
      auto [c, d] = edges[j];
      if (a == c || a == d || b == c || b == d) continue;
      if (segments_cross(pos[a], pos[b], pos[c], pos[d])) return false;
    }
  return true;
}

}  // namespace uesr::graph
