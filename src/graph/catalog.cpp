#include "graph/catalog.h"

#include <map>
#include <stdexcept>

#include "graph/algorithms.h"
#include "graph/canonical.h"
#include "graph/generators.h"

namespace uesr::graph {

std::size_t known_cubic_count(NodeId n) {
  switch (n) {
    case 4:
      return 1;
    case 6:
      return 2;
    case 8:
      return 5;
    case 10:
      return 19;
    case 12:
      return 85;
    default:
      throw std::invalid_argument("known_cubic_count: only n in {4..12 even}");
  }
}

std::vector<Graph> connected_cubic_graphs(NodeId n, std::uint64_t seed,
                                          std::size_t stall_limit) {
  if (n < 4 || n % 2 != 0)
    throw std::invalid_argument("connected_cubic_graphs: n even, >= 4");
  std::map<CanonicalCode, Graph> classes;
  auto offer = [&](const Graph& g) -> bool {
    return classes.emplace(canonical_code(g), g).second;
  };
  // Seed with named graphs of matching size: guarantees the famous
  // hard-to-sample members are present and exercises the dedup path.
  if (n == 4) offer(k4());
  if (n == 6) {
    offer(k33());
    offer(prism(3));
  }
  if (n == 8) {
    offer(cube_q3());
    offer(prism(4));
  }
  if (n == 10) {
    offer(petersen());
    offer(prism(5));
  }
  if (n == 12) offer(prism(6));

  util::SplitMix64 seeder(seed);
  std::size_t expected = 0;
  try {
    expected = known_cubic_count(n);
  } catch (const std::invalid_argument&) {
    expected = 0;  // unknown size: rely on the stall limit alone
  }
  std::size_t stall = 0;
  // Hard cap keeps the routine total even if stall_limit is set absurdly.
  for (std::size_t iter = 0; iter < 400000; ++iter) {
    if (expected != 0 && classes.size() == expected) break;
    if (expected == 0 && stall >= stall_limit) break;
    Graph g = random_connected_regular(n, 3, seeder.next());
    if (offer(g))
      stall = 0;
    else
      ++stall;
  }
  if (expected != 0 && classes.size() != expected)
    throw std::runtime_error(
        "connected_cubic_graphs: sampling did not reach the known class "
        "count; increase stall_limit");
  std::vector<Graph> out;
  out.reserve(classes.size());
  for (auto& [code, g] : classes) out.push_back(std::move(g));
  return out;
}

}  // namespace uesr::graph
