// Canonical forms and isomorphism testing for small graphs.
//
// Implements individualization–refinement canonical labelling (the core idea
// behind nauty, without its optimizations): refine a vertex colouring to
// equitability, branch on the first non-singleton colour class, and take the
// lexicographically least adjacency code over all branches.  Exponential in
// the worst case but entirely adequate for the small cubic graphs the UES
// certification catalogue works with (n <= 16).
//
// The code distinguishes parallel edges, full loops, and half loops (port
// multiplicities at each vertex enter the encoding), but deliberately
// ignores port *labels* — universality quantifies over all labellings, so
// catalogue identity must be label-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace uesr::graph {

/// Canonical adjacency code: equal codes iff isomorphic (as multigraphs).
using CanonicalCode = std::vector<std::uint32_t>;

CanonicalCode canonical_code(const Graph& g);

bool is_isomorphic(const Graph& a, const Graph& b);

/// 64-bit digest of the canonical code (for hash-based dedup).
std::uint64_t canonical_hash(const Graph& g);

}  // namespace uesr::graph
