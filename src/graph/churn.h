// Dynamic-topology scenario generators: the schedules the churn experiments
// route under.
//
// A Scenario owns a deterministic schedule of epochs over a DynamicGraph:
// initial() (re)builds the epoch-0 topology and advance() stages + commits
// the next epoch.  Replays are exact — fresh() clones a scenario back to
// the start of its schedule, and every random choice derives from the
// construction seed (tick-indexed via counter_hash where the schedule is
// memoryless), so two replays of the same scenario produce bit-identical
// epoch sequences.  That is what lets the ChurnRouter harness run four
// routers "under identical schedules" and lets churn experiments fan trials
// out over threads without the tables moving (PR 3 convention).
//
// Three families, mirroring how real ad hoc topologies change:
//   * LinkFlapScenario   — radio links of a base graph go down and come
//     back (interference, duty cycling).
//   * NodeChurnScenario  — nodes leave and rejoin (battery, sleep
//     schedules); the live edge set is always base ∩ alive².
//   * WaypointScenario   — random-waypoint mobility in the unit square /
//     cube; each epoch moves every node toward its waypoint and re-derives
//     the unit-disk radio graph from the new positions (the model of the
//     1/2-disk scheme's mobile relays in PAPERS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/dynamic.h"
#include "graph/graph.h"

namespace uesr::graph {

class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual std::string name() const = 0;

  /// Node count of every graph this scenario produces.
  virtual NodeId num_nodes() const = 0;

  /// Rebuilds the epoch-0 topology and rewinds the schedule: after
  /// initial(), the next advance() is epoch tick 1 again.
  virtual DynamicGraph initial() = 0;

  /// Stages and commits the next scheduled epoch on g.  g must be the
  /// graph this scenario's own initial()/advance() calls produced.
  virtual void advance(DynamicGraph& g) = 0;

  /// A clone rewound to the start of the schedule (for replays from const
  /// contexts; the clone replays the identical epoch sequence).
  virtual std::unique_ptr<Scenario> fresh() const = 0;
};

/// Each epoch toggles `flaps` links drawn (with replacement) from the base
/// graph's edge list: a present link goes down, an absent one comes back.
/// The toggle set of tick k is a pure function of (seed, k).
class LinkFlapScenario final : public Scenario {
 public:
  LinkFlapScenario(Graph base, unsigned flaps_per_epoch, std::uint64_t seed);

  std::string name() const override;
  NodeId num_nodes() const override { return base_.num_nodes(); }
  DynamicGraph initial() override;
  void advance(DynamicGraph& g) override;
  std::unique_ptr<Scenario> fresh() const override;

 private:
  Graph base_;
  std::vector<std::pair<NodeId, NodeId>> base_edges_;
  unsigned flaps_;
  std::uint64_t seed_;
  std::uint64_t tick_ = 0;
};

/// Each epoch every alive node leaves with probability p_leave and every
/// dead node rejoins with probability p_join; the edge set is then restored
/// to {base edges with both endpoints alive}.  Flips at tick k are a pure
/// function of (seed, k).  With p_leave high enough this isolates sources —
/// the schedule the random-walk livelock fix is tested under.
class NodeChurnScenario final : public Scenario {
 public:
  NodeChurnScenario(Graph base, double p_leave, double p_join,
                    std::uint64_t seed);

  std::string name() const override;
  NodeId num_nodes() const override { return base_.num_nodes(); }
  DynamicGraph initial() override;
  void advance(DynamicGraph& g) override;
  std::unique_ptr<Scenario> fresh() const override;

 private:
  Graph base_;
  std::vector<std::pair<NodeId, NodeId>> base_edges_;
  double p_leave_, p_join_;
  std::uint64_t seed_;
  std::uint64_t tick_ = 0;
};

/// Random-waypoint mobility: n nodes in the unit square (dim 2) or cube
/// (dim 3), each walking toward a private waypoint at `speed` per epoch and
/// drawing a new waypoint on arrival; every epoch re-derives the unit-disk
/// radio graph at `radius` and publishes the new positions (so geographic
/// baselines route on live coordinates).  The whole trajectory is a pure
/// function of the construction parameters.
class WaypointScenario final : public Scenario {
 public:
  WaypointScenario(NodeId n, int dim, double radius, double speed,
                   std::uint64_t seed);

  std::string name() const override;
  NodeId num_nodes() const override { return n_; }
  DynamicGraph initial() override;
  void advance(DynamicGraph& g) override;
  std::unique_ptr<Scenario> fresh() const override;

 private:
  /// Coordinate c of node i at schedule start / its current waypoint.
  double draw_coord(std::uint64_t salt, NodeId i, int c) const;
  void move_points();

  NodeId n_;
  int dim_;
  double radius_, speed_;
  std::uint64_t seed_;
  std::uint64_t tick_ = 0;
  std::uint64_t waypoint_draws_ = 0;  ///< total re-draws so far (replay state)
  std::vector<Point3> points_;        ///< z unused when dim == 2
  std::vector<Point3> waypoints_;
};

}  // namespace uesr::graph
