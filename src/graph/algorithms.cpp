#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace uesr::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId s) {
  if (s >= g.num_nodes()) throw std::invalid_argument("bfs_distances: bad s");
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue{s};
  dist[s] = 0;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    for (Port p = 0; p < g.degree(v); ++p) {
      NodeId w = g.neighbor(v, p);
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

bool has_path(const Graph& g, NodeId s, NodeId t) {
  if (t >= g.num_nodes()) throw std::invalid_argument("has_path: bad t");
  return bfs_distances(g, s)[t] != kUnreachable;
}

std::vector<NodeId> component_of(const Graph& g, NodeId s) {
  if (s >= g.num_nodes()) throw std::invalid_argument("component_of: bad s");
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> order{s};
  seen[s] = true;
  for (std::size_t i = 0; i < order.size(); ++i) {
    NodeId v = order[i];
    for (Port p = 0; p < g.degree(v); ++p) {
      NodeId w = g.neighbor(v, p);
      if (!seen[w]) {
        seen[w] = true;
        order.push_back(w);
      }
    }
  }
  return order;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> comp(g.num_nodes(), kUnreachable);
  std::uint32_t next = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != kUnreachable) continue;
    for (NodeId v : component_of(g, s)) comp[v] = next;
    ++next;
  }
  return comp;
}

std::size_t num_components(const Graph& g) {
  auto comp = connected_components(g);
  std::uint32_t mx = 0;
  for (std::uint32_t c : comp) mx = std::max(mx, c + 1);
  return g.num_nodes() == 0 ? 0 : mx;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return component_of(g, 0).size() == g.num_nodes();
}

std::uint32_t component_diameter(const Graph& g, NodeId s) {
  std::uint32_t diam = 0;
  for (NodeId v : component_of(g, s)) {
    auto dist = bfs_distances(g, v);
    for (NodeId w = 0; w < g.num_nodes(); ++w)
      if (dist[w] != kUnreachable) diam = std::max(diam, dist[w]);
  }
  return diam;
}

bool is_bipartite(const Graph& g) {
  std::vector<int> side(g.num_nodes(), -1);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (side[s] != -1) continue;
    side[s] = 0;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      for (Port p = 0; p < g.degree(v); ++p) {
        NodeId w = g.neighbor(v, p);
        if (w == v) return false;  // loop: odd closed walk
        if (side[w] == -1) {
          side[w] = 1 - side[v];
          queue.push_back(w);
        } else if (side[w] == side[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace uesr::graph
