// Epoch-stamped mutable topology — the "ad hoc" in the paper's title.
//
// Every routing layer below this one works on an immutable graph::Graph;
// real ad hoc networks are "networks with frequently changing topology"
// (§1).  DynamicGraph models that as a sequence of epochs: mutators
// (add_edge / remove_edge / set_alive / set_positions / rederive_unit_disk)
// stage changes against a working edge set, and commit() seals them into a
// new epoch with a freshly built CSR snapshot (the PR 2 flat layout).  The
// epoch counter is monotone: it advances exactly when commit() finds staged
// changes, so `epoch()` is a version stamp a mid-walk router can compare to
// detect that the network moved under it (core::DynamicRouteSession).
//
// Model choices, relied on throughout the dynamic subsystem:
//   * The node namespace is fixed at construction.  "Churn" is modelled by
//     the alive flag: a node that leaves keeps its id but drops all
//     incident edges; a later join restores the id as an isolated node
//     (scenario generators re-add edges).  Names therefore stay stable
//     across epochs, which is what lets a restarted route keep targeting
//     the same t.
//   * The working state is a simple graph (no loops / parallel edges) —
//     the radio-graph regime every scenario generator produces.  Snapshot
//     ports are assigned in sorted edge order, so a given edge set always
//     yields the same port labelling (determinism contract).
//   * Readers of the committed epoch (snapshot(), positions_2d/3d()) never
//     see staged edits; only commit() publishes.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "graph/geometric.h"
#include "graph/graph.h"

namespace uesr::graph {

class DynamicGraph {
 public:
  /// n alive, isolated nodes; epoch 0 is committed immediately.
  explicit DynamicGraph(NodeId n);

  /// Adopts the edge set of a (simple) graph as epoch 0, all nodes alive.
  /// Throws if g has loops or parallel edges.
  explicit DynamicGraph(const Graph& g);

  NodeId num_nodes() const { return num_nodes_; }

  /// Monotone version stamp of the committed topology.  Advances by one at
  /// every commit() that found staged changes; never otherwise.
  std::uint64_t epoch() const { return epoch_; }

  /// True when staged edits exist that commit() has not yet published.
  bool dirty() const { return dirty_; }

  // --- staged mutators (visible to readers only after commit()) ---------

  /// Stages edge {u, v}.  Returns false (and stages nothing) when the edge
  /// already exists, u == v, or either endpoint is not alive.
  bool add_edge(NodeId u, NodeId v);

  /// Stages removal of {u, v}; false when the edge is absent.
  bool remove_edge(NodeId u, NodeId v);

  /// Stages a join (alive = true) or leave (alive = false); a leave drops
  /// every incident edge.  Returns false when v already has that state.
  bool set_alive(NodeId v, bool alive);

  bool alive(NodeId v) const;

  /// Staged (working) edge state — what the next commit will publish.
  bool has_edge(NodeId u, NodeId v) const;
  std::size_t num_staged_edges() const { return edges_.size(); }

  /// Stages positions for every node (size must be num_nodes()).  Always
  /// marks the epoch dirty: a moved swarm is a new epoch even if the radio
  /// graph happens to coincide, and position-based routers read positions.
  void set_positions(std::vector<Point2> pos);
  void set_positions(std::vector<Point3> pos);

  bool has_positions_2d() const { return !committed_pos2_.empty(); }
  bool has_positions_3d() const { return !committed_pos3_.empty(); }

  /// Committed positions of the current epoch.
  const std::vector<Point2>& positions_2d() const { return committed_pos2_; }
  const std::vector<Point3>& positions_3d() const { return committed_pos3_; }

  /// Stages the radio graph induced by the *staged* positions: edge iff
  /// both endpoints alive and within `radius` (unit-disk, 2D or 3D —
  /// whichever positions were set; throws when neither).
  void rederive_unit_disk(double radius);

  /// Publishes staged edits.  When anything changed, advances epoch() and
  /// rebuilds the CSR snapshot; otherwise a no-op.  Returns epoch().
  std::uint64_t commit();

  /// The committed epoch's immutable CSR graph.  Valid until the next
  /// commit() that advances the epoch.
  const Graph& snapshot() const { return snapshot_; }

 private:
  using Edge = std::pair<NodeId, NodeId>;  // normalized u < v

  static Edge normalize(NodeId u, NodeId v);
  void check_node(NodeId v, const char* who) const;
  void rebuild_snapshot();

  NodeId num_nodes_ = 0;
  std::uint64_t epoch_ = 0;
  bool dirty_ = false;
  std::set<Edge> edges_;      ///< staged edge set
  std::vector<char> alive_;   ///< staged alive flags
  std::vector<Point2> pos2_;  ///< staged positions (empty = none)
  std::vector<Point3> pos3_;
  Graph snapshot_;            ///< committed CSR graph
  std::vector<Point2> committed_pos2_;
  std::vector<Point3> committed_pos3_;
};

}  // namespace uesr::graph
