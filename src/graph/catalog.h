// Catalogue of connected simple cubic (3-regular) graphs.
//
// Universal exploration sequences are defined over *all* connected 3-regular
// graphs of a given size (Definition 3 in the paper).  For small n the
// isomorphism classes are few and completely known — OEIS A002851 gives
// 1, 2, 5, 19, 85 classes for n = 4, 6, 8, 10, 12 — so universality of a
// candidate sequence can be *certified exhaustively* by enumerating the
// catalogue, all port labellings, and all start edges.
//
// The catalogue is materialized by seeded random sampling of the pairing
// model with canonical-form dedup until the class set stabilizes; tests
// assert the exact OEIS counts, which makes the construction self-checking.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace uesr::graph {

/// Number of isomorphism classes of connected simple cubic graphs on n
/// vertices for n in {4, 6, 8, 10, 12} (OEIS A002851); throws otherwise.
std::size_t known_cubic_count(NodeId n);

/// All isomorphism classes of connected simple cubic graphs on n vertices
/// (canonical representatives, deterministic order).  Sampling-based; stops
/// after `stall_limit` consecutive samples discover no new class, then
/// cross-checks against known_cubic_count when available and keeps sampling
/// if classes are still missing.  Practical for n <= 12.
std::vector<Graph> connected_cubic_graphs(NodeId n, std::uint64_t seed,
                                          std::size_t stall_limit = 3000);

}  // namespace uesr::graph
