#include "graph/generators.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.h"

namespace uesr::graph {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

Graph path(NodeId n) {
  require(n >= 1, "path: n >= 1");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

Graph cycle(NodeId n) {
  require(n >= 3, "cycle: n >= 3");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return std::move(b).build();
}

Graph complete(NodeId n) {
  require(n >= 1, "complete: n >= 1");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  return std::move(b).build();
}

Graph complete_bipartite(NodeId a, NodeId b_count) {
  require(a >= 1 && b_count >= 1, "complete_bipartite: sides >= 1");
  GraphBuilder b(a + b_count);
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b_count; ++j) b.add_edge(i, a + j);
  return std::move(b).build();
}

Graph star(NodeId leaves) {
  require(leaves >= 1, "star: leaves >= 1");
  GraphBuilder b(leaves + 1);
  for (NodeId i = 1; i <= leaves; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

Graph grid(NodeId rows, NodeId cols) {
  require(rows >= 1 && cols >= 1, "grid: dims >= 1");
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  return std::move(b).build();
}

Graph torus(NodeId rows, NodeId cols) {
  require(rows >= 3 && cols >= 3, "torus: dims >= 3");
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  return std::move(b).build();
}

Graph hypercube(unsigned dim) {
  require(dim >= 1 && dim <= 24, "hypercube: 1 <= dim <= 24");
  NodeId n = NodeId{1} << dim;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v)
    for (unsigned d = 0; d < dim; ++d) {
      NodeId w = v ^ (NodeId{1} << d);
      if (v < w) b.add_edge(v, w);
    }
  return std::move(b).build();
}

Graph binary_tree(NodeId n) {
  require(n >= 1, "binary_tree: n >= 1");
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge((v - 1) / 2, v);
  return std::move(b).build();
}

Graph lollipop(NodeId clique_size, NodeId path_len) {
  require(clique_size >= 2, "lollipop: clique >= 2");
  GraphBuilder b(clique_size + path_len);
  for (NodeId i = 0; i < clique_size; ++i)
    for (NodeId j = i + 1; j < clique_size; ++j) b.add_edge(i, j);
  NodeId prev = clique_size - 1;
  for (NodeId i = 0; i < path_len; ++i) {
    b.add_edge(prev, clique_size + i);
    prev = clique_size + i;
  }
  return std::move(b).build();
}

Graph barbell(NodeId clique_size, NodeId path_len) {
  require(clique_size >= 2, "barbell: clique >= 2");
  NodeId n = 2 * clique_size + path_len;
  GraphBuilder b(n);
  auto clique = [&](NodeId base) {
    for (NodeId i = 0; i < clique_size; ++i)
      for (NodeId j = i + 1; j < clique_size; ++j)
        b.add_edge(base + i, base + j);
  };
  clique(0);
  clique(clique_size + path_len);
  NodeId prev = clique_size - 1;
  for (NodeId i = 0; i < path_len; ++i) {
    b.add_edge(prev, clique_size + i);
    prev = clique_size + i;
  }
  b.add_edge(prev, clique_size + path_len);
  return std::move(b).build();
}

Graph disjoint_copies(const Graph& cluster, NodeId copies) {
  require(copies >= 1, "disjoint_copies: copies >= 1");
  const NodeId n = cluster.num_nodes();
  require(n >= 1, "disjoint_copies: cluster must be non-empty");
  // Built through the flat CSR path: at a million clusters the nested
  // vector-of-vectors intermediate would dwarf the graph itself.
  const std::size_t total = static_cast<std::size_t>(n) * copies;
  std::vector<std::size_t> offsets(total + 1);
  offsets[0] = 0;
  std::size_t m = 0;
  for (NodeId v = 0; v < n; ++v) m += cluster.degree(v);
  std::vector<HalfEdge> half_edges;
  half_edges.reserve(m * copies);
  std::size_t at = 0;
  for (NodeId c = 0; c < copies; ++c) {
    const NodeId base = c * n;
    for (NodeId v = 0; v < n; ++v) {
      const Port deg = cluster.degree(v);
      for (Port p = 0; p < deg; ++p) {
        HalfEdge far = cluster.rotate(v, p);
        half_edges.push_back({base + far.node, far.port});
      }
      at += deg;
      offsets[static_cast<std::size_t>(base) + v + 1] = at;
    }
  }
  return from_rotation(std::move(offsets), std::move(half_edges));
}

Graph petersen() {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  GraphBuilder b(10);
  for (NodeId i = 0; i < 5; ++i) b.add_edge(i, (i + 1) % 5);
  for (NodeId i = 0; i < 5; ++i) b.add_edge(5 + i, 5 + (i + 2) % 5);
  for (NodeId i = 0; i < 5; ++i) b.add_edge(i, 5 + i);
  return std::move(b).build();
}

Graph k4() { return complete(4); }
Graph k33() { return complete_bipartite(3, 3); }

Graph prism(NodeId n) {
  require(n >= 3, "prism: n >= 3");
  GraphBuilder b(2 * n);
  for (NodeId i = 0; i < n; ++i) {
    b.add_edge(i, (i + 1) % n);
    b.add_edge(n + i, n + (i + 1) % n);
    b.add_edge(i, n + i);
  }
  return std::move(b).build();
}

Graph moebius_kantor() {
  // Generalized Petersen graph GP(8,3).
  GraphBuilder b(16);
  for (NodeId i = 0; i < 8; ++i) {
    b.add_edge(i, (i + 1) % 8);
    b.add_edge(8 + i, 8 + (i + 3) % 8);
    b.add_edge(i, 8 + i);
  }
  return std::move(b).build();
}

Graph cube_q3() { return hypercube(3); }

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  require(n >= 1, "gnp: n >= 1");
  require(p >= 0.0 && p <= 1.0, "gnp: p in [0,1]");
  util::Pcg32 rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.next_double() < p) b.add_edge(i, j);
  return std::move(b).build();
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  require(n >= 1, "random_tree: n >= 1");
  if (n == 1) return GraphBuilder(1).build();
  if (n == 2) return from_edges(2, {{0, 1}});
  // Prüfer decoding: a uniform labelled tree on n vertices.
  util::Pcg32 rng(seed);
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = rng.next_below(n);
  std::vector<Port> deg(n, 1);
  for (NodeId x : prufer) ++deg[x];
  GraphBuilder b(n);
  std::set<NodeId> leaves;
  for (NodeId v = 0; v < n; ++v)
    if (deg[v] == 1) leaves.insert(v);
  for (NodeId x : prufer) {
    NodeId leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    b.add_edge(leaf, x);
    if (--deg[x] == 1) leaves.insert(x);
  }
  NodeId u = *leaves.begin();
  NodeId v = *std::next(leaves.begin());
  b.add_edge(u, v);
  return std::move(b).build();
}

namespace {

/// One configuration-model attempt; returns edges, or empty if non-simple
/// (when `simple` is requested).
std::vector<std::pair<NodeId, NodeId>> pairing_attempt(NodeId n, Port d,
                                                       util::Pcg32& rng,
                                                       bool simple) {
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v)
    for (Port k = 0; k < d; ++k) stubs.push_back(v);
  std::shuffle(stubs.begin(), stubs.end(), rng);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(stubs.size() / 2);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::size_t i = 0; i < stubs.size(); i += 2) {
    NodeId u = stubs[i], v = stubs[i + 1];
    if (simple) {
      if (u == v) return {};
      auto key = std::minmax(u, v);
      if (!seen.insert({key.first, key.second}).second) return {};
    }
    edges.push_back({u, v});
  }
  return edges;
}

}  // namespace

Graph random_regular(NodeId n, Port d, std::uint64_t seed) {
  require(n >= 1, "random_regular: n >= 1");
  require(d < n, "random_regular: d < n");
  require((static_cast<std::uint64_t>(n) * d) % 2 == 0,
          "random_regular: n*d must be even");
  util::Pcg32 rng(seed);
  for (int attempt = 0; attempt < 100000; ++attempt) {
    auto edges = pairing_attempt(n, d, rng, /*simple=*/true);
    if (!edges.empty() || d == 0) return from_edges(n, edges);
  }
  throw std::runtime_error("random_regular: too many rejections");
}

Graph random_connected_regular(NodeId n, Port d, std::uint64_t seed) {
  util::SplitMix64 seeder(seed);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Graph g = random_regular(n, d, seeder.next());
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("random_connected_regular: too many rejections");
}

Graph random_regular_switch(NodeId n, Port d, std::uint64_t seed,
                            std::size_t switches) {
  require(n >= 1, "random_regular_switch: n >= 1");
  require(d < n, "random_regular_switch: d < n");
  require((static_cast<std::uint64_t>(n) * d) % 2 == 0,
          "random_regular_switch: n*d must be even");
  // Circulant start: offsets 1..d/2 (and n/2 when d is odd; n even then).
  std::set<std::pair<NodeId, NodeId>> edge_set;
  auto key = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  for (NodeId v = 0; v < n; ++v) {
    for (Port k = 1; k <= d / 2; ++k) edge_set.insert(key(v, (v + k) % n));
    if (d % 2 == 1) edge_set.insert(key(v, (v + n / 2) % n));
  }
  std::vector<std::pair<NodeId, NodeId>> edges(edge_set.begin(),
                                               edge_set.end());
  util::Pcg32 rng(seed);
  if (switches == 0) switches = 20 * edges.size();
  for (std::size_t s = 0; s < switches; ++s) {
    std::size_t i = rng.next_below(static_cast<std::uint32_t>(edges.size()));
    std::size_t j = rng.next_below(static_cast<std::uint32_t>(edges.size()));
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, e] = edges[j];
    if (rng.next_below(2)) std::swap(c, e);
    // Propose (a,c), (b,e).
    if (a == c || b == e) continue;
    auto k1 = key(a, c), k2 = key(b, e);
    if (edge_set.count(k1) || edge_set.count(k2)) continue;
    edge_set.erase(key(a, b));
    edge_set.erase(key(c, e));
    edge_set.insert(k1);
    edge_set.insert(k2);
    edges[i] = k1;
    edges[j] = k2;
  }
  return from_edges(n, edges);
}

Graph random_connected_regular_switch(NodeId n, Port d, std::uint64_t seed) {
  util::SplitMix64 seeder(seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Graph g = random_regular_switch(n, d, seeder.next());
    if (is_connected(g)) return g;
  }
  throw std::runtime_error(
      "random_connected_regular_switch: too many rejections");
}

Graph random_cubic_multigraph(NodeId n, std::uint64_t seed) {
  require(n >= 2 && n % 2 == 0, "random_cubic_multigraph: n even, >= 2");
  util::Pcg32 rng(seed);
  for (int attempt = 0; attempt < 100000; ++attempt) {
    auto edges = pairing_attempt(n, 3, rng, /*simple=*/false);
    Graph g = from_edges(n, edges);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("random_cubic_multigraph: too many rejections");
}

Graph connected_gnp(NodeId n, double p, std::uint64_t seed) {
  util::SplitMix64 seeder(seed);
  for (int attempt = 0; attempt < 10000; ++attempt) {
    Graph g = gnp(n, p, seeder.next());
    if (is_connected(g)) return g;
  }
  throw std::runtime_error(
      "connected_gnp: too many rejections (p below threshold?)");
}

}  // namespace uesr::graph
