// Graph generators: the workload zoo for the routing experiments.
//
// Deterministic families (paths, cycles, grids, tori, hypercubes, cliques,
// lollipops), random families (G(n,p), random d-regular, random trees), and
// the named small cubic graphs used by the universality certification
// (Petersen, K4, K_{3,3}, prisms, Möbius–Kantor).
//
// All randomized generators take an explicit seed and are deterministic for
// a given seed.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace uesr::graph {

// ---- deterministic families -------------------------------------------

Graph path(NodeId n);
Graph cycle(NodeId n);
Graph complete(NodeId n);
Graph complete_bipartite(NodeId a, NodeId b);
Graph star(NodeId leaves);

/// rows x cols grid, 4-neighbour.
Graph grid(NodeId rows, NodeId cols);

/// rows x cols torus (wrap-around grid). rows, cols >= 3 for simpleness.
Graph torus(NodeId rows, NodeId cols);

/// d-dimensional hypercube (2^d vertices, d-regular).
Graph hypercube(unsigned dim);

/// Complete binary tree with n nodes (heap indexing).
Graph binary_tree(NodeId n);

/// Lollipop: clique of k vertices with a path of len vertices attached.
/// The classic worst case for random-walk hitting times (~n^3).
Graph lollipop(NodeId clique_size, NodeId path_len);

/// Barbell: two k-cliques joined by a path of len vertices.
Graph barbell(NodeId clique_size, NodeId path_len);

/// `copies` disjoint copies of `cluster`, vertex c*|V| + v in copy c mapping
/// to v.  The million-scale traffic topology: a sea of small clusters keeps
/// per-session UES walks short while the node count (and session count)
/// scales without bound.  Ports are copied verbatim, so every copy is
/// port-isomorphic to the original.
Graph disjoint_copies(const Graph& cluster, NodeId copies);

// ---- named cubic graphs ------------------------------------------------

Graph petersen();          ///< 10 vertices, girth 5, 3-regular.
Graph k4();                ///< complete graph on 4 vertices (cubic).
Graph k33();               ///< complete bipartite 3,3 (cubic).
Graph prism(NodeId n);     ///< circular ladder CL_n, 2n vertices, cubic; n>=3.
Graph moebius_kantor();    ///< generalized Petersen GP(8,3), 16 vertices.
Graph cube_q3();           ///< 3-cube (8 vertices, cubic).

// ---- random families ----------------------------------------------------

/// Erdos–Renyi G(n, p); simple graph.
Graph gnp(NodeId n, double p, std::uint64_t seed);

/// Uniform random labelled tree (Prüfer sequence), n >= 1.
Graph random_tree(NodeId n, std::uint64_t seed);

/// Random d-regular simple graph via the configuration (pairing) model,
/// resampling until simple.  Requires n*d even, d < n.
Graph random_regular(NodeId n, Port d, std::uint64_t seed);

/// Random connected d-regular simple graph (resamples until connected;
/// for d >= 3 almost every d-regular graph is connected, so this is cheap).
Graph random_connected_regular(NodeId n, Port d, std::uint64_t seed);

/// Random d-regular simple graph via double-edge switches from a circulant
/// start.  The configuration model's rejection probability is
/// ~exp(-(d^2-1)/4), hopeless for d >= 6; switching stays O(switches) for
/// any degree and mixes to near-uniform.  Requires n*d even, d < n.
Graph random_regular_switch(NodeId n, Port d, std::uint64_t seed,
                            std::size_t switches = 0);

/// Connected variant of random_regular_switch (resamples until connected).
Graph random_connected_regular_switch(NodeId n, Port d, std::uint64_t seed);

/// Random connected cubic (3-regular) multigraph via pairing, allowing
/// loops and parallel edges.  Used to stress exploration sequences on the
/// full multigraph model.
Graph random_cubic_multigraph(NodeId n, std::uint64_t seed);

/// G(n,p) conditioned on connectivity (resamples; p must be comfortably
/// above the connectivity threshold for this to terminate quickly).
Graph connected_gnp(NodeId n, double p, std::uint64_t seed);

}  // namespace uesr::graph
