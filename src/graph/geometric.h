// Geometric (position-based) network models.
//
// These are the workloads position-based routing was designed for and the
// ones the paper's introduction contrasts against: unit-disk graphs in 2D
// (where planarization + face routing guarantees delivery) and in 3D (where
// no such local guarantee exists — Durocher, Kirkpatrick, Narayanan 2008 —
// which is exactly the gap Theorem 1 closes).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace uesr::graph {

struct Point2 {
  double x = 0.0, y = 0.0;
};

struct Point3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

double distance(const Point2& a, const Point2& b);
double distance(const Point3& a, const Point3& b);

/// A graph whose vertices carry 2D positions (sensor field).
struct Positioned2 {
  Graph graph;
  std::vector<Point2> positions;
  /// Rejected draws before this instance (the connected_* generators
  /// resample until connected; 0 for the plain generators).  Experiment
  /// tables report it so sub-critical radii show up as data, not mystery
  /// slowness.
  std::uint32_t resamples = 0;
};

/// A graph whose vertices carry 3D positions (drone mesh / underwater).
struct Positioned3 {
  Graph graph;
  std::vector<Point3> positions;
  std::uint32_t resamples = 0;  ///< rejected draws; see Positioned2
};

/// n points uniform in the unit square; edge iff distance <= radius.
Positioned2 unit_disk_2d(NodeId n, double radius, std::uint64_t seed);

/// n points uniform in the unit cube; edge iff distance <= radius.
Positioned3 unit_disk_3d(NodeId n, double radius, std::uint64_t seed);

/// Resamples until the unit-disk graph is connected (the result's
/// `resamples` field counts the rejected draws).  Throws std::runtime_error
/// naming n, radius, and the attempt budget when no connected instance
/// appears within 10000 draws — i.e. the radius is sub-critical.
Positioned2 connected_unit_disk_2d(NodeId n, double radius,
                                   std::uint64_t seed);
Positioned3 connected_unit_disk_3d(NodeId n, double radius,
                                   std::uint64_t seed);

/// Gabriel subgraph: keep edge (u,v) iff the open disk with diameter uv
/// contains no other vertex.  For unit-disk graphs the Gabriel subgraph is
/// planar and connectivity-preserving — the standard planarization step of
/// GFG/GPSR face routing.
Positioned2 gabriel_subgraph(const Positioned2& in);

/// True if no two edges of the (position-embedded) graph properly cross.
/// O(m^2); intended for tests on moderate sizes.
bool is_plane_embedding(const Positioned2& in);

}  // namespace uesr::graph
