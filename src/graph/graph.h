// Port-labelled undirected multigraph.
//
// This is the graph model of the paper (§2): every vertex v assigns its
// incident edge-ends ("ports") the labels 0..deg(v)-1 in an arbitrary way,
// and the labels at the two ends of an edge need not match.  Formally the
// structure is a *rotation map*: an involution over half-edges
//     rot(v, p) = (w, q)   with   rot(w, q) = (v, p).
// Self-loops are supported in both conventions:
//   * full loop  — occupies two ports of v: rot(v,p) = (v,q), p != q;
//   * half loop  — a fixed point rot(v,p) = (v,p) (Reingold's convention);
//     walking out of port p re-enters v on port p.
// Parallel edges are allowed.
//
// A Graph is immutable after construction (build it with GraphBuilder);
// relabelling — the operation universality quantifies over — produces a new
// Graph.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace uesr::graph {

using NodeId = std::uint32_t;
using Port = std::uint32_t;

/// One end of an edge: the (vertex, port) pair.
struct HalfEdge {
  NodeId node = 0;
  Port port = 0;

  friend auto operator<=>(const HalfEdge&, const HalfEdge&) = default;
};

class Graph;

/// Mutable construction interface; `build()` validates and freezes.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes);

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }

  /// Adds a node, returns its id.
  NodeId add_node();

  /// Adds an undirected edge using the next free port on each endpoint.
  /// Returns the two half-edges created.  u == v creates a full loop.
  std::pair<HalfEdge, HalfEdge> add_edge(NodeId u, NodeId v);

  /// Adds a half-loop (rotation-map fixed point) on v; returns its half-edge.
  HalfEdge add_half_loop(NodeId v);

  Port degree(NodeId v) const;

  /// Validates the rotation map and produces the immutable Graph.
  Graph build() &&;

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  void check_node(NodeId v, const char* who) const;
};

class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }

  /// Number of edges; a loop (full or half) counts as one edge.
  std::size_t num_edges() const { return num_edges_; }

  Port degree(NodeId v) const { return static_cast<Port>(adj_[v].size()); }
  Port max_degree() const;
  Port min_degree() const;
  bool is_regular(Port d) const;

  /// The rotation map: the half-edge at the far end of (v, p).
  /// For a half-loop this is (v, p) itself.
  HalfEdge rotate(NodeId v, Port p) const { return adj_[v][p]; }

  /// The vertex reached when leaving v through port p.
  NodeId neighbor(NodeId v, Port p) const { return adj_[v][p].node; }

  bool is_half_loop(NodeId v, Port p) const {
    return adj_[v][p] == HalfEdge{v, p};
  }

  /// Any port of v whose far end is u; throws if u is not adjacent to v.
  /// With parallel edges the lowest such port is returned.
  Port port_to(NodeId v, NodeId u) const;

  /// True if some edge joins v and u (including v == u loops).
  bool adjacent(NodeId v, NodeId u) const;

  /// Distinct neighbours of v (excluding v itself unless it has a loop).
  std::vector<NodeId> neighbors(NodeId v) const;

  /// Checks the rotation-map involution; throws std::logic_error on
  /// violation.  Called by GraphBuilder::build; public for tests.
  void validate() const;

  /// Returns a graph with ports renumbered: at each vertex v, old port p
  /// becomes perms[v][p].  perms[v] must be a permutation of 0..deg(v)-1.
  /// The edge set is unchanged — this is exactly the "any labelling" a
  /// universal exploration sequence must survive.
  Graph relabeled(const std::vector<std::vector<Port>>& perms) const;

  /// Relabels every vertex with an independent uniformly random permutation.
  Graph randomly_relabeled(util::Pcg32& rng) const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  friend class GraphBuilder;
  friend Graph from_rotation(std::vector<std::vector<HalfEdge>> adj);
  std::vector<std::vector<HalfEdge>> adj_;
  std::size_t num_edges_ = 0;

  void recount_edges();
};

/// Convenience: build a graph from an explicit edge list over n nodes.
/// Ports are assigned in list order.  Accepts loops (u == v, full loops).
Graph from_edges(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges);

/// Build a graph from a fully explicit rotation map: adj[v][p] is the far
/// half-edge of (v, p).  Validates the involution.  This is the only way to
/// construct rotation maps that sequential port assignment cannot express
/// (e.g. parallel edges with crossed port orders).
Graph from_rotation(std::vector<std::vector<HalfEdge>> adj);

/// Human-readable one-line summary ("n=8 m=12 deg=[3,3]").
std::string describe(const Graph& g);

}  // namespace uesr::graph
