// Port-labelled undirected multigraph.
//
// This is the graph model of the paper (§2): every vertex v assigns its
// incident edge-ends ("ports") the labels 0..deg(v)-1 in an arbitrary way,
// and the labels at the two ends of an edge need not match.  Formally the
// structure is a *rotation map*: an involution over half-edges
//     rot(v, p) = (w, q)   with   rot(w, q) = (v, p).
// Self-loops are supported in both conventions:
//   * full loop  — occupies two ports of v: rot(v,p) = (v,q), p != q;
//   * half loop  — a fixed point rot(v,p) = (v,p) (Reingold's convention);
//     walking out of port p re-enters v on port p.
// Parallel edges are allowed.
//
// Storage is CSR-style: one flat half-edge array plus per-vertex offsets,
// so rotate(v, p) is a single load from half_edges_[offsets_[v] + p] —
// no per-vertex vector indirection on the walk hot path.  The ubiquitous
// 3-regular case (every ReducedGraph.cubic) is specialized further: a
// cubic graph stores no offsets and no 8-byte HalfEdge array at all —
// index 3*v + p selects a 4-byte far-node entry plus a 2-bit far-port
// entry in a util::PackedArray, shrinking per-half-edge cost from
// 8 B (+ 8 B/vertex of offsets) to 4.25 B so million-gadget reduced
// graphs step at cache speed (see rotate3/is_cubic/far_node_data).  The
// layout is an internal detail — the public API is unchanged and
// observationally identical to the former vector<vector<HalfEdge>>
// representation (pinned by property tests).
//
// A Graph is immutable after construction (build it with GraphBuilder);
// relabelling — the operation universality quantifies over — produces a new
// Graph.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bitpack.h"
#include "util/rng.h"

namespace uesr::graph {

using NodeId = std::uint32_t;
using Port = std::uint32_t;

/// One end of an edge: the (vertex, port) pair.
struct HalfEdge {
  NodeId node = 0;
  Port port = 0;

  friend auto operator<=>(const HalfEdge&, const HalfEdge&) = default;
};

class Graph;

/// Mutable construction interface; `build()` validates and freezes.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes);

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }

  /// Adds a node, returns its id.
  NodeId add_node();

  /// Adds an undirected edge using the next free port on each endpoint.
  /// Returns the two half-edges created.  u == v creates a full loop.
  std::pair<HalfEdge, HalfEdge> add_edge(NodeId u, NodeId v);

  /// Adds a half-loop (rotation-map fixed point) on v; returns its half-edge.
  HalfEdge add_half_loop(NodeId v);

  Port degree(NodeId v) const;

  /// Validates the rotation map and produces the immutable Graph.
  Graph build() &&;

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  void check_node(NodeId v, const char* who) const;
};

class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const { return num_nodes_; }

  /// Number of edges; a loop (full or half) counts as one edge.
  std::size_t num_edges() const { return num_edges_; }

  Port degree(NodeId v) const {
    return cubic_ ? 3 : static_cast<Port>(offsets_[v + 1] - offsets_[v]);
  }
  Port max_degree() const;
  Port min_degree() const;
  bool is_regular(Port d) const;

  /// True if every vertex has degree exactly 3 — the regime every
  /// ReducedGraph.cubic lives in.  Enables the offset-free rotate3 path.
  bool is_cubic() const { return cubic_; }

  /// The rotation map: the half-edge at the far end of (v, p).
  /// For a half-loop this is (v, p) itself.
  HalfEdge rotate(NodeId v, Port p) const {
    return cubic_ ? rotate3(v, p) : half_edges_[offsets_[v] + p];
  }

  /// rotate() specialized for 3-regular graphs: port arithmetic is 3*v + p
  /// with no offset load — a 4-byte far-node load plus a 2-bit packed port
  /// read.  Precondition: is_cubic().
  HalfEdge rotate3(NodeId v, Port p) const {
    const std::size_t i = 3 * static_cast<std::size_t>(v) + p;
    return {far_nodes_[i], static_cast<Port>(far_ports_.get(i))};
  }

  /// Raw CSR half-edge array (length = sum of degrees), for perf-critical
  /// consumers that cache the pointer across millions of steps: entry
  /// offsets_[v] + p is rotate(v, p).  Non-cubic graphs only — a cubic
  /// graph stores no HalfEdge array (nullptr is returned); its consumers
  /// use the packed pair far_node_data()/far_ports() instead.
  /// Invalidated by destroying/assigning the graph, like vector::data.
  const HalfEdge* half_edge_data() const {
    return cubic_ ? nullptr : half_edges_.data();
  }

  /// The 3-regular packed rotation map: far_node_data()[3*v + p] is
  /// rotate(v, p).node and far_ports().get(3*v + p) its far port.  The two
  /// arrays are the whole cubic storage — 4 B + 2 bit per half-edge — and
  /// what the multi-walk stepping kernel prefetches.  Precondition:
  /// is_cubic(); invalidated like vector::data.
  const NodeId* far_node_data() const { return far_nodes_.data(); }
  const util::PackedArray& far_ports() const { return far_ports_; }

  /// The vertex reached when leaving v through port p.
  NodeId neighbor(NodeId v, Port p) const { return rotate(v, p).node; }

  bool is_half_loop(NodeId v, Port p) const {
    return rotate(v, p) == HalfEdge{v, p};
  }

  /// Any port of v whose far end is u; throws if u is not adjacent to v.
  /// With parallel edges the lowest such port is returned.
  Port port_to(NodeId v, NodeId u) const;

  /// True if some edge joins v and u (including v == u loops).
  bool adjacent(NodeId v, NodeId u) const;

  /// Distinct neighbours of v (excluding v itself unless it has a loop).
  std::vector<NodeId> neighbors(NodeId v) const;

  /// Checks the rotation-map involution; throws std::logic_error on
  /// violation.  Called by GraphBuilder::build; public for tests.
  void validate() const;

  /// Returns a graph with ports renumbered: at each vertex v, old port p
  /// becomes perms[v][p].  perms[v] must be a permutation of 0..deg(v)-1.
  /// The edge set is unchanged — this is exactly the "any labelling" a
  /// universal exploration sequence must survive.
  Graph relabeled(const std::vector<std::vector<Port>>& perms) const;

  /// Relabels every vertex with an independent uniformly random permutation.
  Graph randomly_relabeled(util::Pcg32& rng) const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  friend class GraphBuilder;
  friend Graph from_rotation(std::vector<std::vector<HalfEdge>> adj);
  friend Graph from_rotation(std::vector<std::size_t> offsets,
                             std::vector<HalfEdge> half_edges);

  /// Installs a nested rotation map, flattening it to CSR form.
  void adopt(std::vector<std::vector<HalfEdge>> adj);
  /// Installs an already-flat rotation map (offsets.size() == n + 1).
  void adopt_flat(std::vector<std::size_t> offsets,
                  std::vector<HalfEdge> half_edges);
  /// Derived-field maintenance after offsets_/half_edges_ change; detects
  /// the cubic case and repacks storage into far_nodes_/far_ports_.
  void finalize_shape();
  void recount_edges();

  NodeId num_nodes_ = 0;
  bool cubic_ = false;
  /// Generic storage: offsets_[v]..offsets_[v+1] delimit v's half-edges
  /// (size n + 1; empty for the default zero-node graph).  Cubic graphs
  /// leave BOTH vectors empty and use the packed pair below instead.
  std::vector<std::size_t> offsets_;
  std::vector<HalfEdge> half_edges_;
  /// Cubic storage: entry 3*v + p is rotate(v, p) split into a 4-byte far
  /// node and a 2-bit far port.  Deterministically derived from the
  /// rotation map, so the defaulted operator== stays observational.
  std::vector<NodeId> far_nodes_;
  util::PackedArray far_ports_;
  std::size_t num_edges_ = 0;
};

/// Convenience: build a graph from an explicit edge list over n nodes.
/// Ports are assigned in list order.  Accepts loops (u == v, full loops).
Graph from_edges(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges);

/// Build a graph from a fully explicit rotation map: adj[v][p] is the far
/// half-edge of (v, p).  Validates the involution.  This is the only way to
/// construct rotation maps that sequential port assignment cannot express
/// (e.g. parallel edges with crossed port orders).
Graph from_rotation(std::vector<std::vector<HalfEdge>> adj);

/// Flat-form overload: the rotation map already in CSR layout —
/// half_edges[offsets[v] + p] is the far half-edge of (v, p).  Requires
/// offsets.size() >= 1, offsets.front() == 0, offsets monotone and
/// offsets.back() == half_edges.size().  Lets bulk producers (degree
/// reduction, Reingold rotation maps) hand over storage without building
/// n per-vertex vectors first.
Graph from_rotation(std::vector<std::size_t> offsets,
                    std::vector<HalfEdge> half_edges);

/// Human-readable one-line summary ("n=8 m=12 deg=[3,3]").
std::string describe(const Graph& g);

}  // namespace uesr::graph
