#include "graph/spectral.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace uesr::graph {

DenseMatrix adjacency_matrix(const Graph& g) {
  DenseMatrix m;
  m.n = g.num_nodes();
  m.a.assign(m.n * m.n, 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p) m.at(v, g.neighbor(v, p)) += 1.0;
  return m;
}

DenseMatrix normalized_adjacency(const Graph& g) {
  if (g.min_degree() == 0)
    throw std::invalid_argument("normalized_adjacency: isolated vertex");
  DenseMatrix m = adjacency_matrix(g);
  std::vector<double> invsqrt(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    invsqrt[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));
  for (std::size_t i = 0; i < m.n; ++i)
    for (std::size_t j = 0; j < m.n; ++j)
      m.at(i, j) *= invsqrt[i] * invsqrt[j];
  return m;
}

std::vector<double> symmetric_eigenvalues(DenseMatrix m) {
  const std::size_t n = m.n;
  if (n == 0) return {};
  // Cyclic Jacobi (Numerical Recipes formulation): rotate away off-diagonal
  // mass until negligible.
  constexpr double kTol = 1e-13;
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m.at(i, j) * m.at(i, j);
    if (off < kTol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double apq = m.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double theta = (m.at(q, q) - m.at(p, p)) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        double app = m.at(p, p), aqq = m.at(q, q);
        m.at(p, p) = app - t * apq;
        m.at(q, q) = aqq + t * apq;
        m.at(p, q) = m.at(q, p) = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          double akp = m.at(k, p), akq = m.at(k, q);
          m.at(k, p) = m.at(p, k) = c * akp - s * akq;
          m.at(k, q) = m.at(q, k) = s * akp + c * akq;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = m.at(i, i);
  std::sort(eig.begin(), eig.end(), std::greater<double>());
  return eig;
}

double lambda_exact(const Graph& g) {
  if (g.num_nodes() < 2)
    throw std::invalid_argument("lambda_exact: need >= 2 vertices");
  if (!is_connected(g))
    throw std::invalid_argument("lambda_exact: graph must be connected");
  auto eig = symmetric_eigenvalues(normalized_adjacency(g));
  // Largest eigenvalue of a connected graph's normalized adjacency is 1
  // (simple); lambda is the max of |second largest| and |most negative|.
  double second = eig.size() > 1 ? eig[1] : 0.0;
  double least = eig.back();
  return std::max(std::abs(second), std::abs(least));
}

double lambda_power(const Graph& g, int iterations, std::uint64_t seed) {
  if (g.num_nodes() < 2)
    throw std::invalid_argument("lambda_power: need >= 2 vertices");
  if (g.min_degree() == 0)
    throw std::invalid_argument("lambda_power: isolated vertex");
  const NodeId n = g.num_nodes();
  // Top eigenvector of M = D^{-1/2} A D^{-1/2} is proportional to sqrt(deg).
  std::vector<double> top(n);
  double norm = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    top[v] = std::sqrt(static_cast<double>(g.degree(v)));
    norm += top[v] * top[v];
  }
  norm = std::sqrt(norm);
  for (double& x : top) x /= norm;

  util::Pcg32 rng(seed);
  std::vector<double> x(n), y(n);
  for (double& xi : x) xi = rng.next_double() - 0.5;
  auto deflate = [&](std::vector<double>& v) {
    double dot = 0.0;
    for (NodeId i = 0; i < n; ++i) dot += v[i] * top[i];
    for (NodeId i = 0; i < n; ++i) v[i] -= dot * top[i];
  };
  auto normalize = [&](std::vector<double>& v) {
    double s = 0.0;
    for (double vi : v) s += vi * vi;
    s = std::sqrt(s);
    if (s > 0) {
      for (double& vi : v) vi /= s;
    }
    return s;
  };
  deflate(x);
  normalize(x);
  double lambda = 0.0;
  std::vector<double> invsqrt(n);
  for (NodeId v = 0; v < n; ++v)
    invsqrt[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));
  for (int it = 0; it < iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    for (NodeId v = 0; v < n; ++v) {
      double xs = x[v] * invsqrt[v];
      for (Port p = 0; p < g.degree(v); ++p) {
        NodeId w = g.neighbor(v, p);
        y[w] += xs * invsqrt[w];
      }
    }
    deflate(y);
    lambda = normalize(y);
    std::swap(x, y);
  }
  return lambda;
}

}  // namespace uesr::graph
