// Graph serialization: a small text edge-list format (round-trippable,
// including half loops) and Graphviz DOT export for debugging/visualizing
// example outputs.
//
// Edge-list format:
//   line 1:  "uesr-graph <num_nodes>"
//   then one line per edge: "u v" (u == v means a full loop)
//   half loops:             "loop v"
// Ports are assigned in file order, so a round trip reproduces the rotation
// map exactly, not just the edge set.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace uesr::graph {

std::string to_edge_list(const Graph& g);

/// Parses the edge-list format from a stream, line by line — the whole
/// input is never materialized, so million-edge files load in O(line)
/// transient memory on top of the graph itself.
Graph from_edge_list(std::istream& in);

/// String convenience: wraps the text in a stream and delegates.
Graph from_edge_list(const std::string& text);

/// Graphviz DOT (undirected); half loops rendered as self-edges labelled "h".
std::string to_dot(const Graph& g, const std::string& name = "G");

}  // namespace uesr::graph
