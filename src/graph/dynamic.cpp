#include "graph/dynamic.h"

#include <stdexcept>

namespace uesr::graph {

DynamicGraph::DynamicGraph(NodeId n)
    : num_nodes_(n), alive_(n, 1) {
  rebuild_snapshot();
}

DynamicGraph::DynamicGraph(const Graph& g)
    : num_nodes_(g.num_nodes()), alive_(g.num_nodes(), 1) {
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (Port p = 0; p < g.degree(u); ++p) {
      NodeId v = g.neighbor(u, p);
      if (v == u)
        throw std::invalid_argument("DynamicGraph: loops not supported");
      if (v < u) continue;  // each undirected edge once
      if (!edges_.insert(normalize(u, v)).second)
        throw std::invalid_argument(
            "DynamicGraph: parallel edges not supported");
    }
  rebuild_snapshot();
}

DynamicGraph::Edge DynamicGraph::normalize(NodeId u, NodeId v) {
  return u < v ? Edge{u, v} : Edge{v, u};
}

void DynamicGraph::check_node(NodeId v, const char* who) const {
  if (v >= num_nodes_)
    throw std::invalid_argument(std::string(who) + ": node out of range");
}

bool DynamicGraph::add_edge(NodeId u, NodeId v) {
  check_node(u, "DynamicGraph::add_edge");
  check_node(v, "DynamicGraph::add_edge");
  if (u == v || !alive_[u] || !alive_[v]) return false;
  if (!edges_.insert(normalize(u, v)).second) return false;
  dirty_ = true;
  return true;
}

bool DynamicGraph::remove_edge(NodeId u, NodeId v) {
  check_node(u, "DynamicGraph::remove_edge");
  check_node(v, "DynamicGraph::remove_edge");
  if (edges_.erase(normalize(u, v)) == 0) return false;
  dirty_ = true;
  return true;
}

bool DynamicGraph::set_alive(NodeId v, bool alive) {
  check_node(v, "DynamicGraph::set_alive");
  if (static_cast<bool>(alive_[v]) == alive) return false;
  alive_[v] = alive ? 1 : 0;
  if (!alive) {
    for (auto it = edges_.begin(); it != edges_.end();)
      it = (it->first == v || it->second == v) ? edges_.erase(it) : ++it;
  }
  dirty_ = true;
  return true;
}

bool DynamicGraph::alive(NodeId v) const {
  check_node(v, "DynamicGraph::alive");
  return alive_[v] != 0;
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u, "DynamicGraph::has_edge");
  check_node(v, "DynamicGraph::has_edge");
  return u != v && edges_.count(normalize(u, v)) > 0;
}

void DynamicGraph::set_positions(std::vector<Point2> pos) {
  if (pos.size() != num_nodes_)
    throw std::invalid_argument("DynamicGraph::set_positions: size mismatch");
  pos2_ = std::move(pos);
  pos3_.clear();
  dirty_ = true;
}

void DynamicGraph::set_positions(std::vector<Point3> pos) {
  if (pos.size() != num_nodes_)
    throw std::invalid_argument("DynamicGraph::set_positions: size mismatch");
  pos3_ = std::move(pos);
  pos2_.clear();
  dirty_ = true;
}

void DynamicGraph::rederive_unit_disk(double radius) {
  if (radius <= 0.0)
    throw std::invalid_argument("DynamicGraph::rederive_unit_disk: radius > 0");
  if (pos2_.empty() && pos3_.empty())
    throw std::logic_error(
        "DynamicGraph::rederive_unit_disk: no positions set");
  std::set<Edge> fresh;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (!alive_[u]) continue;
    for (NodeId v = u + 1; v < num_nodes_; ++v) {
      if (!alive_[v]) continue;
      double d = pos2_.empty() ? distance(pos3_[u], pos3_[v])
                               : distance(pos2_[u], pos2_[v]);
      if (d <= radius) fresh.insert({u, v});
    }
  }
  if (fresh != edges_) {
    edges_ = std::move(fresh);
    dirty_ = true;
  }
}

std::uint64_t DynamicGraph::commit() {
  if (!dirty_) return epoch_;
  ++epoch_;
  rebuild_snapshot();
  dirty_ = false;
  return epoch_;
}

void DynamicGraph::rebuild_snapshot() {
  GraphBuilder b(num_nodes_);
  // std::set iterates edges in sorted order, so a given edge set always
  // yields the same port assignment — the snapshot is a pure function of
  // the staged state.
  for (const auto& [u, v] : edges_) b.add_edge(u, v);
  snapshot_ = std::move(b).build();
  committed_pos2_ = pos2_;
  committed_pos3_ = pos3_;
}

}  // namespace uesr::graph
