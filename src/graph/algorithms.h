// Classic graph algorithms used as ground truth throughout tests and
// benches: BFS distances, connected components, diameters.  The routing
// algorithms under test are never allowed to use these (nodes are
// stateless); they exist to *check* the routing algorithms.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace uesr::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS hop distances from s; kUnreachable where no path exists.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId s);

/// True if a path joins s and t (s == t counts as connected).
bool has_path(const Graph& g, NodeId s, NodeId t);

/// Vertices of the connected component containing s, in BFS order.
std::vector<NodeId> component_of(const Graph& g, NodeId s);

/// component_id[v] for every v, ids dense from 0 in order of discovery.
std::vector<std::uint32_t> connected_components(const Graph& g);

std::size_t num_components(const Graph& g);

bool is_connected(const Graph& g);

/// Exact diameter of the component of s (max BFS ecc over that component).
/// Intended for small graphs (runs BFS from every vertex of the component).
std::uint32_t component_diameter(const Graph& g, NodeId s);

/// True if the graph contains no odd cycle (loops make a graph non-bipartite;
/// a half-loop or full loop is an odd closed walk).
bool is_bipartite(const Graph& g);

}  // namespace uesr::graph
