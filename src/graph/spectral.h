// Spectral utilities: eigenvalues of the normalized adjacency operator.
//
// The Reingold engine (src/reingold) measures the spectral expansion
// lambda(G) = second-largest |eigenvalue| of the random-walk-normalized
// adjacency matrix; the zig-zag theorems are stated in terms of it.  Two
// implementations are provided: exact dense Jacobi diagonalization for
// small graphs (tests, base-expander search) and power iteration with
// deflation for larger ones (trajectory probes).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace uesr::graph {

/// Dense symmetric matrix in row-major order.
struct DenseMatrix {
  std::size_t n = 0;
  std::vector<double> a;  // n*n

  double& at(std::size_t i, std::size_t j) { return a[i * n + j]; }
  double at(std::size_t i, std::size_t j) const { return a[i * n + j]; }
};

/// Port-multiplicity adjacency matrix: A[v][w] = #ports of v leading to w.
/// (A full loop contributes 2 to A[v][v], a half loop 1.)  Symmetric.
DenseMatrix adjacency_matrix(const Graph& g);

/// Normalized adjacency M = D^{-1/2} A D^{-1/2}; requires min degree >= 1.
DenseMatrix normalized_adjacency(const Graph& g);

/// All eigenvalues of a symmetric matrix, descending, via cyclic Jacobi.
/// Intended for n <= ~300.
std::vector<double> symmetric_eigenvalues(DenseMatrix m);

/// lambda(G): the second-largest absolute eigenvalue of the normalized
/// adjacency operator; exact (Jacobi).  Requires a connected graph with
/// min degree >= 1 and n >= 2.
double lambda_exact(const Graph& g);

/// lambda(G) estimated by power iteration with deflation of the known top
/// eigenvector (sqrt(deg)).  Suitable for large sparse graphs.
double lambda_power(const Graph& g, int iterations = 400,
                    std::uint64_t seed = 0x5eed);

}  // namespace uesr::graph
