#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace uesr::graph {

GraphBuilder::GraphBuilder(NodeId num_nodes) : adj_(num_nodes) {}

NodeId GraphBuilder::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void GraphBuilder::check_node(NodeId v, const char* who) const {
  if (v >= adj_.size())
    throw std::invalid_argument(std::string(who) + ": node id out of range");
}

std::pair<HalfEdge, HalfEdge> GraphBuilder::add_edge(NodeId u, NodeId v) {
  check_node(u, "add_edge");
  check_node(v, "add_edge");
  if (u == v) {
    // Full loop: two ports on the same vertex pointing at each other.
    Port p = static_cast<Port>(adj_[v].size());
    adj_[v].push_back({v, p + 1});
    adj_[v].push_back({v, p});
    return {{v, p}, {v, p + 1}};
  }
  Port pu = static_cast<Port>(adj_[u].size());
  Port pv = static_cast<Port>(adj_[v].size());
  adj_[u].push_back({v, pv});
  adj_[v].push_back({u, pu});
  return {{u, pu}, {v, pv}};
}

HalfEdge GraphBuilder::add_half_loop(NodeId v) {
  check_node(v, "add_half_loop");
  Port p = static_cast<Port>(adj_[v].size());
  adj_[v].push_back({v, p});
  return {v, p};
}

Port GraphBuilder::degree(NodeId v) const {
  check_node(v, "degree");
  return static_cast<Port>(adj_[v].size());
}

Graph GraphBuilder::build() && {
  Graph g;
  g.adj_ = std::move(adj_);
  g.recount_edges();
  g.validate();
  return g;
}

Port Graph::max_degree() const {
  Port d = 0;
  for (const auto& a : adj_) d = std::max<Port>(d, static_cast<Port>(a.size()));
  return d;
}

Port Graph::min_degree() const {
  if (adj_.empty()) return 0;
  Port d = static_cast<Port>(adj_[0].size());
  for (const auto& a : adj_) d = std::min<Port>(d, static_cast<Port>(a.size()));
  return d;
}

bool Graph::is_regular(Port d) const {
  return std::all_of(adj_.begin(), adj_.end(),
                     [d](const auto& a) { return a.size() == d; });
}

Port Graph::port_to(NodeId v, NodeId u) const {
  for (Port p = 0; p < degree(v); ++p)
    if (adj_[v][p].node == u) return p;
  throw std::invalid_argument("port_to: vertices not adjacent");
}

bool Graph::adjacent(NodeId v, NodeId u) const {
  for (const HalfEdge& he : adj_[v])
    if (he.node == u) return true;
  return false;
}

std::vector<NodeId> Graph::neighbors(NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(adj_[v].size());
  for (const HalfEdge& he : adj_[v]) out.push_back(he.node);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Graph::validate() const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (Port p = 0; p < degree(v); ++p) {
      HalfEdge far = adj_[v][p];
      if (far.node >= num_nodes())
        throw std::logic_error("Graph::validate: endpoint node out of range");
      if (far.port >= degree(far.node))
        throw std::logic_error("Graph::validate: endpoint port out of range");
      HalfEdge back = adj_[far.node][far.port];
      if (back != HalfEdge{v, p})
        throw std::logic_error(
            "Graph::validate: rotation map is not an involution");
    }
  }
}

void Graph::recount_edges() {
  std::size_t half_edges = 0;
  std::size_t half_loops = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    half_edges += adj_[v].size();
    for (Port p = 0; p < degree(v); ++p)
      if (is_half_loop(v, p)) ++half_loops;
  }
  // Every non-fixed-point half-edge pairs with exactly one other.
  num_edges_ = (half_edges - half_loops) / 2 + half_loops;
}

Graph Graph::relabeled(const std::vector<std::vector<Port>>& perms) const {
  if (perms.size() != adj_.size())
    throw std::invalid_argument("relabeled: one permutation per vertex");
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (perms[v].size() != adj_[v].size())
      throw std::invalid_argument("relabeled: permutation size != degree");
    std::vector<bool> seen(perms[v].size(), false);
    for (Port p : perms[v]) {
      if (p >= perms[v].size() || seen[p])
        throw std::invalid_argument("relabeled: not a permutation");
      seen[p] = true;
    }
  }
  Graph g;
  g.adj_.assign(adj_.size(), {});
  for (NodeId v = 0; v < num_nodes(); ++v)
    g.adj_[v].resize(adj_[v].size());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (Port p = 0; p < degree(v); ++p) {
      HalfEdge far = adj_[v][p];
      g.adj_[v][perms[v][p]] = {far.node, perms[far.node][far.port]};
    }
  }
  g.recount_edges();
  g.validate();
  return g;
}

Graph Graph::randomly_relabeled(util::Pcg32& rng) const {
  std::vector<std::vector<Port>> perms(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    perms[v].resize(degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
    std::shuffle(perms[v].begin(), perms[v].end(), rng);
  }
  return relabeled(perms);
}

Graph from_edges(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(num_nodes);
  for (auto [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

Graph from_rotation(std::vector<std::vector<HalfEdge>> adj) {
  Graph g;
  g.adj_ = std::move(adj);
  g.recount_edges();
  g.validate();
  return g;
}

std::string describe(const Graph& g) {
  std::ostringstream os;
  os << "n=" << g.num_nodes() << " m=" << g.num_edges() << " deg=["
     << g.min_degree() << "," << g.max_degree() << "]";
  return os.str();
}

}  // namespace uesr::graph
