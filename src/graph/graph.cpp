#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace uesr::graph {

GraphBuilder::GraphBuilder(NodeId num_nodes) : adj_(num_nodes) {}

NodeId GraphBuilder::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void GraphBuilder::check_node(NodeId v, const char* who) const {
  if (v >= adj_.size())
    throw std::invalid_argument(std::string(who) + ": node id out of range");
}

std::pair<HalfEdge, HalfEdge> GraphBuilder::add_edge(NodeId u, NodeId v) {
  check_node(u, "add_edge");
  check_node(v, "add_edge");
  if (u == v) {
    // Full loop: two ports on the same vertex pointing at each other.
    Port p = static_cast<Port>(adj_[v].size());
    adj_[v].push_back({v, p + 1});
    adj_[v].push_back({v, p});
    return {{v, p}, {v, p + 1}};
  }
  Port pu = static_cast<Port>(adj_[u].size());
  Port pv = static_cast<Port>(adj_[v].size());
  adj_[u].push_back({v, pv});
  adj_[v].push_back({u, pu});
  return {{u, pu}, {v, pv}};
}

HalfEdge GraphBuilder::add_half_loop(NodeId v) {
  check_node(v, "add_half_loop");
  Port p = static_cast<Port>(adj_[v].size());
  adj_[v].push_back({v, p});
  return {v, p};
}

Port GraphBuilder::degree(NodeId v) const {
  check_node(v, "degree");
  return static_cast<Port>(adj_[v].size());
}

Graph GraphBuilder::build() && {
  Graph g;
  g.adopt(std::move(adj_));
  return g;
}

void Graph::adopt(std::vector<std::vector<HalfEdge>> adj) {
  const std::size_t n = adj.size();
  std::vector<std::size_t> offsets;
  std::vector<HalfEdge> half_edges;
  if (n > 0) {
    offsets.resize(n + 1);
    offsets[0] = 0;
    for (std::size_t v = 0; v < n; ++v)
      offsets[v + 1] = offsets[v] + adj[v].size();
    half_edges.reserve(offsets[n]);
    for (std::size_t v = 0; v < n; ++v)
      half_edges.insert(half_edges.end(), adj[v].begin(), adj[v].end());
  }
  adopt_flat(std::move(offsets), std::move(half_edges));
}

void Graph::adopt_flat(std::vector<std::size_t> offsets,
                       std::vector<HalfEdge> half_edges) {
  if (offsets.empty()) {
    if (!half_edges.empty())
      throw std::invalid_argument("Graph: half-edges without offsets");
  } else {
    if (offsets.front() != 0)
      throw std::invalid_argument("Graph: offsets must start at 0");
    for (std::size_t v = 0; v + 1 < offsets.size(); ++v)
      if (offsets[v] > offsets[v + 1])
        throw std::invalid_argument("Graph: offsets not monotone");
    if (offsets.back() != half_edges.size())
      throw std::invalid_argument("Graph: offsets do not cover half-edges");
  }
  // Normalize the zero-node representation (no offsets at all) so that
  // every construction path yields identical members and the defaulted
  // operator== stays purely observational.
  if (offsets.size() == 1) offsets.clear();
  offsets_ = std::move(offsets);
  half_edges_ = std::move(half_edges);
  finalize_shape();
  recount_edges();
  validate();
}

void Graph::finalize_shape() {
  num_nodes_ = offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  cubic_ = num_nodes_ > 0;
  for (NodeId v = 0; v < num_nodes_; ++v)
    if (offsets_[v + 1] - offsets_[v] != 3) {
      cubic_ = false;
      break;
    }
  // A far port >= 4 cannot be packed into 2 bits; such an entry is invalid
  // for a degree-3 vertex anyway, so keep the generic layout and let
  // validate() reject it with the exact offending range.
  if (cubic_)
    for (const HalfEdge& he : half_edges_)
      if (he.port >= 4) {
        cubic_ = false;
        break;
      }
  if (cubic_) {
    // Repack into the memory-lean cubic layout (4 B far node + 2-bit far
    // port per half-edge) and drop the generic arrays: degrees are implied,
    // so neither the offsets nor the 8-byte HalfEdge entries earn their
    // footprint on million-gadget reduced graphs.
    const std::size_t m = half_edges_.size();
    far_nodes_.resize(m);
    far_ports_ = util::PackedArray(2, m);
    for (std::size_t i = 0; i < m; ++i) {
      far_nodes_[i] = half_edges_[i].node;
      far_ports_.set(i, half_edges_[i].port);
    }
    offsets_ = {};
    half_edges_ = {};
  } else {
    far_nodes_ = {};
    far_ports_ = {};
  }
}

Port Graph::max_degree() const {
  Port d = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) d = std::max<Port>(d, degree(v));
  return d;
}

Port Graph::min_degree() const {
  if (num_nodes_ == 0) return 0;
  Port d = degree(0);
  for (NodeId v = 1; v < num_nodes_; ++v) d = std::min<Port>(d, degree(v));
  return d;
}

bool Graph::is_regular(Port d) const {
  for (NodeId v = 0; v < num_nodes_; ++v)
    if (degree(v) != d) return false;
  return true;
}

Port Graph::port_to(NodeId v, NodeId u) const {
  for (Port p = 0; p < degree(v); ++p)
    if (rotate(v, p).node == u) return p;
  throw std::invalid_argument("port_to: vertices not adjacent");
}

bool Graph::adjacent(NodeId v, NodeId u) const {
  for (Port p = 0; p < degree(v); ++p)
    if (rotate(v, p).node == u) return true;
  return false;
}

std::vector<NodeId> Graph::neighbors(NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(degree(v));
  for (Port p = 0; p < degree(v); ++p) out.push_back(rotate(v, p).node);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Graph::validate() const {
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (Port p = 0; p < degree(v); ++p) {
      HalfEdge far = rotate(v, p);
      if (far.node >= num_nodes_)
        throw std::logic_error("Graph::validate: endpoint node out of range");
      if (far.port >= degree(far.node))
        throw std::logic_error("Graph::validate: endpoint port out of range");
      HalfEdge back = rotate(far.node, far.port);
      if (back != HalfEdge{v, p})
        throw std::logic_error(
            "Graph::validate: rotation map is not an involution");
    }
  }
}

void Graph::recount_edges() {
  std::size_t half_loops = 0;
  for (NodeId v = 0; v < num_nodes_; ++v)
    for (Port p = 0; p < degree(v); ++p)
      if (is_half_loop(v, p)) ++half_loops;
  // Every non-fixed-point half-edge pairs with exactly one other.
  const std::size_t total =
      cubic_ ? far_nodes_.size() : half_edges_.size();
  num_edges_ = (total - half_loops) / 2 + half_loops;
}

Graph Graph::relabeled(const std::vector<std::vector<Port>>& perms) const {
  if (perms.size() != num_nodes_)
    throw std::invalid_argument("relabeled: one permutation per vertex");
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (perms[v].size() != degree(v))
      throw std::invalid_argument("relabeled: permutation size != degree");
    std::vector<bool> seen(perms[v].size(), false);
    for (Port p : perms[v]) {
      if (p >= perms[v].size() || seen[p])
        throw std::invalid_argument("relabeled: not a permutation");
      seen[p] = true;
    }
  }
  // Degrees are unchanged, so the offsets are those of this graph; only the
  // half-edge slots are permuted (both the local slot and the far port it
  // names).  Offsets are recomputed from degrees because the cubic layout
  // stores none.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(num_nodes_) + 1);
  offsets[0] = 0;
  for (NodeId v = 0; v < num_nodes_; ++v)
    offsets[v + 1] = offsets[v] + degree(v);
  std::vector<HalfEdge> half_edges(offsets[num_nodes_]);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (Port p = 0; p < degree(v); ++p) {
      HalfEdge far = rotate(v, p);
      half_edges[offsets[v] + perms[v][p]] = {far.node,
                                              perms[far.node][far.port]};
    }
  }
  Graph g;
  g.adopt_flat(std::move(offsets), std::move(half_edges));
  return g;
}

Graph Graph::randomly_relabeled(util::Pcg32& rng) const {
  std::vector<std::vector<Port>> perms(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    perms[v].resize(degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
    std::shuffle(perms[v].begin(), perms[v].end(), rng);
  }
  return relabeled(perms);
}

Graph from_edges(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b(num_nodes);
  for (auto [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

Graph from_rotation(std::vector<std::vector<HalfEdge>> adj) {
  Graph g;
  g.adopt(std::move(adj));
  return g;
}

Graph from_rotation(std::vector<std::size_t> offsets,
                    std::vector<HalfEdge> half_edges) {
  Graph g;
  g.adopt_flat(std::move(offsets), std::move(half_edges));
  return g;
}

std::string describe(const Graph& g) {
  std::ostringstream os;
  os << "n=" << g.num_nodes() << " m=" << g.num_edges() << " deg=["
     << g.min_degree() << "," << g.max_degree() << "]";
  return os.str();
}

}  // namespace uesr::graph
