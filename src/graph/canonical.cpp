#include "graph/canonical.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace uesr::graph {

namespace {

using Colors = std::vector<std::uint32_t>;

std::uint32_t color_count(const Colors& colors) {
  return colors.empty() ? 0 : *std::max_element(colors.begin(), colors.end()) + 1;
}

/// One pass of colour refinement; colours are re-indexed canonically by
/// sorted signature so the result depends only on the input partition.
Colors refine_once(const Graph& g, const Colors& colors) {
  using Signature = std::pair<std::uint32_t, std::vector<std::uint32_t>>;
  std::vector<Signature> sigs(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<std::uint32_t> nb;
    nb.reserve(g.degree(v));
    for (Port p = 0; p < g.degree(v); ++p)
      nb.push_back(colors[g.neighbor(v, p)]);
    std::sort(nb.begin(), nb.end());
    sigs[v] = {colors[v], std::move(nb)};
  }
  std::map<Signature, std::uint32_t> ids;
  for (const auto& s : sigs) ids.emplace(s, 0);
  std::uint32_t next = 0;
  for (auto& [sig, id] : ids) id = next++;
  Colors out(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) out[v] = ids[sigs[v]];
  return out;
}

Colors refine(const Graph& g, Colors colors) {
  for (;;) {
    Colors next = refine_once(g, colors);
    if (color_count(next) == color_count(colors)) return next;
    colors = std::move(next);
  }
}

/// Adjacency code under the discrete colouring (colour == new label):
/// upper triangle (including diagonal) of the port-multiplicity matrix.
CanonicalCode extract_code(const Graph& g, const Colors& colors) {
  NodeId n = g.num_nodes();
  std::vector<NodeId> inv(n);  // new label -> old vertex
  for (NodeId v = 0; v < n; ++v) inv[colors[v]] = v;
  CanonicalCode code;
  code.reserve(static_cast<std::size_t>(n) * (n + 1) / 2);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i; j < n; ++j) {
      NodeId v = inv[i], w = inv[j];
      std::uint32_t mult = 0;
      for (Port p = 0; p < g.degree(v); ++p)
        if (g.neighbor(v, p) == w) ++mult;
      code.push_back(mult);
    }
  }
  return code;
}

void best_code(const Graph& g, const Colors& colors, CanonicalCode& best,
               bool& have_best) {
  // Find the first (lowest-colour) class with more than one vertex.
  std::uint32_t k = color_count(colors);
  std::vector<std::vector<NodeId>> classes(k);
  for (NodeId v = 0; v < g.num_nodes(); ++v) classes[colors[v]].push_back(v);
  std::uint32_t target = k;
  for (std::uint32_t c = 0; c < k; ++c)
    if (classes[c].size() > 1) {
      target = c;
      break;
    }
  if (target == k) {
    CanonicalCode code = extract_code(g, colors);
    if (!have_best || code < best) {
      best = std::move(code);
      have_best = true;
    }
    return;
  }
  for (NodeId v : classes[target]) {
    // Individualize v: give it a fresh colour class just below its own by
    // shifting; concretely bump every colour >= target, then set v to target.
    Colors branched(colors.size());
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      branched[u] = colors[u] >= target ? colors[u] + 1 : colors[u];
    branched[v] = target;
    best_code(g, refine(g, std::move(branched)), best, have_best);
  }
}

}  // namespace

CanonicalCode canonical_code(const Graph& g) {
  // Prefix with global invariants so codes of different sizes never compare
  // equal by accident.
  Colors colors = refine(g, Colors(g.num_nodes(), 0));
  CanonicalCode best;
  bool have_best = false;
  best_code(g, colors, best, have_best);
  CanonicalCode out;
  out.push_back(g.num_nodes());
  out.push_back(static_cast<std::uint32_t>(g.num_edges()));
  out.insert(out.end(), best.begin(), best.end());
  return out;
}

bool is_isomorphic(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
    return false;
  return canonical_code(a) == canonical_code(b);
}

std::uint64_t canonical_hash(const Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint32_t x : canonical_code(g)) {
    h ^= x;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace uesr::graph
