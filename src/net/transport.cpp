#include "net/transport.h"

#include <stdexcept>

namespace uesr::net {

Arrival Transport::send(graph::NodeId from, graph::Port out_port) {
  if (from >= graph_->num_nodes())
    throw std::invalid_argument("Transport::send: bad node");
  if (out_port >= graph_->degree(from))
    throw std::invalid_argument("Transport::send: bad port");
  ++transmissions_;
  graph::HalfEdge far = graph_->rotate(from, out_port);
  return {far.node, far.port};
}

}  // namespace uesr::net
