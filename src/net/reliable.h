// Stop-and-wait ack/retransmit layer over the lossy event simulator.
//
// The classic frame protocol (SNIPPETS.md's stop-and-wait send/recv queues,
// reduced to its invariant): the sender puts one DATA frame on the wire,
// arms a retransmission timer, and resends with exponential backoff until
// an ACK returns or the retry budget is spent; the receiver acks EVERY
// copy it sees (acks get lost too) but the transfer id dedups processing
// to exactly once.  The result is the strongest one-hop contract a lossy
// channel admits:
//
//   * delivered == true   — the far end provably received and processed
//                           the frame exactly once (an ack made it back).
//   * delivered == false  — the budget is spent and the sender KNOWS
//                           NOTHING: the frame may or may not have arrived
//                           (the ack may be the lost half — the two-
//                           generals gap).  `data_arrived` reports the
//                           ground truth the simulator happens to know,
//                           for soundness tests only; no protocol on the
//                           sender side may read it.
//
// This is what lets sessions written against Transport's send-semantics
// run unchanged over loss: a reliable send that returns an Arrival means
// exactly what Transport::send's return means, and a failed one aborts the
// session into the "uncertified after budget" verdict (DESIGN.md §2.10).
//
// Fault semantics (DESIGN.md §2.12): a corrupted copy — DATA or ACK — is
// rejected by the frame check sequence and dropped unprocessed, so
// detected corruption degrades to loss and the retransmit timer recovers
// it.  Node crashes need no protocol change here: a crashed endpoint's
// frames drop in the simulator, and the receiver's exactly-once dedup is
// by globally-unique transfer id (the durable app-level log), not volatile
// link state — so a peer that crashes and recovers mid-transfer can never
// be double-delivered; at worst the sender's budget dies and it admits
// ignorance.
//
// Model note: stop-and-wait needs O(1) bits of LINK-layer state per
// in-flight transfer (the open transfer id and the pending frame).  The
// ROUTING layer above stays stateless — nodes still store nothing between
// messages; the paper's model constrains the routing layer, not the radio.
#pragma once

#include <cstdint>
#include <vector>

#include "net/rto.h"
#include "net/sim.h"
#include "net/transport.h"

namespace uesr::net {

struct ReliableOptions {
  /// Retransmissions after the initial copy; the wire sees at most
  /// max_retries + 1 DATA copies per transfer.  Must be < 2^16 - 1.
  std::uint32_t max_retries = 8;
  /// Initial retransmission timeout (virtual time units); must be > 0.
  /// With adaptive_rto this only seeds the estimator — after the first
  /// clean sample the timeout tracks the measured RTT (net/rto.h).
  SimTime rto = 8;
  /// Backoff ceiling: the timeout doubles per retry, clamped here.
  SimTime rto_max = 1024;
  /// Adaptive floor (adaptive mode only); must be > 0.
  SimTime rto_min = 4;
  /// Jacobson/Karn adaptation (net/rto.h).  false restores the exact PR 6
  /// fixed-RTO schedule: every transfer starts at `rto` and doubles
  /// locally.  true (the default) samples RTTs from never-retransmitted
  /// transfers and carries backed-off timeouts across transfers until a
  /// fresh sample — Karn's rule, still a pure function of the event
  /// sequence.
  bool adaptive_rto = true;
  /// Adaptive-RTO granularity: false (default) keeps ONE estimator for the
  /// whole transport (the PR 7 per-session state); true keeps one
  /// estimator PER DIRECTED LINK, so transfers crossing a slow edge never
  /// inflate the timeout of a fast one (the ROADMAP per-link follow-on the
  /// TrafficEngine lossy mode engages).  Ignored when !adaptive_rto.
  bool per_link_rto = false;
};

/// What one stop-and-wait transfer accomplished.
struct ReliableOutcome {
  bool delivered = false;     ///< acked: exactly-once far-end processing
  bool data_arrived = false;  ///< simulator ground truth (tests only)
  Arrival arrival{};          ///< far end; valid when data_arrived
  std::uint32_t data_copies = 0;  ///< DATA frames put on the wire
  std::uint32_t ack_copies = 0;   ///< ACK frames put on the wire
  // --- retransmission behaviour (the E13/E14 bench counters) --------------
  std::uint32_t retransmits = 0;  ///< timeout-driven DATA resends
  std::uint32_t backoffs = 0;     ///< RTO doublings applied
  std::uint32_t rtt_samples = 0;  ///< clean samples fed to the estimator
  /// Arrived copies the CRC rejected (corruption degraded to loss: the
  /// frame is dropped unprocessed and the retransmit timer recovers).
  std::uint32_t corrupt_drops = 0;
  SimTime srtt = 0;          ///< smoothed RTT after this transfer (0: none)
  SimTime first_rto = 0;     ///< RTO armed for the initial copy
  SimTime elapsed = 0;       ///< virtual time the transfer consumed
};

class ReliableTransport {
 public:
  /// The graph must outlive the transport.  Throws on invalid options.
  ReliableTransport(const graph::Graph& g, std::uint64_t seed,
                    LinkModel defaults = {}, ReliableOptions options = {});

  /// One stop-and-wait transfer across the edge at (from, out_port),
  /// blocking in VIRTUAL time: drives the simulator until the transfer is
  /// acked or the retry budget is spent.  Every DATA and ACK copy counts
  /// one wire transmission (lost copies included — they were really sent).
  ReliableOutcome send(graph::NodeId from, graph::Port out_port);

  /// Completed send() calls so far (delivered or not).
  std::uint64_t transfers() const { return transfers_; }
  /// Total wire frames (DATA + ACK copies, lost ones included).
  std::uint64_t frames() const { return sim_.transmissions(); }

  // --- transport-lifetime retransmission aggregates ------------------------
  std::uint64_t total_retransmits() const { return total_retransmits_; }
  std::uint64_t total_backoffs() const { return total_backoffs_; }
  std::uint64_t total_rtt_samples() const;
  /// The shared adaptive estimator (fixed at `rto` when !adaptive_rto).
  const RtoEstimator& estimator() const { return estimator_; }
  /// Per-link mode: the estimator of the directed link departing (u, p).
  const RtoEstimator& link_estimator(graph::NodeId u, graph::Port p) const;

  const ReliableOptions& options() const { return options_; }

  /// The underlying simulator, for per-link overrides and one-sided flips.
  EventSim& sim() { return sim_; }
  const EventSim& sim() const { return sim_; }

 private:
  RtoEstimator& working_estimator(std::uint64_t link);

  EventSim sim_;
  ReliableOptions options_;
  RtoEstimator estimator_;
  /// Per-link estimators (per_link_rto only), indexed by EventSim
  /// link_index; lazily grown to num_links() on first use.
  std::vector<RtoEstimator> link_estimators_;
  std::uint64_t transfers_ = 0;
  std::uint64_t total_retransmits_ = 0;
  std::uint64_t total_backoffs_ = 0;
};

}  // namespace uesr::net
