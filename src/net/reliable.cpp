#include "net/reliable.h"

#include <algorithm>
#include <stdexcept>

namespace uesr::net {

namespace {

// Frame ids: transfer k's DATA is 2k, its ACK 2k + 1 — distinct across the
// simulator's lifetime, so late copies of finished transfers are
// recognizably stale.
std::uint64_t data_id(std::uint64_t k) { return 2 * k; }
std::uint64_t ack_id(std::uint64_t k) { return 2 * k + 1; }
// Timer ids carry (transfer, attempt) so a stale attempt's timer is inert.
std::uint64_t timer_id(std::uint64_t k, std::uint32_t attempt) {
  return (k << 16) | attempt;
}

}  // namespace

ReliableTransport::ReliableTransport(const graph::Graph& g, std::uint64_t seed,
                                     LinkModel defaults,
                                     ReliableOptions options)
    : sim_(g, seed, defaults), options_(options) {
  if (options_.rto == 0)
    throw std::invalid_argument("ReliableTransport: rto must be > 0");
  if (options_.rto_max < options_.rto)
    throw std::invalid_argument("ReliableTransport: rto_max < rto");
  if (options_.max_retries >= 0xffff)
    throw std::invalid_argument("ReliableTransport: max_retries too large");
}

ReliableOutcome ReliableTransport::send(graph::NodeId from,
                                        graph::Port out_port) {
  const std::uint64_t k = transfers_++;
  ReliableOutcome out;
  std::uint32_t attempt = 0;
  SimTime rto = options_.rto;
  sim_.send(from, out_port, data_id(k));
  ++out.data_copies;
  sim_.set_timer(rto, timer_id(k, attempt));
  while (auto ev = sim_.next()) {
    if (ev->kind == SimEventKind::kTimer) {
      // Only the CURRENT attempt's timer of THIS transfer retransmits;
      // timers of earlier attempts (or earlier transfers) are inert.
      if (ev->timer_id != timer_id(k, attempt)) continue;
      if (attempt >= options_.max_retries) break;  // budget spent: give up
      ++attempt;
      rto = std::min(rto * 2, options_.rto_max);
      sim_.send(from, out_port, data_id(k));
      ++out.data_copies;
      sim_.set_timer(rto, timer_id(k, attempt));
      continue;
    }
    if (ev->frame_id == data_id(k)) {
      // A copy reached the far end.  The receiver acks every copy (acks
      // can be lost) but processes only the first — exactly-once by
      // transfer id.
      if (!out.data_arrived) {
        out.data_arrived = true;
        out.arrival = Arrival{ev->node, ev->port};
      }
      sim_.send(ev->node, ev->port, ack_id(k));
      ++out.ack_copies;
      continue;
    }
    if (ev->frame_id == ack_id(k)) {
      // Any ack of this transfer confirms it; in-flight stragglers stay
      // queued and are recognizably stale to later transfers.
      out.delivered = true;
      return out;
    }
    // Late copy of a finished transfer: the endpoint logic that owned it
    // is closed — dropped on the floor, never re-acked.
  }
  return out;
}

}  // namespace uesr::net
