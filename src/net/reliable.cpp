#include "net/reliable.h"

#include <algorithm>
#include <stdexcept>

namespace uesr::net {

namespace {

// Frame ids: transfer k's DATA is 2k, its ACK 2k + 1 — distinct across the
// simulator's lifetime, so late copies of finished transfers are
// recognizably stale.
std::uint64_t data_id(std::uint64_t k) { return 2 * k; }
std::uint64_t ack_id(std::uint64_t k) { return 2 * k + 1; }
// Timer ids carry (transfer, attempt) so a stale attempt's timer is inert.
std::uint64_t timer_id(std::uint64_t k, std::uint32_t attempt) {
  return (k << 16) | attempt;
}

RtoOptions rto_options(const ReliableOptions& o) {
  RtoOptions r;
  r.initial = o.rto;
  r.min = o.rto_min;
  r.max = o.rto_max;
  r.adaptive = o.adaptive_rto;
  return r;
}

}  // namespace

ReliableTransport::ReliableTransport(const graph::Graph& g, std::uint64_t seed,
                                     LinkModel defaults,
                                     ReliableOptions options)
    : sim_(g, seed, defaults), options_(options),
      estimator_(rto_options(options)) {
  if (options_.rto == 0)
    throw std::invalid_argument("ReliableTransport: rto must be > 0");
  if (options_.rto_max < options_.rto)
    throw std::invalid_argument("ReliableTransport: rto_max < rto");
  if (options_.max_retries >= 0xffff)
    throw std::invalid_argument("ReliableTransport: max_retries too large");
}

RtoEstimator& ReliableTransport::working_estimator(std::uint64_t link) {
  if (!options_.adaptive_rto || !options_.per_link_rto) return estimator_;
  if (link_estimators_.empty())
    link_estimators_.assign(sim_.num_links(),
                            RtoEstimator(rto_options(options_)));
  return link_estimators_[link];
}

const RtoEstimator& ReliableTransport::link_estimator(graph::NodeId u,
                                                      graph::Port p) const {
  const std::uint64_t link = sim_.link_index(u, p);
  if (link_estimators_.empty()) return estimator_;  // never engaged
  return link_estimators_[link];
}

std::uint64_t ReliableTransport::total_rtt_samples() const {
  std::uint64_t total = estimator_.samples();
  for (const RtoEstimator& e : link_estimators_) total += e.samples();
  return total;
}

ReliableOutcome ReliableTransport::send(graph::NodeId from,
                                        graph::Port out_port) {
  const std::uint64_t k = transfers_++;
  ReliableOutcome out;
  std::uint32_t attempt = 0;
  // Fixed mode doubles a per-transfer local copy (the exact PR 6
  // schedule); adaptive mode arms the working estimator's timeout and
  // backs IT off, so a congested/lossy past carries into the next
  // transfer until a clean sample (Karn).  The working estimator is the
  // transport-wide one, or this link's own under per_link_rto.
  RtoEstimator& est = working_estimator(sim_.link_index(from, out_port));
  SimTime rto = options_.adaptive_rto ? est.rto() : options_.rto;
  out.first_rto = rto;
  const SimTime start = sim_.now();
  SimTime sent_at = start;
  sim_.send(from, out_port, data_id(k));
  ++out.data_copies;
  sim_.set_timer(rto, timer_id(k, attempt));
  while (auto ev = sim_.next()) {
    if (ev->kind == SimEventKind::kTimer) {
      // Only the CURRENT attempt's timer of THIS transfer retransmits;
      // timers of earlier attempts (or earlier transfers) are inert.
      if (ev->timer_id != timer_id(k, attempt)) continue;
      if (attempt >= options_.max_retries) break;  // budget spent: give up
      ++attempt;
      ++out.retransmits;
      ++out.backoffs;
      ++total_retransmits_;
      ++total_backoffs_;
      if (options_.adaptive_rto) {
        est.backoff();
        rto = est.rto();
      } else {
        rto = std::min(rto * 2, options_.rto_max);
      }
      sent_at = sim_.now();
      sim_.send(from, out_port, data_id(k));
      ++out.data_copies;
      sim_.set_timer(rto, timer_id(k, attempt));
      continue;
    }
    if (ev->corrupted) {
      // The frame check sequence failed: whatever this was — DATA or ACK —
      // it is dropped unprocessed.  Detected corruption degrades to loss;
      // the retransmit timer recovers it.
      ++out.corrupt_drops;
      continue;
    }
    if (ev->frame_id == data_id(k)) {
      // A copy reached the far end.  The receiver acks every copy (acks
      // can be lost) but processes only the first — exactly-once by
      // transfer id (durable: a crash cannot un-process it, so recovery
      // never double-delivers).
      if (!out.data_arrived) {
        out.data_arrived = true;
        out.arrival = Arrival{ev->node, ev->port};
      }
      sim_.send(ev->node, ev->port, ack_id(k));
      ++out.ack_copies;
      continue;
    }
    if (ev->frame_id == ack_id(k)) {
      // Any ack of this transfer confirms it; in-flight stragglers stay
      // queued and are recognizably stale to later transfers.  Karn's
      // rule: only a never-retransmitted transfer yields an unambiguous
      // RTT (this ack could otherwise confirm any copy).
      out.delivered = true;
      if (options_.adaptive_rto && out.retransmits == 0) {
        est.sample(sim_.now() - sent_at);
        ++out.rtt_samples;
      }
      // The pending attempt timer is dead weight: lazily cancel it so
      // long runs never accumulate stale timers in the heap.
      sim_.cancel_timer(timer_id(k, attempt));
      break;
    }
    // Late copy of a finished transfer: the endpoint logic that owned it
    // is closed — dropped on the floor, never re-acked.
  }
  out.srtt = est.srtt();
  out.elapsed = sim_.now() - start;
  return out;
}

}  // namespace uesr::net
