// Port-accurate message transport over a static graph.
//
// The simulator enforces exactly the information a physical ad hoc node
// has: when a frame arrives, the node knows which of its own ports (radio
// interfaces / link-layer neighbours) it arrived on — and nothing else
// about the topology.  `send` moves a message across one edge and reports
// the far-end (node, arrival port); every call counts one transmission.
//
// The transport owns no per-node state whatsoever, mirroring the paper's
// requirement that intermediate nodes store nothing.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace uesr::net {

struct Arrival {
  graph::NodeId node = 0;
  graph::Port port = 0;
};

class Transport {
 public:
  /// The graph must outlive the transport.
  explicit Transport(const graph::Graph& g) : graph_(&g) {}

  /// Transmit across the edge at (from, out_port); returns where the
  /// message lands.  A half-loop delivers back to the sender on the same
  /// port.  Counts one transmission.
  Arrival send(graph::NodeId from, graph::Port out_port);

  std::uint64_t transmissions() const { return transmissions_; }
  void reset_transmissions() { transmissions_ = 0; }

  const graph::Graph& graph() const { return *graph_; }

 private:
  const graph::Graph* graph_;
  std::uint64_t transmissions_ = 0;
};

}  // namespace uesr::net
