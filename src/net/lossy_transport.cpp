#include "net/lossy_transport.h"

namespace uesr::net {

std::optional<Arrival> LossyTransport::send(graph::NodeId from,
                                            graph::Port out_port) {
  const std::uint64_t frame = next_frame_++;
  sim_.send(from, out_port, frame);
  while (auto ev = sim_.next()) {
    if (ev->kind != SimEventKind::kArrival) continue;  // stray timer
    // Late duplicates of earlier frames may still be in flight; only this
    // frame's first copy resolves the call.
    if (ev->frame_id != frame) continue;
    return Arrival{ev->node, ev->port};
  }
  return std::nullopt;
}

}  // namespace uesr::net
