// Seeded fault plans: scripted or sampled schedules of node crashes,
// link brownouts, and corruption bursts over simulator time (the chaos
// layer of DESIGN.md §2.12).
//
// A FaultPlan is PURE DATA — a time-sorted list of (at, FaultAction)
// entries.  arm(sim) schedules every entry into the simulator's event
// queue (EventSim::schedule_fault), where next() applies them silently at
// their exact virtual instants, interleaved with arrivals and timers — so
// a crash window can open in the middle of one reliable transfer and
// close in the middle of the next.  Because the plan is data and the
// simulator's channel draws are (seed, link, event)-keyed, an armed plan
// changes WHICH events survive but never how the channel rolls — replays
// stay bit-identical, and a plan with no entries leaves every trace
// byte-for-byte what it was without the fault layer.
//
// Plans come from two places:
//   * scripted — crash()/brownout()/corruption_burst() append matched
//     open/close pairs by hand (the unit-test and experiment-pin path);
//   * sampled  — FaultPlan::sample(g, ChaosConfig, seed) rolls windows
//     from per-entity counter_hash streams: per node an independent crash
//     schedule, per directed link a brownout schedule, one global
//     corruption-burst schedule.  Same (graph, config, seed) → identical
//     plan, always — the chaos fuzzer's replay handle.
//
// fresh() returns a copy by value (the PR 4 Scenario convention: replays
// from const contexts), and merge() composes plans for layered chaos.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "net/sim.h"

namespace uesr::net {

/// Knobs for FaultPlan::sample — how much chaos, over how long.  All
/// rates are per-slot Bernoulli probabilities of OPENING a window at a
/// slot boundary; windows never overlap per entity (the scan skips to a
/// window's close before rolling again).
struct ChaosConfig {
  /// Plan horizon in virtual time; no window opens at or after it.  > 0.
  SimTime horizon = 1 << 12;
  /// Scan granularity: window-open rolls happen every `slot` ticks.  > 0.
  SimTime slot = 64;

  /// Per-slot P(a given node opens a crash window).  In [0, 1].
  double crash_rate = 0.0;
  SimTime crash_min = 32;   ///< crash window length bounds (inclusive)
  SimTime crash_max = 256;

  /// Per-slot P(a global corruption burst opens).  In [0, 1].
  double corrupt_burst_rate = 0.0;
  /// Corruption probability during a burst (kGlobalCorrupt level); bursts
  /// close back to 0.  In [0, 1].
  double corrupt_level = 0.5;
  SimTime burst_min = 16;   ///< burst length bounds (inclusive)
  SimTime burst_max = 128;

  /// Per-slot P(a given directed link opens a brownout).  In [0, 1].
  double brownout_rate = 0.0;
  SimTime brownout_min = 16;  ///< brownout length bounds (inclusive)
  SimTime brownout_max = 128;

  friend bool operator==(const ChaosConfig&, const ChaosConfig&) = default;
};

/// A deterministic, replayable schedule of fault actions over sim time.
class FaultPlan {
 public:
  /// One scheduled state flip.
  struct Entry {
    SimTime at = 0;
    FaultAction action{};
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  FaultPlan() = default;

  // --- scripted construction ----------------------------------------------
  /// Node v is down over [at, until): kCrash at `at`, kRecover at `until`.
  FaultPlan& crash(graph::NodeId v, SimTime at, SimTime until);
  /// The directed link departing (u, p) is down over [at, until).
  FaultPlan& brownout(graph::NodeId u, graph::Port p, SimTime at,
                      SimTime until);
  /// Global corruption probability is `level` over [at, until), 0 after.
  FaultPlan& corruption_burst(SimTime at, SimTime until, double level);

  /// Rolls a plan from (graph, config, seed): per-node crash windows from
  /// counter_hash(counter_hash(seed, 1), v), one global burst stream from
  /// counter_hash(seed, 2), per-directed-link brownouts from
  /// counter_hash(counter_hash(seed, 3), link).  Pure function of its
  /// arguments; throws on out-of-range config.
  static FaultPlan sample(const graph::Graph& g, const ChaosConfig& cfg,
                          std::uint64_t seed);

  /// Schedules every entry into `sim` at absolute plan time (entries whose
  /// time already passed fire immediately).  Arm once, right after the
  /// simulator is built; the sim validates targets against its own graph.
  void arm(EventSim& sim) const;

  /// A rewound copy (trivially the plan itself — it is pure data).  The
  /// PR 4 Scenario::fresh() convention, so session rebuilds can re-arm.
  FaultPlan fresh() const { return *this; }

  /// Appends `other`'s entries and restores time order (stable — equal
  /// times keep this-before-other, so arm order stays deterministic).
  FaultPlan& merge(const FaultPlan& other);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  void add(SimTime at, const FaultAction& action);

  std::vector<Entry> entries_;  ///< kept stably sorted by `at`
};

}  // namespace uesr::net
