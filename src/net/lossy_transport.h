// Transport-shaped facade over the lossy event simulator — the UNRELIABLE
// layer.
//
// LossyTransport keeps net::Transport's send-semantics (one call moves one
// frame across the edge at (from, out_port) and reports the far-end
// arrival) but serves it from an EventSim channel, so the frame can be
// late, duplicated, or never arrive at all: send() returns nullopt when the
// channel ate the frame.  At loss = 0, dup = 0 and a constant latency the
// facade replays net::Transport exactly — same arrival sequence, same
// transmission count (pinned by property test P9).
//
// Sessions that need Transport's unconditional delivery on top of a lossy
// channel go through net/reliable.h instead; this class exists for
// protocols that tolerate loss natively (flooding, gossip) and as the
// equivalence anchor between the perfect and lossy worlds.
#pragma once

#include <cstdint>
#include <optional>

#include "net/sim.h"
#include "net/transport.h"

namespace uesr::net {

class LossyTransport {
 public:
  /// The graph must outlive the transport.
  LossyTransport(const graph::Graph& g, std::uint64_t seed,
                 LinkModel defaults = {})
      : sim_(g, seed, defaults) {}

  /// Transmits across the edge at (from, out_port) and drives the
  /// simulator until that frame arrives (first copy wins when the channel
  /// duplicated it).  Returns nullopt when the frame was lost — the caller
  /// learns nothing about the far end, exactly like a real radio.  Counts
  /// one transmission either way.
  std::optional<Arrival> send(graph::NodeId from, graph::Port out_port);

  /// Fire-and-forget variant: schedules the frame and returns immediately;
  /// arrivals surface through sim().next().
  void send_async(graph::NodeId from, graph::Port out_port,
                  std::uint64_t frame_id) {
    sim_.send(from, out_port, frame_id);
  }

  std::uint64_t transmissions() const { return sim_.transmissions(); }

  /// The underlying simulator, for per-link model overrides, one-sided
  /// connectivity flips, and trace capture.
  EventSim& sim() { return sim_; }
  const EventSim& sim() const { return sim_; }

  const graph::Graph& graph() const { return sim_.graph(); }

 private:
  EventSim sim_;
  std::uint64_t next_frame_ = 0;
};

}  // namespace uesr::net
