// Selective-repeat sliding-window ARQ over the lossy event simulator —
// the pipelined reliable layer that replaces stop-and-wait's
// one-frame-per-RTT bottleneck (ISSUE 7 tentpole; SNIPPETS.md's
// selective-repeat sender/receiver queues reduced to their invariant).
//
// One send() moves one MESSAGE of `frames_per_message` frames across the
// edge at (from, out_port), keeping up to `window` frames in flight at
// once:
//
//   * the sender launches frames into the window, arms one retransmission
//     timer per in-flight frame, and resends exactly the frames whose
//     timers fire (selective repeat — never go-back-N's wasteful replay);
//   * the receiver buffers out-of-order arrivals in a bitmap and acks
//     EVERY copy it sees with a (frame, cumulative) pair: the selective
//     half retires that frame from the sender's window, the cumulative
//     half retires every frame below it — so one surviving ack can repair
//     many lost ones;
//   * frames are processed exactly once and the message is complete only
//     when the receiver's cumulative counter covers it — exactly-once,
//     in-order delivery by construction.
//
// The contract mirrors net/reliable.h one level up:
//
//   * delivered == true   — every frame of the message was acked: the far
//                           end provably holds the whole message, in
//                           order, exactly once.
//   * delivered == false  — some frame spent its per-frame retry budget;
//                           the sender knows nothing (any subset of frames
//                           and acks may be the lost half — the same
//                           two-generals gap).  `message_arrived` is the
//                           simulator's ground truth, for soundness tests
//                           only.
//
// Timeouts come from the shared Jacobson/Karn estimator (net/rto.h):
// never-retransmitted frames feed it unambiguous RTT samples, timeouts
// back it off, and the backed-off value persists until the next clean
// sample.  Every schedule remains a pure function of (graph, seed, call
// sequence) — the adaptation consumes no randomness of its own — so
// enable_trace() replay stays byte-identical and reports thread-count
// invariant (pinned by the window replay-regression test).
//
// With window == 1 the pipeline degenerates to stop-and-wait pacing —
// that is the E14 baseline the sliding window is measured against; the
// bench sweeps window x loss and reports virtual time per delivered
// message.
//
// Fault semantics (DESIGN.md §2.12): a corrupted copy fails the frame
// check sequence and is dropped unprocessed — corruption degrades to loss
// and the per-frame timers recover it.  Node crash amnesia follows the
// TCP-SACK reneging discipline: the receiver's in-order delivered prefix
// (`cum`) is durable app state, but the out-of-order buffer above it is
// VOLATILE — a crash/recovery of the receiving node wipes it (tracked by
// the simulator's crash epoch).  Selective acks are therefore only
// advisory: `delivered` requires a CUMULATIVE ack covering the whole
// message (the watermark), never just every-frame-selectively-acked — so
// a receiver that reneged can cost liveness (the transfer dies into the
// two-generals gap) but never soundness, and the durable prefix plus
// globally-unique frame ids mean recovery can never double-deliver.
// Crash-free, watermark-completion is provably identical to
// all-frames-acked (receiver state is monotone), so the PR 7 replay pins
// hold byte for byte.
//
// Model note: selective repeat needs O(window) bits of LINK-layer state
// per endpoint (the in-flight bitmap).  The ROUTING layer above stays
// stateless — the paper's model constrains the routing layer, not the
// radio (same argument as net/reliable.h).
#pragma once

#include <cstdint>
#include <vector>

#include "net/rto.h"
#include "net/sim.h"
#include "net/transport.h"

namespace uesr::net {

struct WindowOptions {
  /// In-flight frame cap; 1 degenerates to stop-and-wait pacing.  >= 1.
  std::uint32_t window = 8;
  /// Frames per message (the segmentation that makes the window matter
  /// across one hop).  In [1, 2^15).
  std::uint32_t frames_per_message = 8;
  /// Per-frame retransmission budget; a single frame exhausting it aborts
  /// the whole transfer.  Must be < 2^16 - 1.
  std::uint32_t max_retries = 8;
  /// Timeout estimation (shared Jacobson/Karn state across transfers).
  RtoOptions rto{};
  /// Adaptive-RTO granularity: true keeps one estimator per directed link
  /// instead of one per transport (see net/reliable.h — the ROADMAP
  /// per-link follow-on).  Ignored when !rto.adaptive.
  bool per_link_rto = false;
};

/// What one sliding-window message transfer accomplished.
struct WindowOutcome {
  bool delivered = false;        ///< all frames acked: exactly-once, in order
  bool message_arrived = false;  ///< ground truth: receiver holds all frames
  Arrival arrival{};             ///< far end; valid once any DATA arrived
  std::uint32_t data_copies = 0;  ///< DATA frames put on the wire
  std::uint32_t ack_copies = 0;   ///< ACK frames put on the wire
  std::uint32_t retransmits = 0;  ///< timeout-driven DATA resends
  std::uint32_t backoffs = 0;     ///< RTO doublings applied
  std::uint32_t rtt_samples = 0;  ///< clean samples fed to the estimator
  /// Arrived copies the CRC rejected (corruption degraded to loss).
  std::uint32_t corrupt_drops = 0;
  /// Receiver crash/recovery cycles observed mid-transfer (each wiped the
  /// volatile out-of-order buffer — the amnesia events).
  std::uint32_t receiver_resets = 0;
  SimTime srtt = 0;     ///< smoothed RTT after this transfer (0: none)
  SimTime elapsed = 0;  ///< virtual time the transfer consumed
};

class WindowTransport {
 public:
  /// The graph must outlive the transport.  Throws on invalid options.
  WindowTransport(const graph::Graph& g, std::uint64_t seed,
                  LinkModel defaults = {}, WindowOptions options = {});

  /// One selective-repeat message transfer across the edge at
  /// (from, out_port), blocking in VIRTUAL time: drives the simulator
  /// until every frame is acked or some frame's retry budget is spent.
  /// Every DATA and ACK copy counts one wire transmission.
  WindowOutcome send(graph::NodeId from, graph::Port out_port);

  /// Completed send() calls so far (delivered or not).
  std::uint64_t transfers() const { return transfers_; }
  /// Total wire frames (DATA + ACK copies, lost ones included).
  std::uint64_t frames() const { return sim_.transmissions(); }

  // --- transport-lifetime retransmission aggregates ------------------------
  std::uint64_t total_retransmits() const { return total_retransmits_; }
  std::uint64_t total_backoffs() const { return total_backoffs_; }
  std::uint64_t total_rtt_samples() const;
  const RtoEstimator& estimator() const { return estimator_; }
  /// Per-link mode: the estimator of the directed link departing (u, p).
  const RtoEstimator& link_estimator(graph::NodeId u, graph::Port p) const;

  const WindowOptions& options() const { return options_; }

  /// The underlying simulator, for per-link overrides and one-sided flips.
  EventSim& sim() { return sim_; }
  const EventSim& sim() const { return sim_; }

 private:
  RtoEstimator& working_estimator(std::uint64_t link);

  EventSim sim_;
  WindowOptions options_;
  RtoEstimator estimator_;
  /// Per-link estimators (per_link_rto only), indexed by EventSim
  /// link_index; lazily grown to num_links() on first use.
  std::vector<RtoEstimator> link_estimators_;
  std::uint64_t transfers_ = 0;
  std::uint64_t total_retransmits_ = 0;
  std::uint64_t total_backoffs_ = 0;
};

}  // namespace uesr::net
