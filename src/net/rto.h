// Adaptive retransmission-timeout estimation shared by both ARQs
// (stop-and-wait in net/reliable.h, selective repeat in net/window.h).
//
// The classic Jacobson/Karels estimator in integer arithmetic (the RFC
// 6298 shape): SRTT and RTTVAR are kept as fixed-point accumulators
// (srtt scaled by 8, rttvar by 4) so the update rules
//
//   rttvar <- 3/4 rttvar + 1/4 |srtt - R|
//   srtt   <- 7/8 srtt   + 1/8 R
//   rto    <- srtt + max(G, 4 * rttvar)      clamped to [min, max]
//
// are exact integer recurrences — a pure function of the sample sequence,
// with no floating point anywhere near the schedule.  That is what keeps
// the determinism contract intact: the RTO an ARQ arms is a pure function
// of (seed, call sequence), so enable_trace() replays stay byte-identical
// and every report stays thread-count invariant no matter how adaptively
// the timers move.
//
// Karn's rule is split between this class and its callers:
//   * callers feed sample() ONLY from frames that were never retransmitted
//     (a retransmitted frame's ack is ambiguous — it may confirm any copy,
//     so its RTT is unusable);
//   * backoff() doubles the working RTO on timeout and the backed-off
//     value KEEPS being used for subsequent transfers until a fresh sample
//     re-derives rto from the estimators — exactly Karn's "reuse the
//     backed-off timer until an unambiguous sample" discipline.
//
// With adaptive = false the estimator degrades to the PR 6 behaviour:
// sample() is a no-op and rto() stays pinned at `initial` (callers then
// apply their own per-transfer doubling), so existing fixed-RTO tests and
// benches replay unchanged.
#pragma once

#include <cstdint>

#include "net/sim.h"

namespace uesr::net {

struct RtoOptions {
  SimTime initial = 8;  ///< RTO before the first sample; must be > 0
  SimTime min = 4;      ///< adaptive floor (keeps rto > any 1-tick jitter)
  SimTime max = 1024;   ///< backoff/estimate ceiling; must be >= initial
  /// Timer granularity G: the lower bound on the variance term, so a
  /// perfectly constant RTT still leaves one tick of slack between the
  /// expected ack and the timer (ties in the event heap break by push
  /// order, so a timer armed exactly at the ack's arrival time would fire
  /// first — G = 2 keeps adaptation spuriousness-free on constant links).
  SimTime granularity = 2;
  bool adaptive = true;  ///< false: rto() == initial forever (PR 6 mode)
};

class RtoEstimator {
 public:
  explicit RtoEstimator(RtoOptions options = {});

  /// The RTO to arm next, already clamped to [min, max].
  SimTime rto() const { return rto_; }
  /// Smoothed RTT (0 until the first sample) — surfaced in outcomes.
  SimTime srtt() const { return srtt8_ >> 3; }
  std::uint64_t samples() const { return samples_; }

  /// Feed one unambiguous RTT measurement (Karn: the caller guarantees the
  /// acked frame was never retransmitted).  Recomputes rto from the
  /// estimators, ending any backoff.  No-op when !adaptive.
  void sample(SimTime rtt);

  /// Timeout fired: double the working RTO (clamped to max).  The doubled
  /// value persists across transfers until the next sample().  Applied in
  /// adaptive mode only — fixed-RTO callers keep their own local doubling
  /// so PR 6 schedules replay bit-identically.
  void backoff();

  const RtoOptions& options() const { return options_; }

 private:
  SimTime clamp(SimTime t) const;

  RtoOptions options_;
  SimTime rto_;
  std::uint64_t srtt8_ = 0;    ///< SRTT << 3
  std::uint64_t rttvar4_ = 0;  ///< RTTVAR << 2
  std::uint64_t samples_ = 0;
};

}  // namespace uesr::net
