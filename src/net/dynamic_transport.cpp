#include "net/dynamic_transport.h"

#include <stdexcept>

namespace uesr::net {

Arrival DynamicTransport::send(graph::NodeId from, graph::Port out_port) {
  const graph::Graph& g = graph_->snapshot();
  if (from >= g.num_nodes())
    throw std::invalid_argument("DynamicTransport::send: bad node");
  if (out_port >= g.degree(from))
    throw std::invalid_argument(
        "DynamicTransport::send: port not present in the current epoch");
  ++transmissions_;
  graph::HalfEdge far = g.rotate(from, out_port);
  return {far.node, far.port};
}

}  // namespace uesr::net
