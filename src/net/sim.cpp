#include "net/sim.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace uesr::net {

using graph::NodeId;
using graph::Port;

namespace {

void validate_model(const LinkModel& m, const char* who) {
  if (m.latency_max < m.latency_min)
    throw std::invalid_argument(std::string(who) +
                                ": latency_max < latency_min");
  if (m.loss < 0.0 || m.loss > 1.0)
    throw std::invalid_argument(std::string(who) + ": loss outside [0, 1]");
  if (m.dup < 0.0 || m.dup > 1.0)
    throw std::invalid_argument(std::string(who) + ": dup outside [0, 1]");
  if (m.corrupt < 0.0 || m.corrupt > 1.0)
    throw std::invalid_argument(std::string(who) +
                                ": corrupt outside [0, 1]");
}

SimTime draw_latency(const LinkModel& m, util::Pcg32& rng) {
  const SimTime span = m.latency_max - m.latency_min;
  if (span == 0) return m.latency_min;
  // Spans beyond 32 bits never occur in practice; clamp defensively.
  const auto bound = static_cast<std::uint32_t>(
      span >= 0xffffffffULL ? 0xffffffffUL : span + 1);
  return m.latency_min + rng.next_below(bound);
}

/// The seeded bit-flip of a corrupted copy: one random bit of the frame id
/// (the payload this simulator carries) is damaged; the `corrupted` flag is
/// the frame check sequence catching it.
void damage(SimEvent& ev, util::Pcg32& rng) {
  ev.frame_id ^= 1ULL << rng.next_below(64);
  ev.corrupted = true;
}

}  // namespace

EventSim::EventSim(const graph::Graph& g, std::uint64_t seed,
                   LinkModel defaults)
    : graph_(&g), seed_(seed), default_model_(defaults) {
  validate_model(defaults, "EventSim");
  offsets_.resize(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  models_.resize(offsets_.back());
  down_.resize(offsets_.back(), false);
  crashed_.resize(g.num_nodes(), false);
  crash_epochs_.resize(g.num_nodes(), 0);
}

void EventSim::check_half_edge(NodeId u, Port p, const char* who) const {
  if (u >= graph_->num_nodes())
    throw std::invalid_argument(std::string(who) + ": node out of range");
  if (p >= graph_->degree(u))
    throw std::invalid_argument(std::string(who) + ": port out of range");
}

void EventSim::check_node(NodeId v, const char* who) const {
  if (v >= graph_->num_nodes())
    throw std::invalid_argument(std::string(who) + ": node out of range");
}

void EventSim::set_link_model(NodeId u, Port p, const LinkModel& m) {
  check_half_edge(u, p, "EventSim::set_link_model");
  validate_model(m, "EventSim::set_link_model");
  models_[link_id(u, p)] = m;
}

const LinkModel& EventSim::link_model(NodeId u, Port p) const {
  check_half_edge(u, p, "EventSim::link_model");
  const auto& o = models_[link_id(u, p)];
  return o ? *o : default_model_;
}

void EventSim::set_link_up(NodeId u, Port p, bool up) {
  check_half_edge(u, p, "EventSim::set_link_up");
  down_[link_id(u, p)] = !up;
}

bool EventSim::link_up(NodeId u, Port p) const {
  check_half_edge(u, p, "EventSim::link_up");
  return !down_[link_id(u, p)];
}

void EventSim::set_node_crashed(NodeId v, bool crashed) {
  check_node(v, "EventSim::set_node_crashed");
  if (crashed_[v] && !crashed) ++crash_epochs_[v];  // recovery: amnesia
  crashed_[v] = crashed;
}

bool EventSim::node_crashed(NodeId v) const {
  check_node(v, "EventSim::node_crashed");
  return crashed_[v];
}

std::uint64_t EventSim::crash_epochs(NodeId v) const {
  check_node(v, "EventSim::crash_epochs");
  return crash_epochs_[v];
}

std::uint64_t EventSim::link_index(NodeId u, Port p) const {
  check_half_edge(u, p, "EventSim::link_index");
  return link_id(u, p);
}

void EventSim::record(std::string line) {
  if (trace_.size() < trace_limit_) trace_.push_back(std::move(line));
}

void EventSim::push(SimTime at, SimEvent ev) {
  ev.time = at;
  ev.seq = next_seq_++;
  queue_.push_back(Queued{at, ev.seq, ev});
  std::push_heap(queue_.begin(), queue_.end(), QueuedLater{});
}

void EventSim::send(NodeId from, Port out_port, std::uint64_t frame_id) {
  check_half_edge(from, out_port, "EventSim::send");
  const std::uint64_t link = link_id(from, out_port);
  const std::uint64_t event = next_send_++;
  ++transmissions_;
  auto stamp = [&](const char* outcome) {
    if (trace_limit_ == 0) return;
    record("S t=" + std::to_string(now_) + " ev=" + std::to_string(event) +
           " link=" + std::to_string(from) + "." + std::to_string(out_port) +
           " f=" + std::to_string(frame_id) + " " + outcome);
  };
  if (crashed_[from]) {  // a crashed node transmits nothing (no draws)
    ++frames_crashed_;
    stamp("crash");
    return;
  }
  if (down_[link]) {  // transmitting into a dead direction: nothing receives
    ++frames_lost_;
    stamp("down");
    return;
  }
  const LinkModel& m = models_[link] ? *models_[link] : default_model_;
  // Per-(link, event) stream: the schedule is a pure function of the seed
  // and the call sequence (ROADMAP's deterministic-replay contract).  Draw
  // order is fixed: loss, latency, dup, dup-latency, THEN the corruption
  // draws — so at corrupt = 0 the stream is consumed exactly as pre-fault
  // replays did (P11).
  util::Pcg32 rng(util::counter_hash(util::counter_hash(seed_, link), event));
  if (m.loss > 0.0 && rng.next_double() < m.loss) {
    ++frames_lost_;
    stamp("lost");
    return;
  }
  const graph::HalfEdge far = graph_->rotate(from, out_port);
  SimEvent ev;
  ev.kind = SimEventKind::kArrival;
  ev.node = far.node;
  ev.port = far.port;
  ev.from = from;
  ev.from_port = out_port;
  ev.frame_id = frame_id;
  const SimTime latency = draw_latency(m, rng);
  SimEvent dup_ev;
  SimTime dup_latency = 0;
  const bool spawn_dup = m.dup > 0.0 && rng.next_double() < m.dup;
  if (spawn_dup) {
    dup_ev = ev;
    dup_ev.duplicate = true;
    dup_latency = draw_latency(m, rng);
  }
  if (m.corrupt > 0.0 && rng.next_double() < m.corrupt) {
    ++frames_corrupted_;
    damage(ev, rng);
  }
  if (spawn_dup && m.corrupt > 0.0 && rng.next_double() < m.corrupt) {
    ++frames_corrupted_;
    damage(dup_ev, rng);
  }
  push(now_ + latency, ev);
  stamp(ev.corrupted ? "sent corrupt" : "sent");
  if (spawn_dup) {
    ++frames_duplicated_;
    push(now_ + dup_latency, dup_ev);
    stamp(dup_ev.corrupted ? "dup corrupt" : "dup");
  }
}

void EventSim::set_timer(SimTime delay, std::uint64_t timer_id) {
  SimEvent ev;
  ev.kind = SimEventKind::kTimer;
  ev.timer_id = timer_id;
  push(now_ + delay, ev);
}

void EventSim::cancel_timer(std::uint64_t timer_id) {
  cancelled_.insert(timer_id);
  // Compaction keeps the heap (and pending()) bounded by ~2x the live
  // events: once cancelled entries dominate, filter them out in place and
  // re-heapify.  Pop order is the TOTAL order (time, seq), so rebuilding
  // the heap never changes what next() returns — determinism holds.
  if (cancelled_.size() >= 64 && cancelled_.size() * 2 > queue_.size()) {
    auto dead = [&](const Queued& q) {
      if (q.event.kind != SimEventKind::kTimer) return false;
      const auto it = cancelled_.find(q.event.timer_id);
      if (it == cancelled_.end()) return false;
      cancelled_.erase(it);
      ++timers_cancelled_;
      return true;
    };
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(), dead),
                 queue_.end());
    std::make_heap(queue_.begin(), queue_.end(), QueuedLater{});
  }
}

void EventSim::schedule_fault(SimTime delay, const FaultAction& action) {
  switch (action.kind) {
    case FaultAction::Kind::kCrash:
    case FaultAction::Kind::kRecover:
      check_node(action.node, "EventSim::schedule_fault");
      break;
    case FaultAction::Kind::kLinkDown:
    case FaultAction::Kind::kLinkUp:
      check_half_edge(action.node, action.port, "EventSim::schedule_fault");
      break;
    case FaultAction::Kind::kGlobalCorrupt:
      if (action.corrupt < 0.0 || action.corrupt > 1.0)
        throw std::invalid_argument(
            "EventSim::schedule_fault: corrupt outside [0, 1]");
      break;
  }
  SimEvent ev;
  ev.kind = SimEventKind::kFault;
  ev.timer_id = fault_actions_.size();  // index into fault_actions_
  fault_actions_.push_back(action);
  push(now_ + delay, ev);
}

void EventSim::apply_fault(const FaultAction& f) {
  switch (f.kind) {
    case FaultAction::Kind::kCrash:
      crashed_[f.node] = true;
      break;
    case FaultAction::Kind::kRecover:
      if (crashed_[f.node]) ++crash_epochs_[f.node];
      crashed_[f.node] = false;
      break;
    case FaultAction::Kind::kLinkDown:
      down_[link_id(f.node, f.port)] = true;
      break;
    case FaultAction::Kind::kLinkUp:
      down_[link_id(f.node, f.port)] = false;
      break;
    case FaultAction::Kind::kGlobalCorrupt:
      default_model_.corrupt = f.corrupt;
      for (auto& o : models_)
        if (o) o->corrupt = f.corrupt;
      break;
  }
  if (trace_limit_ != 0)
    record("F t=" + std::to_string(now_) + " " + to_string(f));
}

std::optional<SimEvent> EventSim::next() {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end(), QueuedLater{});
    Queued q = queue_.back();
    queue_.pop_back();
    now_ = q.time;
    SimEvent& ev = q.event;
    if (ev.kind == SimEventKind::kFault) {
      apply_fault(fault_actions_[ev.timer_id]);
      continue;
    }
    if (ev.kind == SimEventKind::kTimer) {
      const auto it = cancelled_.find(ev.timer_id);
      if (it != cancelled_.end()) {  // lazily-cancelled: consume silently
        cancelled_.erase(it);
        ++timers_cancelled_;
        continue;
      }
      if (trace_limit_ != 0) record("E " + to_string(ev));
      return ev;
    }
    if (down_[link_id(ev.from, ev.from_port)]) {
      // The direction died while the frame was in flight.
      ++frames_died_;
      if (trace_limit_ != 0) record("D " + to_string(ev));
      continue;
    }
    if (crashed_[ev.node]) {
      // Nobody is listening at the far end at this delivery instant.
      ++frames_crashed_;
      if (trace_limit_ != 0) record("C " + to_string(ev));
      continue;
    }
    ++frames_delivered_;
    if (trace_limit_ != 0) record("E " + to_string(ev));
    return ev;
  }
  return std::nullopt;
}

std::string to_string(const SimEvent& ev) {
  std::string s = "t=" + std::to_string(ev.time) +
                  " seq=" + std::to_string(ev.seq);
  if (ev.kind == SimEventKind::kTimer)
    return s + " timer id=" + std::to_string(ev.timer_id);
  return s + " arr node=" + std::to_string(ev.node) + " port=" +
         std::to_string(ev.port) + " from=" + std::to_string(ev.from) + "." +
         std::to_string(ev.from_port) + " f=" + std::to_string(ev.frame_id) +
         (ev.duplicate ? " dup" : "") + (ev.corrupted ? " corrupt" : "");
}

std::string to_string(const FaultAction& f) {
  switch (f.kind) {
    case FaultAction::Kind::kCrash:
      return "crash v=" + std::to_string(f.node);
    case FaultAction::Kind::kRecover:
      return "recover v=" + std::to_string(f.node);
    case FaultAction::Kind::kLinkDown:
      return "linkdown " + std::to_string(f.node) + "." +
             std::to_string(f.port);
    case FaultAction::Kind::kLinkUp:
      return "linkup " + std::to_string(f.node) + "." +
             std::to_string(f.port);
    case FaultAction::Kind::kGlobalCorrupt:
      return "corrupt p=" + std::to_string(f.corrupt);
  }
  return "?";
}

}  // namespace uesr::net
