#include "net/sim.h"

#include <stdexcept>

#include "util/rng.h"

namespace uesr::net {

using graph::NodeId;
using graph::Port;

namespace {

void validate_model(const LinkModel& m, const char* who) {
  if (m.latency_max < m.latency_min)
    throw std::invalid_argument(std::string(who) +
                                ": latency_max < latency_min");
  if (m.loss < 0.0 || m.loss > 1.0)
    throw std::invalid_argument(std::string(who) + ": loss outside [0, 1]");
  if (m.dup < 0.0 || m.dup > 1.0)
    throw std::invalid_argument(std::string(who) + ": dup outside [0, 1]");
}

SimTime draw_latency(const LinkModel& m, util::Pcg32& rng) {
  const SimTime span = m.latency_max - m.latency_min;
  if (span == 0) return m.latency_min;
  // Spans beyond 32 bits never occur in practice; clamp defensively.
  const auto bound = static_cast<std::uint32_t>(
      span >= 0xffffffffULL ? 0xffffffffUL : span + 1);
  return m.latency_min + rng.next_below(bound);
}

}  // namespace

EventSim::EventSim(const graph::Graph& g, std::uint64_t seed,
                   LinkModel defaults)
    : graph_(&g), seed_(seed), default_model_(defaults) {
  validate_model(defaults, "EventSim");
  offsets_.resize(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  models_.resize(offsets_.back());
  down_.resize(offsets_.back(), false);
}

void EventSim::check_half_edge(NodeId u, Port p, const char* who) const {
  if (u >= graph_->num_nodes())
    throw std::invalid_argument(std::string(who) + ": node out of range");
  if (p >= graph_->degree(u))
    throw std::invalid_argument(std::string(who) + ": port out of range");
}

void EventSim::set_link_model(NodeId u, Port p, const LinkModel& m) {
  check_half_edge(u, p, "EventSim::set_link_model");
  validate_model(m, "EventSim::set_link_model");
  models_[link_id(u, p)] = m;
}

const LinkModel& EventSim::link_model(NodeId u, Port p) const {
  check_half_edge(u, p, "EventSim::link_model");
  const auto& o = models_[link_id(u, p)];
  return o ? *o : default_model_;
}

void EventSim::set_link_up(NodeId u, Port p, bool up) {
  check_half_edge(u, p, "EventSim::set_link_up");
  down_[link_id(u, p)] = !up;
}

bool EventSim::link_up(NodeId u, Port p) const {
  check_half_edge(u, p, "EventSim::link_up");
  return !down_[link_id(u, p)];
}

void EventSim::record(std::string line) {
  if (trace_.size() < trace_limit_) trace_.push_back(std::move(line));
}

void EventSim::push(SimTime at, SimEvent ev) {
  ev.time = at;
  ev.seq = next_seq_++;
  queue_.push(Queued{at, ev.seq, ev});
}

void EventSim::send(NodeId from, Port out_port, std::uint64_t frame_id) {
  check_half_edge(from, out_port, "EventSim::send");
  const std::uint64_t link = link_id(from, out_port);
  const std::uint64_t event = next_send_++;
  ++transmissions_;
  auto stamp = [&](const char* outcome) {
    if (trace_limit_ == 0) return;
    record("S t=" + std::to_string(now_) + " ev=" + std::to_string(event) +
           " link=" + std::to_string(from) + "." + std::to_string(out_port) +
           " f=" + std::to_string(frame_id) + " " + outcome);
  };
  if (down_[link]) {  // transmitting into a dead direction: nothing receives
    ++frames_lost_;
    stamp("down");
    return;
  }
  const LinkModel& m = models_[link] ? *models_[link] : default_model_;
  // Per-(link, event) stream: the schedule is a pure function of the seed
  // and the call sequence (ROADMAP's deterministic-replay contract).  Draw
  // order is fixed: loss, latency, dup, dup-latency.
  util::Pcg32 rng(util::counter_hash(util::counter_hash(seed_, link), event));
  if (m.loss > 0.0 && rng.next_double() < m.loss) {
    ++frames_lost_;
    stamp("lost");
    return;
  }
  const graph::HalfEdge far = graph_->rotate(from, out_port);
  SimEvent ev;
  ev.kind = SimEventKind::kArrival;
  ev.node = far.node;
  ev.port = far.port;
  ev.from = from;
  ev.from_port = out_port;
  ev.frame_id = frame_id;
  push(now_ + draw_latency(m, rng), ev);
  stamp("sent");
  if (m.dup > 0.0 && rng.next_double() < m.dup) {
    ++frames_duplicated_;
    ev.duplicate = true;
    push(now_ + draw_latency(m, rng), ev);
    stamp("dup");
  }
}

void EventSim::set_timer(SimTime delay, std::uint64_t timer_id) {
  SimEvent ev;
  ev.kind = SimEventKind::kTimer;
  ev.timer_id = timer_id;
  push(now_ + delay, ev);
}

std::optional<SimEvent> EventSim::next() {
  while (!queue_.empty()) {
    Queued q = queue_.top();
    queue_.pop();
    now_ = q.time;
    SimEvent& ev = q.event;
    if (ev.kind == SimEventKind::kArrival &&
        down_[link_id(ev.from, ev.from_port)]) {
      // The direction died while the frame was in flight.
      ++frames_died_;
      if (trace_limit_ != 0) record("D " + to_string(ev));
      continue;
    }
    if (trace_limit_ != 0) record("E " + to_string(ev));
    return ev;
  }
  return std::nullopt;
}

std::string to_string(const SimEvent& ev) {
  std::string s = "t=" + std::to_string(ev.time) +
                  " seq=" + std::to_string(ev.seq);
  if (ev.kind == SimEventKind::kTimer)
    return s + " timer id=" + std::to_string(ev.timer_id);
  return s + " arr node=" + std::to_string(ev.node) + " port=" +
         std::to_string(ev.port) + " from=" + std::to_string(ev.from) + "." +
         std::to_string(ev.from_port) + " f=" + std::to_string(ev.frame_id) +
         (ev.duplicate ? " dup" : "");
}

}  // namespace uesr::net
