#include "net/rto.h"

#include <algorithm>
#include <stdexcept>

namespace uesr::net {

RtoEstimator::RtoEstimator(RtoOptions options) : options_(options) {
  if (options_.initial == 0)
    throw std::invalid_argument("RtoEstimator: initial rto must be > 0");
  if (options_.min == 0)
    throw std::invalid_argument("RtoEstimator: min rto must be > 0");
  if (options_.max < options_.initial || options_.max < options_.min)
    throw std::invalid_argument("RtoEstimator: max < initial or max < min");
  // Fixed mode reports `initial` verbatim (callers own their doubling);
  // adaptive mode keeps the working RTO inside [min, max] from the start.
  rto_ = options_.adaptive ? clamp(options_.initial) : options_.initial;
}

SimTime RtoEstimator::clamp(SimTime t) const {
  return std::min(std::max(t, options_.min), options_.max);
}

void RtoEstimator::sample(SimTime rtt) {
  if (!options_.adaptive) return;
  if (samples_ == 0) {
    // First measurement: srtt = R, rttvar = R / 2 (the RFC 6298 init).
    srtt8_ = rtt << 3;
    rttvar4_ = rtt << 1;
  } else {
    const std::int64_t delta =
        static_cast<std::int64_t>(rtt) -
        static_cast<std::int64_t>(srtt8_ >> 3);
    const std::int64_t abs_delta = delta < 0 ? -delta : delta;
    // rttvar4 += |delta| - rttvar4/4  ==  rttvar <- 3/4 rttvar + |delta|/4
    rttvar4_ += static_cast<std::uint64_t>(
        abs_delta - static_cast<std::int64_t>(rttvar4_ >> 2));
    // srtt8 += delta  ==  srtt <- 7/8 srtt + R/8
    srtt8_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(srtt8_) + delta);
  }
  ++samples_;
  // A fresh unambiguous sample re-derives the RTO, ending any backoff
  // (Karn's rule: the backed-off value never outlives a clean measurement).
  rto_ = clamp((srtt8_ >> 3) + std::max(options_.granularity, rttvar4_));
}

void RtoEstimator::backoff() {
  if (!options_.adaptive) return;
  rto_ = std::min(rto_ * 2, options_.max);
}

}  // namespace uesr::net
