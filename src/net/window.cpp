#include "net/window.h"

#include <algorithm>
#include <stdexcept>

namespace uesr::net {

namespace {

// Frame-id packing, 64 bits: | transfer k (33b) | cum (15b) | frame (15b) |
// kind (1b) |.  DATA leaves cum zero; ACKs carry (frame, cumulative).
// Transfer ids make late copies of finished transfers recognizably stale,
// exactly as in net/reliable.h.
constexpr std::uint64_t kKindAck = 1;
constexpr std::uint64_t kFieldMask = 0x7fff;  // 15 bits

std::uint64_t data_id(std::uint64_t k, std::uint32_t f) {
  return (k << 31) | (static_cast<std::uint64_t>(f) << 1);
}
std::uint64_t ack_id(std::uint64_t k, std::uint32_t f, std::uint32_t cum) {
  return (k << 31) | (static_cast<std::uint64_t>(cum) << 16) |
         (static_cast<std::uint64_t>(f) << 1) | kKindAck;
}
std::uint64_t transfer_of(std::uint64_t id) { return id >> 31; }
bool is_ack(std::uint64_t id) { return (id & kKindAck) != 0; }
std::uint32_t frame_of(std::uint64_t id) {
  return static_cast<std::uint32_t>((id >> 1) & kFieldMask);
}
std::uint32_t cum_of(std::uint64_t id) {
  return static_cast<std::uint32_t>((id >> 16) & kFieldMask);
}

// Timer ids carry (transfer, frame, attempt): a stale attempt's timer — or
// any timer of a finished transfer — is inert.
std::uint64_t timer_id(std::uint64_t k, std::uint32_t f,
                       std::uint32_t attempt) {
  return (k << 31) | (static_cast<std::uint64_t>(f) << 16) | attempt;
}

}  // namespace

WindowTransport::WindowTransport(const graph::Graph& g, std::uint64_t seed,
                                 LinkModel defaults, WindowOptions options)
    : sim_(g, seed, defaults), options_(options), estimator_(options.rto) {
  if (options_.window == 0)
    throw std::invalid_argument("WindowTransport: window >= 1");
  if (options_.frames_per_message == 0 ||
      options_.frames_per_message > kFieldMask)
    throw std::invalid_argument(
        "WindowTransport: frames_per_message in [1, 2^15)");
  if (options_.max_retries >= 0xffff)
    throw std::invalid_argument("WindowTransport: max_retries too large");
}

RtoEstimator& WindowTransport::working_estimator(std::uint64_t link) {
  if (!options_.rto.adaptive || !options_.per_link_rto) return estimator_;
  if (link_estimators_.empty())
    link_estimators_.assign(sim_.num_links(), RtoEstimator(options_.rto));
  return link_estimators_[link];
}

const RtoEstimator& WindowTransport::link_estimator(graph::NodeId u,
                                                    graph::Port p) const {
  const std::uint64_t link = sim_.link_index(u, p);
  if (link_estimators_.empty()) return estimator_;  // never engaged
  return link_estimators_[link];
}

std::uint64_t WindowTransport::total_rtt_samples() const {
  std::uint64_t total = estimator_.samples();
  for (const RtoEstimator& e : link_estimators_) total += e.samples();
  return total;
}

WindowOutcome WindowTransport::send(graph::NodeId from,
                                    graph::Port out_port) {
  const std::uint64_t k = transfers_++;
  const std::uint32_t F = options_.frames_per_message;
  WindowOutcome out;
  const SimTime start = sim_.now();
  // One send crosses one directed link; the working estimator is the
  // transport-wide one, or this link's own under per_link_rto.
  RtoEstimator& est = working_estimator(sim_.link_index(from, out_port));

  // Sender state, indexed by frame.
  std::vector<char> acked(F, 0);
  std::vector<char> retransmitted(F, 0);
  std::vector<std::uint32_t> attempt(F, 0);
  std::vector<std::uint32_t> retries(F, 0);
  std::vector<SimTime> sent_at(F, 0);
  // Fixed mode backs each frame's timeout off locally (the PR 6
  // discipline, per frame); adaptive mode arms the shared estimator.
  std::vector<SimTime> fixed_rto(options_.rto.adaptive ? 0 : F,
                                 options_.rto.initial);
  std::uint32_t base = 0;      // lowest unacked frame (window left edge)
  std::uint32_t next_new = 0;  // next never-launched frame
  std::uint32_t inflight = 0;
  // The highest CUMULATIVE ack seen.  `delivered` requires watermark == F,
  // never just all-frames-selectively-acked: a selectively-acked frame may
  // be reneged by a receiver crash (the volatile buffer wipe below), but a
  // cumulative ack certifies the DURABLE in-order prefix.  Crash-free the
  // two conditions coincide (receiver state is monotone).
  std::uint32_t watermark_seen = 0;
  // Receiver state: the out-of-order buffer bitmap + cumulative counter.
  // The bitmap above `cum` is VOLATILE — wiped when the receiving node's
  // crash epoch moves; [0, cum) is the durable delivered prefix.
  std::vector<char> received(F, 0);
  std::uint32_t cum = 0;  // frames [0, cum) delivered in order
  const graph::NodeId rx = sim_.graph().rotate(from, out_port).node;
  std::uint64_t rx_epoch = sim_.crash_epochs(rx);

  const auto launch = [&](std::uint32_t f) {
    sent_at[f] = sim_.now();
    sim_.send(from, out_port, data_id(k, f));
    ++out.data_copies;
    const SimTime rto = options_.rto.adaptive ? est.rto() : fixed_rto[f];
    sim_.set_timer(rto, timer_id(k, f, attempt[f]));
  };
  const auto fill = [&] {
    while (next_new < F && inflight < options_.window) {
      launch(next_new);
      ++inflight;
      ++next_new;
    }
  };
  const auto retire = [&](std::uint32_t f, bool clean_sample) {
    if (acked[f]) return;
    acked[f] = 1;
    --inflight;
    sim_.cancel_timer(timer_id(k, f, attempt[f]));  // lazy heap cleanup
    // Karn's rule: only a frame that was never retransmitted yields an
    // unambiguous RTT (its ack cannot be confirming an earlier copy).
    if (clean_sample && !retransmitted[f] && options_.rto.adaptive) {
      est.sample(sim_.now() - sent_at[f]);
      ++out.rtt_samples;
    }
  };

  fill();
  while (auto ev = sim_.next()) {
    if (ev->kind == SimEventKind::kTimer) {
      if (transfer_of(ev->timer_id) != k) continue;  // stale transfer
      const std::uint32_t f =
          static_cast<std::uint32_t>((ev->timer_id >> 16) & kFieldMask);
      const std::uint32_t att =
          static_cast<std::uint32_t>(ev->timer_id & 0xffff);
      if (acked[f] || att != attempt[f]) continue;  // stale attempt
      if (retries[f] >= options_.max_retries) {
        // This frame's budget is spent: the transfer dies.  Cancel the
        // other in-flight frames' timers on the way out.
        for (std::uint32_t j = 0; j < next_new; ++j)
          if (!acked[j] && j != f)
            sim_.cancel_timer(timer_id(k, j, attempt[j]));
        break;
      }
      ++retries[f];
      ++attempt[f];
      ++out.retransmits;
      ++total_retransmits_;
      retransmitted[f] = 1;
      // Backoff discipline: only the window's OLDEST unacked frame doubles
      // the shared estimator (TCP's single-timer semantics).  A burst that
      // loses k frames must cost one doubling per RTO period, not 2^k —
      // per-frame doubling would explode the timeout and erase the
      // pipeline's advantage.  Fixed mode keeps the per-frame PR 6
      // schedule.
      if (options_.rto.adaptive) {
        if (f == base) {
          est.backoff();
          ++out.backoffs;
          ++total_backoffs_;
        }
      } else {
        fixed_rto[f] = std::min(fixed_rto[f] * 2, options_.rto.max);
        ++out.backoffs;
        ++total_backoffs_;
      }
      launch(f);
      continue;
    }
    if (ev->corrupted) {
      // CRC failure: dropped unprocessed, recovered by retransmission.
      ++out.corrupt_drops;
      continue;
    }
    if (transfer_of(ev->frame_id) != k) continue;  // stale transfer's frame
    const std::uint32_t f = frame_of(ev->frame_id);
    if (!is_ack(ev->frame_id)) {
      // Receiver: amnesia check first — a crash/recovery since the last
      // arrival wiped the volatile out-of-order buffer (the durable
      // prefix [0, cum) survives, so nothing is ever delivered twice).
      if (sim_.crash_epochs(ev->node) != rx_epoch) {
        rx_epoch = sim_.crash_epochs(ev->node);
        ++out.receiver_resets;
        for (std::uint32_t j = cum; j < F; ++j) received[j] = 0;
      }
      // Buffer the frame (exactly once — dups and late copies hit the
      // bitmap), slide the cumulative counter, ack EVERY copy.
      if (!out.message_arrived) out.arrival = Arrival{ev->node, ev->port};
      if (!received[f]) {
        received[f] = 1;
        while (cum < F && received[cum]) ++cum;
      }
      if (cum == F) out.message_arrived = true;
      sim_.send(ev->node, ev->port, ack_id(k, f, cum));
      ++out.ack_copies;
      continue;
    }
    // Sender: one ack retires its frame selectively and everything below
    // its cumulative watermark.
    retire(f, /*clean_sample=*/true);
    const std::uint32_t watermark = std::min(cum_of(ev->frame_id), F);
    watermark_seen = std::max(watermark_seen, watermark);
    for (std::uint32_t j = base; j < watermark; ++j)
      retire(j, /*clean_sample=*/false);
    while (base < F && acked[base]) ++base;
    if (base == F) {
      if (watermark_seen >= F) {
        out.delivered = true;
        break;
      }
      // Everything selectively acked but the cumulative watermark never
      // covered the message: the receiver reneged (crash wipe).  Nothing
      // left to send — keep draining in case a full-cover ack is still in
      // flight, else the transfer ends undelivered.
      continue;
    }
    fill();
  }
  out.srtt = est.srtt();
  out.elapsed = sim_.now() - start;
  return out;
}

}  // namespace uesr::net
