#include "net/faults.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace uesr::net {

namespace {

void check_window(SimTime at, SimTime until, const char* who) {
  if (until <= at)
    throw std::invalid_argument(std::string("FaultPlan::") + who +
                                ": until must be > at");
}

void check_prob(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("ChaosConfig: ") + what +
                                " must be in [0, 1]");
}

void check_span(SimTime lo, SimTime hi, const char* what) {
  if (lo == 0 || hi < lo)
    throw std::invalid_argument(std::string("ChaosConfig: need 0 < ") + what +
                                "_min <= " + what + "_max");
}

void validate(const ChaosConfig& cfg) {
  if (cfg.horizon == 0)
    throw std::invalid_argument("ChaosConfig: horizon must be > 0");
  if (cfg.slot == 0)
    throw std::invalid_argument("ChaosConfig: slot must be > 0");
  check_prob(cfg.crash_rate, "crash_rate");
  check_prob(cfg.corrupt_burst_rate, "corrupt_burst_rate");
  check_prob(cfg.corrupt_level, "corrupt_level");
  check_prob(cfg.brownout_rate, "brownout_rate");
  check_span(cfg.crash_min, cfg.crash_max, "crash");
  check_span(cfg.burst_min, cfg.burst_max, "burst");
  check_span(cfg.brownout_min, cfg.brownout_max, "brownout");
}

/// One entity's window schedule: scan slot boundaries over [0, horizon),
/// open a window with probability `rate`, skip past its close before
/// rolling again (windows never overlap per entity).  `open`/`close`
/// append the matched action pair.  Window lengths are inclusive-uniform
/// in [lo, hi].
template <typename Open, typename Close>
void scan_windows(util::Pcg32& rng, const ChaosConfig& cfg, double rate,
                  SimTime lo, SimTime hi, Open&& open, Close&& close) {
  if (rate <= 0.0) return;  // keep zero-rate streams entirely unconsumed
  for (SimTime t = 0; t < cfg.horizon;) {
    if (rng.next_double() < rate) {
      const SimTime len = lo + rng.next_below(static_cast<std::uint32_t>(
                                   hi - lo + 1));
      const SimTime until = std::min<SimTime>(t + len, cfg.horizon);
      open(t);
      close(until);
      t = until + cfg.slot;
    } else {
      t += cfg.slot;
    }
  }
}

}  // namespace

void FaultPlan::add(SimTime at, const FaultAction& action) {
  Entry e;
  e.at = at;
  e.action = action;
  // Keep the list stably time-sorted so arm order (and therefore the
  // simulator's tie-break seq order) is a pure function of plan content.
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), at,
      [](SimTime t, const Entry& x) { return t < x.at; });
  entries_.insert(pos, e);
}

FaultPlan& FaultPlan::crash(graph::NodeId v, SimTime at, SimTime until) {
  check_window(at, until, "crash");
  FaultAction down;
  down.kind = FaultAction::Kind::kCrash;
  down.node = v;
  FaultAction up;
  up.kind = FaultAction::Kind::kRecover;
  up.node = v;
  add(at, down);
  add(until, up);
  return *this;
}

FaultPlan& FaultPlan::brownout(graph::NodeId u, graph::Port p, SimTime at,
                               SimTime until) {
  check_window(at, until, "brownout");
  FaultAction down;
  down.kind = FaultAction::Kind::kLinkDown;
  down.node = u;
  down.port = p;
  FaultAction up;
  up.kind = FaultAction::Kind::kLinkUp;
  up.node = u;
  up.port = p;
  add(at, down);
  add(until, up);
  return *this;
}

FaultPlan& FaultPlan::corruption_burst(SimTime at, SimTime until,
                                       double level) {
  check_window(at, until, "corruption_burst");
  check_prob(level, "corrupt_level");
  FaultAction on;
  on.kind = FaultAction::Kind::kGlobalCorrupt;
  on.corrupt = level;
  FaultAction off;
  off.kind = FaultAction::Kind::kGlobalCorrupt;
  off.corrupt = 0.0;
  add(at, on);
  add(until, off);
  return *this;
}

FaultPlan FaultPlan::sample(const graph::Graph& g, const ChaosConfig& cfg,
                            std::uint64_t seed) {
  validate(cfg);
  FaultPlan plan;
  // Per-node crash windows: node v's schedule is a pure function of
  // (seed, v), so adding chaos to one node never reshuffles another's.
  const std::uint64_t crash_seed = util::counter_hash(seed, 1);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    util::Pcg32 rng(util::counter_hash(crash_seed, v));
    scan_windows(rng, cfg, cfg.crash_rate, cfg.crash_min, cfg.crash_max,
                 [&](SimTime at) {
                   FaultAction a;
                   a.kind = FaultAction::Kind::kCrash;
                   a.node = v;
                   plan.add(at, a);
                 },
                 [&](SimTime at) {
                   FaultAction a;
                   a.kind = FaultAction::Kind::kRecover;
                   a.node = v;
                   plan.add(at, a);
                 });
  }
  // One global corruption-burst schedule.
  {
    util::Pcg32 rng(util::counter_hash(seed, 2));
    scan_windows(rng, cfg, cfg.corrupt_burst_rate, cfg.burst_min,
                 cfg.burst_max,
                 [&](SimTime at) {
                   FaultAction a;
                   a.kind = FaultAction::Kind::kGlobalCorrupt;
                   a.corrupt = cfg.corrupt_level;
                   plan.add(at, a);
                 },
                 [&](SimTime at) {
                   FaultAction a;
                   a.kind = FaultAction::Kind::kGlobalCorrupt;
                   a.corrupt = 0.0;
                   plan.add(at, a);
                 });
  }
  // Per-directed-link brownouts, keyed by the (u, p) half-edge so the
  // stream survives any re-indexing of links.
  const std::uint64_t brown_seed = util::counter_hash(seed, 3);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::Port p = 0; p < g.degree(u); ++p) {
      util::Pcg32 rng(
          util::counter_hash(brown_seed, util::counter_hash(u, p)));
      scan_windows(rng, cfg, cfg.brownout_rate, cfg.brownout_min,
                   cfg.brownout_max,
                   [&](SimTime at) {
                     FaultAction a;
                     a.kind = FaultAction::Kind::kLinkDown;
                     a.node = u;
                     a.port = p;
                     plan.add(at, a);
                   },
                   [&](SimTime at) {
                     FaultAction a;
                     a.kind = FaultAction::Kind::kLinkUp;
                     a.node = u;
                     a.port = p;
                     plan.add(at, a);
                   });
    }
  }
  return plan;
}

void FaultPlan::arm(EventSim& sim) const {
  const SimTime now = sim.now();
  for (const Entry& e : entries_)
    sim.schedule_fault(e.at > now ? e.at - now : 0, e.action);
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  for (const Entry& e : other.entries_) add(e.at, e.action);
  return *this;
}

}  // namespace uesr::net
