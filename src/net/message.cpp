#include "net/message.h"

#include <stdexcept>

#include "util/bitpack.h"

namespace uesr::net {

int header_bits(Kind kind, std::uint64_t namespace_size,
                std::uint64_t sequence_length) {
  if (namespace_size == 0)
    throw std::invalid_argument("header_bits: empty namespace");
  int name = util::bits_for_count(namespace_size);
  int index = util::bits_for_value(sequence_length);
  int base = 2 /*kind*/ + name /*source*/ + 1 /*dir*/ + 1 /*status*/ + index;
  switch (kind) {
    case Kind::kRoute:
      return base + name;  // target
    case Kind::kBroadcast:
      return base;
    case Kind::kRetrieve:
      return base + index /*probe_steps*/ + name /*payload*/;
    case Kind::kRetrieveNeighbor:
      // + probe_port + phase + parked return_port (2 bits each at degree 3).
      return base + index + 2 + 2 + 2 + name;
  }
  throw std::logic_error("header_bits: bad kind");
}

int node_working_bits(std::uint64_t namespace_size,
                      std::uint64_t sequence_length) {
  // Header + arrival port (2 bits at degree 3) + one port temporary +
  // the counter the symbol oracle needs (index-width).
  return header_bits(Kind::kRetrieveNeighbor, namespace_size,
                     sequence_length) +
         2 + 2 + util::bits_for_value(sequence_length);
}

}  // namespace uesr::net
