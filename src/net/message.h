// The message header of Algorithm Route (paper §3) and its bit accounting.
//
// The paper specifies the header as (s, t, dir, status, i): source name,
// target name, one direction bit, one status bit, and the index into the
// universal exploration sequence.  Everything else a node needs (the arrival
// port, its own name, its degree) is local knowledge; nodes store NOTHING
// between messages.
//
// `header_bits` computes the exact overhead for a namespace of size n and a
// sequence of length L: 2*ceil(log2 n) + 2 + ceil(log2 (L+1)) bits.  Since
// L = poly(n), this is O(log n) — the Theorem 1 overhead bound, which bench
// E4 verifies numerically.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace uesr::net {

enum class Direction : std::uint8_t { kForward, kBackward };
enum class Status : std::uint8_t { kInProgress, kSuccess, kFailure };

/// What kind of protocol interaction the message performs.  The paper's
/// Route uses kRoute; §4's probes use kRetrieve/kRetrieveNeighbor; broadcast
/// carries no target.
enum class Kind : std::uint8_t {
  kRoute,
  kBroadcast,
  kRetrieve,
  kRetrieveNeighbor,
};

/// Sentinel for "no target" (broadcast).
inline constexpr graph::NodeId kNoTarget = ~graph::NodeId{0};

/// Sub-state of a RetrieveNeighbor probe's one-hop "peek" detour.
enum class ProbePhase : std::uint8_t {
  kNone,   ///< ordinary walking
  kPeek,   ///< travelling out of v_i through probe_port, asking for a name
  kReply,  ///< carrying the neighbour's name back to v_i
};

struct Header {
  Kind kind = Kind::kRoute;
  graph::NodeId source = 0;      ///< original name of s
  graph::NodeId target = kNoTarget;  ///< original name of t (route only)
  Direction dir = Direction::kForward;
  Status status = Status::kInProgress;
  std::uint64_t index = 0;       ///< symbols consumed so far (j)

  // --- probe extensions (§4).  A Retrieve(s,T,i) probe walks forward
  // `probe_steps` steps, snapshots the name it finds, and returns; a
  // RetrieveNeighbor(s,T,i,j) probe additionally peeks through port
  // `probe_port`.  Everything fits in O(log n) bits.
  std::uint64_t probe_steps = 0;     ///< i: how far to walk before sampling
  graph::Port probe_port = 0;        ///< j: which neighbour to sample
  ProbePhase phase = ProbePhase::kNone;
  graph::Port return_port = 0;   ///< arrival port of d_i, parked during peek
  graph::NodeId payload_name = kNoTarget;  ///< the sampled name (reply)
};

/// Exact header size in bits for namespace size n and sequence length L.
/// kind (2) + source + target + dir (1) + status (1) + index; probe fields
/// reuse the index/target widths and are counted for probe kinds.
int header_bits(Kind kind, std::uint64_t namespace_size,
                std::uint64_t sequence_length);

/// Working space a node needs while handling one message: the header, the
/// arrival port, one port-width temporary, and the O(log n) scratch of the
/// T_n[i] oracle evaluation.  Returned in bits.
int node_working_bits(std::uint64_t namespace_size,
                      std::uint64_t sequence_length);

}  // namespace uesr::net
