// Deterministic event-driven simulator of an asynchronous lossy network.
//
// Everything above this layer (Transport, DynamicTransport, TrafficEngine)
// runs on a synchronous slotted clock over perfect links; the paper's
// setting is the opposite — frames are late, lost, duplicated, and links
// die one direction at a time.  EventSim supplies that regime while keeping
// the repo's deterministic-replay contract (ROADMAP): the whole schedule is
// a PURE FUNCTION of (seed, API-call sequence).
//
//   * The event queue is a binary heap keyed (time, seq), where seq is the
//     push-order counter — ties never depend on heap internals or pointer
//     values, so two process runs pop identical sequences.
//   * Every channel draw for transmission #k over directed link l comes
//     from Pcg32(counter_hash(counter_hash(seed, l), k)) — per-(link,
//     event) streams, never a shared one (the PR 3 RNG convention), so a
//     replay that re-issues the same sends re-draws the same losses,
//     latencies and duplicates.
//
// Channel model, per DIRECTED link (departure half-edge (u, out_port); the
// reverse direction (v, in_port) is an independent link):
//   * latency uniform in [latency_min, latency_max] time units;
//   * loss: each frame independently dropped with probability `loss`;
//   * duplication: a surviving frame spawns a second, independently-delayed
//     copy with probability `dup` (the copy is flagged `duplicate`);
//   * corruption: each DELIVERED copy independently arrives damaged with
//     probability `corrupt` — one random bit of its frame id is flipped and
//     the event is flagged `corrupted` (the frame check sequence failing);
//     the corruption draws come strictly AFTER the loss / latency / dup
//     draws of the send, so at corrupt = 0 the per-(link, event) stream is
//     consumed exactly as before this knob existed (the PR 6/7 replay
//     traces hold byte for byte — property P11);
//   * up/down: set_link_up(u, p, false) kills the u->v direction ONLY
//     (hnetd's one-sided net_sim_set_connected flip).  Frames sent into a
//     down link are lost at departure; frames already in flight when the
//     link goes down die mid-flight (dropped at their delivery instant).
//
// Node crash/recovery (the fault-injection layer, DESIGN.md §2.12): a
// crashed node neither transmits (sends drop at departure, before any
// channel draw) nor receives (arrivals drop at their delivery instant);
// timers keep firing — they model the DRIVING protocol loop, not the
// node's volatile state.  Each recovery bumps the node's crash epoch
// (crash_epochs), the generation stamp the ARQ layers use to wipe volatile
// receiver state (amnesia).  Faults can be flipped directly
// (set_node_crashed) or scheduled into the event queue at exact virtual
// times (schedule_fault — the FaultPlan backend, net/faults.h), so a crash
// window can open and close in the middle of one reliable transfer.
//
// EventSim moves frames and timers; it owns no protocol logic.  The
// unreliable Transport facade is net/lossy_transport.h, the stop-and-wait
// ack/retransmit layer is net/reliable.h, and the certificate semantics of
// routing over all of this is DESIGN.md §2.10.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "net/transport.h"

namespace uesr::net {

/// Virtual time: abstract units; only ordering and sums matter.
using SimTime = std::uint64_t;

/// Channel model of one directed link (and the construction-time default).
struct LinkModel {
  SimTime latency_min = 1;  ///< inclusive lower latency bound (>= 0)
  SimTime latency_max = 1;  ///< inclusive upper bound (>= latency_min)
  double loss = 0.0;        ///< P(frame dropped), in [0, 1]
  double dup = 0.0;         ///< P(second copy delivered), in [0, 1]
  double corrupt = 0.0;     ///< P(delivered copy arrives damaged), in [0, 1]
};

enum class SimEventKind : std::uint8_t { kArrival, kTimer, kFault };

/// One state flip applied at an exact virtual time (see schedule_fault).
struct FaultAction {
  enum class Kind : std::uint8_t {
    kCrash,          ///< node goes down (drops sends and arrivals)
    kRecover,        ///< node comes back; bumps its crash epoch (amnesia)
    kLinkDown,       ///< one-sided link kill, as set_link_up(u, p, false)
    kLinkUp,         ///< one-sided link heal
    kGlobalCorrupt,  ///< set `corrupt` of the default AND every override
  };
  Kind kind = Kind::kCrash;
  graph::NodeId node = 0;  ///< kCrash / kRecover target
  graph::Port port = 0;    ///< kLinkDown / kLinkUp: half-edge (node, port)
  double corrupt = 0.0;    ///< kGlobalCorrupt level, in [0, 1]

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// One popped event.  For kArrival, (node, port) is where the frame lands
/// and (from, from_port) the departure half-edge it was sent on; frame_id
/// is the sender's tag, `duplicate` marks a channel-made extra copy and
/// `corrupted` a damaged one (the CRC verdict the ARQ layers honour).
struct SimEvent {
  SimEventKind kind = SimEventKind::kArrival;
  SimTime time = 0;
  std::uint64_t seq = 0;  ///< push-order id (the heap tiebreak)
  graph::NodeId node = 0;
  graph::Port port = 0;
  graph::NodeId from = 0;
  graph::Port from_port = 0;
  std::uint64_t frame_id = 0;
  bool duplicate = false;
  bool corrupted = false;
  std::uint64_t timer_id = 0;
};

class EventSim {
 public:
  /// The graph must outlive the simulator.  `defaults` applies to every
  /// directed link until overridden; throws on an invalid model.
  EventSim(const graph::Graph& g, std::uint64_t seed, LinkModel defaults = {});

  const graph::Graph& graph() const { return *graph_; }
  std::uint64_t seed() const { return seed_; }
  /// Virtual clock: the time of the last popped event.
  SimTime now() const { return now_; }

  /// Overrides the channel model of the directed link departing (u, p).
  void set_link_model(graph::NodeId u, graph::Port p, const LinkModel& m);
  const LinkModel& link_model(graph::NodeId u, graph::Port p) const;

  /// One-sided connectivity flip: disables/enables ONLY the direction
  /// departing (u, p).  In-flight frames of a downed direction die
  /// mid-flight.
  void set_link_up(graph::NodeId u, graph::Port p, bool up);
  bool link_up(graph::NodeId u, graph::Port p) const;

  /// Crash / recover a node immediately.  Crashed nodes drop sends at
  /// departure (before any channel draw — replay-safe) and arrivals at
  /// their delivery instant; each up-transition bumps the crash epoch.
  void set_node_crashed(graph::NodeId v, bool crashed);
  bool node_crashed(graph::NodeId v) const;
  /// Recoveries seen so far at v — the amnesia generation: volatile ARQ
  /// state stamped with an older epoch is gone (net/reliable.h, window.h).
  std::uint64_t crash_epochs(graph::NodeId v) const;

  /// Schedules `action` to apply at now() + delay, interleaved with
  /// arrivals/timers in exact (time, push-order) order; next() applies it
  /// silently (never returns it).  The FaultPlan backend (net/faults.h).
  void schedule_fault(SimTime delay, const FaultAction& action);

  /// Dense index of the directed link departing (u, p) in
  /// [0, num_links()) — the key transports use for per-link RTO state.
  std::uint64_t link_index(graph::NodeId u, graph::Port p) const;
  std::uint64_t num_links() const { return offsets_.back(); }

  /// Puts one frame on the directed link (from, out_port) at now().
  /// Counts one transmission unconditionally — lost frames were really
  /// sent.  The channel then draws loss / latency / duplication from the
  /// (seed, link, event)-keyed stream.
  void send(graph::NodeId from, graph::Port out_port, std::uint64_t frame_id);

  /// Schedules a timer event at now() + delay carrying `timer_id`.
  void set_timer(SimTime delay, std::uint64_t timer_id);

  /// Lazy-cancels the queued timer carrying `timer_id`: the entry stays in
  /// the heap until popped (and is then consumed silently) or until the
  /// periodic compaction sweeps it out — so pending() stays bounded by
  /// ~2x the live events over any run length, however many stale ARQ
  /// timers a chaos run abandons.  At most one queued timer may carry the
  /// id; cancelling an id that is not queued poisons its next use.
  void cancel_timer(std::uint64_t timer_id);

  /// Pops the next deliverable event in (time, seq) order, advancing
  /// now().  Frames whose link direction is down at their delivery instant
  /// die silently (counted in frames_died_midflight), arrivals at crashed
  /// nodes drop (frames_crash_dropped), cancelled timers are consumed and
  /// scheduled faults applied — the scan continues past all of them.
  /// Returns nullopt when the queue is empty.
  std::optional<SimEvent> next();

  /// Events (arrivals + timers + faults) still queued, cancelled-but-not-
  /// yet-compacted timers included.
  std::size_t pending() const { return queue_.size(); }

  // --- wire accounting ----------------------------------------------------
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t frames_lost() const { return frames_lost_; }
  std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  std::uint64_t frames_died_midflight() const { return frames_died_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  /// Frames dropped by a crashed endpoint (at departure or delivery).
  std::uint64_t frames_crash_dropped() const { return frames_crashed_; }
  /// Arrival events actually handed to the caller by next().
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t timers_cancelled() const { return timers_cancelled_; }

  // --- deterministic replay trace -----------------------------------------
  /// Records one line per channel decision (send outcome) and per popped
  /// event, up to `limit` lines.  Lines are pure functions of the seed and
  /// the call sequence — the replay regression tests compare them byte for
  /// byte across runs.  Off by default (limit 0).
  void enable_trace(std::size_t limit) { trace_limit_ = limit; }
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  struct Queued {
    SimTime time = 0;
    std::uint64_t seq = 0;
    SimEvent event;
  };
  struct QueuedLater {
    bool operator()(const Queued& a, const Queued& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::uint64_t link_id(graph::NodeId u, graph::Port p) const {
    return offsets_[u] + p;
  }
  void check_half_edge(graph::NodeId u, graph::Port p, const char* who) const;
  void check_node(graph::NodeId v, const char* who) const;
  void push(SimTime at, SimEvent ev);
  void apply_fault(const FaultAction& f);
  void record(std::string line);

  const graph::Graph* graph_;
  std::uint64_t seed_;
  LinkModel default_model_;
  std::vector<std::size_t> offsets_;  ///< per-node half-edge offsets (n + 1)
  /// Sparse per-link overrides / down flags, indexed by link id.
  std::vector<std::optional<LinkModel>> models_;
  std::vector<bool> down_;
  std::vector<bool> crashed_;                ///< per-node crash flags
  std::vector<std::uint64_t> crash_epochs_;  ///< per-node recovery counts

  /// Binary heap in (time, seq) order (std::push_heap/pop_heap) — a plain
  /// vector so lazy-cancel compaction can filter it in place.
  std::vector<Queued> queue_;
  std::unordered_set<std::uint64_t> cancelled_;  ///< lazily-cancelled ids
  std::vector<FaultAction> fault_actions_;  ///< payloads of queued kFault
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;   ///< push-order event ids
  std::uint64_t next_send_ = 0;  ///< per-send channel-draw counter

  std::uint64_t transmissions_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t frames_died_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_crashed_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t timers_cancelled_ = 0;

  std::size_t trace_limit_ = 0;
  std::vector<std::string> trace_;
};

/// One-line rendering of an event ("t=12 seq=3 arr node=4 port=1 ...") —
/// the unit the replay regression tests serialize and diff.
std::string to_string(const SimEvent& ev);
/// One-line rendering of a fault action ("crash v=3", "linkdown 2.1", ...).
std::string to_string(const FaultAction& f);

}  // namespace uesr::net
