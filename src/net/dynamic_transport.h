// Port-accurate message transport over an epoch-stamped dynamic topology.
//
// The static Transport promises exactly what a physical node knows; the
// dynamic variant adds the one extra fact a changing network forces on the
// sender: a transmission happens against the topology of *some* epoch, and
// a port that existed when the header was written may be gone by the next
// send.  DynamicTransport therefore serves every send from the graph's
// current committed snapshot, exposes that snapshot's epoch() for drivers
// to compare (core::DynamicRouteSession restarts when it moves), and keeps
// the static contract otherwise: one send, one transmission, no per-node
// state anywhere.
//
// Sends out of a port the current snapshot does not have throw, exactly as
// Transport does for a bad port — a correct dynamic driver re-reads the
// epoch before trusting any port number it computed earlier.
#pragma once

#include <cstdint>

#include "graph/dynamic.h"
#include "net/transport.h"

namespace uesr::net {

class DynamicTransport {
 public:
  /// The dynamic graph must outlive the transport.
  explicit DynamicTransport(const graph::DynamicGraph& g) : graph_(&g) {}

  /// Transmit across the edge at (from, out_port) of the *current* epoch's
  /// snapshot; returns where the message lands.  Counts one transmission.
  Arrival send(graph::NodeId from, graph::Port out_port);

  /// Epoch stamp of the topology the next send will use.
  std::uint64_t epoch() const { return graph_->epoch(); }

  /// The current committed snapshot (valid until the topology commits a
  /// new epoch).
  const graph::Graph& snapshot() const { return graph_->snapshot(); }

  const graph::DynamicGraph& dynamic_graph() const { return *graph_; }

  std::uint64_t transmissions() const { return transmissions_; }
  void reset_transmissions() { transmissions_ = 0; }

 private:
  const graph::DynamicGraph* graph_;
  std::uint64_t transmissions_ = 0;
};

}  // namespace uesr::net
