#include "baselines/geo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace uesr::baselines {

using graph::NodeId;
using graph::Point2;
using graph::Point3;
using graph::Port;

namespace {

template <typename Net, typename Dist>
GeoAttempt greedy_generic(const Net& net, NodeId s, NodeId t,
                          std::uint64_t hop_limit, Dist dist_to_t) {
  const auto& g = net.graph;
  if (s >= g.num_nodes() || t >= g.num_nodes())
    throw std::invalid_argument("greedy: node out of range");
  if (hop_limit == 0) hop_limit = 4ULL * g.num_nodes() + 16;
  GeoAttempt a;
  NodeId cur = s;
  while (cur != t && a.transmissions < hop_limit) {
    double best = dist_to_t(cur);
    NodeId next = cur;
    for (Port p = 0; p < g.degree(cur); ++p) {
      NodeId w = g.neighbor(cur, p);
      double d = dist_to_t(w);
      if (d < best) {
        best = d;
        next = w;
      }
    }
    if (next == cur) {
      a.stuck = true;  // local minimum
      return a;
    }
    cur = next;
    ++a.transmissions;
  }
  a.delivered = cur == t;
  return a;
}

/// Angle of the vector u -> v.
double angle_of(const Point2& u, const Point2& v) {
  return std::atan2(v.y - u.y, v.x - u.x);
}

/// Neighbour of u whose edge is next counterclockwise strictly after
/// `base_angle`; among equal angles picks the lowest port.  Requires
/// deg(u) >= 1.
NodeId next_ccw(const graph::Positioned2& net, NodeId u, double base_angle) {
  const auto& g = net.graph;
  NodeId best = g.neighbor(u, 0);
  double best_delta = 10.0;  // > 2*pi
  constexpr double kTau = 6.283185307179586;
  for (Port p = 0; p < g.degree(u); ++p) {
    NodeId w = g.neighbor(u, p);
    if (w == u) continue;
    double a = angle_of(net.positions[u], net.positions[w]);
    double delta = a - base_angle;
    while (delta <= 1e-12) delta += kTau;
    while (delta > kTau) delta -= kTau;
    if (delta < best_delta) {
      best_delta = delta;
      best = w;
    }
  }
  return best;
}

int orient(const Point2& a, const Point2& b, const Point2& c) {
  double cr = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  constexpr double kEps = 1e-12;
  return cr > kEps ? 1 : (cr < -kEps ? -1 : 0);
}

/// Proper intersection of open segments ab and cd.
bool crosses(const Point2& a, const Point2& b, const Point2& c,
             const Point2& d) {
  int o1 = orient(a, b, c), o2 = orient(a, b, d);
  int o3 = orient(c, d, a), o4 = orient(c, d, b);
  return o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0;
}

}  // namespace

GeoAttempt greedy_route_2d(const graph::Positioned2& net, NodeId s, NodeId t,
                           std::uint64_t hop_limit) {
  return greedy_generic(net, s, t, hop_limit, [&](NodeId v) {
    return graph::distance(net.positions[v], net.positions[t]);
  });
}

GeoAttempt greedy_route_3d(const graph::Positioned3& net, NodeId s, NodeId t,
                           std::uint64_t hop_limit) {
  return greedy_generic(net, s, t, hop_limit, [&](NodeId v) {
    return graph::distance(net.positions[v], net.positions[t]);
  });
}

GeoAttempt gpsr_route(const graph::Positioned2& net, NodeId s, NodeId t,
                      std::uint64_t hop_limit) {
  const auto& g = net.graph;
  if (s >= g.num_nodes() || t >= g.num_nodes())
    throw std::invalid_argument("gpsr: node out of range");
  if (hop_limit == 0) hop_limit = 16ULL * g.num_nodes() + 64;
  const Point2 tp = net.positions[t];
  auto dist_t = [&](NodeId v) { return graph::distance(net.positions[v], tp); };

  GeoAttempt a;
  NodeId cur = s;
  bool perimeter = false;
  Point2 entry{};          // Lp: position where perimeter mode was entered
  double entry_dist = 0.0;
  NodeId prev = s;         // previous node in perimeter traversal
  NodeId first_u = 0, first_v = 0;  // first perimeter edge (loop detection)
  bool have_first = false;

  while (cur != t && a.transmissions < hop_limit) {
    if (!perimeter) {
      // Greedy forwarding.
      double best = dist_t(cur);
      NodeId next = cur;
      for (Port p = 0; p < g.degree(cur); ++p) {
        NodeId w = g.neighbor(cur, p);
        double d = dist_t(w);
        if (d < best) {
          best = d;
          next = w;
        }
      }
      if (next != cur) {
        cur = next;
        ++a.transmissions;
        continue;
      }
      if (g.degree(cur) == 0) {
        a.stuck = true;
        return a;
      }
      // Local minimum: enter perimeter mode on the face hit by ray cur->t.
      perimeter = true;
      entry = net.positions[cur];
      entry_dist = dist_t(cur);
      double base = std::atan2(tp.y - entry.y, tp.x - entry.x);
      NodeId next_p = next_ccw(net, cur, base);
      prev = cur;
      first_u = cur;
      first_v = next_p;
      have_first = true;
      cur = next_p;
      ++a.transmissions;
      continue;
    }
    // Perimeter mode.
    if (dist_t(cur) < entry_dist) {
      perimeter = false;  // recovered: strictly closer than the local min
      continue;
    }
    // Right-hand rule: next edge counterclockwise after the reverse edge.
    double back = angle_of(net.positions[cur], net.positions[prev]);
    NodeId next = next_ccw(net, cur, back);
    // Face change: skip edges that properly cross the (entry -> t) chord.
    int guard = 0;
    while (crosses(net.positions[cur], net.positions[next], entry, tp) &&
           guard++ < static_cast<int>(g.degree(cur))) {
      next = next_ccw(net, cur,
                      angle_of(net.positions[cur], net.positions[next]));
    }
    if (have_first && cur == first_u && next == first_v) {
      // Completed a full tour without progress: t unreachable from here
      // (or the heuristic failed); report as stuck, uncertified.
      a.stuck = true;
      return a;
    }
    prev = cur;
    cur = next;
    ++a.transmissions;
  }
  a.delivered = cur == t;
  return a;
}

Attempt GreedyRouter2D::route(NodeId s, NodeId t) {
  GeoAttempt g = greedy_route_2d(*net_, s, t);
  return Attempt{g.delivered, false, g.transmissions};
}

Attempt GpsrRouter::route(NodeId s, NodeId t) {
  GeoAttempt g = gpsr_route(*net_, s, t);
  return Attempt{g.delivered, false, g.transmissions};
}

}  // namespace uesr::baselines
