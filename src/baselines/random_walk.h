// The naive probabilistic baseline the paper discusses in §1.2: route the
// message by an unbiased random walk.  Works with high probability on a
// connected graph given ~n^3 steps, but (a) can be unboundedly unlucky,
// (b) cannot certify failure, and (c) never terminates when t is
// unreachable unless a TTL is imposed — exactly the three problems the
// universal exploration sequence fixes.
//
// RandomWalkSession implements core::TokenWalker so it can serve as the
// probabilistic half of the Corollary-2 hybrid.
#pragma once

#include <cstdint>
#include <string>

#include "baselines/common.h"
#include "core/hybrid.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace uesr::baselines {

class RandomWalkSession final : public core::TokenWalker {
 public:
  /// Walks from s until it reaches t or `ttl` transmissions elapse
  /// (ttl == 0 means unlimited — never exhausted by TTL).  A walk stranded
  /// on a degree-0 node exhausts immediately, whatever the TTL: there is no
  /// port to transmit on, so no transmission is charged and (like any other
  /// exhaustion) nothing about t is certified.
  RandomWalkSession(const graph::Graph& g, graph::NodeId s, graph::NodeId t,
                    std::uint64_t ttl, std::uint64_t seed);

  void step() override;
  bool delivered() const override { return delivered_; }
  bool exhausted() const override {
    return !delivered_ &&
           (stranded_ || (ttl_ != 0 && transmissions_ >= ttl_));
  }
  std::uint64_t transmissions() const override { return transmissions_; }

  graph::NodeId current() const { return current_; }

 private:
  const graph::Graph* g_;
  graph::NodeId target_;
  graph::NodeId current_;
  bool delivered_;
  bool stranded_ = false;  ///< parked on a degree-0 node: can never move
  std::uint64_t ttl_;
  std::uint64_t transmissions_ = 0;
  util::Pcg32 rng_;
};

class RandomWalkRouter final : public Router {
 public:
  RandomWalkRouter(const graph::Graph& g, std::uint64_t ttl,
                   std::uint64_t seed)
      : g_(&g), ttl_(ttl), seeder_(seed) {}

  Attempt route(graph::NodeId s, graph::NodeId t) override;
  std::string name() const override { return "random-walk"; }

 private:
  const graph::Graph* g_;
  std::uint64_t ttl_;
  util::SplitMix64 seeder_;
};

}  // namespace uesr::baselines
