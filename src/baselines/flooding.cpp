#include "baselines/flooding.h"

#include <deque>
#include <stdexcept>

namespace uesr::baselines {

FloodResult flood(const graph::Graph& g, graph::NodeId s, graph::NodeId t) {
  if (s >= g.num_nodes() || t >= g.num_nodes())
    throw std::invalid_argument("flood: node out of range");
  FloodResult res;
  std::vector<std::uint32_t> round(g.num_nodes(), ~0u);
  std::deque<graph::NodeId> frontier{s};
  round[s] = 0;
  while (!frontier.empty()) {
    graph::NodeId v = frontier.front();
    frontier.pop_front();
    ++res.nodes_reached;
    // v retransmits on every port exactly once (the per-node "seen" bit).
    res.transmissions += g.degree(v);
    for (graph::Port p = 0; p < g.degree(v); ++p) {
      graph::NodeId w = g.neighbor(v, p);
      if (round[w] == ~0u) {
        round[w] = round[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  res.delivered = round[t] != ~0u;
  res.rounds = res.delivered ? round[t] : 0;
  return res;
}

Attempt FloodingRouter::route(graph::NodeId s, graph::NodeId t) {
  FloodResult r = flood(*g_, s, t);
  Attempt a;
  a.delivered = r.delivered;
  a.failure_certified = true;  // the wave provably covered Cs
  a.transmissions = r.transmissions;
  return a;
}

}  // namespace uesr::baselines
