#include "baselines/chaos.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/algorithms.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace uesr::baselines {

using graph::NodeId;

ChaosCell chaos_experiment(const graph::Graph& g, int pairs,
                           const ChaosParams& params, std::uint64_t seed,
                           unsigned threads) {
  const NodeId n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("chaos_experiment: need >= 2 nodes");
  if (pairs < 0) throw std::invalid_argument("chaos_experiment: pairs >= 0");
  // The pair list is drawn serially up front (the E2/E13 convention).
  util::Pcg32 pair_rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pair_list(
      static_cast<std::size_t>(pairs));
  for (auto& [s, t] : pair_list) {
    s = pair_rng.next_below(n);
    do t = pair_rng.next_below(n);
    while (t == s);
  }
  // Shared immutable structure: one reduction, one T_n, one ground-truth
  // component map — read-only across lanes.  Faults never edit the graph
  // (they delay or kill frames), so the STATIC component map stays the
  // exact soundness reference for every verdict.
  const explore::ReducedGraph reduced = explore::reduce_to_cubic(g);
  const auto seq = explore::standard_ues(reduced.cubic.num_nodes());
  const std::vector<std::uint32_t> comp = graph::connected_components(g);

  core::LossyRouteOptions base;
  base.link.loss = params.loss;
  base.link.dup = params.dup;
  base.link.corrupt = params.corrupt;
  base.link.latency_min = params.latency_min;
  base.link.latency_max = params.latency_max;
  base.reliable = params.reliable;
  base.window = params.window;
  base.arq = params.arq;

  util::ThreadPool pool(threads);
  return util::parallel_reduce<ChaosCell>(
      pool, pair_list.size(),
      util::default_chunk(pair_list.size(), pool.size()), ChaosCell{},
      [&](const util::ChunkRange& c) {
        ChaosCell part;
        for (std::uint64_t i = c.begin; i < c.end; ++i) {
          const auto [s, t] = pair_list[i];
          ++part.pairs;
          const bool reachable = comp[s] == comp[t];
          // Trial i's channel and its FaultPlan are pure functions of
          // (seed, i) sub-streams — never shared (PR 3 convention).
          const std::uint64_t trial = util::counter_hash(seed, i);
          core::LossyRouteOptions opts = base;
          opts.net_seed = util::counter_hash(trial, 0);
          opts.faults = net::FaultPlan::sample(
              reduced.cubic, params.chaos, util::counter_hash(trial, 1));
          core::LossyRouteSession session(reduced, *seq, s, t, opts);
          switch (session.run()) {
            case core::LossyVerdict::kDelivered:
              ++part.delivered;
              // Sound delivery needs a reachable target the walk visited.
              part.unsound += !reachable || !session.target_reached();
              break;
            case core::LossyVerdict::kFailureCertified:
              ++part.certified;
              part.unsound += reachable;
              break;
            default:
              ++part.uncertified;
              break;
          }
          part.hops += session.hops();
          part.frames += session.wire_frames();
          part.corrupted += session.sim().frames_corrupted();
          part.crash_drops += session.sim().frames_crash_dropped();
          part.retransmits += session.arq_stats().retransmits;
        }
        return part;
      },
      [](ChaosCell acc, ChaosCell p) {
        acc.pairs += p.pairs;
        acc.delivered += p.delivered;
        acc.certified += p.certified;
        acc.uncertified += p.uncertified;
        acc.unsound += p.unsound;
        acc.hops += p.hops;
        acc.frames += p.frames;
        acc.corrupted += p.corrupted;
        acc.crash_drops += p.crash_drops;
        acc.retransmits += p.retransmits;
        return acc;
      });
}

}  // namespace uesr::baselines
