#include "baselines/lossy.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/lossy_route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/algorithms.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace uesr::baselines {

using graph::NodeId;
using graph::Port;

namespace {

/// Shared wave engine of the two lossy broadcast baselines: `transmit(v)`
/// decides whether a newly-infected node retransmits (drawn exactly once
/// per node, in ascending node order — the determinism anchor).
template <typename Transmits>
FloodResult lossy_wave(const graph::Graph& g, NodeId s, NodeId t, double loss,
                       util::Pcg32& rng, Transmits&& transmits) {
  FloodResult out;
  const NodeId n = g.num_nodes();
  if (s >= n || t >= n)
    throw std::invalid_argument("lossy_wave: node out of range");
  std::vector<bool> heard(n, false);
  heard[s] = true;
  out.nodes_reached = 1;
  out.delivered = s == t;
  std::vector<NodeId> frontier{s};
  std::uint32_t round = 0;
  std::uint32_t hit_round = 0;  // round t first heard it (flood convention)
  while (!frontier.empty()) {
    ++round;
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      if (!transmits(v)) continue;
      const Port deg = g.degree(v);
      for (Port p = 0; p < deg; ++p) {
        ++out.transmissions;  // the copy was really sent…
        if (loss > 0.0 && rng.next_double() < loss) continue;  // …and lost
        const NodeId w = g.neighbor(v, p);
        if (heard[w]) continue;
        heard[w] = true;
        ++out.nodes_reached;
        if (w == t && !out.delivered) {
          out.delivered = true;
          hit_round = round;
        }
        next.push_back(w);
      }
    }
    // Ascending order keeps the draw sequence a pure function of the seed
    // regardless of port-visit interleaving across the frontier.
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
  }
  out.rounds = out.delivered ? hit_round : 0;
  return out;
}

}  // namespace

FloodResult flood_lossy(const graph::Graph& g, NodeId s, NodeId t,
                        double loss, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  return lossy_wave(g, s, t, loss, rng, [](NodeId) { return true; });
}

FloodResult gossip_lossy(const graph::Graph& g, NodeId s, NodeId t,
                         double loss, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("gossip_lossy: p outside [0, 1]");
  util::Pcg32 rng(seed);
  // The source always transmits (otherwise p kills the wave at birth, which
  // is the degenerate case the gossip literature excludes).
  return lossy_wave(g, s, t, loss, rng, [&](NodeId v) {
    return v == s || p >= 1.0 || rng.next_double() < p;
  });
}

LossyCell lossy_experiment(const graph::Graph& g, int pairs,
                           const LossyParams& params, std::uint64_t seed,
                           unsigned threads) {
  const NodeId n = g.num_nodes();
  if (n < 2) throw std::invalid_argument("lossy_experiment: need >= 2 nodes");
  if (pairs < 0) throw std::invalid_argument("lossy_experiment: pairs >= 0");
  // The pair list is drawn serially up front, exactly as a serial driver
  // would (the E2 convention); s != t by rejection.
  util::Pcg32 pair_rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pair_list(
      static_cast<std::size_t>(pairs));
  for (auto& [s, t] : pair_list) {
    s = pair_rng.next_below(n);
    do t = pair_rng.next_below(n);
    while (t == s);
  }
  // Shared immutable structure: one reduction, one T_n, one ground-truth
  // component map — read-only across lanes.
  const explore::ReducedGraph reduced = explore::reduce_to_cubic(g);
  const auto seq = explore::standard_ues(reduced.cubic.num_nodes());
  const std::vector<std::uint32_t> comp = graph::connected_components(g);

  core::LossyRouteOptions ues_options;
  ues_options.link.loss = params.loss;
  ues_options.link.dup = params.dup;
  ues_options.link.latency_min = params.latency_min;
  ues_options.link.latency_max = params.latency_max;
  ues_options.reliable = params.reliable;

  util::ThreadPool pool(threads);
  return util::parallel_reduce<LossyCell>(
      pool, pair_list.size(),
      util::default_chunk(pair_list.size(), pool.size()), LossyCell{},
      [&](const util::ChunkRange& c) {
        LossyCell part;
        for (std::uint64_t i = c.begin; i < c.end; ++i) {
          const auto [s, t] = pair_list[i];
          ++part.pairs;
          const bool reachable = comp[s] == comp[t];
          // Trial i's streams are pure functions of (seed, i): the UES
          // channel, the flood draws and the gossip draws each get their
          // own sub-stream (never shared — PR 3 convention).
          const std::uint64_t trial = util::counter_hash(seed, i);
          core::LossyRouteOptions opts = ues_options;
          opts.net_seed = util::counter_hash(trial, 0);
          core::LossyRouteSession session(reduced, *seq, s, t, opts);
          switch (session.run()) {
            case core::LossyVerdict::kDelivered:
              ++part.ues_delivered;
              part.ues_errors += !reachable;
              break;
            case core::LossyVerdict::kFailureCertified:
              ++part.ues_certified;
              part.ues_errors += reachable;
              break;
            default:
              ++part.ues_uncertified;
              break;
          }
          part.ues_hops += session.hops();
          part.ues_frames += session.wire_frames();
          const FloodResult f =
              flood_lossy(g, s, t, params.loss, util::counter_hash(trial, 1));
          part.flood_delivered += f.delivered;
          part.flood_transmissions += f.transmissions;
          const FloodResult go =
              gossip_lossy(g, s, t, params.loss, params.gossip_p,
                           util::counter_hash(trial, 2));
          part.gossip_delivered += go.delivered;
          part.gossip_transmissions += go.transmissions;
        }
        return part;
      },
      [](LossyCell acc, LossyCell p) {
        acc.pairs += p.pairs;
        acc.ues_delivered += p.ues_delivered;
        acc.ues_certified += p.ues_certified;
        acc.ues_uncertified += p.ues_uncertified;
        acc.ues_errors += p.ues_errors;
        acc.ues_hops += p.ues_hops;
        acc.ues_frames += p.ues_frames;
        acc.flood_delivered += p.flood_delivered;
        acc.flood_transmissions += p.flood_transmissions;
        acc.gossip_delivered += p.gossip_delivered;
        acc.gossip_transmissions += p.gossip_transmissions;
        return acc;
      });
}

}  // namespace uesr::baselines
