// Common interface for routing baselines so benches can sweep routers
// uniformly.  Every attempt reports whether the message reached t and how
// many transmissions were spent; routers that can *certify* a failure
// (only the UES router and flooding can) say so.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace uesr::baselines {

struct Attempt {
  bool delivered = false;
  /// True when a non-delivery is a proof of disconnection rather than a
  /// give-up (TTL, local minimum, ...).
  bool failure_certified = false;
  std::uint64_t transmissions = 0;
};

class Router {
 public:
  virtual ~Router() = default;
  virtual Attempt route(graph::NodeId s, graph::NodeId t) = 0;
  virtual std::string name() const = 0;
};

}  // namespace uesr::baselines
