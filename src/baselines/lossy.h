// Loss-tolerant baselines + the E13 report kernel.
//
// Once links lose frames, the comparison set changes character: flooding's
// redundancy (every node retransmits on every port) is natural loss
// armour, and Haas–Halpern–Li GOSSIP routing (PAPERS.md) — retransmit with
// probability p — is the classic knob between flooding's cost and a single
// walker's fragility.  Neither certifies anything under loss (a wave that
// died may just have been unlucky), while UES Route over the stop-and-wait
// layer keeps SOUND certificates and pays for them with acks, retries, and
// a new "uncertified after budget" outcome (core/lossy_route.h).  E13
// measures exactly this trade.
//
// Every per-transmission loss draw and every gossip coin comes from the
// attempt's own Pcg32 (seeded per trial by the kernel, PR 3 convention),
// frontiers are scanned in ascending node order, so each attempt is a pure
// function of (graph, parameters, seed) — replayable, shardable, and
// thread-count invariant in the kernel below (pinned by the lossy
// ThreadInvariance tests).
#pragma once

#include <cstdint>

#include "baselines/flooding.h"
#include "graph/graph.h"
#include "net/reliable.h"
#include "net/sim.h"

namespace uesr::baselines {

/// Synchronous flooding where every transmission is independently lost
/// with probability `loss`: nodes that first heard the message in round
/// r-1 retransmit once on all ports in round r; a lost copy simply never
/// arrives (no acks, no retries — flooding's armour is redundancy).
/// Transmissions count every copy put on the wire, lost ones included.
/// Never certifies: under loss a dead wave proves nothing.
FloodResult flood_lossy(const graph::Graph& g, graph::NodeId s,
                        graph::NodeId t, double loss, std::uint64_t seed);

/// Gossip (p-flooding): like flood_lossy, but a node that first hears the
/// message retransmits with probability `p` (the source always
/// transmits).  p = 1 is flood_lossy exactly.
FloodResult gossip_lossy(const graph::Graph& g, graph::NodeId s,
                         graph::NodeId t, double loss, double p,
                         std::uint64_t seed);

/// Channel/protocol knobs of one E13 cell.
struct LossyParams {
  double loss = 0.0;         ///< per-transmission loss probability
  double dup = 0.0;          ///< channel duplication probability (UES links)
  double gossip_p = 0.65;    ///< gossip retransmission probability
  net::SimTime latency_min = 1;  ///< UES link latency bounds
  net::SimTime latency_max = 1;
  net::ReliableOptions reliable{};  ///< stop-and-wait budget/timeout
};

/// One experiment cell, summed over the trial pairs.  Every field is
/// thread-count invariant (pinned by the lossy ThreadInvariance tests).
struct LossyCell {
  int pairs = 0;
  int ues_delivered = 0;
  int ues_certified = 0;    ///< sound failure certificates
  int ues_uncertified = 0;  ///< retry budget spent — no verdict
  /// Certificates contradicting ground-truth reachability (delivery of an
  /// unreachable target, or failure certificate on a reachable one) — the
  /// §2.10 acceptance gate; expected 0 always.
  int ues_errors = 0;
  std::uint64_t ues_hops = 0;    ///< successful link transfers
  std::uint64_t ues_frames = 0;  ///< wire frames incl. acks/retries/losses
  int flood_delivered = 0;
  std::uint64_t flood_transmissions = 0;
  int gossip_delivered = 0;
  std::uint64_t gossip_transmissions = 0;

  friend bool operator==(const LossyCell&, const LossyCell&) = default;
};

/// Runs `pairs` independent (s, t) trials (s != t, drawn serially from
/// Pcg32(seed)) of UES-over-stop-and-wait vs lossy flooding vs gossip on
/// `g` under `params`, and sums the outcomes.  Trial i's channel and
/// baseline streams derive from counter_hash(seed, i) — never shared —
/// and trials fan out over `threads` lanes (0 = UESR_THREADS / hardware)
/// with chunk results merged in index order: the returned cell is
/// bit-identical for any thread count.
LossyCell lossy_experiment(const graph::Graph& g, int pairs,
                           const LossyParams& params, std::uint64_t seed,
                           unsigned threads = 0);

}  // namespace uesr::baselines
