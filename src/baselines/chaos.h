// The E15 chaos-soundness kernel: UES routing over the full fault stack —
// loss, duplication, corruption, node crash/recovery, link brownouts —
// with every verdict audited against ground truth.
//
// The claim under test (DESIGN.md §2.12): faults change WHICH sessions
// complete, never what a completed session's certificate means.  Crashes
// and corruption only delay or kill frames — a walk that completes is
// bit-identical to the lossless walk, so kDelivered still proves the
// target processed the payload and kFailureCertified still proves
// non-reachability in the static graph (§3 caveat as ever); everything
// else degrades to kUncertified.  `unsound` counts verdicts contradicting
// the ground-truth component map (or a delivery whose walk never touched
// the target) — the acceptance gate is unsound == 0 in EVERY cell of the
// E15 crash-rate x corruption-rate sweep, and the seeded chaos fuzzer
// asserts it over hundreds of sampled FaultPlans across the graph zoo.
//
// Determinism: trial i's channel seed and its sampled FaultPlan derive
// from counter_hash(seed, i) sub-streams (PR 3 convention), trials fan
// out over threads with in-order merge — every cell is bit-identical for
// any thread count (pinned by the chaos ThreadInvariance test).
#pragma once

#include <cstdint>

#include "core/lossy_route.h"
#include "graph/graph.h"
#include "net/faults.h"
#include "net/sim.h"

namespace uesr::baselines {

/// Channel + fault + protocol knobs of one E15 cell.
struct ChaosParams {
  double loss = 0.0;     ///< per-transmission loss probability
  double dup = 0.0;      ///< channel duplication probability
  double corrupt = 0.0;  ///< baseline per-delivery corruption probability
  net::SimTime latency_min = 1;  ///< link latency bounds
  net::SimTime latency_max = 1;
  /// Crash / brownout / corruption-burst sampling knobs; each trial arms
  /// FaultPlan::sample(cubic, chaos, counter_hash(trial, 1)).
  net::ChaosConfig chaos{};
  net::ReliableOptions reliable{};  ///< stop-and-wait budget / timeouts
  net::WindowOptions window{};      ///< selective-repeat budgets
  core::ArqKind arq = core::ArqKind::kStopAndWait;
};

/// One experiment cell, summed over the trial pairs.  Every field is
/// thread-count invariant.
struct ChaosCell {
  int pairs = 0;
  int delivered = 0;
  int certified = 0;    ///< sound failure certificates
  int uncertified = 0;  ///< budget spent under faults — no verdict
  /// Verdicts contradicting ground truth: delivery of an unreachable (or
  /// never-visited) target, or a failure certificate on a reachable one.
  /// The §2.12 acceptance gate; expected 0 always.
  int unsound = 0;
  std::uint64_t hops = 0;         ///< successful link transfers
  std::uint64_t frames = 0;       ///< wire frames incl. acks/retries
  std::uint64_t corrupted = 0;    ///< frames the channel damaged
  std::uint64_t crash_drops = 0;  ///< frames dropped by crashed endpoints
  std::uint64_t retransmits = 0;  ///< timeout-driven resends

  friend bool operator==(const ChaosCell&, const ChaosCell&) = default;
};

/// Runs `pairs` independent (s, t) trials (s != t, drawn serially from
/// Pcg32(seed)) of UES-over-ARQ on `g` under `params`, each trial over its
/// own channel (seed counter_hash(trial, 0)) with its own sampled
/// FaultPlan (seed counter_hash(trial, 1)), and sums the audited
/// outcomes.  Bit-identical for any thread count (0 = UESR_THREADS /
/// hardware).
ChaosCell chaos_experiment(const graph::Graph& g, int pairs,
                           const ChaosParams& params, std::uint64_t seed,
                           unsigned threads = 0);

}  // namespace uesr::baselines
