#include "baselines/churn.h"

#include <deque>
#include <stdexcept>
#include <vector>

#include "core/dynamic_route.h"
#include "graph/algorithms.h"
#include "net/dynamic_transport.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace uesr::baselines {

using graph::NodeId;
using graph::Port;

/// One replay of the schedule plus the shared churn clock.
struct ChurnRouter::Replay {
  std::unique_ptr<graph::Scenario> sc;
  graph::DynamicGraph g;
  std::uint64_t period, max_epochs;
  std::uint64_t ticks = 0;
  std::uint64_t since = 0;  ///< transmissions since the last epoch

  Replay(const graph::Scenario& scenario, std::uint64_t period_,
         std::uint64_t max_epochs_)
      : sc(scenario.fresh()), g(sc->initial()), period(period_),
        max_epochs(max_epochs_) {}

  /// The clock: one transmission elapsed; maybe advance the schedule.
  void tx_tick() {
    if (++since >= period && ticks < max_epochs) {
      since = 0;
      sc->advance(g);
      ++ticks;
    }
  }

  /// A router that cannot transmit forfeits the rest of this epoch and
  /// waits for the next; false when the schedule is over (frozen forever).
  bool wait_for_epoch() {
    if (ticks >= max_epochs) return false;
    since = 0;
    sc->advance(g);
    ++ticks;
    return true;
  }
};

ChurnRouter::ChurnRouter(const graph::Scenario& scenario,
                         std::uint64_t period, std::uint64_t max_epochs)
    : scenario_(&scenario), period_(period), max_epochs_(max_epochs) {
  if (period == 0)
    throw std::invalid_argument("ChurnRouter: period >= 1");
}

ChurnAttempt ChurnRouter::route_ues(NodeId s, NodeId t,
                                    std::uint64_t seq_seed) const {
  Replay r(*scenario_, period_, max_epochs_);
  net::DynamicTransport transport(r.g);
  core::DynamicRouteSession session(transport, s, t, {seq_seed});
  while (!session.finished()) {
    session.step();
    // The terminate step transmits nothing; everything else is one frame.
    if (!session.finished()) r.tx_tick();
  }
  ChurnAttempt a;
  a.delivered = session.delivered();
  a.failure_certified = session.failure_certified();
  a.transmissions = session.transmissions();
  a.ticks = r.ticks;
  a.restarts = session.restarts();
  a.completion_epoch = session.completion_epoch();
  return a;
}

ChurnAttempt ChurnRouter::route_random_walk(NodeId s, NodeId t,
                                            std::uint64_t ttl,
                                            std::uint64_t seed) const {
  if (ttl == 0)
    throw std::invalid_argument("ChurnRouter::route_random_walk: ttl > 0");
  Replay r(*scenario_, period_, max_epochs_);
  if (s >= r.g.num_nodes() || t >= r.g.num_nodes())
    throw std::invalid_argument(
        "ChurnRouter::route_random_walk: node out of range");
  util::Pcg32 rng(seed);
  ChurnAttempt a;
  NodeId cur = s;
  a.delivered = cur == t;
  while (!a.delivered && a.transmissions < ttl) {
    const graph::Graph& g = r.g.snapshot();
    const Port deg = g.degree(cur);
    if (deg == 0) {
      // Stranded (isolated by churn, or the source started isolated): no
      // frame can be sent, so no transmission is charged — the walker
      // sleeps until the topology changes, and exhausts when it never
      // will.  This is the dynamic face of the RandomWalkSession fix.
      if (!r.wait_for_epoch()) break;
      continue;
    }
    cur = g.neighbor(cur, static_cast<Port>(rng.next_below(deg)));
    ++a.transmissions;
    r.tx_tick();
    a.delivered = cur == t;
  }
  a.ticks = r.ticks;
  a.completion_epoch = r.g.epoch();
  return a;
}

ChurnAttempt ChurnRouter::route_flooding(NodeId s, NodeId t) const {
  Replay r(*scenario_, period_, max_epochs_);
  if (s >= r.g.num_nodes() || t >= r.g.num_nodes())
    throw std::invalid_argument(
        "ChurnRouter::route_flooding: node out of range");
  ChurnAttempt a;
  std::vector<char> seen(r.g.num_nodes(), 0);
  std::deque<NodeId> frontier{s};
  seen[s] = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    // v retransmits once, over its ports in the epoch it transmits in.
    const graph::Graph& g = r.g.snapshot();
    const Port deg = g.degree(v);
    for (Port p = 0; p < deg; ++p) {
      const NodeId w = g.neighbor(v, p);
      if (!seen[w]) {
        seen[w] = 1;
        frontier.push_back(w);
      }
    }
    a.transmissions += deg;
    for (Port p = 0; p < deg; ++p) r.tx_tick();
  }
  a.delivered = seen[t] != 0;
  // Never certified: a link appearing behind the wave re-connects t to
  // nodes that will not retransmit again, so "the wave died out" proves
  // nothing about the final topology.
  a.ticks = r.ticks;
  a.completion_epoch = r.g.epoch();
  return a;
}

ChurnAttempt ChurnRouter::route_gossip(NodeId s, NodeId t, double loss,
                                       double p, std::uint64_t seed) const {
  if (!(loss >= 0.0 && loss <= 1.0))
    throw std::invalid_argument("ChurnRouter::route_gossip: loss in [0, 1]");
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument("ChurnRouter::route_gossip: p in [0, 1]");
  Replay r(*scenario_, period_, max_epochs_);
  if (s >= r.g.num_nodes() || t >= r.g.num_nodes())
    throw std::invalid_argument(
        "ChurnRouter::route_gossip: node out of range");
  util::Pcg32 rng(seed);
  ChurnAttempt a;
  std::vector<char> seen(r.g.num_nodes(), 0);
  std::deque<NodeId> frontier{s};
  seen[s] = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    // The gossip coin is flipped when v would speak (frontier order), the
    // source unconditionally — one draw per infected node, so the draw
    // sequence is a pure function of the infection order.  A silent node
    // sends nothing and charges nothing.
    if (v != s && rng.next_double() >= p) continue;
    // Like route_flooding, v speaks over its ports in the epoch it
    // transmits in: read the snapshot first, charge the clock after.
    const graph::Graph& g = r.g.snapshot();
    const Port deg = g.degree(v);
    for (Port p_ = 0; p_ < deg; ++p_) {
      // One loss draw per copy, in port order, charged whether or not the
      // copy survives (it was on the air either way).
      if (rng.next_double() < loss) continue;
      const NodeId w = g.neighbor(v, p_);
      if (!seen[w]) {
        seen[w] = 1;
        frontier.push_back(w);
      }
    }
    a.transmissions += deg;
    for (Port p_ = 0; p_ < deg; ++p_) r.tx_tick();
  }
  a.delivered = seen[t] != 0;
  // Never certified, for the same reason as route_flooding — and loss adds
  // a second hole: a dropped copy silently prunes the wave.
  a.ticks = r.ticks;
  a.completion_epoch = r.g.epoch();
  return a;
}

ChurnAttempt ChurnRouter::route_greedy(NodeId s, NodeId t) const {
  Replay r(*scenario_, period_, max_epochs_);
  if (s >= r.g.num_nodes() || t >= r.g.num_nodes())
    throw std::invalid_argument(
        "ChurnRouter::route_greedy: node out of range");
  if (!r.g.has_positions_2d() && !r.g.has_positions_3d())
    throw std::logic_error(
        "ChurnRouter::route_greedy: scenario publishes no positions");
  auto dist_to_t = [&](NodeId v) {
    return r.g.has_positions_2d()
               ? graph::distance(r.g.positions_2d()[v],
                                 r.g.positions_2d()[t])
               : graph::distance(r.g.positions_3d()[v],
                                 r.g.positions_3d()[t]);
  };
  ChurnAttempt a;
  NodeId cur = s;
  while (cur != t) {
    const graph::Graph& g = r.g.snapshot();
    double best = dist_to_t(cur);
    NodeId next = cur;
    for (Port p = 0; p < g.degree(cur); ++p) {
      const NodeId w = g.neighbor(cur, p);
      const double d = dist_to_t(w);
      if (d < best) {
        best = d;
        next = w;
      }
    }
    if (next == cur) {
      // Local minimum (or isolated): wait for the swarm to move; give up
      // once it never will again.  Within one epoch the distance to t
      // strictly decreases per hop, so this loop terminates.
      if (!r.wait_for_epoch()) break;
      continue;
    }
    cur = next;
    ++a.transmissions;
    r.tx_tick();
  }
  a.delivered = cur == t;
  a.ticks = r.ticks;
  a.completion_epoch = r.g.epoch();
  return a;
}

bool ChurnRouter::co_connected_after(std::uint64_t ticks, NodeId s,
                                     NodeId t) const {
  auto sc = scenario_->fresh();
  graph::DynamicGraph g = sc->initial();
  for (std::uint64_t k = 0; k < ticks; ++k) sc->advance(g);
  return graph::has_path(g.snapshot(), s, t);
}

ChurnCell churn_experiment(const graph::Scenario& scenario, int pairs,
                           std::uint64_t period, std::uint64_t max_epochs,
                           std::uint64_t rw_ttl, std::uint64_t seed,
                           unsigned threads, double gossip_loss,
                           double gossip_p) {
  const NodeId n = scenario.num_nodes();
  if (n == 0) throw std::invalid_argument("churn_experiment: empty scenario");
  if (pairs < 0) throw std::invalid_argument("churn_experiment: pairs >= 0");
  // The pair list is drawn serially up front, exactly as a serial driver
  // would (the E2 convention).
  util::Pcg32 pair_rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pair_list(
      static_cast<std::size_t>(pairs));
  for (auto& [s, t] : pair_list) {
    s = pair_rng.next_below(n);
    t = pair_rng.next_below(n);
  }
  const bool has_greedy = [&] {
    auto probe = scenario.fresh();
    graph::DynamicGraph g0 = probe->initial();
    return g0.has_positions_2d() || g0.has_positions_3d();
  }();

  const ChurnRouter router(scenario, period, max_epochs);
  util::ThreadPool pool(threads);
  ChurnCell init;
  init.has_greedy = has_greedy;
  return util::parallel_reduce<ChurnCell>(
      pool, pair_list.size(),
      util::default_chunk(pair_list.size(), pool.size()), init,
      [&](const util::ChunkRange& c) {
        ChurnCell part;
        part.has_greedy = has_greedy;
        for (std::uint64_t i = c.begin; i < c.end; ++i) {
          const auto [s, t] = pair_list[i];
          ++part.pairs;
          const ChurnAttempt ues = router.route_ues(s, t);
          part.ues_delivered += ues.delivered;
          part.ues_certified += ues.failure_certified;
          part.ues_transmissions += ues.transmissions;
          part.ues_restarts += ues.restarts;
          // Acceptance gate: the verdict must match ground truth on the
          // topology the walk completed against.
          const bool truth = router.co_connected_after(ues.ticks, s, t);
          part.ues_errors += (ues.delivered != truth);
          // Baselines: trial i's walk stream is a pure function of
          // (seed, i), never a shared stream (PR 3 convention).
          part.rw_delivered +=
              router.route_random_walk(s, t, rw_ttl,
                                       util::counter_hash(seed, i))
                  .delivered;
          part.flood_delivered += router.route_flooding(s, t).delivered;
          const ChurnAttempt gossip = router.route_gossip(
              s, t, gossip_loss, gossip_p,
              util::counter_hash(seed ^ 0x90551b, i));
          part.gossip_delivered += gossip.delivered;
          part.gossip_transmissions += gossip.transmissions;
          if (has_greedy)
            part.greedy_delivered += router.route_greedy(s, t).delivered;
        }
        return part;
      },
      [](ChurnCell acc, ChurnCell p) {
        acc.pairs += p.pairs;
        acc.ues_delivered += p.ues_delivered;
        acc.ues_certified += p.ues_certified;
        acc.ues_errors += p.ues_errors;
        acc.ues_transmissions += p.ues_transmissions;
        acc.ues_restarts += p.ues_restarts;
        acc.rw_delivered += p.rw_delivered;
        acc.flood_delivered += p.flood_delivered;
        acc.gossip_delivered += p.gossip_delivered;
        acc.gossip_transmissions += p.gossip_transmissions;
        acc.greedy_delivered += p.greedy_delivered;
        return acc;
      });
}

}  // namespace uesr::baselines
