// The churn comparison harness: Route vs flooding vs random walk vs greedy
// geographic forwarding under IDENTICAL dynamic-topology schedules.
//
// Time model (shared by every router so the comparison is fair): the
// network advances one scenario epoch every `period` transmissions, for at
// most `max_epochs` epochs; after the schedule ends the topology freezes,
// so every router below terminates unconditionally.  A router that cannot
// transmit at all (random walker stranded on a degree-0 node, greedy
// forwarder in a local minimum) *waits*: it forfeits the rest of the
// current epoch and resumes when the topology next changes — or gives up
// when no epochs remain.  Scenario replays are exact (graph::Scenario is
// deterministic per seed), so two route_* calls see bit-identical epoch
// sequences.
//
// Certification under churn — who can still prove anything:
//   * UES Route restarts per epoch, so its verdicts are exact statements
//     about the completion epoch (see core/dynamic_route.h).
//   * Flooding's classic certificate ("the wave covered Cs") is UNSOUND
//     under churn — a link can appear behind the wave — so route_flooding
//     never certifies here, unlike the static FloodingRouter.
//   * Random walk and greedy certify nothing, as ever.
//
// churn_experiment() is the one report kernel both the bench driver
// (bench_churn_delivery) and the ThreadInvariance tests consume: trials
// fan out over util::parallel_reduce with per-trial RNG (PR 3 convention),
// so its cells are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "baselines/common.h"
#include "graph/churn.h"
#include "graph/dynamic.h"

namespace uesr::baselines {

struct ChurnAttempt {
  bool delivered = false;
  /// UES only: a full failed walk completed within completion_epoch.
  bool failure_certified = false;
  std::uint64_t transmissions = 0;
  /// Scenario advances consumed by the attempt (replay with
  /// ChurnRouter::co_connected_after to recover the topology it ended on).
  std::uint64_t ticks = 0;
  std::uint64_t restarts = 0;  ///< UES epoch restarts; 0 for baselines
  std::uint64_t completion_epoch = 0;
};

class ChurnRouter {
 public:
  /// `scenario` must outlive the router.  period: transmissions between
  /// epochs (>= 1); max_epochs: schedule length, after which the topology
  /// freezes.
  ChurnRouter(const graph::Scenario& scenario, std::uint64_t period,
              std::uint64_t max_epochs);

  /// Algorithm Route via core::DynamicRouteSession (restart per epoch).
  ChurnAttempt route_ues(graph::NodeId s, graph::NodeId t,
                         std::uint64_t seq_seed = 0x5eed0001) const;

  /// TTL'd random walk over the live snapshot (ttl > 0 required: under a
  /// finite schedule an unlimited walk on a frozen disconnected graph
  /// would never terminate).  Stranded walkers wait for the next epoch.
  ChurnAttempt route_random_walk(graph::NodeId s, graph::NodeId t,
                                 std::uint64_t ttl,
                                 std::uint64_t seed) const;

  /// Flooding with persistent per-node seen bits (the model violation the
  /// static baseline already commits); never certifies under churn.
  ChurnAttempt route_flooding(graph::NodeId s, graph::NodeId t) const;

  /// baselines::gossip_lossy lifted to the churn grid (the Haas–Halpern–Li
  /// comparison point of PAPERS.md under a MOVING topology): each copy is
  /// lost with probability `loss`, each newly-infected node retransmits
  /// with probability `p` (the source always does), seen bits persist
  /// across epochs like route_flooding's.  Draws come from one
  /// Pcg32(seed) in deterministic frontier order, so the attempt is a
  /// pure function of (scenario, s, t, loss, p, seed) — seed-pure and
  /// replayable per the PR 4 convention.  Never certifies.  At p = 1,
  /// loss = 0 this is exactly route_flooding.
  ChurnAttempt route_gossip(graph::NodeId s, graph::NodeId t, double loss,
                            double p, std::uint64_t seed) const;

  /// Greedy geographic forwarding on the epoch's committed positions (2D
  /// or 3D, whichever the scenario publishes; throws std::logic_error when
  /// it publishes neither).  Local minima wait for the next epoch.
  ChurnAttempt route_greedy(graph::NodeId s, graph::NodeId t) const;

  /// Ground truth: replays the schedule `ticks` advances in and reports
  /// whether s and t are in the same component of that topology.
  bool co_connected_after(std::uint64_t ticks, graph::NodeId s,
                          graph::NodeId t) const;

  std::uint64_t period() const { return period_; }
  std::uint64_t max_epochs() const { return max_epochs_; }

 private:
  struct Replay;

  const graph::Scenario* scenario_;
  std::uint64_t period_;
  std::uint64_t max_epochs_;
};

/// One experiment cell: every counter summed over the trial pairs.  All
/// fields are thread-count invariant (pinned by the ThreadInvariance churn
/// tests).
struct ChurnCell {
  int pairs = 0;
  int ues_delivered = 0;
  int ues_certified = 0;
  /// UES verdicts contradicting ground truth at the completion topology —
  /// the acceptance gate; expected 0 always.
  int ues_errors = 0;
  std::uint64_t ues_transmissions = 0;
  std::uint64_t ues_restarts = 0;
  int rw_delivered = 0;
  int flood_delivered = 0;
  int gossip_delivered = 0;
  std::uint64_t gossip_transmissions = 0;
  bool has_greedy = false;  ///< scenario publishes positions
  int greedy_delivered = 0;

  friend bool operator==(const ChurnCell&, const ChurnCell&) = default;
};

/// Runs `pairs` independent (s, t) trials of the five-router comparison
/// under the scenario's schedule and sums the outcomes.  The pair list is
/// drawn serially from Pcg32(seed); trial i's random-walk stream is
/// Pcg32(counter_hash(seed, i)) and its gossip stream
/// Pcg32(counter_hash(seed ^ 0x90551b, i)); trials fan out over `threads`
/// lanes (0 = resolve via UESR_THREADS / hardware) with chunk results
/// merged in index order — the returned cell is bit-identical for any
/// thread count.  gossip_loss / gossip_p parameterise the route_gossip
/// column (defaults sit near its percolation knee; see
/// bench_lossy_delivery's threshold table).
ChurnCell churn_experiment(const graph::Scenario& scenario, int pairs,
                           std::uint64_t period, std::uint64_t max_epochs,
                           std::uint64_t rw_ttl, std::uint64_t seed,
                           unsigned threads = 0, double gossip_loss = 0.1,
                           double gossip_p = 0.65);

}  // namespace uesr::baselines
