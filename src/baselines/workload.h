// Replayable traffic workloads + the E12 report kernel.
//
// A Workload is a schedule of core::SessionSpec admissions — who talks to
// whom, what kind of session, and at which shared-clock tick it arrives.
// Every generator here is a PURE FUNCTION of its parameters (arrivals,
// endpoints and kinds all derive from the seed via Pcg32/counter_hash;
// nothing global), so a workload can be replayed bit-identically: the same
// call produces the same schedule, which is what lets the ThreadInvariance
// traffic tests and bench_traffic_throughput rerun one workload at
// different thread counts and demand identical cells (PR 3 convention).
//
// Families, mirroring how traffic actually arrives at a network:
//   * poisson_workload  — open-arrival unicast: route sessions between
//     uniform pairs, exponential inter-arrival times (the M/·/· shape the
//     gossip literature evaluates under).
//   * hotspot_workload  — every message targets one sink (data collection
//     at a gateway; the worst case for locality).
//   * all_pairs_workload — one route session per ordered pair, all at
//     tick 0: the gossip/closure regime, and the N >= 1024 burst the E12
//     acceptance row runs.
//   * mixed_workload    — route/hybrid/broadcast blend on a deterministic
//     pattern, exercising every lane kind the engine multiplexes.
//
// traffic_experiment() admits a workload into a TrafficEngine (static
// graph or churn-overlaid scenario), runs it, and folds the per-session
// reports into one TrafficCell — the kernel shared by the E12 bench, the
// busy_network example, and the traffic ThreadInvariance tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/traffic.h"
#include "graph/churn.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace uesr::baselines {

/// The standard probabilistic token for hybrid traffic: a TTL'd
/// RandomWalkSession (the Corollary-2 pairing the paper discusses).
core::WalkerFactory random_walk_factory();

struct Workload {
  std::string name;
  std::vector<core::SessionSpec> sessions;
};

/// `sessions` route sessions between uniform random pairs (s != t);
/// inter-arrival times are Exp(mean_interarrival) clock ticks.
Workload poisson_workload(graph::NodeId n, int sessions,
                          double mean_interarrival, std::uint64_t seed);

/// Poisson arrivals, uniform sources, every session targeting `sink`.
Workload hotspot_workload(graph::NodeId n, int sessions, graph::NodeId sink,
                          double mean_interarrival, std::uint64_t seed);

/// One route session per ordered pair (s, t), s != t, all admitted at
/// tick 0 — n·(n-1) concurrent sessions.
Workload all_pairs_workload(graph::NodeId n);

/// Poisson arrivals with kinds on a fixed pattern: every 4th session a
/// Corollary-2 hybrid (token TTL `hybrid_ttl`), every 16th a broadcast,
/// routes otherwise.
Workload mixed_workload(graph::NodeId n, int sessions,
                        double mean_interarrival, std::uint64_t hybrid_ttl,
                        std::uint64_t seed);

/// A core::ArrivalSource generating a Poisson arrival/departure process
/// lazily — the open-loop counterpart of poisson_workload, built for
/// horizons where materializing the schedule up front (millions of specs)
/// would dominate memory.  Every draw derives from one Pcg32 stream seeded
/// by `seed`, so the stream is a PURE FUNCTION of its Config: fresh()
/// hands back a rewound clone, and replaying it yields bit-identical
/// specs — the property the open-loop purity tests pin.
///
/// Endpoints are CLUSTER-LOCAL: on a disjoint_copies(cluster, k) topology
/// of `clusters` copies of `cluster_size` nodes, each session picks one
/// cluster uniformly and a distinct (s, t) pair inside it.  That keeps
/// per-session UES hit times bounded by the cluster size, which is what
/// makes the million-scale E12 row feasible (a uniform pair on one
/// connected 10^6-node graph would need ~n^2 steps per walk).
class OpenLoopWorkload final : public core::ArrivalSource {
 public:
  struct Config {
    graph::NodeId cluster_size = 2;  ///< nodes per cluster (>= 2)
    graph::NodeId clusters = 1;      ///< disjoint copies (>= 1)
    std::uint64_t sessions = 0;      ///< total arrivals before nullopt
    double mean_interarrival = 0.0;  ///< Exp inter-arrival ticks (0 = burst)
    /// Mean Exp session lifetime in ticks; 0 = sessions never depart.
    /// Draws clamp to >= 1 so depart_at > admit_at always holds.
    double mean_lifetime = 0.0;
    std::uint64_t seed = 1;
  };

  explicit OpenLoopWorkload(const Config& cfg);

  /// Human-readable cell label (mirrors the closed-loop generators).
  const std::string& name() const { return name_; }

  /// A rewound clone: same Config, stream restarted from the seed.
  OpenLoopWorkload fresh() const { return OpenLoopWorkload(cfg_); }

  std::optional<core::SessionSpec> next() override;

 private:
  Config cfg_;
  std::string name_;
  util::Pcg32 rng_;
  double at_ = 0.0;           ///< continuous arrival time accumulator
  std::uint64_t emitted_ = 0;
};

/// One experiment cell: per-session verdicts and latency percentiles
/// folded in session-id order.  Every field is thread-count invariant
/// (pinned by the traffic ThreadInvariance tests).
struct TrafficCell {
  int sessions = 0;
  int delivered = 0;
  int certified = 0;   ///< route failure certificates
  int exhausted = 0;   ///< hybrid no-verdict terminations
  int departed = 0;    ///< open-loop sessions that left before a verdict
  std::uint64_t transmissions = 0;  ///< total frames across all sessions
  std::uint64_t restarts = 0;       ///< dynamic-mode epoch restarts
  std::uint64_t final_clock = 0;    ///< shared-clock tick the engine drained at
  /// Per-session completion transmissions (p50/p99 over completed
  /// sessions; open-loop departures are excluded).  In
  /// the slotted model these equal per-session latency in clock ticks:
  /// one slot per frame, and free steps cost nothing (pinned by the
  /// SharedClockAccounting test).
  double p50_tx = 0.0;
  double p99_tx = 0.0;

  friend bool operator==(const TrafficCell&, const TrafficCell&) = default;
};

/// Folds finished reports (session-id order) into a cell.
TrafficCell summarize_traffic(const std::vector<core::SessionReport>& reports,
                              std::uint64_t final_clock);

/// Static topology: admits `w` into a TrafficEngine over `g` and runs it
/// to completion.  threads: worker lanes (0 = UESR_THREADS / hardware);
/// the returned cell is bit-identical for any value.
TrafficCell traffic_experiment(const graph::Graph& g, const Workload& w,
                               std::uint64_t seq_seed, unsigned threads);

/// E12 open-loop kernel: streams `cfg` into a sharded TrafficEngine over
/// `g` via attach_arrivals() and folds the drained reports.  `shards`
/// follows TrafficOptions::shards (0 = one per worker lane); the cell is
/// bit-identical for any threads/shards value.
TrafficCell open_loop_traffic_experiment(const graph::Graph& g,
                                         const OpenLoopWorkload::Config& cfg,
                                         std::uint64_t seq_seed,
                                         unsigned threads, unsigned shards);

/// Churn-overlaid: the same, over a scenario advancing one epoch every
/// `epoch_period` ticks for `max_epochs` epochs (then frozen).
TrafficCell traffic_experiment(const graph::Scenario& scenario,
                               std::uint64_t epoch_period,
                               std::uint64_t max_epochs, const Workload& w,
                               std::uint64_t seq_seed, unsigned threads);

/// One E14 cell: the lossy traffic engine's per-session verdicts folded in
/// session-id order, each kDelivered / kFailureCertified verdict VALIDATED
/// against ground-truth reachability at its completion epoch.  Every field
/// is thread-count invariant (pinned by the lossy-traffic ThreadInvariance
/// tests).
struct LossyTrafficCell {
  int sessions = 0;
  int delivered = 0;
  int certified = 0;    ///< sound failure certificates
  int uncertified = 0;  ///< budget-spent no-verdict degradations
  /// Verdicts contradicting ground truth at the epoch they are about —
  /// the E14 acceptance gate; expected 0 always.
  int unsound = 0;
  std::uint64_t wire_frames = 0;  ///< DATA + ACK copies, lost ones included
  std::uint64_t hops = 0;         ///< successful link transfers
  std::uint64_t retransmits = 0;  ///< timeout-driven resends
  std::uint64_t restarts = 0;     ///< dynamic-mode epoch restarts
  std::uint64_t final_clock = 0;
  /// Channel virtual time summed over DELIVERED sessions:
  /// vtime_delivered / delivered is the virtual-time-per-delivered-route
  /// number the selective-repeat vs stop-and-wait comparison reports.
  std::uint64_t vtime_delivered = 0;
  double p50_tx = 0.0;  ///< per-session wire frames, p50 over finished
  double p99_tx = 0.0;
  friend bool operator==(const LossyTrafficCell&,
                         const LossyTrafficCell&) = default;
};

/// Static topology: `w`'s route sessions over per-session lossy channels
/// + ARQ (core::LossyTrafficConfig).  Ground truth for the soundness gate
/// is connected_components(g).
LossyTrafficCell lossy_traffic_experiment(const graph::Graph& g,
                                          const Workload& w,
                                          const core::LossyTrafficConfig& cfg,
                                          std::uint64_t seq_seed,
                                          unsigned threads);

/// Composed fault regime: links flap (scenario epochs) AND drop frames
/// (lossy channel) in one replayable run.  Ground truth per epoch comes
/// from an independent replay of the scenario.
LossyTrafficCell lossy_traffic_experiment(const graph::Scenario& scenario,
                                          std::uint64_t epoch_period,
                                          std::uint64_t max_epochs,
                                          const Workload& w,
                                          const core::LossyTrafficConfig& cfg,
                                          std::uint64_t seq_seed,
                                          unsigned threads);

}  // namespace uesr::baselines
