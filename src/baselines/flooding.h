// Flooding baseline.
//
// Classic guaranteed broadcast/routing: every node retransmits the message
// once on all its ports.  Delivery is guaranteed and failure is certified
// (if the wave dies out without reaching t, t is unreachable) — but the
// scheme VIOLATES the paper's model: each node must remember whether it
// has already forwarded the message, i.e. Omega(1) persistent bits per
// node *per message in flight*, which the O(log n)-space stateless model
// forbids.  It is included as the throughput/latency yardstick the
// stateless walker should be compared against.
#pragma once

#include <cstdint>

#include "baselines/common.h"
#include "graph/graph.h"

namespace uesr::baselines {

struct FloodResult {
  bool delivered = false;
  std::uint64_t transmissions = 0;  ///< every port of every reached node
  std::uint32_t rounds = 0;         ///< synchronous rounds until t heard it
  std::uint64_t nodes_reached = 0;
};

/// Simulates synchronous flooding from s until the wave covers Cs (or
/// reaches t, whichever the caller cares about; the full wave cost is
/// reported because flooding cannot be "called back").
FloodResult flood(const graph::Graph& g, graph::NodeId s, graph::NodeId t);

class FloodingRouter final : public Router {
 public:
  explicit FloodingRouter(const graph::Graph& g) : g_(&g) {}
  Attempt route(graph::NodeId s, graph::NodeId t) override;
  std::string name() const override { return "flooding"; }

 private:
  const graph::Graph* g_;
};

}  // namespace uesr::baselines
