#include "baselines/random_walk.h"

#include <stdexcept>

namespace uesr::baselines {

RandomWalkSession::RandomWalkSession(const graph::Graph& g, graph::NodeId s,
                                     graph::NodeId t, std::uint64_t ttl,
                                     std::uint64_t seed)
    : g_(&g), target_(t), current_(s), delivered_(s == t), ttl_(ttl),
      rng_(seed) {
  if (s >= g.num_nodes() || t >= g.num_nodes())
    throw std::invalid_argument("RandomWalkSession: node out of range");
}

void RandomWalkSession::step() {
  if (delivered_ || exhausted()) return;
  graph::Port deg = g_->degree(current_);
  if (deg == 0) {
    // Isolated node: no port to transmit on, so the walk can never move.
    // Exhaust immediately — with ttl == 0 the session would otherwise never
    // satisfy exhausted() and RandomWalkRouter::route would spin forever,
    // and charging phantom transmissions would misreport a frame that was
    // never sent.
    stranded_ = true;
    return;
  }
  graph::Port p = static_cast<graph::Port>(rng_.next_below(deg));
  current_ = g_->neighbor(current_, p);
  ++transmissions_;
  if (current_ == target_) delivered_ = true;
}

Attempt RandomWalkRouter::route(graph::NodeId s, graph::NodeId t) {
  RandomWalkSession session(*g_, s, t, ttl_, seeder_.next());
  while (!session.delivered() && !session.exhausted()) session.step();
  Attempt a;
  a.delivered = session.delivered();
  a.failure_certified = false;  // a TTL expiry proves nothing
  a.transmissions = session.transmissions();
  return a;
}

}  // namespace uesr::baselines
