// Position-based routing baselines: greedy geographic forwarding and
// GPSR/GFG-style greedy-plus-face routing.
//
// These are the algorithms the paper's introduction positions itself
// against ([5, 9]; and [2] for the 3D impossibility).  Greedy forwarding
// needs only positions but dies in local minima; adding face routing on a
// planarized graph (Gabriel subgraph) recovers guaranteed delivery — but
// only in 2D, because face routing has no 3D analogue (Durocher,
// Kirkpatrick, Narayanan 2008).  The UES router needs neither positions
// nor planarity, which is precisely the gap it closes; bench E9 puts
// numbers on this story.
//
// The perimeter mode implemented here is GPSR's right-hand-rule traversal
// with face switching on edges crossing the (entry-point -> t) segment and
// recovery to greedy once strictly closer than the entry point.  Delivery
// rates are measured, not assumed, in the benches.
#pragma once

#include <cstdint>
#include <string>

#include "baselines/common.h"
#include "graph/geometric.h"

namespace uesr::baselines {

struct GeoAttempt {
  bool delivered = false;
  bool stuck = false;            ///< greedy died in a local minimum
  std::uint64_t transmissions = 0;
};

/// Pure greedy on 2D positions: forward to the neighbour strictly closest
/// to t; fail at a local minimum.
GeoAttempt greedy_route_2d(const graph::Positioned2& net, graph::NodeId s,
                           graph::NodeId t, std::uint64_t hop_limit = 0);

/// Pure greedy on 3D positions.
GeoAttempt greedy_route_3d(const graph::Positioned3& net, graph::NodeId s,
                           graph::NodeId t, std::uint64_t hop_limit = 0);

/// GPSR/GFG: greedy with perimeter-mode recovery on a *planar* embedded
/// graph (pass the Gabriel subgraph).  hop_limit == 0 picks a generous
/// default (16 * n).
GeoAttempt gpsr_route(const graph::Positioned2& planar, graph::NodeId s,
                      graph::NodeId t, std::uint64_t hop_limit = 0);

class GreedyRouter2D final : public Router {
 public:
  explicit GreedyRouter2D(const graph::Positioned2& net) : net_(&net) {}
  Attempt route(graph::NodeId s, graph::NodeId t) override;
  std::string name() const override { return "greedy-2d"; }

 private:
  const graph::Positioned2* net_;
};

class GpsrRouter final : public Router {
 public:
  /// `planar` must be a plane embedding (e.g. gabriel_subgraph output).
  explicit GpsrRouter(const graph::Positioned2& planar) : net_(&planar) {}
  Attempt route(graph::NodeId s, graph::NodeId t) override;
  std::string name() const override { return "gpsr-face"; }

 private:
  const graph::Positioned2* net_;
};

}  // namespace uesr::baselines
