#include "baselines/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "baselines/random_walk.h"
#include "graph/algorithms.h"
#include "graph/dynamic.h"
#include "util/rng.h"
#include "util/stats.h"

namespace uesr::baselines {

using graph::NodeId;

core::WalkerFactory random_walk_factory() {
  return [](const graph::Graph& g, NodeId s, NodeId t, std::uint64_t ttl,
            std::uint64_t seed) -> std::unique_ptr<core::TokenWalker> {
    return std::make_unique<RandomWalkSession>(g, s, t, ttl, seed);
  };
}

namespace {

void check_workload_args(NodeId n, int sessions, double mean_interarrival,
                         const char* who) {
  if (n < 2) throw std::invalid_argument(std::string(who) + ": n >= 2");
  if (sessions < 0)
    throw std::invalid_argument(std::string(who) + ": sessions >= 0");
  if (!(mean_interarrival >= 0.0))
    throw std::invalid_argument(std::string(who) +
                                ": mean_interarrival >= 0");
}

/// Exponential inter-arrival draw (mean ticks); 0 mean = all at tick 0.
double exp_draw(util::Pcg32& rng, double mean) {
  if (mean == 0.0) return 0.0;
  // 1 - u in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - rng.next_double());
}

NodeId other_than(util::Pcg32& rng, NodeId n, NodeId avoid) {
  NodeId v = rng.next_below(n);
  return v == avoid ? (v + 1) % n : v;
}

}  // namespace

Workload poisson_workload(NodeId n, int sessions, double mean_interarrival,
                          std::uint64_t seed) {
  check_workload_args(n, sessions, mean_interarrival, "poisson_workload");
  util::Pcg32 rng(seed);
  Workload w;
  std::ostringstream name;
  name << "poisson(n=" << n << ",N=" << sessions << ",ia=" << mean_interarrival
       << ",seed=" << seed << ")";
  w.name = name.str();
  double at = 0.0;
  for (int i = 0; i < sessions; ++i) {
    at += exp_draw(rng, mean_interarrival);
    core::SessionSpec spec;
    spec.kind = core::TrafficKind::kRoute;
    spec.s = rng.next_below(n);
    spec.t = other_than(rng, n, spec.s);
    spec.admit_at = static_cast<std::uint64_t>(at);
    w.sessions.push_back(spec);
  }
  return w;
}

Workload hotspot_workload(NodeId n, int sessions, NodeId sink,
                          double mean_interarrival, std::uint64_t seed) {
  check_workload_args(n, sessions, mean_interarrival, "hotspot_workload");
  if (sink >= n)
    throw std::invalid_argument("hotspot_workload: sink out of range");
  util::Pcg32 rng(seed);
  Workload w;
  std::ostringstream name;
  name << "hotspot(n=" << n << ",N=" << sessions << ",sink=" << sink
       << ",seed=" << seed << ")";
  w.name = name.str();
  double at = 0.0;
  for (int i = 0; i < sessions; ++i) {
    at += exp_draw(rng, mean_interarrival);
    core::SessionSpec spec;
    spec.kind = core::TrafficKind::kRoute;
    spec.s = other_than(rng, n, sink);
    spec.t = sink;
    spec.admit_at = static_cast<std::uint64_t>(at);
    w.sessions.push_back(spec);
  }
  return w;
}

Workload all_pairs_workload(NodeId n) {
  if (n < 2) throw std::invalid_argument("all_pairs_workload: n >= 2");
  Workload w;
  std::ostringstream name;
  name << "all-pairs(n=" << n << ",N=" << (std::uint64_t{n} * (n - 1)) << ")";
  w.name = name.str();
  for (NodeId s = 0; s < n; ++s)
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      core::SessionSpec spec;
      spec.kind = core::TrafficKind::kRoute;
      spec.s = s;
      spec.t = t;
      w.sessions.push_back(spec);
    }
  return w;
}

Workload mixed_workload(NodeId n, int sessions, double mean_interarrival,
                        std::uint64_t hybrid_ttl, std::uint64_t seed) {
  check_workload_args(n, sessions, mean_interarrival, "mixed_workload");
  util::Pcg32 rng(seed);
  Workload w;
  std::ostringstream name;
  name << "mixed(n=" << n << ",N=" << sessions << ",seed=" << seed << ")";
  w.name = name.str();
  double at = 0.0;
  for (int i = 0; i < sessions; ++i) {
    at += exp_draw(rng, mean_interarrival);
    core::SessionSpec spec;
    spec.s = rng.next_below(n);
    spec.t = other_than(rng, n, spec.s);
    spec.admit_at = static_cast<std::uint64_t>(at);
    if (i % 16 == 15) {
      spec.kind = core::TrafficKind::kBroadcast;
    } else if (i % 4 == 3) {
      spec.kind = core::TrafficKind::kHybrid;
      spec.hybrid_ttl = hybrid_ttl;
    } else {
      spec.kind = core::TrafficKind::kRoute;
    }
    w.sessions.push_back(spec);
  }
  return w;
}

OpenLoopWorkload::OpenLoopWorkload(const Config& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  if (cfg.cluster_size < 2)
    throw std::invalid_argument("OpenLoopWorkload: cluster_size >= 2");
  if (cfg.clusters < 1)
    throw std::invalid_argument("OpenLoopWorkload: clusters >= 1");
  if (!(cfg.mean_interarrival >= 0.0) || !(cfg.mean_lifetime >= 0.0))
    throw std::invalid_argument("OpenLoopWorkload: negative mean");
  std::ostringstream name;
  name << "open-loop(k=" << cfg.clusters << "x" << cfg.cluster_size
       << ",N=" << cfg.sessions << ",ia=" << cfg.mean_interarrival
       << ",life=" << cfg.mean_lifetime << ",seed=" << cfg.seed << ")";
  name_ = name.str();
}

std::optional<core::SessionSpec> OpenLoopWorkload::next() {
  if (emitted_ >= cfg_.sessions) return std::nullopt;
  ++emitted_;
  at_ += exp_draw(rng_, cfg_.mean_interarrival);
  const NodeId c = rng_.next_below(cfg_.clusters);
  const NodeId base = c * cfg_.cluster_size;
  core::SessionSpec spec;
  spec.kind = core::TrafficKind::kRoute;
  spec.s = base + rng_.next_below(cfg_.cluster_size);
  spec.t = base + other_than(rng_, cfg_.cluster_size, spec.s - base);
  spec.admit_at = static_cast<std::uint64_t>(at_);
  if (cfg_.mean_lifetime > 0.0) {
    const double life = exp_draw(rng_, cfg_.mean_lifetime);
    spec.depart_at =
        spec.admit_at + std::max<std::uint64_t>(
                            1, static_cast<std::uint64_t>(life));
  }
  return spec;
}

TrafficCell summarize_traffic(const std::vector<core::SessionReport>& reports,
                              std::uint64_t final_clock) {
  TrafficCell cell;
  cell.final_clock = final_clock;
  util::Samples tx;
  for (const core::SessionReport& r : reports) {
    ++cell.sessions;
    cell.delivered += r.delivered;
    cell.certified += r.failure_certified;
    cell.exhausted += r.exhausted;
    cell.departed += r.departed;
    cell.transmissions += r.transmissions;
    cell.restarts += r.restarts;
    // Departed sessions never completed; their partial walks would skew
    // the completion percentiles.
    if (r.finished && !r.departed)
      tx.add(static_cast<double>(r.transmissions));
  }
  if (tx.count() > 0) {
    cell.p50_tx = tx.percentile(50.0);
    cell.p99_tx = tx.percentile(99.0);
  }
  return cell;
}

TrafficCell traffic_experiment(const graph::Graph& g, const Workload& w,
                               std::uint64_t seq_seed, unsigned threads) {
  core::TrafficOptions opt;
  opt.seq_seed = seq_seed;
  opt.threads = threads;
  opt.hybrid_walker = random_walk_factory();
  core::TrafficEngine engine(g, opt);
  engine.admit_all(w.sessions);
  engine.run();
  return summarize_traffic(engine.reports(), engine.clock());
}

TrafficCell open_loop_traffic_experiment(const graph::Graph& g,
                                         const OpenLoopWorkload::Config& cfg,
                                         std::uint64_t seq_seed,
                                         unsigned threads, unsigned shards) {
  core::TrafficOptions opt;
  opt.seq_seed = seq_seed;
  opt.threads = threads;
  opt.shards = shards;
  core::TrafficEngine engine(g, opt);
  OpenLoopWorkload source(cfg);
  engine.attach_arrivals(source);
  engine.run();
  return summarize_traffic(engine.reports(), engine.clock());
}

TrafficCell traffic_experiment(const graph::Scenario& scenario,
                               std::uint64_t epoch_period,
                               std::uint64_t max_epochs, const Workload& w,
                               std::uint64_t seq_seed, unsigned threads) {
  core::TrafficOptions opt;
  opt.seq_seed = seq_seed;
  opt.threads = threads;
  opt.epoch_period = epoch_period;
  opt.max_epochs = max_epochs;
  core::TrafficEngine engine(scenario, opt);
  engine.admit_all(w.sessions);
  engine.run();
  return summarize_traffic(engine.reports(), engine.clock());
}

namespace {

/// Folds lossy-engine reports and validates every hard verdict against the
/// component labels of the epoch it is about (comp_by_epoch[e]; static
/// runs pass a single entry).  Serial and in session-id order — the
/// acceptance gate must be as deterministic as the cells it guards.
LossyTrafficCell summarize_lossy(
    const std::vector<core::SessionReport>& reports,
    std::uint64_t final_clock,
    const std::vector<std::vector<NodeId>>& comp_by_epoch) {
  LossyTrafficCell cell;
  cell.final_clock = final_clock;
  util::Samples tx;
  for (const core::SessionReport& r : reports) {
    ++cell.sessions;
    cell.delivered += r.delivered;
    cell.certified += r.failure_certified;
    cell.uncertified += r.uncertified;
    cell.wire_frames += r.transmissions;
    cell.hops += r.hops;
    cell.retransmits += r.retransmits;
    cell.restarts += r.restarts;
    if (r.delivered) cell.vtime_delivered += r.virtual_time;
    if (r.finished) tx.add(static_cast<double>(r.transmissions));
    if (r.delivered || r.failure_certified) {
      const std::size_t e = static_cast<std::size_t>(
          std::min<std::uint64_t>(r.completion_epoch,
                                  comp_by_epoch.size() - 1));
      const bool reachable = comp_by_epoch[e][r.s] == comp_by_epoch[e][r.t];
      // kDelivered with no path, or a failure certificate with a live
      // path, is an unsound certificate — the thing this engine must
      // never produce (kUncertified asserts nothing and needs no check).
      cell.unsound += r.delivered ? !reachable : reachable;
    }
  }
  if (tx.count() > 0) {
    cell.p50_tx = tx.percentile(50.0);
    cell.p99_tx = tx.percentile(99.0);
  }
  return cell;
}

}  // namespace

LossyTrafficCell lossy_traffic_experiment(const graph::Graph& g,
                                          const Workload& w,
                                          const core::LossyTrafficConfig& cfg,
                                          std::uint64_t seq_seed,
                                          unsigned threads) {
  core::TrafficOptions opt;
  opt.seq_seed = seq_seed;
  opt.threads = threads;
  opt.lossy = cfg;
  core::TrafficEngine engine(g, opt);
  engine.admit_all(w.sessions);
  engine.run();
  return summarize_lossy(engine.reports(), engine.clock(),
                         {graph::connected_components(g)});
}

LossyTrafficCell lossy_traffic_experiment(const graph::Scenario& scenario,
                                          std::uint64_t epoch_period,
                                          std::uint64_t max_epochs,
                                          const Workload& w,
                                          const core::LossyTrafficConfig& cfg,
                                          std::uint64_t seq_seed,
                                          unsigned threads) {
  core::TrafficOptions opt;
  opt.seq_seed = seq_seed;
  opt.threads = threads;
  opt.epoch_period = epoch_period;
  opt.max_epochs = max_epochs;
  opt.lossy = cfg;
  core::TrafficEngine engine(scenario, opt);
  engine.admit_all(w.sessions);
  engine.run();
  // Ground truth: an independent replay of the schedule, one component map
  // per epoch (scenario replays are exact, so this is the same topology
  // sequence the engine committed).
  std::vector<std::vector<NodeId>> comp_by_epoch;
  comp_by_epoch.reserve(static_cast<std::size_t>(max_epochs) + 1);
  auto replay = scenario.fresh();
  graph::DynamicGraph dg = replay->initial();
  comp_by_epoch.push_back(graph::connected_components(dg.snapshot()));
  for (std::uint64_t e = 0; e < max_epochs; ++e) {
    replay->advance(dg);
    comp_by_epoch.push_back(graph::connected_components(dg.snapshot()));
  }
  return summarize_lossy(engine.reports(), engine.clock(), comp_by_epoch);
}

}  // namespace uesr::baselines
