// Counting the vertices of the source's component (paper §4).
//
// The paper removes the "know n in advance" assumption with a doubling
// scheme: run exploration sequences T_1, T_2, T_4, ... from s; after each,
// use two probe primitives to test whether the visited set is closed under
// neighbourhood — if it is, the walk covered exactly Cs and its distinct
// names can be counted:
//
//   Retrieve(s, T, i)            — name of the node visited at step i;
//   RetrieveNeighbor(s, T, i, j) — name of that node's j-th neighbour.
//
// Both are implemented here as genuine message protocols over the stateless
// network: a probe walks forward i steps (same bookkeeping as Route),
// samples a name into its O(log n) header — for the neighbour variant, one
// extra hop out of port j and back, parking the return port in the header —
// and then backtracks to s via reversibility.
//
// Complexities are exactly the paper's: closure checking costs O(L^2)
// probe invocations of O(L) transmissions each, so message-faithful
// counting is O(L^3) — polynomial, as claimed, but steep.  Two execution
// modes are therefore offered:
//
//   * kFaithful — every probe really walks the network hop by hop;
//     intended for small components (the integration tests pin its
//     equivalence to ground truth);
//   * kFast     — the walk is simulated centrally once per epoch and
//     probes are answered from the trace.  Outputs are bit-identical to
//     kFaithful (the paper's early-exit scan semantics are replayed
//     arithmetically to report the same transmission counts) at a tiny
//     actual cost, enabling large-scale benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::core {

enum class CountMode { kFaithful, kFast };

/// Factory for the T_{2^k} family; receives the size bound 2^k.
using SequenceFactory =
    std::function<std::shared_ptr<const explore::ExplorationSequence>(
        graph::NodeId size_bound)>;

/// Default family: seeded pseudorandom sequences of default length.
SequenceFactory default_sequence_family(std::uint64_t seed);

struct CountResult {
  /// |Cs'|: vertices of the component of s in the reduced cubic graph.
  std::uint64_t gadget_count = 0;
  /// Distinct original names among them: |Cs| in the original graph.
  std::uint64_t original_count = 0;
  /// Number of doubling epochs used (final k; size bound was 2^k).
  unsigned epochs = 0;
  /// Size bound 2^k that first achieved neighbourhood closure.
  graph::NodeId final_bound = 0;
  /// Total transmissions (real for kFaithful, exact-equivalent for kFast).
  std::uint64_t transmissions = 0;
  /// Total probe invocations.
  std::uint64_t probes = 0;
};

/// One Retrieve(s, T, i) probe, message-faithful.  Returns the *gadget
/// name* (unique per G' vertex: nodes are named (original, port-slot)).
/// `transmissions` is incremented by the probe's real cost.
graph::NodeId retrieve(const explore::ReducedGraph& net,
                       const explore::ExplorationSequence& seq,
                       graph::NodeId s, std::uint64_t i,
                       std::uint64_t& transmissions);

/// One RetrieveNeighbor(s, T, i, j) probe, message-faithful.
graph::NodeId retrieve_neighbor(const explore::ReducedGraph& net,
                                const explore::ExplorationSequence& seq,
                                graph::NodeId s, std::uint64_t i,
                                graph::Port j, std::uint64_t& transmissions);

/// Algorithm CountNodes(s).  Doubles the size bound until the walk's
/// visited set is closed under neighbourhood, then counts distinct names.
CountResult count_nodes(const explore::ReducedGraph& net, graph::NodeId s,
                        const SequenceFactory& family,
                        CountMode mode = CountMode::kFast);

}  // namespace uesr::core
