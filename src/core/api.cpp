#include "core/api.h"

#include <stdexcept>

#include "explore/sequence_cache.h"

namespace uesr::core {

AdHocNetwork::AdHocNetwork(const graph::Graph& g, Options options)
    : original_(&g), reduced_(explore::reduce_to_cubic(g)),
      options_(options) {
  graph::NodeId cubic_n = reduced_.cubic.num_nodes();
  if (options_.namespace_size == 0)
    options_.namespace_size = std::max<std::uint64_t>(cubic_n, 1);
  if (options_.sequence) {
    sequence_ = options_.sequence;
  } else {
    graph::NodeId bound = options_.size_bound.value_or(cubic_n);
    if (bound == 0) bound = 1;
    sequence_ = explore::cached_standard_ues(bound, options_.seed);
  }
  router_ = std::make_unique<UesRouter>(reduced_, sequence_,
                                        options_.namespace_size);
}

RouteResult AdHocNetwork::route(graph::NodeId s, graph::NodeId t) const {
  return router_->route(s, t);
}

UesRouter::BroadcastResult AdHocNetwork::broadcast(graph::NodeId s) const {
  return router_->broadcast(s);
}

CountResult AdHocNetwork::count_component(graph::NodeId s,
                                          CountMode mode) const {
  return count_nodes(reduced_, s, default_sequence_family(options_.seed),
                     mode);
}

AdaptiveRouteResult AdHocNetwork::route_adaptive(graph::NodeId s,
                                                 graph::NodeId t,
                                                 CountMode mode) const {
  AdaptiveRouteResult out;
  out.census = count_component(s, mode);
  // CountNodes certified (by neighbourhood closure) that Cs' has exactly
  // gadget_count vertices; size the sequence for that bound.
  // Learned bounds repeat across calls (same component -> same census), so
  // identical T_n are served from the process-wide cache instead of being
  // rebuilt per session.
  auto bound = static_cast<graph::NodeId>(out.census.gadget_count);
  auto seq = explore::cached_standard_ues(std::max<graph::NodeId>(bound, 1),
                                          options_.seed ^ 0xada9);
  UesRouter router(reduced_, seq, options_.namespace_size);
  out.route = router.route(s, t);
  return out;
}

}  // namespace uesr::core
