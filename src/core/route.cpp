#include "core/route.h"

#include <stdexcept>

namespace uesr::core {

using explore::ExplorationSequence;
using graph::NodeId;
using graph::Port;
using net::Direction;
using net::Header;
using net::Kind;
using net::Status;

NodeDecision route_node_step(const NodeView& node, Port in_port,
                             const Header& header,
                             const ExplorationSequence& seq) {
  NodeDecision d;
  d.header = header;
  if (header.dir == Direction::kForward) {
    // Arrival processing at the head of departure edge d_j, j = index.
    const bool at_target = header.kind == Kind::kRoute &&
                           node.original_name == header.target;
    const bool exhausted = header.index >= seq.length();
    if (at_target || exhausted) {
      // Turn around: resend over the arrival port; index unchanged (the far
      // side will undo step j).  Status records what happened.
      d.header.dir = Direction::kBackward;
      d.header.status = at_target ? Status::kSuccess : Status::kFailure;
      d.out_port = in_port;
      return d;
    }
    // Ordinary forward step: consume symbol j+1.
    std::uint64_t next = header.index + 1;
    d.header.index = next;
    d.out_port = static_cast<Port>((in_port + seq.symbol(next)) % node.degree);
    return d;
  }
  // Backward mode: we are at the tail of departure edge d_j, arrived on the
  // port d_j departed from.  j == 0 means the walk is fully rewound: this
  // node is s and the protocol returns its status.
  if (header.index == 0) {
    d.terminate = true;
    d.final_status = header.status;
    return d;
  }
  // Undo step j: the entry port of step j was (d_j.port - t_j) mod deg.
  std::uint64_t j = header.index;
  Port t = static_cast<Port>(seq.symbol(j) % node.degree);
  d.out_port = static_cast<Port>((in_port + node.degree - t) % node.degree);
  d.header.index = j - 1;
  return d;
}

RouteSession::RouteSession(const explore::ReducedGraph& net,
                           const ExplorationSequence& seq, NodeId s,
                           NodeId t)
    : net_(&net), seq_(&seq) {
  const auto n_orig = static_cast<NodeId>(net.first_gadget.size());
  if (s >= n_orig)
    throw std::invalid_argument("RouteSession: source out of range");
  if (t != net::kNoTarget && t >= n_orig)
    throw std::invalid_argument("RouteSession: target out of range");
  header_.kind = t == net::kNoTarget ? Kind::kBroadcast : Kind::kRoute;
  header_.source = s;
  header_.target = t;
  start_gadget_ = net.entry_gadget(s);
}

NodeId RouteSession::current_original() const {
  return injected_ ? net_->original_of[at_.node]
                   : net_->original_of[start_gadget_];
}

void RouteSession::step() {
  if (finished_) return;
  const graph::Graph& g = net_->cubic;
  if (!injected_) {
    // Injection: s sends along d_0 = (start, port 0); consumes no symbol.
    graph::HalfEdge far = g.rotate(start_gadget_, 0);
    at_ = {far.node, far.port};
    injected_ = true;
    ++transmissions_;
    if (header_.kind == Kind::kRoute &&
        net_->original_of[at_.node] == header_.target) {
      target_reached_ = true;
      first_hit_step_ = 0;
    }
    return;
  }
  NodeView view{net_->original_of[at_.node], g.degree(at_.node)};
  NodeDecision d = route_node_step(view, at_.port, header_, *seq_);
  if (header_.dir == Direction::kForward &&
      d.header.dir == Direction::kBackward) {
    forward_steps_ = header_.index;
    if (d.header.status == Status::kSuccess) {
      target_reached_ = true;
      first_hit_step_ = header_.index;
    }
  }
  if (d.terminate) {
    finished_ = true;
    status_ = d.final_status;
    return;
  }
  header_ = d.header;
  graph::HalfEdge far = g.rotate(at_.node, d.out_port);
  at_ = {far.node, far.port};
  ++transmissions_;
  if (header_.dir == Direction::kForward && header_.kind == Kind::kRoute &&
      net_->original_of[at_.node] == header_.target && !target_reached_) {
    target_reached_ = true;
    first_hit_step_ = header_.index;
  }
}

UesRouter::UesRouter(const explore::ReducedGraph& net,
                     std::shared_ptr<const ExplorationSequence> seq,
                     std::uint64_t namespace_size)
    : net_(&net), seq_(std::move(seq)), namespace_size_(namespace_size) {
  if (!seq_) throw std::invalid_argument("UesRouter: null sequence");
  if (namespace_size_ < net.first_gadget.size())
    throw std::invalid_argument(
        "UesRouter: namespace smaller than the network");
}

RouteResult UesRouter::route(NodeId s, NodeId t) const {
  const auto n_orig = static_cast<NodeId>(net_->first_gadget.size());
  if (s >= n_orig || t >= n_orig)
    throw std::invalid_argument("UesRouter::route: node out of range");
  RouteResult out;
  out.header_bits =
      net::header_bits(Kind::kRoute, namespace_size_, seq_->length());
  if (s == t) {  // degenerate: nothing to send
    out.delivered = true;
    return out;
  }
  RouteSession session(*net_, *seq_, s, t);
  while (!session.finished()) session.step();
  out.delivered = session.status() == Status::kSuccess;
  out.forward_steps = session.forward_steps();
  out.total_transmissions = session.transmissions();
  out.first_hit_step = session.first_hit_step();
  return out;
}

UesRouter::BroadcastResult UesRouter::broadcast(NodeId s) const {
  const auto n_orig = static_cast<NodeId>(net_->first_gadget.size());
  if (s >= n_orig)
    throw std::invalid_argument("UesRouter::broadcast: node out of range");
  BroadcastResult out;
  out.visited_originals.assign(n_orig, false);
  RouteSession session(*net_, *seq_, s, net::kNoTarget);
  auto visit = [&](NodeId original) {
    if (!out.visited_originals[original]) {
      out.visited_originals[original] = true;
      ++out.distinct_visited;
    }
  };
  visit(s);
  while (!session.finished()) {
    session.step();
    if (!session.finished()) visit(session.current_original());
  }
  out.total_transmissions = session.transmissions();
  return out;
}

}  // namespace uesr::core
