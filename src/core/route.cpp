#include "core/route.h"

#include <algorithm>
#include <stdexcept>

#include "explore/walker.h"

namespace uesr::core {

using explore::ExplorationSequence;
using explore::wrap_port;
using graph::NodeId;
using graph::Port;
using net::Direction;
using net::Header;
using net::Kind;
using net::Status;

namespace {

/// Result of one per-node step, header updated in place.
struct StepOutcome {
  bool terminate = false;
  Status final_status = Status::kInProgress;
  Port out_port = 0;
};

/// The per-node logic of Algorithm Route, shared between the public pure
/// function (symbols via the virtual oracle) and the session driver
/// (symbols via a block-filled window).  Mutates `header` to the header
/// the node attaches when forwarding.
template <typename SymbolAt>
StepOutcome step_node(const NodeView& node, Port in_port, Header& header,
                      std::uint64_t seq_length, SymbolAt&& symbol_at) {
  StepOutcome o;
  if (header.dir == Direction::kForward) {
    // Arrival processing at the head of departure edge d_j, j = index.
    const bool at_target = header.kind == Kind::kRoute &&
                           node.original_name == header.target;
    const bool exhausted = header.index >= seq_length;
    if (at_target || exhausted) {
      // Turn around: resend over the arrival port; index unchanged (the far
      // side will undo step j).  Status records what happened.
      header.dir = Direction::kBackward;
      header.status = at_target ? Status::kSuccess : Status::kFailure;
      o.out_port = in_port;
      return o;
    }
    // Ordinary forward step: consume symbol j+1.
    std::uint64_t next = header.index + 1;
    header.index = next;
    o.out_port = wrap_port(in_port + symbol_at(next), node.degree);
    return o;
  }
  // Backward mode: we are at the tail of departure edge d_j, arrived on the
  // port d_j departed from.  j == 0 means the walk is fully rewound: this
  // node is s and the protocol returns its status.
  if (header.index == 0) {
    o.terminate = true;
    o.final_status = header.status;
    return o;
  }
  // Undo step j: the entry port of step j was (d_j.port - t_j) mod deg.
  std::uint64_t j = header.index;
  explore::Symbol s = symbol_at(j);
  Port t = s < node.degree ? static_cast<Port>(s)
                           : static_cast<Port>(s % node.degree);
  o.out_port = wrap_port(in_port + node.degree - t, node.degree);
  header.index = j - 1;
  return o;
}

}  // namespace

NodeDecision route_node_step(const NodeView& node, Port in_port,
                             const Header& header,
                             const ExplorationSequence& seq) {
  NodeDecision d;
  d.header = header;
  StepOutcome o =
      step_node(node, in_port, d.header, seq.length(),
                [&seq](std::uint64_t j) { return seq.symbol(j); });
  d.terminate = o.terminate;
  d.final_status = o.final_status;
  d.out_port = o.out_port;
  return d;
}

RouteSession::RouteSession(const explore::ReducedGraph& net,
                           const ExplorationSequence& seq, NodeId s,
                           NodeId t)
    : net_(&net), seq_(&seq), seq_length_(seq.length()) {
  const auto n_orig = static_cast<NodeId>(net.first_gadget.size());
  if (s >= n_orig)
    throw std::invalid_argument("RouteSession: source out of range");
  if (t != net::kNoTarget && t >= n_orig)
    throw std::invalid_argument("RouteSession: target out of range");
  header_.kind = t == net::kNoTarget ? Kind::kBroadcast : Kind::kRoute;
  header_.source = s;
  header_.target = t;
  start_gadget_ = net.entry_gadget(s);
  if (net.cubic.is_cubic()) {
    far3_ = net.cubic.far_node_data();
    ports3_ = &net.cubic.far_ports();
  }
  original_of_ = net.original_of.data();
}

NodeId RouteSession::current_original() const {
  return injected_ ? at_original_ : net_->original_of[start_gadget_];
}

void RouteSession::refill_symbols(std::uint64_t j) {
  // Fill ahead of the walk direction so each refill serves a whole run of
  // ascending (forward) or descending (backward) indices.
  constexpr std::uint64_t kWindow = explore::SymbolStream::kBlock;
  std::uint64_t lo, hi;
  if (header_.dir == Direction::kForward) {
    lo = j;
    hi = std::min(seq_length_, j + kWindow - 1);
  } else {
    hi = j;
    lo = j >= kWindow ? j - kWindow + 1 : 1;
  }
  symbuf_.resize(static_cast<std::size_t>(hi - lo + 1));
  seq_->fill(lo, hi - lo + 1, symbuf_.data());
  buf_lo_ = lo;
  buf_len_ = hi - lo + 1;
}

explore::Symbol RouteSession::buffered_symbol(std::uint64_t j) {
  if (j - buf_lo_ >= buf_len_) refill_symbols(j);  // underflow wraps: miss
  return symbuf_[static_cast<std::size_t>(j - buf_lo_)];
}

void RouteSession::step() {
  if (finished_) return;
  const graph::Graph& g = net_->cubic;
  const NodeId* far3 = far3_;
  const util::PackedArray* ports3 = ports3_;
  // Cached-pointer rotation: packed cubic loads when cubic, generic else.
  auto rotate = [&](NodeId v, Port p) {
    if (!far3) return g.rotate(v, p);
    const std::size_t i = 3 * static_cast<std::size_t>(v) + p;
    return graph::HalfEdge{far3[i], static_cast<Port>(ports3->get(i))};
  };
  if (!injected_) {
    // Injection: s sends along d_0 = (start, port 0); consumes no symbol.
    graph::HalfEdge far = rotate(start_gadget_, 0);
    at_ = {far.node, far.port};
    at_original_ = original_of_[at_.node];
    injected_ = true;
    ++transmissions_;
    if (header_.kind == Kind::kRoute && at_original_ == header_.target) {
      target_reached_ = true;
      first_hit_step_ = 0;
    }
    return;
  }
  const bool was_forward = header_.dir == Direction::kForward;
  NodeView view{at_original_, far3 ? Port{3} : g.degree(at_.node)};
  StepOutcome o =
      step_node(view, at_.port, header_, seq_length_,
                [this](std::uint64_t j) { return buffered_symbol(j); });
  if (was_forward && header_.dir == Direction::kBackward) {
    forward_steps_ = header_.index;
    if (header_.status == Status::kSuccess) {
      target_reached_ = true;
      first_hit_step_ = header_.index;
    }
  }
  if (o.terminate) {
    finished_ = true;
    status_ = o.final_status;
    return;
  }
  graph::HalfEdge far = rotate(at_.node, o.out_port);
  at_ = {far.node, far.port};
  at_original_ = original_of_[at_.node];
  ++transmissions_;
  if (header_.dir == Direction::kForward && header_.kind == Kind::kRoute &&
      at_original_ == header_.target && !target_reached_) {
    target_reached_ = true;
    first_hit_step_ = header_.index;
  }
}

UesRouter::UesRouter(const explore::ReducedGraph& net,
                     std::shared_ptr<const ExplorationSequence> seq,
                     std::uint64_t namespace_size)
    : net_(&net), seq_(std::move(seq)), namespace_size_(namespace_size) {
  if (!seq_) throw std::invalid_argument("UesRouter: null sequence");
  if (namespace_size_ < net.first_gadget.size())
    throw std::invalid_argument(
        "UesRouter: namespace smaller than the network");
}

RouteResult UesRouter::route(NodeId s, NodeId t) const {
  const auto n_orig = static_cast<NodeId>(net_->first_gadget.size());
  if (s >= n_orig || t >= n_orig)
    throw std::invalid_argument("UesRouter::route: node out of range");
  RouteResult out;
  out.header_bits =
      net::header_bits(Kind::kRoute, namespace_size_, seq_->length());
  if (s == t) {  // degenerate: nothing to send
    out.delivered = true;
    return out;
  }
  RouteSession session(*net_, *seq_, s, t);
  while (!session.finished()) session.step();
  out.delivered = session.status() == Status::kSuccess;
  out.forward_steps = session.forward_steps();
  out.total_transmissions = session.transmissions();
  out.first_hit_step = session.first_hit_step();
  return out;
}

UesRouter::BroadcastResult UesRouter::broadcast(NodeId s) const {
  const auto n_orig = static_cast<NodeId>(net_->first_gadget.size());
  if (s >= n_orig)
    throw std::invalid_argument("UesRouter::broadcast: node out of range");
  BroadcastResult out;
  out.visited_originals.assign(n_orig, false);
  RouteSession session(*net_, *seq_, s, net::kNoTarget);
  auto visit = [&](NodeId original) {
    if (!out.visited_originals[original]) {
      out.visited_originals[original] = true;
      ++out.distinct_visited;
    }
  };
  visit(s);
  while (!session.finished()) {
    session.step();
    if (!session.finished()) visit(session.current_original());
  }
  out.total_transmissions = session.transmissions();
  return out;
}

}  // namespace uesr::core
