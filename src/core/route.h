// Algorithm Route (paper §3): guaranteed ad hoc routing with stateless
// nodes via a universal exploration sequence.
//
// The algorithm runs on the 3-regular reduction G' of the network graph
// (explore::reduce_to_cubic).  A message injected at s walks G' as dictated
// by T_n; when it reaches (any gadget of) t it flips to backward mode and
// retraces the walk to s using reversibility, carrying status=success.  If
// the sequence is exhausted first, it backtracks with status=failure —
// which, when T_n is universal for |Cs'|, *certifies* that t is not in s's
// component.
//
// Bookkeeping convention (see DESIGN.md §2.4 "Fixes/clarifications"):
//   * header.index = number of sequence symbols consumed so far (j);
//   * forward arrival processing happens at the head of departure edge d_j;
//   * turn-around resends over the arrival port with index unchanged;
//   * a backward message at the tail of d_j with j == 0 has fully rewound —
//     it is at s, and the route returns.  (The paper's "dir=back and v=s"
//     test fires early when the forward walk revisits s; checking j == 0 is
//     the correct form, and reversibility guarantees v == s then.)
//
// The per-node logic is the pure function `route_node_step`; it sees only
// what a real node would: its own name, its degree, the arrival port, the
// header, and the shared symbol oracle.  The session driver feeds it
// through a port-accurate Transport and never lets nodes keep state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/graph.h"
#include "net/message.h"
#include "net/transport.h"

namespace uesr::core {

/// What a node knows about itself when handling a message.  Constructed
/// fresh per arrival; deliberately contains no mutable storage.
struct NodeView {
  graph::NodeId original_name;  ///< its name in the original namespace
  graph::Port degree;           ///< local degree in G' (always 3)
};

/// A node's decision: either forward the message out of a port, or
/// terminate the protocol (only ever happens at the source).
struct NodeDecision {
  bool terminate = false;
  net::Status final_status = net::Status::kInProgress;
  graph::Port out_port = 0;
  net::Header header;  ///< header to attach when forwarding
};

/// The stateless per-node step of Algorithm Route.  `in_port` is the port
/// the message arrived on.  Pure: no side effects, no node state.
NodeDecision route_node_step(const NodeView& node, graph::Port in_port,
                             const net::Header& header,
                             const explore::ExplorationSequence& seq);

struct RouteResult {
  bool delivered = false;       ///< status carried back to s
  bool returned_to_source = true;  ///< the algorithm always terminates at s
  std::uint64_t forward_steps = 0;   ///< symbols consumed walking forward
  std::uint64_t total_transmissions = 0;
  std::uint64_t first_hit_step = 0;  ///< step index at which t was reached
  int header_bits = 0;               ///< exact O(log n) overhead used
};

/// Resumable execution of one Algorithm-Route message: each step() performs
/// exactly one transmission.  This is what lets the Corollary-2 combiner
/// interleave a guaranteed walk with a probabilistic one, transmission by
/// transmission.
class RouteSession {
 public:
  /// Starts a kRoute (or, with t == net::kNoTarget, kBroadcast) session.
  RouteSession(const explore::ReducedGraph& net,
               const explore::ExplorationSequence& seq, graph::NodeId s,
               graph::NodeId t);

  /// Performs one transmission.  No-op once finished().
  void step();

  bool finished() const { return finished_; }
  /// Final status; only meaningful once finished().
  net::Status status() const { return status_; }
  /// True the moment the forward walk first reaches the target (before the
  /// confirmation returns) — the "delivery instant" benches measure.
  bool target_reached() const { return target_reached_; }

  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t forward_steps() const { return forward_steps_; }
  std::uint64_t first_hit_step() const { return first_hit_step_; }

  /// Original name of the node currently holding the message.
  graph::NodeId current_original() const;

 private:
  /// The symbol at index j, served from a block-filled window over the
  /// sequence (one virtual fill() per window instead of one virtual
  /// symbol() per transmission).  Pure pass-through semantically.
  explore::Symbol buffered_symbol(std::uint64_t j);
  void refill_symbols(std::uint64_t j);

  const explore::ReducedGraph* net_;
  const explore::ExplorationSequence* seq_;
  std::uint64_t seq_length_ = 0;  // cached seq_->length()
  // Hot-path caches: the packed cubic rotation arrays (valid only when the
  // reduced graph is cubic — always true for reduce_to_cubic outputs) and
  // the gadget->original projection.  Shaves the per-step pointer chase
  // through net_->cubic / net_->original_of.
  const graph::NodeId* far3_ = nullptr;  // null unless cubic
  const util::PackedArray* ports3_ = nullptr;
  const graph::NodeId* original_of_ = nullptr;
  net::Header header_;
  net::Arrival at_{};          // where the message currently is
  graph::NodeId at_original_ = 0;  // original_of_[at_.node], kept in step
  bool injected_ = false;      // first step() injects d_0
  graph::NodeId start_gadget_ = 0;
  bool finished_ = false;
  bool target_reached_ = false;
  net::Status status_ = net::Status::kInProgress;
  std::uint64_t transmissions_ = 0;
  std::uint64_t forward_steps_ = 0;
  std::uint64_t first_hit_step_ = 0;
  // Symbol window of buf_len_ symbols starting at index buf_lo_ (1-based;
  // empty when buf_len_ == 0).  Filled forward ahead of the walk and
  // backward behind the rewind; j is in the window iff j - buf_lo_ <
  // buf_len_ (one unsigned compare covers both directions).
  std::vector<explore::Symbol> symbuf_;
  std::uint64_t buf_lo_ = 1;
  std::uint64_t buf_len_ = 0;
};

/// The guaranteed router of Theorem 1 over a fixed reduced network.
/// Not copyable state-wise interesting: holds only immutable structure.
class UesRouter {
 public:
  /// `net` and `seq` must describe the same size regime: seq should be
  /// universal (or empirically covering) for graphs of size
  /// >= net.cubic.num_nodes() for the failure certificate to be sound.
  UesRouter(const explore::ReducedGraph& net,
            std::shared_ptr<const explore::ExplorationSequence> seq,
            std::uint64_t namespace_size);

  /// Routes s -> t (original names).  Always terminates; `delivered` tells
  /// whether t was reached (== whether t is connected to s, when the
  /// sequence covers).
  RouteResult route(graph::NodeId s, graph::NodeId t) const;

  /// Broadcast from s: the walk visits every vertex of Cs (when the
  /// sequence covers) and returns to s.  `visited_originals` reports which
  /// original nodes saw the payload — ground truth for tests.
  struct BroadcastResult {
    std::vector<bool> visited_originals;
    std::uint64_t total_transmissions = 0;
    std::uint64_t distinct_visited = 0;
  };
  BroadcastResult broadcast(graph::NodeId s) const;

  const explore::ReducedGraph& network() const { return *net_; }
  const explore::ExplorationSequence& sequence() const { return *seq_; }
  std::uint64_t namespace_size() const { return namespace_size_; }

 private:
  const explore::ReducedGraph* net_;
  std::shared_ptr<const explore::ExplorationSequence> seq_;
  std::uint64_t namespace_size_;
};

}  // namespace uesr::core
