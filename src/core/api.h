// Public façade: everything Theorem 1 promises behind one object.
//
//   uesr::core::AdHocNetwork net(my_graph);
//   auto r = net.route(s, t);          // guaranteed; needs a size bound
//   auto a = net.route_adaptive(s, t); // no prior knowledge at all (§3+§4)
//   auto b = net.broadcast(s);
//   auto c = net.count_component(s);   // CountNodes
//
// AdHocNetwork owns the degree reduction of the input graph and the
// exploration-sequence choices; every operation is deterministic given the
// seed in Options.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/count_nodes.h"
#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::core {

struct Options {
  /// Seed for the pseudorandom T_n family.
  std::uint64_t seed = 0x5eed0001;
  /// Size of the global namespace (for header-bit accounting).  Defaults
  /// to the number of gadget vertices when 0.
  std::uint64_t namespace_size = 0;
  /// Size bound for T_n used by route()/broadcast(); defaults to the full
  /// reduced-graph size (always safe).  route_adaptive() ignores this and
  /// learns the bound with CountNodes.
  std::optional<graph::NodeId> size_bound;
  /// Custom sequence; overrides seed/size_bound when set.
  std::shared_ptr<const explore::ExplorationSequence> sequence;
};

struct AdaptiveRouteResult {
  RouteResult route;
  CountResult census;  ///< the CountNodes run that learned the bound
};

class AdHocNetwork {
 public:
  /// The graph must outlive the network wrapper.
  explicit AdHocNetwork(const graph::Graph& g, Options options = {});

  /// Theorem 1 routing with the configured size bound.
  RouteResult route(graph::NodeId s, graph::NodeId t) const;

  /// Broadcast to s's connected component.
  UesRouter::BroadcastResult broadcast(graph::NodeId s) const;

  /// Algorithm CountNodes (§4).
  CountResult count_component(graph::NodeId s,
                              CountMode mode = CountMode::kFast) const;

  /// Full no-prior-knowledge pipeline: CountNodes learns |Cs'|, then
  /// routes with a sequence sized exactly for it.  A failed route is then
  /// a certificate that t is not in s's component (up to the empirical
  /// universality of the sequence family; see DESIGN.md §3).
  AdaptiveRouteResult route_adaptive(graph::NodeId s, graph::NodeId t,
                                     CountMode mode = CountMode::kFast) const;

  const explore::ReducedGraph& reduced() const { return reduced_; }
  const UesRouter& router() const { return *router_; }
  const Options& options() const { return options_; }

 private:
  const graph::Graph* original_;
  explore::ReducedGraph reduced_;
  Options options_;
  std::shared_ptr<const explore::ExplorationSequence> sequence_;
  std::unique_ptr<UesRouter> router_;
};

}  // namespace uesr::core
