#include "core/dynamic_route.h"

#include <stdexcept>

#include "explore/sequence_cache.h"

namespace uesr::core {

DynamicRouteSession::DynamicRouteSession(
    const net::DynamicTransport& transport, graph::NodeId s, graph::NodeId t,
    DynamicRouteOptions options)
    : transport_(&transport), s_(s), t_(t), options_(options) {
  const graph::NodeId n = transport.dynamic_graph().num_nodes();
  if (s >= n || t >= n)
    throw std::invalid_argument("DynamicRouteSession: node out of range");
  if (s == t) {  // degenerate: nothing to send, whatever the topology does
    finished_ = true;
    delivered_ = true;
    session_epoch_ = completion_epoch_ = transport.epoch();
    return;
  }
  rebuild();
}

void DynamicRouteSession::rebuild() {
  if (inner_) {
    carried_transmissions_ += inner_->transmissions();
    inner_.reset();  // drop pointers into reduced_ before replacing it
  }
  session_epoch_ = transport_->epoch();
  reduced_ = explore::reduce_to_cubic(transport_->snapshot());
  // Concurrent sessions over the same snapshot (and restarts across
  // epochs that revisit a size) share one T_n via the process-wide cache.
  seq_ = explore::cached_standard_ues(
      static_cast<graph::NodeId>(reduced_.cubic.num_nodes()),
      options_.seq_seed);
  inner_.emplace(reduced_, *seq_, s_, t_);
}

void DynamicRouteSession::step() {
  if (finished_) return;
  if (transport_->epoch() != session_epoch_) {
    rebuild();
    ++restarts_;
  }
  inner_->step();
  if (inner_->finished()) {
    finished_ = true;
    delivered_ = inner_->status() == net::Status::kSuccess;
    completion_epoch_ = session_epoch_;
  }
}

std::uint64_t DynamicRouteSession::transmissions() const {
  return carried_transmissions_ + (inner_ ? inner_->transmissions() : 0);
}

}  // namespace uesr::core
