#include "core/multi_walk.h"

#include <algorithm>
#include <stdexcept>

#include "explore/walker.h"

namespace uesr::core {

using explore::Symbol;
using explore::wrap_port;
using graph::NodeId;
using graph::Port;

MultiWalkArena::MultiWalkArena(const explore::ReducedGraph& net,
                               const explore::ExplorationSequence& seq)
    : net_(&net),
      seq_(&seq),
      seq_length_(seq.length()),
      far_(net.cubic.far_node_data()),
      ports_(&net.cubic.far_ports()),
      original_of_(net.original_of.data()) {
  if (!net.cubic.is_cubic())
    throw std::invalid_argument("MultiWalkArena: reduced graph must be cubic");
  symbols_.resize(kBlockLanes * kSymbolWindow);
  win_lo_.resize(kBlockLanes);
  win_len_.assign(kBlockLanes, 0);
}

std::size_t MultiWalkArena::admit(NodeId s, NodeId t) {
  const auto n_orig = static_cast<NodeId>(net_->first_gadget.size());
  if (s >= n_orig)
    throw std::invalid_argument("MultiWalkArena: source out of range");
  if (t >= n_orig)
    throw std::invalid_argument("MultiWalkArena: target out of range");
  if (s == t)
    throw std::invalid_argument(
        "MultiWalkArena: s == t never transmits; handle it at admission");
  const std::size_t w = node_.size();
  node_.push_back(net_->entry_gadget(s));  // pre-injection: start gadget
  port_.push_back(0);
  flags_.push_back(0);
  target_.push_back(t);
  index_.push_back(0);
  tx_.push_back(0);
  return w;
}

NodeId MultiWalkArena::current_original(std::size_t w) const {
  return original_of_[node_[w]];
}

std::size_t MultiWalkArena::walk_state_bytes() const {
  return node_.size() * (sizeof(NodeId) * 2 + 2 + sizeof(std::uint64_t) * 2);
}

Symbol MultiWalkArena::lane_symbol(std::size_t w, std::size_t r,
                                   std::uint64_t j) {
  if (j - win_lo_[r] >= win_len_[r]) {  // underflow wraps: miss
    // Refill ahead of the walk direction, exactly like RouteSession's
    // window (window size never affects symbols — pure pass-through).
    std::uint64_t lo, hi;
    if ((flags_[w] & kBackward) == 0) {
      lo = j;
      hi = std::min(seq_length_, j + kSymbolWindow - 1);
    } else {
      hi = j;
      lo = j >= kSymbolWindow ? j - kSymbolWindow + 1 : 1;
    }
    seq_->fill(lo, hi - lo + 1, symbols_.data() + r * kSymbolWindow);
    win_lo_[r] = lo;
    win_len_[r] = hi - lo + 1;
  }
  return symbols_[r * kSymbolWindow + (j - win_lo_[r])];
}

template <bool kIsBackward>
bool MultiWalkArena::step_lane(std::size_t w, std::size_t r,
                               NodeId* landed) {
  std::uint8_t flags = flags_[w];
  Port out;
  if constexpr (!kIsBackward) {
    if ((flags & kInjected) == 0) {
      // Injection: s sends along d_0 = (start, port 0); consumes no
      // symbol.
      const std::size_t i = 3 * static_cast<std::size_t>(node_[w]);
      const NodeId far = far_[i];
      node_[w] = far;
      port_[w] = static_cast<std::uint8_t>(ports_->get(i));
      flags_[w] = flags | kInjected;
      prefetch_node(far);
      // The target check is the flag sweep's: request the line now so the
      // dependent original_of_ load resolves while other lanes step.
      __builtin_prefetch(original_of_ + far, 0, 1);
      *landed = far;
      return false;
    }
    // Forward arrival processing at the head of departure edge d_j.  The
    // at_target test is the latched flag, not an original_of_ load: the
    // flag sweep that latched it ran the slot the walk LANDED on the
    // target, and a forward walk standing anywhere else has it clear
    // (once set, the very next arrival turns the walk around).
    const bool at_target = (flags & kTargetReached) != 0;
    const bool exhausted = index_[w] >= seq_length_;
    if (at_target || exhausted) {
      // Turn around: resend over the arrival port; index unchanged.
      flags |= kBackward;
      if (at_target) flags |= kSuccess;
      flags_[w] = flags;
      out = port_[w];
    } else {
      const std::uint64_t next = index_[w] + 1;
      index_[w] = next;
      out = wrap_port(port_[w] + lane_symbol(w, r, next), 3);
    }
  } else {
    if (index_[w] == 0) {
      // Fully rewound at s: terminate — a free bookkeeping step.
      flags_[w] = flags | kFinished;
      return false;
    }
    const std::uint64_t j = index_[w];
    const Symbol s = lane_symbol(w, r, j);
    const Port t = s < 3 ? static_cast<Port>(s) : static_cast<Port>(s % 3);
    out = wrap_port(port_[w] + 3 - t, 3);
    index_[w] = j - 1;
  }
  const std::size_t i = 3 * static_cast<std::size_t>(node_[w]) + out;
  const NodeId far = far_[i];
  node_[w] = far;
  port_[w] = static_cast<std::uint8_t>(ports_->get(i));
  prefetch_node(far);
  // flags_ is NOT stored here: the fall-through paths never change it
  // (injection, turn-around, and terminate store at their own sites).
  if (!kIsBackward && (flags & kBackward) == 0) {
    __builtin_prefetch(original_of_ + far, 0, 1);
    *landed = far;
  }
  if constexpr (!kIsBackward) return (flags & kBackward) != 0;
  return true;
}

void MultiWalkArena::step_block(const std::size_t* walks, std::size_t count,
                                std::uint64_t budget) {
  if (budget == 0) return;
  for (std::size_t base = 0; base < count; base += kBlockLanes) {
    const std::size_t lanes = std::min(kBlockLanes, count - base);
    // Lanes live in direction-partitioned lists (scratch-row indices):
    // interleaved directions would make the forward/backward branch
    // effectively random per step, and the mispredicts would dominate the
    // sweep.  Rows are bound to walks for the whole block, so symbol
    // windows survive lane retirements.  Every step consumes exactly one
    // slot (the backward terminate consumes zero and retires its lane),
    // so the slot index doubles as every live lane's spent budget — no
    // per-lane accounting on the hot path.
    std::size_t fwd_a[kBlockLanes];
    std::size_t fwd_b[kBlockLanes];
    std::size_t bwd_a[kBlockLanes];
    std::size_t bwd_b[kBlockLanes];
    std::size_t* fwd = fwd_a;
    std::size_t* bwd = bwd_a;
    std::size_t* fwd_next = fwd_b;
    std::size_t* bwd_next = bwd_b;
    std::size_t nf = 0;
    std::size_t nb = 0;
    for (std::size_t r = 0; r < lanes; ++r) {
      win_len_[r] = 0;  // scratch rows are per-call
      const std::size_t w = walks[base + r];
      if (finished(w)) continue;
      if ((flags_[w] & kBackward) != 0)
        bwd[nb++] = r;
      else
        fwd[nf++] = r;
      prefetch_node(node_[w]);  // warm the first slot's rotation loads
    }
    std::uint64_t slot = 0;
    for (; slot < budget && nf + nb > 0; ++slot) {
      // Step sweep: one transmission slot for each live lane; each step
      // prefetches its landing node's rotation entry for the next slot.
      // Target checks are deferred: a forward lane records where it
      // landed and prefetches original_of_ there, so the flag sweep below
      // never stalls on the load that depends on the rotation load.
      NodeId landed[kBlockLanes];
      std::size_t landed_w[kBlockLanes];
      std::size_t checks = 0;
      std::size_t nf2 = 0;
      std::size_t nb2 = 0;
      for (std::size_t k = 0; k < nf; ++k) {
        const std::size_t r = fwd[k];
        const std::size_t w = walks[base + r];
        NodeId land = kNoCheck;
        const bool turned = step_lane<false>(w, r, &land);
        if (land != kNoCheck) {
          landed[checks] = land;
          landed_w[checks++] = w;
        }
        if (turned)
          bwd_next[nb2++] = r;
        else
          fwd_next[nf2++] = r;
      }
      for (std::size_t k = 0; k < nb; ++k) {
        const std::size_t r = bwd[k];
        const std::size_t w = walks[base + r];
        NodeId land = kNoCheck;
        if (step_lane<true>(w, r, &land)) {
          bwd_next[nb2++] = r;
        } else {
          // The free terminate: the walk finished having spent one slot
          // per prior sweep this call.  A lane whose budget runs out
          // mid-rewind instead leaves the terminate for the next call —
          // exactly the scalar engine-loop semantics (completed_at is
          // unaffected: the terminate uses zero slots).
          tx_[w] += slot;
        }
      }
      std::swap(fwd, fwd_next);
      std::swap(bwd, bwd_next);
      nf = nf2;
      nb = nb2;
      // Flag sweep: latch kTargetReached for every lane that moved onto
      // its target this slot.  This is the ONLY original_of_ read on the
      // stepping path — the next slot's arrival processing consumes the
      // latched flag instead of re-deriving it.
      for (std::size_t c = 0; c < checks; ++c)
        if (original_of_[landed[c]] == target_[landed_w[c]])
          flags_[landed_w[c]] |= kTargetReached;
    }
    // Survivors spent one slot per sweep.
    for (std::size_t k = 0; k < nf; ++k) tx_[walks[base + fwd[k]]] += slot;
    for (std::size_t k = 0; k < nb; ++k) tx_[walks[base + bwd[k]]] += slot;
  }
}

}  // namespace uesr::core
