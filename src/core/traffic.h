// The traffic engine: N concurrent route / broadcast / hybrid sessions
// multiplexed over ONE shared topology on ONE shared transmission clock.
//
// Everything below this layer serves a single message end to end; the
// ROADMAP regime — heavy traffic from many users — is many messages in
// flight at once over the same (possibly churning) network, the setting
// the gossip literature (PAPERS.md) evaluates protocols in.  TrafficEngine
// supplies that regime without touching any per-node protocol logic:
//
//   * Time is slotted.  One clock tick = one transmission slot in which
//     every in-flight session may send one frame (spatially concurrent
//     radio slots; sessions never contend for airtime in this model, they
//     share fate only through the topology).  A session admitted at
//     `admit_at` transmits its k-th frame no earlier than tick
//     admit_at + k - 1; its completion tick is exact.
//   * Sessions are admitted up front (admit()) and stepped round-robin in
//     batched chunks: each round gives every active session up to
//     `batch` transmission slots, fanned out over a util::ThreadPool.
//     Sessions are state-disjoint (each owns its walker; the topology is
//     read-only during a round), per-session randomness is derived from
//     the session id (counter_hash — never a shared stream), and reports
//     are collected in session-id order, so every report is BIT-IDENTICAL
//     for any thread count (the PR 3 convention).
//   * Each session completes with its exact per-session verdict: route
//     sessions deliver or carry the §2.4 failure certificate, broadcasts
//     report their cover, hybrids end with the Corollary-2 verdict
//     (including the `exhausted` no-verdict state the livelock fix
//     introduced).  Static-mode certificates are statements about the one
//     shared graph; dynamic-mode certificates are statements about
//     `completion_epoch` (§2.8), with the usual §3 universality caveat.
//   * Dynamic mode replays a graph::Scenario on the shared clock: the
//     topology advances one scenario epoch every `epoch_period` ticks (up
//     to `max_epochs`, then freezes — so every session terminates).
//     Epochs commit strictly BETWEEN rounds; rounds are clamped to epoch
//     boundaries, so all sessions observe the same epoch for every slot of
//     a round.  Unlike baselines::ChurnRouter (which replays the schedule
//     per attempt for fair per-attempt comparisons), all sessions here
//     live through one shared schedule — the production shape.
//
// Identical exploration sequences are shared, not rebuilt, across
// sessions via explore::SequenceCache (static mode builds one T_n for the
// whole engine; dynamic restarts hit the cache per epoch size).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/hybrid.h"
#include "core/lossy_route.h"
#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/churn.h"
#include "graph/dynamic.h"
#include "graph/graph.h"
#include "net/dynamic_transport.h"

namespace uesr::core {

enum class TrafficKind : std::uint8_t { kRoute, kBroadcast, kHybrid };

/// One admission request.  Pure data, so workload generators
/// (baselines/workload.h) can produce replayable schedules of them.
struct SessionSpec {
  TrafficKind kind = TrafficKind::kRoute;
  graph::NodeId s = 0;
  graph::NodeId t = 0;         ///< ignored for kBroadcast
  std::uint64_t admit_at = 0;  ///< clock tick the session arrives at
  /// kHybrid only: TTL of the probabilistic token (0 = unlimited).
  std::uint64_t hybrid_ttl = 0;
  /// Open-loop departures: 0 = stay until the verdict; otherwise the clock
  /// tick the user gives up and leaves (must be > admit_at).  A session
  /// still in flight at depart_at retires with NO verdict (the report's
  /// `departed` flag) — rounds clamp to departure ticks, so the retirement
  /// instant is exact on the shared clock.
  std::uint64_t depart_at = 0;
};

struct SessionReport {
  TrafficKind kind = TrafficKind::kRoute;
  graph::NodeId s = 0;
  graph::NodeId t = 0;
  bool finished = false;
  bool delivered = false;
  /// Route: a full failed walk completed (certificate; §3 caveat).
  /// Never set for broadcasts or for hybrid exhaustion.
  bool failure_certified = false;
  /// Hybrid only: both sides done without a verdict (see hybrid.h).
  bool exhausted = false;
  /// Open-loop only: the session left at its depart_at tick, still in
  /// flight — finished with no verdict (delivered / failure_certified
  /// both stay false).
  bool departed = false;
  /// Lossy mode only: some hop spent its retry budget and no epoch could
  /// heal it — the graceful no-verdict degradation (never a wrong
  /// certificate; see core/lossy_route.h).
  bool uncertified = false;
  std::uint64_t transmissions = 0;
  std::uint64_t admitted_at = 0;
  /// Clock tick of completion.  Perfect-link lanes complete exactly at
  /// admitted_at + transmissions; lossy lanes may overshoot the round's
  /// slot grant (one reliable hop is atomic and can burn many wire
  /// frames), so their completion tick is airtime-approximate.
  std::uint64_t completed_at = 0;
  /// Broadcast only: distinct original nodes the payload visited.
  std::uint64_t distinct_visited = 0;
  /// Dynamic mode only: epoch restarts and the epoch the verdict is about.
  std::uint64_t restarts = 0;
  std::uint64_t completion_epoch = 0;
  /// Lossy mode only: successful link transfers and ARQ behaviour
  /// (transmissions counts wire frames there, hops the walk length).
  std::uint64_t hops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t virtual_time = 0;  ///< channel virtual time consumed
};

/// Builds the probabilistic token of a kHybrid session.  The seed is
/// derived per session id (counter_hash(walker_seed, id)); the factory
/// must be a pure function of its arguments for reports to stay
/// replayable.  core itself ships no concrete walker (that would invert
/// the layer graph); baselines::random_walk_factory() supplies the
/// standard TTL'd random walk.
using WalkerFactory = std::function<std::unique_ptr<TokenWalker>(
    const graph::Graph& g, graph::NodeId s, graph::NodeId t,
    std::uint64_t ttl, std::uint64_t seed)>;

/// The PR 7 transport-selection seam: when TrafficOptions::lossy is set,
/// every route session runs over its OWN lossy channel + ARQ (state-
/// disjoint per session, seeded counter_hash(net_seed, id) — thread-count
/// invariant by construction) instead of a perfect link.  Session verdicts
/// become per-session LossyVerdicts: delivered / failure-certified /
/// uncertified-after-budget.  In dynamic mode the channel composes with
/// churn (links flap AND drop in one replayable scenario); a session whose
/// budget dies waits for the next epoch and degrades to kUncertified only
/// once the schedule froze.
struct LossyTrafficConfig {
  net::LinkModel link{};            ///< channel model of every link
  net::ReliableOptions reliable{};  ///< stop-and-wait budget / timeouts
  net::WindowOptions window{};      ///< selective-repeat window / budgets
  ArqKind arq = ArqKind::kStopAndWait;
  std::uint64_t net_seed = 0x5eed0007;  ///< per-session channel seeds
  /// P(directed cubic half-edge down), drawn per session (static) or per
  /// (session, epoch) (dynamic) from dedicated streams.  0 disables.
  double one_sided_down = 0.0;
  /// Scripted fault schedule armed into EVERY session's private channel
  /// (crash windows, brownouts, corruption bursts — DESIGN.md §2.12).
  net::FaultPlan faults{};
  /// When set, each session's channel additionally arms a chaos plan
  /// sampled per session id (static) or per (session, epoch) (dynamic)
  /// from counter_hash(chaos_seed, id) — replayable and thread-count
  /// invariant like every other per-session stream.
  std::optional<net::ChaosConfig> chaos{};
  std::uint64_t chaos_seed = 0x5eedc4a0;  ///< chaos sampling randomness
};

/// Pull-based open-loop arrival stream (the ISSUE-9 admission mode): the
/// engine pulls arrivals instead of having them all admitted up front, so
/// Poisson processes can feed long horizons without materializing millions
/// of specs.  next() must yield specs in NONDECREASING admit_at order (the
/// engine throws otherwise).  Each round the engine drains every arrival
/// with admit_at <= clock + batch BEFORE computing the round's slot grant;
/// since a round never advances the clock by more than batch ticks, a
/// pulled admission can never land in the past — and pulled-but-future
/// admissions clamp the round exactly like up-front ones, so reports stay
/// bit-identical to the equivalent admit_all() schedule.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  /// The next arrival, or nullopt when the stream is exhausted (final —
  /// the engine never asks again).
  virtual std::optional<SessionSpec> next() = 0;
};

struct TrafficOptions {
  std::uint64_t seq_seed = 0x5eed0001;  ///< T_n family seed
  /// Hybrid token streams: session id's walker is seeded
  /// counter_hash(walker_seed, id) — thread-count invariant by construction.
  std::uint64_t walker_seed = 0x7a11;
  /// Required to admit kHybrid sessions (admit() throws otherwise).
  WalkerFactory hybrid_walker;
  /// Transmission slots granted per active session per round.  Purely a
  /// scheduling granularity: reports never depend on it, except that in
  /// dynamic mode rounds clamp to epoch boundaries anyway.
  std::uint64_t batch = 64;
  /// Worker lanes (0 = UESR_THREADS env, else hardware).  Data cells are
  /// bit-identical for any value.
  unsigned threads = 1;
  /// Session shards for the static perfect-link route fast path: each
  /// shard owns a disjoint MultiWalkArena (sessions land on shard
  /// id % shards) and rounds step whole shards in parallel, one worker per
  /// shard, with the SoA block kernel.  0 = one shard per worker lane.
  /// Reports are bit-identical for ANY value (sessions are state-disjoint
  /// and the round's slot grant is computed globally), so this is purely a
  /// parallelism/locality knob — DESIGN.md §2.13.
  unsigned shards = 1;
  /// Dynamic mode: clock ticks per scenario epoch (>= 1) and schedule
  /// length; ignored in static mode.
  std::uint64_t epoch_period = 64;
  std::uint64_t max_epochs = 0;
  /// Engaged: run every route session over a lossy channel + ARQ (route
  /// sessions only; admit() throws for broadcast/hybrid in lossy mode).
  std::optional<LossyTrafficConfig> lossy;
};

class TrafficEngine {
 public:
  /// Static mode: all sessions share `g` (which must outlive the engine),
  /// one degree reduction, and one cached T_n sized for it.
  explicit TrafficEngine(const graph::Graph& g, TrafficOptions options = {});

  /// Dynamic mode: the engine owns a fresh replay of `scenario` and
  /// advances it on the shared clock.  Route sessions only (broadcast and
  /// hybrid semantics are not defined under epoch restarts; admit()
  /// throws for them).
  TrafficEngine(const graph::Scenario& scenario, TrafficOptions options);

  ~TrafficEngine();
  TrafficEngine(const TrafficEngine&) = delete;
  TrafficEngine& operator=(const TrafficEngine&) = delete;

  /// Admits one session; returns its id (dense, in admission order).
  /// `admit_at` must be >= clock() (no admissions into the past).
  std::size_t admit(const SessionSpec& spec);
  void admit_all(const std::vector<SessionSpec>& specs);

  /// Open-loop mode: the engine pulls arrivals from `source` (which must
  /// outlive the engine) as the clock reaches them; run() drains the
  /// stream.  Composes with admit()/admit_all() — pulled arrivals are
  /// ordinary admissions.
  void attach_arrivals(ArrivalSource& source);

  /// Runs one scheduling round: activates arrivals, grants every active
  /// session up to `batch` slots (in parallel), advances the clock and —
  /// in dynamic mode — the scenario.  When no session is active the clock
  /// fast-forwards to the next arrival.  Returns the number of admitted
  /// sessions not yet finished.
  std::size_t run_round();

  /// Rounds until every admitted session finished and any attached
  /// arrival stream is drained.
  void run();

  struct Lane;   ///< per-session stepper (defined in traffic.cpp)
  struct Shard;  ///< arena shard of the route fast path (traffic.cpp)

  std::uint64_t clock() const { return clock_; }
  /// Dynamic mode: the committed epoch of the shared topology (0 static).
  std::uint64_t epoch() const;
  bool dynamic() const { return transport_ != nullptr; }

  std::size_t session_count() const { return reports_.size(); }
  std::size_t unfinished_count() const { return unfinished_; }
  const SessionReport& report(std::size_t id) const;
  /// All reports, indexed by session id (finished flag says which are
  /// complete); bit-identical for any thread count once run() returned.
  const std::vector<SessionReport>& reports() const { return reports_; }

 private:
  void activate_arrivals();
  /// Open-loop: drains every attached-stream arrival due within this
  /// round's reach (admit_at <= clock + batch) into ordinary admissions.
  void pull_arrivals();
  /// Serially retires active sessions whose depart_at tick has come.
  void process_departures();
  /// Clock ticks until the next scenario epoch (dynamic), or forever.
  std::uint64_t ticks_to_epoch() const;
  void advance_epochs_to(std::uint64_t tick);

  TrafficOptions options_;

  // Static mode: the shared network; one reduction + one shared sequence.
  const graph::Graph* graph_ = nullptr;
  explore::ReducedGraph reduced_;
  std::shared_ptr<const explore::ExplorationSequence> seq_;

  // Dynamic mode: an owned scenario replay on the shared clock.
  std::unique_ptr<graph::Scenario> scenario_;
  std::unique_ptr<graph::DynamicGraph> dynamic_graph_;
  std::unique_ptr<net::DynamicTransport> transport_;
  std::uint64_t epochs_done_ = 0;
  std::uint64_t next_epoch_tick_ = 0;

  std::uint64_t clock_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< indexed by session id
  std::vector<SessionReport> reports_;        ///< indexed by session id
  std::vector<SessionSpec> specs_;            ///< indexed by session id
  /// Route fast path: session shards, each owning a disjoint SoA arena
  /// (static perfect-link mode only; empty otherwise).  arena_walk_[id] is
  /// the session's walk index inside its shard (id % shards_.size()).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::size_t> arena_walk_;
  std::size_t arena_active_ = 0;  ///< walks in flight across all shards
  /// Open-loop stream state: the attached source, its staged (pulled but
  /// not yet due) head, and whether next() returned its final nullopt.
  ArrivalSource* arrivals_ = nullptr;
  std::optional<SessionSpec> staged_arrival_;
  bool arrivals_done_ = true;
  bool any_departures_ = false;  ///< skip departure scans when none exist
  /// Ids of admitted-not-yet-activated sessions, in admission order (NOT
  /// sorted by admit_at): activation and the round-length clamp scan the
  /// whole list each round, and lanes are built in ascending id order
  /// among the due ids, so activation stays deterministic.
  std::vector<std::size_t> pending_;
  std::vector<std::size_t> active_;  ///< ids being stepped, ascending
  std::size_t unfinished_ = 0;
  struct PoolHolder;  ///< hides util/parallel.h from this header
  std::unique_ptr<PoolHolder> pool_;
};

}  // namespace uesr::core
