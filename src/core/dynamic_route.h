// Algorithm Route over a changing topology (the paper's actual setting:
// "networks with frequently changing topology", §1).
//
// The static RouteSession walks one fixed reduced graph; under churn the
// graph moves while the message is in flight, and every piece of the §2.4
// bookkeeping — the departure-edge indices, the reversal rule, the failure
// certificate — is stated relative to ONE topology.  The dynamic driver
// therefore treats the epoch stamp of net::DynamicTransport as part of the
// walk's validity: before every transmission it compares the transport's
// epoch() with the epoch its current walk started in, and on any change it
// RESTARTS — rebuilds the degree reduction and a T_n sized for the new
// snapshot and re-injects at s (the stateless model makes restarts free:
// no node has anything to forget).  Consequently every completed walk ran
// entirely within a single epoch, which is what keeps the §2.4 semantics
// exact:
//
//   * delivered            — the forward walk reached t and the backward
//                            confirmation returned to s, all against one
//                            epoch's topology;
//   * failure_certified    — a full walk exhausted its sequence within one
//                            epoch: t was provably not in s's component AT
//                            completion_epoch() (the usual empirical-
//                            universality caveat of DESIGN.md §3 applies).
//                            The certificate says nothing about later
//                            epochs — links may come back.
//
// Termination: the session finishes as soon as the topology holds still
// long enough for one full walk (in particular always, once a finite
// schedule ends); a topology that changes forever faster than walks
// complete can starve the message forever, which is a property of the
// network, not the algorithm — the churn bench measures exactly this edge.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "net/dynamic_transport.h"

namespace uesr::core {

struct DynamicRouteOptions {
  /// Seed of the per-epoch T_n family (each restart sizes a fresh sequence
  /// for the new snapshot's reduction).
  std::uint64_t seq_seed = 0x5eed0001;
};

/// Resumable dynamic routing: each step() performs at most one transmission
/// against the transport's current epoch, restarting transparently when the
/// epoch moved since the previous step.
class DynamicRouteSession {
 public:
  DynamicRouteSession(const net::DynamicTransport& transport,
                      graph::NodeId s, graph::NodeId t,
                      DynamicRouteOptions options = {});

  /// One transmission (or the free terminate step that ends a walk).
  /// No-op once finished().
  void step();

  bool finished() const { return finished_; }
  bool delivered() const { return delivered_; }
  /// Certified: a full failed walk completed within completion_epoch().
  bool failure_certified() const { return finished_ && !delivered_; }

  /// Transmissions across all restarts (discarded walks included — they
  /// were really sent).
  std::uint64_t transmissions() const;
  /// Epoch-change restarts performed so far.
  std::uint64_t restarts() const { return restarts_; }
  /// Epoch the in-flight (or final) walk runs in.
  std::uint64_t session_epoch() const { return session_epoch_; }
  /// Epoch the verdict is about; meaningful once finished().
  std::uint64_t completion_epoch() const { return completion_epoch_; }

 private:
  void rebuild();

  const net::DynamicTransport* transport_;
  graph::NodeId s_, t_;
  DynamicRouteOptions options_;
  explore::ReducedGraph reduced_;
  std::shared_ptr<const explore::ExplorationSequence> seq_;
  std::optional<RouteSession> inner_;
  std::uint64_t session_epoch_ = 0;
  std::uint64_t carried_transmissions_ = 0;  ///< from discarded walks
  std::uint64_t restarts_ = 0;
  bool finished_ = false;
  bool delivered_ = false;
  std::uint64_t completion_epoch_ = 0;
};

}  // namespace uesr::core
