#include "core/hybrid.h"

namespace uesr::core {

HybridResult route_hybrid(TokenWalker& probabilistic,
                          RouteSession& guaranteed) {
  HybridResult res;
  for (;;) {
    if (probabilistic.delivered()) {  // covers pre-delivered (s == t)
      res.delivered = true;
      res.winner = HybridWinner::kProbabilistic;
      break;
    }
    if (!probabilistic.exhausted()) {
      probabilistic.step();
      if (probabilistic.delivered()) {
        res.delivered = true;
        res.winner = HybridWinner::kProbabilistic;
        break;
      }
    }
    if (!guaranteed.finished()) {
      guaranteed.step();
      if (guaranteed.target_reached()) {
        res.delivered = true;
        res.winner = HybridWinner::kGuaranteed;
        break;
      }
      if (guaranteed.finished()) {
        // Finished without reaching t: failure certificate.
        res.certified_unreachable = true;
        res.winner = HybridWinner::kCertifiedFailure;
        break;
      }
    }
  }
  res.probabilistic_transmissions = probabilistic.transmissions();
  res.guaranteed_transmissions = guaranteed.transmissions();
  res.total_transmissions =
      res.probabilistic_transmissions + res.guaranteed_transmissions;
  return res;
}

}  // namespace uesr::core
