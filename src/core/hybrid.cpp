#include "core/hybrid.h"

namespace uesr::core {

HybridSession::HybridSession(TokenWalker& probabilistic,
                             RouteSession& guaranteed)
    : probabilistic_(&probabilistic), guaranteed_(&guaranteed) {}

void HybridSession::finish(HybridWinner winner) {
  finished_ = true;
  result_.winner = winner;
  result_.delivered = winner == HybridWinner::kProbabilistic ||
                      winner == HybridWinner::kGuaranteed;
  result_.certified_unreachable = winner == HybridWinner::kCertifiedFailure;
  result_.exhausted = winner == HybridWinner::kExhausted;
  result_.probabilistic_transmissions = probabilistic_->transmissions();
  result_.guaranteed_transmissions = guaranteed_->transmissions();
  result_.total_transmissions =
      result_.probabilistic_transmissions + result_.guaranteed_transmissions;
}

void HybridSession::step() {
  if (finished_) return;
  // Free decision checks: a side that already decided costs nothing.
  if (probabilistic_->delivered())
    return finish(HybridWinner::kProbabilistic);
  if (guaranteed_->target_reached()) return finish(HybridWinner::kGuaranteed);
  const bool prob_done = probabilistic_->exhausted();
  const bool guar_done = guaranteed_->finished();
  if (prob_done && guar_done) {
    // Both immovable, nothing delivered.  guar_done here implies the
    // session was finished before we ever stepped it (a finish under our
    // stepping ends the protocol at that step), so there is no fresh
    // certificate — this is the state the old for(;;) livelocked in.
    return finish(HybridWinner::kExhausted);
  }
  // 1:1 interleave; a side that cannot move forfeits its turn for free.
  if (turn_ == Side::kProbabilistic && prob_done)
    turn_ = Side::kGuaranteed;
  else if (turn_ == Side::kGuaranteed && guar_done)
    turn_ = Side::kProbabilistic;
  if (turn_ == Side::kProbabilistic) {
    turn_ = Side::kGuaranteed;
    probabilistic_->step();
    if (probabilistic_->delivered()) finish(HybridWinner::kProbabilistic);
  } else {
    turn_ = Side::kProbabilistic;
    guaranteed_->step();
    if (guaranteed_->target_reached()) {
      finish(HybridWinner::kGuaranteed);
    } else if (guaranteed_->finished()) {
      // Finished without reaching t under our own stepping: a full walk
      // exhausted its sequence — the failure certificate.
      finish(HybridWinner::kCertifiedFailure);
    }
  }
}

HybridResult route_hybrid(TokenWalker& probabilistic,
                          RouteSession& guaranteed) {
  HybridSession session(probabilistic, guaranteed);
  while (!session.finished()) session.step();
  return session.result();
}

}  // namespace uesr::core
