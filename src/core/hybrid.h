// The Corollary-2 combiner: run a fast probabilistic router in parallel
// with the guaranteed UES router and stop as soon as either decides.
//
// The paper's observation: if a probabilistic algorithm delivers in
// expected time T(n) with failure probability n^{-omega(1)}, interleaving
// it 1:1 with the guaranteed walker yields expected time O(T(n)) — at most
// a factor-2 slowdown plus a vanishing correction — while inheriting the
// guarantee: if t is unreachable, the UES walker eventually returns with a
// *certified* failure, so the combined algorithm always terminates.
//
// The probabilistic side is abstracted as a TokenWalker so any baseline
// (random walk, greedy, whatever) can plug in; baselines/ provides
// implementations.
#pragma once

#include <cstdint>

#include "core/route.h"

namespace uesr::core {

/// One message walking the network, advanced one transmission at a time.
class TokenWalker {
 public:
  virtual ~TokenWalker() = default;
  virtual void step() = 0;                 ///< one transmission
  virtual bool delivered() const = 0;      ///< has it reached the target?
  virtual bool exhausted() const = 0;      ///< gave up (TTL etc.)
  virtual std::uint64_t transmissions() const = 0;
};

enum class HybridWinner { kProbabilistic, kGuaranteed, kCertifiedFailure };

struct HybridResult {
  bool delivered = false;
  /// True only when the UES walker finished with a failure certificate:
  /// t is provably not in s's component (given a covering sequence).
  bool certified_unreachable = false;
  HybridWinner winner = HybridWinner::kCertifiedFailure;
  std::uint64_t probabilistic_transmissions = 0;
  std::uint64_t guaranteed_transmissions = 0;
  std::uint64_t total_transmissions = 0;
};

/// Alternates probabilistic and guaranteed transmissions until the first
/// of: the probabilistic token delivers; the guaranteed walk reaches t;
/// the guaranteed walk terminates with a failure certificate.  A token
/// that exhausts (TTL) simply stops being stepped — the guarantee side
/// still terminates the protocol.
HybridResult route_hybrid(TokenWalker& probabilistic,
                          RouteSession& guaranteed);

}  // namespace uesr::core
