// The Corollary-2 combiner: run a fast probabilistic router in parallel
// with the guaranteed UES router and stop as soon as either decides.
//
// The paper's observation: if a probabilistic algorithm delivers in
// expected time T(n) with failure probability n^{-omega(1)}, interleaving
// it 1:1 with the guaranteed walker yields expected time O(T(n)) — at most
// a factor-2 slowdown plus a vanishing correction — while inheriting the
// guarantee: if t is unreachable, the UES walker eventually returns with a
// *certified* failure, so the combined algorithm always terminates.
//
// The probabilistic side is abstracted as a TokenWalker so any baseline
// (random walk, greedy, whatever) can plug in; baselines/ provides
// implementations.
#pragma once

#include <cstdint>

#include "core/route.h"

namespace uesr::core {

/// One message walking the network, advanced one transmission at a time.
class TokenWalker {
 public:
  virtual ~TokenWalker() = default;
  virtual void step() = 0;                 ///< one transmission
  virtual bool delivered() const = 0;      ///< has it reached the target?
  virtual bool exhausted() const = 0;      ///< gave up (TTL etc.)
  virtual std::uint64_t transmissions() const = 0;
};

enum class HybridWinner {
  kProbabilistic,
  kGuaranteed,
  kCertifiedFailure,
  /// Neither side decided: the token exhausted and the guaranteed session
  /// was already finished when the combiner took over, so no walk the
  /// combiner itself drove produced a verdict.
  kExhausted,
};

struct HybridResult {
  bool delivered = false;
  /// True only when the UES walker finished with a failure certificate:
  /// t is provably not in s's component (given a covering sequence).
  bool certified_unreachable = false;
  /// True when the protocol terminated with neither a delivery nor a
  /// certificate: both walkers were done (token exhausted, guaranteed
  /// session already finished on entry) without deciding.  A stale
  /// pre-finished session proves nothing about this run, so the honest
  /// report is "gave up", exactly like a TTL expiry.
  bool exhausted = false;
  HybridWinner winner = HybridWinner::kCertifiedFailure;
  std::uint64_t probabilistic_transmissions = 0;
  std::uint64_t guaranteed_transmissions = 0;
  std::uint64_t total_transmissions = 0;
};

/// Resumable execution of the Corollary-2 interleave: each step() advances
/// the protocol by (at most) one transmission, alternating sides, so a
/// scheduler multiplexing many sessions (core::TrafficEngine) can drive
/// hybrids on the same per-transmission clock as everything else.
///
/// Termination is unconditional, including for sessions handed over in a
/// terminal state: a finished guaranteed session is never stepped, an
/// exhausted token is never stepped, and once *both* sides are immovable
/// without a delivery the session finishes with `exhausted` set (winner
/// kExhausted) instead of spinning.  A guaranteed session that finishes
/// under our own stepping still yields the usual certified failure; one
/// that was already finished (and undelivered) on entry is stale — it
/// certifies nothing about this run.
class HybridSession {
 public:
  /// Both sessions must outlive this object.
  HybridSession(TokenWalker& probabilistic, RouteSession& guaranteed);

  /// One transmission slot (a few bookkeeping-only decisions are free).
  /// No-op once finished().
  void step();

  bool finished() const { return finished_; }

  /// The verdict; meaningful once finished().
  const HybridResult& result() const { return result_; }

 private:
  enum class Side : std::uint8_t { kProbabilistic, kGuaranteed };

  void finish(HybridWinner winner);

  TokenWalker* probabilistic_;
  RouteSession* guaranteed_;
  Side turn_ = Side::kProbabilistic;
  bool finished_ = false;
  HybridResult result_;
};

/// Alternates probabilistic and guaranteed transmissions until the first
/// of: the probabilistic token delivers; the guaranteed walk reaches t;
/// the guaranteed walk terminates with a failure certificate; or both
/// walkers are done without delivery (token exhausted + guaranteed session
/// already finished), in which case the result is `exhausted` and
/// uncertified.  Equivalent to driving a HybridSession to completion.
HybridResult route_hybrid(TokenWalker& probabilistic,
                          RouteSession& guaranteed);

}  // namespace uesr::core
