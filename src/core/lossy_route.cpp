#include "core/lossy_route.h"

#include <stdexcept>

namespace uesr::core {

using graph::NodeId;
using net::Direction;
using net::Kind;
using net::Status;

LossyRouteSession::LossyRouteSession(const explore::ReducedGraph& net,
                                     const explore::ExplorationSequence& seq,
                                     NodeId s, NodeId t,
                                     LossyRouteOptions options)
    : net_(&net),
      seq_(&seq),
      transport_(net.cubic, options.net_seed, options.link, options.reliable) {
  const auto n_orig = static_cast<NodeId>(net.first_gadget.size());
  if (s >= n_orig)
    throw std::invalid_argument("LossyRouteSession: source out of range");
  if (t != net::kNoTarget && t >= n_orig)
    throw std::invalid_argument("LossyRouteSession: target out of range");
  header_.kind = t == net::kNoTarget ? Kind::kBroadcast : Kind::kRoute;
  header_.source = s;
  header_.target = t;
  start_gadget_ = net.entry_gadget(s);
}

void LossyRouteSession::step() {
  if (finished()) return;
  if (!injected_) {
    // Injection: s sends along d_0 = (start, port 0); consumes no symbol.
    net::ReliableOutcome out = transport_.send(start_gadget_, 0);
    if (!out.delivered) {
      verdict_ = LossyVerdict::kUncertified;
      return;
    }
    at_ = out.arrival;
    injected_ = true;
    ++hops_;
    if (header_.kind == Kind::kRoute &&
        net_->original_of[at_.node] == header_.target)
      target_reached_ = true;
    return;
  }
  const NodeView view{net_->original_of[at_.node],
                      net_->cubic.degree(at_.node)};
  NodeDecision d = route_node_step(view, at_.port, header_, *seq_);
  header_ = d.header;
  if (d.terminate) {
    verdict_ = d.final_status == Status::kSuccess
                   ? LossyVerdict::kDelivered
                   : LossyVerdict::kFailureCertified;
    return;
  }
  net::ReliableOutcome out = transport_.send(at_.node, d.out_port);
  if (!out.delivered) {
    // Retry budget spent mid-walk: the chain of custody is broken and the
    // session asserts nothing (see header comment — the data or its ack
    // may be the lost half).
    verdict_ = LossyVerdict::kUncertified;
    return;
  }
  at_ = out.arrival;
  ++hops_;
  if (header_.dir == Direction::kForward && header_.kind == Kind::kRoute &&
      net_->original_of[at_.node] == header_.target)
    target_reached_ = true;
}

LossyVerdict LossyRouteSession::run() {
  while (!finished()) step();
  return verdict_;
}

}  // namespace uesr::core
