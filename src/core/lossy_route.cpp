#include "core/lossy_route.h"

#include <stdexcept>

#include "explore/sequence_cache.h"
#include "util/rng.h"

namespace uesr::core {

using graph::NodeId;
using graph::Port;
using net::Direction;
using net::Kind;
using net::Status;

namespace {

/// Fold one stop-and-wait outcome into the session stats.
void fold(ArqStats& s, const net::ReliableOutcome& out) {
  s.retransmits += out.retransmits;
  s.backoffs += out.backoffs;
  s.rtt_samples += out.rtt_samples;
}

void fold(ArqStats& s, const net::WindowOutcome& out) {
  s.retransmits += out.retransmits;
  s.backoffs += out.backoffs;
  s.rtt_samples += out.rtt_samples;
}

}  // namespace

LossyRouteSession::LossyRouteSession(const explore::ReducedGraph& net,
                                     const explore::ExplorationSequence& seq,
                                     NodeId s, NodeId t,
                                     LossyRouteOptions options)
    : net_(&net), seq_(&seq), options_(options) {
  const auto n_orig = static_cast<NodeId>(net.first_gadget.size());
  if (s >= n_orig)
    throw std::invalid_argument("LossyRouteSession: source out of range");
  if (t != net::kNoTarget && t >= n_orig)
    throw std::invalid_argument("LossyRouteSession: target out of range");
  if (options_.arq == ArqKind::kStopAndWait)
    sw_.emplace(net.cubic, options_.net_seed, options_.link,
                options_.reliable);
  else
    sr_.emplace(net.cubic, options_.net_seed, options_.link, options_.window);
  // Arm the fault schedule before any frame moves: every entry lands at
  // its exact plan time, interleaved with the walk's transfers.
  options_.faults.arm(sw_ ? sw_->sim() : sr_->sim());
  header_.kind = t == net::kNoTarget ? Kind::kBroadcast : Kind::kRoute;
  header_.source = s;
  header_.target = t;
  start_gadget_ = net.entry_gadget(s);
}

net::ReliableTransport& LossyRouteSession::transport() {
  if (!sw_)
    throw std::logic_error(
        "LossyRouteSession::transport: session runs selective repeat");
  return *sw_;
}

const net::ReliableTransport& LossyRouteSession::transport() const {
  if (!sw_)
    throw std::logic_error(
        "LossyRouteSession::transport: session runs selective repeat");
  return *sw_;
}

net::WindowTransport& LossyRouteSession::window_transport() {
  if (!sr_)
    throw std::logic_error(
        "LossyRouteSession::window_transport: session runs stop-and-wait");
  return *sr_;
}

net::EventSim& LossyRouteSession::sim() {
  return sw_ ? sw_->sim() : sr_->sim();
}

std::uint64_t LossyRouteSession::wire_frames() const {
  return sw_ ? sw_->frames() : sr_->frames();
}

ArqStats LossyRouteSession::arq_stats() const {
  ArqStats s = stats_;
  const net::RtoEstimator& est = sw_ ? sw_->estimator() : sr_->estimator();
  s.srtt = est.srtt();
  s.rto = est.rto();
  s.virtual_time = sw_ ? sw_->sim().now() : sr_->sim().now();
  return s;
}

net::Arrival LossyRouteSession::reliable_hop(NodeId from, Port out_port,
                                             bool& ok) {
  if (sw_) {
    const net::ReliableOutcome out = sw_->send(from, out_port);
    fold(stats_, out);
    ok = out.delivered;
    return out.arrival;
  }
  const net::WindowOutcome out = sr_->send(from, out_port);
  fold(stats_, out);
  ok = out.delivered;
  return out.arrival;
}

void LossyRouteSession::step() {
  if (finished()) return;
  bool ok = false;
  if (!injected_) {
    // Injection: s sends along d_0 = (start, port 0); consumes no symbol.
    const net::Arrival arr = reliable_hop(start_gadget_, 0, ok);
    if (!ok) {
      verdict_ = LossyVerdict::kUncertified;
      return;
    }
    at_ = arr;
    injected_ = true;
    ++hops_;
    if (header_.kind == Kind::kRoute &&
        net_->original_of[at_.node] == header_.target)
      target_reached_ = true;
    return;
  }
  const NodeView view{net_->original_of[at_.node],
                      net_->cubic.degree(at_.node)};
  NodeDecision d = route_node_step(view, at_.port, header_, *seq_);
  header_ = d.header;
  if (d.terminate) {
    verdict_ = d.final_status == Status::kSuccess
                   ? LossyVerdict::kDelivered
                   : LossyVerdict::kFailureCertified;
    return;
  }
  const net::Arrival arr = reliable_hop(at_.node, d.out_port, ok);
  if (!ok) {
    // Retry budget spent mid-walk: the chain of custody is broken and the
    // session asserts nothing (see header comment — the data or its ack
    // may be the lost half).
    verdict_ = LossyVerdict::kUncertified;
    return;
  }
  at_ = arr;
  ++hops_;
  if (header_.dir == Direction::kForward && header_.kind == Kind::kRoute &&
      net_->original_of[at_.node] == header_.target)
    target_reached_ = true;
}

LossyVerdict LossyRouteSession::run() {
  while (!finished()) step();
  return verdict_;
}

// ---------------------------------------------------------------------------
// Composed loss + churn.
// ---------------------------------------------------------------------------

/// One epoch's network: the snapshot's reduction, its T_n, and a fresh
/// channel.  Transports point into `reduced`, so the whole bundle lives
/// and dies together (declaration order puts `reduced` first: transports
/// are destroyed before the graph they reference).
struct LossyDynamicRouteSession::Epoch {
  explore::ReducedGraph reduced;
  std::shared_ptr<const explore::ExplorationSequence> seq;
  std::optional<net::ReliableTransport> sw;
  std::optional<net::WindowTransport> sr;

  net::EventSim& sim() { return sw ? sw->sim() : sr->sim(); }
  std::uint64_t frames() const { return sw ? sw->frames() : sr->frames(); }
  const net::RtoEstimator& estimator() const {
    return sw ? sw->estimator() : sr->estimator();
  }
};

LossyDynamicRouteSession::LossyDynamicRouteSession(
    const graph::DynamicGraph& g, NodeId s, NodeId t,
    LossyDynamicOptions options)
    : graph_(&g), s_(s), t_(t), options_(options) {
  const NodeId n = g.num_nodes();
  if (s >= n || t >= n)
    throw std::invalid_argument(
        "LossyDynamicRouteSession: node out of range");
  if (s == t) {  // degenerate: nothing to send, whatever the channel does
    verdict_ = LossyVerdict::kDelivered;
    session_epoch_ = completion_epoch_ = g.epoch();
    return;
  }
  rebuild();
}

LossyDynamicRouteSession::~LossyDynamicRouteSession() = default;

void LossyDynamicRouteSession::rebuild() {
  if (epoch_) {
    // The discarded epoch's frames and retries were really spent.
    carried_frames_ += epoch_->frames();
    carried_stats_.virtual_time += epoch_->sim().now();
    epoch_.reset();
    ++restarts_;
  }
  session_epoch_ = graph_->epoch();
  auto e = std::make_unique<Epoch>();
  e->reduced = explore::reduce_to_cubic(graph_->snapshot());
  e->seq = explore::cached_standard_ues(
      std::max<NodeId>(static_cast<NodeId>(e->reduced.cubic.num_nodes()), 1),
      options_.seq_seed);
  // Epoch e's channel is a pure function of (net_seed, e): same scenario,
  // same seeds, same schedule — the replayability contract under churn.
  const std::uint64_t channel_seed =
      util::counter_hash(options_.net_seed, session_epoch_);
  if (options_.arq == ArqKind::kStopAndWait)
    e->sw.emplace(e->reduced.cubic, channel_seed, options_.link,
                  options_.reliable);
  else
    e->sr.emplace(e->reduced.cubic, channel_seed, options_.link,
                  options_.window);
  {
    // Per-epoch chaos: the scripted plan re-arms fresh (plan times are in
    // per-epoch virtual time — each epoch owns a new channel at t = 0),
    // and the sampled plan is a pure function of (epoch cubic, config,
    // counter_hash(chaos_seed, epoch)) — replayable composition of churn,
    // loss, and faults.
    net::EventSim& sim = e->sw ? e->sw->sim() : e->sr->sim();
    options_.faults.fresh().arm(sim);
    if (options_.chaos)
      net::FaultPlan::sample(
          e->reduced.cubic, *options_.chaos,
          util::counter_hash(options_.chaos_seed, session_epoch_))
          .arm(sim);
  }
  if (options_.one_sided_down > 0.0) {
    // One-sided direction kills, re-drawn per epoch from their own stream
    // (never the channel's — the draws must not perturb frame schedules).
    util::Pcg32 flips(
        util::counter_hash(options_.net_seed ^ 0x1e51dedu, session_epoch_));
    const graph::Graph& cubic = e->reduced.cubic;
    net::EventSim& sim = e->sw ? e->sw->sim() : e->sr->sim();
    for (NodeId v = 0; v < cubic.num_nodes(); ++v)
      for (Port q = 0; q < cubic.degree(v); ++q)
        if (flips.next_double() < options_.one_sided_down)
          sim.set_link_up(v, q, false);
  }
  epoch_ = std::move(e);
  // Restart the walk from scratch (stateless nodes make restarts free).
  header_ = net::Header{};
  header_.kind = Kind::kRoute;
  header_.source = s_;
  header_.target = t_;
  start_gadget_ = epoch_->reduced.entry_gadget(s_);
  injected_ = false;
  blocked_ = false;
}

net::Arrival LossyDynamicRouteSession::reliable_hop(NodeId from,
                                                    Port out_port, bool& ok) {
  if (epoch_->sw) {
    const net::ReliableOutcome out = epoch_->sw->send(from, out_port);
    fold(carried_stats_, out);
    ok = out.delivered;
    return out.arrival;
  }
  const net::WindowOutcome out = epoch_->sr->send(from, out_port);
  fold(carried_stats_, out);
  ok = out.delivered;
  return out.arrival;
}

void LossyDynamicRouteSession::step() {
  if (finished()) return;
  if (graph_->epoch() != session_epoch_) rebuild();
  if (blocked_) return;  // same epoch, spent budget: wait for the topology
  bool ok = false;
  if (!injected_) {
    const net::Arrival arr = reliable_hop(start_gadget_, 0, ok);
    if (!ok) {
      blocked_ = true;
      return;
    }
    at_ = arr;
    injected_ = true;
    ++hops_;
    return;
  }
  const NodeView view{epoch_->reduced.original_of[at_.node],
                      epoch_->reduced.cubic.degree(at_.node)};
  NodeDecision d = route_node_step(view, at_.port, header_, *epoch_->seq);
  header_ = d.header;
  if (d.terminate) {
    verdict_ = d.final_status == Status::kSuccess
                   ? LossyVerdict::kDelivered
                   : LossyVerdict::kFailureCertified;
    completion_epoch_ = session_epoch_;
    return;
  }
  const net::Arrival arr = reliable_hop(at_.node, d.out_port, ok);
  if (!ok) {
    // Unlike the static session, a spent budget is not the end under
    // churn: the epoch may heal the link.  Sleep until then.
    blocked_ = true;
    return;
  }
  at_ = arr;
  ++hops_;
}

void LossyDynamicRouteSession::give_up() {
  if (finished() || !blocked_) return;
  verdict_ = LossyVerdict::kUncertified;
  completion_epoch_ = session_epoch_;
}

std::uint64_t LossyDynamicRouteSession::wire_frames() const {
  return carried_frames_ + (epoch_ ? epoch_->frames() : 0);
}

ArqStats LossyDynamicRouteSession::arq_stats() const {
  ArqStats s = carried_stats_;
  if (epoch_) {
    s.srtt = epoch_->estimator().srtt();
    s.rto = epoch_->estimator().rto();
    s.virtual_time += epoch_->sw ? epoch_->sw->sim().now()
                                 : epoch_->sr->sim().now();
  }
  return s;
}

}  // namespace uesr::core
