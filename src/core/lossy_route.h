// Algorithm Route over an asynchronous lossy channel — and exactly what
// its certificates still mean there (DESIGN.md §2.10).
//
// The per-node logic is untouched: LossyRouteSession drives the same pure
// `route_node_step` as the perfect-link RouteSession, but every hop goes
// through net::ReliableTransport's stop-and-wait transfer instead of a
// guaranteed Transport::send.  Because a reliable transfer either proves
// exactly-once far-end processing or admits ignorance, the session's walk,
// whenever it completes, is BIT-IDENTICAL to the lossless walk — and the
// verdicts partition into three cases with exact semantics:
//
//   * kDelivered        — every forward hop and every backward-confirmation
//                         hop was acked: t really processed the payload and
//                         s holds the proof.  SOUND under any loss /
//                         duplication / one-sided-link regime.
//   * kFailureCertified — a full walk exhausted its sequence and rewound to
//                         s, every hop acked: the §2.4 certificate stands
//                         exactly as on perfect links (t provably not in
//                         s's component, universality caveat as ever).
//                         SOUND whenever emitted — loss can only make it
//                         rarer, never wrong.
//   * kUncertified      — some hop spent its retry budget.  The sender
//                         side knows nothing (the two-generals gap: the
//                         data or its ack may be the lost half), so the
//                         session asserts nothing — NOT a failure
//                         certificate.  This is the degradation bounded
//                         retransmission buys: certificates stay sound,
//                         they just stop being guaranteed-available.
//
// Cost: with retry budget R, a walk of h hops spends at most
// (R + 1) * h DATA copies plus the acks — the bounded-retransmit overhead
// E13 measures against flooding and gossip.
#pragma once

#include <cstdint>

#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "net/reliable.h"

namespace uesr::core {

enum class LossyVerdict : std::uint8_t {
  kInProgress,
  kDelivered,
  kFailureCertified,
  kUncertified,
};

struct LossyRouteOptions {
  net::LinkModel link{};            ///< default channel model of every link
  net::ReliableOptions reliable{};  ///< retry budget / timeout / backoff
  std::uint64_t net_seed = 0x5eed0006;  ///< channel randomness
};

/// Resumable lossy routing: each step() performs one stop-and-wait hop (or
/// the free terminate step that ends a walk).
class LossyRouteSession {
 public:
  /// `net` and `seq` must outlive the session (the same contract as
  /// RouteSession); t == net::kNoTarget broadcasts.
  LossyRouteSession(const explore::ReducedGraph& net,
                    const explore::ExplorationSequence& seq, graph::NodeId s,
                    graph::NodeId t, LossyRouteOptions options = {});

  /// One reliable hop.  No-op once finished().
  void step();
  /// Drives to completion and returns the verdict.
  LossyVerdict run();

  bool finished() const { return verdict_ != LossyVerdict::kInProgress; }
  LossyVerdict verdict() const { return verdict_; }
  bool delivered() const { return verdict_ == LossyVerdict::kDelivered; }
  bool failure_certified() const {
    return verdict_ == LossyVerdict::kFailureCertified;
  }
  bool uncertified() const { return verdict_ == LossyVerdict::kUncertified; }

  /// The forward walk reached t (even if the confirmation later aborted —
  /// an uncertified session may still have delivered the payload; only the
  /// PROOF is missing).
  bool target_reached() const { return target_reached_; }

  /// Successful link transfers (== the lossless walk's transmissions, when
  /// the session completes).
  std::uint64_t hops() const { return hops_; }
  /// Every DATA/ACK copy put on the wire, lost and duplicate-spawning
  /// copies included.
  std::uint64_t wire_frames() const { return transport_.frames(); }

  /// The reliability layer (and through it the simulator), for per-link
  /// model overrides and one-sided flips BEFORE stepping.
  net::ReliableTransport& transport() { return transport_; }
  const net::ReliableTransport& transport() const { return transport_; }

 private:
  const explore::ReducedGraph* net_;
  const explore::ExplorationSequence* seq_;
  net::ReliableTransport transport_;
  net::Header header_;
  net::Arrival at_{};
  graph::NodeId start_gadget_ = 0;
  bool injected_ = false;
  bool target_reached_ = false;
  LossyVerdict verdict_ = LossyVerdict::kInProgress;
  std::uint64_t hops_ = 0;
};

}  // namespace uesr::core
