// Algorithm Route over an asynchronous lossy channel — and exactly what
// its certificates still mean there (DESIGN.md §2.10, §2.11).
//
// The per-node logic is untouched: LossyRouteSession drives the same pure
// `route_node_step` as the perfect-link RouteSession, but every hop goes
// through a reliable ARQ transfer instead of a guaranteed
// Transport::send.  Two ARQs plug into the same seam (the PR 7 transport-
// selection seam):
//
//   * ArqKind::kStopAndWait   — net::ReliableTransport, one frame per RTT;
//   * ArqKind::kSelectiveRepeat — net::WindowTransport, a sliding window
//     of `frames_per_message` frames per hop (the pipelined layer E14
//     measures against stop-and-wait).
//
// Because a reliable transfer either proves exactly-once far-end
// processing or admits ignorance, the session's walk, whenever it
// completes, is BIT-IDENTICAL to the lossless walk — and the verdicts
// partition into three cases with exact semantics:
//
//   * kDelivered        — every forward hop and every backward-confirmation
//                         hop was acked: t really processed the payload and
//                         s holds the proof.  SOUND under any loss /
//                         duplication / one-sided-link regime.
//   * kFailureCertified — a full walk exhausted its sequence and rewound to
//                         s, every hop acked: the §2.4 certificate stands
//                         exactly as on perfect links (t provably not in
//                         s's component, universality caveat as ever).
//                         SOUND whenever emitted — loss can only make it
//                         rarer, never wrong.
//   * kUncertified      — some hop spent its retry budget.  The sender
//                         side knows nothing (the two-generals gap: the
//                         data or its ack may be the lost half), so the
//                         session asserts nothing — NOT a failure
//                         certificate.  This is the degradation bounded
//                         retransmission buys: certificates stay sound,
//                         they just stop being guaranteed-available.
//
// Cost: with retry budget R, a walk of h hops spends at most
// (R + 1) * h DATA copies per frame plus the acks — the bounded-retransmit
// overhead E13/E14 measure against flooding and gossip.
//
// LossyDynamicRouteSession composes this with churn: the same reliable
// hops, driven against a graph::DynamicGraph whose epoch stamp is part of
// the walk's validity (the §2.8 restart rule of core/dynamic_route.h).
// Links now fail BOTH ways at once — flapping in the topology layer and
// dropping frames in the channel layer — in one replayable scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/dynamic.h"
#include "net/faults.h"
#include "net/reliable.h"
#include "net/window.h"

namespace uesr::core {

enum class LossyVerdict : std::uint8_t {
  kInProgress,
  kDelivered,
  kFailureCertified,
  kUncertified,
};

/// Which reliable layer carries each hop.
enum class ArqKind : std::uint8_t { kStopAndWait, kSelectiveRepeat };

/// Per-transfer/behavioural counters either ARQ surfaces, folded over the
/// whole session (satellite: benches assert on retransmission behaviour,
/// not only outcomes).
struct ArqStats {
  std::uint64_t retransmits = 0;   ///< timeout-driven resends
  std::uint64_t backoffs = 0;      ///< RTO doublings applied
  std::uint64_t rtt_samples = 0;   ///< clean Karn samples taken
  net::SimTime srtt = 0;           ///< smoothed RTT at session end
  net::SimTime rto = 0;            ///< working RTO at session end
  net::SimTime virtual_time = 0;   ///< channel time the session consumed
};

struct LossyRouteOptions {
  net::LinkModel link{};            ///< default channel model of every link
  net::ReliableOptions reliable{};  ///< stop-and-wait budget / timeouts
  net::WindowOptions window{};      ///< selective-repeat window / budgets
  ArqKind arq = ArqKind::kStopAndWait;
  std::uint64_t net_seed = 0x5eed0006;  ///< channel randomness
  /// Fault schedule armed into the session's simulator at construction
  /// (crash windows, brownouts, corruption bursts — DESIGN.md §2.12).
  /// Pure data, so the same options replay the same chaos.  A hop that
  /// spends its budget against a crashed node degrades to kUncertified —
  /// never a wrong certificate.
  net::FaultPlan faults{};
};

/// Resumable lossy routing: each step() performs one reliable hop (or
/// the free terminate step that ends a walk).
class LossyRouteSession {
 public:
  /// `net` and `seq` must outlive the session (the same contract as
  /// RouteSession); t == net::kNoTarget broadcasts.
  LossyRouteSession(const explore::ReducedGraph& net,
                    const explore::ExplorationSequence& seq, graph::NodeId s,
                    graph::NodeId t, LossyRouteOptions options = {});

  /// One reliable hop.  No-op once finished().
  void step();
  /// Drives to completion and returns the verdict.
  LossyVerdict run();

  bool finished() const { return verdict_ != LossyVerdict::kInProgress; }
  LossyVerdict verdict() const { return verdict_; }
  bool delivered() const { return verdict_ == LossyVerdict::kDelivered; }
  bool failure_certified() const {
    return verdict_ == LossyVerdict::kFailureCertified;
  }
  bool uncertified() const { return verdict_ == LossyVerdict::kUncertified; }

  /// The forward walk reached t (even if the confirmation later aborted —
  /// an uncertified session may still have delivered the payload; only the
  /// PROOF is missing).
  bool target_reached() const { return target_reached_; }

  /// Successful link transfers (== the lossless walk's transmissions, when
  /// the session completes).
  std::uint64_t hops() const { return hops_; }
  /// Every DATA/ACK copy put on the wire, lost and duplicate-spawning
  /// copies included.
  std::uint64_t wire_frames() const;
  /// Retransmission behaviour folded over the whole session.
  ArqStats arq_stats() const;

  /// The configured ARQ.
  ArqKind arq() const { return options_.arq; }

  /// The stop-and-wait reliability layer; throws std::logic_error under
  /// kSelectiveRepeat (use window_transport() / sim() there).
  net::ReliableTransport& transport();
  const net::ReliableTransport& transport() const;
  /// The selective-repeat layer; throws std::logic_error under
  /// kStopAndWait.
  net::WindowTransport& window_transport();
  /// The simulator under whichever ARQ runs, for per-link model overrides
  /// and one-sided flips BEFORE stepping.
  net::EventSim& sim();

 private:
  net::Arrival reliable_hop(graph::NodeId from, graph::Port out_port,
                            bool& ok);

  const explore::ReducedGraph* net_;
  const explore::ExplorationSequence* seq_;
  LossyRouteOptions options_;
  std::optional<net::ReliableTransport> sw_;  ///< engaged iff kStopAndWait
  std::optional<net::WindowTransport> sr_;    ///< engaged iff kSelectiveRepeat
  net::Header header_;
  net::Arrival at_{};
  graph::NodeId start_gadget_ = 0;
  bool injected_ = false;
  bool target_reached_ = false;
  LossyVerdict verdict_ = LossyVerdict::kInProgress;
  std::uint64_t hops_ = 0;
  ArqStats stats_;
};

/// Options of the composed loss + churn session.
struct LossyDynamicOptions {
  net::LinkModel link{};
  net::ReliableOptions reliable{};
  net::WindowOptions window{};
  ArqKind arq = ArqKind::kStopAndWait;
  /// Per-epoch T_n family (restarts size a fresh sequence per snapshot).
  std::uint64_t seq_seed = 0x5eed0001;
  /// Channel randomness; epoch e's rebuilt channel is seeded
  /// counter_hash(net_seed, e) — a pure function of (options, epoch).
  std::uint64_t net_seed = 0x5eed0007;
  /// P(one directed cubic half-edge is down), drawn per epoch from
  /// counter_hash(net_seed, epoch) — the one-sided fault regime composed
  /// with churn and loss.  0 disables.
  double one_sided_down = 0.0;
  /// Fault schedule re-armed into EVERY epoch's fresh channel (the plan is
  /// in per-epoch virtual time; fresh() per the PR 4 convention).
  net::FaultPlan faults{};
  /// When set, each epoch additionally arms a plan SAMPLED from
  /// FaultPlan::sample(epoch cubic, *chaos, counter_hash(chaos_seed,
  /// epoch)) — churn, loss, and chaos composed in one replayable schedule.
  std::optional<net::ChaosConfig> chaos{};
  std::uint64_t chaos_seed = 0x5eedc4a0;  ///< chaos sampling randomness
};

/// Algorithm Route under loss AND churn at once: reliable ARQ hops driven
/// against a DynamicGraph, restarting whenever the epoch moves (§2.8).
/// Every completed walk ran entirely within one epoch over one channel, so
/// kDelivered / kFailureCertified are exact statements about
/// completion_epoch() — and loss still only ever degrades to kUncertified.
///
/// A hop that spends its retry budget does NOT end the session here (under
/// churn the link may heal): the session goes `blocked()` and waits for
/// the next epoch, the dynamic face of the ChurnRouter wait rule.  The
/// owner (TrafficEngine, or a test loop) calls give_up() once the schedule
/// is frozen and no epoch will ever come — only then does the verdict
/// become kUncertified.
class LossyDynamicRouteSession {
 public:
  /// `g` must outlive the session.  Epoch commits must happen strictly
  /// between step() calls (the TrafficEngine round contract).
  LossyDynamicRouteSession(const graph::DynamicGraph& g, graph::NodeId s,
                           graph::NodeId t, LossyDynamicOptions options = {});
  ~LossyDynamicRouteSession();
  LossyDynamicRouteSession(const LossyDynamicRouteSession&) = delete;
  LossyDynamicRouteSession& operator=(const LossyDynamicRouteSession&) =
      delete;

  /// One reliable hop against the current epoch (restarting transparently
  /// when the epoch moved).  No-op once finished() or while blocked() in
  /// an unchanged epoch.
  void step();

  bool finished() const { return verdict_ != LossyVerdict::kInProgress; }
  LossyVerdict verdict() const { return verdict_; }
  bool delivered() const { return verdict_ == LossyVerdict::kDelivered; }
  bool failure_certified() const {
    return verdict_ == LossyVerdict::kFailureCertified;
  }
  bool uncertified() const { return verdict_ == LossyVerdict::kUncertified; }

  /// A hop spent its retry budget this epoch: the session sleeps until the
  /// topology changes.  Reports false again as soon as the epoch moved
  /// (the next step() rebuilds and resumes).  Never true once finished().
  bool blocked() const {
    return blocked_ && graph_->epoch() == session_epoch_;
  }
  /// The owner promises no further epoch will come (schedule frozen): a
  /// blocked session resolves to kUncertified; an in-flight one keeps
  /// stepping (the frozen topology still lets it finish).  No-op unless
  /// blocked.
  void give_up();

  std::uint64_t hops() const { return hops_; }
  std::uint64_t wire_frames() const;
  ArqStats arq_stats() const;
  std::uint64_t restarts() const { return restarts_; }
  /// Epoch the in-flight (or final) walk runs in.
  std::uint64_t session_epoch() const { return session_epoch_; }
  /// Epoch the verdict is about; meaningful once finished().
  std::uint64_t completion_epoch() const { return completion_epoch_; }

 private:
  struct Epoch;  ///< per-epoch reduction + sequence + channel

  void rebuild();
  net::Arrival reliable_hop(graph::NodeId from, graph::Port out_port,
                            bool& ok);

  const graph::DynamicGraph* graph_;
  graph::NodeId s_, t_;
  LossyDynamicOptions options_;
  std::unique_ptr<Epoch> epoch_;
  net::Header header_;
  net::Arrival at_{};
  graph::NodeId start_gadget_ = 0;
  bool injected_ = false;
  bool blocked_ = false;
  LossyVerdict verdict_ = LossyVerdict::kInProgress;
  std::uint64_t hops_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t session_epoch_ = 0;
  std::uint64_t completion_epoch_ = 0;
  /// Wire frames / stats of discarded epochs' channels (they were really
  /// sent).
  std::uint64_t carried_frames_ = 0;
  ArqStats carried_stats_;
};

}  // namespace uesr::core
