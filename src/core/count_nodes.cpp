#include "core/count_nodes.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "explore/walker.h"
#include "net/message.h"
#include "net/transport.h"

namespace uesr::core {

using explore::ExplorationSequence;
using explore::ReducedGraph;
using explore::SymbolStream;
using explore::wrap_port;
using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

SequenceFactory default_sequence_family(std::uint64_t seed) {
  return [seed](NodeId bound) {
    // Quadratic-length family: long enough to cover whp once the bound
    // reaches |Cs'| (random-walk cover time of 3-regular graphs is
    // O(n^2)); correctness does not depend on covering — the closure
    // check *verifies* coverage and otherwise doubles again.
    std::uint64_t len = std::max<std::uint64_t>(16, 8ULL * bound * bound);
    return std::make_shared<explore::RandomExplorationSequence>(
        seed ^ (0x9e37ULL * bound), len, bound);
  };
}

namespace {

/// Walks the message backward from arrival `at` until `index` reaches 0,
/// consuming symbols index..1 in descending blocks.
void backtrack(const graph::Graph& g, const ExplorationSequence& seq,
               net::Arrival& at, std::uint64_t index, std::uint64_t& tx) {
  std::vector<explore::Symbol> buf;
  while (index > 0) {
    const std::uint64_t count =
        std::min<std::uint64_t>(SymbolStream::kBlock, index);
    const std::uint64_t lo = index - count + 1;
    buf.resize(static_cast<std::size_t>(count));
    seq.fill(lo, count, buf.data());
    for (std::uint64_t k = count; k-- > 0;) {
      Port t = static_cast<Port>(buf[static_cast<std::size_t>(k)] % 3);
      Port out = wrap_port(at.port + 3 - t, 3);
      HalfEdge far = g.rotate(at.node, out);
      at = {far.node, far.port};
      ++tx;
      --index;
    }
  }
}

}  // namespace

graph::NodeId retrieve(const ReducedGraph& net, const ExplorationSequence& seq,
                       NodeId s, std::uint64_t i, std::uint64_t& tx) {
  if (i > seq.length())
    throw std::invalid_argument("retrieve: index beyond sequence");
  const graph::Graph& g = net.cubic;
  // Inject d_0 from s's entry gadget.
  HalfEdge d{net.entry_gadget(s), 0};
  net::Arrival at{g.rotate(d.node, d.port).node, g.rotate(d.node, d.port).port};
  ++tx;
  // Forward phase, symbols streamed in blocks.
  SymbolStream symbols(seq);
  for (std::uint64_t index = 0; index < i; ++index) {
    Port out = wrap_port(at.port + symbols.next(), 3);
    HalfEdge far = g.rotate(at.node, out);
    at = {far.node, far.port};
    ++tx;
  }
  NodeId payload = at.node;  // the gadget's unique name
  // Turn around: resend over the arrival port to the tail of d_i.
  {
    HalfEdge far = g.rotate(at.node, at.port);
    at = {far.node, far.port};
    ++tx;
  }
  // Backward phase: undo steps i..1.
  backtrack(g, seq, at, i, tx);
  return payload;
}

graph::NodeId retrieve_neighbor(const ReducedGraph& net,
                                const ExplorationSequence& seq, NodeId s,
                                std::uint64_t i, Port j, std::uint64_t& tx) {
  if (j >= 3)
    throw std::invalid_argument("retrieve_neighbor: port out of range");
  if (i > seq.length())
    throw std::invalid_argument("retrieve_neighbor: index beyond sequence");
  const graph::Graph& g = net.cubic;
  HalfEdge d{net.entry_gadget(s), 0};
  net::Arrival at{g.rotate(d.node, d.port).node, g.rotate(d.node, d.port).port};
  ++tx;
  SymbolStream symbols(seq);
  for (std::uint64_t index = 0; index < i; ++index) {
    Port out = wrap_port(at.port + symbols.next(), 3);
    HalfEdge far = g.rotate(at.node, out);
    at = {far.node, far.port};
    ++tx;
  }
  // Peek: park the arrival port in the header, hop out of port j and back.
  Port return_port = at.port;
  {
    HalfEdge far = g.rotate(at.node, j);  // kPeek
    at = {far.node, far.port};
    ++tx;
  }
  NodeId payload = at.node;
  {
    HalfEdge far = g.rotate(at.node, at.port);  // kReply
    at = {far.node, far.port};
    ++tx;
  }
  // Back at v_i (on port j); turn around through the parked port.
  {
    HalfEdge far = g.rotate(at.node, return_port);
    at = {far.node, far.port};
    ++tx;
  }
  backtrack(g, seq, at, i, tx);
  return payload;
}

namespace {

/// Probe interface shared by both execution modes; implementations must
/// charge identical transmission counts (the faithful costs).
class ProbeOracle {
 public:
  virtual ~ProbeOracle() = default;
  virtual NodeId retrieve(std::uint64_t i) = 0;
  virtual NodeId retrieve_neighbor(std::uint64_t i, Port j) = 0;
  /// s peeks through its own port j (local 1-hop probe): cost 2.
  virtual NodeId source_peek(Port j) = 0;
  std::uint64_t tx = 0;
  std::uint64_t probes = 0;
};

class FaithfulOracle final : public ProbeOracle {
 public:
  FaithfulOracle(const ReducedGraph& net, const ExplorationSequence& seq,
                 NodeId s)
      : net_(net), seq_(seq), s_(s) {}

  NodeId retrieve(std::uint64_t i) override {
    ++probes;
    return core::retrieve(net_, seq_, s_, i, tx);
  }
  NodeId retrieve_neighbor(std::uint64_t i, Port j) override {
    ++probes;
    return core::retrieve_neighbor(net_, seq_, s_, i, j, tx);
  }
  NodeId source_peek(Port j) override {
    ++probes;
    tx += 2;
    return net_.cubic.rotate(net_.entry_gadget(s_), j).node;
  }

 private:
  const ReducedGraph& net_;
  const ExplorationSequence& seq_;
  NodeId s_;
};

class FastOracle final : public ProbeOracle {
 public:
  FastOracle(const ReducedGraph& net, const ExplorationSequence& seq,
             NodeId s)
      : net_(net), s_(s) {
    // Simulate the walk centrally once, streaming symbols in blocks, and
    // record the head (arrival vertex) of every departure edge d_0..d_L.
    const graph::Graph& g = net.cubic;
    const std::uint64_t length = seq.length();
    heads_.reserve(static_cast<std::size_t>(length) + 1);
    HalfEdge d{net.entry_gadget(s), 0};
    HalfEdge a = g.rotate(d.node, d.port);
    heads_.push_back(a.node);
    SymbolStream symbols(seq);
    for (std::uint64_t j = 0; j < length; ++j) {
      d = {a.node, wrap_port(a.port + symbols.next(), 3)};
      a = g.rotate(d.node, d.port);
      heads_.push_back(a.node);
    }
  }

  NodeId retrieve(std::uint64_t i) override {
    ++probes;
    tx += 2 * (i + 1);
    return heads_.at(i);
  }
  NodeId retrieve_neighbor(std::uint64_t i, Port j) override {
    ++probes;
    tx += 2 * (i + 1) + 2;
    // The walk arrived at v_i on some port; the neighbour through port j of
    // v_i, regardless of arrival port, is a static fact of the graph.
    return net_.cubic.rotate(heads_.at(i), j).node;
  }
  NodeId source_peek(Port j) override {
    ++probes;
    tx += 2;
    return net_.cubic.rotate(net_.entry_gadget(s_), j).node;
  }

  const std::vector<NodeId>& heads() const { return heads_; }

 private:
  const ReducedGraph& net_;
  NodeId s_;
  std::vector<NodeId> heads_;
};

/// Coordinator-side memo over retrieve: the coordinator of CountNodes may
/// remember names it already paid to fetch (it is not a network node, so
/// this breaks no log-space constraint of the *protocol*), but the paper's
/// cost model is preserved exactly — a memoized answer charges the same
/// tx/probes a real probe would, so reported totals are bit-identical in
/// both execution modes.  Only the wall-clock work collapses from O(L^2)
/// walks to O(L) walks plus O(L^2) array reads.
class MemoOracle final : public ProbeOracle {
 public:
  MemoOracle(ProbeOracle& inner, std::uint64_t length)
      : inner_(inner),
        memo_(static_cast<std::size_t>(length) + 1, kUnset) {}

  NodeId retrieve(std::uint64_t i) override {
    NodeId& slot = memo_.at(static_cast<std::size_t>(i));
    if (slot != kUnset) {
      ++probes;
      tx += 2 * (i + 1);  // what the probe would have cost on the wire
      return slot;
    }
    slot = inner_.retrieve(i);  // inner charges its own tx/probes
    return slot;
  }
  NodeId retrieve_neighbor(std::uint64_t i, Port j) override {
    return inner_.retrieve_neighbor(i, j);
  }
  NodeId source_peek(Port j) override { return inner_.source_peek(j); }

 private:
  static constexpr NodeId kUnset = ~NodeId{0};  // never a gadget name
  ProbeOracle& inner_;
  std::vector<NodeId> memo_;
};

/// The paper's membership scan: compare u against Retrieve(0..L) with
/// early exit.  The source also knows its own name without a probe.
bool is_visited(ProbeOracle& oracle, std::uint64_t L, NodeId s_gadget,
                NodeId u) {
  if (u == s_gadget) return true;
  for (std::uint64_t l = 0; l <= L; ++l)
    if (oracle.retrieve(l) == u) return true;
  return false;
}

}  // namespace

CountResult count_nodes(const ReducedGraph& net, NodeId s,
                        const SequenceFactory& family, CountMode mode) {
  if (s >= net.first_gadget.size())
    throw std::invalid_argument("count_nodes: source out of range");
  CountResult res;
  const NodeId s_gadget = net.entry_gadget(s);
  for (unsigned k = 1; k <= 30; ++k) {
    NodeId bound = NodeId{1} << k;
    auto seq = family(bound);
    if (!seq) throw std::invalid_argument("count_nodes: null sequence");
    const std::uint64_t L = seq->length();
    std::unique_ptr<ProbeOracle> inner;
    if (mode == CountMode::kFaithful)
      inner = std::make_unique<FaithfulOracle>(net, *seq, s);
    else
      inner = std::make_unique<FastOracle>(net, *seq, s);
    MemoOracle oracle(*inner, L);
    auto charged_tx = [&] { return inner->tx + oracle.tx; };
    auto charged_probes = [&] { return inner->probes + oracle.probes; };

    // --- closure check: every neighbour of a visited vertex is visited.
    bool closed = true;
    for (std::uint64_t i = 0; i <= L && closed; ++i)
      for (Port j = 0; j < 3 && closed; ++j) {
        NodeId u = oracle.retrieve_neighbor(i, j);
        if (!is_visited(oracle, L, s_gadget, u)) closed = false;
      }
    // The source's own neighbours (s is visited by definition).
    for (Port j = 0; j < 3 && closed; ++j) {
      NodeId u = oracle.source_peek(j);
      if (!is_visited(oracle, L, s_gadget, u)) closed = false;
    }

    res.transmissions += charged_tx();
    res.probes += charged_probes();
    inner->tx = oracle.tx = 0;
    inner->probes = oracle.probes = 0;
    if (!closed) continue;

    // --- counting phase: distinct names among Retrieve(0..L), plus s if
    // its name never appears among the heads.  The pairwise scan is the
    // paper's: the coordinator holds two names and a counter — O(log n).
    std::uint64_t count = 0;
    bool s_seen = false;
    for (std::uint64_t i = 0; i <= L; ++i) {
      NodeId vnew = oracle.retrieve(i);
      if (vnew == s_gadget) s_seen = true;
      bool fresh = true;
      for (std::uint64_t j = 0; j < i && fresh; ++j)
        if (oracle.retrieve(j) == vnew) fresh = false;
      if (fresh) ++count;
    }
    if (!s_seen) ++count;
    res.gadget_count = count;
    res.epochs = k;
    res.final_bound = bound;

    // Distinct *original* names: same pairwise structure over the
    // projection original_of(name) — gadget names are composite
    // (original, slot) pairs, so projecting is local to the coordinator.
    const NodeId s_orig = net.original_of[s_gadget];
    std::uint64_t orig_count = 0;
    bool s_orig_seen = false;
    for (std::uint64_t i = 0; i <= L; ++i) {
      NodeId oi = net.original_of[oracle.retrieve(i)];
      if (oi == s_orig) s_orig_seen = true;
      bool fresh = true;
      for (std::uint64_t j = 0; j < i && fresh; ++j)
        if (net.original_of[oracle.retrieve(j)] == oi) fresh = false;
      if (fresh) ++orig_count;
    }
    if (!s_orig_seen) ++orig_count;
    res.original_count = orig_count;
    res.transmissions += charged_tx();
    res.probes += charged_probes();
    return res;
  }
  throw std::runtime_error("count_nodes: no closure after 2^30 bound");
}

}  // namespace uesr::core
