#include "core/traffic.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "core/dynamic_route.h"
#include "core/multi_walk.h"
#include "explore/sequence_cache.h"
#include "net/message.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace uesr::core {

using graph::NodeId;

namespace {
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
}  // namespace

/// Per-session stepper.  step() performs at most one transmission (free
/// bookkeeping steps exist: the Route terminate step, hybrid decision
/// checks).  Lanes are state-disjoint: parallel rounds touch each lane
/// from exactly one worker and the shared topology is read-only.
struct TrafficEngine::Lane {
  virtual ~Lane() = default;
  virtual void step() = 0;
  virtual bool finished() const = 0;
  virtual std::uint64_t transmissions() const = 0;
  /// Writes the verdict fields once finished().
  virtual void finalize(SessionReport& r) const = 0;
  /// Lossy-dynamic only: the session spent a retry budget and sleeps until
  /// the next epoch (stepping it is free and futile).
  virtual bool blocked() const { return false; }
  /// Lossy-dynamic only: the schedule froze — resolve a blocked session to
  /// its no-verdict end state.
  virtual void give_up() {}
};

namespace {

/// Static-mode Algorithm Route (or the degenerate s == t delivery).
struct RouteLane final : TrafficEngine::Lane {
  std::optional<RouteSession> session;  ///< empty iff s == t

  RouteLane(const explore::ReducedGraph& net,
            const explore::ExplorationSequence& seq, NodeId s, NodeId t) {
    if (s != t) session.emplace(net, seq, s, t);
  }
  void step() override {
    if (session) session->step();
  }
  bool finished() const override { return !session || session->finished(); }
  std::uint64_t transmissions() const override {
    return session ? session->transmissions() : 0;
  }
  void finalize(SessionReport& r) const override {
    r.delivered = !session || session->status() == net::Status::kSuccess;
    r.failure_certified = !r.delivered;
  }
};

/// Static-mode broadcast: one kBroadcast walk plus the cover bitmap
/// (mirrors UesRouter::broadcast, spread over slots).
struct BroadcastLane final : TrafficEngine::Lane {
  RouteSession session;
  std::vector<char> visited;
  std::uint64_t distinct = 0;

  BroadcastLane(const explore::ReducedGraph& net,
                const explore::ExplorationSequence& seq, NodeId s)
      : session(net, seq, s, net::kNoTarget),
        visited(net.first_gadget.size(), 0) {
    visit(s);
  }
  void visit(NodeId original) {
    if (!visited[original]) {
      visited[original] = 1;
      ++distinct;
    }
  }
  void step() override {
    session.step();
    if (!session.finished()) visit(session.current_original());
  }
  bool finished() const override { return session.finished(); }
  std::uint64_t transmissions() const override {
    return session.transmissions();
  }
  void finalize(SessionReport& r) const override {
    // A completed broadcast delivered to everything reachable (when the
    // sequence covers); there is no failure verdict to certify.
    r.delivered = true;
    r.distinct_visited = distinct;
  }
};

/// Static-mode Corollary-2 hybrid: an injected probabilistic token
/// interleaved with a guaranteed walk via the resumable HybridSession.
struct HybridLane final : TrafficEngine::Lane {
  std::unique_ptr<TokenWalker> prob;
  RouteSession guar;
  HybridSession hybrid;

  HybridLane(std::unique_ptr<TokenWalker> walker,
             const explore::ReducedGraph& net,
             const explore::ExplorationSequence& seq, NodeId s, NodeId t)
      : prob(std::move(walker)), guar(net, seq, s, t),
        hybrid(*prob, guar) {}
  void step() override { hybrid.step(); }
  bool finished() const override { return hybrid.finished(); }
  std::uint64_t transmissions() const override {
    return prob->transmissions() + guar.transmissions();
  }
  void finalize(SessionReport& r) const override {
    const HybridResult& res = hybrid.result();
    r.delivered = res.delivered;
    r.failure_certified = res.certified_unreachable;
    r.exhausted = res.exhausted;
  }
};

/// Dynamic-mode Algorithm Route: restarts on epoch changes (§2.8); the
/// verdict is exact for completion_epoch.
struct DynamicRouteLane final : TrafficEngine::Lane {
  DynamicRouteSession session;

  DynamicRouteLane(const net::DynamicTransport& transport, NodeId s,
                   NodeId t, std::uint64_t seq_seed)
      : session(transport, s, t, {seq_seed}) {}
  void step() override { session.step(); }
  bool finished() const override { return session.finished(); }
  std::uint64_t transmissions() const override {
    return session.transmissions();
  }
  void finalize(SessionReport& r) const override {
    r.delivered = session.delivered();
    r.failure_certified = session.failure_certified();
    r.restarts = session.restarts();
    r.completion_epoch = session.completion_epoch();
  }
};

/// Static-mode lossy route: one private channel + ARQ per session (the
/// PR 7 seam).  State-disjoint by construction — each lane owns its
/// EventSim — so parallel rounds stay bit-identical for any thread count.
struct LossyRouteLane final : TrafficEngine::Lane {
  std::optional<LossyRouteSession> session;  ///< empty iff s == t

  LossyRouteLane(const explore::ReducedGraph& net,
                 const explore::ExplorationSequence& seq, NodeId s, NodeId t,
                 const LossyTrafficConfig& cfg, std::size_t id) {
    if (s == t) return;
    LossyRouteOptions options;
    options.link = cfg.link;
    options.reliable = cfg.reliable;
    options.window = cfg.window;
    options.arq = cfg.arq;
    options.net_seed = util::counter_hash(cfg.net_seed, id);
    options.faults = cfg.faults;
    if (cfg.chaos)
      options.faults.merge(net::FaultPlan::sample(
          net.cubic, *cfg.chaos, util::counter_hash(cfg.chaos_seed, id)));
    session.emplace(net, seq, s, t, options);
    if (cfg.one_sided_down > 0.0) {
      // Per-session direction kills from a dedicated stream (never the
      // channel's): replayable and thread-count invariant.
      util::Pcg32 flips(util::counter_hash(cfg.net_seed ^ 0x1e51dedu, id));
      const graph::Graph& cubic = net.cubic;
      net::EventSim& sim = session->sim();
      for (NodeId v = 0; v < cubic.num_nodes(); ++v)
        for (graph::Port q = 0; q < cubic.degree(v); ++q)
          if (flips.next_double() < cfg.one_sided_down)
            sim.set_link_up(v, q, false);
    }
  }
  void step() override {
    if (session) session->step();
  }
  bool finished() const override { return !session || session->finished(); }
  std::uint64_t transmissions() const override {
    return session ? session->wire_frames() : 0;
  }
  void finalize(SessionReport& r) const override {
    if (!session) {  // degenerate s == t: delivered for free
      r.delivered = true;
      return;
    }
    r.delivered = session->delivered();
    r.failure_certified = session->failure_certified();
    r.uncertified = session->uncertified();
    r.hops = session->hops();
    const ArqStats st = session->arq_stats();
    r.retransmits = st.retransmits;
    r.virtual_time = st.virtual_time;
  }
};

/// Dynamic-mode lossy route: the composed loss + churn fault regime.
struct LossyDynamicRouteLane final : TrafficEngine::Lane {
  LossyDynamicRouteSession session;

  LossyDynamicRouteLane(const graph::DynamicGraph& g, NodeId s, NodeId t,
                        const LossyTrafficConfig& cfg, std::uint64_t seq_seed,
                        std::size_t id)
      : session(g, s, t, [&] {
          LossyDynamicOptions options;
          options.link = cfg.link;
          options.reliable = cfg.reliable;
          options.window = cfg.window;
          options.arq = cfg.arq;
          options.seq_seed = seq_seed;
          options.net_seed = util::counter_hash(cfg.net_seed, id);
          options.one_sided_down = cfg.one_sided_down;
          options.faults = cfg.faults;
          options.chaos = cfg.chaos;
          options.chaos_seed = util::counter_hash(cfg.chaos_seed, id);
          return options;
        }()) {}
  void step() override { session.step(); }
  bool finished() const override { return session.finished(); }
  std::uint64_t transmissions() const override {
    return session.wire_frames();
  }
  bool blocked() const override { return session.blocked(); }
  void give_up() override { session.give_up(); }
  void finalize(SessionReport& r) const override {
    r.delivered = session.delivered();
    r.failure_certified = session.failure_certified();
    r.uncertified = session.uncertified();
    r.hops = session.hops();
    r.restarts = session.restarts();
    r.completion_epoch = session.completion_epoch();
    const ArqStats st = session.arq_stats();
    r.retransmits = st.retransmits;
    r.virtual_time = st.virtual_time;
  }
};

}  // namespace

struct TrafficEngine::PoolHolder {
  util::ThreadPool pool;
  explicit PoolHolder(unsigned threads) : pool(threads) {}
};

/// One shard of the static perfect-link route fast path: a disjoint SoA
/// arena plus its in-flight session ids.  A round steps each shard from
/// exactly one worker (parallel_for over shards, chunk 1), and every
/// per-session outcome is independent of which shard the session landed
/// on, so reports are bit-identical for any shard count.
struct TrafficEngine::Shard {
  MultiWalkArena arena;
  std::vector<std::size_t> active;        ///< session ids, ascending
  std::vector<std::size_t> walks;         ///< scratch: walk per active id
  std::vector<std::uint64_t> tx_before;   ///< scratch: round tx baseline
  Shard(const explore::ReducedGraph& net,
        const explore::ExplorationSequence& seq)
      : arena(net, seq) {}
};

TrafficEngine::TrafficEngine(const graph::Graph& g, TrafficOptions options)
    : options_(options), graph_(&g), reduced_(explore::reduce_to_cubic(g)) {
  if (options_.batch == 0)
    throw std::invalid_argument("TrafficEngine: batch >= 1");
  seq_ = explore::cached_standard_ues(
      std::max<NodeId>(reduced_.cubic.num_nodes(), 1), options_.seq_seed);
  pool_ = std::make_unique<PoolHolder>(options_.threads);
  if (!options_.lossy) {
    // Static perfect-link mode: route sessions run on sharded SoA arenas.
    const unsigned shard_count =
        options_.shards ? options_.shards : pool_->pool.size();
    shards_.reserve(shard_count);
    for (unsigned i = 0; i < shard_count; ++i)
      shards_.push_back(std::make_unique<Shard>(reduced_, *seq_));
  }
}

TrafficEngine::TrafficEngine(const graph::Scenario& scenario,
                             TrafficOptions options)
    : options_(options), scenario_(scenario.fresh()) {
  if (options_.batch == 0)
    throw std::invalid_argument("TrafficEngine: batch >= 1");
  if (options_.max_epochs > 0 && options_.epoch_period == 0)
    throw std::invalid_argument("TrafficEngine: epoch_period >= 1");
  dynamic_graph_ =
      std::make_unique<graph::DynamicGraph>(scenario_->initial());
  transport_ = std::make_unique<net::DynamicTransport>(*dynamic_graph_);
  next_epoch_tick_ = options_.epoch_period;
  pool_ = std::make_unique<PoolHolder>(options_.threads);
}

TrafficEngine::~TrafficEngine() = default;

std::uint64_t TrafficEngine::epoch() const {
  return dynamic_graph_ ? dynamic_graph_->epoch() : 0;
}

std::size_t TrafficEngine::admit(const SessionSpec& spec) {
  const NodeId n =
      graph_ ? graph_->num_nodes() : dynamic_graph_->num_nodes();
  if (spec.s >= n)
    throw std::invalid_argument("TrafficEngine::admit: source out of range");
  if (spec.kind != TrafficKind::kBroadcast && spec.t >= n)
    throw std::invalid_argument("TrafficEngine::admit: target out of range");
  if (dynamic() && spec.kind != TrafficKind::kRoute)
    throw std::invalid_argument(
        "TrafficEngine::admit: dynamic mode multiplexes route sessions "
        "only (broadcast/hybrid semantics are per-epoch)");
  if (options_.lossy && spec.kind != TrafficKind::kRoute)
    throw std::invalid_argument(
        "TrafficEngine::admit: lossy mode multiplexes route sessions only "
        "(broadcast/hybrid have no reliable-transfer semantics yet)");
  if (spec.kind == TrafficKind::kHybrid && !options_.hybrid_walker)
    throw std::invalid_argument(
        "TrafficEngine::admit: kHybrid needs TrafficOptions::hybrid_walker "
        "(e.g. baselines::random_walk_factory())");
  if (spec.admit_at < clock_)
    throw std::invalid_argument(
        "TrafficEngine::admit: admit_at is in the past");
  if (spec.depart_at != 0 && spec.depart_at <= spec.admit_at)
    throw std::invalid_argument(
        "TrafficEngine::admit: depart_at must be > admit_at");
  const std::size_t id = reports_.size();
  SessionReport r;
  r.kind = spec.kind;
  r.s = spec.s;
  r.t = spec.kind == TrafficKind::kBroadcast ? net::kNoTarget : spec.t;
  r.admitted_at = spec.admit_at;
  reports_.push_back(r);
  lanes_.push_back(nullptr);  // built at activation (dynamic lanes must
                              // see the epoch they arrive in)
  specs_.push_back(spec);
  arena_walk_.push_back(static_cast<std::size_t>(-1));
  pending_.push_back(id);
  ++unfinished_;
  if (spec.depart_at != 0) any_departures_ = true;
  return id;
}

void TrafficEngine::attach_arrivals(ArrivalSource& source) {
  arrivals_ = &source;
  arrivals_done_ = false;
}

void TrafficEngine::pull_arrivals() {
  if (arrivals_done_ && !staged_arrival_) return;
  for (;;) {
    if (!staged_arrival_) {
      if (arrivals_done_) return;
      staged_arrival_ = arrivals_->next();
      if (!staged_arrival_) {
        arrivals_done_ = true;
        return;
      }
    }
    // Anything beyond this round's reach stays staged; since rounds
    // advance the clock by at most batch ticks, the staged arrival can
    // never slip into the past.  admit() enforces nondecreasing streams
    // (an out-of-order arrival is "in the past" by construction).
    if (staged_arrival_->admit_at > clock_ + options_.batch) return;
    admit(*staged_arrival_);
    staged_arrival_.reset();
  }
}

void TrafficEngine::process_departures() {
  if (!any_departures_) return;
  // Serial, in id order within each list: departures are report writes.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const std::size_t id = active_[i];
    const std::uint64_t d = specs_[id].depart_at;
    if (d == 0 || d > clock_) {
      active_[kept++] = id;
      continue;
    }
    SessionReport& r = reports_[id];
    r.finished = true;
    r.departed = true;
    r.transmissions = lanes_[id]->transmissions();
    r.completed_at = clock_;
    lanes_[id].reset();
    --unfinished_;
  }
  active_.resize(kept);
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    kept = 0;
    for (std::size_t i = 0; i < sh.active.size(); ++i) {
      const std::size_t id = sh.active[i];
      const std::uint64_t d = specs_[id].depart_at;
      if (d == 0 || d > clock_) {
        sh.active[kept++] = id;
        continue;
      }
      SessionReport& r = reports_[id];
      r.finished = true;
      r.departed = true;
      r.transmissions = sh.arena.transmissions(arena_walk_[id]);
      r.completed_at = clock_;
      --unfinished_;
      --arena_active_;
    }
    sh.active.resize(kept);
  }
}

void TrafficEngine::admit_all(const std::vector<SessionSpec>& specs) {
  for (const SessionSpec& s : specs) admit(s);
}

void TrafficEngine::activate_arrivals() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const std::size_t id = pending_[i];
    if (reports_[id].admitted_at > clock_) {
      pending_[kept++] = id;
      continue;
    }
    const SessionSpec& spec = specs_[id];
    // Route fast path: static perfect-link kRoute sessions land on a SoA
    // arena shard (id % shards) instead of a scalar lane; the degenerate
    // s == t session never transmits and completes at activation.
    if (!shards_.empty() && spec.kind == TrafficKind::kRoute) {
      if (spec.s == spec.t) {
        SessionReport& r = reports_[id];
        r.finished = true;
        r.delivered = true;
        r.completed_at = clock_;
        --unfinished_;
      } else {
        Shard& sh = *shards_[id % shards_.size()];
        arena_walk_[id] = sh.arena.admit(spec.s, spec.t);
        sh.active.push_back(id);
        ++arena_active_;
      }
      continue;
    }
    if (options_.lossy && dynamic()) {
      lanes_[id] = std::make_unique<LossyDynamicRouteLane>(
          *dynamic_graph_, spec.s, spec.t, *options_.lossy,
          options_.seq_seed, id);
    } else if (options_.lossy) {
      lanes_[id] = std::make_unique<LossyRouteLane>(reduced_, *seq_, spec.s,
                                                    spec.t, *options_.lossy,
                                                    id);
    } else if (dynamic()) {
      lanes_[id] = std::make_unique<DynamicRouteLane>(
          *transport_, spec.s, spec.t, options_.seq_seed);
    } else {
      switch (spec.kind) {
        case TrafficKind::kRoute:
          lanes_[id] =
              std::make_unique<RouteLane>(reduced_, *seq_, spec.s, spec.t);
          break;
        case TrafficKind::kBroadcast:
          lanes_[id] = std::make_unique<BroadcastLane>(reduced_, *seq_,
                                                       spec.s);
          break;
        case TrafficKind::kHybrid:
          lanes_[id] = std::make_unique<HybridLane>(
              options_.hybrid_walker(
                  *graph_, spec.s, spec.t, spec.hybrid_ttl,
                  util::counter_hash(options_.walker_seed, id)),
              reduced_, *seq_, spec.s, spec.t);
          break;
      }
    }
    active_.push_back(id);
  }
  pending_.resize(kept);
  std::sort(active_.begin(), active_.end());
}

std::uint64_t TrafficEngine::ticks_to_epoch() const {
  if (!dynamic() || epochs_done_ >= options_.max_epochs) return kNever;
  return next_epoch_tick_ - clock_;
}

void TrafficEngine::advance_epochs_to(std::uint64_t tick) {
  while (dynamic() && epochs_done_ < options_.max_epochs &&
         next_epoch_tick_ <= tick) {
    scenario_->advance(*dynamic_graph_);
    ++epochs_done_;
    next_epoch_tick_ += options_.epoch_period;
  }
}

std::size_t TrafficEngine::run_round() {
  advance_epochs_to(clock_);
  pull_arrivals();
  activate_arrivals();
  process_departures();
  if (active_.empty() && arena_active_ == 0) {
    if (pending_.empty()) {
      // Open loop: nothing in flight and nothing scheduled — stage the
      // next stream arrival (possibly far beyond this round's reach) so
      // the idle fast-forward below has a tick to jump to.
      if (!staged_arrival_ && !arrivals_done_) {
        staged_arrival_ = arrivals_->next();
        if (!staged_arrival_) arrivals_done_ = true;
      }
      if (!staged_arrival_) return unfinished_;
      admit(*staged_arrival_);
      staged_arrival_.reset();
    }
    // Idle gap: fast-forward to the next arrival, crossing any scenario
    // epochs scheduled in between.
    std::uint64_t next = kNever;
    for (std::size_t id : pending_)
      next = std::min(next, reports_[id].admitted_at);
    clock_ = next;
    advance_epochs_to(clock_);
    pull_arrivals();
    activate_arrivals();
    process_departures();
  }
  // Lossy-dynamic mode: once the epoch schedule froze, no blocked session
  // can ever heal — resolve them to their no-verdict end state (serial, in
  // id order) so run() terminates.  Degrading, never falsely certifying.
  if (options_.lossy && dynamic() && ticks_to_epoch() == kNever)
    for (std::size_t id : active_) lanes_[id]->give_up();
  // Round length: the batch, clamped so no session steps across a
  // scenario-epoch boundary, past a not-yet-admitted arrival, or past a
  // departure tick.  All clamps read global state only, so the grant —
  // and with it every report — is identical for any thread/shard count.
  std::uint64_t slots = options_.batch;
  slots = std::min(slots, ticks_to_epoch());
  for (std::size_t id : pending_)
    slots = std::min(slots, reports_[id].admitted_at - clock_);
  if (any_departures_) {
    for (std::size_t id : active_)
      if (specs_[id].depart_at)
        slots = std::min(slots, specs_[id].depart_at - clock_);
    for (const auto& shp : shards_)
      for (std::size_t id : shp->active)
        if (specs_[id].depart_at)
          slots = std::min(slots, specs_[id].depart_at - clock_);
  }

  util::ThreadPool& pool = pool_->pool;
  // Arena phase: whole shards in parallel, one worker per shard; inside a
  // shard the SoA kernel block-steps every in-flight walk by `slots`.
  if (arena_active_ > 0) {
    util::parallel_for(
        pool, shards_.size(), 1, [&](const util::ChunkRange& c) {
          for (std::uint64_t si = c.begin; si < c.end; ++si) {
            Shard& sh = *shards_[static_cast<std::size_t>(si)];
            const std::size_t m = sh.active.size();
            if (m == 0) continue;
            sh.walks.resize(m);
            sh.tx_before.resize(m);
            for (std::size_t k = 0; k < m; ++k) {
              sh.walks[k] = arena_walk_[sh.active[k]];
              sh.tx_before[k] = sh.arena.transmissions(sh.walks[k]);
            }
            sh.arena.step_block(sh.walks.data(), m, slots);
            for (std::size_t k = 0; k < m; ++k) {
              const std::size_t id = sh.active[k];
              if (!sh.arena.finished(sh.walks[k])) continue;
              SessionReport& r = reports_[id];
              r.finished = true;
              r.transmissions = sh.arena.transmissions(sh.walks[k]);
              r.completed_at =
                  clock_ + (r.transmissions - sh.tx_before[k]);
              r.delivered = sh.arena.delivered(sh.walks[k]);
              r.failure_certified = !r.delivered;
            }
          }
        });
  }
  const std::uint64_t n = active_.size();
  util::parallel_for(
      pool, n, util::default_chunk(n, pool.size()),
      [&](const util::ChunkRange& c) {
        for (std::uint64_t i = c.begin; i < c.end; ++i) {
          const std::size_t id = active_[static_cast<std::size_t>(i)];
          Lane& lane = *lanes_[id];
          std::uint64_t used = 0;
          // Free steps (terminate, hybrid decisions) never repeat
          // unboundedly, but cap total step calls defensively; the cap
          // is a constant, so reports stay thread-count invariant.  A
          // blocked lossy session sleeps out the round (stepping it is a
          // no-op until its epoch moves).
          std::uint64_t calls = 2 * slots + 8;
          while (!lane.finished() && !lane.blocked() && used < slots &&
                 calls-- > 0) {
            const std::uint64_t before = lane.transmissions();
            lane.step();
            used += lane.transmissions() - before;
          }
          if (lane.finished()) {
            SessionReport& r = reports_[id];
            r.finished = true;
            r.transmissions = lane.transmissions();
            r.completed_at = clock_ + used;
            lane.finalize(r);
          }
        }
      });
  clock_ += slots;
  // Serial sweep in id order: retire finished lanes, free their state.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const std::size_t id = active_[i];
    if (reports_[id].finished) {
      lanes_[id].reset();
      --unfinished_;
    } else {
      active_[kept++] = id;
    }
  }
  active_.resize(kept);
  // Arena walks retire by list compaction only; their SoA rows stay.
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    kept = 0;
    for (std::size_t i = 0; i < sh.active.size(); ++i) {
      const std::size_t id = sh.active[i];
      if (reports_[id].finished) {
        --unfinished_;
        --arena_active_;
      } else {
        sh.active[kept++] = id;
      }
    }
    sh.active.resize(kept);
  }
  return unfinished_;
}

void TrafficEngine::run() {
  while (unfinished_ > 0 || staged_arrival_ || !arrivals_done_) run_round();
}

const SessionReport& TrafficEngine::report(std::size_t id) const {
  if (id >= reports_.size())
    throw std::out_of_range("TrafficEngine::report: bad session id");
  return reports_[id];
}

}  // namespace uesr::core
