// Structure-of-arrays multi-walk stepping kernel for Algorithm Route.
//
// RouteSession executes one walk; a traffic shard executes hundreds of
// thousands over the SAME reduced graph, and at that scale the session
// object itself is the bottleneck: each step chases session-object
// pointers, consults a per-session symbol window, and leaves the memory
// system idle while one dependent rotation load resolves.  MultiWalkArena
// keeps walk state in parallel flat arrays (26 B per walk) and steps
// kBlockLanes walks per slot sweep against one shared packed cubic graph:
//
//   * slot-major sweeps — for each transmission slot, every lane in the
//     block advances once, so the block's rotation loads are all in
//     flight together (memory-level parallelism instead of one serial
//     load chain per walk);
//   * software prefetch — each sweep first touches every lane's next
//     half-edge region &far_nodes[3*node] one slot ahead of its use;
//   * branch-free rotate3 — the packed far-node/2-bit-port pair from
//     graph::Graph's cubic layout, no offsets, no HalfEdge structs;
//   * shared symbols — ONE ExplorationSequence object (from the
//     SequenceCache) feeds every lane through per-call scratch windows
//     (kBlockLanes x kSymbolWindow, ~16 KB transient), so a million walks
//     hold no per-walk symbol storage.
//
// Semantics are pinned to RouteSession step for step: same transmission
// counts, same turn-around ticks, same verdicts (tests/core/
// multi_walk_test.cpp drives both in lockstep).  The arena handles
// exactly the hot case — kRoute sessions with s != t over a static,
// perfect-link cubic reduction; everything else stays on the scalar
// lanes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/graph.h"

namespace uesr::core {

class MultiWalkArena {
 public:
  /// Lanes per block sweep: enough independent loads to saturate the
  /// memory system, small enough that the scratch symbol windows stay
  /// cache-resident.
  static constexpr std::size_t kBlockLanes = 64;
  /// Symbols fetched per window refill; one virtual fill() serves up to a
  /// whole round's forward run.
  static constexpr std::size_t kSymbolWindow = 64;

  /// `net` must be cubic (every reduce_to_cubic output is) and, with
  /// `seq`, must outlive the arena.
  MultiWalkArena(const explore::ReducedGraph& net,
                 const explore::ExplorationSequence& seq);

  /// Admits the walk s -> t (original names, s != t); returns its walk
  /// index (dense, in admission order).  State is never freed: a finished
  /// walk keeps its 26 bytes until the arena dies.
  std::size_t admit(graph::NodeId s, graph::NodeId t);

  std::size_t size() const { return node_.size(); }

  /// The kernel: grants each of walks[0..count) up to `budget` further
  /// transmissions, sweeping kBlockLanes walks per slot.  Finished walks
  /// in the list are skipped for free.  Each walk's trajectory is
  /// independent of the others, so any partition of a walk set into
  /// step_block calls yields bit-identical per-walk outcomes.
  void step_block(const std::size_t* walks, std::size_t count,
                  std::uint64_t budget);

  /// Single-walk convenience (the property tests' budget-pattern driver).
  void step_walk(std::size_t w, std::uint64_t budget) {
    step_block(&w, 1, budget);
  }

  bool finished(std::size_t w) const { return (flags_[w] & kFinished) != 0; }
  /// Status success; meaningful once finished() (mirrors RouteSession).
  bool delivered(std::size_t w) const {
    return (flags_[w] & kSuccess) != 0;
  }
  bool target_reached(std::size_t w) const {
    return (flags_[w] & kTargetReached) != 0;
  }
  std::uint64_t transmissions(std::size_t w) const { return tx_[w]; }
  /// Header index j (symbols consumed), for the lockstep property tests.
  std::uint64_t index(std::size_t w) const { return index_[w]; }
  /// Original name of the node currently holding the message.
  graph::NodeId current_original(std::size_t w) const;

  /// Heap bytes of per-walk state (the §2.13 memory accounting).
  std::size_t walk_state_bytes() const;

 private:
  static constexpr std::uint8_t kInjected = 1;
  static constexpr std::uint8_t kBackward = 2;
  static constexpr std::uint8_t kFinished = 4;
  static constexpr std::uint8_t kSuccess = 8;
  static constexpr std::uint8_t kTargetReached = 16;

  /// "No deferred target check" sentinel for step_lane's out-param (never
  /// a real gadget node: reductions keep 3n well under 2^32 - 1).
  static constexpr graph::NodeId kNoCheck = ~graph::NodeId{0};

  /// One step() of lane r (scratch row r, walk walks_[r]).  kIsBackward
  /// is the lane's direction at entry (the sweeps keep lanes partitioned
  /// so it is statically known).  Forward: returns whether the lane
  /// turned backward (always one transmission).  Backward: returns
  /// whether the lane is still stepping (false = the free terminate just
  /// finished it, zero transmissions).  When the step needs a target
  /// check, writes the landing node to *landed (and prefetches
  /// original_of_ there) for the block's deferred flag sweep.
  template <bool kIsBackward>
  bool step_lane(std::size_t w, std::size_t r, graph::NodeId* landed);

  /// Warms entry v's packed rotation lines (far-node triple + port word)
  /// one slot ahead of their use.
  void prefetch_node(graph::NodeId v) const {
    const std::size_t i = 3 * static_cast<std::size_t>(v);
    __builtin_prefetch(far_ + i, 0, 1);
    __builtin_prefetch(far_ + i + 2, 0, 1);  // 12 B span may cross a line
    __builtin_prefetch(ports_->word_of(i), 0, 1);
  }
  explore::Symbol lane_symbol(std::size_t w, std::size_t r, std::uint64_t j);

  // Shared immutable structure (borrowed).
  const explore::ReducedGraph* net_;
  const explore::ExplorationSequence* seq_;
  std::uint64_t seq_length_;
  const graph::NodeId* far_;            // packed cubic rotation map
  const util::PackedArray* ports_;
  const graph::NodeId* original_of_;

  // Per-walk SoA state, indexed by walk id.
  std::vector<graph::NodeId> node_;     // current gadget (start pre-inject)
  std::vector<std::uint8_t> port_;      // arrival port (0..2)
  std::vector<std::uint8_t> flags_;
  std::vector<graph::NodeId> target_;   // target original name
  std::vector<std::uint64_t> index_;    // header.index (symbols consumed)
  std::vector<std::uint64_t> tx_;

  // Per-call scratch: lane r's symbol window is
  // symbols_[r*kSymbolWindow .. +win_len_[r]) covering indices starting at
  // win_lo_[r].  Reset (len 0) at the start of every block.
  std::vector<explore::Symbol> symbols_;
  std::vector<std::uint64_t> win_lo_;
  std::vector<std::uint64_t> win_len_;
};

}  // namespace uesr::core
