// Route tracing & visualization: watch the stateless walker work, then
// export the network and the successful route to Graphviz DOT.
//
//   $ ./route_trace_viz [--nodes=12] [--p=0.25] [--seed=4] [--dot=route.dot]
//
// The DOT file colours the source green, the target red, and every node
// the message visited in grey — render with `dot -Tsvg route.dot`.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  uesr::util::Cli cli(argc, argv);
  const auto n = static_cast<uesr::graph::NodeId>(cli.get_int("nodes", 12));
  const double p = cli.get_double("p", 0.25);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  const std::string dot_path = cli.get("dot", "route.dot");

  uesr::graph::Graph g = uesr::graph::connected_gnp(n, p, seed);
  uesr::explore::ReducedGraph red = uesr::explore::reduce_to_cubic(g);
  auto seq = uesr::explore::standard_ues(red.cubic.num_nodes());

  const uesr::graph::NodeId s = 0, t = n - 1;
  uesr::core::RouteSession session(red, *seq, s, t);

  std::vector<bool> visited(n, false);
  visited[s] = true;
  std::cout << "walk (first 40 original-node arrivals): " << s;
  int printed = 1;
  std::uint64_t turn_step = 0;
  while (!session.finished()) {
    session.step();
    if (session.finished()) break;
    uesr::graph::NodeId at = session.current_original();
    if (!visited[at] && printed < 40) {
      std::cout << " -> " << at;
      ++printed;
    }
    visited[at] = true;
    if (session.target_reached() && turn_step == 0)
      turn_step = session.transmissions();
  }
  std::cout << "\n\nreached " << t << " after " << session.first_hit_step()
            << " forward steps (" << turn_step
            << " transmissions); confirmation returned to " << s
            << " after " << session.transmissions()
            << " total transmissions; status = "
            << (session.status() == uesr::net::Status::kSuccess ? "success"
                                                                : "failure")
            << "\n";

  // DOT export with route colouring.
  std::ostringstream os;
  os << "graph route {\n  overlap=false;\n";
  for (uesr::graph::NodeId v = 0; v < n; ++v) {
    os << "  " << v << " [style=filled,fillcolor="
       << (v == s ? "green" : v == t ? "red" : visited[v] ? "gray80" : "white")
       << "];\n";
  }
  for (uesr::graph::NodeId v = 0; v < n; ++v)
    for (uesr::graph::Port q = 0; q < g.degree(v); ++q) {
      auto far = g.rotate(v, q);
      if (uesr::graph::HalfEdge{v, q} < far)
        os << "  " << v << " -- " << far.node << ";\n";
    }
  os << "}\n";
  std::ofstream out(dot_path);
  out << os.str();
  std::cout << "\nwrote " << dot_path
            << " (render: dot -Tsvg " << dot_path << " -o route.svg)\n";
  return 0;
}
