// Sensor-field scenario: a 2D unit-disk network of battery-powered motes.
//
//   $ ./sensor_grid [--motes=80] [--radius=0.22] [--seed=3] [--pairs=12]
//
// Compares, on the same field:
//   * greedy geographic forwarding (needs GPS; dies in voids),
//   * GPSR-style greedy+face on the Gabriel planarization (needs GPS +
//     planarization; guaranteed in 2D),
//   * the UES router (needs NOTHING: no positions, no tables, no state),
// and runs a sink broadcast with the same walker.
#include <iostream>

#include "baselines/geo.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/geometric.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  uesr::util::Cli cli(argc, argv);
  const auto motes = static_cast<uesr::graph::NodeId>(cli.get_int("motes", 80));
  const double radius = cli.get_double("radius", 0.22);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const int pairs = static_cast<int>(cli.get_int("pairs", 12));

  auto field = uesr::graph::connected_unit_disk_2d(motes, radius, seed);
  auto planar = uesr::graph::gabriel_subgraph(field);
  std::cout << "sensor field: " << uesr::graph::describe(field.graph)
            << "  (gabriel subgraph: " << planar.graph.num_edges()
            << " edges)\n\n";

  uesr::core::AdHocNetwork net(field.graph);
  uesr::util::Pcg32 rng(seed ^ 0xfeed);

  uesr::util::Table table({"pair", "greedy", "gpsr(hops)", "ues(hops)",
                           "ues fwd steps"});
  int greedy_ok = 0, gpsr_ok = 0, ues_ok = 0;
  for (int i = 0; i < pairs; ++i) {
    uesr::graph::NodeId s = rng.next_below(motes);
    uesr::graph::NodeId t = rng.next_below(motes);
    if (s == t) t = (t + 1) % motes;
    auto greedy = uesr::baselines::greedy_route_2d(field, s, t);
    auto gpsr = uesr::baselines::gpsr_route(planar, s, t);
    auto ues = net.route(s, t);
    greedy_ok += greedy.delivered;
    gpsr_ok += gpsr.delivered;
    ues_ok += ues.delivered;
    table.row()
        .cell(std::to_string(s) + "->" + std::to_string(t))
        .cell(greedy.delivered
                  ? std::to_string(greedy.transmissions)
                  : std::string("stuck"))
        .cell(gpsr.delivered ? std::to_string(gpsr.transmissions)
                             : std::string("fail"))
        .cell(ues.total_transmissions)
        .cell(ues.forward_steps);
  }
  table.print(std::cout);
  std::cout << "\ndelivery: greedy " << greedy_ok << "/" << pairs << ", gpsr "
            << gpsr_ok << "/" << pairs << ", ues " << ues_ok << "/" << pairs
            << "\n";

  // Sink broadcast: node 0 disseminates a configuration update.
  auto b = net.broadcast(0);
  std::cout << "\nbroadcast from sink 0: reached " << b.distinct_visited
            << "/" << motes << " motes in " << b.total_transmissions
            << " transmissions (stateless token, no duplicate tables)\n";
  return 0;
}
