// Busy-network scenario: one mesh, many users talking at once.
//
//   $ ./busy_network [--nodes=40] [--sessions=200] [--workload=poisson]
//                    [--interarrival=2.0] [--sink=0] [--ttl=4096]
//                    [--seed=7] [--churn] [--period=64] [--epochs=32]
//                    [--threads=N]
//
// Everything else in examples/ routes one message at a time; a deployed
// network serves a crowd.  The traffic engine admits a whole workload —
// Poisson arrivals, a hotspot sink, all-pairs gossip, or a mixed blend of
// route/hybrid/broadcast sessions — over one shared topology and one
// shared transmission clock, steps every in-flight session concurrently,
// and completes each with its exact Theorem-1 verdict.  With --churn the
// same crowd routes while the topology changes under it on a single
// shared schedule: deliveries and failure certificates stay exact per
// session, stamped with the epoch they completed against.
#include <iostream>
#include <memory>
#include <string>

#include "baselines/workload.h"
#include "graph/churn.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/table.h"

int main(int argc, char** argv) {
  uesr::util::Cli cli(argc, argv);
  const auto nodes =
      static_cast<uesr::graph::NodeId>(cli.get_int("nodes", 40));
  const int sessions = static_cast<int>(cli.get_int("sessions", 200));
  const std::string kind = cli.get("workload", "poisson");
  const double interarrival = cli.get_double("interarrival", 2.0);
  const auto sink = static_cast<uesr::graph::NodeId>(cli.get_int("sink", 0));
  const auto ttl = static_cast<std::uint64_t>(cli.get_int("ttl", 4096));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool churn = cli.get_bool("churn", false);
  const auto period = static_cast<std::uint64_t>(cli.get_int("period", 64));
  const auto epochs = static_cast<std::uint64_t>(cli.get_int("epochs", 32));
  const unsigned threads = uesr::util::resolve_threads(
      static_cast<unsigned>(cli.get_int("threads", 0)));

  uesr::baselines::Workload w;
  if (kind == "poisson") {
    w = uesr::baselines::poisson_workload(nodes, sessions, interarrival,
                                          seed);
  } else if (kind == "hotspot") {
    w = uesr::baselines::hotspot_workload(nodes, sessions, sink,
                                          interarrival, seed);
  } else if (kind == "allpairs") {
    w = uesr::baselines::all_pairs_workload(nodes);
  } else if (kind == "mixed") {
    w = uesr::baselines::mixed_workload(nodes, sessions, interarrival, ttl,
                                        seed);
  } else {
    std::cerr << "unknown --workload (poisson|hotspot|allpairs|mixed)\n";
    return 1;
  }

  uesr::baselines::TrafficCell cell;
  std::string topology;
  if (churn) {
    uesr::graph::NodeChurnScenario sc(
        uesr::graph::connected_gnp(nodes, 0.16, seed ^ 0x11), 0.08, 0.5,
        seed ^ 0x22);
    topology = sc.name();
    cell = uesr::baselines::traffic_experiment(sc, period, epochs, w,
                                               0x5eed0001, threads);
  } else {
    uesr::graph::Graph g =
        uesr::graph::connected_gnp(nodes, 0.16, seed ^ 0x11);
    topology = "connected-gnp(" + std::to_string(nodes) + ")";
    cell = uesr::baselines::traffic_experiment(g, w, 0x5eed0001, threads);
  }

  std::cout << "busy network: " << w.name << " over " << topology << ", "
            << threads << " worker lanes\n\n";
  uesr::util::Table t({"sessions", "delivered", "cert-fail", "exhausted",
                       "p50 tx", "p99 tx", "restarts", "drained at tick"});
  t.row()
      .cell(cell.sessions)
      .cell(cell.delivered)
      .cell(cell.certified)
      .cell(cell.exhausted)
      .cell(cell.p50_tx, 0)
      .cell(cell.p99_tx, 0)
      .cell(cell.restarts)
      .cell(cell.final_clock);
  t.print(std::cout);
  std::cout << "\nevery session ended with its exact verdict — delivery, "
               "failure certificate"
            << (churn ? " (epoch-exact under the shared churn schedule)"
                      : "")
            << ", or a hybrid give-up — while sharing one clock; rerun "
               "with --threads=1 to see the same table from a serial "
               "engine\n";
  return 0;
}
