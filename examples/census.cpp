// Census scenario: a node wakes up in an unknown network and must learn
// how big its world is — with O(log n) memory and no cooperation beyond
// stateless forwarding (paper §4, Algorithm CountNodes).
//
//   $ ./census [--nodes=18] [--p=0.14] [--seed=11] [--faithful]
//
// Shows the doubling epochs, the neighbourhood-closure certificate, and
// the exact message bill.  --faithful executes every probe hop by hop
// (O(L^3) messages — the price of statelessness); the default fast mode
// reports identical numbers from a central replay.
#include <iostream>

#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  uesr::util::Cli cli(argc, argv);
  const auto n = static_cast<uesr::graph::NodeId>(cli.get_int("nodes", 18));
  const double p = cli.get_double("p", 0.14);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const bool faithful = cli.get_bool("faithful", false);

  // A graph with several components: each census sees only its own world.
  uesr::graph::Graph g = uesr::graph::gnp(n, p, seed);
  std::cout << "network: " << uesr::graph::describe(g) << " with "
            << uesr::graph::num_components(g) << " components\n\n";

  uesr::core::AdHocNetwork net(g);
  auto mode = faithful ? uesr::core::CountMode::kFaithful
                       : uesr::core::CountMode::kFast;

  for (uesr::graph::NodeId s : {uesr::graph::NodeId{0},
                                static_cast<uesr::graph::NodeId>(n / 2),
                                static_cast<uesr::graph::NodeId>(n - 1)}) {
    auto truth = uesr::graph::component_of(g, s).size();
    auto c = net.count_component(s, mode);
    std::cout << "census from node " << s << ":\n"
              << "  learned |Cs| = " << c.original_count
              << " (ground truth " << truth << ")"
              << (c.original_count == truth ? "  [exact]" : "  [MISMATCH]")
              << "\n"
              << "  gadget vertices |Cs'| = " << c.gadget_count << "\n"
              << "  doubling epochs = " << c.epochs
              << " (closure at bound 2^" << c.epochs << " = "
              << c.final_bound << ")\n"
              << "  probes = " << c.probes
              << ", transmissions = " << c.transmissions
              << (faithful ? " (every hop really sent)" : " (exact replay)")
              << "\n\n";
  }
  std::cout << "Each node along the way stored nothing; the coordinator "
               "held two names and a counter.\n";
  return 0;
}
