// Drone-swarm scenario: a 3D unit-ball mesh, the regime where
// position-based guarantees evaporate.
//
//   $ ./drone_mesh_3d [--drones=70] [--radius=0.34] [--seed=5] [--pairs=15]
//
// In 2D, greedy + face routing on a planarized subgraph guarantees
// delivery.  In 3D there is no planarization and no face to follow —
// Durocher, Kirkpatrick and Narayanan (the paper's reference [2]) proved
// no deterministic local position-based algorithm can guarantee delivery.
// Greedy still works while the mesh is dense; in sparse meshes it dies in
// voids.  The UES router ignores geometry entirely and delivers anyway —
// this is the concrete gap Theorem 1 closes.
#include <iostream>

#include "baselines/geo.h"
#include "core/api.h"
#include "graph/geometric.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  uesr::util::Cli cli(argc, argv);
  const auto drones =
      static_cast<uesr::graph::NodeId>(cli.get_int("drones", 70));
  const double radius = cli.get_double("radius", 0.34);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const int pairs = static_cast<int>(cli.get_int("pairs", 15));

  auto mesh = uesr::graph::connected_unit_disk_3d(drones, radius, seed);
  std::cout << "3D mesh: " << uesr::graph::describe(mesh.graph) << "\n\n";

  uesr::core::AdHocNetwork net(mesh.graph);
  uesr::util::Pcg32 rng(seed ^ 0xd12);

  uesr::util::Table table({"pair", "greedy-3d", "ues delivered",
                           "ues transmissions"});
  int greedy_ok = 0, ues_ok = 0;
  for (int i = 0; i < pairs; ++i) {
    uesr::graph::NodeId s = rng.next_below(drones);
    uesr::graph::NodeId t = rng.next_below(drones);
    if (s == t) t = (t + 1) % drones;
    auto greedy = uesr::baselines::greedy_route_3d(mesh, s, t);
    auto ues = net.route(s, t);
    greedy_ok += greedy.delivered;
    ues_ok += ues.delivered;
    table.row()
        .cell(std::to_string(s) + "->" + std::to_string(t))
        .cell(greedy.delivered ? std::to_string(greedy.transmissions)
                               : std::string(greedy.stuck ? "void!" : "fail"))
        .cell(ues.delivered)
        .cell(ues.total_transmissions);
  }
  table.print(std::cout);
  std::cout << "\ndelivery: greedy-3d " << greedy_ok << "/" << pairs
            << " (no face-routing rescue exists in 3D), ues " << ues_ok
            << "/" << pairs << " — guaranteed, geometry-free\n";
  return 0;
}
