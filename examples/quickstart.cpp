// Quickstart: guaranteed routing on an ad hoc network in ~20 lines.
//
//   $ ./quickstart [--nodes=24] [--p=0.12] [--seed=7]
//
// Builds a random connected network, routes a message between the two
// most distant nodes with the UES router (Theorem 1), then shows that a
// failure really is a certificate by asking for an unreachable target.
#include <iostream>

#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  uesr::util::Cli cli(argc, argv);
  const auto n = static_cast<uesr::graph::NodeId>(cli.get_int("nodes", 24));
  const double p = cli.get_double("p", 0.12);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // An ad hoc network nobody has a map of: random topology, anonymous
  // ports, no routing tables.
  uesr::graph::Graph g = uesr::graph::connected_gnp(n, p, seed);
  std::cout << "network: " << uesr::graph::describe(g) << "\n";

  uesr::core::AdHocNetwork net(g);
  std::cout << "reduced to 3-regular G': "
            << uesr::graph::describe(net.reduced().cubic) << "\n\n";

  // Route between the endpoints of a BFS-diameter pair.
  auto dist = uesr::graph::bfs_distances(g, 0);
  uesr::graph::NodeId far = 0;
  for (uesr::graph::NodeId v = 0; v < n; ++v)
    if (dist[v] != uesr::graph::kUnreachable && dist[v] > dist[far]) far = v;

  auto r = net.route(0, far);
  std::cout << "route 0 -> " << far << " (BFS distance " << dist[far]
            << "):\n"
            << "  delivered:      " << (r.delivered ? "yes" : "no") << "\n"
            << "  forward steps:  " << r.forward_steps << "\n"
            << "  transmissions:  " << r.total_transmissions << "\n"
            << "  header size:    " << r.header_bits << " bits (O(log n))\n\n";

  // Add an unreachable island and show the failure certificate.
  uesr::graph::GraphBuilder b(g.num_nodes() + 2);
  for (uesr::graph::NodeId v = 0; v < g.num_nodes(); ++v)
    for (uesr::graph::Port q = 0; q < g.degree(v); ++q) {
      auto far_end = g.rotate(v, q);
      if (uesr::graph::HalfEdge{v, q} < far_end) b.add_edge(v, far_end.node);
    }
  b.add_edge(n, n + 1);  // the island
  uesr::graph::Graph g2 = std::move(b).build();
  uesr::core::AdHocNetwork net2(g2);
  auto fail = net2.route(0, n);
  std::cout << "route 0 -> " << n << " (disconnected island):\n"
            << "  delivered: " << (fail.delivered ? "yes" : "no")
            << "  — the walk exhausted T_n and returned a certified"
               " failure after "
            << fail.total_transmissions << " transmissions\n";

  // No prior knowledge of the network size either (§4):
  auto adaptive = net.route_adaptive(0, far);
  std::cout << "\nadaptive route (CountNodes first): census says |Cs|="
            << adaptive.census.original_count << " originals, delivered="
            << (adaptive.route.delivered ? "yes" : "no") << "\n";
  return 0;
}
