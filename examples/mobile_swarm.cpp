// Mobile-swarm scenario: random-waypoint drones whose radio graph is
// re-derived every epoch while messages are in flight.
//
//   $ ./mobile_swarm [--drones=40] [--dim=3] [--radius=0.36] [--speed=0.05]
//                    [--seed=9] [--pairs=12] [--period=48] [--epochs=24]
//
// This is the regime the paper's title is about: no planarization survives
// motion (and none exists in 3D at all), and any route computed against
// yesterday's topology is stale.  Algorithm Route needs nothing but the
// epoch stamp: when the swarm moves mid-walk the session restarts from s
// against the new snapshot — stateless nodes have nothing to forget — and
// every verdict it returns is exact for the topology it completed on.
#include <iostream>
#include <string>

#include "baselines/churn.h"
#include "graph/churn.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  uesr::util::Cli cli(argc, argv);
  const auto drones =
      static_cast<uesr::graph::NodeId>(cli.get_int("drones", 40));
  const int dim = static_cast<int>(cli.get_int("dim", 3));
  const double radius = cli.get_double("radius", 0.36);
  const double speed = cli.get_double("speed", 0.05);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
  const int pairs = static_cast<int>(cli.get_int("pairs", 12));
  const auto period = static_cast<std::uint64_t>(cli.get_int("period", 48));
  const auto epochs = static_cast<std::uint64_t>(cli.get_int("epochs", 24));

  uesr::graph::WaypointScenario swarm(drones, dim, radius, speed, seed);
  std::cout << "mobile swarm: " << swarm.name() << ", " << drones
            << " drones, epoch every " << period << " transmissions, "
            << epochs << " epochs before the swarm holds still\n\n";

  uesr::baselines::ChurnRouter router(swarm, period, epochs);
  uesr::util::Pcg32 rng(seed ^ 0x54a3);
  uesr::util::Table table({"pair", "ues", "epochs crossed", "restarts",
                           "ues tx", "greedy", "rand-walk"});
  int ues_ok = 0, greedy_ok = 0, rw_ok = 0;
  const std::uint64_t ttl = 40ULL * drones * drones;
  for (int i = 0; i < pairs; ++i) {
    uesr::graph::NodeId s = rng.next_below(drones);
    uesr::graph::NodeId t = rng.next_below(drones);
    if (s == t) t = (t + 1) % drones;
    const auto ues = router.route_ues(s, t);
    const auto greedy = router.route_greedy(s, t);
    const auto walk =
        router.route_random_walk(s, t, ttl, uesr::util::counter_hash(seed, i));
    ues_ok += ues.delivered;
    greedy_ok += greedy.delivered;
    rw_ok += walk.delivered;
    table.row()
        .cell(std::to_string(s) + "->" + std::to_string(t))
        .cell(ues.delivered ? "delivered"
                            : (ues.failure_certified ? "certified-fail"
                                                     : "?"))
        .cell(ues.ticks)
        .cell(ues.restarts)
        .cell(ues.transmissions)
        .cell(greedy.delivered ? std::to_string(greedy.transmissions)
                               : std::string("void!"))
        .cell(walk.delivered ? std::to_string(walk.transmissions)
                             : std::string("ttl"));
  }
  table.print(std::cout);
  std::cout << "\ndelivery: ues " << ues_ok << "/" << pairs
            << " (rest are epoch-exact failure certificates), greedy "
            << greedy_ok << "/" << pairs << ", random walk " << rw_ok << "/"
            << pairs << " — motion breaks geometry, not the UES walk\n";
  return 0;
}
