#include "net/reliable.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace uesr::net {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Port;

TEST(ReliableTransport, PerfectChannelIsOneDataOneAck) {
  Graph g = graph::from_edges(2, {{0, 1}});
  ReliableTransport rt(g, 3);
  ReliableOutcome out = rt.send(0, 0);
  EXPECT_TRUE(out.delivered);
  EXPECT_TRUE(out.data_arrived);
  EXPECT_EQ(out.arrival.node, 1u);
  EXPECT_EQ(out.arrival.port, 0u);
  EXPECT_EQ(out.data_copies, 1u);
  EXPECT_EQ(out.ack_copies, 1u);
  EXPECT_EQ(rt.frames(), 2u);
}

TEST(ReliableTransport, RetransmitsThroughLossUntilAcked) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.loss = 0.5;
  ReliableOptions opts;
  opts.max_retries = 64;  // generous: delivery near-certain
  int delivered = 0;
  std::uint64_t retransmissions = 0;
  for (int i = 0; i < 40; ++i) {
    ReliableTransport rt(g, /*seed=*/1000 + i, m, opts);
    ReliableOutcome out = rt.send(0, 0);
    delivered += out.delivered;
    retransmissions += out.data_copies - 1;
    if (out.delivered) {
      EXPECT_TRUE(out.data_arrived);
    }
  }
  EXPECT_EQ(delivered, 40);      // P(fail) ~ 0.5^65 per side
  EXPECT_GT(retransmissions, 0u);  // loss really forced retries
}

TEST(ReliableTransport, BudgetExhaustionSpendsExactlyMaxRetriesPlusOne) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel dead;
  dead.loss = 1.0;
  ReliableOptions opts;
  opts.max_retries = 5;
  ReliableTransport rt(g, 3, dead, opts);
  ReliableOutcome out = rt.send(0, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.data_arrived);
  EXPECT_EQ(out.data_copies, 6u);  // initial + 5 retries
  EXPECT_EQ(out.ack_copies, 0u);
}

TEST(ReliableTransport, ForwardDirectionDownFailsCleanly) {
  Graph g = graph::from_edges(2, {{0, 1}});
  ReliableOptions opts;
  opts.max_retries = 3;
  ReliableTransport rt(g, 3, {}, opts);
  rt.sim().set_link_up(0, 0, false);
  ReliableOutcome out = rt.send(0, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.data_arrived);
  EXPECT_EQ(out.data_copies, 4u);
}

// The two-generals gap made concrete: data crosses, every ack dies.  The
// sender must report not-delivered while the simulator's ground truth
// records the arrival — exactly the case that turns failure certificates
// into "uncertified after budget" one layer up.
TEST(ReliableTransport, AckDirectionDownArrivesButNeverConfirms) {
  Graph g = graph::from_edges(2, {{0, 1}});
  ReliableOptions opts;
  opts.max_retries = 3;
  ReliableTransport rt(g, 3, {}, opts);
  rt.sim().set_link_up(1, 0, false);  // kill the 1 -> 0 (ack) direction only
  ReliableOutcome out = rt.send(0, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.data_arrived);
  EXPECT_EQ(out.arrival.node, 1u);
  EXPECT_EQ(out.data_copies, 4u);
  EXPECT_EQ(out.ack_copies, 4u);  // the receiver acked every copy, in vain
}

TEST(ReliableTransport, DuplicationAloneCannotBreakExactlyOnce) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.dup = 1.0;
  m.latency_min = 1;
  m.latency_max = 13;
  ReliableOptions opts;
  opts.rto = 64;  // > worst-case RTT: no spurious timeout retransmits
  // Pin the fixed-RTO regime: an adaptive estimator would converge to the
  // mean RTT and time out on the 13-tick jitter tail, which is allowed
  // behaviour but not what this test is about.
  opts.adaptive_rto = false;
  ReliableTransport rt(g, 3, m, opts);
  for (int i = 0; i < 20; ++i) {
    ReliableOutcome out = rt.send(0, 0);
    EXPECT_TRUE(out.delivered);
    EXPECT_EQ(out.arrival.node, 1u);
    // data_copies == 1: no loss, so never a retransmit; the channel's extra
    // copies are dups, not sends.
    EXPECT_EQ(out.data_copies, 1u);
  }
}

TEST(ReliableTransport, AdaptiveRtoConvergesOnCleanLink) {
  Graph g = graph::from_edges(2, {{0, 1}});
  ReliableTransport rt(g, 3);  // adaptive_rto defaults on
  SimTime first = 0;
  for (int i = 0; i < 16; ++i) {
    ReliableOutcome out = rt.send(0, 0);
    ASSERT_TRUE(out.delivered);
    EXPECT_EQ(out.retransmits, 0u);
    EXPECT_EQ(out.rtt_samples, 1u);  // one clean Karn sample per transfer
    if (i == 0) {
      first = out.first_rto;
      EXPECT_EQ(first, 8u);  // seeded from options().rto
    }
  }
  EXPECT_EQ(rt.estimator().srtt(), 2u);  // unit latency each way
  // The working RTO tracked the measured RTT down from the initial 8.
  EXPECT_EQ(rt.estimator().rto(), 5u);
  EXPECT_EQ(rt.total_rtt_samples(), 16u);
}

TEST(ReliableTransport, KarnBackoffPersistsAcrossTransfersUntilSampled) {
  Graph g = graph::from_edges(2, {{0, 1}});
  ReliableOptions opts;
  opts.max_retries = 4;
  ReliableTransport rt(g, 3, {}, opts);
  rt.sim().set_link_up(0, 0, false);  // forward dead: timeouts only
  ReliableOutcome failed = rt.send(0, 0);
  EXPECT_FALSE(failed.delivered);
  EXPECT_GT(failed.backoffs, 0u);
  EXPECT_EQ(failed.rtt_samples, 0u);  // ambiguous copies feed nothing
  const SimTime backed_off = rt.estimator().rto();
  EXPECT_GT(backed_off, opts.rto);
  rt.sim().set_link_up(0, 0, true);
  ReliableOutcome healed = rt.send(0, 0);
  EXPECT_TRUE(healed.delivered);
  // Karn: the backed-off timeout was still armed for the first copy after
  // healing; the clean sample then ended the backoff.
  EXPECT_EQ(healed.first_rto, backed_off);
  EXPECT_EQ(healed.rtt_samples, 1u);
  EXPECT_LT(rt.estimator().rto(), backed_off);
}

TEST(ReliableTransport, StaleFramesOfEarlierTransfersAreIgnored) {
  // High-jitter duplication leaves stragglers of transfer k in the queue
  // when transfer k+1 starts; they must not satisfy or poison it.
  Graph g = graph::connected_gnp(8, 0.4, 17);
  LinkModel m;
  m.dup = 0.8;
  m.loss = 0.3;
  m.latency_min = 1;
  m.latency_max = 40;
  ReliableOptions opts;
  opts.max_retries = 20;
  opts.rto = 4;
  ReliableTransport rt(g, 23, m, opts);
  util::Pcg32 walk(9);
  NodeId at = 0;
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    const Port out_port = walk.next_below(g.degree(at));
    ReliableOutcome out = rt.send(at, out_port);
    if (out.delivered) {
      // The arrival must be the genuine far end of the edge we sent on —
      // never a stale frame's endpoint.
      const graph::HalfEdge far = g.rotate(at, out_port);
      ASSERT_EQ(out.arrival.node, far.node);
      ASSERT_EQ(out.arrival.port, far.port);
      at = out.arrival.node;
      ++ok;
    }
  }
  EXPECT_GT(ok, 150);  // generous budget: most transfers confirm
}

TEST(ReliableTransport, BackoffDeterministicAcrossRuns) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.loss = 0.7;
  ReliableOptions opts;
  opts.max_retries = 10;
  std::uint64_t frames[2];
  bool delivered[2];
  for (int run = 0; run < 2; ++run) {
    ReliableTransport rt(g, /*seed=*/0xbeef, m, opts);
    ReliableOutcome out = rt.send(0, 0);
    frames[run] = rt.frames();
    delivered[run] = out.delivered;
  }
  EXPECT_EQ(frames[0], frames[1]);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(ReliableTransport, FullCorruptionDegradesToLossAndSpendsTheBudget) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.corrupt = 1.0;  // every copy arrives, none passes the CRC
  ReliableOptions opts;
  opts.max_retries = 5;
  ReliableTransport rt(g, 3, m, opts);
  ReliableOutcome out = rt.send(0, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.data_arrived);  // dropped unprocessed — never "arrived"
  EXPECT_EQ(out.data_copies, 6u);
  EXPECT_EQ(out.corrupt_drops, 6u);  // each copy was rejected on arrival
  EXPECT_EQ(out.ack_copies, 0u);     // a rejected frame is never acked
  EXPECT_EQ(rt.sim().frames_corrupted(), 6u);
}

TEST(ReliableTransport, ModerateCorruptionIsRecoveredByRetransmission) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.corrupt = 0.3;
  ReliableOptions opts;
  opts.max_retries = 64;
  int delivered = 0;
  std::uint64_t drops = 0;
  for (int i = 0; i < 40; ++i) {
    ReliableTransport rt(g, /*seed=*/500 + i, m, opts);
    ReliableOutcome out = rt.send(0, 0);
    delivered += out.delivered;
    drops += out.corrupt_drops;
  }
  EXPECT_EQ(delivered, 40);  // corruption is just loss to the protocol
  EXPECT_GT(drops, 0u);      // and it really happened
}

TEST(ReliableTransport, ReceiverCrashWindowNeverDoubleDelivers) {
  // The amnesia contract for stop-and-wait: dedup is by globally-unique
  // transfer id (durable), so a receiver that crashes and recovers
  // mid-transfer costs retries, never a second processing.  Observable
  // here as: every outcome is still exactly delivered-or-ignorant, and
  // crash drops account for the frames the down window swallowed.
  Graph g = graph::from_edges(2, {{0, 1}});
  ReliableOptions opts;
  opts.max_retries = 32;
  ReliableTransport rt(g, 3, {}, opts);
  FaultAction crash;
  crash.kind = FaultAction::Kind::kCrash;
  crash.node = 1;
  FaultAction recover;
  recover.kind = FaultAction::Kind::kRecover;
  recover.node = 1;
  rt.sim().schedule_fault(1, crash);    // swallow the first copies
  rt.sim().schedule_fault(40, recover);
  ReliableOutcome out = rt.send(0, 0);
  EXPECT_TRUE(out.delivered);
  EXPECT_GT(out.retransmits, 0u);  // the window really cost retries
  EXPECT_GT(rt.sim().frames_crash_dropped(), 0u);
  EXPECT_EQ(rt.sim().crash_epochs(1), 1u);
}

TEST(ReliableTransport, PerLinkRtoKeepsSlowAndFastLinksApart) {
  // A triangle with one slow edge: under the transport-wide estimator the
  // slow link inflates every timeout; per-link mode keeps one estimator
  // per directed link, so the fast links' RTOs stay tight.
  Graph g = graph::cycle(3);
  ReliableOptions opts;
  opts.per_link_rto = true;
  ReliableTransport rt(g, 3, {}, opts);
  LinkModel slow;
  slow.latency_min = slow.latency_max = 50;
  const graph::HalfEdge back = g.rotate(0, 0);  // the ack's return edge
  rt.sim().set_link_model(0, 0, slow);          // data direction slow
  rt.sim().set_link_model(back.node, back.port, slow);  // ack path slow
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(rt.send(0, 0).delivered);  // slow edge
    EXPECT_TRUE(rt.send(0, 1).delivered);  // fast edge 0 -> 2
  }
  const SimTime slow_srtt = rt.link_estimator(0, 0).srtt();
  const SimTime fast_srtt = rt.link_estimator(0, 1).srtt();
  EXPECT_GT(slow_srtt, 50u);  // ~100 (two slow legs per round trip)
  EXPECT_LT(fast_srtt, 10u);  // ~2
  EXPECT_LT(rt.link_estimator(0, 1).rto(), rt.link_estimator(0, 0).rto());
  // Karn discards the slow edge's first two transfers (they retransmit
  // while the timeout ramps from 8 past the 100-tick RTT): 16 - 2.
  EXPECT_EQ(rt.total_rtt_samples(), 14u);
  EXPECT_EQ(rt.estimator().samples(), 0u);  // shared estimator never fed
}

TEST(ReliableTransport, ValidatesOptions) {
  Graph g = graph::cycle(3);
  ReliableOptions zero_rto;
  zero_rto.rto = 0;
  EXPECT_THROW(ReliableTransport(g, 3, {}, zero_rto), std::invalid_argument);
  ReliableOptions inverted;
  inverted.rto = 100;
  inverted.rto_max = 10;
  EXPECT_THROW(ReliableTransport(g, 3, {}, inverted), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::net
