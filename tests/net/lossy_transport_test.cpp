#include "net/lossy_transport.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "net/transport.h"
#include "util/rng.h"

namespace uesr::net {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Port;

TEST(LossyTransport, PerfectChannelMatchesTransportPerSend) {
  Graph g = graph::from_edges(3, {{0, 1}, {1, 2}});
  Transport perfect(g);
  LossyTransport lossy(g, /*seed=*/3);
  Arrival a = perfect.send(0, 0);
  auto b = lossy.send(0, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a.node, b->node);
  EXPECT_EQ(a.port, b->port);
}

// The satellite equivalence claim in unit form (the property-test sweep is
// P9): at loss = 0, zero jitter, bidirectional links, a whole random walk
// replays net::Transport's arrival sequence and transmission count.
TEST(LossyTransport, PerfectChannelReplaysAWholeWalk) {
  const Graph g = graph::connected_gnp(14, 0.25, 11);
  Transport perfect(g);
  LossyTransport lossy(g, /*seed=*/5);
  util::Pcg32 walk(77);
  NodeId at_p = 0, at_l = 0;
  Port in_p = 0, in_l = 0;
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(at_p, at_l);
    const Port out = walk.next_below(g.degree(at_p));
    const Arrival a = perfect.send(at_p, out);
    const auto b = lossy.send(at_l, out);
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(a.node, b->node);
    ASSERT_EQ(a.port, b->port);
    at_p = a.node;
    in_p = a.port;
    at_l = b->node;
    in_l = b->port;
  }
  EXPECT_EQ(in_p, in_l);
  EXPECT_EQ(perfect.transmissions(), lossy.transmissions());
  EXPECT_EQ(lossy.transmissions(), 500u);
}

TEST(LossyTransport, FullLossReturnsNulloptButCountsTheSend) {
  Graph g = graph::cycle(4);
  LinkModel m;
  m.loss = 1.0;
  LossyTransport tr(g, 3, m);
  EXPECT_FALSE(tr.send(0, 0).has_value());
  EXPECT_EQ(tr.transmissions(), 1u);
}

TEST(LossyTransport, DuplicatedFrameResolvesOnce) {
  Graph g = graph::cycle(4);
  LinkModel m;
  m.dup = 1.0;
  m.latency_min = 1;
  m.latency_max = 9;
  LossyTransport tr(g, 3, m);
  auto a = tr.send(0, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->node, 1u);
  // The straggler copy of frame 0 must not satisfy a later send.
  LinkModel lossy;
  lossy.loss = 1.0;
  tr.sim().set_link_model(1, 1, lossy);
  EXPECT_FALSE(tr.send(1, 1).has_value());
}

TEST(LossyTransport, LossIsSeedDeterministic) {
  const Graph g = graph::connected_gnp(10, 0.3, 9);
  LinkModel m;
  m.loss = 0.4;
  int delivered[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    LossyTransport tr(g, /*seed=*/0x1234, m);
    util::Pcg32 walk(5);
    NodeId at = 0;
    for (int i = 0; i < 300; ++i) {
      const Port out = walk.next_below(g.degree(at));
      if (auto a = tr.send(at, out)) {
        at = a->node;
        ++delivered[run];
      }
    }
  }
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_GT(delivered[0], 0);
  EXPECT_LT(delivered[0], 300);
}

}  // namespace
}  // namespace uesr::net
