#include "net/message.h"

#include <gtest/gtest.h>

namespace uesr::net {
namespace {

TEST(HeaderBits, RouteHeaderComposition) {
  // namespace 2^16, L = 2^20-1: 2 kind + 16 s + 16 t + 1 dir + 1 status +
  // 20 index.
  EXPECT_EQ(header_bits(Kind::kRoute, 1ULL << 16, (1ULL << 20) - 1),
            2 + 16 + 16 + 1 + 1 + 20);
}

TEST(HeaderBits, BroadcastDropsTarget) {
  int route = header_bits(Kind::kRoute, 1 << 10, 1000);
  int bcast = header_bits(Kind::kBroadcast, 1 << 10, 1000);
  EXPECT_EQ(route - bcast, 10);
}

TEST(HeaderBits, ProbesCarryTheirFields) {
  int route = header_bits(Kind::kRoute, 1 << 10, 1000);
  int ret = header_bits(Kind::kRetrieve, 1 << 10, 1000);
  int retn = header_bits(Kind::kRetrieveNeighbor, 1 << 10, 1000);
  EXPECT_GT(ret, route);
  EXPECT_GT(retn, ret);
}

TEST(HeaderBits, LogarithmicGrowth) {
  // Doubling the namespace adds exactly 2 bits (s and t).
  for (int k = 4; k < 40; ++k) {
    int a = header_bits(Kind::kRoute, 1ULL << k, 1000);
    int b = header_bits(Kind::kRoute, 1ULL << (k + 1), 1000);
    EXPECT_EQ(b - a, 2);
  }
}

TEST(HeaderBits, RejectsEmptyNamespace) {
  EXPECT_THROW(header_bits(Kind::kRoute, 0, 10), std::invalid_argument);
}

TEST(NodeWorkingBits, DominatedByHeader) {
  int h = header_bits(Kind::kRetrieveNeighbor, 1 << 20, 1 << 24);
  int w = node_working_bits(1 << 20, 1 << 24);
  EXPECT_GT(w, h);
  EXPECT_LT(w, 2 * h);  // still O(log n)
}

TEST(Header, Defaults) {
  Header h;
  EXPECT_EQ(h.kind, Kind::kRoute);
  EXPECT_EQ(h.dir, Direction::kForward);
  EXPECT_EQ(h.status, Status::kInProgress);
  EXPECT_EQ(h.index, 0u);
  EXPECT_EQ(h.target, kNoTarget);
  EXPECT_EQ(h.payload_name, kNoTarget);
}

}  // namespace
}  // namespace uesr::net
