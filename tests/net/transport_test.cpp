#include "net/transport.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace uesr::net {
namespace {

TEST(Transport, DeliversToFarEndWithArrivalPort) {
  graph::Graph g = graph::from_edges(3, {{0, 1}, {1, 2}});
  Transport tr(g);
  Arrival a = tr.send(0, 0);
  EXPECT_EQ(a.node, 1u);
  EXPECT_EQ(a.port, 0u);
  Arrival b = tr.send(1, 1);
  EXPECT_EQ(b.node, 2u);
  EXPECT_EQ(b.port, 0u);
}

TEST(Transport, CountsTransmissions) {
  graph::Graph g = graph::cycle(4);
  Transport tr(g);
  EXPECT_EQ(tr.transmissions(), 0u);
  tr.send(0, 0);
  tr.send(1, 1);
  EXPECT_EQ(tr.transmissions(), 2u);
  tr.reset_transmissions();
  EXPECT_EQ(tr.transmissions(), 0u);
}

TEST(Transport, HalfLoopDeliversBackToSender) {
  graph::GraphBuilder b(1);
  b.add_half_loop(0);
  graph::Graph g = std::move(b).build();
  Transport tr(g);
  Arrival a = tr.send(0, 0);
  EXPECT_EQ(a.node, 0u);
  EXPECT_EQ(a.port, 0u);
}

TEST(Transport, FullLoopDeliversToOtherPort) {
  graph::GraphBuilder b(1);
  b.add_edge(0, 0);
  graph::Graph g = std::move(b).build();
  Transport tr(g);
  Arrival a = tr.send(0, 0);
  EXPECT_EQ(a.node, 0u);
  EXPECT_EQ(a.port, 1u);
}

TEST(Transport, ValidatesArguments) {
  graph::Graph g = graph::cycle(3);
  Transport tr(g);
  EXPECT_THROW(tr.send(5, 0), std::invalid_argument);
  EXPECT_THROW(tr.send(0, 7), std::invalid_argument);
  EXPECT_EQ(tr.transmissions(), 0u);  // failed sends are not counted
}

}  // namespace
}  // namespace uesr::net
