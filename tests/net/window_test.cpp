#include "net/window.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "net/rto.h"
#include "util/rng.h"

namespace uesr::net {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Port;

// ---------------------------------------------------------------------------
// RtoEstimator (net/rto.h): the Jacobson/Karn state both ARQs share.
// ---------------------------------------------------------------------------

TEST(RtoEstimator, FirstSampleSeedsSrttAndRto) {
  RtoOptions opts;  // initial 8, min 4, max 1024, granularity 2
  RtoEstimator est(opts);
  EXPECT_EQ(est.rto(), 8u);
  EXPECT_EQ(est.samples(), 0u);
  est.sample(10);
  // RFC 6298 seeding: SRTT = R, RTTVAR = R/2, RTO = SRTT + max(G, 4*RTTVAR).
  EXPECT_EQ(est.srtt(), 10u);
  EXPECT_EQ(est.rto(), 30u);
  EXPECT_EQ(est.samples(), 1u);
}

TEST(RtoEstimator, ConstantRttConvergesTight) {
  RtoEstimator est(RtoOptions{});
  for (int i = 0; i < 64; ++i) est.sample(2);
  EXPECT_EQ(est.srtt(), 2u);
  // The integer recurrence parks rttvar4 at 3 on a constant stream (the
  // decay term 3 >> 2 truncates to 0), so rto settles at srtt + 3 = 5 —
  // one tick above the granularity floor, still spuriousness-free.
  EXPECT_EQ(est.rto(), 5u);
}

TEST(RtoEstimator, BackoffDoublesAndClampsAtMax) {
  RtoOptions opts;
  opts.initial = 8;
  opts.max = 50;
  RtoEstimator est(opts);
  est.backoff();
  EXPECT_EQ(est.rto(), 16u);
  est.backoff();
  EXPECT_EQ(est.rto(), 32u);
  est.backoff();
  EXPECT_EQ(est.rto(), 50u);  // clamped
  est.backoff();
  EXPECT_EQ(est.rto(), 50u);
}

TEST(RtoEstimator, BackoffPersistsUntilFreshSample) {
  RtoEstimator est(RtoOptions{});
  est.sample(2);
  const SimTime calm = est.rto();
  est.backoff();
  est.backoff();
  EXPECT_GT(est.rto(), calm);  // Karn: stays backed off...
  est.sample(2);
  EXPECT_LE(est.rto(), calm);  // ...until an unambiguous sample lands.
}

TEST(RtoEstimator, NonAdaptiveIsInert) {
  RtoOptions opts;
  opts.initial = 2;  // below min: non-adaptive mode must NOT clamp it up
  opts.adaptive = false;
  RtoEstimator est(opts);
  EXPECT_EQ(est.rto(), 2u);
  est.sample(100);
  est.backoff();
  EXPECT_EQ(est.rto(), 2u);
  EXPECT_EQ(est.samples(), 0u);
}

TEST(RtoEstimator, ValidatesOptions) {
  RtoOptions bad;
  bad.initial = 0;
  EXPECT_THROW(RtoEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.min = 0;
  EXPECT_THROW(RtoEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.max = 2;  // < initial
  EXPECT_THROW(RtoEstimator{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// WindowTransport semantics.
// ---------------------------------------------------------------------------

TEST(WindowTransport, PerfectChannelSendsEachFrameOnce) {
  Graph g = graph::from_edges(2, {{0, 1}});
  WindowOptions opts;
  opts.window = 8;
  opts.frames_per_message = 8;
  WindowTransport wt(g, 3, {}, opts);
  WindowOutcome out = wt.send(0, 0);
  EXPECT_TRUE(out.delivered);
  EXPECT_TRUE(out.message_arrived);
  EXPECT_EQ(out.arrival.node, 1u);
  EXPECT_EQ(out.arrival.port, 0u);
  EXPECT_EQ(out.data_copies, 8u);
  EXPECT_EQ(out.ack_copies, 8u);
  EXPECT_EQ(out.retransmits, 0u);
  EXPECT_EQ(wt.frames(), 16u);
}

TEST(WindowTransport, PipelineBeatsStopAndWaitPacingAtLossZero) {
  // The whole point of the window: on a perfect unit-latency link a full
  // window moves F frames in ~one RTT, while window = 1 pays F RTTs.
  Graph g = graph::from_edges(2, {{0, 1}});
  WindowOptions pipelined;
  pipelined.window = 8;
  pipelined.frames_per_message = 8;
  WindowOptions paced = pipelined;
  paced.window = 1;
  WindowTransport fast(g, 3, {}, pipelined);
  WindowTransport slow(g, 3, {}, paced);
  const WindowOutcome a = fast.send(0, 0);
  const WindowOutcome b = slow.send(0, 0);
  ASSERT_TRUE(a.delivered);
  ASSERT_TRUE(b.delivered);
  EXPECT_EQ(a.elapsed, 2u);       // launch burst, one RTT
  EXPECT_EQ(b.elapsed, 8u * 2u);  // one frame per RTT
}

TEST(WindowTransport, DeliveredImpliesArrivedUnderChaos) {
  // Soundness under the full fault menu: whenever the sender claims
  // delivery, the receiver really holds every frame.
  Graph g = graph::connected_gnp(8, 0.4, 17);
  LinkModel m;
  m.loss = 0.3;
  m.dup = 0.5;
  m.latency_min = 1;
  m.latency_max = 20;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 6;
  opts.max_retries = 20;
  WindowTransport wt(g, 23, m, opts);
  util::Pcg32 walk(9);
  NodeId at = 0;
  int delivered = 0;
  for (int i = 0; i < 120; ++i) {
    const Port out_port = walk.next_below(g.degree(at));
    WindowOutcome out = wt.send(at, out_port);
    if (out.delivered) {
      EXPECT_TRUE(out.message_arrived);
      const graph::HalfEdge far = g.rotate(at, out_port);
      ASSERT_EQ(out.arrival.node, far.node);
      ASSERT_EQ(out.arrival.port, far.port);
      at = out.arrival.node;
      ++delivered;
    }
  }
  EXPECT_GT(delivered, 0);
  EXPECT_GT(wt.total_retransmits(), 0u);
}

TEST(WindowTransport, DuplicationAloneCannotBreakExactlyOnce) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.dup = 1.0;
  m.latency_min = 1;
  m.latency_max = 13;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 8;
  opts.rto.initial = 64;  // > worst-case RTT
  opts.rto.adaptive = false;
  WindowTransport wt(g, 3, m, opts);
  for (int i = 0; i < 20; ++i) {
    WindowOutcome out = wt.send(0, 0);
    EXPECT_TRUE(out.delivered);
    // No loss, so never a retransmit: every extra copy on the wire is the
    // channel's dup, and the receiver's bitmap absorbed all of them.
    EXPECT_EQ(out.data_copies, 8u);
    EXPECT_EQ(out.retransmits, 0u);
  }
}

TEST(WindowTransport, DeadChannelSpendsEveryFrameBudgetThenDies) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel dead;
  dead.loss = 1.0;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 8;
  opts.max_retries = 3;
  WindowTransport wt(g, 3, dead, opts);
  WindowOutcome out = wt.send(0, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.message_arrived);
  EXPECT_EQ(out.ack_copies, 0u);
  // All 4 in-flight frames retransmit in lockstep until the first one's
  // budget dies: window * (max_retries + 1) DATA copies.
  EXPECT_EQ(out.data_copies, 4u * 4u);
  EXPECT_EQ(out.retransmits, 4u * 3u);
}

TEST(WindowTransport, AckDirectionDownArrivesButNeverConfirms) {
  // The two-generals gap at window scale: all data crosses, every ack
  // dies, the sender must claim nothing.
  Graph g = graph::from_edges(2, {{0, 1}});
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 4;
  opts.max_retries = 3;
  WindowTransport wt(g, 3, {}, opts);
  wt.sim().set_link_up(1, 0, false);  // kill only the ack direction
  WindowOutcome out = wt.send(0, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.message_arrived);
  EXPECT_EQ(out.arrival.node, 1u);
  EXPECT_GT(out.ack_copies, 0u);  // acked in vain
}

TEST(WindowTransport, AdaptiveRtoConvergesOnCleanLink) {
  Graph g = graph::from_edges(2, {{0, 1}});
  WindowOptions opts;
  opts.window = 2;
  opts.frames_per_message = 4;
  WindowTransport wt(g, 3, {}, opts);
  for (int i = 0; i < 16; ++i) {
    WindowOutcome out = wt.send(0, 0);
    ASSERT_TRUE(out.delivered);
    EXPECT_EQ(out.retransmits, 0u);
    EXPECT_EQ(out.rtt_samples, 4u);  // every frame a clean Karn sample
  }
  EXPECT_EQ(wt.estimator().srtt(), 2u);  // unit latency each way
  EXPECT_EQ(wt.estimator().rto(), 5u);   // srtt + settled variance term
  EXPECT_EQ(wt.total_rtt_samples(), 16u * 4u);
}

TEST(WindowTransport, KarnBackoffThenRecovery) {
  Graph g = graph::from_edges(2, {{0, 1}});
  WindowOptions opts;
  opts.window = 2;
  opts.frames_per_message = 4;
  opts.max_retries = 4;
  WindowTransport wt(g, 3, {}, opts);
  wt.sim().set_link_up(0, 0, false);  // forward dead: timeouts only
  WindowOutcome failed = wt.send(0, 0);
  EXPECT_FALSE(failed.delivered);
  EXPECT_GT(failed.backoffs, 0u);
  // Karn: every copy was ambiguous or lost — no samples, and the backed-off
  // RTO persists past the failed transfer.
  EXPECT_EQ(failed.rtt_samples, 0u);
  const SimTime backed_off = wt.estimator().rto();
  EXPECT_GT(backed_off, wt.estimator().options().initial);
  wt.sim().set_link_up(0, 0, true);
  WindowOutcome healed = wt.send(0, 0);
  EXPECT_TRUE(healed.delivered);
  EXPECT_EQ(healed.rtt_samples, 4u);
  EXPECT_LT(wt.estimator().rto(), backed_off);  // fresh samples recover
}

TEST(WindowTransport, DeterministicAcrossIdenticalRuns) {
  const Graph g = graph::connected_gnp(10, 0.35, 6);
  LinkModel m;
  m.loss = 0.25;
  m.dup = 0.25;
  m.latency_min = 1;
  m.latency_max = 9;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 5;
  opts.max_retries = 10;
  std::vector<std::uint64_t> frames(2);
  std::vector<std::uint64_t> retx(2);
  std::vector<int> delivered(2, 0);
  for (int run = 0; run < 2; ++run) {
    WindowTransport wt(g, 0x5eed, m, opts);
    util::Pcg32 walk(7);
    NodeId at = 0;
    for (int i = 0; i < 100; ++i) {
      const Port p = walk.next_below(g.degree(at));
      WindowOutcome out = wt.send(at, p);
      if (out.delivered) {
        at = out.arrival.node;
        ++delivered[run];
      }
    }
    frames[run] = wt.frames();
    retx[run] = wt.total_retransmits();
  }
  EXPECT_EQ(frames[0], frames[1]);
  EXPECT_EQ(retx[0], retx[1]);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(WindowTransport, ValidatesOptions) {
  Graph g = graph::from_edges(2, {{0, 1}});
  WindowOptions opts;
  opts.window = 0;
  EXPECT_THROW(WindowTransport(g, 1, {}, opts), std::invalid_argument);
  opts = {};
  opts.frames_per_message = 0;
  EXPECT_THROW(WindowTransport(g, 1, {}, opts), std::invalid_argument);
  opts = {};
  opts.frames_per_message = 1u << 15;
  EXPECT_THROW(WindowTransport(g, 1, {}, opts), std::invalid_argument);
  opts = {};
  opts.max_retries = 0xffff;
  EXPECT_THROW(WindowTransport(g, 1, {}, opts), std::invalid_argument);
}

// The replay-regression gate for the new frame types: a 10k-event chaos
// trace driven entirely through selective-repeat transfers must replay
// byte-identically — the adaptation consumes no randomness, so the
// schedule is a pure function of (graph, seed, call sequence).
TEST(WindowTransport, FullCorruptionDegradesToLossAndDiesOnBudget) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.corrupt = 1.0;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 4;
  opts.max_retries = 3;
  WindowTransport wt(g, 3, m, opts);
  WindowOutcome out = wt.send(0, 0);
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.message_arrived);
  EXPECT_GT(out.corrupt_drops, 0u);
  EXPECT_EQ(out.ack_copies, 0u);  // no frame ever passed the CRC
}

TEST(WindowTransport, ModerateCorruptionIsRecoveredByRetransmission) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.corrupt = 0.25;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 8;
  opts.max_retries = 64;
  int delivered = 0;
  std::uint64_t drops = 0;
  for (int i = 0; i < 30; ++i) {
    WindowTransport wt(g, /*seed=*/700 + i, m, opts);
    WindowOutcome out = wt.send(0, 0);
    delivered += out.delivered;
    drops += out.corrupt_drops;
    if (out.delivered) {
      EXPECT_TRUE(out.message_arrived);
    }
  }
  EXPECT_EQ(delivered, 30);
  EXPECT_GT(drops, 0u);
}

TEST(WindowTransport, ReceiverCrashAmnesiaNeverFalselyDelivers) {
  // The reneging discipline under fire: crash windows wipe the receiver's
  // out-of-order buffer mid-transfer.  Whatever happens, `delivered` must
  // imply the receiver really holds the whole message (the §2.12 soundness
  // half).  Liveness is the documented cost: the sender never resends a
  // selectively-acked frame, so a wiped bitmap usually strands the
  // transfer in the two-generals gap until the budget kills it.
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.loss = 0.15;
  m.latency_min = 1;
  m.latency_max = 4;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 12;
  opts.max_retries = 64;
  int delivered = 0;
  std::uint64_t resets = 0;
  for (int i = 0; i < 40; ++i) {
    WindowTransport wt(g, /*seed=*/900 + i, m, opts);
    FaultAction crash;
    crash.kind = FaultAction::Kind::kCrash;
    crash.node = 1;
    FaultAction recover;
    recover.kind = FaultAction::Kind::kRecover;
    recover.node = 1;
    // Two crash windows inside the transfer's natural lifetime.
    wt.sim().schedule_fault(3, crash);
    wt.sim().schedule_fault(9, recover);
    wt.sim().schedule_fault(20, crash);
    wt.sim().schedule_fault(28, recover);
    WindowOutcome out = wt.send(0, 0);
    if (out.delivered) {
      ++delivered;
      EXPECT_TRUE(out.message_arrived) << "seed " << 900 + i;
    }
    resets += out.receiver_resets;
  }
  EXPECT_GT(delivered, 0);   // a window that misses the bitmap still lands
  EXPECT_LT(delivered, 40);  // and reneging really costs transfers
  EXPECT_GT(resets, 0u);     // the wipe really happened mid-transfer
}

TEST(WindowTransport, PerLinkRtoKeepsSlowAndFastLinksApart) {
  Graph g = graph::cycle(3);
  WindowOptions opts;
  opts.per_link_rto = true;
  opts.window = 4;
  opts.frames_per_message = 4;
  WindowTransport wt(g, 3, {}, opts);
  LinkModel slow;
  slow.latency_min = slow.latency_max = 50;
  const graph::HalfEdge back = g.rotate(0, 0);
  wt.sim().set_link_model(0, 0, slow);
  wt.sim().set_link_model(back.node, back.port, slow);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(wt.send(0, 0).delivered);
    EXPECT_TRUE(wt.send(0, 1).delivered);
  }
  EXPECT_GT(wt.link_estimator(0, 0).srtt(), 50u);
  EXPECT_LT(wt.link_estimator(0, 1).srtt(), 10u);
  EXPECT_LT(wt.link_estimator(0, 1).rto(), wt.link_estimator(0, 0).rto());
  EXPECT_GT(wt.total_rtt_samples(), 0u);
  EXPECT_EQ(wt.estimator().samples(), 0u);  // shared estimator never fed
}

TEST(WindowTransportReplay, TenThousandEventTraceIsByteIdentical) {
  const Graph g = graph::connected_gnp(12, 0.3, 5);
  LinkModel m;
  m.loss = 0.3;
  m.dup = 0.3;
  m.latency_min = 1;
  m.latency_max = 13;
  WindowOptions opts;
  opts.window = 4;
  opts.frames_per_message = 6;
  opts.max_retries = 12;
  constexpr std::size_t kLimit = 10000;
  std::vector<std::string> traces[2];
  for (int run = 0; run < 2; ++run) {
    WindowTransport wt(g, 0xabcdef, m, opts);
    wt.sim().enable_trace(kLimit);
    util::Pcg32 walk(99);
    NodeId at = 0;
    while (wt.sim().trace().size() < kLimit) {
      const Port p = walk.next_below(g.degree(at));
      WindowOutcome out = wt.send(at, p);
      if (out.delivered) at = out.arrival.node;
    }
    traces[run] = wt.sim().trace();
  }
  ASSERT_EQ(traces[0].size(), kLimit);
  ASSERT_EQ(traces[1].size(), kLimit);
  for (std::size_t i = 0; i < kLimit; ++i)
    ASSERT_EQ(traces[0][i], traces[1][i]) << "trace line " << i;
}

}  // namespace
}  // namespace uesr::net
