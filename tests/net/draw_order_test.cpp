// Convention pin for the EventSim per-send draw order (DESIGN.md §5, R-rule
// runtime counterpart): every channel decision for transmission #k over
// directed link l comes from Pcg32(counter_hash(counter_hash(seed, l), k)),
// consumed in EXACTLY this order:
//
//   1. loss        (skipped when loss == 0 — no draw consumed)
//   2. latency     (skipped when latency_min == latency_max)
//   3. dup         (skipped when dup == 0)
//   4. dup latency (only when the dup draw fired)
//   5. corrupt, main copy  (skipped when corrupt == 0) + its bit index
//   6. corrupt, dup copy   (only when a dup exists)    + its bit index
//
// Reordering ANY of these breaks every pinned replay trace in the repo
// (PR 6/7/8 convention; property P11 pins the corrupt-at-zero suffix).
// Two pins here: a hand-rolled replica that consumes the stream in the
// documented order and must predict the simulator exactly, and a golden
// byte-for-byte trace snapshot.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "net/sim.h"
#include "util/rng.h"

namespace uesr::net {
namespace {

/// What the replica predicts for one send.
struct Predicted {
  bool lost = false;
  SimTime latency = 0;        ///< main copy
  bool dup = false;
  SimTime dup_latency = 0;    ///< dup copy, when any
  std::uint64_t main_frame = 0;  ///< frame id after (possible) corruption
  std::uint64_t dup_frame = 0;
  bool main_corrupt = false;
  bool dup_corrupt = false;
};

/// Replays the documented draw order by hand.  This function hard-codes
/// the convention — if net/sim.cpp reorders its draws, the predictions
/// diverge and the test fails.
Predicted predict(std::uint64_t seed, std::uint64_t link, std::uint64_t event,
                  const LinkModel& m, std::uint64_t frame_id) {
  util::Pcg32 rng(util::counter_hash(util::counter_hash(seed, link), event));
  auto latency_draw = [&]() -> SimTime {
    const SimTime span = m.latency_max - m.latency_min;
    if (span == 0) return m.latency_min;
    return m.latency_min + rng.next_below(static_cast<std::uint32_t>(span + 1));
  };
  Predicted p;
  p.main_frame = frame_id;
  p.dup_frame = frame_id;
  // Draw 1: loss.
  if (m.loss > 0.0 && rng.next_double() < m.loss) {
    p.lost = true;
    return p;
  }
  // Draw 2: latency of the main copy.
  p.latency = latency_draw();
  // Draw 3: duplication.
  p.dup = m.dup > 0.0 && rng.next_double() < m.dup;
  // Draw 4: latency of the dup copy (only when one exists).
  if (p.dup) p.dup_latency = latency_draw();
  // Draw 5: corruption of the main copy, then its damaged bit.
  if (m.corrupt > 0.0 && rng.next_double() < m.corrupt) {
    p.main_corrupt = true;
    p.main_frame ^= 1ULL << rng.next_below(64);
  }
  // Draw 6: corruption of the dup copy, then its damaged bit.
  if (p.dup && m.corrupt > 0.0 && rng.next_double() < m.corrupt) {
    p.dup_corrupt = true;
    p.dup_frame ^= 1ULL << rng.next_below(64);
  }
  return p;
}

TEST(DrawOrder, ReplicaPredictsEverySendByConstruction) {
  graph::Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.latency_min = 1;
  m.latency_max = 8;
  m.loss = 0.3;
  m.dup = 0.35;
  m.corrupt = 0.25;
  const std::uint64_t seed = 0xdeadbeef;
  EventSim sim(g, seed, m);
  const std::uint64_t link = sim.link_index(0, 0);

  // All sends depart at t=0; predictions double as the push schedule:
  // per surviving send the main copy gets the next seq, then the dup.
  constexpr std::uint64_t kSends = 200;
  struct Expected {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t frame;
    bool dup;
    bool corrupt;
  };
  std::vector<Expected> arrivals;
  std::uint64_t seq = 0, lost = 0, dups = 0, corrupt = 0;
  for (std::uint64_t i = 0; i < kSends; ++i) {
    const Predicted p = predict(seed, link, /*event=*/i, m, /*frame_id=*/i);
    sim.send(0, 0, i);
    if (p.lost) {
      ++lost;
      continue;
    }
    arrivals.push_back({p.latency, seq++, p.main_frame, false, p.main_corrupt});
    corrupt += p.main_corrupt;
    if (p.dup) {
      ++dups;
      arrivals.push_back(
          {p.dup_latency, seq++, p.dup_frame, true, p.dup_corrupt});
      corrupt += p.dup_corrupt;
    }
  }
  ASSERT_GT(lost, 0u);     // the regime exercises every draw kind
  ASSERT_GT(dups, 0u);
  ASSERT_GT(corrupt, 0u);

  // Pop order is (time, seq): sort the predictions the same way and the
  // simulator must reproduce them field for field.
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Expected& a, const Expected& b) {
              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
            });
  for (const Expected& want : arrivals) {
    const auto ev = sim.next();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->time, want.time);
    EXPECT_EQ(ev->seq, want.seq);
    EXPECT_EQ(ev->frame_id, want.frame);
    EXPECT_EQ(ev->duplicate, want.dup);
    EXPECT_EQ(ev->corrupted, want.corrupt);
  }
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.transmissions(), kSends);
  EXPECT_EQ(sim.frames_lost(), lost);
  EXPECT_EQ(sim.frames_duplicated(), dups);
  EXPECT_EQ(sim.frames_corrupted(), corrupt);
  EXPECT_EQ(sim.frames_delivered(), arrivals.size());
}

TEST(DrawOrder, NoDrawsConsumedWhenKnobsAreZero) {
  // At loss = dup = corrupt = 0 and fixed latency NO draw is consumed:
  // the per-(link, event) stream must be byte-compatible with pre-knob
  // replays (the P11 guarantee, restated at the draw level).  The replica
  // predicts a fixed-latency arrival without touching the rng.
  graph::Graph g = graph::from_edges(2, {{0, 1}});
  EventSim sim(g, 7, LinkModel{});  // latency 1..1, all probabilities 0
  for (std::uint64_t i = 0; i < 16; ++i) sim.send(0, 0, i);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto ev = sim.next();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->time, 1u);
    EXPECT_EQ(ev->frame_id, i);
    EXPECT_FALSE(ev->duplicate);
    EXPECT_FALSE(ev->corrupted);
  }
  EXPECT_EQ(sim.frames_lost(), 0u);
}

TEST(DrawOrder, GoldenTraceSnapshot) {
  // Byte-for-byte snapshot of a 12-send chaos regime (seed 42, loss/dup/
  // corrupt all 0.5, latency 1..4).  Any change to the draw order, the
  // stream keying, or the trace format shows up here first.  Regenerate
  // ONLY for an intentional, CHANGES.md-documented format change.
  graph::Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m;
  m.latency_min = 1;
  m.latency_max = 4;
  m.loss = 0.5;
  m.dup = 0.5;
  m.corrupt = 0.5;
  EventSim sim(g, 42, m);
  sim.enable_trace(200);
  for (std::uint64_t i = 0; i < 12; ++i) sim.send(0, 0, 100 + i);
  while (sim.next()) {
  }
  const std::vector<std::string> golden = {
      "S t=0 ev=0 link=0.0 f=100 sent",
      "S t=0 ev=0 link=0.0 f=100 dup",
      "S t=0 ev=1 link=0.0 f=101 sent corrupt",
      "S t=0 ev=2 link=0.0 f=102 lost",
      "S t=0 ev=3 link=0.0 f=103 sent",
      "S t=0 ev=4 link=0.0 f=104 lost",
      "S t=0 ev=5 link=0.0 f=105 lost",
      "S t=0 ev=6 link=0.0 f=106 lost",
      "S t=0 ev=7 link=0.0 f=107 sent",
      "S t=0 ev=8 link=0.0 f=108 lost",
      "S t=0 ev=9 link=0.0 f=109 sent",
      "S t=0 ev=9 link=0.0 f=109 dup corrupt",
      "S t=0 ev=10 link=0.0 f=110 sent corrupt",
      "S t=0 ev=10 link=0.0 f=110 dup corrupt",
      "S t=0 ev=11 link=0.0 f=111 sent corrupt",
      "S t=0 ev=11 link=0.0 f=111 dup",
      "E t=1 seq=3 arr node=1 port=0 from=0.0 f=103",
      "E t=1 seq=8 arr node=1 port=0 from=0.0 f=2199023255662 dup corrupt",
      "E t=1 seq=9 arr node=1 port=0 from=0.0 f=4194415 corrupt",
      "E t=2 seq=0 arr node=1 port=0 from=0.0 f=100",
      "E t=2 seq=1 arr node=1 port=0 from=0.0 f=100 dup",
      "E t=3 seq=2 arr node=1 port=0 from=0.0 f=4294967397 corrupt",
      "E t=3 seq=10 arr node=1 port=0 from=0.0 f=111 dup",
      "E t=4 seq=4 arr node=1 port=0 from=0.0 f=107",
      "E t=4 seq=5 arr node=1 port=0 from=0.0 f=109",
      "E t=4 seq=6 arr node=1 port=0 from=0.0 f=288230376151711853 dup corrupt",
      "E t=4 seq=7 arr node=1 port=0 from=0.0 f=4294967406 corrupt",
  };
  EXPECT_EQ(sim.trace(), golden);
  EXPECT_EQ(sim.transmissions(), 12u);
  EXPECT_EQ(sim.frames_lost(), 5u);
  EXPECT_EQ(sim.frames_duplicated(), 4u);
  EXPECT_EQ(sim.frames_corrupted(), 5u);
  EXPECT_EQ(sim.frames_delivered(), 11u);
}

}  // namespace
}  // namespace uesr::net
