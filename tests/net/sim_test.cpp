#include "net/sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace uesr::net {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Port;

LinkModel perfect() {
  LinkModel m;
  m.latency_min = m.latency_max = 1;
  m.loss = 0.0;
  m.dup = 0.0;
  return m;
}

TEST(EventSim, PerfectLinkDeliversToFarEnd) {
  Graph g = graph::from_edges(3, {{0, 1}, {1, 2}});
  EventSim sim(g, 7, perfect());
  sim.send(0, 0, 42);
  auto ev = sim.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, SimEventKind::kArrival);
  EXPECT_EQ(ev->node, 1u);
  EXPECT_EQ(ev->port, 0u);
  EXPECT_EQ(ev->from, 0u);
  EXPECT_EQ(ev->frame_id, 42u);
  EXPECT_EQ(ev->time, 1u);
  EXPECT_FALSE(ev->duplicate);
  EXPECT_EQ(sim.now(), 1u);
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.transmissions(), 1u);
}

TEST(EventSim, HeapOrdersByTimeThenPushSeq) {
  Graph g = graph::cycle(4);
  LinkModel slow = perfect();
  slow.latency_min = slow.latency_max = 5;
  EventSim sim(g, 7, perfect());
  sim.set_link_model(0, 0, slow);
  sim.send(0, 0, 1);  // arrives at t=5
  sim.send(1, 1, 2);  // arrives at t=1
  sim.set_timer(5, 99);  // t=5, pushed after frame 1's arrival
  auto a = sim.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->frame_id, 2u);
  auto b = sim.next();  // same time as the timer, lower push seq
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->kind, SimEventKind::kArrival);
  EXPECT_EQ(b->frame_id, 1u);
  auto c = sim.next();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, SimEventKind::kTimer);
  EXPECT_EQ(c->timer_id, 99u);
}

TEST(EventSim, FullLossDropsEverything) {
  Graph g = graph::cycle(4);
  LinkModel lossy = perfect();
  lossy.loss = 1.0;
  EventSim sim(g, 7, lossy);
  for (int i = 0; i < 10; ++i) sim.send(0, 0, i);
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.transmissions(), 10u);  // lost frames were really sent
  EXPECT_EQ(sim.frames_lost(), 10u);
}

TEST(EventSim, FullDuplicationDeliversFlaggedSecondCopy) {
  Graph g = graph::cycle(4);
  LinkModel dup = perfect();
  dup.dup = 1.0;
  EventSim sim(g, 7, dup);
  sim.send(0, 0, 5);
  auto a = sim.next();
  auto b = sim.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->frame_id, 5u);
  EXPECT_EQ(b->frame_id, 5u);
  EXPECT_NE(a->duplicate, b->duplicate);  // exactly one copy is the dup
  EXPECT_EQ(sim.frames_duplicated(), 1u);
  EXPECT_EQ(sim.transmissions(), 1u);  // duplication is the channel's doing
}

TEST(EventSim, LatencyJitterStaysInBounds) {
  Graph g = graph::cycle(4);
  LinkModel jitter = perfect();
  jitter.latency_min = 3;
  jitter.latency_max = 9;
  EventSim sim(g, 21, jitter);
  for (int i = 0; i < 50; ++i) {
    EventSim one(g, 21 + i, jitter);
    one.send(2, 0, 0);
    auto ev = one.next();
    ASSERT_TRUE(ev.has_value());
    EXPECT_GE(ev->time, 3u);
    EXPECT_LE(ev->time, 9u);
  }
}

TEST(EventSim, OneSidedLinkDownBlocksOnlyThatDirection) {
  Graph g = graph::from_edges(2, {{0, 1}});
  EventSim sim(g, 7, perfect());
  sim.set_link_up(0, 0, false);  // kill 0 -> 1 only
  EXPECT_FALSE(sim.link_up(0, 0));
  EXPECT_TRUE(sim.link_up(1, 0));
  sim.send(0, 0, 1);  // into the dead direction: lost at departure
  sim.send(1, 0, 2);  // reverse direction still works
  auto ev = sim.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->frame_id, 2u);
  EXPECT_EQ(ev->node, 0u);
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.frames_lost(), 1u);
}

TEST(EventSim, MidFlightDisconnectKillsInFlightFrames) {
  Graph g = graph::from_edges(2, {{0, 1}});
  EventSim sim(g, 7, perfect());
  sim.send(0, 0, 1);           // in flight
  sim.set_link_up(0, 0, false);  // dies before delivery
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.frames_died_midflight(), 1u);
  // Re-enabling the link does not resurrect dead frames but serves new ones.
  sim.set_link_up(0, 0, true);
  sim.send(0, 0, 2);
  auto ev = sim.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->frame_id, 2u);
}

TEST(EventSim, ValidatesArguments) {
  Graph g = graph::cycle(3);
  EventSim sim(g, 7);
  EXPECT_THROW(sim.send(5, 0, 0), std::invalid_argument);
  EXPECT_THROW(sim.send(0, 7, 0), std::invalid_argument);
  EXPECT_THROW(sim.set_link_up(9, 0, false), std::invalid_argument);
  LinkModel bad;
  bad.loss = 1.5;
  EXPECT_THROW(sim.set_link_model(0, 0, bad), std::invalid_argument);
  LinkModel inverted;
  inverted.latency_min = 5;
  inverted.latency_max = 2;
  EXPECT_THROW(EventSim(g, 7, inverted), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Deterministic-replay regression suite (the ROADMAP contract, pinned).
// A scripted random driver issues sends/timers/flips; the trace must be a
// pure function of (seed, script).
// ---------------------------------------------------------------------------

LinkModel chaos() {
  LinkModel m;
  m.latency_min = 1;
  m.latency_max = 7;
  m.loss = 0.2;
  m.dup = 0.15;
  return m;
}

/// Issues `ops` scripted operations against the sim, interleaving sends,
/// timers, one-sided flips and pops — all drawn from the script seed.
void drive(EventSim& sim, const Graph& g, std::uint64_t script_seed, int ops) {
  util::Pcg32 script(script_seed);
  for (int i = 0; i < ops; ++i) {
    const NodeId v = script.next_below(g.num_nodes());
    const Port p = script.next_below(g.degree(v));
    switch (script.next_below(8)) {
      case 0:
        sim.set_timer(1 + script.next_below(16), i);
        break;
      case 1:
        sim.set_link_up(v, p, false);
        break;
      case 2:
        sim.set_link_up(v, p, true);
        break;
      case 3:
      case 4:
        sim.next();
        break;
      default:
        sim.send(v, p, i);
        break;
    }
  }
  while (sim.next().has_value()) {
  }
}

TEST(EventSimReplay, SameSeedGivesByteIdenticalEventTrace) {
  const Graph g = graph::connected_gnp(12, 0.3, 5);
  constexpr std::size_t kLimit = 10000;
  std::vector<std::string> traces[2];
  for (int run = 0; run < 2; ++run) {
    EventSim sim(g, /*seed=*/0xabcdef, chaos());
    sim.enable_trace(kLimit);
    drive(sim, g, /*script_seed=*/99, /*ops=*/4000);
    traces[run] = sim.trace();
  }
  ASSERT_FALSE(traces[0].empty());
  ASSERT_EQ(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < traces[0].size(); ++i)
    ASSERT_EQ(traces[0][i], traces[1][i]) << "trace line " << i;
}

TEST(EventSimReplay, DifferentSeedMovesTheSchedule) {
  const Graph g = graph::connected_gnp(12, 0.3, 5);
  std::vector<std::string> traces[2];
  for (int run = 0; run < 2; ++run) {
    EventSim sim(g, /*seed=*/100 + run, chaos());
    sim.enable_trace(10000);
    drive(sim, g, 99, 2000);
    traces[run] = sim.trace();
  }
  EXPECT_NE(traces[0], traces[1]);
}

TEST(EventSimReplay, MidSimulationRerunReproducesTheSuffix) {
  const Graph g = graph::connected_gnp(10, 0.35, 6);
  constexpr int kPrefixOps = 1500;
  constexpr int kSuffixOps = 1500;
  // Run A: prefix + suffix in one life.
  EventSim a(g, 0x5eed, chaos());
  a.enable_trace(100000);
  drive(a, g, 7, kPrefixOps);
  const std::size_t cut = a.trace().size();
  drive(a, g, 8, kSuffixOps);
  // Run B: a fresh sim re-runs the prefix script, then continues with the
  // same suffix script — the suffix must match byte for byte.
  EventSim b(g, 0x5eed, chaos());
  b.enable_trace(100000);
  drive(b, g, 7, kPrefixOps);
  ASSERT_EQ(b.trace().size(), cut);
  drive(b, g, 8, kSuffixOps);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (std::size_t i = cut; i < a.trace().size(); ++i)
    ASSERT_EQ(a.trace()[i], b.trace()[i]) << "suffix line " << i;
}

TEST(EventSimReplay, CountersAreReplayedExactly) {
  const Graph g = graph::connected_gnp(12, 0.3, 5);
  std::uint64_t tx[2], lost[2], dup[2], died[2];
  for (int run = 0; run < 2; ++run) {
    EventSim sim(g, 0xfeed, chaos());
    drive(sim, g, 13, 3000);
    tx[run] = sim.transmissions();
    lost[run] = sim.frames_lost();
    dup[run] = sim.frames_duplicated();
    died[run] = sim.frames_died_midflight();
  }
  EXPECT_EQ(tx[0], tx[1]);
  EXPECT_EQ(lost[0], lost[1]);
  EXPECT_EQ(dup[0], dup[1]);
  EXPECT_EQ(died[0], died[1]);
  EXPECT_GT(lost[0], 0u);  // the chaos model really exercised loss
  EXPECT_GT(dup[0], 0u);
}

// ---------------------------------------------------------------------------
// Fault-injection layer: frame corruption, node crash/recovery, scheduled
// faults, and lazy timer cancellation.
// ---------------------------------------------------------------------------

TEST(EventSimFaults, FullCorruptionFlagsEveryDeliveryWithOneFlippedBit) {
  Graph g = graph::from_edges(2, {{0, 1}});
  LinkModel m = perfect();
  m.corrupt = 1.0;
  EventSim sim(g, 7, m);
  sim.send(0, 0, 42);
  auto ev = sim.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->corrupted);
  // The damage model flips exactly one bit of the frame id (the CRC the
  // ARQ layers check is the flag, but the payload really is different).
  EXPECT_EQ(std::popcount(ev->frame_id ^ 42u), 1);
  EXPECT_EQ(sim.frames_corrupted(), 1u);
  EXPECT_EQ(sim.frames_delivered(), 1u);  // corrupt copies still arrive
}

TEST(EventSimFaults, CorruptProbabilityIsValidated) {
  Graph g = graph::cycle(3);
  LinkModel bad = perfect();
  bad.corrupt = 1.5;
  EXPECT_THROW(EventSim(g, 7, bad), std::invalid_argument);
  EventSim sim(g, 7, perfect());
  EXPECT_THROW(sim.set_link_model(0, 0, bad), std::invalid_argument);
}

TEST(EventSimFaults, CrashedNodeDropsSendsAtDeparture) {
  Graph g = graph::from_edges(2, {{0, 1}});
  EventSim sim(g, 7, perfect());
  sim.set_node_crashed(0, true);
  EXPECT_TRUE(sim.node_crashed(0));
  sim.send(0, 0, 1);
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.transmissions(), 1u);  // the send was really attempted
  EXPECT_EQ(sim.frames_crash_dropped(), 1u);
  EXPECT_EQ(sim.frames_lost(), 0u);  // crash drops are not channel loss
}

TEST(EventSimFaults, CrashedNodeDropsArrivalsAtDeliveryInstant) {
  Graph g = graph::from_edges(2, {{0, 1}});
  EventSim sim(g, 7, perfect());
  sim.send(0, 0, 1);             // in flight toward node 1
  sim.set_node_crashed(1, true);  // crashes before delivery
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.frames_crash_dropped(), 1u);
  // Recovery serves new frames again.
  sim.set_node_crashed(1, false);
  sim.send(0, 0, 2);
  auto ev = sim.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->frame_id, 2u);
}

TEST(EventSimFaults, RecoveryBumpsTheCrashEpochOncePerDownUpCycle) {
  Graph g = graph::cycle(3);
  EventSim sim(g, 7, perfect());
  EXPECT_EQ(sim.crash_epochs(1), 0u);
  sim.set_node_crashed(1, true);
  EXPECT_EQ(sim.crash_epochs(1), 0u);  // going down is not amnesia yet
  sim.set_node_crashed(1, false);
  EXPECT_EQ(sim.crash_epochs(1), 1u);
  sim.set_node_crashed(1, false);  // redundant up: no phantom epoch
  EXPECT_EQ(sim.crash_epochs(1), 1u);
  sim.set_node_crashed(1, true);
  sim.set_node_crashed(1, false);
  EXPECT_EQ(sim.crash_epochs(1), 2u);
}

TEST(EventSimFaults, ScheduledCrashWindowOpensAndClosesAtExactTimes) {
  Graph g = graph::from_edges(2, {{0, 1}});
  EventSim sim(g, 7, perfect());
  FaultAction crash;
  crash.kind = FaultAction::Kind::kCrash;
  crash.node = 1;
  FaultAction recover;
  recover.kind = FaultAction::Kind::kRecover;
  recover.node = 1;
  sim.schedule_fault(2, crash);    // window [2, 4) in virtual time
  sim.schedule_fault(4, recover);
  sim.send(0, 0, 1);  // arrives t=1: before the window — delivered
  auto a = sim.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->frame_id, 1u);
  sim.send(0, 0, 2);  // arrives t=2: the crash applies first — dropped
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.frames_crash_dropped(), 1u);
  EXPECT_EQ(sim.now(), 4u);  // the recover fault advanced the clock
  EXPECT_FALSE(sim.node_crashed(1));
  EXPECT_EQ(sim.crash_epochs(1), 1u);
  sim.send(0, 0, 3);  // after the window: delivered again
  auto c = sim.next();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->frame_id, 3u);
}

TEST(EventSimFaults, GlobalCorruptFaultAppliesToOverriddenLinksToo) {
  Graph g = graph::from_edges(2, {{0, 1}});
  EventSim sim(g, 7, perfect());
  LinkModel slow = perfect();
  slow.latency_min = slow.latency_max = 2;
  sim.set_link_model(0, 0, slow);  // per-link override in place
  FaultAction burst;
  burst.kind = FaultAction::Kind::kGlobalCorrupt;
  burst.corrupt = 1.0;
  sim.schedule_fault(0, burst);
  EXPECT_FALSE(sim.next().has_value());  // applies the fault, queue empty
  sim.send(0, 0, 1);  // drawn under the burst: corrupted
  sim.send(1, 0, 2);  // default-model direction: corrupted too
  auto a = sim.next();
  auto b = sim.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(a->corrupted);
  EXPECT_TRUE(b->corrupted);
  EXPECT_EQ(sim.frames_corrupted(), 2u);
}

TEST(EventSimFaults, ScheduleFaultValidatesTargets) {
  Graph g = graph::cycle(3);
  EventSim sim(g, 7, perfect());
  FaultAction crash;
  crash.kind = FaultAction::Kind::kCrash;
  crash.node = 9;
  EXPECT_THROW(sim.schedule_fault(0, crash), std::invalid_argument);
  FaultAction brown;
  brown.kind = FaultAction::Kind::kLinkDown;
  brown.node = 0;
  brown.port = 7;
  EXPECT_THROW(sim.schedule_fault(0, brown), std::invalid_argument);
  FaultAction burst;
  burst.kind = FaultAction::Kind::kGlobalCorrupt;
  burst.corrupt = 2.0;
  EXPECT_THROW(sim.schedule_fault(0, burst), std::invalid_argument);
  EXPECT_THROW(sim.set_node_crashed(9, true), std::invalid_argument);
}

TEST(EventSimTimers, CancelledTimerIsConsumedSilently) {
  Graph g = graph::cycle(3);
  EventSim sim(g, 7, perfect());
  sim.set_timer(5, 77);
  sim.cancel_timer(77);
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.timers_cancelled(), 1u);
  // A fresh timer under a new id still fires.
  sim.set_timer(3, 78);
  auto ev = sim.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->timer_id, 78u);
}

// The satellite regression: mass lazy cancellation must not grow the heap
// — compaction keeps pending() bounded by a small constant multiple of
// the live events, however many stale ARQ timers a chaos run abandons.
TEST(EventSimTimers, PendingStaysBoundedUnderMassCancellation) {
  Graph g = graph::cycle(3);
  EventSim sim(g, 7, perfect());
  for (int i = 0; i < 8; ++i) sim.set_timer(1u << 20, 1000000 + i);  // live
  std::size_t max_pending = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    sim.set_timer(1000 + (i % 7), i);
    sim.cancel_timer(i);
    max_pending = std::max(max_pending, sim.pending());
  }
  EXPECT_LT(max_pending, 300u);  // ~2x the compaction threshold, not 20k
  // Every cancelled timer is eventually consumed or compacted, silently.
  std::size_t fired = 0;
  while (sim.next().has_value()) ++fired;
  EXPECT_EQ(fired, 8u);  // only the live timers ever surfaced
  EXPECT_EQ(sim.timers_cancelled(), 20000u);
}

/// The chaos drive: sends, timers, cancellations and scheduled faults all
/// drawn from one script stream — the fault-layer replay anchor.
void drive_faults(EventSim& sim, const Graph& g, std::uint64_t script_seed,
                  int ops) {
  util::Pcg32 script(script_seed);
  for (int i = 0; i < ops; ++i) {
    const NodeId v = script.next_below(g.num_nodes());
    const Port p = script.next_below(g.degree(v));
    switch (script.next_below(12)) {
      case 0:
        sim.set_timer(1 + script.next_below(16), i);
        break;
      case 1: {
        FaultAction a;
        a.kind = FaultAction::Kind::kCrash;
        a.node = v;
        sim.schedule_fault(script.next_below(8), a);
        break;
      }
      case 2: {
        FaultAction a;
        a.kind = FaultAction::Kind::kRecover;
        a.node = v;
        sim.schedule_fault(script.next_below(8), a);
        break;
      }
      case 3: {
        FaultAction a;
        a.kind = script.next_below(2) ? FaultAction::Kind::kLinkDown
                                      : FaultAction::Kind::kLinkUp;
        a.node = v;
        a.port = p;
        sim.schedule_fault(script.next_below(8), a);
        break;
      }
      case 4: {
        FaultAction a;
        a.kind = FaultAction::Kind::kGlobalCorrupt;
        a.corrupt = script.next_below(2) ? 0.5 : 0.0;
        sim.schedule_fault(script.next_below(8), a);
        break;
      }
      case 5:
        // May hit a queued, fired, or never-set id — all deterministic.
        sim.cancel_timer(script.next_below(static_cast<std::uint32_t>(i + 1)));
        break;
      case 6:
      case 7:
        sim.next();
        break;
      default:
        sim.send(v, p, i);
        break;
    }
  }
  while (sim.next().has_value()) {
  }
}

TEST(EventSimFaults, FaultScheduleReplayIsByteIdentical) {
  const Graph g = graph::connected_gnp(12, 0.3, 5);
  LinkModel m = chaos();
  m.corrupt = 0.1;
  std::vector<std::string> traces[2];
  std::uint64_t corrupted[2], crashed[2], cancelled[2], delivered[2];
  for (int run = 0; run < 2; ++run) {
    EventSim sim(g, /*seed=*/0xabcdef, m);
    sim.enable_trace(100000);
    drive_faults(sim, g, /*script_seed=*/99, /*ops=*/4000);
    traces[run] = sim.trace();
    corrupted[run] = sim.frames_corrupted();
    crashed[run] = sim.frames_crash_dropped();
    cancelled[run] = sim.timers_cancelled();
    delivered[run] = sim.frames_delivered();
  }
  ASSERT_FALSE(traces[0].empty());
  ASSERT_EQ(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < traces[0].size(); ++i)
    ASSERT_EQ(traces[0][i], traces[1][i]) << "trace line " << i;
  EXPECT_EQ(corrupted[0], corrupted[1]);
  EXPECT_EQ(crashed[0], crashed[1]);
  EXPECT_EQ(cancelled[0], cancelled[1]);
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_GT(corrupted[0], 0u);  // the chaos regime really fired
  EXPECT_GT(crashed[0], 0u);
}

}  // namespace
}  // namespace uesr::net
