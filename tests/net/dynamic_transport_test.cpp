#include "net/dynamic_transport.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"

namespace uesr::net {
namespace {

using graph::DynamicGraph;
using graph::NodeId;

TEST(DynamicTransport, SendsOverCurrentSnapshot) {
  DynamicGraph g(graph::path(3));  // 0-1-2
  DynamicTransport tr(g);
  Arrival a = tr.send(0, 0);
  EXPECT_EQ(a.node, 1u);
  EXPECT_EQ(tr.transmissions(), 1u);
  Arrival b = tr.send(a.node, a.port == 0 ? 1u : 0u);  // out the other port
  EXPECT_EQ(b.node, 2u);
  EXPECT_EQ(tr.transmissions(), 2u);
}

TEST(DynamicTransport, EpochTracksTheGraph) {
  DynamicGraph g(graph::path(3));
  DynamicTransport tr(g);
  EXPECT_EQ(tr.epoch(), 0u);
  g.add_edge(0, 2);
  EXPECT_EQ(tr.epoch(), 0u);  // staged edits are invisible
  g.commit();
  EXPECT_EQ(tr.epoch(), 1u);
  EXPECT_TRUE(tr.snapshot().adjacent(0, 2));
}

TEST(DynamicTransport, StalePortThrowsAfterEpochChange) {
  DynamicGraph g(graph::path(2));
  DynamicTransport tr(g);
  EXPECT_EQ(tr.send(0, 0).node, 1u);
  g.remove_edge(0, 1);
  g.commit();
  // Port 0 of node 0 no longer exists in this epoch.
  EXPECT_THROW(tr.send(0, 0), std::invalid_argument);
  EXPECT_EQ(tr.transmissions(), 1u);  // failed send charged nothing
}

TEST(DynamicTransport, Validation) {
  DynamicGraph g(graph::cycle(3));
  DynamicTransport tr(g);
  EXPECT_THROW(tr.send(9, 0), std::invalid_argument);
  EXPECT_THROW(tr.send(0, 5), std::invalid_argument);
  tr.send(0, 0);
  tr.reset_transmissions();
  EXPECT_EQ(tr.transmissions(), 0u);
}

}  // namespace
}  // namespace uesr::net
