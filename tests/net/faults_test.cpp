#include "net/faults.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace uesr::net {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Port;

ChaosConfig busy() {
  ChaosConfig cfg;
  cfg.horizon = 1 << 10;
  cfg.slot = 32;
  cfg.crash_rate = 0.2;
  cfg.crash_min = 16;
  cfg.crash_max = 64;
  cfg.corrupt_burst_rate = 0.2;
  cfg.burst_min = 8;
  cfg.burst_max = 32;
  cfg.brownout_rate = 0.1;
  cfg.brownout_min = 8;
  cfg.brownout_max = 32;
  return cfg;
}

TEST(FaultPlan, ScriptedEntriesStayTimeSorted) {
  FaultPlan plan;
  plan.crash(2, 50, 80).brownout(0, 1, 10, 30).corruption_burst(5, 100, 0.5);
  ASSERT_EQ(plan.size(), 6u);
  for (std::size_t i = 1; i < plan.entries().size(); ++i)
    EXPECT_LE(plan.entries()[i - 1].at, plan.entries()[i].at);
  EXPECT_EQ(plan.entries().front().at, 5u);
  EXPECT_EQ(plan.entries().front().action.kind,
            FaultAction::Kind::kGlobalCorrupt);
}

TEST(FaultPlan, ScriptedWindowsValidate) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash(0, 10, 10), std::invalid_argument);
  EXPECT_THROW(plan.brownout(0, 0, 30, 10), std::invalid_argument);
  EXPECT_THROW(plan.corruption_burst(0, 10, 1.5), std::invalid_argument);
  EXPECT_TRUE(plan.empty());  // failed builders added nothing
}

TEST(FaultPlan, SampleIsAPureFunctionOfItsArguments) {
  const Graph g = graph::connected_gnp(12, 0.3, 5);
  const FaultPlan a = FaultPlan::sample(g, busy(), 0xc4a05);
  const FaultPlan b = FaultPlan::sample(g, busy(), 0xc4a05);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 0u);
  const FaultPlan c = FaultPlan::sample(g, busy(), 0xc4a06);
  EXPECT_NE(a, c);  // the seed really steers the schedule
}

TEST(FaultPlan, ZeroRatesSampleAnEmptyPlan) {
  const Graph g = graph::connected_gnp(12, 0.3, 5);
  ChaosConfig calm;  // all rates default to 0
  EXPECT_TRUE(FaultPlan::sample(g, calm, 0xc4a05).empty());
}

TEST(FaultPlan, SampleValidatesConfig) {
  const Graph g = graph::cycle(4);
  ChaosConfig bad = busy();
  bad.crash_rate = 1.5;
  EXPECT_THROW(FaultPlan::sample(g, bad, 1), std::invalid_argument);
  bad = busy();
  bad.slot = 0;
  EXPECT_THROW(FaultPlan::sample(g, bad, 1), std::invalid_argument);
  bad = busy();
  bad.crash_min = 10;
  bad.crash_max = 5;
  EXPECT_THROW(FaultPlan::sample(g, bad, 1), std::invalid_argument);
  bad = busy();
  bad.corrupt_level = -0.1;
  EXPECT_THROW(FaultPlan::sample(g, bad, 1), std::invalid_argument);
}

TEST(FaultPlan, SampledWindowsNeverOverlapPerEntity) {
  const Graph g = graph::connected_gnp(10, 0.35, 6);
  const ChaosConfig cfg = busy();
  const FaultPlan plan = FaultPlan::sample(g, cfg, 0xfeed);
  // For each node, crash/recover actions must strictly alternate in time
  // (a second crash window can only open after the previous recover).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool down = false;
    SimTime last = 0;
    for (const FaultPlan::Entry& e : plan.entries()) {
      if (e.action.kind != FaultAction::Kind::kCrash &&
          e.action.kind != FaultAction::Kind::kRecover)
        continue;
      if (e.action.node != v) continue;
      if (e.action.kind == FaultAction::Kind::kCrash) {
        EXPECT_FALSE(down) << "node " << v << " crashed twice";
        EXPECT_GE(e.at, last);
        down = true;
      } else {
        EXPECT_TRUE(down) << "node " << v << " recovered while up";
        down = false;
      }
      last = e.at;
      EXPECT_LE(e.at, cfg.horizon);  // nothing scheduled past the horizon
    }
    EXPECT_FALSE(down) << "node " << v << " never recovered";
  }
}

TEST(FaultPlan, ArmingTwoSimsGivesByteIdenticalTraces) {
  const Graph g = graph::connected_gnp(10, 0.35, 6);
  LinkModel m;
  m.loss = 0.1;
  m.latency_min = 1;
  m.latency_max = 5;
  const FaultPlan plan = FaultPlan::sample(g, busy(), 0xbeef);
  std::vector<std::string> traces[2];
  for (int run = 0; run < 2; ++run) {
    EventSim sim(g, 0x5eed, m);
    sim.enable_trace(100000);
    plan.arm(sim);
    util::Pcg32 script(17);
    for (int i = 0; i < 2000; ++i) {
      const NodeId v = script.next_below(g.num_nodes());
      sim.send(v, script.next_below(g.degree(v)), i);
      if (i % 3 == 0) sim.next();
    }
    while (sim.next().has_value()) {
    }
    traces[run] = sim.trace();
  }
  ASSERT_FALSE(traces[0].empty());
  ASSERT_EQ(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < traces[0].size(); ++i)
    ASSERT_EQ(traces[0][i], traces[1][i]) << "trace line " << i;
}

TEST(FaultPlan, FreshIsAnIndependentEqualCopy) {
  FaultPlan plan;
  plan.crash(1, 10, 20);
  FaultPlan copy = plan.fresh();
  EXPECT_EQ(copy, plan);
  copy.crash(2, 30, 40);
  EXPECT_EQ(plan.size(), 2u);  // the original never moved
  EXPECT_EQ(copy.size(), 4u);
}

TEST(FaultPlan, MergeInterleavesByTime) {
  FaultPlan a;
  a.crash(0, 10, 30);
  FaultPlan b;
  b.corruption_burst(5, 20, 0.5);
  a.merge(b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.entries()[0].at, 5u);
  EXPECT_EQ(a.entries()[1].at, 10u);
  EXPECT_EQ(a.entries()[2].at, 20u);
  EXPECT_EQ(a.entries()[3].at, 30u);
}

TEST(FaultPlan, ArmedBrownoutsActuallyKillTheDirection) {
  Graph g = graph::from_edges(2, {{0, 1}});
  FaultPlan plan;
  plan.brownout(0, 0, 1, 10);
  EventSim sim(g, 7);
  plan.arm(sim);
  sim.send(0, 0, 1);  // departs t=0, arrives t=1: the kLinkDown at t=1 is
                      // applied first (pushed earlier) — died mid-flight
  EXPECT_FALSE(sim.next().has_value());
  EXPECT_EQ(sim.frames_died_midflight(), 1u);
  EXPECT_EQ(sim.now(), 10u);  // the kLinkUp closed the window
  sim.send(0, 0, 2);
  auto ev = sim.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->frame_id, 2u);
}

}  // namespace
}  // namespace uesr::net
