// Property tests pinning the SoA multi-walk kernel to RouteSession — the
// single-walk path stays the executable specification, and the arena must
// match it step for step: identical transmission counts, identical
// positions after every granted budget, identical verdicts.
#include "core/multi_walk.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using explore::ReducedGraph;
using graph::NodeId;

/// The engine's slot-grant loop over the scalar reference: steps until the
/// budget is spent or the session finished (free steps use no budget).
void grant(RouteSession& s, std::uint64_t budget) {
  std::uint64_t used = 0;
  std::uint64_t calls = 2 * budget + 8;
  while (!s.finished() && used < budget && calls-- > 0) {
    const std::uint64_t before = s.transmissions();
    s.step();
    used += s.transmissions() - before;
  }
}

/// Asserts the arena walk and the reference session are in the same state.
void expect_lockstep(const MultiWalkArena& arena, std::size_t w,
                     const RouteSession& ref, const char* where) {
  ASSERT_EQ(arena.transmissions(w), ref.transmissions()) << where;
  ASSERT_EQ(arena.finished(w), ref.finished()) << where;
  ASSERT_EQ(arena.target_reached(w), ref.target_reached()) << where;
  ASSERT_EQ(arena.current_original(w), ref.current_original()) << where;
  if (ref.finished()) {
    ASSERT_EQ(arena.delivered(w), ref.status() == net::Status::kSuccess)
        << where;
  }
}

TEST(MultiWalk, SingleWalkLockstepEveryTransmission) {
  const graph::Graph g = graph::random_connected_regular(24, 3, 42);
  const ReducedGraph net = explore::reduce_to_cubic(g);
  const auto seq = explore::standard_ues(net.cubic.num_nodes(), 7);
  for (NodeId s = 0; s < 6; ++s)
    for (NodeId t = 6; t < 10; ++t) {
      MultiWalkArena arena(net, *seq);
      RouteSession ref(net, *seq, s, t);
      const std::size_t w = arena.admit(s, t);
      std::uint64_t guard = 10'000'000;
      while (!ref.finished() && guard-- > 0) {
        arena.step_walk(w, 1);
        grant(ref, 1);
        expect_lockstep(arena, w, ref, "budget-1 lockstep");
      }
      ASSERT_TRUE(ref.finished());
      ASSERT_TRUE(arena.finished(w));
    }
}

TEST(MultiWalk, IrregularBudgetPatternMatchesReference) {
  // Budgets that straddle turn-around and terminate ticks in every phase
  // relation: the grant partition must never be observable.
  const graph::Graph g = graph::lollipop(7, 9);
  const ReducedGraph net = explore::reduce_to_cubic(g);
  const auto seq = explore::standard_ues(net.cubic.num_nodes(), 3);
  const std::uint64_t budgets[] = {1, 3, 64, 7, 2, 128, 5, 1, 31};
  for (NodeId t : {NodeId{3}, NodeId{12}, NodeId{15}}) {
    MultiWalkArena arena(net, *seq);
    RouteSession ref(net, *seq, 0, t);
    const std::size_t w = arena.admit(0, t);
    std::size_t b = 0;
    std::uint64_t guard = 10'000'000;
    while (!ref.finished() && guard-- > 0) {
      const std::uint64_t budget = budgets[b++ % std::size(budgets)];
      arena.step_walk(w, budget);
      grant(ref, budget);
      expect_lockstep(arena, w, ref, "irregular budgets");
    }
    ASSERT_TRUE(arena.finished(w));
  }
}

TEST(MultiWalk, FullBlockMatchesSixtyFourReferenceSessions) {
  // One arena block of 64 concurrent walks vs 64 scalar sessions: block
  // stepping (slot-major, prefetched, shared symbol windows) must be
  // invisible in every per-walk outcome.
  const graph::Graph g = graph::random_connected_regular(32, 3, 9);
  const ReducedGraph net = explore::reduce_to_cubic(g);
  const auto seq = explore::standard_ues(net.cubic.num_nodes(), 5);
  MultiWalkArena arena(net, *seq);
  std::vector<RouteSession> refs;
  std::vector<std::size_t> walks;
  for (std::size_t i = 0; i < 64; ++i) {
    const NodeId s = static_cast<NodeId>(i % 32);
    const NodeId t = static_cast<NodeId>((i * 7 + 5) % 32);
    if (s == t) continue;
    refs.emplace_back(net, *seq, s, t);
    walks.push_back(arena.admit(s, t));
  }
  bool all_done = false;
  std::uint64_t guard = 1'000'000;
  while (!all_done && guard-- > 0) {
    arena.step_block(walks.data(), walks.size(), 64);
    all_done = true;
    for (std::size_t i = 0; i < walks.size(); ++i) {
      grant(refs[i], 64);
      expect_lockstep(arena, walks[i], refs[i], "block of 64");
      all_done = all_done && refs[i].finished();
    }
  }
  ASSERT_TRUE(all_done);
}

TEST(MultiWalk, PartitionIntoBlocksIsInvisible) {
  // Stepping a walk set as one step_block call, as per-walk calls, or in
  // arbitrary sub-blocks yields bit-identical per-walk outcomes — the
  // property shard-count invariance rests on.
  const graph::Graph g = graph::petersen();
  const ReducedGraph net = explore::reduce_to_cubic(g);
  const auto seq = explore::standard_ues(net.cubic.num_nodes(), 1);
  auto make = [&](MultiWalkArena& a, std::vector<std::size_t>& w) {
    for (NodeId s = 0; s < 10; ++s)
      w.push_back(a.admit(s, (s + 4) % 10));
  };
  MultiWalkArena whole(net, *seq), split(net, *seq);
  std::vector<std::size_t> ww, sw;
  make(whole, ww);
  make(split, sw);
  for (int round = 0; round < 2000; ++round) {
    whole.step_block(ww.data(), ww.size(), 16);
    split.step_block(sw.data(), 3, 16);            // ids 0..2
    split.step_block(sw.data() + 3, 4, 16);        // ids 3..6
    for (std::size_t i = 7; i < sw.size(); ++i) split.step_walk(sw[i], 16);
  }
  for (std::size_t i = 0; i < ww.size(); ++i) {
    EXPECT_EQ(whole.transmissions(ww[i]), split.transmissions(sw[i])) << i;
    EXPECT_EQ(whole.finished(ww[i]), split.finished(sw[i])) << i;
    EXPECT_EQ(whole.delivered(ww[i]), split.delivered(sw[i])) << i;
    EXPECT_TRUE(whole.finished(ww[i])) << i;  // petersen walks are short
  }
}

TEST(MultiWalk, FailureCertificateOnDisconnectedTarget) {
  // Two disjoint clusters: cross-cluster walks must exhaust the sequence
  // and come back failure-certified, exactly like the reference.
  const graph::Graph g = graph::disjoint_copies(graph::k4(), 2);
  const ReducedGraph net = explore::reduce_to_cubic(g);
  const auto seq = explore::standard_ues(net.cubic.num_nodes(), 11);
  MultiWalkArena arena(net, *seq);
  const std::size_t w = arena.admit(0, 5);  // cluster 0 -> cluster 1
  RouteSession ref(net, *seq, 0, 5);
  while (!ref.finished()) ref.step();
  arena.step_walk(w, ref.transmissions() + 8);
  ASSERT_TRUE(arena.finished(w));
  EXPECT_FALSE(arena.delivered(w));
  EXPECT_FALSE(ref.status() == net::Status::kSuccess);
  EXPECT_EQ(arena.transmissions(w), ref.transmissions());
}

TEST(MultiWalk, RejectsDegenerateAndOutOfRange) {
  const ReducedGraph net = explore::reduce_to_cubic(graph::k4());
  const auto seq = explore::standard_ues(net.cubic.num_nodes(), 1);
  MultiWalkArena arena(net, *seq);
  EXPECT_THROW(arena.admit(1, 1), std::invalid_argument);
  EXPECT_THROW(arena.admit(4, 0), std::invalid_argument);
  EXPECT_THROW(arena.admit(0, 4), std::invalid_argument);
}

TEST(MultiWalk, WalkStateStaysLean) {
  const ReducedGraph net = explore::reduce_to_cubic(graph::petersen());
  const auto seq = explore::standard_ues(net.cubic.num_nodes(), 1);
  MultiWalkArena arena(net, *seq);
  for (int i = 0; i < 1000; ++i) arena.admit(0, 5);
  // 26 B per walk: 2x u32 + 2x u8 + 2x u64 (the §2.13 budget).
  EXPECT_LE(arena.walk_state_bytes() / arena.size(), 40u);
}

}  // namespace
}  // namespace uesr::core
