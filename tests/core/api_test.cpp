#include "core/api.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(AdHocNetwork, RouteOnDefaultOptions) {
  Graph g = graph::grid(4, 5);
  AdHocNetwork net(g);
  auto r = net.route(0, 19);
  EXPECT_TRUE(r.delivered);
}

TEST(AdHocNetwork, ReachabilityGroundTruthSweep) {
  Graph g = graph::from_edges(8, {{0, 1}, {1, 2}, {2, 3}, {5, 6}, {6, 7}});
  AdHocNetwork net(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s)
    for (NodeId t = 0; t < g.num_nodes(); ++t)
      EXPECT_EQ(net.route(s, t).delivered, graph::has_path(g, s, t))
          << s << "->" << t;
}

TEST(AdHocNetwork, BroadcastMatchesComponent) {
  Graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {4, 5}});
  AdHocNetwork net(g);
  auto b = net.broadcast(1);
  EXPECT_EQ(b.distinct_visited, 3u);
}

TEST(AdHocNetwork, CountComponentMatchesBfs) {
  Graph g = graph::gnp(18, 0.15, 21);
  AdHocNetwork net(g);
  auto c = net.count_component(0);
  EXPECT_EQ(c.original_count, graph::component_of(g, 0).size());
}

TEST(AdHocNetwork, AdaptiveRouteNoPriorKnowledge) {
  Graph g = graph::from_edges(7, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {5, 6}});
  AdHocNetwork net(g);
  auto ok = net.route_adaptive(0, 3);
  EXPECT_TRUE(ok.route.delivered);
  EXPECT_EQ(ok.census.original_count, 4u);
  auto fail = net.route_adaptive(0, 6);
  EXPECT_FALSE(fail.route.delivered);  // certified: census covered Cs
}

TEST(AdHocNetwork, AdaptiveSequenceSizedByCensus) {
  // The adaptive route must use a sequence sized for the *component*, not
  // the whole graph — that is the "poly(|Cs|), no need to know n" claim.
  Graph g = graph::from_edges(40, [] {
    std::vector<std::pair<NodeId, NodeId>> e;
    // Component A: triangle 0-1-2; the rest is a long path 3..39.
    e.push_back({0, 1});
    e.push_back({1, 2});
    e.push_back({2, 0});
    for (NodeId v = 3; v + 1 < 40; ++v) e.push_back({v, v + 1});
    return e;
  }());
  AdHocNetwork net(g);
  auto r = net.route_adaptive(0, 1);
  EXPECT_TRUE(r.route.delivered);
  EXPECT_EQ(r.census.gadget_count, 9u);  // 3 originals x 3 gadgets
}

TEST(AdHocNetwork, AdaptiveFailureCertificateOnDisconnectedGraph) {
  // End-to-end smoke test of the api.h failure-certificate path: on a
  // two-component graph, route_adaptive must come back undelivered (the
  // certificate that t is outside Cs) and the census that learned the
  // bound must be real — nonempty, matching the true component of s.
  Graph g = graph::from_edges(9, {{0, 1}, {1, 2}, {2, 3}, {3, 0},  // Cs
                                  {4, 5}, {5, 6}, {6, 7}, {7, 8}});
  AdHocNetwork net(g);
  for (CountMode mode : {CountMode::kFast, CountMode::kFaithful}) {
    auto r = net.route_adaptive(0, 8, mode);
    EXPECT_FALSE(r.route.delivered);
    EXPECT_TRUE(r.route.returned_to_source);
    EXPECT_GT(r.census.original_count, 0u);
    EXPECT_EQ(r.census.original_count, 4u);
    EXPECT_EQ(r.census.gadget_count, 12u);  // 4 originals x 3 gadgets
    EXPECT_GT(r.census.probes, 0u);
    EXPECT_GT(r.census.transmissions, 0u);
  }
}

TEST(AdHocNetwork, CustomSequenceOverride) {
  Graph g = graph::cycle(4);
  Options opt;
  opt.sequence = explore::standard_ues(64, 99);
  AdHocNetwork net(g, opt);
  EXPECT_EQ(&net.router().sequence(), opt.sequence.get());
  EXPECT_TRUE(net.route(0, 2).delivered);
}

TEST(AdHocNetwork, NamespaceSizeDefaultsToGadgets) {
  Graph g = graph::cycle(5);
  AdHocNetwork net(g);
  EXPECT_EQ(net.options().namespace_size, 15u);
}

TEST(AdHocNetwork, SizeBoundOption) {
  Graph g = graph::path(4);
  Options opt;
  opt.size_bound = 64;
  AdHocNetwork net(g, opt);
  EXPECT_EQ(net.router().sequence().target_size(), 64u);
  EXPECT_TRUE(net.route(0, 3).delivered);
}

TEST(AdHocNetwork, SingleNodeGraph) {
  Graph g = graph::GraphBuilder(1).build();
  AdHocNetwork net(g);
  EXPECT_TRUE(net.route(0, 0).delivered);
  auto c = net.count_component(0);
  EXPECT_EQ(c.original_count, 1u);
}

}  // namespace
}  // namespace uesr::core
