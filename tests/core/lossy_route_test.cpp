// Certificate soundness of Algorithm Route over lossy channels
// (DESIGN.md §2.10): under every adversarial channel regime, a delivery
// verdict is only returned when t is truly reachable, a failure
// certificate is never emitted while a path exists, and loss degrades
// outcomes to kUncertified — never to a wrong certificate.
#include "core/lossy_route.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/route.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace uesr::core {
namespace {

using explore::ReducedGraph;
using explore::reduce_to_cubic;
using graph::Graph;
using graph::NodeId;
using graph::Port;

struct Fixture {
  Graph original;
  ReducedGraph net;
  std::shared_ptr<const explore::ExplorationSequence> seq;

  explicit Fixture(Graph g, std::uint64_t seed = 0x5eed0001)
      : original(std::move(g)),
        net(reduce_to_cubic(original)),
        seq(explore::standard_ues(
            net.cubic.num_nodes() == 0 ? 1 : net.cubic.num_nodes(), seed)) {}
};

/// Two connected gnp halves with no edge between them: cross-half pairs
/// are ground-truth unreachable.
Graph split_graph(NodeId half, double p, std::uint64_t seed) {
  const Graph a = graph::connected_gnp(half, p, seed);
  const Graph b = graph::connected_gnp(half, p, seed + 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const Graph* g : {&a, &b}) {
    const NodeId base = g == &b ? half : 0;
    for (NodeId v = 0; v < g->num_nodes(); ++v)
      for (Port q = 0; q < g->degree(v); ++q) {
        const graph::HalfEdge far = g->rotate(v, q);
        if (far.node > v || (far.node == v && far.port >= q))
          edges.emplace_back(base + v, base + far.node);
      }
  }
  return graph::from_edges(2 * half, edges);
}

/// Soundness gate shared by all the regime sweeps: run every ordered pair
/// and check the verdict against ground-truth reachability.
struct RegimeTally {
  int delivered = 0;
  int certified = 0;
  int uncertified = 0;
};

RegimeTally sweep_all_pairs(const Fixture& fx, const LossyRouteOptions& base,
                            std::uint64_t seed_salt) {
  const auto comp = graph::connected_components(fx.original);
  RegimeTally tally;
  for (NodeId s = 0; s < fx.original.num_nodes(); ++s) {
    for (NodeId t = 0; t < fx.original.num_nodes(); ++t) {
      if (s == t) continue;
      LossyRouteOptions options = base;
      options.net_seed = util::counter_hash(seed_salt, s * 1000 + t);
      LossyRouteSession session(fx.net, *fx.seq, s, t, options);
      const LossyVerdict v = session.run();
      const bool reachable = comp[s] == comp[t];
      switch (v) {
        case LossyVerdict::kDelivered:
          EXPECT_TRUE(reachable) << "false delivery cert s=" << s
                                 << " t=" << t;
          ++tally.delivered;
          break;
        case LossyVerdict::kFailureCertified:
          EXPECT_FALSE(reachable)
              << "failure cert with a live path s=" << s << " t=" << t;
          ++tally.certified;
          break;
        case LossyVerdict::kUncertified:
          ++tally.uncertified;
          break;
        case LossyVerdict::kInProgress:
          ADD_FAILURE() << "run() returned kInProgress";
          break;
      }
    }
  }
  return tally;
}

// ---------------------------------------------------------------------------
// Perfect-channel equivalence: at loss = 0 the lossy session reproduces the
// RouteSession verdict and walk length exactly.
// ---------------------------------------------------------------------------

TEST(LossyRouteSession, PerfectChannelMatchesRouteSessionEverywhere) {
  Fixture fx(split_graph(6, 0.5, 7));
  for (NodeId s = 0; s < fx.original.num_nodes(); ++s) {
    for (NodeId t = 0; t < fx.original.num_nodes(); ++t) {
      if (s == t) continue;
      RouteSession perfect(fx.net, *fx.seq, s, t);
      while (!perfect.finished()) perfect.step();
      LossyRouteSession lossy(fx.net, *fx.seq, s, t);
      const LossyVerdict v = lossy.run();
      if (perfect.status() == net::Status::kSuccess) {
        EXPECT_EQ(v, LossyVerdict::kDelivered);
      } else {
        EXPECT_EQ(v, LossyVerdict::kFailureCertified);
      }
      EXPECT_EQ(lossy.hops(), perfect.transmissions());
      EXPECT_EQ(lossy.target_reached(), perfect.target_reached());
      // Stop-and-wait on a perfect channel: one DATA + one ACK per hop.
      EXPECT_EQ(lossy.wire_frames(), 2 * lossy.hops());
    }
  }
}

// ---------------------------------------------------------------------------
// Adversarial regimes (the ISSUE soundness gate).
// ---------------------------------------------------------------------------

TEST(LossyRouteSoundness, DuplicationOnlyRegime) {
  Fixture fx(split_graph(5, 0.6, 11));
  LossyRouteOptions options;
  options.link.dup = 1.0;  // every frame doubled, nothing lost
  options.link.latency_min = 1;
  options.link.latency_max = 11;  // dups overtake and straggle
  const RegimeTally tally = sweep_all_pairs(fx, options, 0xd0b1e);
  // No loss: every transfer completes, so every pair gets a real verdict
  // and it must match reachability exactly.
  EXPECT_EQ(tally.uncertified, 0);
  EXPECT_GT(tally.delivered, 0);
  EXPECT_GT(tally.certified, 0);
}

TEST(LossyRouteSoundness, LossOnlyRegime) {
  Fixture fx(split_graph(5, 0.6, 13));
  LossyRouteOptions options;
  options.link.loss = 0.3;
  options.reliable.max_retries = 2;  // tight budget: uncertified happens
  options.reliable.rto = 4;
  const RegimeTally tally = sweep_all_pairs(fx, options, 0x1055);
  EXPECT_GT(tally.uncertified, 0);  // the budget really bit
  EXPECT_GT(tally.delivered, 0);    // and some walks still completed
}

TEST(LossyRouteSoundness, LossOnlyGenerousBudgetStillSound) {
  Fixture fx(split_graph(4, 0.7, 17));
  LossyRouteOptions options;
  options.link.loss = 0.25;
  options.reliable.max_retries = 40;  // delivery of each hop near-certain
  options.reliable.rto = 2;
  const RegimeTally tally = sweep_all_pairs(fx, options, 0x9e9e);
  EXPECT_GT(tally.delivered, 0);
  EXPECT_GT(tally.certified, 0);  // failure certs survive loss, soundly
}

TEST(LossyRouteSoundness, OneSidedLinkRegimeNeverFalselyCertifies) {
  // No loss, no duplication — but some cubic-graph directions are down.
  // Data or acks silently vanish on those directions; the session may only
  // degrade to kUncertified, never to a wrong certificate.
  Fixture fx(split_graph(5, 0.6, 19));
  const auto comp = graph::connected_components(fx.original);
  const Graph& cubic = fx.net.cubic;
  util::Pcg32 flips(0x0f1e);
  int uncertified = 0, verdicts = 0;
  for (NodeId s = 0; s < fx.original.num_nodes(); ++s) {
    for (NodeId t = 0; t < fx.original.num_nodes(); ++t) {
      if (s == t) continue;
      LossyRouteOptions options;
      options.reliable.max_retries = 2;
      options.reliable.rto = 4;
      options.net_seed = util::counter_hash(0x51de, s * 1000 + t);
      LossyRouteSession session(fx.net, *fx.seq, s, t, options);
      // Down ~15% of directed half-edges, one side only.
      for (NodeId v = 0; v < cubic.num_nodes(); ++v)
        for (Port q = 0; q < cubic.degree(v); ++q)
          if (flips.next_below(100) < 15)
            session.transport().sim().set_link_up(v, q, false);
      const LossyVerdict v = session.run();
      const bool reachable = comp[s] == comp[t];
      if (v == LossyVerdict::kDelivered) {
        EXPECT_TRUE(reachable);
      }
      if (v == LossyVerdict::kFailureCertified) {
        EXPECT_FALSE(reachable);
      }
      uncertified += v == LossyVerdict::kUncertified;
      verdicts += v != LossyVerdict::kUncertified;
    }
  }
  EXPECT_GT(uncertified, 0);  // dead directions really blocked walks
  EXPECT_GT(verdicts, 0);     // and some sessions still concluded
}

// ---------------------------------------------------------------------------
// Plumbing.
// ---------------------------------------------------------------------------

TEST(LossyRouteSession, BroadcastRunsUnderLoss) {
  Fixture fx(graph::connected_gnp(8, 0.4, 23));
  LossyRouteOptions options;
  options.link.loss = 0.1;
  options.reliable.max_retries = 30;
  options.reliable.rto = 2;
  LossyRouteSession session(fx.net, *fx.seq, 0, net::kNoTarget, options);
  const LossyVerdict v = session.run();
  // A completed broadcast exhausts the sequence and rewinds: that is the
  // kFailureCertified shape (status kFailure at s) — or the budget spends.
  EXPECT_TRUE(v == LossyVerdict::kFailureCertified ||
              v == LossyVerdict::kUncertified);
}

TEST(LossyRouteSession, UncertifiedSessionsMayStillHaveDelivered) {
  // target_reached() is ground truth for the two-generals gap: across
  // seeds, some uncertified sessions reached t before the budget died.
  Fixture fx(graph::connected_gnp(6, 0.5, 29));
  int uncertified_but_reached = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    LossyRouteOptions options;
    options.link.loss = 0.1;
    options.reliable.max_retries = 2;
    options.reliable.rto = 4;
    options.net_seed = util::counter_hash(0x2be1, seed);
    LossyRouteSession session(fx.net, *fx.seq, 0, 5, options);
    session.run();
    if (session.uncertified() && session.target_reached())
      ++uncertified_but_reached;
  }
  EXPECT_GT(uncertified_but_reached, 0);
}

TEST(LossyRouteSession, SameSeedSameVerdictAndFrames) {
  Fixture fx(graph::connected_gnp(9, 0.4, 31));
  LossyVerdict verdicts[2];
  std::uint64_t frames[2];
  for (int run = 0; run < 2; ++run) {
    LossyRouteOptions options;
    options.link.loss = 0.2;
    options.link.dup = 0.1;
    options.reliable.rto = 4;
    LossyRouteSession session(fx.net, *fx.seq, 1, 7, options);
    verdicts[run] = session.run();
    frames[run] = session.wire_frames();
  }
  EXPECT_EQ(verdicts[0], verdicts[1]);
  EXPECT_EQ(frames[0], frames[1]);
}

TEST(LossyRouteSession, ValidatesEndpoints) {
  Fixture fx(graph::cycle(4));
  EXPECT_THROW(LossyRouteSession(fx.net, *fx.seq, 99, 0, {}),
               std::invalid_argument);
  EXPECT_THROW(LossyRouteSession(fx.net, *fx.seq, 0, 99, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The selective-repeat seam (PR 7): same walk, pipelined wire.
// ---------------------------------------------------------------------------

TEST(LossyRouteSelectiveRepeat, PerfectChannelMatchesStopAndWaitWalk) {
  Fixture fx(split_graph(4, 0.7, 7));
  for (NodeId s = 0; s < fx.original.num_nodes(); ++s) {
    for (NodeId t = 0; t < fx.original.num_nodes(); ++t) {
      if (s == t) continue;
      LossyRouteSession sw(fx.net, *fx.seq, s, t, {});
      LossyRouteOptions sr_options;
      sr_options.arq = ArqKind::kSelectiveRepeat;
      sr_options.window.frames_per_message = 4;
      LossyRouteSession sr(fx.net, *fx.seq, s, t, sr_options);
      EXPECT_EQ(sw.run(), sr.run());
      // The walk is the routing layer's: identical hop for hop; only the
      // framing differs (F DATA + F ACK per hop at loss 0).
      EXPECT_EQ(sw.hops(), sr.hops());
      EXPECT_EQ(sr.wire_frames(), 2 * 4 * sr.hops());
    }
  }
}

TEST(LossyRouteSelectiveRepeat, AdversarialRegimeStaysSound) {
  Fixture fx(split_graph(4, 0.7, 37));
  LossyRouteOptions options;
  options.arq = ArqKind::kSelectiveRepeat;
  options.link.loss = 0.2;
  options.link.dup = 0.2;
  options.link.latency_max = 6;
  options.window.frames_per_message = 3;
  options.window.window = 2;
  options.window.max_retries = 5;
  const RegimeTally tally = sweep_all_pairs(fx, options, 0x5e1e);
  EXPECT_GT(tally.delivered, 0);
  EXPECT_GT(tally.delivered + tally.certified + tally.uncertified, 0);
}

TEST(LossyRouteSelectiveRepeat, ArqStatsSurfaceRetransmissionBehaviour) {
  Fixture fx(graph::connected_gnp(6, 0.5, 41));
  LossyRouteOptions options;
  options.arq = ArqKind::kSelectiveRepeat;
  options.link.loss = 0.25;
  options.window.frames_per_message = 4;
  options.window.max_retries = 30;
  LossyRouteSession session(fx.net, *fx.seq, 0, 4, options);
  const LossyVerdict v = session.run();
  EXPECT_EQ(v, LossyVerdict::kDelivered);
  const ArqStats stats = session.arq_stats();
  EXPECT_GT(stats.retransmits, 0u);   // loss really forced resends
  EXPECT_GT(stats.rtt_samples, 0u);   // clean frames fed the estimator
  EXPECT_GT(stats.virtual_time, 0u);
  EXPECT_GT(stats.srtt, 0u);
}

TEST(LossyRouteSession, TransportAccessorMatchesArqKind) {
  Fixture fx(graph::cycle(4));
  LossyRouteSession sw(fx.net, *fx.seq, 0, 2, {});
  EXPECT_NO_THROW(sw.transport());
  EXPECT_THROW(sw.window_transport(), std::logic_error);
  LossyRouteOptions sr_options;
  sr_options.arq = ArqKind::kSelectiveRepeat;
  LossyRouteSession sr(fx.net, *fx.seq, 0, 2, sr_options);
  EXPECT_NO_THROW(sr.window_transport());
  EXPECT_THROW(sr.transport(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Loss + churn composed: LossyDynamicRouteSession.
// ---------------------------------------------------------------------------

namespace {
void run_to_end(LossyDynamicRouteSession& sess) {
  for (int guard = 0; guard < 1000000 && !sess.finished(); ++guard) {
    if (sess.blocked()) break;
    sess.step();
  }
}
}  // namespace

TEST(LossyDynamicRoute, PerfectChannelDeliversAndCertifies) {
  graph::DynamicGraph g(graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}}));
  LossyDynamicRouteSession ok(g, 0, 2, {});
  run_to_end(ok);
  EXPECT_TRUE(ok.delivered());
  EXPECT_EQ(ok.completion_epoch(), 0u);
  LossyDynamicRouteSession fail(g, 0, 4, {});
  run_to_end(fail);
  EXPECT_TRUE(fail.failure_certified());
  EXPECT_EQ(fail.completion_epoch(), 0u);
}

TEST(LossyDynamicRoute, SourceEqualsTargetIsImmediate) {
  graph::DynamicGraph g(graph::cycle(4));
  LossyDynamicRouteSession sess(g, 2, 2, {});
  EXPECT_TRUE(sess.finished());
  EXPECT_TRUE(sess.delivered());
  EXPECT_EQ(sess.hops(), 0u);
}

TEST(LossyDynamicRoute, RestartsWhenEpochMovesMidWalk) {
  graph::DynamicGraph g(graph::path(12));
  LossyDynamicRouteSession sess(g, 0, 11, {});
  for (int k = 0; k < 5 && !sess.finished(); ++k) sess.step();
  g.add_edge(0, 11);
  g.commit();
  run_to_end(sess);
  EXPECT_TRUE(sess.delivered());
  EXPECT_EQ(sess.restarts(), 1u);
  EXPECT_EQ(sess.completion_epoch(), 1u);
}

TEST(LossyDynamicRoute, BudgetExhaustionBlocksThenEpochHeals) {
  // A dead channel spends every hop budget: the session must go blocked
  // (NOT uncertified — under churn the link may heal), then resume when
  // the epoch moves and the channel is rebuilt clean.
  graph::DynamicGraph g(graph::path(3));
  LossyDynamicOptions options;
  options.link.loss = 1.0;
  options.reliable.max_retries = 1;
  LossyDynamicRouteSession sess(g, 0, 2, options);
  sess.step();
  EXPECT_TRUE(sess.blocked());
  EXPECT_FALSE(sess.finished());
  sess.step();  // no-op while blocked in an unchanged epoch
  EXPECT_TRUE(sess.blocked());
  // Epoch moves; the rebuilt channel is seeded per-epoch, but loss = 1.0
  // still kills everything — prove blocked() resets and re-blocks.
  g.add_edge(0, 2);
  g.commit();
  EXPECT_FALSE(sess.blocked());  // epoch moved: eligible to step again
  sess.step();
  EXPECT_TRUE(sess.blocked());
  EXPECT_EQ(sess.restarts(), 1u);
}

TEST(LossyDynamicRoute, GiveUpResolvesBlockedToUncertified) {
  graph::DynamicGraph g(graph::path(3));
  LossyDynamicOptions options;
  options.link.loss = 1.0;
  options.reliable.max_retries = 1;
  LossyDynamicRouteSession sess(g, 0, 2, options);
  sess.step();
  ASSERT_TRUE(sess.blocked());
  sess.give_up();
  EXPECT_TRUE(sess.uncertified());
  EXPECT_TRUE(sess.finished());
}

TEST(LossyDynamicRoute, GiveUpIsNoOpUnlessBlocked) {
  graph::DynamicGraph g(graph::path(3));
  LossyDynamicRouteSession sess(g, 0, 2, {});
  sess.give_up();  // in flight, not blocked: keeps stepping
  EXPECT_FALSE(sess.finished());
  run_to_end(sess);
  EXPECT_TRUE(sess.delivered());
  sess.give_up();  // finished: still a no-op
  EXPECT_TRUE(sess.delivered());
}

TEST(LossyDynamicRoute, ComposedLossAndChurnVerdictsMatchCompletionEpoch) {
  // Loss at 0.15 over a topology whose bridge flaps: whatever hard verdict
  // comes out must match reachability at the completion epoch.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    graph::DynamicGraph g(graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3},
                                                {3, 4}, {4, 5}}));
    LossyDynamicOptions options;
    options.link.loss = 0.15;
    options.reliable.max_retries = 3;
    options.net_seed = util::counter_hash(0xc0a1, seed);
    LossyDynamicRouteSession sess(g, 0, 5, options);
    for (int k = 0; k < 3 && !sess.finished(); ++k) sess.step();
    if (!sess.finished()) {
      g.remove_edge(2, 3);  // cut the bridge mid-walk
      g.commit();
    }
    for (int guard = 0; guard < 100000 && !sess.finished(); ++guard) {
      if (sess.blocked()) sess.give_up();
      else sess.step();
    }
    ASSERT_TRUE(sess.finished());
    const bool reachable_now =
        graph::has_path(g.snapshot(), 0, 5);
    if (sess.delivered() && sess.completion_epoch() == g.epoch()) {
      EXPECT_TRUE(reachable_now) << "seed=" << seed;
    }
    if (sess.failure_certified() && sess.completion_epoch() == g.epoch()) {
      EXPECT_FALSE(reachable_now) << "seed=" << seed;
    }
  }
}

TEST(LossyDynamicRoute, OneSidedFlipsAreReplayable) {
  graph::DynamicGraph g(graph::connected_gnp(8, 0.4, 43));
  LossyVerdict verdicts[2];
  std::uint64_t frames[2];
  for (int run = 0; run < 2; ++run) {
    LossyDynamicOptions options;
    options.link.loss = 0.1;
    options.one_sided_down = 0.2;
    options.reliable.max_retries = 4;
    LossyDynamicRouteSession sess(g, 0, 6, options);
    for (int guard = 0; guard < 100000 && !sess.finished(); ++guard) {
      if (sess.blocked()) sess.give_up();
      else sess.step();
    }
    verdicts[run] = sess.verdict();
    frames[run] = sess.wire_frames();
  }
  EXPECT_EQ(verdicts[0], verdicts[1]);
  EXPECT_EQ(frames[0], frames[1]);
}

}  // namespace
}  // namespace uesr::core
