#include "core/dynamic_route.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/algorithms.h"
#include "graph/dynamic.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using graph::DynamicGraph;
using graph::NodeId;

/// Steps the session to completion with no topology changes.
void run_to_end(DynamicRouteSession& s) {
  std::uint64_t guard = 0;
  while (!s.finished()) {
    s.step();
    ASSERT_LT(++guard, 100000000u);
  }
}

TEST(DynamicRoute, MatchesStaticOutcomeOnFrozenTopology) {
  // Multi-component graph: delivered iff a path exists, certified failure
  // otherwise — identical to the static router's contract.
  DynamicGraph g(graph::gnp(24, 0.09, 11));
  net::DynamicTransport tr(g);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 17},
                      {3, 9},
                      {5, 21},
                      {1, 23}}) {
    DynamicRouteSession sess(tr, s, t);
    run_to_end(sess);
    const bool truth = graph::has_path(g.snapshot(), s, t);
    EXPECT_EQ(sess.delivered(), truth) << s << "->" << t;
    EXPECT_EQ(sess.failure_certified(), !truth);
    EXPECT_EQ(sess.restarts(), 0u);
    EXPECT_EQ(sess.completion_epoch(), 0u);
  }
}

TEST(DynamicRoute, SourceEqualsTargetIsImmediate) {
  DynamicGraph g(graph::cycle(4));
  net::DynamicTransport tr(g);
  DynamicRouteSession sess(tr, 2, 2);
  EXPECT_TRUE(sess.finished());
  EXPECT_TRUE(sess.delivered());
  EXPECT_EQ(sess.transmissions(), 0u);
}

TEST(DynamicRoute, IsolatedSourceCertifiesFailure) {
  DynamicGraph g(graph::from_edges(4, {{1, 2}, {2, 3}}));
  net::DynamicTransport tr(g);
  DynamicRouteSession sess(tr, 0, 3);
  run_to_end(sess);
  EXPECT_FALSE(sess.delivered());
  EXPECT_TRUE(sess.failure_certified());
}

TEST(DynamicRoute, RestartsWhenEpochMovesMidWalk) {
  DynamicGraph g(graph::path(12));
  net::DynamicTransport tr(g);
  DynamicRouteSession sess(tr, 0, 11);
  // A few transmissions into the walk, flip an edge: the session must
  // notice, restart against the new snapshot, and still deliver (the
  // component stays intact).
  for (int k = 0; k < 5 && !sess.finished(); ++k) sess.step();
  g.add_edge(0, 11);
  g.commit();
  run_to_end(sess);
  EXPECT_TRUE(sess.delivered());
  EXPECT_EQ(sess.restarts(), 1u);
  EXPECT_EQ(sess.session_epoch(), 1u);
  EXPECT_EQ(sess.completion_epoch(), 1u);
}

TEST(DynamicRoute, DeliversAfterTopologyHeals) {
  // s and t start disconnected; mid-walk the bridge appears.  The restart
  // must pick it up and deliver — the certificate the first epoch was
  // heading toward would have been stale.
  DynamicGraph g(graph::from_edges(6, {{0, 1}, {2, 3}, {3, 4}, {4, 5}}));
  net::DynamicTransport tr(g);
  DynamicRouteSession sess(tr, 0, 5);
  for (int k = 0; k < 3 && !sess.finished(); ++k) sess.step();
  ASSERT_FALSE(sess.finished());  // tiny component: walk still rewinding
  g.add_edge(1, 2);
  g.commit();
  run_to_end(sess);
  EXPECT_TRUE(sess.delivered());
  EXPECT_GE(sess.restarts(), 1u);
}

TEST(DynamicRoute, CertificateIsAboutTheCompletionEpoch) {
  // Connected at epoch 0; the target's link is cut mid-walk.  Whatever the
  // session reports must match ground truth at its completion epoch.
  DynamicGraph g(graph::path(8));
  net::DynamicTransport tr(g);
  DynamicRouteSession sess(tr, 0, 7);
  for (int k = 0; k < 2 && !sess.finished(); ++k) sess.step();
  g.remove_edge(6, 7);
  g.commit();
  run_to_end(sess);
  EXPECT_TRUE(sess.finished());
  EXPECT_EQ(sess.completion_epoch(), 1u);
  EXPECT_FALSE(sess.delivered());
  EXPECT_TRUE(sess.failure_certified());  // t provably unreachable at epoch 1
}

TEST(DynamicRoute, TransmissionsAccumulateAcrossRestarts) {
  DynamicGraph g(graph::cycle(10));
  net::DynamicTransport tr(g);
  DynamicRouteSession sess(tr, 0, 5);
  for (int k = 0; k < 4; ++k) sess.step();
  const std::uint64_t before = sess.transmissions();
  EXPECT_EQ(before, 4u);
  g.add_edge(0, 5);
  g.commit();
  run_to_end(sess);
  EXPECT_TRUE(sess.delivered());
  // The discarded walk's four frames were really sent and stay counted.
  EXPECT_GT(sess.transmissions(), before);
}

TEST(DynamicRoute, Validation) {
  DynamicGraph g(graph::cycle(3));
  net::DynamicTransport tr(g);
  EXPECT_THROW(DynamicRouteSession(tr, 0, 9), std::invalid_argument);
  EXPECT_THROW(DynamicRouteSession(tr, 7, 0), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::core
