#include "core/traffic.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/workload.h"
#include "graph/algorithms.h"
#include "graph/churn.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using graph::NodeId;

TrafficOptions with_walkers(TrafficOptions opt = {}) {
  opt.hybrid_walker = baselines::random_walk_factory();
  return opt;
}

TEST(TrafficEngine, RouteVerdictsMatchGroundTruth) {
  // Two components: deliveries and certificates must split exactly along
  // reachability, for every concurrently multiplexed session.
  graph::Graph g = graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}});
  TrafficEngine engine(g);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId s = 0; s < 7; ++s)
    for (NodeId t = 0; t < 7; ++t)
      if (s != t) {
        engine.admit({TrafficKind::kRoute, s, t, 0, 0});
        pairs.emplace_back(s, t);
      }
  engine.run();
  for (std::size_t id = 0; id < pairs.size(); ++id) {
    const SessionReport& r = engine.report(id);
    const auto [s, t] = pairs[id];
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.delivered, graph::has_path(g, s, t)) << s << "->" << t;
    EXPECT_EQ(r.failure_certified, !r.delivered);
  }
}

TEST(TrafficEngine, SharedClockAccounting) {
  graph::Graph g = graph::cycle(6);
  TrafficEngine engine(g);
  engine.admit({TrafficKind::kRoute, 0, 3, /*admit_at=*/0, 0});
  engine.admit({TrafficKind::kRoute, 1, 4, /*admit_at=*/100, 0});
  engine.run();
  for (std::size_t id = 0; id < 2; ++id) {
    const SessionReport& r = engine.report(id);
    ASSERT_TRUE(r.finished);
    // One slot per transmission: completion is exactly admission +
    // transmissions (Route's terminate step is free).
    EXPECT_EQ(r.completed_at, r.admitted_at + r.transmissions) << id;
  }
  EXPECT_EQ(engine.report(1).admitted_at, 100u);
  EXPECT_GE(engine.clock(), engine.report(1).completed_at);
}

TEST(TrafficEngine, SourceEqualsTargetImmediate) {
  graph::Graph g = graph::cycle(5);
  TrafficEngine engine(g);
  engine.admit({TrafficKind::kRoute, 2, 2, /*admit_at=*/7, 0});
  engine.run();
  const SessionReport& r = engine.report(0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.transmissions, 0u);
  EXPECT_EQ(r.completed_at, 7u);
}

TEST(TrafficEngine, BroadcastCoversComponent) {
  graph::Graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {4, 5}});
  TrafficEngine engine(g);
  engine.admit({TrafficKind::kBroadcast, 0, 0, 0, 0});
  engine.admit({TrafficKind::kBroadcast, 4, 0, 0, 0});
  engine.admit({TrafficKind::kBroadcast, 3, 0, 0, 0});
  engine.run();
  EXPECT_EQ(engine.report(0).distinct_visited, 3u);  // {0,1,2}
  EXPECT_EQ(engine.report(1).distinct_visited, 2u);  // {4,5}
  EXPECT_EQ(engine.report(2).distinct_visited, 1u);  // isolated
  for (std::size_t id = 0; id < 3; ++id)
    EXPECT_TRUE(engine.report(id).delivered);
}

TEST(TrafficEngine, HybridSessionsDecide) {
  graph::Graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {4, 5}});
  TrafficEngine engine(g, with_walkers());
  engine.admit({TrafficKind::kHybrid, 0, 2, 0, /*hybrid_ttl=*/0});
  engine.admit({TrafficKind::kHybrid, 0, 4, 0, /*hybrid_ttl=*/50});
  engine.run();
  EXPECT_TRUE(engine.report(0).delivered);
  const SessionReport& unreachable = engine.report(1);
  EXPECT_FALSE(unreachable.delivered);
  // The guaranteed side certifies even after the token's TTL expires.
  EXPECT_TRUE(unreachable.failure_certified);
  EXPECT_FALSE(unreachable.exhausted);
}

TEST(TrafficEngine, HybridNeedsWalkerFactory) {
  graph::Graph g = graph::cycle(4);
  TrafficEngine engine(g);  // no factory configured
  EXPECT_THROW(engine.admit({TrafficKind::kHybrid, 0, 2, 0, 10}),
               std::invalid_argument);
}

TEST(TrafficEngine, AdmissionValidation) {
  graph::Graph g = graph::cycle(4);
  TrafficEngine engine(g);
  EXPECT_THROW(engine.admit({TrafficKind::kRoute, 9, 0, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(engine.admit({TrafficKind::kRoute, 0, 9, 0, 0}),
               std::invalid_argument);
  engine.admit({TrafficKind::kRoute, 0, 2, 5, 0});
  engine.run();
  // The clock has advanced past 5; admissions into the past must throw.
  EXPECT_THROW(engine.admit({TrafficKind::kRoute, 0, 1, 0, 0}),
               std::invalid_argument);
  TrafficOptions bad;
  bad.batch = 0;
  EXPECT_THROW(TrafficEngine(g, bad), std::invalid_argument);
}

TEST(TrafficEngine, StaggeredArrivalsRespectAdmitTicks) {
  graph::Graph g = graph::grid(3, 3);
  TrafficEngine engine(g);
  // Arrival ticks straddling several batch boundaries, admitted unsorted.
  const std::vector<std::uint64_t> at = {200, 3, 77, 0, 130};
  for (std::size_t i = 0; i < at.size(); ++i)
    engine.admit({TrafficKind::kRoute, static_cast<NodeId>(i),
                  static_cast<NodeId>(8 - i), at[i], 0});
  engine.run();
  for (std::size_t id = 0; id < at.size(); ++id) {
    const SessionReport& r = engine.report(id);
    EXPECT_EQ(r.admitted_at, at[id]);
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.completed_at, r.admitted_at + r.transmissions);
  }
}

TEST(TrafficEngine, DynamicModeRoutesUnderChurn) {
  graph::NodeChurnScenario sc(graph::connected_gnp(14, 0.3, 5),
                              /*p_leave=*/0.15, /*p_join=*/0.5, 11);
  TrafficOptions opt;
  opt.epoch_period = 32;
  opt.max_epochs = 12;
  TrafficEngine engine(sc, opt);
  for (NodeId s = 0; s < 14; ++s)
    engine.admit({TrafficKind::kRoute, s, static_cast<NodeId>(13 - s),
                  s * 7, 0});
  engine.run();
  std::uint64_t restarts = 0;
  for (std::size_t id = 0; id < 14; ++id) {
    const SessionReport& r = engine.report(id);
    EXPECT_TRUE(r.finished);
    // Every session ends in a delivery or an epoch-exact certificate.
    EXPECT_TRUE(r.delivered || r.failure_certified) << id;
    EXPECT_LE(r.completion_epoch, engine.epoch());
    restarts += r.restarts;
  }
  // The schedule ran: epochs advanced on the shared clock.
  EXPECT_GT(engine.epoch(), 0u);
  (void)restarts;  // restarts can be 0 on gentle replays; counted per session
}

TEST(TrafficEngine, DynamicModeRejectsBroadcastAndHybrid) {
  graph::LinkFlapScenario sc(graph::connected_gnp(10, 0.3, 3), 2, 7);
  TrafficOptions opt = with_walkers();
  opt.epoch_period = 16;
  opt.max_epochs = 4;
  TrafficEngine engine(sc, opt);
  EXPECT_THROW(engine.admit({TrafficKind::kBroadcast, 0, 0, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(engine.admit({TrafficKind::kHybrid, 0, 1, 0, 10}),
               std::invalid_argument);
  engine.admit({TrafficKind::kRoute, 0, 5, 0, 0});
  engine.run();
  EXPECT_TRUE(engine.report(0).finished);
}

// The acceptance gate: >= 1024 concurrent sessions whose folded report is
// bit-identical for threads in {1, 4, 8} (cells include double-valued
// percentiles, so this pins the full merge order, not just counters).
TEST(ThreadInvariance, TrafficExperiment1024Sessions) {
  graph::Graph g = graph::connected_gnp(33, 0.18, 7);
  baselines::Workload w = baselines::all_pairs_workload(33);
  ASSERT_GE(w.sessions.size(), 1024u);
  const baselines::TrafficCell base =
      baselines::traffic_experiment(g, w, /*seq_seed=*/0x5eed0001,
                                    /*threads=*/1);
  EXPECT_EQ(base.sessions, static_cast<int>(w.sessions.size()));
  EXPECT_EQ(base.delivered, base.sessions);  // connected graph
  EXPECT_EQ(base.certified, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, baselines::traffic_experiment(g, w, 0x5eed0001, t))
        << "threads=" << t;
}

TEST(ThreadInvariance, TrafficEngineReportsPerSession) {
  // Stronger than the cell: every per-session report identical at 1 vs 8
  // threads, mixed kinds included.
  graph::Graph g = graph::from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {5, 6}, {6, 7}});
  baselines::Workload w = baselines::mixed_workload(8, 48, 2.0, 64, 99);
  std::vector<SessionReport> base;
  for (unsigned threads : {1u, 8u}) {
    TrafficOptions opt = with_walkers();
    opt.threads = threads;
    TrafficEngine engine(g, opt);
    engine.admit_all(w.sessions);
    engine.run();
    if (threads == 1) {
      base = engine.reports();
      continue;
    }
    ASSERT_EQ(engine.reports().size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      const SessionReport& a = base[i];
      const SessionReport& b = engine.reports()[i];
      EXPECT_EQ(a.delivered, b.delivered) << i;
      EXPECT_EQ(a.failure_certified, b.failure_certified) << i;
      EXPECT_EQ(a.exhausted, b.exhausted) << i;
      EXPECT_EQ(a.transmissions, b.transmissions) << i;
      EXPECT_EQ(a.completed_at, b.completed_at) << i;
      EXPECT_EQ(a.distinct_visited, b.distinct_visited) << i;
    }
  }
}

// The PR 9 acceptance gate's second axis: the shard count partitions
// session state but must never be observable in any report field.
TEST(ShardInvariance, ReportsIdenticalAcrossShardCounts) {
  graph::Graph g = graph::connected_gnp(33, 0.18, 7);
  baselines::Workload w = baselines::all_pairs_workload(33);
  std::vector<SessionReport> base;
  for (unsigned shards : {1u, 4u, 16u}) {
    TrafficOptions opt;
    opt.shards = shards;
    TrafficEngine engine(g, opt);
    engine.admit_all(w.sessions);
    engine.run();
    if (shards == 1) {
      base = engine.reports();
      continue;
    }
    ASSERT_EQ(engine.reports().size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      const SessionReport& a = base[i];
      const SessionReport& b = engine.reports()[i];
      ASSERT_EQ(a.delivered, b.delivered) << "shards=" << shards << " " << i;
      ASSERT_EQ(a.failure_certified, b.failure_certified) << i;
      ASSERT_EQ(a.transmissions, b.transmissions) << i;
      ASSERT_EQ(a.completed_at, b.completed_at) << i;
    }
  }
}

TEST(TrafficEngine, OpenLoopDeparturesRetireWithoutVerdict) {
  graph::Graph g = graph::cycle(64);
  TrafficEngine engine(g);
  // Session 0: the antipodal walk needs far more than 5 transmissions;
  // the user leaves at tick 5.  Session 1: same route, patient enough to
  // see the verdict through.
  SessionSpec leave;
  leave.s = 0;
  leave.t = 32;
  leave.depart_at = 5;
  SessionSpec stay;
  stay.s = 0;
  stay.t = 32;
  engine.admit(leave);
  engine.admit(stay);
  engine.run();
  const SessionReport& gone = engine.report(0);
  EXPECT_TRUE(gone.finished);
  EXPECT_TRUE(gone.departed);
  EXPECT_FALSE(gone.delivered);
  EXPECT_FALSE(gone.failure_certified);
  // Rounds clamp to departure ticks, so the retirement instant is exact,
  // and a slotted walk spends one transmission per tick until then.
  EXPECT_EQ(gone.completed_at, 5u);
  EXPECT_EQ(gone.transmissions, 5u);
  const SessionReport& kept = engine.report(1);
  EXPECT_FALSE(kept.departed);
  EXPECT_TRUE(kept.delivered);
  // depart_at must be strictly after admission.
  SessionSpec bad;
  bad.s = 1;
  bad.t = 2;
  bad.admit_at = engine.clock() + 10;
  bad.depart_at = bad.admit_at;
  EXPECT_THROW(engine.admit(bad), std::invalid_argument);
}

/// Replays a fixed schedule through the pull interface.
class VectorArrivals final : public ArrivalSource {
 public:
  explicit VectorArrivals(std::vector<SessionSpec> specs)
      : specs_(std::move(specs)) {}
  std::optional<SessionSpec> next() override {
    if (i_ >= specs_.size()) return std::nullopt;
    return specs_[i_++];
  }

 private:
  std::vector<SessionSpec> specs_;
  std::size_t i_ = 0;
};

TEST(TrafficEngine, PulledArrivalsMatchUpFrontAdmission) {
  // The open-loop contract: a stream pulled lazily during run() produces
  // reports bit-identical to the same schedule admitted up front.
  graph::Graph g = graph::grid(5, 5);
  baselines::Workload w = baselines::poisson_workload(25, 120, 3.0, 21);
  TrafficEngine up_front(g);
  up_front.admit_all(w.sessions);
  up_front.run();
  TrafficEngine pulled(g);
  VectorArrivals source(w.sessions);
  pulled.attach_arrivals(source);
  pulled.run();
  ASSERT_EQ(pulled.reports().size(), up_front.reports().size());
  for (std::size_t i = 0; i < up_front.reports().size(); ++i) {
    const SessionReport& a = up_front.reports()[i];
    const SessionReport& b = pulled.reports()[i];
    ASSERT_EQ(a.admitted_at, b.admitted_at) << i;
    ASSERT_EQ(a.delivered, b.delivered) << i;
    ASSERT_EQ(a.transmissions, b.transmissions) << i;
    ASSERT_EQ(a.completed_at, b.completed_at) << i;
  }
  EXPECT_EQ(pulled.clock(), up_front.clock());
}

TEST(ShardInvariance, OpenLoopCellAcrossThreadsAndShards) {
  // Arrivals, departures, sharding and threading all at once: the folded
  // cell (double-valued percentiles included) must not move.
  const graph::Graph g = graph::disjoint_copies(graph::petersen(), 8);
  baselines::OpenLoopWorkload::Config cfg;
  cfg.cluster_size = 10;
  cfg.clusters = 8;
  cfg.sessions = 400;
  cfg.mean_interarrival = 0.5;
  cfg.mean_lifetime = 30.0;
  cfg.seed = 5;
  const baselines::TrafficCell base =
      baselines::open_loop_traffic_experiment(g, cfg, 0x5eed0001,
                                              /*threads=*/1, /*shards=*/1);
  EXPECT_EQ(base.sessions, 400);
  EXPECT_GT(base.delivered, 0);
  EXPECT_GT(base.departed, 0);  // the lifetime knob actually bites
  for (auto [threads, shards] :
       {std::pair{4u, 4u}, {8u, 16u}, {1u, 16u}, {4u, 1u}})
    EXPECT_EQ(base, baselines::open_loop_traffic_experiment(
                        g, cfg, 0x5eed0001, threads, shards))
        << "threads=" << threads << " shards=" << shards;
}

}  // namespace
}  // namespace uesr::core
