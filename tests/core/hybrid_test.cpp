#include "core/hybrid.h"

#include <gtest/gtest.h>

#include "baselines/random_walk.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using explore::ReducedGraph;
using explore::reduce_to_cubic;
using graph::Graph;
using graph::NodeId;

struct HybridFixture {
  Graph g;
  ReducedGraph net;
  std::shared_ptr<const explore::ExplorationSequence> seq;

  explicit HybridFixture(Graph graph)
      : g(std::move(graph)), net(reduce_to_cubic(g)),
        seq(explore::standard_ues(net.cubic.num_nodes())) {}
};

TEST(Hybrid, DeliversOnConnectedGraph) {
  HybridFixture f(graph::grid(4, 4));
  baselines::RandomWalkSession prob(f.g, 0, 15, 0, 42);
  RouteSession guar(f.net, *f.seq, 0, 15);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_TRUE(r.delivered);
  EXPECT_FALSE(r.certified_unreachable);
  EXPECT_NE(r.winner, HybridWinner::kCertifiedFailure);
  EXPECT_EQ(r.total_transmissions,
            r.probabilistic_transmissions + r.guaranteed_transmissions);
}

TEST(Hybrid, CertifiesUnreachableTarget) {
  Graph g = graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  HybridFixture f(g);
  // TTL'd random walk (it could never certify anything anyway).
  baselines::RandomWalkSession prob(f.g, 0, 4, 1000, 7);
  RouteSession guar(f.net, *f.seq, 0, 4);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.certified_unreachable);
  EXPECT_EQ(r.winner, HybridWinner::kCertifiedFailure);
}

TEST(Hybrid, TerminatesEvenIfProbabilisticExhausts) {
  HybridFixture f(graph::lollipop(5, 8));
  // A hopeless TTL: the walk gives up almost immediately.
  baselines::RandomWalkSession prob(f.g, 0, 12, 3, 9);
  RouteSession guar(f.net, *f.seq, 0, 12);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_TRUE(r.delivered);  // the guaranteed walker finishes the job
  EXPECT_EQ(r.winner, HybridWinner::kGuaranteed);
  EXPECT_LE(r.probabilistic_transmissions, 3u);
}

TEST(Hybrid, CostAtMostTwiceTheWinnerPlusOne) {
  // The 1:1 interleave property: total <= 2*min(sides) + 2.
  HybridFixture f(graph::complete(8));
  baselines::RandomWalkSession prob(f.g, 0, 5, 0, 11);
  RouteSession guar(f.net, *f.seq, 0, 5);
  HybridResult r = route_hybrid(prob, guar);
  ASSERT_TRUE(r.delivered);
  std::uint64_t winner_cost =
      r.winner == HybridWinner::kProbabilistic
          ? r.probabilistic_transmissions
          : r.guaranteed_transmissions;
  EXPECT_LE(r.total_transmissions, 2 * winner_cost + 2);
}

TEST(Hybrid, ProbabilisticUsuallyWinsOnCompleteGraph) {
  // On K_n the random walk delivers in expected n-1 steps, far faster
  // than the UES tour of the 3-regularized clique.
  HybridFixture f(graph::complete(12));
  int prob_wins = 0;
  for (int trial = 0; trial < 20; ++trial) {
    baselines::RandomWalkSession prob(f.g, 0, 11, 0, 100 + trial);
    RouteSession guar(f.net, *f.seq, 0, 11);
    HybridResult r = route_hybrid(prob, guar);
    ASSERT_TRUE(r.delivered);
    if (r.winner == HybridWinner::kProbabilistic) ++prob_wins;
  }
  EXPECT_GE(prob_wins, 15);
}

TEST(Hybrid, SourceEqualsTargetImmediate) {
  HybridFixture f(graph::cycle(4));
  baselines::RandomWalkSession prob(f.g, 2, 2, 0, 1);
  RouteSession guar(f.net, *f.seq, 2, 2);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.total_transmissions, 0u);
}

}  // namespace
}  // namespace uesr::core
