#include "core/hybrid.h"

#include <gtest/gtest.h>

#include "baselines/random_walk.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using explore::ReducedGraph;
using explore::reduce_to_cubic;
using graph::Graph;
using graph::NodeId;

struct HybridFixture {
  Graph g;
  ReducedGraph net;
  std::shared_ptr<const explore::ExplorationSequence> seq;

  explicit HybridFixture(Graph graph)
      : g(std::move(graph)), net(reduce_to_cubic(g)),
        seq(explore::standard_ues(net.cubic.num_nodes())) {}
};

TEST(Hybrid, DeliversOnConnectedGraph) {
  HybridFixture f(graph::grid(4, 4));
  baselines::RandomWalkSession prob(f.g, 0, 15, 0, 42);
  RouteSession guar(f.net, *f.seq, 0, 15);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_TRUE(r.delivered);
  EXPECT_FALSE(r.certified_unreachable);
  EXPECT_NE(r.winner, HybridWinner::kCertifiedFailure);
  EXPECT_EQ(r.total_transmissions,
            r.probabilistic_transmissions + r.guaranteed_transmissions);
}

TEST(Hybrid, CertifiesUnreachableTarget) {
  Graph g = graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  HybridFixture f(g);
  // TTL'd random walk (it could never certify anything anyway).
  baselines::RandomWalkSession prob(f.g, 0, 4, 1000, 7);
  RouteSession guar(f.net, *f.seq, 0, 4);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.certified_unreachable);
  EXPECT_EQ(r.winner, HybridWinner::kCertifiedFailure);
}

TEST(Hybrid, TerminatesEvenIfProbabilisticExhausts) {
  HybridFixture f(graph::lollipop(5, 8));
  // A hopeless TTL: the walk gives up almost immediately.
  baselines::RandomWalkSession prob(f.g, 0, 12, 3, 9);
  RouteSession guar(f.net, *f.seq, 0, 12);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_TRUE(r.delivered);  // the guaranteed walker finishes the job
  EXPECT_EQ(r.winner, HybridWinner::kGuaranteed);
  EXPECT_LE(r.probabilistic_transmissions, 3u);
}

TEST(Hybrid, CostAtMostTwiceTheWinnerPlusOne) {
  // The 1:1 interleave property: total <= 2*min(sides) + 2.
  HybridFixture f(graph::complete(8));
  baselines::RandomWalkSession prob(f.g, 0, 5, 0, 11);
  RouteSession guar(f.net, *f.seq, 0, 5);
  HybridResult r = route_hybrid(prob, guar);
  ASSERT_TRUE(r.delivered);
  std::uint64_t winner_cost =
      r.winner == HybridWinner::kProbabilistic
          ? r.probabilistic_transmissions
          : r.guaranteed_transmissions;
  EXPECT_LE(r.total_transmissions, 2 * winner_cost + 2);
}

TEST(Hybrid, ProbabilisticUsuallyWinsOnCompleteGraph) {
  // On K_n the random walk delivers in expected n-1 steps, far faster
  // than the UES tour of the 3-regularized clique.
  HybridFixture f(graph::complete(12));
  int prob_wins = 0;
  for (int trial = 0; trial < 20; ++trial) {
    baselines::RandomWalkSession prob(f.g, 0, 11, 0, 100 + trial);
    RouteSession guar(f.net, *f.seq, 0, 11);
    HybridResult r = route_hybrid(prob, guar);
    ASSERT_TRUE(r.delivered);
    if (r.winner == HybridWinner::kProbabilistic) ++prob_wins;
  }
  EXPECT_GE(prob_wins, 15);
}

TEST(Hybrid, SourceEqualsTargetImmediate) {
  HybridFixture f(graph::cycle(4));
  baselines::RandomWalkSession prob(f.g, 2, 2, 0, 1);
  RouteSession guar(f.net, *f.seq, 2, 2);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_TRUE(r.delivered);
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.total_transmissions, 0u);
}

// Regression: both walkers done without delivery used to livelock — with
// the probabilistic token exhausted and the guaranteed session already
// finished on entry, the old for(;;) had no branch that could break.  The
// session must terminate exhausted and uncertified: a stale pre-finished
// walk proves nothing about this run.
TEST(Hybrid, ExhaustedTokenPlusPrefinishedSessionTerminates) {
  graph::Graph g = graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  HybridFixture f(g);
  RouteSession guar(f.net, *f.seq, 0, 4);
  while (!guar.finished()) guar.step();  // completed failed walk
  const std::uint64_t guar_tx = guar.transmissions();
  baselines::RandomWalkSession prob(f.g, 0, 4, /*ttl=*/8, 3);
  while (!prob.exhausted()) prob.step();
  HybridResult r = route_hybrid(prob, guar);  // pre-fix: never returns
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.certified_unreachable);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.winner, HybridWinner::kExhausted);
  // Neither side was stepped again: the combiner spent nothing.
  EXPECT_EQ(r.guaranteed_transmissions, guar_tx);
  EXPECT_EQ(r.probabilistic_transmissions, 8u);
  EXPECT_EQ(r.total_transmissions,
            r.probabilistic_transmissions + r.guaranteed_transmissions);
}

// The degree-0 mirror of random_walk_test's isolated-source case: a
// stranded token (exhausts at zero cost, whatever the TTL) must not stall
// the combiner — the guaranteed walker alone finishes with a certificate.
TEST(Hybrid, StrandedTokenOnIsolatedSourceStillCertifies) {
  graph::Graph g = graph::GraphBuilder(3).build();  // three isolated nodes
  HybridFixture f(g);
  baselines::RandomWalkSession prob(f.g, 0, 2, /*ttl=*/0, 17);
  RouteSession guar(f.net, *f.seq, 0, 2);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.certified_unreachable);
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.winner, HybridWinner::kCertifiedFailure);
  EXPECT_EQ(r.probabilistic_transmissions, 0u);  // no phantom frames
}

// Satellite edge case: the token exhausts first, then the guaranteed walk
// completes a failed walk under the combiner's own stepping — that is a
// fresh certificate, not an exhaustion.
TEST(Hybrid, ExhaustedTokenThenCertifiedFailure) {
  graph::Graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {4, 5}});
  HybridFixture f(g);
  baselines::RandomWalkSession prob(f.g, 0, 4, /*ttl=*/3, 5);
  RouteSession guar(f.net, *f.seq, 0, 4);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.certified_unreachable);
  EXPECT_FALSE(r.exhausted);
  EXPECT_LE(r.probabilistic_transmissions, 3u);
  EXPECT_EQ(r.total_transmissions,
            r.probabilistic_transmissions + r.guaranteed_transmissions);
}

// A session handed over already delivered reports a guaranteed win at zero
// extra cost.
TEST(Hybrid, PrefinishedDeliveredSessionWinsImmediately) {
  HybridFixture f(graph::grid(3, 3));
  RouteSession guar(f.net, *f.seq, 0, 8);
  while (!guar.finished()) guar.step();
  ASSERT_TRUE(guar.target_reached());
  const std::uint64_t guar_tx = guar.transmissions();
  baselines::RandomWalkSession prob(f.g, 0, 8, /*ttl=*/4, 9);
  HybridResult r = route_hybrid(prob, guar);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.winner, HybridWinner::kGuaranteed);
  EXPECT_EQ(r.guaranteed_transmissions, guar_tx);
  EXPECT_EQ(r.probabilistic_transmissions, 0u);
}

// The resumable face of the combiner: stepping a HybridSession by hand
// advances at most one transmission per step and lands on the same verdict
// and accounting as the one-shot driver.
TEST(HybridSession, StepwiseMatchesOneShot) {
  HybridFixture f(graph::lollipop(4, 6));
  baselines::RandomWalkSession prob_a(f.g, 0, 9, 0, 21);
  RouteSession guar_a(f.net, *f.seq, 0, 9);
  HybridResult one_shot = route_hybrid(prob_a, guar_a);

  baselines::RandomWalkSession prob_b(f.g, 0, 9, 0, 21);
  RouteSession guar_b(f.net, *f.seq, 0, 9);
  HybridSession session(prob_b, guar_b);
  std::uint64_t steps = 0;
  std::uint64_t last_total = 0;
  while (!session.finished()) {
    session.step();
    std::uint64_t total =
        prob_b.transmissions() + guar_b.transmissions();
    EXPECT_LE(total, last_total + 1);  // at most one transmission per step
    last_total = total;
    ASSERT_LT(++steps, 10'000'000u);
  }
  EXPECT_EQ(session.result().delivered, one_shot.delivered);
  EXPECT_EQ(session.result().winner, one_shot.winner);
  EXPECT_EQ(session.result().total_transmissions,
            one_shot.total_transmissions);
}

}  // namespace
}  // namespace uesr::core
