#include "core/route.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using explore::ReducedGraph;
using explore::reduce_to_cubic;
using graph::Graph;
using graph::NodeId;

struct Fixture {
  Graph original;
  ReducedGraph net;
  std::shared_ptr<const explore::ExplorationSequence> seq;

  explicit Fixture(Graph g, std::uint64_t seed = 0x5eed0001)
      : original(std::move(g)), net(reduce_to_cubic(original)),
        seq(explore::standard_ues(net.cubic.num_nodes() == 0
                                      ? 1
                                      : net.cubic.num_nodes(),
                                  seed)) {}

  UesRouter router() const {
    return UesRouter(net, seq, net.cubic.num_nodes() + 1);
  }
};

TEST(RouteNodeStep, ForwardConsumesNextSymbol) {
  explore::FixedExplorationSequence seq({2, 1, 0}, 4, "fix");
  NodeView node{7, 3};
  net::Header h;
  h.kind = net::Kind::kRoute;
  h.target = 99;  // not this node
  h.index = 0;
  NodeDecision d = route_node_step(node, 1, h, seq);
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.header.index, 1u);
  EXPECT_EQ(d.out_port, (1 + 2) % 3);  // in_port + t_1
  EXPECT_EQ(d.header.dir, net::Direction::kForward);
}

TEST(RouteNodeStep, TargetTriggersTurnAround) {
  explore::FixedExplorationSequence seq({2, 1, 0}, 4, "fix");
  NodeView node{42, 3};
  net::Header h;
  h.kind = net::Kind::kRoute;
  h.target = 42;
  h.index = 2;
  NodeDecision d = route_node_step(node, 1, h, seq);
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.out_port, 1u);  // resend over arrival port
  EXPECT_EQ(d.header.dir, net::Direction::kBackward);
  EXPECT_EQ(d.header.status, net::Status::kSuccess);
  EXPECT_EQ(d.header.index, 2u);  // unchanged at turn-around
}

TEST(RouteNodeStep, ExhaustionTriggersFailureTurnAround) {
  explore::FixedExplorationSequence seq({2, 1}, 4, "fix");
  NodeView node{7, 3};
  net::Header h;
  h.kind = net::Kind::kRoute;
  h.target = 99;
  h.index = 2;  // == length: no symbol left
  NodeDecision d = route_node_step(node, 0, h, seq);
  EXPECT_EQ(d.header.dir, net::Direction::kBackward);
  EXPECT_EQ(d.header.status, net::Status::kFailure);
}

TEST(RouteNodeStep, BackwardUndoesSymbol) {
  explore::FixedExplorationSequence seq({2, 1, 0}, 4, "fix");
  NodeView node{7, 3};
  net::Header h;
  h.dir = net::Direction::kBackward;
  h.status = net::Status::kSuccess;
  h.index = 1;  // undo step 1 (t_1 = 2)
  NodeDecision d = route_node_step(node, 0, h, seq);
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.out_port, (0 + 3 - 2) % 3);
  EXPECT_EQ(d.header.index, 0u);
}

TEST(RouteNodeStep, RewoundMessageTerminates) {
  explore::FixedExplorationSequence seq({2, 1, 0}, 4, "fix");
  NodeView node{7, 3};
  net::Header h;
  h.dir = net::Direction::kBackward;
  h.status = net::Status::kFailure;
  h.index = 0;
  NodeDecision d = route_node_step(node, 2, h, seq);
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.final_status, net::Status::kFailure);
}

TEST(RouteNodeStep, BroadcastNeverMatchesTarget) {
  explore::FixedExplorationSequence seq({1}, 4, "fix");
  NodeView node{5, 3};
  net::Header h;
  h.kind = net::Kind::kBroadcast;
  h.target = net::kNoTarget;
  h.index = 0;
  NodeDecision d = route_node_step(node, 0, h, seq);
  EXPECT_EQ(d.header.dir, net::Direction::kForward);  // keeps walking
}

TEST(UesRouter, DeliversOnPath) {
  Fixture f(graph::path(6));
  auto r = f.router().route(0, 5);
  EXPECT_TRUE(r.delivered);
  EXPECT_GT(r.total_transmissions, 0u);
  EXPECT_GE(r.forward_steps, 5u);  // at least the BFS distance in G'
}

TEST(UesRouter, DeliversAcrossTopologies) {
  for (const Graph& g :
       {graph::cycle(9), graph::complete(7), graph::grid(4, 4),
        graph::petersen(), graph::binary_tree(12), graph::lollipop(5, 6),
        graph::star(7)}) {
    Fixture f(g);
    UesRouter router = f.router();
    NodeId n = g.num_nodes();
    auto r1 = router.route(0, n - 1);
    EXPECT_TRUE(r1.delivered) << graph::describe(g);
    auto r2 = router.route(n - 1, 0);
    EXPECT_TRUE(r2.delivered) << graph::describe(g);
  }
}

TEST(UesRouter, DeliveryMatchesReachabilityEverywhere) {
  // Ground truth sweep: for disconnected graphs the router must deliver
  // exactly to the reachable vertices and certify failure elsewhere.
  Graph g = graph::from_edges(
      9, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {7, 8}});
  Fixture f(g);
  UesRouter router = f.router();
  for (NodeId s = 0; s < g.num_nodes(); ++s)
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      auto r = router.route(s, t);
      EXPECT_EQ(r.delivered, graph::has_path(g, s, t))
          << "s=" << s << " t=" << t;
    }
}

TEST(UesRouter, SelfRouteTrivial) {
  Fixture f(graph::cycle(5));
  auto r = f.router().route(3, 3);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.total_transmissions, 0u);
}

TEST(UesRouter, FailureOnIsolatedTarget) {
  Graph g = graph::from_edges(4, {{0, 1}, {1, 2}});  // node 3 isolated
  Fixture f(g);
  auto r = f.router().route(0, 3);
  EXPECT_FALSE(r.delivered);
  // Failure costs the full walk plus the backtrack: ~2 L transmissions.
  EXPECT_GE(r.total_transmissions, 2 * f.seq->length());
}

TEST(UesRouter, FailureFromIsolatedSource) {
  Graph g = graph::from_edges(4, {{0, 1}, {1, 2}});
  Fixture f(g);
  auto r = f.router().route(3, 0);
  EXPECT_FALSE(r.delivered);
}

TEST(UesRouter, HeaderBitsAreLogarithmic) {
  Fixture f(graph::grid(5, 5));
  auto r = f.router().route(0, 24);
  // 25 originals -> 100 gadgets; header must stay well under 128 bits.
  EXPECT_GT(r.header_bits, 0);
  EXPECT_LT(r.header_bits, 128);
}

TEST(UesRouter, DeterministicAcrossRuns) {
  Fixture f(graph::gnp(20, 0.2, 7));
  UesRouter router = f.router();
  auto a = router.route(0, 19);
  auto b = router.route(0, 19);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.forward_steps, b.forward_steps);
}

TEST(UesRouter, SuccessReturnCostIsTwiceForwardPlusTurn) {
  // Transmissions = injection + forward steps + turn-around + backtrack:
  // exactly 2 * (forward_steps + 1).
  Fixture f(graph::cycle(8));
  auto r = f.router().route(0, 4);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.total_transmissions, 2 * (r.forward_steps + 1));
}

TEST(UesRouter, ValidatesArguments) {
  Fixture f(graph::cycle(4));
  UesRouter router = f.router();
  EXPECT_THROW(router.route(9, 0), std::invalid_argument);
  EXPECT_THROW(router.route(0, 9), std::invalid_argument);
  EXPECT_THROW(UesRouter(f.net, nullptr, 100), std::invalid_argument);
  EXPECT_THROW(UesRouter(f.net, f.seq, 1), std::invalid_argument);
}

TEST(RouteSession, StepwiseMatchesBatch) {
  Fixture f(graph::grid(3, 4));
  UesRouter router = f.router();
  auto batch = router.route(0, 11);
  RouteSession session(f.net, *f.seq, 0, 11);
  std::uint64_t steps = 0;
  while (!session.finished()) {
    session.step();
    ++steps;
    ASSERT_LT(steps, 10'000'000u) << "session does not terminate";
  }
  EXPECT_EQ(session.status() == net::Status::kSuccess, batch.delivered);
  EXPECT_EQ(session.transmissions(), batch.total_transmissions);
  EXPECT_EQ(session.forward_steps(), batch.forward_steps);
}

TEST(RouteSession, TargetReachedFiresBeforeFinish) {
  Fixture f(graph::path(5));
  RouteSession session(f.net, *f.seq, 0, 4);
  bool reached_before_finished = false;
  while (!session.finished()) {
    session.step();
    if (session.target_reached() && !session.finished())
      reached_before_finished = true;
  }
  EXPECT_TRUE(reached_before_finished);
  EXPECT_EQ(session.status(), net::Status::kSuccess);
}

TEST(Broadcast, CoversExactlyTheComponent) {
  Graph g = graph::from_edges(8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}});
  Fixture f(g);
  UesRouter router = f.router();
  auto b = router.broadcast(0);
  auto comp = graph::component_of(g, 0);
  EXPECT_EQ(b.distinct_visited, comp.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool in_comp = std::find(comp.begin(), comp.end(), v) != comp.end();
    EXPECT_EQ(b.visited_originals[v], in_comp) << "v=" << v;
  }
}

TEST(Broadcast, SingletonComponent) {
  Graph g = graph::from_edges(3, {{0, 1}});  // 2 isolated
  Fixture f(g);
  auto b = f.router().broadcast(2);
  EXPECT_EQ(b.distinct_visited, 1u);
  EXPECT_TRUE(b.visited_originals[2]);
  EXPECT_FALSE(b.visited_originals[0]);
}

TEST(Broadcast, WholeGraphWhenConnected) {
  for (const Graph& g : {graph::petersen(), graph::grid(3, 5),
                         graph::random_tree(17, 3)}) {
    Fixture f(g);
    auto b = f.router().broadcast(0);
    EXPECT_EQ(b.distinct_visited, g.num_nodes()) << graph::describe(g);
  }
}

}  // namespace
}  // namespace uesr::core
