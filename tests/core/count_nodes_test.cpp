#include "core/count_nodes.h"

#include <gtest/gtest.h>

#include "explore/walker.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::core {
namespace {

using explore::ReducedGraph;
using explore::reduce_to_cubic;
using graph::Graph;
using graph::NodeId;

SequenceFactory tiny_family(std::uint64_t seed) {
  // Short quadratic sequences keep the O(L^3) faithful mode affordable.
  return [seed](NodeId bound) {
    std::uint64_t len = std::max<std::uint64_t>(16, 4ULL * bound * bound);
    return std::make_shared<explore::RandomExplorationSequence>(
        seed ^ (31ULL * bound), len, bound);
  };
}

TEST(Probes, RetrieveWalksAndReturns) {
  Graph g = graph::cycle(4);
  ReducedGraph net = reduce_to_cubic(g);
  auto seq = explore::standard_ues(net.cubic.num_nodes(), 1);
  std::uint64_t tx = 0;
  // v_0 is the head of d_0 = rotate(entry_gadget(0), 0).
  NodeId v0 = retrieve(net, *seq, 0, 0, tx);
  EXPECT_EQ(v0, net.cubic.rotate(net.entry_gadget(0), 0).node);
  EXPECT_EQ(tx, 2u);  // out and back
}

TEST(Probes, RetrieveCostIsLinearInIndex) {
  Graph g = graph::cycle(5);
  ReducedGraph net = reduce_to_cubic(g);
  auto seq = explore::standard_ues(net.cubic.num_nodes(), 2);
  for (std::uint64_t i : {0ULL, 1ULL, 7ULL, 20ULL}) {
    std::uint64_t tx = 0;
    retrieve(net, *seq, 0, i, tx);
    EXPECT_EQ(tx, 2 * (i + 1)) << "i=" << i;
  }
}

TEST(Probes, RetrieveMatchesCentralTrace) {
  Graph g = graph::petersen();
  ReducedGraph net = reduce_to_cubic(g);
  auto seq = explore::standard_ues(16, 3);
  auto trace = explore::trace_walk(net.cubic, {net.entry_gadget(0), 0}, *seq,
                                   50);
  for (std::uint64_t i = 0; i <= 50; ++i) {
    std::uint64_t tx = 0;
    NodeId v = retrieve(net, *seq, 0, i, tx);
    auto d = trace.departures[i];
    EXPECT_EQ(v, net.cubic.rotate(d.node, d.port).node) << "i=" << i;
  }
}

TEST(Probes, RetrieveNeighborSamplesCorrectPort) {
  Graph g = graph::cycle(4);
  ReducedGraph net = reduce_to_cubic(g);
  auto seq = explore::standard_ues(net.cubic.num_nodes(), 4);
  std::uint64_t tx0 = 0;
  NodeId v3 = retrieve(net, *seq, 0, 3, tx0);
  for (graph::Port j = 0; j < 3; ++j) {
    std::uint64_t tx = 0;
    NodeId u = retrieve_neighbor(net, *seq, 0, 3, j, tx);
    EXPECT_EQ(u, net.cubic.rotate(v3, j).node);
    EXPECT_EQ(tx, 2 * 4 + 2u);  // retrieve cost + peek + reply
  }
}

TEST(Probes, RetrieveNeighborThroughHalfLoopReturnsSelf) {
  Graph g = graph::path(2);  // gadgets padded with half loops
  ReducedGraph net = reduce_to_cubic(g);
  auto seq = explore::standard_ues(net.cubic.num_nodes(), 5);
  // Find a walk index whose head has a half loop on port 2.
  for (std::uint64_t i = 0; i <= 20; ++i) {
    std::uint64_t tx = 0;
    NodeId v = retrieve(net, *seq, 0, i, tx);
    if (net.cubic.is_half_loop(v, 2)) {
      std::uint64_t tx2 = 0;
      EXPECT_EQ(retrieve_neighbor(net, *seq, 0, i, 2, tx2), v);
      return;
    }
  }
  GTEST_SKIP() << "no half-loop head in the first 20 steps";
}

TEST(Probes, Validation) {
  Graph g = graph::cycle(4);
  ReducedGraph net = reduce_to_cubic(g);
  explore::FixedExplorationSequence seq({1, 2}, 4, "short");
  std::uint64_t tx = 0;
  EXPECT_THROW(retrieve(net, seq, 0, 3, tx), std::invalid_argument);
  EXPECT_THROW(retrieve_neighbor(net, seq, 0, 1, 5, tx),
               std::invalid_argument);
}

TEST(CountNodes, FastMatchesGroundTruthOnSmallGraphs) {
  for (const Graph& g :
       {graph::path(3), graph::cycle(4), graph::star(3), graph::k4(),
        graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}})}) {
    ReducedGraph net = reduce_to_cubic(g);
    auto res = count_nodes(net, 0, tiny_family(1), CountMode::kFast);
    EXPECT_EQ(res.gadget_count,
              graph::component_of(net.cubic, net.entry_gadget(0)).size())
        << graph::describe(g);
    EXPECT_EQ(res.original_count, graph::component_of(g, 0).size())
        << graph::describe(g);
  }
}

TEST(CountNodes, FaithfulMatchesFastExactly) {
  for (const Graph& g : {graph::path(2), graph::cycle(3), graph::path(3)}) {
    ReducedGraph net = reduce_to_cubic(g);
    auto fast = count_nodes(net, 0, tiny_family(2), CountMode::kFast);
    auto faithful = count_nodes(net, 0, tiny_family(2), CountMode::kFaithful);
    EXPECT_EQ(fast.gadget_count, faithful.gadget_count);
    EXPECT_EQ(fast.original_count, faithful.original_count);
    EXPECT_EQ(fast.epochs, faithful.epochs);
    EXPECT_EQ(fast.probes, faithful.probes);
    EXPECT_EQ(fast.transmissions, faithful.transmissions);
  }
}

TEST(CountNodes, MemoizationChargesFaithfulCosts) {
  // The coordinator memoizes retrieved names (kFast and kFaithful alike),
  // but the protocol's cost model must be untouched: a memo hit charges
  // exactly the 2*(i+1) transmissions and one probe a real Retrieve(i)
  // costs, so both execution modes report identical totals.  This pins the
  // memoized counting phase against the message-faithful execution on
  // graphs where the O(L^2) scan has many repeat lookups.
  for (const Graph& g : {graph::star(3), graph::k4(), graph::cycle(5)}) {
    ReducedGraph net = reduce_to_cubic(g);
    auto fast = count_nodes(net, 0, tiny_family(7), CountMode::kFast);
    auto faithful = count_nodes(net, 0, tiny_family(7), CountMode::kFaithful);
    EXPECT_EQ(fast.transmissions, faithful.transmissions)
        << graph::describe(g);
    EXPECT_EQ(fast.probes, faithful.probes) << graph::describe(g);
    EXPECT_EQ(fast.gadget_count, faithful.gadget_count) << graph::describe(g);
    EXPECT_GT(fast.transmissions, 0u);
  }
}

TEST(CountNodes, IsolatedSourceCountsItself) {
  Graph g = graph::from_edges(3, {{0, 1}});  // 2 isolated
  ReducedGraph net = reduce_to_cubic(g);
  auto res = count_nodes(net, 2, tiny_family(3), CountMode::kFast);
  EXPECT_EQ(res.original_count, 1u);
  EXPECT_EQ(res.gadget_count, 3u);  // the padded loop triangle
}

TEST(CountNodes, CountsOnlyOwnComponent) {
  Graph g = graph::from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}});
  ReducedGraph net = reduce_to_cubic(g);
  auto a = count_nodes(net, 0, tiny_family(4), CountMode::kFast);
  EXPECT_EQ(a.original_count, 3u);
  auto b = count_nodes(net, 3, tiny_family(4), CountMode::kFast);
  EXPECT_EQ(b.original_count, 4u);
}

TEST(CountNodes, EpochBoundCoversComponentSize) {
  Graph g = graph::cycle(6);
  ReducedGraph net = reduce_to_cubic(g);  // 18 gadget vertices
  auto res = count_nodes(net, 0, tiny_family(5), CountMode::kFast);
  EXPECT_EQ(res.gadget_count, 18u);
  // Closure cannot be reached before the bound reaches |Cs'|... it CAN be
  // reached earlier if the short sequence happens to cover; but the bound
  // reported must be the one that achieved closure.
  EXPECT_GE(res.final_bound, 2u);
  EXPECT_GT(res.transmissions, 0u);
  EXPECT_GT(res.probes, 0u);
}

TEST(CountNodes, LargerGraphFastMode) {
  Graph g = graph::gnp(24, 0.15, 9);
  ReducedGraph net = reduce_to_cubic(g);
  auto res = count_nodes(net, 0, default_sequence_family(11), CountMode::kFast);
  EXPECT_EQ(res.original_count, graph::component_of(g, 0).size());
}

TEST(CountNodes, ValidatesSource) {
  ReducedGraph net = reduce_to_cubic(graph::cycle(3));
  EXPECT_THROW(count_nodes(net, 9, tiny_family(1)), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::core
