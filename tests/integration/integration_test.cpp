// End-to-end integration tests: whole-pipeline scenarios that exercise
// several modules together the way the examples and benches do.
#include <gtest/gtest.h>

#include "baselines/flooding.h"
#include "baselines/geo.h"
#include "baselines/random_walk.h"
#include "core/api.h"
#include "core/hybrid.h"
#include "explore/certified.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/geometric.h"
#include "graph/io.h"
#include "util/stats.h"

namespace uesr {
namespace {

TEST(Integration, CertifiedSequenceDrivesTheRouter) {
  // Build a graph whose reduction is small enough for the n<=4-certified
  // sequence... degree reduction blows past 4 vertices for anything
  // non-trivial, so instead certify at the reduced size and route with it.
  graph::Graph g = graph::path(2);  // reduces to 6 gadget vertices
  explore::CertifiedUes cert = explore::find_certified_ues(6, 7, 46656);
  core::Options opt;
  opt.sequence = cert.sequence;
  core::AdHocNetwork net(g, opt);
  auto r = net.route(0, 1);
  EXPECT_TRUE(r.delivered);
  // And the failure certificate is *sound* under a certified sequence:
  graph::Graph g2 = graph::from_edges(3, {{0, 1}});
  explore::CertifiedUes cert2 = explore::find_certified_ues(9, 7, 46656);
  core::Options opt2;
  opt2.sequence = cert2.sequence;
  core::AdHocNetwork net2(g2, opt2);
  EXPECT_FALSE(net2.route(0, 2).delivered);
  EXPECT_TRUE(net2.route(0, 1).delivered);
}

TEST(Integration, SensorFieldPipeline) {
  // UDG -> gabriel planarization -> three routers agree with ground truth.
  auto field = graph::connected_unit_disk_2d(40, 0.3, 11);
  auto planar = graph::gabriel_subgraph(field);
  ASSERT_TRUE(graph::is_plane_embedding(planar));
  ASSERT_TRUE(graph::is_connected(planar.graph));
  core::AdHocNetwork net(field.graph);
  baselines::GpsrRouter gpsr(planar);
  baselines::FloodingRouter flood(field.graph);
  for (graph::NodeId t = 1; t < 40; t += 5) {
    EXPECT_TRUE(net.route(0, t).delivered);
    EXPECT_TRUE(gpsr.route(0, t).delivered);
    EXPECT_TRUE(flood.route(0, t).delivered);
  }
}

TEST(Integration, AdaptivePipelineOnMultiComponentWorld) {
  // Census -> sized sequence -> route, across components.
  graph::Graph g = graph::gnp(30, 0.09, 17);
  core::AdHocNetwork net(g);
  auto comp = graph::connected_components(g);
  for (graph::NodeId s : {graph::NodeId{0}, graph::NodeId{15},
                          graph::NodeId{29}}) {
    for (graph::NodeId t : {graph::NodeId{3}, graph::NodeId{20}}) {
      auto r = net.route_adaptive(s, t);
      EXPECT_EQ(r.route.delivered, comp[s] == comp[t])
          << s << "->" << t;
      EXPECT_EQ(r.census.original_count,
                graph::component_of(g, s).size());
    }
  }
}

TEST(Integration, HybridBeatsPureUesOnFastGraphs) {
  graph::Graph g = graph::complete(16);
  explore::ReducedGraph red = explore::reduce_to_cubic(g);
  auto seq = explore::standard_ues(red.cubic.num_nodes());
  util::Samples hybrid_tx, ues_tx;
  for (int trial = 0; trial < 10; ++trial) {
    baselines::RandomWalkSession prob(g, 0, 9, 0, 100 + trial);
    core::RouteSession guar(red, *seq, 0, 9);
    auto h = core::route_hybrid(prob, guar);
    ASSERT_TRUE(h.delivered);
    hybrid_tx.add(static_cast<double>(h.total_transmissions));
    core::RouteSession pure(red, *seq, 0, 9);
    while (!pure.target_reached() && !pure.finished()) pure.step();
    ues_tx.add(static_cast<double>(pure.transmissions()));
  }
  EXPECT_LT(hybrid_tx.mean(), ues_tx.mean());
}

TEST(Integration, SerializedGraphRoutesIdentically) {
  graph::Graph g = graph::connected_gnp(18, 0.2, 23);
  graph::Graph h = graph::from_edge_list(graph::to_edge_list(g));
  ASSERT_EQ(g, h);
  core::AdHocNetwork a(g), b(h);
  for (graph::NodeId t = 1; t < 18; t += 4) {
    auto ra = a.route(0, t), rb = b.route(0, t);
    EXPECT_EQ(ra.delivered, rb.delivered);
    EXPECT_EQ(ra.total_transmissions, rb.total_transmissions);
  }
}

TEST(Integration, BroadcastAgreesWithFloodingCoverage) {
  graph::Graph g = graph::gnp(25, 0.1, 31);
  core::AdHocNetwork net(g);
  for (graph::NodeId s : {graph::NodeId{0}, graph::NodeId{12}}) {
    auto b = net.broadcast(s);
    auto f = baselines::flood(g, s, s);
    EXPECT_EQ(b.distinct_visited, f.nodes_reached);
  }
}

TEST(Integration, StressManySmallWorldsAllPairs) {
  // 20 random worlds x all pairs: the strongest exactness sweep we run.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    graph::Graph g = graph::gnp(10, 0.18, seed);
    core::AdHocNetwork net(g);
    for (graph::NodeId s = 0; s < 10; ++s)
      for (graph::NodeId t = 0; t < 10; ++t)
        ASSERT_EQ(net.route(s, t).delivered, graph::has_path(g, s, t))
            << "seed=" << seed << " " << s << "->" << t;
  }
}

}  // namespace
}  // namespace uesr
