// Cross-module property sweeps, parameterized over a zoo of topologies.
//
// These are the invariants the paper's correctness rests on, checked on
// every family at once:
//   P1  walk reversibility: reverse_step inverts forward_step everywhere;
//   P2  backtrack replay: a walked prefix rewinds to its exact start;
//   P3  degree reduction: 3-regular, size = sum max(deg,3), padding
//       half-loop count, external-edge mirror, component preservation;
//   P4  routing: delivered == BFS-reachable for all pairs; success cost
//       identity tx = 2*(fwd+1); failure cost identity tx = 2*(L+1);
//   P5  broadcast covers exactly the component;
//   P6  census (CountNodes) equals BFS component sizes;
//   P7  cover times are prefix-stable (a longer sequence with the same
//       seed covers at the same step);
//   P8  the CSR layout is observationally a rotation map;
//   P9  the lossy transport degenerates exactly: at loss = 0, zero
//       jitter, bidirectional links, net::LossyTransport replays the
//       arrival sequence and transmission count of net::Transport over
//       the same walk;
//   P10 both ARQs degenerate to the same walk: at loss = 0 the sliding
//       window (net::WindowTransport) is arrival-for-arrival identical
//       to stop-and-wait (net::ReliableTransport) on every topology;
//   P11 the fault layer at zero is invisible: corrupt = 0 plus an armed
//       all-zero-rate FaultPlan leaves the lossy channel byte-identical
//       (trace line for trace line) to the plain PR 7 transport.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <string>

#include "core/api.h"
#include "core/count_nodes.h"
#include "explore/degree_reduce.h"
#include "explore/walker.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/geometric.h"
#include "net/faults.h"
#include "net/lossy_transport.h"
#include "net/reliable.h"
#include "net/transport.h"
#include "net/window.h"
#include "util/rng.h"

namespace uesr {
namespace {

struct GraphCase {
  std::string name;
  std::function<graph::Graph()> make;
};

void PrintTo(const GraphCase& c, std::ostream* os) { *os << c.name; }

class GraphZoo : public ::testing::TestWithParam<GraphCase> {
 protected:
  graph::Graph g_ = GetParam().make();
};

// ---- P1: reversibility everywhere -----------------------------------

TEST_P(GraphZoo, ReverseInvertsForward) {
  // Degree-0 vertices have no half-edges to walk; everything else must
  // satisfy the inversion identity.
  for (graph::NodeId v = 0; v < g_.num_nodes(); ++v)
    for (graph::Port p = 0; p < g_.degree(v); ++p)
      for (explore::Symbol t = 0; t < 4; ++t) {
        graph::HalfEdge d{v, p};
        EXPECT_EQ(explore::reverse_step(g_, explore::forward_step(g_, d, t), t),
                  d);
      }
}

// ---- P2: a walked prefix rewinds exactly ------------------------------

TEST_P(GraphZoo, BacktrackReplayReturnsToStart) {
  if (g_.num_nodes() == 0 || g_.degree(0) == 0) GTEST_SKIP();
  explore::RandomExplorationSequence seq(99, 400, g_.num_nodes());
  graph::HalfEdge start{0, 0};
  auto tr = explore::trace_walk(g_, start, seq, 400);
  graph::HalfEdge d = tr.departures.back();
  for (std::uint64_t j = tr.departures.size() - 1; j >= 1; --j)
    d = explore::reverse_step(g_, d, seq.symbol(j));
  EXPECT_EQ(d, start);
}

// ---- P3: degree reduction invariants ----------------------------------

TEST_P(GraphZoo, ReductionIsCubicWithExactSize) {
  explore::ReducedGraph r = explore::reduce_to_cubic(g_);
  EXPECT_TRUE(r.cubic.is_regular(3));
  std::size_t expect = 0;
  for (graph::NodeId v = 0; v < g_.num_nodes(); ++v)
    expect += std::max<graph::Port>(g_.degree(v), 3);
  EXPECT_EQ(r.cubic.num_nodes(), expect);
}

TEST_P(GraphZoo, ReductionPadsExactlyTheMissingPorts) {
  explore::ReducedGraph r = explore::reduce_to_cubic(g_);
  std::size_t half_loops = 0;
  for (graph::NodeId v = 0; v < r.cubic.num_nodes(); ++v)
    for (graph::Port p = 0; p < 3; ++p)
      if (r.cubic.is_half_loop(v, p)) ++half_loops;
  std::size_t expect = 0;
  for (graph::NodeId v = 0; v < g_.num_nodes(); ++v) {
    // Original half-loops survive as gadget half-loops; padding adds one
    // per missing port below degree 3.
    if (g_.degree(v) < 3) expect += 3 - g_.degree(v);
    for (graph::Port p = 0; p < g_.degree(v); ++p)
      if (g_.is_half_loop(v, p)) ++expect;
  }
  EXPECT_EQ(half_loops, expect);
}

TEST_P(GraphZoo, ReductionMirrorsEveryOriginalEdge) {
  explore::ReducedGraph r = explore::reduce_to_cubic(g_);
  for (graph::NodeId v = 0; v < g_.num_nodes(); ++v)
    for (graph::Port p = 0; p < g_.degree(v); ++p) {
      graph::HalfEdge far = g_.rotate(v, p);
      EXPECT_EQ(r.cubic.rotate(r.gadget(v, p), 2),
                (graph::HalfEdge{r.gadget(far.node, far.port), 2}));
    }
}

TEST_P(GraphZoo, ReductionPreservesComponents) {
  explore::ReducedGraph r = explore::reduce_to_cubic(g_);
  auto orig = graph::connected_components(g_);
  auto red = graph::connected_components(r.cubic);
  for (graph::NodeId u = 0; u < g_.num_nodes(); ++u)
    for (graph::NodeId v = u + 1; v < g_.num_nodes(); ++v)
      EXPECT_EQ(orig[u] == orig[v],
                red[r.entry_gadget(u)] == red[r.entry_gadget(v)]);
}

// ---- P4/P5: routing and broadcast against ground truth ----------------

TEST_P(GraphZoo, RoutingMatchesReachabilityAllPairs) {
  if (g_.num_nodes() == 0) GTEST_SKIP();
  core::AdHocNetwork net(g_);
  for (graph::NodeId s = 0; s < g_.num_nodes(); ++s)
    for (graph::NodeId t = 0; t < g_.num_nodes(); ++t) {
      auto r = net.route(s, t);
      EXPECT_EQ(r.delivered, graph::has_path(g_, s, t))
          << s << " -> " << t;
    }
}

TEST_P(GraphZoo, SuccessAndFailureCostIdentities) {
  if (g_.num_nodes() < 2) GTEST_SKIP();
  core::AdHocNetwork net(g_);
  const std::uint64_t L = net.router().sequence().length();
  for (graph::NodeId t = 1; t < g_.num_nodes(); ++t) {
    auto r = net.route(0, t);
    if (r.delivered)
      EXPECT_EQ(r.total_transmissions, 2 * (r.forward_steps + 1));
    else
      EXPECT_EQ(r.total_transmissions, 2 * (L + 1));
  }
}

TEST_P(GraphZoo, BroadcastCoversExactlyTheComponent) {
  if (g_.num_nodes() == 0) GTEST_SKIP();
  core::AdHocNetwork net(g_);
  auto b = net.broadcast(0);
  auto comp = graph::component_of(g_, 0);
  EXPECT_EQ(b.distinct_visited, comp.size());
  std::vector<bool> in_comp(g_.num_nodes(), false);
  for (graph::NodeId v : comp) in_comp[v] = true;
  for (graph::NodeId v = 0; v < g_.num_nodes(); ++v)
    EXPECT_EQ(b.visited_originals[v], in_comp[v]) << "v=" << v;
}

// ---- P6: census --------------------------------------------------------

TEST_P(GraphZoo, CensusMatchesBfs) {
  if (g_.num_nodes() == 0) GTEST_SKIP();
  core::AdHocNetwork net(g_);
  auto c = net.count_component(0);
  EXPECT_EQ(c.original_count, graph::component_of(g_, 0).size());
  explore::ReducedGraph r = explore::reduce_to_cubic(g_);
  EXPECT_EQ(c.gadget_count,
            graph::component_of(r.cubic, r.entry_gadget(0)).size());
}

// ---- P7: cover prefix stability ----------------------------------------

TEST_P(GraphZoo, CoverTimeIsPrefixStable) {
  if (g_.num_nodes() == 0 || g_.degree(0) == 0) GTEST_SKIP();
  explore::RandomExplorationSequence short_seq(7, 2000, g_.num_nodes());
  explore::RandomExplorationSequence long_seq(7, 8000, g_.num_nodes());
  auto a = explore::cover_time(g_, {0, 0}, short_seq);
  auto b = explore::cover_time(g_, {0, 0}, long_seq);
  if (a.has_value()) {
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);  // same seed => same prefix => same cover step
  }
}

// ---- P8: the CSR graph layout is observationally a rotation map --------

TEST_P(GraphZoo, CsrLayoutIsObservationallyARotationMap) {
  // Re-expressing the graph through from_rotation (the nested, layout-
  // agnostic constructor) must reproduce an identical graph: the storage
  // scheme cannot be observable.
  std::vector<std::vector<graph::HalfEdge>> adj(g_.num_nodes());
  for (graph::NodeId v = 0; v < g_.num_nodes(); ++v) {
    adj[v].resize(g_.degree(v));
    for (graph::Port p = 0; p < g_.degree(v); ++p)
      adj[v][p] = g_.rotate(v, p);
  }
  graph::Graph h = graph::from_rotation(std::move(adj));
  EXPECT_EQ(g_, h);
  EXPECT_NO_THROW(h.validate());
  // The cubic specialization agrees with the general path everywhere.
  if (g_.is_cubic()) {
    for (graph::NodeId v = 0; v < g_.num_nodes(); ++v)
      for (graph::Port p = 0; p < 3; ++p)
        EXPECT_EQ(g_.rotate3(v, p), g_.rotate(v, p));
  }
}

TEST_P(GraphZoo, RelabelInverseRoundTrip) {
  util::Pcg32 rng(17);
  std::vector<std::vector<graph::Port>> perms(g_.num_nodes());
  std::vector<std::vector<graph::Port>> inverse(g_.num_nodes());
  for (graph::NodeId v = 0; v < g_.num_nodes(); ++v) {
    perms[v].resize(g_.degree(v));
    std::iota(perms[v].begin(), perms[v].end(), graph::Port{0});
    std::shuffle(perms[v].begin(), perms[v].end(), rng);
    inverse[v].resize(perms[v].size());
    for (graph::Port p = 0; p < perms[v].size(); ++p)
      inverse[v][perms[v][p]] = p;
  }
  graph::Graph relabeled = g_.relabeled(perms);
  EXPECT_NO_THROW(relabeled.validate());
  EXPECT_EQ(relabeled.relabeled(inverse), g_);
}

// ---- P9: the lossy transport degenerates exactly -----------------------

TEST_P(GraphZoo, LossyTransportAtZeroLossReplaysTransport) {
  if (g_.num_nodes() == 0 || g_.degree(0) == 0) GTEST_SKIP();
  net::Transport perfect(g_);
  net::LossyTransport lossy(g_, /*seed=*/0x5eed0009);  // defaults: loss = 0,
                                                       // latency pinned at 1
  util::Pcg32 walk(0x99);
  graph::NodeId at = 0;
  for (int i = 0; i < 300; ++i) {
    const graph::Port out = walk.next_below(g_.degree(at));
    const net::Arrival a = perfect.send(at, out);
    const auto b = lossy.send(at, out);
    ASSERT_TRUE(b.has_value()) << "step " << i;
    ASSERT_EQ(a.node, b->node) << "step " << i;
    ASSERT_EQ(a.port, b->port) << "step " << i;
    at = a.node;
  }
  EXPECT_EQ(perfect.transmissions(), lossy.transmissions());
  EXPECT_EQ(lossy.transmissions(), 300u);
}

// ---- P10: both ARQs degenerate to the same walk ------------------------
// At loss 0 the sliding window is invisible to the routing layer: on every
// zoo topology, selective repeat hands back the same arrival, hop for hop,
// as stop-and-wait — the transport-selection seam cannot change a walk.

TEST_P(GraphZoo, WindowArqAtZeroLossMatchesStopAndWaitArrivals) {
  if (g_.num_nodes() == 0 || g_.degree(0) == 0) GTEST_SKIP();
  net::ReliableTransport sw(g_, /*seed=*/0x5eed000a, {}, {});
  net::WindowOptions wopt;
  wopt.frames_per_message = 4;
  wopt.window = 2;
  net::WindowTransport sr(g_, /*seed=*/0x5eed000b, {}, wopt);
  util::Pcg32 walk(0xa7);
  graph::NodeId at = 0;
  for (int i = 0; i < 200; ++i) {
    const graph::Port out = walk.next_below(g_.degree(at));
    const net::ReliableOutcome a = sw.send(at, out);
    const net::WindowOutcome b = sr.send(at, out);
    ASSERT_TRUE(a.delivered) << "step " << i;
    ASSERT_TRUE(b.delivered) << "step " << i;
    ASSERT_EQ(a.arrival.node, b.arrival.node) << "step " << i;
    ASSERT_EQ(a.arrival.port, b.arrival.port) << "step " << i;
    EXPECT_EQ(a.retransmits, 0u) << "step " << i;
    EXPECT_EQ(b.retransmits, 0u) << "step " << i;
    at = a.arrival.node;
  }
  // Clean links: one DATA + one ACK per frame, no resends anywhere.
  EXPECT_EQ(sr.frames(), 200u * 2 * wopt.frames_per_message);
  EXPECT_EQ(sr.total_retransmits(), 0u);
  EXPECT_EQ(sw.total_retransmits(), 0u);
}

// ---- P11: the fault layer at zero is invisible -------------------------
// The §2.12 fault stack with every knob at zero — an explicit corrupt
// probability of 0.0, an armed FaultPlan sampled at all-zero rates (hence
// empty), an armed scripted no-op plan — must leave a LOSSY selective-
// repeat channel byte-identical: the replay trace, the arrivals, and the
// wire counts all match the plain PR 7 transport on every zoo topology.
// This is the regression pin that lets the fault layer ride inside
// EventSim without ever perturbing pre-chaos replay traces.

TEST_P(GraphZoo, FaultLayerAtZeroIsByteInvisible) {
  if (g_.num_nodes() == 0 || g_.degree(0) == 0) GTEST_SKIP();
  net::WindowOptions wopt;
  wopt.frames_per_message = 3;
  wopt.window = 2;
  wopt.max_retries = 32;
  std::vector<std::string> traces[2];
  std::vector<graph::HalfEdge> arrivals[2];
  std::uint64_t frames[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    net::LinkModel m;
    m.loss = 0.15;  // real retransmissions: timers and backoff in play
    m.latency_max = 4;
    if (run == 1) m.corrupt = 0.0;  // the corruption knob, explicitly zero
    net::WindowTransport tr(g_, /*seed=*/0x5eed000c, m, wopt);
    tr.sim().enable_trace(200000);
    if (run == 1) {
      net::ChaosConfig calm;  // every rate zero: samples an empty plan
      net::FaultPlan::sample(g_, calm, 0xfee1).arm(tr.sim());
      net::FaultPlan{}.fresh().arm(tr.sim());  // scripted no-op, fresh()'d
    }
    util::Pcg32 walk(0xb3);
    graph::NodeId at = 0;
    for (int i = 0; i < 120; ++i) {
      const graph::Port out = walk.next_below(g_.degree(at));
      const net::WindowOutcome o = tr.send(at, out);
      ASSERT_TRUE(o.delivered) << "run " << run << " step " << i;
      arrivals[run].push_back({o.arrival.node, o.arrival.port});
      at = o.arrival.node;
    }
    frames[run] = tr.frames();
    traces[run] = tr.sim().trace();
  }
  EXPECT_EQ(arrivals[0], arrivals[1]);
  EXPECT_EQ(frames[0], frames[1]);
  ASSERT_FALSE(traces[0].empty());
  ASSERT_EQ(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < traces[0].size(); ++i)
    ASSERT_EQ(traces[0][i], traces[1][i]) << "trace line " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, GraphZoo,
    ::testing::Values(
        GraphCase{"path7", [] { return graph::path(7); }},
        GraphCase{"cycle9", [] { return graph::cycle(9); }},
        GraphCase{"star5", [] { return graph::star(5); }},
        GraphCase{"k5", [] { return graph::complete(5); }},
        GraphCase{"grid3x4", [] { return graph::grid(3, 4); }},
        GraphCase{"petersen", [] { return graph::petersen(); }},
        GraphCase{"binary_tree11", [] { return graph::binary_tree(11); }},
        GraphCase{"lollipop4_4", [] { return graph::lollipop(4, 4); }},
        GraphCase{"two_triangles",
                  [] {
                    return graph::from_edges(
                        6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
                  }},
        GraphCase{"three_islands",
                  [] {
                    return graph::from_edges(7,
                                             {{0, 1}, {2, 3}, {3, 4}, {2, 4}});
                  }},
        GraphCase{"loopy",
                  [] {
                    graph::GraphBuilder b(3);
                    b.add_edge(0, 1);
                    b.add_edge(0, 0);
                    b.add_half_loop(1);
                    b.add_edge(1, 2);
                    b.add_edge(1, 2);
                    b.add_half_loop(2);
                    return std::move(b).build();
                  }},
        GraphCase{"gnp12", [] { return graph::gnp(12, 0.25, 5); }},
        GraphCase{"cubic10",
                  [] { return graph::random_connected_regular(10, 3, 2); }},
        GraphCase{"tree13", [] { return graph::random_tree(13, 9); }},
        GraphCase{"disk10",
                  [] { return graph::unit_disk_2d(10, 0.45, 21).graph; }}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return info.param.name;
    });

// ---- relabeling invariance ---------------------------------------------
// The walk itself changes under a port relabelling, but Theorem 1's truth
// ("delivered iff reachable") must not.

TEST_P(GraphZoo, DeliveryTruthInvariantUnderRelabeling) {
  if (g_.num_nodes() < 2) GTEST_SKIP();
  util::Pcg32 rng(13);
  for (int trial = 0; trial < 3; ++trial) {
    graph::Graph relabeled = g_.randomly_relabeled(rng);
    core::AdHocNetwork net(relabeled);
    for (graph::NodeId t = 1; t < relabeled.num_nodes(); t += 2)
      EXPECT_EQ(net.route(0, t).delivered, graph::has_path(relabeled, 0, t))
          << "trial " << trial << " t=" << t;
  }
}

TEST_P(GraphZoo, CensusInvariantUnderRelabeling) {
  if (g_.num_nodes() == 0) GTEST_SKIP();
  util::Pcg32 rng(29);
  graph::Graph relabeled = g_.randomly_relabeled(rng);
  core::AdHocNetwork a(g_), b(relabeled);
  EXPECT_EQ(a.count_component(0).original_count,
            b.count_component(0).original_count);
}

// ---- sequence-seed sweep: routing determinism and seed independence ----

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DeliveryIsSeedIndependentOnConnectedGraph) {
  graph::Graph g = graph::connected_gnp(14, 0.25, 3);
  core::Options opt;
  opt.seed = GetParam();
  core::AdHocNetwork net(g, opt);
  for (graph::NodeId t = 1; t < g.num_nodes(); t += 3)
    EXPECT_TRUE(net.route(0, t).delivered) << "seed " << GetParam();
}

TEST_P(SeedSweep, CensusIsSeedIndependent) {
  graph::Graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  explore::ReducedGraph r = explore::reduce_to_cubic(g);
  auto res = core::count_nodes(r, 0,
                               core::default_sequence_family(GetParam()));
  EXPECT_EQ(res.original_count, 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 42ULL, 999ULL,
                                           0xdeadbeefULL, 0x5eed0001ULL,
                                           77777ULL));

}  // namespace
}  // namespace uesr
