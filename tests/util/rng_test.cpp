#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace uesr::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstValueOfSeedZero) {
  // Reference value of the SplitMix64 stream from seed 0.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xe220a8397b1dcdafULL);
}

TEST(CounterHash, PureFunction) {
  EXPECT_EQ(counter_hash(7, 1234), counter_hash(7, 1234));
  EXPECT_NE(counter_hash(7, 1234), counter_hash(7, 1235));
  EXPECT_NE(counter_hash(7, 1234), counter_hash(8, 1234));
}

TEST(CounterHash, NoObviousCollisionsInWindow) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 10000; ++k)
    seen.insert(counter_hash(99, k));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, NextBelowInRange) {
  Pcg32 g(3);
  for (int i = 0; i < 10000; ++i) {
    std::uint32_t v = g.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Pcg32, NextBelowZeroThrows) {
  Pcg32 g(3);
  EXPECT_THROW(g.next_below(0), std::invalid_argument);
}

TEST(Pcg32, NextBelowCoversAllResidues) {
  Pcg32 g(11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32, NextBelowRoughlyUniform) {
  Pcg32 g(5);
  std::map<std::uint32_t, int> counts;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[g.next_below(10)];
  for (auto [v, c] : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9) << "residue " << v;
    EXPECT_LT(c, kDraws / 10 * 1.1) << "residue " << v;
  }
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 g(9);
  double mean = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    double d = g.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    mean += d;
  }
  mean /= kDraws;
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(Pcg32, WorksWithStdShuffleConcept) {
  static_assert(std::uniform_random_bit_generator<Pcg32>);
}

TEST(CounterRng, StatelessIndexing) {
  CounterRng r(1234);
  std::uint64_t v5 = r.value(5);
  r.value(100);  // unrelated query must not perturb anything
  EXPECT_EQ(r.value(5), v5);
}

TEST(CounterRng, ValueBelowBounds) {
  CounterRng r(77);
  for (std::uint64_t k = 0; k < 5000; ++k) EXPECT_LT(r.value_below(k, 3), 3u);
}

TEST(CounterRng, ValueBelowZeroThrows) {
  CounterRng r(77);
  EXPECT_THROW(r.value_below(0, 0), std::invalid_argument);
}

TEST(CounterRng, TernaryRoughlyUniform) {
  CounterRng r(3141);
  int counts[3] = {0, 0, 0};
  const int kDraws = 90000;
  for (int k = 0; k < kDraws; ++k) ++counts[r.value_below(k, 3)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 3 * 0.95);
    EXPECT_LT(c, kDraws / 3 * 1.05);
  }
}

}  // namespace
}  // namespace uesr::util
