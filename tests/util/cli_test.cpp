#include "util/cli.h"

#include <gtest/gtest.h>

namespace uesr::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  Cli c = make({"--n=42", "--name=web"});
  EXPECT_EQ(c.get_int("n", 0), 42);
  EXPECT_EQ(c.get("name", ""), "web");
}

TEST(Cli, SpaceForm) {
  Cli c = make({"--n", "42"});
  EXPECT_EQ(c.get_int("n", 0), 42);
}

TEST(Cli, BooleanFlag) {
  Cli c = make({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_FALSE(c.get_bool("quiet", false));
}

TEST(Cli, Defaults) {
  Cli c = make({});
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(c.get("missing", "x"), "x");
}

TEST(Cli, Positional) {
  Cli c = make({"input.txt", "--n=1", "more"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "input.txt");
  EXPECT_EQ(c.positional()[1], "more");
}

TEST(Cli, BadIntegerThrows) {
  Cli c = make({"--n=abc"});
  EXPECT_THROW(c.get_int("n", 0), std::invalid_argument);
}

// Regression: std::stoll parses the longest valid prefix, so
// "--trials=100k" used to silently read as 100; a partially consumed
// token must throw instead.
TEST(Cli, TrailingGarbageOnIntegerThrows) {
  EXPECT_THROW(make({"--trials=100k"}).get_int("trials", 0),
               std::invalid_argument);
  EXPECT_THROW(make({"--n=42 "}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--n=1.5"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--n=0x10"}).get_int("n", 0), std::invalid_argument);
  // Full tokens still parse, signs included.
  EXPECT_EQ(make({"--n=-7"}).get_int("n", 0), -7);
}

TEST(Cli, TrailingGarbageOnDoubleThrows) {
  EXPECT_THROW(make({"--radius=0.25m"}).get_double("radius", 0.0),
               std::invalid_argument);
  EXPECT_THROW(make({"--radius=1e3x"}).get_double("radius", 0.0),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(make({"--radius=1e3"}).get_double("radius", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(make({"--radius=-0.5"}).get_double("radius", 0.0), -0.5);
}

TEST(Cli, BadBoolThrows) {
  Cli c = make({"--flag=maybe"});
  EXPECT_THROW(c.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  Cli c = make({"--radius=0.25"});
  EXPECT_DOUBLE_EQ(c.get_double("radius", 0.0), 0.25);
}

}  // namespace
}  // namespace uesr::util
