#include "util/table.h"

#include <gtest/gtest.h>

namespace uesr::util {
namespace {

TEST(Table, MarkdownBasic) {
  Table t({"name", "count"});
  t.row().cell("alpha").cell(3);
  t.row().cell("b").cell(12345);
  std::string md = t.to_markdown();
  EXPECT_NE(md.find("| name  | count |"), std::string::npos);
  EXPECT_NE(md.find("| alpha | 3     |"), std::string::npos);
  EXPECT_NE(md.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2.5, 2);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2.5\n");
}

TEST(Table, DoubleFormattingTrimsZeros) {
  EXPECT_EQ(format_double(2.500, 3), "2.5");
  EXPECT_EQ(format_double(2.0, 3), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(-1.50, 2), "-1.5");
}

TEST(Table, BoolCells) {
  Table t({"x"});
  t.row().cell(true);
  t.row().cell(false);
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("yes"), std::string::npos);
  EXPECT_NE(csv.find("no"), std::string::npos);
}

TEST(Table, Validation) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.cell(1), std::logic_error);  // no row started
  t.row().cell(1).cell(2);
  EXPECT_THROW(t.cell(3), std::logic_error);  // row full
  t.row().cell(9);
  EXPECT_THROW(t.row(), std::logic_error);  // previous row incomplete
  EXPECT_THROW(t.to_markdown(), std::logic_error);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell(1);
  t.row().cell(2);
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace uesr::util
