#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uesr::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MatchesSamples) {
  OnlineStats o;
  Samples s;
  for (int i = 0; i < 100; ++i) {
    double v = std::sin(i * 0.7) * 10 + i * 0.1;
    o.add(v);
    s.add(v);
  }
  EXPECT_NEAR(o.mean(), s.mean(), 1e-9);
  EXPECT_NEAR(o.stddev(), s.stddev(), 1e-9);
}

TEST(Samples, PercentileEndpoints) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_NEAR(s.percentile(50), 15.0, 1e-12);
  EXPECT_NEAR(s.percentile(25), 12.5, 1e-12);
}

TEST(Samples, PercentileValidation) {
  Samples s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4}, ys{3, 5, 7, 9};
  auto f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, Validation) {
  std::vector<double> one{1.0};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
  std::vector<double> xs{2, 2}, ys{1, 3};
  EXPECT_THROW(linear_fit(xs, ys), std::invalid_argument);
}

TEST(LogLogFit, RecoversPolynomialExponent) {
  std::vector<double> xs, ys;
  for (double x : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    xs.push_back(x);
    ys.push_back(3.5 * x * x * x);  // cubic law
  }
  auto f = loglog_fit(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.5, 1e-9);
}

TEST(LogLogFit, RejectsNonPositive) {
  std::vector<double> xs{1, 2}, ys{0, 1};
  EXPECT_THROW(loglog_fit(xs, ys), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::util
