#include "util/bitpack.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace uesr::util {
namespace {

TEST(BitsForValue, SmallValues) {
  EXPECT_EQ(bits_for_value(0), 1);
  EXPECT_EQ(bits_for_value(1), 1);
  EXPECT_EQ(bits_for_value(2), 2);
  EXPECT_EQ(bits_for_value(3), 2);
  EXPECT_EQ(bits_for_value(4), 3);
  EXPECT_EQ(bits_for_value(255), 8);
  EXPECT_EQ(bits_for_value(256), 9);
}

TEST(BitsForValue, Huge) {
  EXPECT_EQ(bits_for_value(~0ULL), 64);
}

TEST(BitsForCount, Conventions) {
  EXPECT_EQ(bits_for_count(0), 0);
  EXPECT_EQ(bits_for_count(1), 0);
  EXPECT_EQ(bits_for_count(2), 1);
  EXPECT_EQ(bits_for_count(3), 2);
  EXPECT_EQ(bits_for_count(4), 2);
  EXPECT_EQ(bits_for_count(5), 3);
  EXPECT_EQ(bits_for_count(1ULL << 32), 32);
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
}

TEST(FloorLog2, Values) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_THROW(floor_log2(0), std::invalid_argument);
}

TEST(BitMath, CeilFloorRelation) {
  for (std::uint64_t v = 1; v < 4096; ++v) {
    EXPECT_LE(floor_log2(v), ceil_log2(v));
    EXPECT_LE(ceil_log2(v) - floor_log2(v), 1);
    bool pow2 = (v & (v - 1)) == 0;
    EXPECT_EQ(floor_log2(v) == ceil_log2(v), pow2) << v;
  }
}

TEST(PackedArray, DefaultIsEmpty) {
  PackedArray a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.width(), 0);
  EXPECT_EQ(a, PackedArray());
}

TEST(PackedArray, ZeroInitialized) {
  PackedArray a(5, 100);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a.get(i), 0u);
}

TEST(PackedArray, WidthBounds) {
  EXPECT_THROW(PackedArray(0, 4), std::invalid_argument);
  EXPECT_THROW(PackedArray(58, 4), std::invalid_argument);
  EXPECT_NO_THROW(PackedArray(1, 4));
  EXPECT_NO_THROW(PackedArray(57, 4));
}

TEST(PackedArray, SetGetRoundTripAllWidths) {
  // Every width, entries straddling word boundaries, random values — each
  // set/get round-trips the masked value and neighbours are undisturbed.
  for (int w = 1; w <= 57; ++w) {
    const std::size_t n = 200;  // > 3 words for every width
    PackedArray a(w, n);
    std::vector<std::uint64_t> ref(n, 0);
    Pcg32 rng(0xb17'0000 + static_cast<std::uint64_t>(w));
    const std::uint64_t mask =
        w >= 64 ? ~0ULL : ((std::uint64_t{1} << w) - 1);
    for (int round = 0; round < 400; ++round) {
      const std::size_t i = rng() % n;
      const std::uint64_t v =
          (static_cast<std::uint64_t>(rng()) << 32) | rng();
      a.set(i, v);
      ref[i] = v & mask;
    }
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(a.get(i), ref[i]) << "w=" << w << " i=" << i;
  }
}

TEST(PackedArray, MaskingWideValues) {
  PackedArray a(2, 8);
  a.set(3, 0b1110);  // masked to 0b10
  EXPECT_EQ(a.get(3), 0b10u);
  EXPECT_EQ(a.get(2), 0u);
  EXPECT_EQ(a.get(4), 0u);
}

TEST(PackedArray, LastEntryStraddleIsSafe) {
  // 57-bit entries at the tail force the straddle read of words_[word + 1];
  // the spare word guarantees it stays in bounds (ASan-clean by design).
  PackedArray a(57, 9);
  const std::uint64_t v = (std::uint64_t{1} << 57) - 1;
  a.set(8, v);
  EXPECT_EQ(a.get(8), v);
}

TEST(PackedArray, EqualityIsObservational) {
  PackedArray a(3, 10), b(3, 10);
  EXPECT_EQ(a, b);
  a.set(7, 5);
  EXPECT_NE(a, b);
  b.set(7, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, PackedArray(3, 11));
  EXPECT_NE(a, PackedArray(4, 10));
}

TEST(PackedArray, ByteSizeQuartersPortStorage) {
  // The motivating consumer: 2-bit ports for a million half-edges take
  // ~250 KB instead of 4 MB of u32s.
  PackedArray ports(2, 1'000'000);
  EXPECT_LE(ports.byte_size(), 250'024u);
}

}  // namespace
}  // namespace uesr::util
