#include "util/bitpack.h"

#include <gtest/gtest.h>

namespace uesr::util {
namespace {

TEST(BitsForValue, SmallValues) {
  EXPECT_EQ(bits_for_value(0), 1);
  EXPECT_EQ(bits_for_value(1), 1);
  EXPECT_EQ(bits_for_value(2), 2);
  EXPECT_EQ(bits_for_value(3), 2);
  EXPECT_EQ(bits_for_value(4), 3);
  EXPECT_EQ(bits_for_value(255), 8);
  EXPECT_EQ(bits_for_value(256), 9);
}

TEST(BitsForValue, Huge) {
  EXPECT_EQ(bits_for_value(~0ULL), 64);
}

TEST(BitsForCount, Conventions) {
  EXPECT_EQ(bits_for_count(0), 0);
  EXPECT_EQ(bits_for_count(1), 0);
  EXPECT_EQ(bits_for_count(2), 1);
  EXPECT_EQ(bits_for_count(3), 2);
  EXPECT_EQ(bits_for_count(4), 2);
  EXPECT_EQ(bits_for_count(5), 3);
  EXPECT_EQ(bits_for_count(1ULL << 32), 32);
}

TEST(CeilLog2, Values) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
}

TEST(FloorLog2, Values) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_THROW(floor_log2(0), std::invalid_argument);
}

TEST(BitMath, CeilFloorRelation) {
  for (std::uint64_t v = 1; v < 4096; ++v) {
    EXPECT_LE(floor_log2(v), ceil_log2(v));
    EXPECT_LE(ceil_log2(v) - floor_log2(v), 1);
    bool pow2 = (v & (v - 1)) == 0;
    EXPECT_EQ(floor_log2(v) == ceil_log2(v), pow2) << v;
  }
}

}  // namespace
}  // namespace uesr::util
