#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace uesr::util {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(1), 1u);
}

TEST(ResolveThreads, AbsurdRequestsClampInsteadOfSpawning) {
  EXPECT_EQ(resolve_threads(kMaxThreads + 5), kMaxThreads);
  EXPECT_EQ(resolve_threads(~0u), kMaxThreads);  // e.g. a wrapped -1
  ASSERT_EQ(setenv("UESR_THREADS", "99999999", 1), 0);
  EXPECT_EQ(resolve_threads(0), kMaxThreads);
  ASSERT_EQ(unsetenv("UESR_THREADS"), 0);
}

TEST(ResolveThreads, EnvFallbackThenHardware) {
  ASSERT_EQ(setenv("UESR_THREADS", "5", 1), 0);
  EXPECT_EQ(resolve_threads(0), 5u);
  EXPECT_EQ(resolve_threads(2), 2u);  // explicit still wins
  ASSERT_EQ(setenv("UESR_THREADS", "junk", 1), 0);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(resolve_threads(0), hw > 0 ? hw : 1u);
  ASSERT_EQ(unsetenv("UESR_THREADS"), 0);
  EXPECT_EQ(resolve_threads(0), hw > 0 ? hw : 1u);
}

TEST(ThreadPool, RunsEveryLaneOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::mutex m;
  std::multiset<unsigned> lanes;
  pool.run([&](unsigned lane) {
    std::lock_guard<std::mutex> lock(m);
    lanes.insert(lane);
  });
  EXPECT_EQ(lanes, (std::multiset<unsigned>{0, 1, 2, 3}));
}

TEST(ThreadPool, SizeOneRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run([&](unsigned lane) {
    EXPECT_EQ(lane, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run([](unsigned lane) {
        if (lane == 1) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> ran{0};
  pool.run([&](unsigned) { ++ran; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, NestedRunDegradesToInlineInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.run([&](unsigned) {
    pool.run([&](unsigned) { ++inner; });  // must not hang
  });
  // Each outer lane ran the nested job inline once (as its lane 0).
  EXPECT_EQ(inner.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::uint64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, n, 7, [&](const ChunkRange& c) {
    EXPECT_EQ(c.begin, c.index * 7);
    for (std::uint64_t i = c.begin; i < c.end; ++i) ++hits[i];
  });
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 0, 8, [&](const ChunkRange&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

/// The determinism pin: a floating-point ordered reduction is bitwise
/// identical for every pool size (and to the serial left fold).
TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  const std::uint64_t n = 5000;
  auto value = [](std::uint64_t i) {
    // Irregular magnitudes so summation order matters in FP.
    return static_cast<double>(counter_hash(42, i) % 1000003) * 1e-7 +
           (i % 17) * 1e3;
  };
  double serial = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) serial += value(i);

  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const double got = parallel_reduce<double>(
        pool, n, 64, 0.0,
        [&](const ChunkRange& c) {
          double acc = 0.0;
          for (std::uint64_t i = c.begin; i < c.end; ++i) acc += value(i);
          return acc;
        },
        // uesr-lint: ordered-reduce — this test IS the fp in-order-fold pin
        [](double acc, double part) { return acc + part; });
    // Same chunking => same partials => same merge order: bit-identical.
    ThreadPool one(1);
    const double chunked_serial = parallel_reduce<double>(
        one, n, 64, 0.0,
        [&](const ChunkRange& c) {
          double acc = 0.0;
          for (std::uint64_t i = c.begin; i < c.end; ++i) acc += value(i);
          return acc;
        },
        // uesr-lint: ordered-reduce — serial reference for the pin above
        [](double acc, double part) { return acc + part; });
    EXPECT_EQ(got, chunked_serial) << "threads=" << threads;
    EXPECT_NEAR(got, serial, 1e-6);
  }
}

TEST(ParallelPrefixSearch, ReturnsPrefixUpToFirstHit) {
  struct Part {
    std::uint64_t first = 0;
    bool hit = false;
  };
  const std::uint64_t n = 503;
  const std::uint64_t hit_at = 317;  // item index of the planted hit
  for (unsigned threads : {1u, 2u, 8u}) {
    for (std::uint64_t chunk : {1ull, 7ull, 64ull, 503ull}) {
      ThreadPool pool(threads);
      auto parts = parallel_prefix_search<Part>(
          pool, n, chunk,
          [&](const ChunkRange& c) {
            Part p{c.begin, false};
            for (std::uint64_t i = c.begin; i < c.end; ++i)
              if (i >= hit_at) {
                p.hit = true;
                break;
              }
            return p;
          },
          [](const Part& p) { return p.hit; });
      // Exactly the chunks up to and including the one holding hit_at.
      ASSERT_EQ(parts.size(), hit_at / chunk + 1)
          << "threads=" << threads << " chunk=" << chunk;
      for (std::size_t i = 0; i + 1 < parts.size(); ++i)
        EXPECT_FALSE(parts[i].hit);
      EXPECT_TRUE(parts.back().hit);
      EXPECT_EQ(parts.back().first, (hit_at / chunk) * chunk);
    }
  }
}

TEST(ParallelPrefixSearch, NoHitReturnsEveryChunkInOrder) {
  ThreadPool pool(4);
  auto parts = parallel_prefix_search<std::uint64_t>(
      pool, 100, 9, [](const ChunkRange& c) { return c.index; },
      [](const std::uint64_t&) { return false; });
  ASSERT_EQ(parts.size(), chunk_count(100, 9));
  for (std::uint64_t i = 0; i < parts.size(); ++i) EXPECT_EQ(parts[i], i);
}

TEST(DefaultChunk, RespectsFloorAndCoversRange) {
  EXPECT_GE(default_chunk(10, 4, 16), 16u);
  EXPECT_EQ(default_chunk(0, 4), 1u);
  // Large n: ~8 chunks per lane.
  const std::uint64_t c = default_chunk(1 << 20, 4);
  EXPECT_GE(chunk_count(1 << 20, c), 16u);
  EXPECT_LE(chunk_count(1 << 20, c), 64u);
}

TEST(SharedPool, IsASingletonWithResolvedSize) {
  ThreadPool& a = shared_pool();
  ThreadPool& b = shared_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), resolve_threads(0));
}

}  // namespace
}  // namespace uesr::util
