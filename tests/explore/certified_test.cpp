#include "explore/certified.h"

#include <gtest/gtest.h>

#include "explore/walker.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::explore {
namespace {

TEST(TinyMultigraphs, AllCubicAndConnected) {
  auto zoo = tiny_cubic_multigraphs();
  EXPECT_GE(zoo.size(), 6u);
  for (const auto& g : zoo) {
    EXPECT_TRUE(g.is_regular(3)) << graph::describe(g);
    EXPECT_TRUE(graph::is_connected(g)) << graph::describe(g);
    EXPECT_LE(g.num_nodes(), 3u);
  }
}

TEST(Corpus, ContainsCatalogAndMultigraphs) {
  auto corpus = certification_corpus(6, 1);
  // n=6: tiny multigraphs (7) + catalog n=4 (1) + n=6 (2) + reduction of
  // path(2) (6 vertices).
  std::size_t cubic_simple = 0, with_loops = 0;
  for (const auto& g : corpus) {
    EXPECT_TRUE(g.is_regular(3));
    EXPECT_LE(g.num_nodes(), 6u);
    bool loopy = false;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
      if (g.adjacent(v, v)) loopy = true;
    (loopy ? with_loops : cubic_simple)++;
  }
  EXPECT_GE(cubic_simple, 3u);
  EXPECT_GE(with_loops, 5u);
}

TEST(Certify, GoodSequencePassesSize4) {
  auto seq = standard_ues(4);
  Certificate cert;
  EXPECT_TRUE(certify_sequence(*seq, 4, 7, cert));
  EXPECT_EQ(cert.level, CertLevel::kExhaustive);
  EXPECT_GE(cert.graphs_checked, 7u);
  EXPECT_GT(cert.labelings_checked, 1296u);
}

TEST(Certify, TrivialSequenceFails) {
  FixedExplorationSequence seq({0, 0, 0}, 4, "trivial");
  Certificate cert;
  EXPECT_FALSE(certify_sequence(seq, 4, 7, cert));
}

TEST(FindCertified, ProducesWorkingSequenceForSize4) {
  CertifiedUes c = find_certified_ues(4, 2024);
  ASSERT_NE(c.sequence, nullptr);
  EXPECT_EQ(c.certificate.level, CertLevel::kExhaustive);
  // The certified sequence must cover every catalog graph from every start
  // under a fresh adversarial relabelling.
  auto rep = check_universal_exhaustive(graph::k4(), *c.sequence);
  EXPECT_TRUE(rep.universal);
}

TEST(FindCertified, DeterministicForSeed) {
  CertifiedUes a = find_certified_ues(4, 99);
  CertifiedUes b = find_certified_ues(4, 99);
  EXPECT_EQ(a.sequence->length(), b.sequence->length());
  for (std::uint64_t i = 1; i <= a.sequence->length(); ++i)
    EXPECT_EQ(a.sequence->symbol(i), b.sequence->symbol(i));
}

}  // namespace
}  // namespace uesr::explore
