#include "explore/universal.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "explore/walker.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::explore {
namespace {

using graph::Graph;
using graph::GraphBuilder;

TEST(Universal, LabelingCountFactorials) {
  EXPECT_EQ(labeling_count(graph::cycle(3)), 8u);          // 2!^3
  EXPECT_EQ(labeling_count(graph::k4()), 1296u);           // 3!^4
  EXPECT_EQ(labeling_count(graph::star(3)), 6u);           // 3! * 1^3
  EXPECT_EQ(labeling_count(GraphBuilder(2).build()), 1u);  // no ports
}

TEST(Universal, ForEachLabelingEnumeratesAll) {
  Graph g = graph::cycle(3);
  std::set<std::string> seen;
  std::size_t count = 0;
  bool complete = for_each_labeling(g, [&](const Graph& labeled) {
    ++count;
    // Serialize the rotation map to detect duplicates.
    std::string key;
    for (graph::NodeId v = 0; v < labeled.num_nodes(); ++v)
      for (graph::Port p = 0; p < labeled.degree(v); ++p) {
        auto far = labeled.rotate(v, p);
        key += std::to_string(far.node) + "." + std::to_string(far.port) + ";";
      }
    seen.insert(key);
    return true;
  });
  EXPECT_TRUE(complete);
  EXPECT_EQ(count, 8u);
  EXPECT_EQ(seen.size(), 8u);  // all distinct
}

TEST(Universal, ForEachLabelingEarlyStop) {
  Graph g = graph::cycle(3);
  int count = 0;
  bool complete = for_each_labeling(g, [&](const Graph&) {
    return ++count < 3;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(count, 3);
}

TEST(Universal, LongSequenceCoversK4AllStarts) {
  RandomExplorationSequence seq(21, 2000, 4);
  EXPECT_TRUE(covers_all_starts(graph::k4(), seq));
}

TEST(Universal, ExhaustiveAcceptsGoodSequenceOnK4) {
  RandomExplorationSequence seq(21, 4000, 4);
  auto rep = check_universal_exhaustive(graph::k4(), seq);
  EXPECT_TRUE(rep.universal);
  EXPECT_EQ(rep.labelings_checked, 1296u);
  EXPECT_FALSE(rep.witness.has_value());
}

TEST(Universal, ExhaustiveRefutesShortSequence) {
  // Length-2 sequence cannot cover K4 (needs at least 3 steps from some
  // starts), let alone all labelings.
  FixedExplorationSequence seq({1, 1}, 4, "too-short");
  auto rep = check_universal_exhaustive(graph::k4(), seq);
  EXPECT_FALSE(rep.universal);
  ASSERT_TRUE(rep.witness.has_value());
  // The witness must be genuine: re-check it.
  EXPECT_FALSE(
      covers_component(rep.witness->labeled, rep.witness->start, seq));
}

TEST(Universal, AllZerosSequenceJustBounces) {
  // Symbol 0 always exits through the entry port: the walk oscillates over
  // the first edge and can never cover a path of 3 vertices.
  FixedExplorationSequence seq(std::vector<Symbol>(100, 0), 3, "bouncer");
  Graph g = graph::path(3);
  auto rep = check_universal_exhaustive(g, seq);
  EXPECT_FALSE(rep.universal);
}

TEST(Universal, SampledAgreesWithExhaustiveOnSmallCase) {
  RandomExplorationSequence good(21, 4000, 4);
  auto rep = check_universal_sampled(graph::k4(), good, 50, 1);
  EXPECT_TRUE(rep.universal);
  FixedExplorationSequence bad({1, 1}, 4, "too-short");
  auto rep2 = check_universal_sampled(graph::k4(), bad, 50, 1);
  EXPECT_FALSE(rep2.universal);
  EXPECT_TRUE(rep2.witness.has_value());
}

TEST(Universal, AdversarialFindsWeaknessSamplingMisses) {
  // A sequence with no 0 symbols can never "bounce back", i.e. never exits
  // the port it came in on... on a path's inner vertex (degree 2) symbols
  // 1 keep it moving; craft a sequence of all 1s: on a cycle it circles
  // forever in one direction and covers, but on a *path* end vertices
  // reflect it; on a star's hub with degree 3 a all-1s walk cycles
  // hub->leaf->hub->next leaf and covers.  A genuinely weak sequence:
  // alternating 1,2 on some labellings of the prism fails to cover within
  // a short budget.  We only assert the adversary is at least as strong as
  // plain sampling: whenever it reports a witness the witness is real.
  FixedExplorationSequence weak({1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2}, 6,
                                "alternating");
  auto rep = check_universal_adversarial(graph::prism(3), weak, 60, 7);
  if (rep.witness.has_value())
    EXPECT_FALSE(
        covers_component(rep.witness->labeled, rep.witness->start, weak));
  else
    EXPECT_TRUE(rep.universal);
}

TEST(Universal, AdversarialAcceptsStrongSequence) {
  RandomExplorationSequence good(3, 6000, 6);
  auto rep = check_universal_adversarial(graph::prism(3), good, 40, 11);
  EXPECT_TRUE(rep.universal);
}

TEST(Universal, ReportCountsAreFilled) {
  RandomExplorationSequence seq(5, 3000, 4);
  auto rep = check_universal_exhaustive(graph::k4(), seq);
  EXPECT_EQ(rep.labelings_checked, 1296u);
  EXPECT_EQ(rep.walks_checked, 1296u * 12u);
}

}  // namespace
}  // namespace uesr::explore
