// Thread-count invariance of the verification layer (the determinism
// contract of DESIGN.md §"Parallel verification harness"): every
// check_universal_* report — counts, universal flag, witness identity — is
// identical at 1, 2, and 8 threads, sampled/adversarial outcomes depend
// only on (seed, trial index), and rank-range shards merge back into the
// full exhaustive report.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "explore/certified.h"
#include "explore/universal.h"
#include "explore/walker.h"
#include "graph/catalog.h"
#include "graph/generators.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace uesr::explore {
namespace {

using graph::Graph;

const unsigned kThreadCounts[] = {1, 2, 8};

void expect_same_report(const UniversalityReport& a,
                        const UniversalityReport& b,
                        const std::string& what) {
  EXPECT_EQ(a.universal, b.universal) << what;
  EXPECT_EQ(a.labelings_checked, b.labelings_checked) << what;
  EXPECT_EQ(a.walks_checked, b.walks_checked) << what;
  ASSERT_EQ(a.witness.has_value(), b.witness.has_value()) << what;
  if (a.witness.has_value()) {
    EXPECT_EQ(a.witness->labeled, b.witness->labeled) << what;
    EXPECT_EQ(a.witness->start, b.witness->start) << what;
  }
}

std::string rotation_key(const Graph& g) {
  std::string key;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    for (graph::Port p = 0; p < g.degree(v); ++p) {
      auto far = g.rotate(v, p);
      key += std::to_string(far.node) + "." + std::to_string(far.port) + ";";
    }
  return key;
}

TEST(LabelingRange, FullRangeMatchesOdometerEnumeration) {
  for (const Graph& g : {graph::cycle(3), graph::star(3), graph::k4()}) {
    std::vector<std::string> odometer, ranged;
    for_each_labeling(g, [&](const Graph& l) {
      odometer.push_back(rotation_key(l));
      return true;
    });
    for_each_labeling_range(g, 0, labeling_count(g), [&](const Graph& l) {
      ranged.push_back(rotation_key(l));
      return true;
    });
    EXPECT_EQ(odometer, ranged);
  }
}

TEST(LabelingRange, SeekLandsMidEnumeration) {
  const Graph g = graph::k4();
  const std::uint64_t total = labeling_count(g);
  std::vector<std::string> all;
  for_each_labeling(g, [&](const Graph& l) {
    all.push_back(rotation_key(l));
    return true;
  });
  // A shard seeked into the middle sees exactly that slice, in order.
  const std::uint64_t lo = 517, hi = 802;
  std::vector<std::string> shard;
  for_each_labeling_range(g, lo, hi, [&](const Graph& l) {
    shard.push_back(rotation_key(l));
    return true;
  });
  ASSERT_EQ(shard.size(), hi - lo);
  for (std::uint64_t i = lo; i < hi; ++i) EXPECT_EQ(shard[i - lo], all[i]);
  // And a partition of [0, total) concatenates back to the whole space.
  std::vector<std::string> glued;
  for (std::uint64_t cut = 0; cut < total;) {
    const std::uint64_t next = std::min<std::uint64_t>(total, cut + 311);
    for_each_labeling_range(g, cut, next, [&](const Graph& l) {
      glued.push_back(rotation_key(l));
      return true;
    });
    cut = next;
  }
  EXPECT_EQ(glued, all);
}

TEST(LabelingRange, RejectsOutOfRangeRanks) {
  const Graph g = graph::cycle(3);  // 8 labellings
  EXPECT_THROW(
      for_each_labeling_range(g, 8, 9, [](const Graph&) { return true; }),
      std::invalid_argument);
  EXPECT_THROW(
      for_each_labeling_range(g, 5, 9, [](const Graph&) { return true; }),
      std::invalid_argument);
}

TEST(ThreadInvariance, ExhaustiveAcceptingRun) {
  RandomExplorationSequence good(21, 4000, 4);
  const auto base = check_universal_exhaustive(graph::k4(), good, 1);
  EXPECT_TRUE(base.universal);
  EXPECT_EQ(base.labelings_checked, 1296u);
  EXPECT_EQ(base.walks_checked, 1296u * 12u);
  for (unsigned t : kThreadCounts)
    expect_same_report(base, check_universal_exhaustive(graph::k4(), good, t),
                       "exhaustive good t=" + std::to_string(t));
}

TEST(ThreadInvariance, ExhaustiveWitnessIdentity) {
  FixedExplorationSequence bad({1, 1}, 4, "too-short");
  const auto base = check_universal_exhaustive(graph::k4(), bad, 1);
  ASSERT_TRUE(base.witness.has_value());
  EXPECT_FALSE(
      covers_component(base.witness->labeled, base.witness->start, bad));
  for (unsigned t : kThreadCounts)
    expect_same_report(base, check_universal_exhaustive(graph::k4(), bad, t),
                       "exhaustive witness t=" + std::to_string(t));
}

TEST(ThreadInvariance, ExhaustiveRangeShardsMergeToFullReport) {
  RandomExplorationSequence good(21, 4000, 4);
  const Graph g = graph::k4();
  const std::uint64_t total = labeling_count(g);
  const auto full = check_universal_exhaustive(g, good, 2);
  UniversalityReport merged;
  merged.universal = true;
  for (std::uint64_t cut = 0; cut < total;) {
    const std::uint64_t next = std::min<std::uint64_t>(total, cut + total / 4);
    auto shard = check_universal_exhaustive_range(g, good, cut, next, 2);
    merged.labelings_checked += shard.labelings_checked;
    merged.walks_checked += shard.walks_checked;
    if (!shard.universal && merged.universal) {
      merged.universal = false;
      merged.witness = shard.witness;
    }
    cut = next;
  }
  expect_same_report(full, merged, "shard merge");
}

TEST(ThreadInvariance, SampledReports) {
  RandomExplorationSequence good(21, 4000, 4);
  FixedExplorationSequence bad({1, 1}, 4, "too-short");
  const auto base_good = check_universal_sampled(graph::k4(), good, 40, 9, 1);
  const auto base_bad = check_universal_sampled(graph::k4(), bad, 40, 9, 1);
  EXPECT_TRUE(base_good.universal);
  ASSERT_TRUE(base_bad.witness.has_value());
  for (unsigned t : kThreadCounts) {
    expect_same_report(base_good,
                       check_universal_sampled(graph::k4(), good, 40, 9, t),
                       "sampled good t=" + std::to_string(t));
    expect_same_report(base_bad,
                       check_universal_sampled(graph::k4(), bad, 40, 9, t),
                       "sampled bad t=" + std::to_string(t));
  }
}

TEST(ThreadInvariance, SampledTrialsDependOnlyOnSeedAndIndex) {
  // Every labelling of K4 defeats a length-2 sequence, so the witness must
  // come from trial 0 — and trial 0's labelling is by contract the
  // relabelling drawn from Pcg32(counter_hash(seed, 0)).
  FixedExplorationSequence bad({1, 1}, 4, "too-short");
  const std::uint64_t seed = 1234;
  const auto rep = check_universal_sampled(graph::k4(), bad, 25, seed, 8);
  ASSERT_TRUE(rep.witness.has_value());
  util::Pcg32 rng(util::counter_hash(seed, 0));
  EXPECT_EQ(rep.witness->labeled, graph::k4().randomly_relabeled(rng));
  // Growing the trial budget must not move an existing witness: outcomes
  // are per-trial, so the first refuting trial is unchanged.
  expect_same_report(rep,
                     check_universal_sampled(graph::k4(), bad, 200, seed, 3),
                     "sampled prefix stability");
}

TEST(ThreadInvariance, AdversarialReports) {
  RandomExplorationSequence strong(3, 6000, 6);
  FixedExplorationSequence weak({1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2}, 6,
                                "alternating");
  const Graph prism = graph::prism(3);
  const auto base_strong = check_universal_adversarial(prism, strong, 40, 11, 1);
  const auto base_weak = check_universal_adversarial(prism, weak, 60, 7, 1);
  if (base_weak.witness.has_value()) {
    EXPECT_FALSE(covers_component(base_weak.witness->labeled,
                                  base_weak.witness->start, weak));
  }
  for (unsigned t : kThreadCounts) {
    expect_same_report(base_strong,
                       check_universal_adversarial(prism, strong, 40, 11, t),
                       "adversarial strong t=" + std::to_string(t));
    expect_same_report(base_weak,
                       check_universal_adversarial(prism, weak, 60, 7, t),
                       "adversarial weak t=" + std::to_string(t));
  }
}

TEST(ThreadInvariance, CoversAllStarts) {
  RandomExplorationSequence good(21, 4000, 4);
  FixedExplorationSequence bad({1, 1}, 4, "too-short");
  for (unsigned t : kThreadCounts) {
    EXPECT_TRUE(covers_all_starts(graph::k4(), good, t)) << t;
    EXPECT_FALSE(covers_all_starts(graph::k4(), bad, t)) << t;
  }
}

TEST(ThreadInvariance, CertificateCountsAndOutcome) {
  auto seq = standard_ues(4);
  Certificate serial, parallel;
  const bool ok1 = certify_sequence(*seq, 4, 7, serial, 46656, 1);
  const bool ok8 = certify_sequence(*seq, 4, 7, parallel, 46656, 8);
  EXPECT_EQ(ok1, ok8);
  EXPECT_EQ(serial.level, parallel.level);
  EXPECT_EQ(serial.graphs_checked, parallel.graphs_checked);
  EXPECT_EQ(serial.labelings_checked, parallel.labelings_checked);
  EXPECT_EQ(serial.walks_checked, parallel.walks_checked);
}

}  // namespace
}  // namespace uesr::explore
