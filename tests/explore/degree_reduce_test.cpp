#include "explore/degree_reduce.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::explore {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Port;

TEST(DegreeReduce, AlwaysCubic) {
  std::vector<Graph> zoo = {
      graph::path(2),       graph::path(7),      graph::cycle(5),
      graph::star(6),       graph::complete(6),  graph::grid(3, 4),
      graph::petersen(),    graph::binary_tree(10),
      graph::gnp(20, 0.3, 1), graph::lollipop(5, 4)};
  for (const Graph& g : zoo) {
    ReducedGraph r = reduce_to_cubic(g);
    EXPECT_TRUE(r.cubic.is_regular(3)) << graph::describe(g);
    r.cubic.validate();
  }
}

TEST(DegreeReduce, SizeIsSumOfClampedDegrees) {
  Graph g = graph::star(5);  // hub degree 5, leaves degree 1
  ReducedGraph r = reduce_to_cubic(g);
  EXPECT_EQ(r.cubic.num_nodes(), 5u + 5u * 3u);
  EXPECT_EQ(r.gadget_count[0], 5u);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_EQ(r.gadget_count[v], 3u);
}

TEST(DegreeReduce, BlowupIsLinear) {
  for (const Graph& g :
       {graph::complete(10), graph::grid(5, 5), graph::cycle(30)}) {
    ReducedGraph r = reduce_to_cubic(g);
    EXPECT_LE(r.cubic.num_nodes(), 2 * g.num_edges() + 3 * g.num_nodes());
  }
}

TEST(DegreeReduce, CubicVertexGetsTriangleGadget) {
  Graph g = graph::k4();
  ReducedGraph r = reduce_to_cubic(g);
  EXPECT_EQ(r.cubic.num_nodes(), 12u);  // 4 vertices x 3 gadgets
  // No half loops: every vertex had degree exactly 3.
  for (NodeId v = 0; v < r.cubic.num_nodes(); ++v)
    for (Port p = 0; p < 3; ++p) EXPECT_FALSE(r.cubic.is_half_loop(v, p));
}

TEST(DegreeReduce, LowDegreePadsWithHalfLoops) {
  Graph g = graph::path(2);  // two degree-1 vertices
  ReducedGraph r = reduce_to_cubic(g);
  EXPECT_EQ(r.cubic.num_nodes(), 6u);
  std::size_t half_loops = 0;
  for (NodeId v = 0; v < r.cubic.num_nodes(); ++v)
    for (Port p = 0; p < 3; ++p)
      if (r.cubic.is_half_loop(v, p)) ++half_loops;
  EXPECT_EQ(half_loops, 4u);  // 2 unused ports per vertex
}

TEST(DegreeReduce, IsolatedVertexBecomesLoopTriangle) {
  Graph g = GraphBuilder(1).build();
  ReducedGraph r = reduce_to_cubic(g);
  EXPECT_EQ(r.cubic.num_nodes(), 3u);
  EXPECT_TRUE(r.cubic.is_regular(3));
  EXPECT_TRUE(graph::is_connected(r.cubic));
}

TEST(DegreeReduce, PreservesComponentStructure) {
  Graph g = graph::from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 3}});
  ReducedGraph r = reduce_to_cubic(g);
  auto comp = graph::connected_components(r.cubic);
  // Gadgets of the same original vertex are in one component.
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (NodeId j = 1; j < r.gadget_count[v]; ++j)
      EXPECT_EQ(comp[r.first_gadget[v]], comp[r.first_gadget[v] + j]);
  // Original connectivity is mirrored exactly.
  auto orig_comp = graph::connected_components(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(orig_comp[u] == orig_comp[v],
                comp[r.entry_gadget(u)] == comp[r.entry_gadget(v)])
          << u << " vs " << v;
}

TEST(DegreeReduce, GadgetMapsAreConsistent) {
  Graph g = graph::complete(5);
  ReducedGraph r = reduce_to_cubic(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      NodeId gv = r.gadget(v, p);
      EXPECT_EQ(r.original_of[gv], v);
      EXPECT_TRUE(r.belongs_to(gv, v));
    }
    EXPECT_EQ(r.entry_gadget(v), r.gadget(v, 0));
  }
  EXPECT_THROW(r.gadget(0, 99), std::invalid_argument);
  EXPECT_THROW(r.gadget(99, 0), std::invalid_argument);
}

TEST(DegreeReduce, ExternalEdgesMirrorOriginalEdges) {
  Graph g = graph::petersen();
  ReducedGraph r = reduce_to_cubic(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p) {
      graph::HalfEdge far = g.rotate(v, p);
      NodeId mine = r.gadget(v, p);
      // Port 2 is the external port by convention.
      graph::HalfEdge ext = r.cubic.rotate(mine, 2);
      EXPECT_EQ(ext.node, r.gadget(far.node, far.port));
      EXPECT_EQ(ext.port, 2u);
    }
}

TEST(DegreeReduce, GadgetCycleUsesPorts0And1) {
  Graph g = graph::star(4);
  ReducedGraph r = reduce_to_cubic(g);
  NodeId base = r.first_gadget[0];
  NodeId c = r.gadget_count[0];
  for (NodeId j = 0; j < c; ++j) {
    graph::HalfEdge next = r.cubic.rotate(base + j, 1);
    EXPECT_EQ(next.node, base + (j + 1) % c);
    EXPECT_EQ(next.port, 0u);
  }
}

TEST(DegreeReduce, OriginalLoopsHandled) {
  GraphBuilder b(2);
  b.add_edge(0, 0);     // full loop
  b.add_half_loop(1);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  ReducedGraph r = reduce_to_cubic(g);
  EXPECT_TRUE(r.cubic.is_regular(3));
  r.cubic.validate();
  EXPECT_TRUE(graph::is_connected(r.cubic));
  // Full loop becomes an edge between two gadgets of vertex 0.
  graph::HalfEdge ext = r.cubic.rotate(r.gadget(0, 0), 2);
  EXPECT_EQ(ext.node, r.gadget(0, 1));
  // Half loop stays a half loop on its gadget.
  EXPECT_TRUE(r.cubic.is_half_loop(r.gadget(1, 0), 2));
}

TEST(DegreeReduce, EmptyGraph) {
  ReducedGraph r = reduce_to_cubic(GraphBuilder(0).build());
  EXPECT_EQ(r.cubic.num_nodes(), 0u);
}

}  // namespace
}  // namespace uesr::explore
