#include "explore/sequence.h"

#include <gtest/gtest.h>

namespace uesr::explore {
namespace {

TEST(RandomSequence, SymbolsInAlphabet) {
  RandomExplorationSequence seq(1, 10000, 16);
  for (std::uint64_t i = 1; i <= seq.length(); ++i) EXPECT_LT(seq.symbol(i), 3u);
}

TEST(RandomSequence, StatelessAndDeterministic) {
  RandomExplorationSequence a(42, 1000, 8), b(42, 1000, 8);
  EXPECT_EQ(a.symbol(500), b.symbol(500));
  // Out-of-order access yields identical values (pure function of index).
  Symbol s999 = a.symbol(999);
  a.symbol(1);
  EXPECT_EQ(a.symbol(999), s999);
}

TEST(RandomSequence, SeedsDiffer) {
  RandomExplorationSequence a(1, 300, 8), b(2, 300, 8);
  int same = 0;
  for (std::uint64_t i = 1; i <= 300; ++i)
    if (a.symbol(i) == b.symbol(i)) ++same;
  EXPECT_LT(same, 160);  // ~1/3 expected agreement for ternary alphabet
}

TEST(RandomSequence, IndexBoundsChecked) {
  RandomExplorationSequence seq(1, 10, 4);
  EXPECT_THROW(seq.symbol(0), std::out_of_range);
  EXPECT_THROW(seq.symbol(11), std::out_of_range);
  EXPECT_NO_THROW(seq.symbol(10));
}

TEST(RandomSequence, CustomAlphabet) {
  RandomExplorationSequence seq(7, 1000, 8, 5);
  bool saw4 = false;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    EXPECT_LT(seq.symbol(i), 5u);
    if (seq.symbol(i) == 4) saw4 = true;
  }
  EXPECT_TRUE(saw4);
}

TEST(RandomSequence, ZeroAlphabetThrows) {
  EXPECT_THROW(RandomExplorationSequence(1, 10, 4, 0), std::invalid_argument);
}

TEST(FixedSequence, ReturnsStoredSymbols) {
  FixedExplorationSequence seq({0, 1, 2, 1}, 4, "test");
  EXPECT_EQ(seq.length(), 4u);
  EXPECT_EQ(seq.symbol(1), 0u);
  EXPECT_EQ(seq.symbol(4), 1u);
  EXPECT_EQ(seq.name(), "test");
  EXPECT_THROW(seq.symbol(0), std::out_of_range);
  EXPECT_THROW(seq.symbol(5), std::out_of_range);
}

TEST(DefaultLength, GrowsSuperQuadratically) {
  EXPECT_GE(default_ues_length(1), 64u);
  std::uint64_t l8 = default_ues_length(8);
  std::uint64_t l16 = default_ues_length(16);
  std::uint64_t l32 = default_ues_length(32);
  EXPECT_GT(l16, 4 * l8 / 2);
  EXPECT_GT(l32, 4 * l16 / 2);
  EXPECT_THROW(default_ues_length(0), std::invalid_argument);
}

TEST(StandardUes, TargetsRequestedSize) {
  auto seq = standard_ues(32);
  EXPECT_EQ(seq->target_size(), 32u);
  EXPECT_EQ(seq->length(), default_ues_length(32));
  // Deterministic across calls with the same seed.
  auto seq2 = standard_ues(32);
  EXPECT_EQ(seq->symbol(17), seq2->symbol(17));
}

TEST(StandardUes, NameMentionsParameters) {
  auto seq = standard_ues(16, 99);
  EXPECT_NE(seq->name().find("seed=99"), std::string::npos);
  EXPECT_NE(seq->name().find("n=16"), std::string::npos);
}

}  // namespace
}  // namespace uesr::explore
