#include "explore/sequence.h"

#include <gtest/gtest.h>

namespace uesr::explore {
namespace {

TEST(RandomSequence, SymbolsInAlphabet) {
  RandomExplorationSequence seq(1, 10000, 16);
  for (std::uint64_t i = 1; i <= seq.length(); ++i) EXPECT_LT(seq.symbol(i), 3u);
}

TEST(RandomSequence, StatelessAndDeterministic) {
  RandomExplorationSequence a(42, 1000, 8), b(42, 1000, 8);
  EXPECT_EQ(a.symbol(500), b.symbol(500));
  // Out-of-order access yields identical values (pure function of index).
  Symbol s999 = a.symbol(999);
  a.symbol(1);
  EXPECT_EQ(a.symbol(999), s999);
}

TEST(RandomSequence, SeedsDiffer) {
  RandomExplorationSequence a(1, 300, 8), b(2, 300, 8);
  int same = 0;
  for (std::uint64_t i = 1; i <= 300; ++i)
    if (a.symbol(i) == b.symbol(i)) ++same;
  EXPECT_LT(same, 160);  // ~1/3 expected agreement for ternary alphabet
}

TEST(RandomSequence, IndexBoundsChecked) {
  RandomExplorationSequence seq(1, 10, 4);
  EXPECT_THROW(seq.symbol(0), std::out_of_range);
  EXPECT_THROW(seq.symbol(11), std::out_of_range);
  EXPECT_NO_THROW(seq.symbol(10));
}

TEST(RandomSequence, CustomAlphabet) {
  RandomExplorationSequence seq(7, 1000, 8, 5);
  bool saw4 = false;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    EXPECT_LT(seq.symbol(i), 5u);
    if (seq.symbol(i) == 4) saw4 = true;
  }
  EXPECT_TRUE(saw4);
}

TEST(RandomSequence, ZeroAlphabetThrows) {
  EXPECT_THROW(RandomExplorationSequence(1, 10, 4, 0), std::invalid_argument);
}

TEST(FixedSequence, ReturnsStoredSymbols) {
  FixedExplorationSequence seq({0, 1, 2, 1}, 4, "test");
  EXPECT_EQ(seq.length(), 4u);
  EXPECT_EQ(seq.symbol(1), 0u);
  EXPECT_EQ(seq.symbol(4), 1u);
  EXPECT_EQ(seq.name(), "test");
  EXPECT_THROW(seq.symbol(0), std::out_of_range);
  EXPECT_THROW(seq.symbol(5), std::out_of_range);
}

TEST(DefaultLength, GrowsSuperQuadratically) {
  EXPECT_GE(default_ues_length(1), 64u);
  std::uint64_t l8 = default_ues_length(8);
  std::uint64_t l16 = default_ues_length(16);
  std::uint64_t l32 = default_ues_length(32);
  EXPECT_GT(l16, 4 * l8 / 2);
  EXPECT_GT(l32, 4 * l16 / 2);
  EXPECT_THROW(default_ues_length(0), std::invalid_argument);
}

TEST(StandardUes, TargetsRequestedSize) {
  auto seq = standard_ues(32);
  EXPECT_EQ(seq->target_size(), 32u);
  EXPECT_EQ(seq->length(), default_ues_length(32));
  // Deterministic across calls with the same seed.
  auto seq2 = standard_ues(32);
  EXPECT_EQ(seq->symbol(17), seq2->symbol(17));
}

TEST(StandardUes, NameMentionsParameters) {
  auto seq = standard_ues(16, 99);
  EXPECT_NE(seq->name().find("seed=99"), std::string::npos);
  EXPECT_NE(seq->name().find("n=16"), std::string::npos);
}

// ---- fill(): block evaluation must equal symbol() element-wise ----------

TEST(Fill, MatchesSymbolElementwiseBothFamilies) {
  const std::uint64_t len = 3 * SymbolStream::kBlock + 17;
  RandomExplorationSequence random(42, len, 64);
  std::vector<Symbol> fixed_syms(len);
  for (std::uint64_t i = 0; i < len; ++i)
    fixed_syms[i] = static_cast<Symbol>((i * 7 + 3) % 5);
  FixedExplorationSequence fixed(fixed_syms, 64, "fixture");
  for (const ExplorationSequence* seq :
       {static_cast<const ExplorationSequence*>(&random),
        static_cast<const ExplorationSequence*>(&fixed)}) {
    // Windows chosen to start/end inside, at, and across block boundaries.
    const std::uint64_t starts[] = {1,
                                    2,
                                    SymbolStream::kBlock - 1,
                                    SymbolStream::kBlock,
                                    SymbolStream::kBlock + 1,
                                    2 * SymbolStream::kBlock - 3,
                                    len - 40};
    for (std::uint64_t begin : starts) {
      std::vector<Symbol> out(41);
      seq->fill(begin, out.size(), out.data());
      for (std::uint64_t k = 0; k < out.size(); ++k)
        EXPECT_EQ(out[k], seq->symbol(begin + k))
            << seq->name() << " begin=" << begin << " k=" << k;
    }
    // Full-length fill in one call.
    std::vector<Symbol> all(len);
    seq->fill(1, len, all.data());
    for (std::uint64_t i = 1; i <= len; ++i)
      EXPECT_EQ(all[i - 1], seq->symbol(i));
  }
}

TEST(Fill, RejectsBadRanges) {
  RandomExplorationSequence random(7, 100, 16);
  FixedExplorationSequence fixed({0, 1, 2, 1}, 4, "tiny");
  Symbol buf[8];
  EXPECT_THROW(random.fill(0, 1, buf), std::out_of_range);
  EXPECT_THROW(random.fill(101, 1, buf), std::out_of_range);
  EXPECT_THROW(random.fill(99, 3, buf), std::out_of_range);
  EXPECT_THROW(fixed.fill(0, 1, buf), std::out_of_range);
  EXPECT_THROW(fixed.fill(3, 3, buf), std::out_of_range);
  // count == 0 is a no-op anywhere.
  EXPECT_NO_THROW(random.fill(1, 0, buf));
  EXPECT_NO_THROW(fixed.fill(4, 0, buf));
}

TEST(Fill, DefaultImplementationServesCustomSequences) {
  // A minimal custom family exercises the base-class fill() loop.
  class Ramp final : public ExplorationSequence {
   public:
    std::uint64_t length() const override { return 10; }
    Symbol symbol(std::uint64_t i) const override {
      return static_cast<Symbol>(i % 3);
    }
    graph::NodeId target_size() const override { return 4; }
    std::string name() const override { return "ramp"; }
  } ramp;
  Symbol out[10];
  ramp.fill(2, 9, out);
  for (std::uint64_t k = 0; k < 9; ++k)
    EXPECT_EQ(out[k], ramp.symbol(2 + k));
}

TEST(SymbolStream, HandsOutSymbolsInOrderAcrossBlocks) {
  const std::uint64_t len = 2 * SymbolStream::kBlock + 5;
  RandomExplorationSequence seq(9, len, 32);
  SymbolStream stream(seq);
  for (std::uint64_t i = 1; i <= len; ++i)
    ASSERT_EQ(stream.next(), seq.symbol(i)) << "i=" << i;
  EXPECT_THROW(stream.next(), std::out_of_range);
}

}  // namespace
}  // namespace uesr::explore
