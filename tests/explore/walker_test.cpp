#include "explore/walker.h"

#include <set>

#include <gtest/gtest.h>

#include "explore/degree_reduce.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::explore {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::HalfEdge;
using graph::NodeId;
using graph::Port;

TEST(Walker, ForwardStepFollowsOffsetRule) {
  // Triangle: ports assigned in edge order 0-1, 1-2, 2-0.
  Graph g = graph::cycle(3);
  // Depart 0 via port 0 -> arrive at 1 on port 0. Symbol 1 -> leave port 1.
  HalfEdge d1 = forward_step(g, {0, 0}, 1);
  EXPECT_EQ(d1, (HalfEdge{1, 1}));
  // Symbol 0 -> leave on the entry port (bounce back).
  HalfEdge bounce = forward_step(g, {0, 0}, 0);
  EXPECT_EQ(bounce, (HalfEdge{1, 0}));
}

TEST(Walker, ForwardStepWrapsModDegree) {
  Graph g = graph::star(4);  // hub 0 has degree 4
  // Depart leaf 1 via port 0 -> arrive hub on port 0; symbol 7 ≡ 3 (mod 4).
  HalfEdge d = forward_step(g, {1, 0}, 7);
  EXPECT_EQ(d, (HalfEdge{0, 3}));
}

TEST(Walker, HalfLoopReentersSamePort) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_half_loop(1);
  Graph g = std::move(b).build();
  // Depart 1 via its half loop (port 1): re-enter 1 on port 1; symbol 1
  // advances to port 0 -> the real edge.
  HalfEdge d = forward_step(g, {1, 1}, 1);
  EXPECT_EQ(d, (HalfEdge{1, 0}));
}

TEST(Walker, ReverseInvertsForwardEverywhere) {
  // Property: reverse_step(forward_step(d, t), t) == d for every departure
  // half-edge and symbol, on assorted graphs including loopy ones.
  std::vector<Graph> zoo = {graph::cycle(5), graph::complete(5),
                            graph::petersen(), graph::star(4),
                            graph::random_cubic_multigraph(8, 3)};
  {
    GraphBuilder b(2);
    b.add_edge(0, 1);
    b.add_edge(0, 0);
    b.add_half_loop(0);
    b.add_half_loop(1);
    b.add_edge(1, 1);
    zoo.push_back(std::move(b).build());
  }
  for (const Graph& g : zoo) {
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      for (Port p = 0; p < g.degree(v); ++p)
        for (Symbol t = 0; t < 5; ++t) {
          HalfEdge d{v, p};
          HalfEdge fwd = forward_step(g, d, t);
          EXPECT_EQ(reverse_step(g, fwd, t), d)
              << graph::describe(g) << " v=" << v << " p=" << p << " t=" << t;
        }
  }
}

TEST(Walker, TraceWalkMatchesManualReplay) {
  Graph g = graph::petersen();
  RandomExplorationSequence seq(11, 200, 10);
  WalkTrace tr = trace_walk(g, {0, 0}, seq, 200);
  ASSERT_EQ(tr.departures.size(), 201u);
  HalfEdge d{0, 0};
  for (std::uint64_t j = 1; j <= 200; ++j) {
    d = forward_step(g, d, seq.symbol(j));
    EXPECT_EQ(tr.departures[j], d);
  }
}

TEST(Walker, TraceWalkCapsAtSequenceLength) {
  Graph g = graph::cycle(4);
  RandomExplorationSequence seq(1, 10, 4);
  WalkTrace tr = trace_walk(g, {0, 0}, seq, 1000000);
  EXPECT_EQ(tr.departures.size(), 11u);
}

TEST(Walker, WalkPositionAgreesWithTrace) {
  Graph g = graph::moebius_kantor();
  RandomExplorationSequence seq(5, 300, 16);
  WalkTrace tr = trace_walk(g, {2, 1}, seq, 300);
  for (std::uint64_t j : {0ULL, 1ULL, 57ULL, 300ULL})
    EXPECT_EQ(walk_position(g, {2, 1}, seq, j), tr.departures[j]);
  EXPECT_THROW(walk_position(g, {2, 1}, seq, 301), std::out_of_range);
}

TEST(Walker, BackwardReplayRetracesWholeWalk) {
  // Walk forward k steps, then replay backward using the reverse rule; the
  // replay must visit the same departures in reverse order.
  Graph g = reduce_to_cubic(graph::lollipop(4, 3)).cubic;
  RandomExplorationSequence seq(9, 500, g.num_nodes());
  WalkTrace tr = trace_walk(g, {0, 0}, seq, 500);
  HalfEdge d = tr.departures.back();
  for (std::uint64_t j = 500; j >= 1; --j) {
    d = reverse_step(g, d, seq.symbol(j));
    EXPECT_EQ(d, tr.departures[j - 1]) << "at step " << j;
  }
  EXPECT_EQ(d, (HalfEdge{0, 0}));
}

TEST(Walker, VisitedSetMatchesDepartureEndpoints) {
  Graph g = graph::grid(3, 3);
  RandomExplorationSequence seq(3, 100, 9);
  WalkTrace tr = trace_walk(g, {0, 0}, seq, 100);
  std::vector<bool> expect(g.num_nodes(), false);
  for (const HalfEdge& d : tr.departures) {
    expect[d.node] = true;
    expect[g.rotate(d.node, d.port).node] = true;
  }
  EXPECT_EQ(tr.visited, expect);
}

TEST(Walker, FirstVisitsUniqueAndStartFirst) {
  Graph g = graph::cycle(6);
  RandomExplorationSequence seq(4, 200, 6);
  WalkTrace tr = trace_walk(g, {2, 0}, seq, 200);
  EXPECT_EQ(tr.first_visits.front(), 2u);
  std::set<NodeId> uniq(tr.first_visits.begin(), tr.first_visits.end());
  EXPECT_EQ(uniq.size(), tr.first_visits.size());
}

TEST(Walker, CoverTimeOnCompleteGraphIsFast) {
  Graph g = graph::complete(6);
  RandomExplorationSequence seq(8, 10000, 6);
  auto ct = cover_time(g, {0, 0}, seq);
  ASSERT_TRUE(ct.has_value());
  EXPECT_LT(*ct, 200u);
}

TEST(Walker, CoverRestrictedToComponent) {
  // Two disjoint triangles: walk from one covers "its component" only.
  Graph g = graph::from_edges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  RandomExplorationSequence seq(2, 1000, 6);
  EXPECT_TRUE(covers_component(g, {0, 0}, seq));
  WalkTrace tr = trace_walk(g, {0, 0}, seq, 1000);
  EXPECT_FALSE(tr.visited[3]);
  EXPECT_FALSE(tr.visited[4]);
}

TEST(Walker, TooShortSequenceFailsToCover) {
  Graph g = graph::cycle(64);
  RandomExplorationSequence seq(1, 8, 64);
  EXPECT_FALSE(covers_component(g, {0, 0}, seq));
  EXPECT_FALSE(cover_time(g, {0, 0}, seq).has_value());
}

TEST(Walker, SingleVertexHalfLoopsCoverImmediately) {
  GraphBuilder b(1);
  b.add_half_loop(0);
  b.add_half_loop(0);
  b.add_half_loop(0);
  Graph g = std::move(b).build();
  RandomExplorationSequence seq(1, 10, 1);
  auto ct = cover_time(g, {0, 0}, seq);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(*ct, 0u);
}

TEST(Walker, BadStartThrows) {
  Graph g = graph::cycle(3);
  RandomExplorationSequence seq(1, 10, 3);
  EXPECT_THROW(trace_walk(g, {5, 0}, seq, 10), std::invalid_argument);
  EXPECT_THROW(trace_walk(g, {0, 9}, seq, 10), std::invalid_argument);
}

TEST(Walker, CoverTimeOverloadMatchesWrapperAcrossStarts) {
  // The (need, scratch) overload with one shared scratch must agree with
  // the public single-start wrapper for every start half-edge, including
  // disconnected pieces (differing component sizes).
  Graph g = graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}});
  RandomExplorationSequence seq(13, 600, 7);
  WalkScratch scratch;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t need = graph::component_of(g, v).size();
    for (graph::Port p = 0; p < g.degree(v); ++p) {
      auto expected = cover_time(g, {v, p}, seq);
      auto got = cover_time(g, {v, p}, seq, need, scratch);
      EXPECT_EQ(got, expected) << "start=(" << v << "," << p << ")";
      EXPECT_EQ(covers_component(g, {v, p}, seq, need, scratch),
                expected.has_value());
    }
  }
}

TEST(Walker, VisitedCountMatchesTrace) {
  Graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  FixedExplorationSequence seq({1, 1, 0, 1, 1, 2, 0, 1}, 6, "short");
  WalkScratch scratch;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    for (graph::Port p = 0; p < g.degree(v); ++p) {
      auto tr = trace_walk(g, {v, p}, seq, seq.length());
      EXPECT_EQ(visited_count(g, {v, p}, seq, scratch),
                tr.first_visits.size())
          << "start=(" << v << "," << p << ")";
    }
}

TEST(Walker, ScratchAdaptsToDifferentGraphSizes) {
  WalkScratch scratch;
  Graph small = graph::cycle(3);
  Graph big = graph::cycle(50);
  RandomExplorationSequence seq(5, 20000, 50);
  EXPECT_TRUE(covers_component(small, {0, 0}, seq, 3, scratch));
  EXPECT_TRUE(covers_component(big, {0, 0}, seq, 50, scratch));
  EXPECT_TRUE(covers_component(small, {0, 0}, seq, 3, scratch));
}

}  // namespace
}  // namespace uesr::explore
