#include "explore/sequence_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/parallel.h"

namespace uesr::explore {
namespace {

TEST(SequenceCache, MissThenHitReturnsIdenticalObject) {
  SequenceCache cache;
  auto a = cache.standard(16, 1);
  auto b = cache.standard(16, 1);
  EXPECT_EQ(a.get(), b.get());  // the same object, not an equal copy
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SequenceCache, DistinctKeysDistinctObjects) {
  SequenceCache cache;
  auto a = cache.standard(16, 1);
  auto b = cache.standard(16, 2);   // other seed
  auto c = cache.standard(17, 1);   // other bound
  auto d = cache.get("other-family", 16, 1, [] { return standard_ues(16, 1); });
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(SequenceCache, CachedSequenceBitIdenticalToFreshlyBuilt) {
  SequenceCache cache;
  auto cached = cache.standard(12, 0x5eed0001);
  auto fresh = standard_ues(12, 0x5eed0001);
  ASSERT_EQ(cached->length(), fresh->length());
  EXPECT_EQ(cached->target_size(), fresh->target_size());
  EXPECT_EQ(cached->name(), fresh->name());
  const std::uint64_t probe =
      std::min<std::uint64_t>(cached->length(), 4096);
  std::vector<Symbol> a(probe), b(probe);
  cached->fill(1, probe, a.data());
  fresh->fill(1, probe, b.data());
  EXPECT_EQ(a, b);
  // And spot-check the tail, where a length mismatch would hide.
  EXPECT_EQ(cached->symbol(cached->length()), fresh->symbol(fresh->length()));
}

TEST(SequenceCache, ClearResetsEverything) {
  SequenceCache cache;
  cache.standard(8, 3);
  cache.standard(8, 3);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  auto again = cache.standard(8, 3);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_NE(again, nullptr);
}

TEST(SequenceCache, FailedBuildIsNotCached) {
  SequenceCache cache;
  EXPECT_THROW(
      cache.get("bad", 8, 1,
                []() -> std::shared_ptr<const ExplorationSequence> {
                  throw std::runtime_error("builder failed");
                }),
      std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);
  // The key is retried, not served as a cached null.
  auto ok = cache.get("bad", 8, 1, [] { return standard_ues(8, 1); });
  EXPECT_NE(ok, nullptr);
}

TEST(SequenceCache, GlobalSharesOneInstance) {
  auto a = cached_standard_ues(24, 0xabc);
  auto b = SequenceCache::global().standard(24, 0xabc);
  EXPECT_EQ(a.get(), b.get());
}

// Lookups race from parallel session lanes in the traffic engine; every
// lane asking for the same key must get the same object (exercised under
// the tsan CI job).
TEST(SequenceCache, ConcurrentLookupsAgree) {
  SequenceCache cache;
  util::ThreadPool pool(8);
  constexpr std::uint64_t kLookups = 256;
  std::vector<const ExplorationSequence*> seen(kLookups, nullptr);
  util::parallel_for(pool, kLookups, 8, [&](const util::ChunkRange& c) {
    for (std::uint64_t i = c.begin; i < c.end; ++i)
      seen[i] = cache.standard(10 + (i % 3), 7).get();
  });
  for (std::uint64_t i = 0; i < kLookups; ++i)
    EXPECT_EQ(seen[i], cache.standard(10 + (i % 3), 7).get()) << i;
  EXPECT_EQ(cache.size(), 3u);
}

// Hammer the shared-lock hit path: prime one key, then have many threads
// do nothing but hit it.  Every hit must return the *identical* immutable
// object (pointer equality), the hit counter must account for every lookup
// exactly, and the key must never be rebuilt.  Run under tsan in CI — a
// data race between the shared-lock readers would trip there.
TEST(SequenceCache, SharedLockHitPathHammer) {
  SequenceCache cache;
  const ExplorationSequence* primed = cache.standard(20, 11).get();
  ASSERT_EQ(cache.misses(), 1u);
  util::ThreadPool pool(8);
  constexpr std::uint64_t kLookups = 4096;
  std::vector<const ExplorationSequence*> seen(kLookups, nullptr);
  util::parallel_for(pool, kLookups, 64, [&](const util::ChunkRange& c) {
    for (std::uint64_t i = c.begin; i < c.end; ++i)
      seen[i] = cache.standard(20, 11).get();
  });
  for (std::uint64_t i = 0; i < kLookups; ++i)
    ASSERT_EQ(seen[i], primed) << i;
  EXPECT_EQ(cache.misses(), 1u);  // never rebuilt
  EXPECT_EQ(cache.hits(), kLookups);
  EXPECT_EQ(cache.size(), 1u);
}

// Concurrent misses on the same cold key: exactly one build, everyone gets
// the winner's object (the upgrade race in get() resolves to a hit).
TEST(SequenceCache, ConcurrentColdMissesBuildOnce) {
  SequenceCache cache;
  util::ThreadPool pool(8);
  constexpr std::uint64_t kLookups = 64;
  std::vector<const ExplorationSequence*> seen(kLookups, nullptr);
  util::parallel_for(pool, kLookups, 1, [&](const util::ChunkRange& c) {
    for (std::uint64_t i = c.begin; i < c.end; ++i)
      seen[i] = cache.standard(31, 13).get();
  });
  for (std::uint64_t i = 1; i < kLookups; ++i) EXPECT_EQ(seen[i], seen[0]);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kLookups - 1);
}

}  // namespace
}  // namespace uesr::explore
