#include "baselines/geo.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::baselines {
namespace {

using graph::NodeId;
using graph::Point2;
using graph::Positioned2;

Positioned2 square_with_notch() {
  // A "U" obstacle: greedy from 0 toward 3 gets stuck at the notch tip 4.
  //
  //   0 --- 4      3
  //   |     |      |
  //   1 --- 2 ---- 5   (4 is closest to 3 among 0's neighbours but has no
  //                     neighbour closer to 3 than itself)
  graph::GraphBuilder b(6);
  b.add_edge(0, 4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 4);
  b.add_edge(2, 5);
  b.add_edge(5, 3);
  return {std::move(b).build(),
          {{0.0, 1.0}, {0.0, 0.0}, {1.0, 0.0}, {2.0, 1.0}, {1.0, 1.05},
           {2.0, 0.0}}};
}

TEST(Greedy2D, DeliversOnConvexInstance) {
  auto net = graph::connected_unit_disk_2d(60, 0.35, 1);
  // Dense radius: greedy should usually make it; take a pair that works.
  auto a = greedy_route_2d(net, 0, 1);
  // Not asserting success in general — only that the accounting is sane.
  if (a.delivered) {
    EXPECT_GT(a.transmissions, 0u);
  } else {
    EXPECT_TRUE(a.stuck || a.transmissions > 0);
  }
}

TEST(Greedy2D, GetsStuckAtLocalMinimum) {
  Positioned2 net = square_with_notch();
  auto a = greedy_route_2d(net, 0, 3);
  EXPECT_FALSE(a.delivered);
  EXPECT_TRUE(a.stuck);
}

TEST(Greedy2D, DeliversOnStraightPath) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Positioned2 net{std::move(b).build(),
                  {{0, 0}, {1, 0}, {2, 0}, {3, 0}}};
  auto a = greedy_route_2d(net, 0, 3);
  EXPECT_TRUE(a.delivered);
  EXPECT_EQ(a.transmissions, 3u);
}

TEST(Gpsr, RecoversWhereGreedyFails) {
  Positioned2 net = square_with_notch();
  ASSERT_TRUE(graph::is_plane_embedding(net));
  auto g = greedy_route_2d(net, 0, 3);
  ASSERT_FALSE(g.delivered);
  auto p = gpsr_route(net, 0, 3);
  EXPECT_TRUE(p.delivered);
}

TEST(Gpsr, DeliveryOnGabrielUdgSweep) {
  // The headline property: on planarized connected 2D UDGs, face-routing
  // recovery delivers everywhere we test.
  int attempts = 0, delivered = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto raw = graph::connected_unit_disk_2d(50, 0.30, seed);
    auto planar = graph::gabriel_subgraph(raw);
    GpsrRouter router(planar);
    for (NodeId t = 1; t < 50; t += 7) {
      ++attempts;
      if (router.route(0, t).delivered) ++delivered;
    }
  }
  EXPECT_EQ(delivered, attempts) << delivered << "/" << attempts;
}

TEST(Gpsr, StuckAcrossComponents) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Positioned2 net{std::move(b).build(),
                  {{0, 0}, {1, 0}, {3, 0}, {4, 0}}};
  auto a = gpsr_route(net, 0, 3);
  EXPECT_FALSE(a.delivered);
}

TEST(Greedy3D, WorksOnDenseInstancesFailsInVoids) {
  // Dense 3D UDG: greedy usually works.
  auto dense = graph::connected_unit_disk_3d(80, 0.5, 2);
  int ok = 0, total = 0;
  for (NodeId t = 1; t < 80; t += 9) {
    ++total;
    if (greedy_route_3d(dense, 0, t).delivered) ++ok;
  }
  EXPECT_GT(ok, total / 2);
  // Sparse 3D UDG: local minima appear and greedy has no recovery — this
  // is the 3D gap ([2]) that UES routing closes.
  auto sparse = graph::connected_unit_disk_3d(60, 0.32, 5);
  int stuck = 0;
  for (NodeId s = 0; s < 10; ++s)
    for (NodeId t = 50; t < 60; ++t)
      if (greedy_route_3d(sparse, s, t).stuck) ++stuck;
  EXPECT_GT(stuck, 0);
}

TEST(Geo, HopLimitRespected) {
  auto net = graph::connected_unit_disk_2d(30, 0.3, 3);
  auto a = greedy_route_2d(net, 0, 29, 1);
  EXPECT_LE(a.transmissions, 1u);
}

TEST(Geo, ValidatesArguments) {
  auto net = graph::connected_unit_disk_2d(10, 0.5, 1);
  EXPECT_THROW(greedy_route_2d(net, 99, 0), std::invalid_argument);
  EXPECT_THROW(gpsr_route(net, 0, 99), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::baselines
