#include "baselines/churn.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::baselines {
namespace {

using graph::NodeId;

graph::LinkFlapScenario flap_scenario() {
  return graph::LinkFlapScenario(graph::connected_gnp(16, 0.25, 3), 2, 7);
}

/// Harsh churn that regularly isolates nodes — the schedule the
/// random-walk livelock fix must survive.
graph::NodeChurnScenario isolating_scenario() {
  return graph::NodeChurnScenario(graph::connected_gnp(12, 0.3, 5), 0.35,
                                  0.45, 11);
}

TEST(ChurnRouter, UesVerdictMatchesGroundTruthOnEveryAttempt) {
  auto sc = flap_scenario();
  ChurnRouter router(sc, /*period=*/16, /*max_epochs=*/10);
  for (NodeId s = 0; s < 8; ++s) {
    const NodeId t = 15 - s;
    const ChurnAttempt a = router.route_ues(s, t);
    EXPECT_TRUE(a.delivered || a.failure_certified);
    EXPECT_EQ(a.delivered, router.co_connected_after(a.ticks, s, t))
        << s << "->" << t;
  }
}

TEST(ChurnRouter, IdenticalSchedulesForEveryRouter) {
  // Two runs of the same router — and the ground-truth replay — consume
  // bit-identical schedules: same attempt, same numbers.
  auto sc = flap_scenario();
  ChurnRouter router(sc, 16, 10);
  const ChurnAttempt a = router.route_ues(1, 14);
  const ChurnAttempt b = router.route_ues(1, 14);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.restarts, b.restarts);
  const ChurnAttempt w1 = router.route_random_walk(1, 14, 5000, 99);
  const ChurnAttempt w2 = router.route_random_walk(1, 14, 5000, 99);
  EXPECT_EQ(w1.delivered, w2.delivered);
  EXPECT_EQ(w1.transmissions, w2.transmissions);
}

TEST(ChurnRouter, RandomWalkTerminatesWhenChurnIsolatesTheSource) {
  auto sc = isolating_scenario();
  ChurnRouter router(sc, /*period=*/8, /*max_epochs=*/12);
  // Every pair, every seed: the walk must come back (the static livelock
  // fixed in RandomWalkSession would hang exactly here).
  for (NodeId s = 0; s < 12; ++s) {
    const ChurnAttempt a =
        router.route_random_walk(s, (s + 6) % 12, /*ttl=*/2000, 1000 + s);
    EXPECT_LE(a.transmissions, 2000u);
    EXPECT_FALSE(a.failure_certified);
  }
}

TEST(ChurnRouter, AllRoutersTerminateUnderHarshChurn) {
  auto sc = isolating_scenario();
  ChurnRouter router(sc, 8, 12);
  const ChurnAttempt u = router.route_ues(0, 7);
  EXPECT_TRUE(u.delivered || u.failure_certified);
  const ChurnAttempt f = router.route_flooding(0, 7);
  EXPECT_FALSE(f.failure_certified);  // flooding can't certify under churn
  const ChurnAttempt w = router.route_random_walk(0, 7, 3000, 42);
  EXPECT_LE(w.transmissions, 3000u);
}

TEST(ChurnRouter, GreedyNeedsPositions) {
  auto sc = flap_scenario();
  ChurnRouter router(sc, 16, 4);
  EXPECT_THROW(router.route_greedy(0, 5), std::logic_error);
  graph::WaypointScenario mob(18, 2, 0.3, 0.06, 13);
  ChurnRouter mrouter(mob, 16, 8);
  const ChurnAttempt a = mrouter.route_greedy(0, 9);  // must terminate
  if (a.delivered) {
    EXPECT_GT(a.transmissions, 0u);
  }
}

TEST(ChurnRouter, SourceEqualsTarget) {
  auto sc = flap_scenario();
  ChurnRouter router(sc, 16, 4);
  EXPECT_TRUE(router.route_ues(3, 3).delivered);
  EXPECT_TRUE(router.route_random_walk(3, 3, 100, 1).delivered);
  EXPECT_TRUE(router.route_flooding(3, 3).delivered);
}

TEST(ChurnRouter, Validation) {
  auto sc = flap_scenario();
  EXPECT_THROW(ChurnRouter(sc, 0, 4), std::invalid_argument);
  ChurnRouter router(sc, 16, 4);
  EXPECT_THROW(router.route_random_walk(0, 5, 0, 1), std::invalid_argument);
  EXPECT_THROW(router.route_ues(0, 99), std::invalid_argument);
  EXPECT_THROW(churn_experiment(sc, -1, 16, 4, 100, 1, 1),
               std::invalid_argument);
}

// The PR 3 determinism contract extended to churn experiments: every cell
// of the E11 report kernel is bit-identical for any thread count.
TEST(ThreadInvariance, ChurnExperimentReports) {
  auto sc = flap_scenario();
  const ChurnCell base = churn_experiment(sc, /*pairs=*/12, /*period=*/16,
                                          /*max_epochs=*/8, /*rw_ttl=*/2000,
                                          /*seed=*/123, /*threads=*/1);
  EXPECT_EQ(base.pairs, 12);
  EXPECT_EQ(base.ues_delivered + base.ues_certified, 12);
  EXPECT_EQ(base.ues_errors, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, churn_experiment(sc, 12, 16, 8, 2000, 123, t))
        << "threads=" << t;
}

TEST(ThreadInvariance, ChurnExperimentMobilityReports) {
  graph::WaypointScenario mob(16, 2, 0.3, 0.06, 19);
  const ChurnCell base =
      churn_experiment(mob, 10, 16, 8, 2000, 77, /*threads=*/1);
  EXPECT_TRUE(base.has_greedy);
  EXPECT_EQ(base.ues_errors, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, churn_experiment(mob, 10, 16, 8, 2000, 77, t))
        << "threads=" << t;
}

}  // namespace
}  // namespace uesr::baselines
