#include "baselines/random_walk.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/stats.h"

namespace uesr::baselines {
namespace {

TEST(RandomWalk, DeliversOnSmallConnectedGraph) {
  graph::Graph g = graph::cycle(8);
  RandomWalkRouter router(g, /*ttl=*/100000, /*seed=*/3);
  auto a = router.route(0, 4);
  EXPECT_TRUE(a.delivered);
  EXPECT_FALSE(a.failure_certified);
  EXPECT_GE(a.transmissions, 4u);
}

TEST(RandomWalk, TtlBoundsWork) {
  graph::Graph g = graph::path(50);
  RandomWalkRouter router(g, /*ttl=*/10, /*seed=*/5);
  auto a = router.route(0, 49);  // cannot possibly make it in 10 steps
  EXPECT_FALSE(a.delivered);
  EXPECT_FALSE(a.failure_certified);  // TTL expiry certifies nothing
  EXPECT_EQ(a.transmissions, 10u);
}

TEST(RandomWalk, NeverTerminatesAcrossComponentsWithoutTtl) {
  // With a TTL it gives up; without one it would walk forever (problem 3
  // in the paper's 1.2 discussion) — we only test the TTL'd variant.
  graph::Graph g = graph::from_edges(4, {{0, 1}, {2, 3}});
  RandomWalkRouter router(g, /*ttl=*/1000, /*seed=*/7);
  auto a = router.route(0, 3);
  EXPECT_FALSE(a.delivered);
}

TEST(RandomWalkSession, StepByStepState) {
  graph::Graph g = graph::complete(4);
  RandomWalkSession s(g, 0, 2, 0, 11);
  EXPECT_FALSE(s.delivered());
  std::uint64_t steps = 0;
  while (!s.delivered()) {
    s.step();
    ++steps;
    ASSERT_LT(steps, 100000u);
  }
  EXPECT_EQ(s.current(), 2u);
  EXPECT_EQ(s.transmissions(), steps);
}

TEST(RandomWalkSession, PreDeliveredWhenSourceIsTarget) {
  graph::Graph g = graph::cycle(3);
  RandomWalkSession s(g, 1, 1, 0, 1);
  EXPECT_TRUE(s.delivered());
  EXPECT_EQ(s.transmissions(), 0u);
}

TEST(RandomWalkSession, IsolatedNodeExhaustsTtl) {
  graph::Graph g = graph::GraphBuilder(2).build();
  RandomWalkSession s(g, 0, 1, 5, 13);
  while (!s.exhausted()) s.step();
  EXPECT_FALSE(s.delivered());
}

// Regression: an isolated source with ttl == 0 ("unlimited") used to spin
// forever — exhausted() required ttl_ != 0 — while charging phantom
// transmissions for frames that were never sent.  A degree-0 current node
// must exhaust the session immediately, at zero cost.
TEST(RandomWalkSession, IsolatedSourceWithUnlimitedTtlExhaustsImmediately) {
  graph::Graph g = graph::GraphBuilder(3).build();
  RandomWalkSession s(g, 0, 2, /*ttl=*/0, /*seed=*/17);
  EXPECT_FALSE(s.exhausted());
  s.step();
  EXPECT_TRUE(s.exhausted());
  EXPECT_FALSE(s.delivered());
  EXPECT_EQ(s.transmissions(), 0u);
  s.step();  // further steps stay a no-op
  EXPECT_EQ(s.transmissions(), 0u);
}

TEST(RandomWalk, IsolatedSourceRouteTerminatesUncertified) {
  // Source isolated, any ttl (including unlimited): route() must return,
  // report zero transmissions, and certify nothing — a stranded walk is a
  // give-up, not a disconnection proof.
  graph::Graph g = graph::from_edges(4, {{1, 2}, {2, 3}});
  for (std::uint64_t ttl : {std::uint64_t{0}, std::uint64_t{100}}) {
    RandomWalkRouter router(g, ttl, /*seed=*/23);
    auto a = router.route(0, 3);
    EXPECT_FALSE(a.delivered) << "ttl=" << ttl;
    EXPECT_FALSE(a.failure_certified) << "ttl=" << ttl;
    EXPECT_EQ(a.transmissions, 0u) << "ttl=" << ttl;
  }
}

TEST(RandomWalkSession, WalkStrandedMidwayExhausts) {
  // A path into a pendant that is then isolated cannot happen on a static
  // graph, but a star centre with the walk started on a leaf of degree 1
  // exercises the deg-0 branch only via an isolated *source*; the session
  // must also exhaust when s itself is the target's component but t is
  // isolated — the walk just never delivers and the TTL fires normally.
  graph::Graph g = graph::from_edges(3, {{0, 1}});
  RandomWalkSession s(g, 0, 2, /*ttl=*/64, /*seed=*/5);
  while (!s.exhausted()) s.step();
  EXPECT_FALSE(s.delivered());
  EXPECT_EQ(s.transmissions(), 64u);  // real transmissions, fully charged
}

TEST(RandomWalkSession, ValidatesArguments) {
  graph::Graph g = graph::cycle(3);
  EXPECT_THROW(RandomWalkSession(g, 5, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(RandomWalkSession(g, 0, 9, 0, 1), std::invalid_argument);
}

TEST(RandomWalk, HittingTimeOrderOnPath) {
  // Expected hitting time end-to-end on a path of n vertices is ~n^2; with
  // n=16 expect well under n^3 but clearly above n.
  graph::Graph g = graph::path(16);
  util::Samples samples;
  for (int trial = 0; trial < 40; ++trial) {
    RandomWalkRouter router(g, 0, 1000 + trial);
    samples.add(static_cast<double>(router.route(0, 15).transmissions));
  }
  EXPECT_GT(samples.mean(), 15.0);
  EXPECT_LT(samples.mean(), 4096.0);
}

TEST(RandomWalk, DeterministicPerSeed) {
  graph::Graph g = graph::gnp(12, 0.3, 2);
  RandomWalkRouter a(g, 100000, 42), b(g, 100000, 42);
  auto ra = a.route(0, 11), rb = b.route(0, 11);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.transmissions, rb.transmissions);
}

}  // namespace
}  // namespace uesr::baselines
