// E14 kernel tests: the lossy TrafficEngine must stay SOUND — never a
// wrong certificate — under every composition of loss, duplication,
// one-sided links, churn, and load, and its cells must replay
// bit-identically for any thread count (PR 3 convention).
#include "baselines/workload.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/traffic.h"
#include "graph/churn.h"
#include "graph/generators.h"

namespace uesr::baselines {
namespace {

using graph::Graph;
using graph::NodeId;

/// Two components: certificates must join every tally.
Graph split_graph() {
  const Graph a = graph::connected_gnp(4, 0.6, 27);
  const Graph b = graph::connected_gnp(4, 0.6, 28);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const Graph* g : {&a, &b}) {
    const NodeId base_id = g == &b ? 4u : 0u;
    for (NodeId v = 0; v < g->num_nodes(); ++v)
      for (graph::Port q = 0; q < g->degree(v); ++q) {
        const graph::HalfEdge far = g->rotate(v, q);
        if (far.node > v || (far.node == v && far.port >= q))
          edges.emplace_back(base_id + v, base_id + far.node);
      }
  }
  return graph::from_edges(8, edges);
}

graph::NodeChurnScenario churn_scenario() {
  return graph::NodeChurnScenario(graph::connected_gnp(12, 0.3, 5), 0.3,
                                  0.45, 11);
}

TEST(LossyTraffic, ZeroLossConnectedDeliversEverything) {
  const Graph g = graph::connected_gnp(8, 0.4, 21);
  const Workload w = all_pairs_workload(8);
  core::LossyTrafficConfig cfg;
  const LossyTrafficCell cell =
      lossy_traffic_experiment(g, w, cfg, /*seq_seed=*/7, /*threads=*/1);
  EXPECT_EQ(cell.sessions, 56);
  EXPECT_EQ(cell.delivered, 56);
  EXPECT_EQ(cell.certified, 0);
  EXPECT_EQ(cell.uncertified, 0);
  EXPECT_EQ(cell.unsound, 0);
  // Stop-and-wait on perfect links: exactly one ack per successful hop.
  EXPECT_EQ(cell.wire_frames, 2 * cell.hops);
  EXPECT_EQ(cell.retransmits, 0u);
}

TEST(LossyTraffic, SelectiveRepeatAtZeroLossMatchesStopAndWaitVerdicts) {
  const Graph g = split_graph();
  const Workload w = all_pairs_workload(8);
  core::LossyTrafficConfig sw;
  core::LossyTrafficConfig sr = sw;
  sr.arq = core::ArqKind::kSelectiveRepeat;
  sr.window.frames_per_message = 2;
  const LossyTrafficCell a = lossy_traffic_experiment(g, w, sw, 7, 1);
  const LossyTrafficCell b = lossy_traffic_experiment(g, w, sr, 7, 1);
  // Same walks, same verdicts — the ARQ only changes the wire framing.
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.uncertified, 0);
  EXPECT_EQ(b.uncertified, 0);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.unsound, 0);
  EXPECT_EQ(b.unsound, 0);
  EXPECT_GT(a.certified, 0);  // the split really produced certificates
}

// The adversarial static sweeps: dup-only, loss-only, loss+dup, and the
// one-sided regime, for both ARQs.  Soundness is absolute (unsound == 0)
// and every session resolves to exactly one verdict.
TEST(LossyTraffic, StaticRegimeSweepsStaySound) {
  const Graph g = split_graph();
  const Workload w = all_pairs_workload(8);
  struct Regime {
    const char* name;
    double loss, dup, one_sided;
  };
  const Regime regimes[] = {
      {"dup-only", 0.0, 0.6, 0.0},
      {"loss-only", 0.25, 0.0, 0.0},
      {"loss+dup", 0.2, 0.3, 0.0},
      {"one-sided", 0.05, 0.0, 0.15},
  };
  for (const Regime& r : regimes) {
    for (core::ArqKind arq :
         {core::ArqKind::kStopAndWait, core::ArqKind::kSelectiveRepeat}) {
      core::LossyTrafficConfig cfg;
      cfg.link.loss = r.loss;
      cfg.link.dup = r.dup;
      cfg.link.latency_max = 4;
      cfg.one_sided_down = r.one_sided;
      cfg.arq = arq;
      cfg.reliable.max_retries = 6;
      cfg.window.max_retries = 6;
      cfg.window.frames_per_message = 2;
      cfg.window.window = 2;
      const LossyTrafficCell cell =
          lossy_traffic_experiment(g, w, cfg, 99, 1);
      EXPECT_EQ(cell.unsound, 0) << r.name;
      EXPECT_EQ(cell.delivered + cell.certified + cell.uncertified,
                cell.sessions)
          << r.name;
    }
  }
}

// Dup alone can never exhaust a budget: every session still resolves hard.
TEST(LossyTraffic, DupOnlyNeverDegradesToUncertified) {
  const Graph g = split_graph();
  const Workload w = all_pairs_workload(8);
  core::LossyTrafficConfig cfg;
  cfg.link.dup = 1.0;  // constant latency: the adaptive RTO never fires
  const LossyTrafficCell cell = lossy_traffic_experiment(g, w, cfg, 5, 1);
  EXPECT_EQ(cell.uncertified, 0);
  EXPECT_EQ(cell.unsound, 0);
  EXPECT_EQ(cell.retransmits, 0u);
}

// The composed fault regime of the tentpole: links flap (churn epochs) AND
// drop frames (lossy channel) in one replayable run.
TEST(LossyTraffic, ComposedLossAndChurnStaysSound) {
  auto sc = churn_scenario();
  const Workload w = all_pairs_workload(12);
  for (core::ArqKind arq :
       {core::ArqKind::kStopAndWait, core::ArqKind::kSelectiveRepeat}) {
    core::LossyTrafficConfig cfg;
    cfg.link.loss = 0.1;
    cfg.arq = arq;
    cfg.reliable.max_retries = 5;
    cfg.window.max_retries = 5;
    cfg.window.frames_per_message = 4;
    const LossyTrafficCell cell = lossy_traffic_experiment(
        sc, /*epoch_period=*/64, /*max_epochs=*/12, w, cfg, 17, 1);
    EXPECT_EQ(cell.sessions, 132);
    EXPECT_EQ(cell.unsound, 0);
    EXPECT_EQ(cell.delivered + cell.certified + cell.uncertified,
              cell.sessions);
  }
}

// Termination under the worst case: a dead channel blocks every session
// each epoch; once the schedule freezes the engine must resolve them all
// to kUncertified instead of spinning.
TEST(LossyTraffic, FrozenScheduleResolvesBlockedSessionsToUncertified) {
  auto sc = churn_scenario();
  const Workload w = all_pairs_workload(8);
  core::LossyTrafficConfig cfg;
  cfg.link.loss = 1.0;
  cfg.reliable.max_retries = 2;
  const LossyTrafficCell cell =
      lossy_traffic_experiment(sc, 32, /*max_epochs=*/3, w, cfg, 23, 1);
  EXPECT_EQ(cell.sessions, 56);
  EXPECT_EQ(cell.delivered, 0);
  EXPECT_EQ(cell.certified, 0);
  EXPECT_EQ(cell.uncertified, 56);
  EXPECT_EQ(cell.unsound, 0);
}

TEST(LossyTraffic, AdmitRejectsNonRouteSessions) {
  const Graph g = graph::connected_gnp(8, 0.4, 3);
  core::TrafficOptions opt;
  opt.lossy = core::LossyTrafficConfig{};
  core::TrafficEngine engine(g, opt);
  core::SessionSpec spec;
  spec.kind = core::TrafficKind::kBroadcast;
  spec.s = 0;
  EXPECT_THROW(engine.admit(spec), std::invalid_argument);
  spec.kind = core::TrafficKind::kHybrid;
  spec.t = 1;
  EXPECT_THROW(engine.admit(spec), std::invalid_argument);
}

// The E14 headline comparison: at loss 0.1 the pipelined window moves a
// multi-frame payload in measurably less virtual time per delivered route
// than stop-and-wait pacing (window = 1) of the same framing.
TEST(LossyTraffic, SelectiveRepeatBeatsWindowOnePacingAtLossTen) {
  const Graph g = graph::connected_gnp(10, 0.35, 31);
  const Workload w = all_pairs_workload(10);
  core::LossyTrafficConfig paced;
  paced.link.loss = 0.1;
  paced.arq = core::ArqKind::kSelectiveRepeat;
  paced.window.frames_per_message = 16;
  paced.window.max_retries = 16;
  paced.window.window = 1;
  core::LossyTrafficConfig pipelined = paced;
  pipelined.window.window = 16;
  const LossyTrafficCell slow = lossy_traffic_experiment(g, w, paced, 7, 1);
  const LossyTrafficCell fast =
      lossy_traffic_experiment(g, w, pipelined, 7, 1);
  ASSERT_GT(slow.delivered, 0);
  ASSERT_GT(fast.delivered, 0);
  const double slow_vtime =
      static_cast<double>(slow.vtime_delivered) / slow.delivered;
  const double fast_vtime =
      static_cast<double>(fast.vtime_delivered) / fast.delivered;
  EXPECT_LT(fast_vtime, slow_vtime);
  EXPECT_EQ(slow.unsound, 0);
  EXPECT_EQ(fast.unsound, 0);
}

// The PR 3 determinism contract extended to E14: every cell of the lossy
// traffic kernel is bit-identical for any thread count.
TEST(ThreadInvariance, LossyTrafficStatic) {
  const Graph g = split_graph();
  const Workload w = poisson_workload(8, 48, 1.5, 77);
  core::LossyTrafficConfig cfg;
  cfg.link.loss = 0.15;
  cfg.link.dup = 0.05;
  cfg.link.latency_max = 4;
  cfg.one_sided_down = 0.05;
  cfg.reliable.max_retries = 6;
  const LossyTrafficCell base = lossy_traffic_experiment(g, w, cfg, 123, 1);
  EXPECT_EQ(base.unsound, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, lossy_traffic_experiment(g, w, cfg, 123, t))
        << "threads=" << t;
}

TEST(ThreadInvariance, LossyTrafficChurn) {
  auto sc = churn_scenario();
  const Workload w = poisson_workload(12, 48, 1.0, 91);
  core::LossyTrafficConfig cfg;
  cfg.link.loss = 0.1;
  cfg.arq = core::ArqKind::kSelectiveRepeat;
  cfg.window.frames_per_message = 4;
  cfg.window.max_retries = 5;
  const LossyTrafficCell base =
      lossy_traffic_experiment(sc, 48, 10, w, cfg, 321, 1);
  EXPECT_EQ(base.unsound, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, lossy_traffic_experiment(sc, 48, 10, w, cfg, 321, t))
        << "threads=" << t;
}

}  // namespace
}  // namespace uesr::baselines
