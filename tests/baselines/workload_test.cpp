#include "baselines/workload.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "graph/churn.h"
#include "graph/generators.h"

namespace uesr::baselines {
namespace {

using core::SessionSpec;
using core::TrafficKind;
using graph::NodeId;

bool same_schedule(const Workload& a, const Workload& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionSpec& x = a.sessions[i];
    const SessionSpec& y = b.sessions[i];
    if (x.kind != y.kind || x.s != y.s || x.t != y.t ||
        x.admit_at != y.admit_at || x.hybrid_ttl != y.hybrid_ttl)
      return false;
  }
  return true;
}

TEST(Workload, PoissonIsAPureFunctionOfItsSeed) {
  Workload a = poisson_workload(20, 64, 3.0, 42);
  Workload b = poisson_workload(20, 64, 3.0, 42);
  EXPECT_TRUE(same_schedule(a, b));
  Workload c = poisson_workload(20, 64, 3.0, 43);
  EXPECT_FALSE(same_schedule(a, c));
}

TEST(Workload, PoissonArrivalsAreMonotoneAndValid) {
  Workload w = poisson_workload(16, 100, 2.5, 7);
  ASSERT_EQ(w.sessions.size(), 100u);
  std::uint64_t last = 0;
  for (const SessionSpec& s : w.sessions) {
    EXPECT_GE(s.admit_at, last);
    last = s.admit_at;
    EXPECT_LT(s.s, 16u);
    EXPECT_LT(s.t, 16u);
    EXPECT_NE(s.s, s.t);
    EXPECT_EQ(s.kind, TrafficKind::kRoute);
  }
  EXPECT_GT(last, 0u);  // arrivals actually spread out
}

TEST(Workload, HotspotTargetsTheSink) {
  Workload w = hotspot_workload(12, 40, 5, 1.0, 9);
  for (const SessionSpec& s : w.sessions) {
    EXPECT_EQ(s.t, 5u);
    EXPECT_NE(s.s, 5u);
    EXPECT_LT(s.s, 12u);
  }
}

TEST(Workload, AllPairsEnumeratesEveryOrderedPairAtTickZero) {
  Workload w = all_pairs_workload(7);
  EXPECT_EQ(w.sessions.size(), 42u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const SessionSpec& s : w.sessions) {
    EXPECT_NE(s.s, s.t);
    EXPECT_EQ(s.admit_at, 0u);
    seen.insert({s.s, s.t});
  }
  EXPECT_EQ(seen.size(), 42u);  // all distinct
}

TEST(Workload, MixedBlendsAllThreeKinds) {
  Workload w = mixed_workload(10, 64, 1.5, 128, 3);
  int routes = 0, hybrids = 0, broadcasts = 0;
  for (const SessionSpec& s : w.sessions) {
    switch (s.kind) {
      case TrafficKind::kRoute: ++routes; break;
      case TrafficKind::kHybrid:
        ++hybrids;
        EXPECT_EQ(s.hybrid_ttl, 128u);
        break;
      case TrafficKind::kBroadcast: ++broadcasts; break;
    }
  }
  EXPECT_GT(routes, 0);
  EXPECT_GT(hybrids, 0);
  EXPECT_GT(broadcasts, 0);
  EXPECT_EQ(routes + hybrids + broadcasts, 64);
}

TEST(OpenLoopWorkload, IsAPureFunctionOfItsSeedAndReplaysViaFresh) {
  OpenLoopWorkload::Config cfg;
  cfg.cluster_size = 10;
  cfg.clusters = 4;
  cfg.sessions = 200;
  cfg.mean_interarrival = 1.5;
  cfg.mean_lifetime = 25.0;
  cfg.seed = 77;
  OpenLoopWorkload a(cfg), b(cfg);
  std::vector<SessionSpec> drained;
  while (auto s = a.next()) drained.push_back(*s);
  ASSERT_EQ(drained.size(), 200u);
  EXPECT_FALSE(a.next().has_value());  // exhaustion is final
  // A sibling built from the same Config emits the identical stream...
  for (const SessionSpec& x : drained) {
    const auto y = b.next();
    ASSERT_TRUE(y.has_value());
    EXPECT_EQ(x.s, y->s);
    EXPECT_EQ(x.t, y->t);
    EXPECT_EQ(x.admit_at, y->admit_at);
    EXPECT_EQ(x.depart_at, y->depart_at);
  }
  // ...and so does a rewound clone of the drained source itself.
  OpenLoopWorkload c = a.fresh();
  for (const SessionSpec& x : drained) {
    const auto y = c.next();
    ASSERT_TRUE(y.has_value());
    EXPECT_EQ(x.admit_at, y->admit_at);
    EXPECT_EQ(x.s, y->s);
    EXPECT_EQ(x.t, y->t);
  }
  // A different seed diverges.
  cfg.seed = 78;
  OpenLoopWorkload d(cfg);
  bool differs = false;
  for (const SessionSpec& x : drained) {
    const auto y = d.next();
    differs = differs || x.s != y->s || x.t != y->t ||
              x.admit_at != y->admit_at;
  }
  EXPECT_TRUE(differs);
}

TEST(OpenLoopWorkload, ArrivalsMonotoneClusterLocalAndDeparturesValid) {
  OpenLoopWorkload::Config cfg;
  cfg.cluster_size = 8;
  cfg.clusters = 16;
  cfg.sessions = 500;
  cfg.mean_interarrival = 0.7;
  cfg.mean_lifetime = 12.0;
  cfg.seed = 3;
  OpenLoopWorkload w(cfg);
  std::uint64_t last = 0;
  std::set<NodeId> clusters_hit;
  while (auto s = w.next()) {
    EXPECT_GE(s->admit_at, last);  // the pull contract's precondition
    last = s->admit_at;
    EXPECT_EQ(s->kind, TrafficKind::kRoute);
    EXPECT_NE(s->s, s->t);
    EXPECT_LT(s->s, 128u);
    EXPECT_LT(s->t, 128u);
    // Cluster-local: both endpoints in the same copy.
    EXPECT_EQ(s->s / 8, s->t / 8);
    clusters_hit.insert(s->s / 8);
    ASSERT_GT(s->depart_at, s->admit_at);  // lifetime > 0 => always set
  }
  EXPECT_GT(clusters_hit.size(), 8u);  // arrivals spread across copies
  // lifetime 0: sessions never depart.
  cfg.mean_lifetime = 0.0;
  OpenLoopWorkload forever(cfg);
  while (auto s = forever.next()) EXPECT_EQ(s->depart_at, 0u);
}

TEST(Workload, Validation) {
  EXPECT_THROW(poisson_workload(1, 4, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(poisson_workload(8, -1, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(poisson_workload(8, 4, -1.0, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_workload(8, 4, 9, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(all_pairs_workload(1), std::invalid_argument);
  OpenLoopWorkload::Config bad;
  bad.cluster_size = 1;
  EXPECT_THROW(OpenLoopWorkload{bad}, std::invalid_argument);
  bad.cluster_size = 4;
  bad.clusters = 0;
  EXPECT_THROW(OpenLoopWorkload{bad}, std::invalid_argument);
  bad.clusters = 2;
  bad.mean_lifetime = -1.0;
  EXPECT_THROW(OpenLoopWorkload{bad}, std::invalid_argument);
}

TEST(TrafficExperiment, StaticCellShapeIsSane) {
  graph::Graph g = graph::from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {5, 6}, {6, 7}});
  Workload w = mixed_workload(8, 32, 2.0, 64, 5);
  TrafficCell cell = traffic_experiment(g, w, 0x5eed0001, 1);
  EXPECT_EQ(cell.sessions, 32);
  // Every session terminated with some verdict (deliveries include
  // broadcasts; 4 is disconnected from {5,6,7} and {0..3}).
  EXPECT_EQ(cell.delivered + cell.certified + cell.exhausted, 32);
  EXPECT_GT(cell.transmissions, 0u);
  EXPECT_GE(cell.p99_tx, cell.p50_tx);
  EXPECT_GT(cell.final_clock, 0u);
}

// The E12 determinism contract for the churn-overlaid kernel.
TEST(ThreadInvariance, ChurnOverlaidTrafficExperiment) {
  graph::NodeChurnScenario sc(graph::connected_gnp(16, 0.25, 3),
                              /*p_leave=*/0.1, /*p_join=*/0.5, 13);
  Workload w = poisson_workload(16, 48, 4.0, 21);
  const TrafficCell base =
      traffic_experiment(sc, /*epoch_period=*/48, /*max_epochs=*/16, w,
                         0x5eed0001, /*threads=*/1);
  EXPECT_EQ(base.sessions, 48);
  EXPECT_EQ(base.delivered + base.certified, 48);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, traffic_experiment(sc, 48, 16, w, 0x5eed0001, t))
        << "threads=" << t;
}

TEST(ThreadInvariance, StaticMixedTrafficExperiment) {
  graph::Graph g = graph::torus(4, 4);
  Workload w = mixed_workload(16, 96, 1.0, 256, 17);
  const TrafficCell base = traffic_experiment(g, w, 0x5eed0001, 1);
  EXPECT_EQ(base.sessions, 96);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, traffic_experiment(g, w, 0x5eed0001, t))
        << "threads=" << t;
}

}  // namespace
}  // namespace uesr::baselines
