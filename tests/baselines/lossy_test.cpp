#include "baselines/lossy.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/flooding.h"
#include "graph/generators.h"

namespace uesr::baselines {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(FloodLossy, AtZeroLossMatchesPerfectFlooding) {
  const Graph g = graph::connected_gnp(14, 0.3, 3);
  for (NodeId t = 1; t < g.num_nodes(); ++t) {
    const FloodResult perfect = flood(g, 0, t);
    const FloodResult lossy = flood_lossy(g, 0, t, 0.0, /*seed=*/t);
    EXPECT_EQ(perfect.delivered, lossy.delivered);
    EXPECT_EQ(perfect.transmissions, lossy.transmissions);
    EXPECT_EQ(perfect.rounds, lossy.rounds);
    EXPECT_EQ(perfect.nodes_reached, lossy.nodes_reached);
  }
}

TEST(FloodLossy, FullLossReachesNoOneButPaysTheSource) {
  const Graph g = graph::connected_gnp(10, 0.3, 5);
  const FloodResult r = flood_lossy(g, 0, 5, 1.0, 7);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.nodes_reached, 1u);              // only s itself
  EXPECT_EQ(r.transmissions, g.degree(0));     // its copies all died
}

TEST(FloodLossy, SeedDeterministic) {
  const Graph g = graph::connected_gnp(16, 0.25, 9);
  const FloodResult a = flood_lossy(g, 0, 11, 0.3, 42);
  const FloodResult b = flood_lossy(g, 0, 11, 0.3, 42);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.nodes_reached, b.nodes_reached);
}

TEST(GossipLossy, ProbabilityOneIsExactlyLossyFlooding) {
  const Graph g = graph::connected_gnp(14, 0.3, 13);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const FloodResult f = flood_lossy(g, 0, 9, 0.2, seed);
    const FloodResult go = gossip_lossy(g, 0, 9, 0.2, 1.0, seed);
    EXPECT_EQ(f.delivered, go.delivered);
    EXPECT_EQ(f.transmissions, go.transmissions);
    EXPECT_EQ(f.nodes_reached, go.nodes_reached);
  }
}

TEST(GossipLossy, LowerPMeansNoMoreTransmissions) {
  const Graph g = graph::connected_gnp(20, 0.25, 17);
  std::uint64_t tx_full = 0, tx_half = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    tx_full += gossip_lossy(g, 0, 15, 0.0, 1.0, seed).transmissions;
    tx_half += gossip_lossy(g, 0, 15, 0.0, 0.4, seed).transmissions;
  }
  EXPECT_LT(tx_half, tx_full);
}

TEST(GossipLossy, SourceAlwaysTransmitsEvenAtPZero) {
  const Graph g = graph::connected_gnp(8, 0.5, 19);
  const FloodResult r = gossip_lossy(g, 0, 5, 0.0, 0.0, 3);
  EXPECT_GE(r.transmissions, g.degree(0));
  EXPECT_GT(r.nodes_reached, 1u);  // neighbours hear it; they just stay mute
}

TEST(LossyExperiment, ErrorsAreZeroAcrossRegimes) {
  const Graph g = graph::connected_gnp(12, 0.3, 21);
  for (double loss : {0.0, 0.1, 0.3}) {
    LossyParams params;
    params.loss = loss;
    params.dup = 0.05;
    const LossyCell cell = lossy_experiment(g, 20, params, 55);
    EXPECT_EQ(cell.pairs, 20);
    EXPECT_EQ(cell.ues_errors, 0) << "loss=" << loss;
    EXPECT_EQ(cell.ues_delivered + cell.ues_certified + cell.ues_uncertified,
              20)
        << "loss=" << loss;
  }
}

TEST(LossyExperiment, ZeroLossOnConnectedGraphDeliversEverything) {
  const Graph g = graph::connected_gnp(10, 0.35, 23);
  const LossyCell cell = lossy_experiment(g, 15, LossyParams{}, 77);
  EXPECT_EQ(cell.ues_delivered, 15);
  EXPECT_EQ(cell.ues_uncertified, 0);
  EXPECT_EQ(cell.flood_delivered, 15);
  EXPECT_EQ(cell.ues_errors, 0);
  // Stop-and-wait on perfect links: exactly one ack per successful hop.
  EXPECT_EQ(cell.ues_frames, 2 * cell.ues_hops);
}

TEST(LossyExperiment, Validation) {
  const Graph one = graph::from_edges(1, {});
  EXPECT_THROW(lossy_experiment(one, 5, LossyParams{}, 1),
               std::invalid_argument);
  const Graph g = graph::cycle(4);
  EXPECT_THROW(lossy_experiment(g, -1, LossyParams{}, 1),
               std::invalid_argument);
}

// The PR 3 determinism contract extended to E13: every cell of the lossy
// report kernel is bit-identical for any thread count.
TEST(ThreadInvariance, LossyExperimentReports) {
  const Graph g = graph::connected_gnp(14, 0.3, 25);
  LossyParams params;
  params.loss = 0.15;
  params.dup = 0.05;
  params.latency_max = 4;
  params.reliable.max_retries = 6;
  params.reliable.rto = 4;
  const LossyCell base = lossy_experiment(g, 16, params, 123, /*threads=*/1);
  EXPECT_EQ(base.pairs, 16);
  EXPECT_EQ(base.ues_errors, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, lossy_experiment(g, 16, params, 123, t))
        << "threads=" << t;
}

TEST(ThreadInvariance, LossyExperimentReportsSplitGraph) {
  // Two components: failure certificates join the tally and must replay
  // identically too.
  const Graph a = graph::connected_gnp(6, 0.5, 27);
  const Graph b = graph::connected_gnp(6, 0.5, 28);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const Graph* g : {&a, &b}) {
    const NodeId base_id = g == &b ? 6u : 0u;
    for (NodeId v = 0; v < g->num_nodes(); ++v)
      for (graph::Port q = 0; q < g->degree(v); ++q) {
        const graph::HalfEdge far = g->rotate(v, q);
        if (far.node > v || (far.node == v && far.port >= q))
          edges.emplace_back(base_id + v, base_id + far.node);
      }
  }
  const Graph split = graph::from_edges(12, edges);
  LossyParams params;
  params.loss = 0.1;
  params.reliable.max_retries = 20;
  params.reliable.rto = 2;
  const LossyCell base = lossy_experiment(split, 14, params, 321, 1);
  EXPECT_EQ(base.ues_errors, 0);
  EXPECT_GT(base.ues_certified + base.ues_uncertified, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, lossy_experiment(split, 14, params, 321, t))
        << "threads=" << t;
}

}  // namespace
}  // namespace uesr::baselines
