#include "baselines/flooding.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::baselines {
namespace {

TEST(Flooding, DeliversIffConnected) {
  graph::Graph g = graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_TRUE(flood(g, 0, 2).delivered);
  EXPECT_FALSE(flood(g, 0, 3).delivered);
  EXPECT_FALSE(flood(g, 0, 5).delivered);
}

TEST(Flooding, TransmissionsAreComponentDegreeSum) {
  graph::Graph g = graph::petersen();
  auto r = flood(g, 0, 9);
  EXPECT_EQ(r.transmissions, 30u);  // 10 vertices x degree 3
  EXPECT_EQ(r.nodes_reached, 10u);
}

TEST(Flooding, RoundsEqualBfsDistance) {
  graph::Graph g = graph::path(7);
  auto r = flood(g, 0, 5);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.rounds, 5u);
}

TEST(Flooding, StopsAtComponentBoundary) {
  graph::Graph g = graph::from_edges(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  auto r = flood(g, 0, 2);
  EXPECT_EQ(r.nodes_reached, 3u);
  EXPECT_EQ(r.transmissions, 4u);  // degrees 1+2+1 within the component
}

TEST(Flooding, RouterInterfaceCertifiesFailure) {
  graph::Graph g = graph::from_edges(4, {{0, 1}, {2, 3}});
  FloodingRouter router(g);
  auto a = router.route(0, 3);
  EXPECT_FALSE(a.delivered);
  EXPECT_TRUE(a.failure_certified);
  auto b = router.route(0, 1);
  EXPECT_TRUE(b.delivered);
}

TEST(Flooding, SelfRoute) {
  graph::Graph g = graph::cycle(4);
  auto r = flood(g, 2, 2);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Flooding, Validation) {
  graph::Graph g = graph::cycle(3);
  EXPECT_THROW(flood(g, 5, 0), std::invalid_argument);
  EXPECT_THROW(flood(g, 0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::baselines
