// The §2.12 chaos layer end to end: the seeded soundness fuzzer (hundreds
// of sampled FaultPlans across a graph zoo, every verdict audited against
// the ground-truth component map), the E15 kernel's degeneration and
// determinism pins, and the TrafficEngine composition — scripted plus
// sampled chaos through both lossy lanes, per-link RTO engaged.
#include "baselines/chaos.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/workload.h"
#include "core/traffic.h"
#include "graph/churn.h"
#include "graph/generators.h"
#include "net/faults.h"

namespace uesr::baselines {
namespace {

using graph::Graph;
using graph::NodeId;

/// Two disjoint connected halves: cross-component pairs force the failure
/// certificate (or its budget-death degradation) into every tally.
Graph split_gnp(NodeId half, double p, std::uint64_t seed) {
  const Graph a = graph::connected_gnp(half, p, seed);
  const Graph b = graph::connected_gnp(half, p, seed + 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const Graph* g : {&a, &b}) {
    const NodeId base_id = g == &b ? half : 0u;
    for (NodeId v = 0; v < g->num_nodes(); ++v)
      for (graph::Port q = 0; q < g->degree(v); ++q) {
        const graph::HalfEdge far = g->rotate(v, q);
        if (far.node > v || (far.node == v && far.port >= q))
          edges.emplace_back(base_id + v, base_id + far.node);
      }
  }
  return graph::from_edges(2 * half, edges);
}

/// The fuzzer regime: every fault class engaged at once — baseline loss,
/// duplication and corruption on the channel, plus sampled crash windows,
/// corruption bursts and brownouts per trial.
ChaosParams stormy(core::ArqKind arq) {
  ChaosParams p;
  p.loss = 0.05;
  p.dup = 0.02;
  p.corrupt = 0.03;
  p.latency_max = 3;
  p.reliable.max_retries = 8;
  p.window.max_retries = 8;
  p.window.frames_per_message = 3;
  p.window.window = 2;
  p.arq = arq;
  p.chaos.horizon = 1 << 10;
  p.chaos.slot = 64;
  p.chaos.crash_rate = 0.05;
  p.chaos.crash_min = 16;
  p.chaos.crash_max = 96;
  p.chaos.corrupt_burst_rate = 0.05;
  p.chaos.corrupt_level = 0.4;
  p.chaos.burst_min = 8;
  p.chaos.burst_max = 48;
  p.chaos.brownout_rate = 0.03;
  p.chaos.brownout_min = 8;
  p.chaos.brownout_max = 48;
  return p;
}

// ---- the seeded soundness fuzzer ---------------------------------------
// Each trial of chaos_experiment runs under its OWN sampled FaultPlan
// (seed counter_hash(counter_hash(seed, i), 1)), so pairs == sampled
// plans.  Across the zoo and both ARQs this sweeps 200+ random fault
// schedules; the §2.12 acceptance gate is unsound == 0 on every one.

TEST(ChaosFuzzer, HundredsOfSampledPlansAcrossTheZooStaySound) {
  const std::vector<std::pair<std::string, Graph>> zoo = {
      {"cycle9", graph::cycle(9)},
      {"k6", graph::complete(6)},
      {"grid3x4", graph::grid(3, 4)},
      {"petersen", graph::petersen()},
      {"gnp14", graph::connected_gnp(14, 0.25, 33)},
      {"split10", split_gnp(5, 0.5, 35)},
      {"tree13", graph::random_tree(13, 9)},
  };
  ChaosCell total;
  std::uint64_t trial_seed = 0xc4a0;
  for (core::ArqKind arq :
       {core::ArqKind::kStopAndWait, core::ArqKind::kSelectiveRepeat}) {
    for (const auto& [name, g] : zoo) {
      const ChaosCell cell = chaos_experiment(g, 16, stormy(arq), ++trial_seed);
      EXPECT_EQ(cell.unsound, 0) << name;
      EXPECT_EQ(cell.delivered + cell.certified + cell.uncertified, cell.pairs)
          << name;
      total.pairs += cell.pairs;
      total.delivered += cell.delivered;
      total.uncertified += cell.uncertified;
      total.corrupted += cell.corrupted;
      total.crash_drops += cell.crash_drops;
      total.retransmits += cell.retransmits;
    }
  }
  EXPECT_GE(total.pairs, 200);  // >= 200 independently sampled FaultPlans
  // The chaos really engaged: frames were damaged, crashed endpoints
  // really dropped traffic, timers really fired — and the stack still
  // delivered most of the time.
  EXPECT_GT(total.corrupted, 0u);
  EXPECT_GT(total.crash_drops, 0u);
  EXPECT_GT(total.retransmits, 0u);
  EXPECT_GT(total.delivered, total.pairs / 2);
}

// ---- degeneration and audit pins ---------------------------------------

TEST(ChaosExperiment, AllKnobsZeroDegeneratesToThePerfectChannel) {
  const Graph g = graph::connected_gnp(10, 0.35, 23);
  const ChaosCell cell = chaos_experiment(g, 15, ChaosParams{}, 77);
  EXPECT_EQ(cell.pairs, 15);
  EXPECT_EQ(cell.delivered, 15);
  EXPECT_EQ(cell.certified, 0);
  EXPECT_EQ(cell.uncertified, 0);
  EXPECT_EQ(cell.unsound, 0);
  EXPECT_EQ(cell.corrupted, 0u);
  EXPECT_EQ(cell.crash_drops, 0u);
  EXPECT_EQ(cell.retransmits, 0u);
  // Stop-and-wait on perfect links: exactly one ack per successful hop.
  EXPECT_EQ(cell.frames, 2 * cell.hops);
}

TEST(ChaosExperiment, SplitGraphCertificatesSurviveChaos) {
  const Graph g = split_gnp(6, 0.4, 41);
  ChaosParams p = stormy(core::ArqKind::kStopAndWait);
  p.reliable.max_retries = 20;  // let full failed walks complete
  const ChaosCell cell = chaos_experiment(g, 30, p, 91);
  EXPECT_EQ(cell.unsound, 0);
  // Cross-component pairs can only certify or degrade — never deliver
  // (delivery would be unsound and counted above).
  EXPECT_GT(cell.certified + cell.uncertified, 0);
}

TEST(ChaosExperiment, Validation) {
  const Graph one = graph::from_edges(1, {});
  EXPECT_THROW(chaos_experiment(one, 5, ChaosParams{}, 1),
               std::invalid_argument);
  const Graph g = graph::cycle(4);
  EXPECT_THROW(chaos_experiment(g, -1, ChaosParams{}, 1),
               std::invalid_argument);
  ChaosParams bad;
  bad.chaos.crash_rate = 1.5;
  EXPECT_THROW(chaos_experiment(g, 5, bad, 1), std::invalid_argument);
}

// The PR 3 determinism contract extended to E15: every cell of the chaos
// kernel is bit-identical for any thread count.
TEST(ThreadInvariance, ChaosExperimentReports) {
  const Graph g = graph::connected_gnp(12, 0.3, 25);
  const ChaosParams p = stormy(core::ArqKind::kSelectiveRepeat);
  const ChaosCell base = chaos_experiment(g, 16, p, 123, /*threads=*/1);
  EXPECT_EQ(base.pairs, 16);
  EXPECT_EQ(base.unsound, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, chaos_experiment(g, 16, p, 123, t)) << "threads=" << t;
}

TEST(ThreadInvariance, ChaosExperimentReportsSplitGraph) {
  const Graph g = split_gnp(6, 0.5, 27);
  const ChaosParams p = stormy(core::ArqKind::kStopAndWait);
  const ChaosCell base = chaos_experiment(g, 14, p, 321, 1);
  EXPECT_EQ(base.unsound, 0);
  for (unsigned t : {4u, 8u})
    EXPECT_EQ(base, chaos_experiment(g, 14, p, 321, t)) << "threads=" << t;
}

// ---- the TrafficEngine composition -------------------------------------
// Scripted faults arm into EVERY session's private channel; a ChaosConfig
// additionally samples a per-session (static) or per-(session, epoch)
// (dynamic) plan.  Certificates must stay sound and every session must
// terminate — crashed peers block, back off, and degrade to uncertified.

net::ChaosConfig traffic_chaos() {
  net::ChaosConfig cfg;
  cfg.horizon = 1 << 10;
  cfg.slot = 64;
  cfg.crash_rate = 0.04;
  cfg.crash_min = 16;
  cfg.crash_max = 64;
  cfg.corrupt_burst_rate = 0.04;
  cfg.corrupt_level = 0.4;
  cfg.brownout_rate = 0.02;
  return cfg;
}

TEST(ChaosTraffic, StaticEngineUnderScriptedAndSampledChaosStaysSound) {
  const Graph g = split_gnp(4, 0.6, 27);
  const Workload w = all_pairs_workload(8);
  for (core::ArqKind arq :
       {core::ArqKind::kStopAndWait, core::ArqKind::kSelectiveRepeat}) {
    core::LossyTrafficConfig cfg;
    cfg.link.loss = 0.05;
    cfg.link.corrupt = 0.05;
    cfg.arq = arq;
    cfg.reliable.max_retries = 8;
    cfg.window.max_retries = 8;
    cfg.window.frames_per_message = 2;
    // A scripted crash window and corruption burst on top of sampled chaos
    // (node 1 exists in every cubic reduction of a 8-node graph).
    cfg.faults.crash(1, 40, 90).corruption_burst(120, 200, 0.5);
    cfg.chaos = traffic_chaos();
    const LossyTrafficCell cell = lossy_traffic_experiment(g, w, cfg, 7, 1);
    EXPECT_EQ(cell.sessions, 56);
    EXPECT_EQ(cell.unsound, 0);
    EXPECT_EQ(cell.delivered + cell.certified + cell.uncertified,
              cell.sessions);
  }
}

TEST(ChaosTraffic, DynamicEngineUnderChaosStaysSoundAndTerminates) {
  // Churn epochs, channel loss, AND sampled chaos plans per (session,
  // epoch) — the full composed fault regime in one replayable run.
  graph::NodeChurnScenario sc(graph::connected_gnp(12, 0.3, 5), 0.3, 0.45,
                              11);
  const Workload w = poisson_workload(12, 24, 1.0, 91);
  core::LossyTrafficConfig cfg;
  cfg.link.loss = 0.05;
  cfg.reliable.max_retries = 5;
  cfg.chaos = traffic_chaos();
  const LossyTrafficCell cell =
      lossy_traffic_experiment(sc, /*epoch_period=*/48, /*max_epochs=*/10, w,
                               cfg, 17, 1);
  EXPECT_EQ(cell.unsound, 0);
  EXPECT_EQ(cell.delivered + cell.certified + cell.uncertified,
            cell.sessions);
}

TEST(ChaosTraffic, PerLinkRtoRunsThroughTheEngineThreadInvariantly) {
  const Graph g = graph::connected_gnp(10, 0.35, 31);
  const Workload w = poisson_workload(10, 32, 1.5, 77);
  for (core::ArqKind arq :
       {core::ArqKind::kStopAndWait, core::ArqKind::kSelectiveRepeat}) {
    core::LossyTrafficConfig cfg;
    cfg.link.loss = 0.1;
    cfg.link.latency_max = 6;
    cfg.arq = arq;
    cfg.reliable.max_retries = 8;
    cfg.reliable.per_link_rto = true;  // adaptive_rto defaults true
    cfg.window.max_retries = 8;
    cfg.window.frames_per_message = 2;
    cfg.window.per_link_rto = true;
    cfg.chaos = traffic_chaos();
    const LossyTrafficCell base = lossy_traffic_experiment(g, w, cfg, 57, 1);
    EXPECT_EQ(base.unsound, 0);
    EXPECT_GT(base.delivered, 0);
    for (unsigned t : {4u, 8u})
      EXPECT_EQ(base, lossy_traffic_experiment(g, w, cfg, 57, t))
          << "threads=" << t;
  }
}

}  // namespace
}  // namespace uesr::baselines
