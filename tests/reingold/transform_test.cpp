#include "reingold/transform.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/spectral.h"

namespace uesr::reingold {
namespace {

/// Tiny legal parameter set: d = 4, k = 1 -> D = 16.  H must be
/// NON-BIPARTITE: in the zig-zag product, moving inside a cloud costs two
/// H-steps (zig + zag across a self-loop), so a bipartite H can only reach
/// even H-distances and the product may disconnect — this is one concrete
/// reason Reingold's H is a genuine expander.  (A C16 "H" really does
/// break connectivity here; the test suite guards the lesson.)
TransformParams tiny_params() {
  static const ExpanderInfo h = find_expander(16, 4, 0xbeef, 30);
  TransformParams p;
  p.h = share(DenseRotationMap::materialize(h.rotation));
  p.k = 1;
  return p;
}

TEST(TransformParams, ValidatesTelescoping) {
  TransformParams p = tiny_params();
  EXPECT_NO_THROW(p.validate());
  TransformParams bad;
  bad.h = share(DenseRotationMap::from_graph(graph::cycle(12)));
  bad.k = 2;  // 12 != 2^4
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  TransformParams null;
  null.k = 2;
  EXPECT_THROW(null.validate(), std::invalid_argument);
}

TEST(Transform, LevelSizesAndDegree) {
  TransformParams p = tiny_params();
  auto g0 = share(pad_to_regular(graph::cycle(5), 16));
  auto ladder = transform_ladder(g0, p, 2);
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0]->num_vertices(), 5u);
  EXPECT_EQ(ladder[1]->num_vertices(), 5u * 16);
  EXPECT_EQ(ladder[2]->num_vertices(), 5u * 16 * 16);
  for (const auto& g : ladder) EXPECT_EQ(g->degree(), 16u);
}

TEST(Transform, LevelOneIsValidInvolution) {
  TransformParams p = tiny_params();
  auto g0 = share(pad_to_regular(graph::cycle(4), 16));
  auto g1 = transform_level(g0, p);
  DenseRotationMap m = DenseRotationMap::materialize(*g1);  // also validates
  EXPECT_EQ(m.num_vertices(), 64u);
}

TEST(Transform, PreservesConnectivity) {
  TransformParams p = tiny_params();
  auto g0 = share(pad_to_regular(graph::path(4), 16));
  auto ladder = transform_ladder(g0, p, 2);
  for (std::size_t lvl = 0; lvl < ladder.size(); ++lvl) {
    graph::Graph g = DenseRotationMap::materialize(*ladder[lvl]).to_graph();
    EXPECT_TRUE(graph::is_connected(g)) << "level " << lvl;
  }
}

TEST(Transform, PreservesDisconnection) {
  // Two components stay two components at every level.
  TransformParams p = tiny_params();
  graph::Graph g = graph::from_edges(4, {{0, 1}, {2, 3}});
  auto g0 = share(pad_to_regular(g, 16));
  auto g1 = transform_level(g0, p);
  // Vertex (0, a) and vertex (2, b) must stay separated.
  EXPECT_FALSE(oracle_connected(*g1, 0 * 16, 2 * 16));
  EXPECT_TRUE(oracle_connected(*g1, 0 * 16, 1 * 16));
}

TEST(Transform, MismatchedDegreeRejected) {
  TransformParams p = tiny_params();
  auto wrong = share(pad_to_regular(graph::cycle(4), 8));  // 8 != 16
  EXPECT_THROW(transform_level(wrong, p), std::invalid_argument);
}

TEST(LambdaOracle, AgreesWithExactOnKnownGraphs) {
  for (const graph::Graph& g :
       {graph::petersen(), graph::complete(8), graph::prism(5)}) {
    auto o = share(DenseRotationMap::from_graph(g));
    double est = lambda_oracle(*o, 1500, 7);
    EXPECT_NEAR(est, graph::lambda_exact(g), 1e-2) << graph::describe(g);
  }
}

TEST(OracleBfs, EccentricityMatchesGraphDiameterOnCycle) {
  auto o = share(DenseRotationMap::from_graph(graph::cycle(10)));
  EXPECT_EQ(oracle_eccentricity(*o, 0), 5u);
}

TEST(Transform, BipartiteHBreaksConnectivity) {
  // Negative control: with H = C16 (bipartite), cloud-internal moves can
  // only reach even H-distances and the product graph disconnects even
  // though G0 is connected.  This is why the base graph must be a real
  // (non-bipartite) expander.
  TransformParams p;
  p.h = share(DenseRotationMap::from_graph(graph::cycle(16)));
  p.k = 2;  // D = 2^4 = 16: parameters are legal, the spectrum is not
  EXPECT_NO_THROW(p.validate());
  auto g0 = share(pad_to_regular(graph::path(4), 16));
  auto g1 = transform_level(g0, p);
  graph::Graph g = DenseRotationMap::materialize(*g1).to_graph();
  EXPECT_FALSE(graph::is_connected(g));
}

TEST(Transform, SpectralGapDoesNotCollapse) {
  // With a weak H (C16) we cannot expect amplification, but the measured
  // lambda of level 1 must remain strictly below 1 when G0 is connected
  // and non-bipartite (structure sanity, not the full Reingold claim —
  // see bench E8 for the measured trajectory with a real expander H).
  TransformParams p = tiny_params();
  auto g0 = share(pad_to_regular(graph::lollipop(4, 2), 16));
  auto g1 = transform_level(g0, p);
  double l1 = lambda_oracle(*g1, 600, 3);
  EXPECT_LT(l1, 1.0 - 1e-4);
}

}  // namespace
}  // namespace uesr::reingold
