#include "reingold/products.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/spectral.h"
#include "reingold/expander.h"

namespace uesr::reingold {
namespace {

std::shared_ptr<const RotationOracle> oracle_of(const graph::Graph& g) {
  return share(DenseRotationMap::from_graph(g));
}

/// Involution property of any oracle, checked exhaustively.
void expect_involution(const RotationOracle& o) {
  for (std::uint64_t v = 0; v < o.num_vertices(); ++v)
    for (std::uint32_t i = 0; i < o.degree(); ++i) {
      Place p{v, i};
      Place q = o.rotate(p);
      ASSERT_LT(q.vertex, o.num_vertices());
      ASSERT_LT(q.edge, o.degree());
      EXPECT_EQ(o.rotate(q), p) << "v=" << v << " i=" << i;
    }
}

TEST(Power, SquareOfCycleStructure) {
  auto c8 = oracle_of(graph::cycle(8));
  auto sq = power(c8, 2);
  EXPECT_EQ(sq->num_vertices(), 8u);
  EXPECT_EQ(sq->degree(), 4u);
  expect_involution(*sq);
}

TEST(Power, WalkSemantics) {
  // Power-walk labels are absolute ports at each visited vertex.  On
  // cycle(6), vertex 0's port 0 leads to 1 (arriving on 1's port 0), and
  // vertex 1's port 1 leads to 2.  Edge encoding is little-endian:
  // (a1, a2) = (0, 1) -> index 0 + 1*2 = 2.
  auto sq = power(oracle_of(graph::cycle(6)), 2);
  Place q = sq->rotate({0, 2});
  EXPECT_EQ(q.vertex, 2u);
  // And (0, 0) walks 0 -> 1 -> back to 0 (port 0 of vertex 1 returns).
  EXPECT_EQ(sq->rotate({0, 0}).vertex, 0u);
}

TEST(Power, LambdaIsLambdaToTheK) {
  graph::Graph g = graph::petersen();
  double l1 = graph::lambda_exact(g);
  auto sq = power(oracle_of(g), 2);
  graph::Graph g2 = DenseRotationMap::materialize(*sq).to_graph();
  double l2 = graph::lambda_exact(g2);
  EXPECT_NEAR(l2, l1 * l1, 1e-9);
  auto cube = power(oracle_of(g), 3);
  graph::Graph g3 = DenseRotationMap::materialize(*cube).to_graph();
  EXPECT_NEAR(graph::lambda_exact(g3), l1 * l1 * l1, 1e-9);
}

TEST(Power, PreservesConnectivity) {
  graph::Graph g = graph::random_connected_regular(12, 3, 5);
  auto sq = power(oracle_of(g), 2);
  graph::Graph g2 = DenseRotationMap::materialize(*sq).to_graph();
  EXPECT_TRUE(graph::is_connected(g2));
}

TEST(Power, RejectsBadParameters) {
  auto o = oracle_of(graph::cycle(4));
  EXPECT_THROW(power(o, 0), std::invalid_argument);
  EXPECT_THROW(power(o, 31), std::invalid_argument);  // degree overflow
}

TEST(Zigzag, SizesAndInvolution) {
  // G: 6-cycle is 2-regular; H must have 2 vertices: use the theta-like
  // multigraph on 2 vertices with parallel edges (2-regular: C2).
  graph::Graph g = graph::cycle(6);
  graph::Graph h = graph::from_edges(2, {{0, 1}, {0, 1}});  // 2-regular
  auto zz = zigzag(oracle_of(g), oracle_of(h));
  EXPECT_EQ(zz->num_vertices(), 12u);
  EXPECT_EQ(zz->degree(), 4u);
  expect_involution(*zz);
}

TEST(Zigzag, RequiresMatchingSizes) {
  auto g = oracle_of(graph::cycle(6));           // degree 2
  auto h = oracle_of(graph::cycle(3));           // 3 vertices != 2
  EXPECT_THROW(zigzag(g, h), std::invalid_argument);
}

TEST(Zigzag, PreservesConnectivity) {
  graph::Graph g = graph::random_connected_regular(10, 4, 7);
  graph::Graph h = graph::cycle(4);  // 4 vertices, 2-regular
  auto zz = zigzag(oracle_of(g), oracle_of(h));
  graph::Graph z = DenseRotationMap::materialize(*zz).to_graph();
  EXPECT_TRUE(graph::is_connected(z));
  EXPECT_TRUE(z.is_regular(4));
}

TEST(Zigzag, RvwSpectralBoundHolds) {
  // lambda(G z H) <= lambda(G) + lambda(H) + lambda(H)^2 (RVW Thm 4.3).
  graph::Graph g = graph::random_connected_regular(24, 6, 3);
  ExpanderInfo h = find_expander(6, 3, 11, 30);  // (6,3) little expander
  double lg = graph::lambda_exact(g);
  double lh = h.lambda;
  auto zz = zigzag(oracle_of(g), share(std::move(h.rotation)));
  graph::Graph z = DenseRotationMap::materialize(*zz).to_graph();
  double lz = graph::lambda_exact(z);
  EXPECT_LE(lz, lg + lh + lh * lh + 1e-9);
}

TEST(Replacement, SizesAndStructure) {
  graph::Graph g = graph::k4();        // 3-regular
  graph::Graph h = graph::cycle(3);    // 3 vertices, 2-regular
  auto rp = replacement(oracle_of(g), oracle_of(h));
  EXPECT_EQ(rp->num_vertices(), 12u);
  EXPECT_EQ(rp->degree(), 3u);
  expect_involution(*rp);
  graph::Graph r = DenseRotationMap::materialize(*rp).to_graph();
  EXPECT_TRUE(graph::is_connected(r));
  EXPECT_TRUE(r.is_regular(3));
}

TEST(Replacement, CloudEdgesStayInCloud) {
  graph::Graph g = graph::k4();
  graph::Graph h = graph::cycle(3);
  auto rp = replacement(oracle_of(g), oracle_of(h));
  // Labels < deg(H) move within the same cloud (same G-vertex).
  for (std::uint64_t v = 0; v < rp->num_vertices(); ++v)
    for (std::uint32_t i = 0; i + 1 < rp->degree(); ++i)
      EXPECT_EQ(rp->rotate({v, i}).vertex / 3, v / 3);
  // The last label always crosses clouds.
  for (std::uint64_t v = 0; v < rp->num_vertices(); ++v)
    EXPECT_NE(rp->rotate({v, 2}).vertex / 3, v / 3);
}

TEST(Products, ComposeLazily) {
  // (C12^2 z C4): composition of oracles without materializing inner
  // results.
  auto g = power(oracle_of(graph::cycle(12)), 2);  // degree 4
  auto zz = zigzag(g, oracle_of(graph::cycle(4)));
  EXPECT_EQ(zz->num_vertices(), 48u);
  EXPECT_EQ(zz->degree(), 4u);
  expect_involution(*zz);
}

}  // namespace
}  // namespace uesr::reingold
