#include "reingold/rotation_map.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace uesr::reingold {
namespace {

TEST(RotationMap, DefaultsToSelfLoops) {
  DenseRotationMap m(3, 2);
  m.validate();
  EXPECT_EQ(m.rotate({1, 0}), (Place{1, 0}));
}

TEST(RotationMap, SetIsSymmetric) {
  DenseRotationMap m(2, 2);
  m.set({0, 0}, {1, 1});
  EXPECT_EQ(m.rotate({0, 0}), (Place{1, 1}));
  EXPECT_EQ(m.rotate({1, 1}), (Place{0, 0}));
  m.validate();
}

TEST(RotationMap, FromGraphRoundTrip) {
  graph::Graph g = graph::petersen();
  DenseRotationMap m = DenseRotationMap::from_graph(g);
  EXPECT_EQ(m.num_vertices(), 10u);
  EXPECT_EQ(m.degree(), 3u);
  EXPECT_EQ(m.to_graph(), g);
}

TEST(RotationMap, FromGraphRejectsIrregular) {
  EXPECT_THROW(DenseRotationMap::from_graph(graph::path(3)),
               std::invalid_argument);
}

TEST(RotationMap, FromGraphKeepsLoops) {
  graph::GraphBuilder b(1);
  b.add_edge(0, 0);
  b.add_half_loop(0);
  graph::Graph g = std::move(b).build();
  DenseRotationMap m = DenseRotationMap::from_graph(g);
  EXPECT_EQ(m.rotate({0, 0}), (Place{0, 1}));  // full loop swaps ports
  EXPECT_EQ(m.rotate({0, 2}), (Place{0, 2}));  // half loop is a fixed point
}

TEST(RotationMap, PadToRegularAddsFixedPoints) {
  graph::Graph g = graph::path(4);  // degrees 1,2,2,1
  DenseRotationMap m = pad_to_regular(g, 4);
  EXPECT_EQ(m.degree(), 4u);
  m.validate();
  // Node 0 keeps its one real edge and gains 3 self-loops.
  EXPECT_EQ(m.rotate({0, 0}).vertex, 1u);
  for (std::uint32_t i = 1; i < 4; ++i)
    EXPECT_EQ(m.rotate({0, i}), (Place{0, i}));
  // Connectivity is unchanged.
  EXPECT_TRUE(graph::is_connected(m.to_graph()));
}

TEST(RotationMap, PadRejectsTooSmallDegree) {
  EXPECT_THROW(pad_to_regular(graph::star(5), 3), std::invalid_argument);
}

TEST(RotationMap, ValidateCatchesCorruption) {
  DenseRotationMap m(2, 1);
  m.set({0, 0}, {1, 0});
  m.set({1, 0}, {1, 0});  // breaks the earlier pairing
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(RotationMap, BoundsChecked) {
  DenseRotationMap m(2, 2);
  EXPECT_THROW(m.rotate({5, 0}), std::out_of_range);
  EXPECT_THROW(m.rotate({0, 5}), std::out_of_range);
  EXPECT_THROW(m.set({0, 0}, {9, 0}), std::out_of_range);
}

TEST(RotationMap, MaterializeCopiesOracle) {
  DenseRotationMap m = DenseRotationMap::from_graph(graph::cycle(6));
  DenseRotationMap copy = DenseRotationMap::materialize(m);
  EXPECT_EQ(copy.to_graph(), m.to_graph());
}

}  // namespace
}  // namespace uesr::reingold
