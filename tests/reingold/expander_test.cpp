#include "reingold/expander.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/spectral.h"

namespace uesr::reingold {
namespace {

TEST(Expander, RamanujanBoundValues) {
  EXPECT_NEAR(ramanujan_bound(3), 2.0 * std::sqrt(2.0) / 3.0, 1e-12);
  EXPECT_NEAR(ramanujan_bound(4), std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_THROW(ramanujan_bound(1), std::invalid_argument);
}

TEST(Expander, FindsGoodCubicExpander) {
  ExpanderInfo h = find_expander(30, 3, 42, 25);
  EXPECT_EQ(h.rotation.num_vertices(), 30u);
  EXPECT_EQ(h.rotation.degree(), 3u);
  // Near-Ramanujan: within 10% of the bound is routine for random cubic.
  EXPECT_LT(h.lambda, ramanujan_bound(3) * 1.12);
  graph::Graph g = h.rotation.to_graph();
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_FALSE(graph::is_bipartite(g));
}

TEST(Expander, Degree4Search) {
  ExpanderInfo h = find_expander(64, 4, 7, 20);
  EXPECT_LT(h.lambda, ramanujan_bound(4) * 1.15);
}

TEST(Expander, LambdaFieldMatchesGraph) {
  ExpanderInfo h = find_expander(40, 3, 99, 10);
  double check = graph::lambda_exact(h.rotation.to_graph());
  EXPECT_NEAR(h.lambda, check, 2e-2);
}

TEST(Expander, DeterministicPerSeed) {
  ExpanderInfo a = find_expander(20, 3, 5, 8);
  ExpanderInfo b = find_expander(20, 3, 5, 8);
  EXPECT_EQ(a.rotation.to_graph(), b.rotation.to_graph());
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
}

TEST(Expander, RejectsImpossibleParameters) {
  EXPECT_THROW(find_expander(3, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::reingold
