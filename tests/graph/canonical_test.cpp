#include "graph/canonical.h"

#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace uesr::graph {
namespace {

/// Applies a vertex relabelling permutation to produce an isomorphic copy.
Graph permuted(const Graph& g, const std::vector<NodeId>& perm) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::vector<HalfEdge>> adj(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    adj[perm[v]].resize(g.degree(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p) {
      HalfEdge far = g.rotate(v, p);
      adj[perm[v]][p] = {perm[far.node], far.port};
    }
  return from_rotation(std::move(adj));
}

TEST(Canonical, IsomorphicCopiesShareCode) {
  Graph g = petersen();
  util::Pcg32 rng(5);
  std::vector<NodeId> perm(g.num_nodes());
  std::iota(perm.begin(), perm.end(), 0u);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    EXPECT_EQ(canonical_code(g), canonical_code(permuted(g, perm)));
  }
}

TEST(Canonical, RelabelingPortsDoesNotChangeCode) {
  Graph g = k33();
  util::Pcg32 rng(9);
  for (int trial = 0; trial < 10; ++trial)
    EXPECT_EQ(canonical_code(g), canonical_code(g.randomly_relabeled(rng)));
}

TEST(Canonical, DistinguishesNonIsomorphicCubicGraphs) {
  // The two connected cubic graphs on 6 vertices.
  EXPECT_NE(canonical_code(k33()), canonical_code(prism(3)));
  // The 8-vertex cube vs the 4-prism... identical (Q3 == CL_4)! Use K4 vs
  // something of different size instead, and Petersen vs prism(5).
  EXPECT_EQ(canonical_code(cube_q3()), canonical_code(prism(4)));
  EXPECT_NE(canonical_code(petersen()), canonical_code(prism(5)));
}

TEST(Canonical, SizeMismatchNeverEqual) {
  EXPECT_NE(canonical_code(cycle(5)), canonical_code(cycle(6)));
  EXPECT_FALSE(is_isomorphic(cycle(5), cycle(6)));
}

TEST(Canonical, SameDegreeSequenceDifferentStructure) {
  // Two 2-regular graphs on 6 vertices: C6 vs two triangles.
  Graph c6 = cycle(6);
  Graph twoTriangles =
      from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_FALSE(is_isomorphic(c6, twoTriangles));
}

TEST(Canonical, MultigraphFeaturesDistinguish) {
  // Full loop vs two half loops: both degree-2 single vertices.
  GraphBuilder a(1), b(1);
  a.add_edge(0, 0);
  b.add_half_loop(0);
  b.add_half_loop(0);
  Graph ga = std::move(a).build(), gb = std::move(b).build();
  EXPECT_FALSE(is_isomorphic(ga, gb));
}

TEST(Canonical, ParallelEdgesCounted) {
  Graph single = from_edges(2, {{0, 1}});
  Graph twice = from_edges(2, {{0, 1}, {0, 1}});
  EXPECT_FALSE(is_isomorphic(single, twice));
}

TEST(Canonical, IsIsomorphicReflexive) {
  for (const Graph& g : {petersen(), k4(), grid(3, 4), lollipop(4, 3)})
    EXPECT_TRUE(is_isomorphic(g, g));
}

TEST(Canonical, HashConsistentWithCode) {
  Graph g = petersen();
  util::Pcg32 rng(3);
  EXPECT_EQ(canonical_hash(g), canonical_hash(g.randomly_relabeled(rng)));
  EXPECT_NE(canonical_hash(k33()), canonical_hash(prism(3)));
}

TEST(Canonical, HighlySymmetricGraphsTerminate) {
  // Vertex-transitive graphs exercise the branching path hardest.
  EXPECT_EQ(canonical_code(hypercube(4)).size(),
            canonical_code(hypercube(4)).size());
  EXPECT_TRUE(is_isomorphic(complete(7), complete(7)));
  EXPECT_TRUE(is_isomorphic(moebius_kantor(), moebius_kantor()));
}

TEST(Canonical, DirectedPairsOfTreesDistinguished) {
  // Path P4 vs star S3: same size, same edge count.
  EXPECT_FALSE(is_isomorphic(path(4), star(3)));
}

}  // namespace
}  // namespace uesr::graph
