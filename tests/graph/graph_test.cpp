#include "graph/graph.h"

#include <gtest/gtest.h>

#include <numeric>

namespace uesr::graph {
namespace {

TEST(GraphBuilder, SimpleTriangle) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_regular(2));
}

TEST(GraphBuilder, PortAssignmentOrder) {
  GraphBuilder b(3);
  b.add_edge(0, 1);  // 0:p0 <-> 1:p0
  b.add_edge(0, 2);  // 0:p1 <-> 2:p0
  Graph g = std::move(b).build();
  EXPECT_EQ(g.rotate(0, 0), (HalfEdge{1, 0}));
  EXPECT_EQ(g.rotate(0, 1), (HalfEdge{2, 0}));
  EXPECT_EQ(g.rotate(1, 0), (HalfEdge{0, 0}));
  EXPECT_EQ(g.rotate(2, 0), (HalfEdge{0, 1}));
}

TEST(GraphBuilder, FullLoopUsesTwoPorts) {
  GraphBuilder b(1);
  b.add_edge(0, 0);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.rotate(0, 0), (HalfEdge{0, 1}));
  EXPECT_EQ(g.rotate(0, 1), (HalfEdge{0, 0}));
  EXPECT_FALSE(g.is_half_loop(0, 0));
}

TEST(GraphBuilder, HalfLoopIsFixedPoint) {
  GraphBuilder b(1);
  b.add_half_loop(0);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.is_half_loop(0, 0));
  EXPECT_EQ(g.rotate(0, 0), (HalfEdge{0, 0}));
}

TEST(GraphBuilder, ParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_EQ(g.neighbors(0), std::vector<NodeId>{1});
}

TEST(GraphBuilder, AddNodeGrows) {
  GraphBuilder b(0);
  EXPECT_EQ(b.add_node(), 0u);
  EXPECT_EQ(b.add_node(), 1u);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(GraphBuilder, OutOfRangeThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(b.add_half_loop(5), std::invalid_argument);
}

TEST(Graph, PortToFindsEdge) {
  Graph g = from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.port_to(0, 1), 0u);
  EXPECT_EQ(g.port_to(2, 1), 0u);
  EXPECT_THROW(g.port_to(0, 2), std::invalid_argument);
}

TEST(Graph, AdjacentQueries) {
  Graph g = from_edges(3, {{0, 1}});
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
}

TEST(Graph, DegreeExtremes) {
  Graph g = from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_FALSE(g.is_regular(3));
}

TEST(Graph, ValidateRejectsBrokenInvolution) {
  std::vector<std::vector<HalfEdge>> adj(2);
  adj[0] = {{1, 0}};
  adj[1] = {{1, 0}};  // 1's port 0 points at itself, but 0 points at 1
  EXPECT_THROW(from_rotation(std::move(adj)), std::logic_error);
}

TEST(Graph, FromRotationAcceptsCrossedParallelPorts) {
  // Parallel edges with crossed port order: not constructible by the
  // sequential builder, but a legal rotation map.
  std::vector<std::vector<HalfEdge>> adj(2);
  adj[0] = {{1, 1}, {1, 0}};
  adj[1] = {{0, 1}, {0, 0}};
  Graph g = from_rotation(std::move(adj));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, RelabeledPreservesStructure) {
  Graph g = from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  std::vector<std::vector<Port>> perms(4);
  for (NodeId v = 0; v < 4; ++v) {
    perms[v].resize(g.degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
    std::reverse(perms[v].begin(), perms[v].end());
  }
  Graph h = g.relabeled(perms);
  h.validate();
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
    EXPECT_EQ(h.neighbors(v), g.neighbors(v));
  }
  // Port 0 of vertex 0 now leads where the last port used to.
  EXPECT_EQ(h.neighbor(0, 0), g.neighbor(0, g.degree(0) - 1));
}

TEST(Graph, RelabeledIdentityIsNoop) {
  Graph g = from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  std::vector<std::vector<Port>> perms(3, std::vector<Port>{0, 1});
  EXPECT_EQ(g.relabeled(perms), g);
}

TEST(Graph, RelabeledValidatesPermutation) {
  Graph g = from_edges(2, {{0, 1}});
  std::vector<std::vector<Port>> bad(2);
  bad[0] = {0, 0};  // wrong size AND not a permutation
  bad[1] = {0};
  EXPECT_THROW(g.relabeled(bad), std::invalid_argument);
  bad[0] = {0};
  bad[1] = {5};  // out of range
  EXPECT_THROW(g.relabeled(bad), std::invalid_argument);
}

TEST(Graph, RandomRelabelKeepsEdgeSet) {
  Graph g = from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}});
  util::Pcg32 rng(77);
  for (int i = 0; i < 20; ++i) {
    Graph h = g.randomly_relabeled(rng);
    h.validate();
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(h.neighbors(v), g.neighbors(v));
  }
}

TEST(Graph, EdgeCountMixedLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 1);     // 1 edge
  b.add_edge(0, 0);     // full loop: 1 edge, 2 ports
  b.add_half_loop(1);   // half loop: 1 edge, 1 port
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, DescribeFormat) {
  Graph g = from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(describe(g), "n=3 m=3 deg=[2,2]");
}

TEST(Graph, EmptyGraph) {
  Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

}  // namespace
}  // namespace uesr::graph
