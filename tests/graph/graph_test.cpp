#include "graph/graph.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"

namespace uesr::graph {
namespace {

TEST(GraphBuilder, SimpleTriangle) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_regular(2));
}

TEST(GraphBuilder, PortAssignmentOrder) {
  GraphBuilder b(3);
  b.add_edge(0, 1);  // 0:p0 <-> 1:p0
  b.add_edge(0, 2);  // 0:p1 <-> 2:p0
  Graph g = std::move(b).build();
  EXPECT_EQ(g.rotate(0, 0), (HalfEdge{1, 0}));
  EXPECT_EQ(g.rotate(0, 1), (HalfEdge{2, 0}));
  EXPECT_EQ(g.rotate(1, 0), (HalfEdge{0, 0}));
  EXPECT_EQ(g.rotate(2, 0), (HalfEdge{0, 1}));
}

TEST(GraphBuilder, FullLoopUsesTwoPorts) {
  GraphBuilder b(1);
  b.add_edge(0, 0);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.rotate(0, 0), (HalfEdge{0, 1}));
  EXPECT_EQ(g.rotate(0, 1), (HalfEdge{0, 0}));
  EXPECT_FALSE(g.is_half_loop(0, 0));
}

TEST(GraphBuilder, HalfLoopIsFixedPoint) {
  GraphBuilder b(1);
  b.add_half_loop(0);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.is_half_loop(0, 0));
  EXPECT_EQ(g.rotate(0, 0), (HalfEdge{0, 0}));
}

TEST(GraphBuilder, ParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_EQ(g.neighbors(0), std::vector<NodeId>{1});
}

TEST(GraphBuilder, AddNodeGrows) {
  GraphBuilder b(0);
  EXPECT_EQ(b.add_node(), 0u);
  EXPECT_EQ(b.add_node(), 1u);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(GraphBuilder, OutOfRangeThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(b.add_half_loop(5), std::invalid_argument);
}

TEST(Graph, PortToFindsEdge) {
  Graph g = from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.port_to(0, 1), 0u);
  EXPECT_EQ(g.port_to(2, 1), 0u);
  EXPECT_THROW(g.port_to(0, 2), std::invalid_argument);
}

TEST(Graph, AdjacentQueries) {
  Graph g = from_edges(3, {{0, 1}});
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
}

TEST(Graph, DegreeExtremes) {
  Graph g = from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_FALSE(g.is_regular(3));
}

TEST(Graph, ValidateRejectsBrokenInvolution) {
  std::vector<std::vector<HalfEdge>> adj(2);
  adj[0] = {{1, 0}};
  adj[1] = {{1, 0}};  // 1's port 0 points at itself, but 0 points at 1
  EXPECT_THROW(from_rotation(std::move(adj)), std::logic_error);
}

TEST(Graph, FromRotationAcceptsCrossedParallelPorts) {
  // Parallel edges with crossed port order: not constructible by the
  // sequential builder, but a legal rotation map.
  std::vector<std::vector<HalfEdge>> adj(2);
  adj[0] = {{1, 1}, {1, 0}};
  adj[1] = {{0, 1}, {0, 0}};
  Graph g = from_rotation(std::move(adj));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, RelabeledPreservesStructure) {
  Graph g = from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  std::vector<std::vector<Port>> perms(4);
  for (NodeId v = 0; v < 4; ++v) {
    perms[v].resize(g.degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
    std::reverse(perms[v].begin(), perms[v].end());
  }
  Graph h = g.relabeled(perms);
  h.validate();
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
    EXPECT_EQ(h.neighbors(v), g.neighbors(v));
  }
  // Port 0 of vertex 0 now leads where the last port used to.
  EXPECT_EQ(h.neighbor(0, 0), g.neighbor(0, g.degree(0) - 1));
}

TEST(Graph, RelabeledIdentityIsNoop) {
  Graph g = from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  std::vector<std::vector<Port>> perms(3, std::vector<Port>{0, 1});
  EXPECT_EQ(g.relabeled(perms), g);
}

TEST(Graph, RelabeledValidatesPermutation) {
  Graph g = from_edges(2, {{0, 1}});
  std::vector<std::vector<Port>> bad(2);
  bad[0] = {0, 0};  // wrong size AND not a permutation
  bad[1] = {0};
  EXPECT_THROW(g.relabeled(bad), std::invalid_argument);
  bad[0] = {0};
  bad[1] = {5};  // out of range
  EXPECT_THROW(g.relabeled(bad), std::invalid_argument);
}

TEST(Graph, RandomRelabelKeepsEdgeSet) {
  Graph g = from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}});
  util::Pcg32 rng(77);
  for (int i = 0; i < 20; ++i) {
    Graph h = g.randomly_relabeled(rng);
    h.validate();
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(h.neighbors(v), g.neighbors(v));
  }
}

TEST(Graph, EdgeCountMixedLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 1);     // 1 edge
  b.add_edge(0, 0);     // full loop: 1 edge, 2 ports
  b.add_half_loop(1);   // half loop: 1 edge, 1 port
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, DescribeFormat) {
  Graph g = from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(describe(g), "n=3 m=3 deg=[2,2]");
}

TEST(Graph, EmptyGraph) {
  Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

// ---- CSR layout: observational identity with the rotation-map model ----

// Extracts the rotation map through the public API.
std::vector<std::vector<HalfEdge>> extract_rotation(const Graph& g) {
  std::vector<std::vector<HalfEdge>> adj(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    adj[v].resize(g.degree(v));
    for (Port p = 0; p < g.degree(v); ++p) adj[v][p] = g.rotate(v, p);
  }
  return adj;
}

TEST(GraphCsr, CubicDetectionAndRotate3) {
  Graph cubic = k4();
  EXPECT_TRUE(cubic.is_cubic());
  for (NodeId v = 0; v < cubic.num_nodes(); ++v)
    for (Port p = 0; p < 3; ++p)
      EXPECT_EQ(cubic.rotate3(v, p), cubic.rotate(v, p));
  EXPECT_FALSE(path(3).is_cubic());
  EXPECT_FALSE(GraphBuilder(0).build().is_cubic());
}

TEST(GraphCsr, HalfEdgeDataMatchesRotate) {
  Graph g = gnp(12, 0.3, 5);
  ASSERT_FALSE(g.is_cubic());
  const HalfEdge* data = g.half_edge_data();
  std::size_t idx = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < g.degree(v); ++p)
      EXPECT_EQ(data[idx++], g.rotate(v, p));
}

TEST(GraphCsr, CubicPackedStorageMatchesRotate) {
  // Cubic graphs drop the generic HalfEdge array entirely; the packed pair
  // far_node_data()/far_ports() is the whole rotation map.
  Graph g = random_regular(64, 3, 77);
  ASSERT_TRUE(g.is_cubic());
  EXPECT_EQ(g.half_edge_data(), nullptr);
  const NodeId* far = g.far_node_data();
  const util::PackedArray& ports = g.far_ports();
  EXPECT_EQ(ports.width(), 2);
  EXPECT_EQ(ports.size(), 3 * static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (Port p = 0; p < 3; ++p) {
      const std::size_t i = 3 * static_cast<std::size_t>(v) + p;
      HalfEdge want = g.rotate(v, p);
      EXPECT_EQ(far[i], want.node);
      EXPECT_EQ(static_cast<Port>(ports.get(i)), want.port);
    }
  // Packed storage is derived deterministically, so equality stays
  // observational across construction paths.
  Graph again = from_rotation(extract_rotation(g));
  EXPECT_EQ(g, again);
}

TEST(GraphCsr, FlatFromRotationEqualsNested) {
  // Crossed parallel edges plus a half loop: a rotation map sequential port
  // assignment cannot express.
  std::vector<std::vector<HalfEdge>> adj(2);
  adj[0] = {{1, 1}, {1, 0}, {0, 2}};  // ports 0,1 cross; port 2 half loop
  adj[1] = {{0, 1}, {0, 0}};
  std::vector<HalfEdge> flat;
  std::vector<std::size_t> offsets{0};
  for (const auto& row : adj) {
    flat.insert(flat.end(), row.begin(), row.end());
    offsets.push_back(flat.size());
  }
  Graph nested = from_rotation(adj);
  Graph flat_g = from_rotation(std::move(offsets), std::move(flat));
  EXPECT_EQ(nested, flat_g);
  EXPECT_TRUE(nested.is_half_loop(0, 2));
  EXPECT_EQ(nested.rotate(0, 0), (HalfEdge{1, 1}));
}

TEST(GraphCsr, FlatFromRotationValidatesShape) {
  // offsets not starting at 0.
  EXPECT_THROW(from_rotation(std::vector<std::size_t>{1, 1},
                             std::vector<HalfEdge>{}),
               std::invalid_argument);
  // offsets not covering the half-edge array.
  EXPECT_THROW(from_rotation(std::vector<std::size_t>{0, 1},
                             std::vector<HalfEdge>{{0, 0}, {0, 1}}),
               std::invalid_argument);
  // non-monotone offsets.
  EXPECT_THROW(from_rotation(std::vector<std::size_t>{0, 2, 1},
                             std::vector<HalfEdge>{{0, 1}, {0, 0}}),
               std::invalid_argument);
  // involution violations still detected through the flat path.
  EXPECT_THROW(from_rotation(std::vector<std::size_t>{0, 1, 2},
                             std::vector<HalfEdge>{{1, 0}, {0, 1}}),
               std::logic_error);
}

TEST(GraphCsr, ZeroNodeGraphsEqualAcrossConstructionPaths) {
  // Every way of building the empty graph must normalize to the same
  // representation, or the defaulted operator== would leak the layout.
  EXPECT_EQ(Graph(), GraphBuilder(0).build());
  EXPECT_EQ(Graph(), from_rotation(std::vector<std::vector<HalfEdge>>{}));
  EXPECT_EQ(Graph(), from_rotation(std::vector<std::size_t>{0},
                                   std::vector<HalfEdge>{}));
  EXPECT_EQ(Graph(), from_rotation(std::vector<std::size_t>{},
                                   std::vector<HalfEdge>{}));
}

TEST(GraphCsr, RoundTripThroughFromRotation) {
  util::Pcg32 rng(123);
  const std::vector<Graph> zoo = {
      gnp(17, 0.2, 3),
      random_connected_regular(12, 3, 4),
      random_cubic_multigraph(10, 8),
      star(4),
      from_edges(5, {{0, 0}, {1, 2}, {2, 1}, {3, 4}}),
  };
  for (const Graph& g : zoo) {
    // from_rotation over the extracted map reproduces an equal graph.
    Graph h = from_rotation(extract_rotation(g));
    EXPECT_EQ(g, h) << describe(g);
    // Observational agreement on every accessor.
    ASSERT_EQ(g.num_nodes(), h.num_nodes());
    EXPECT_EQ(g.num_edges(), h.num_edges());
    EXPECT_EQ(g.is_cubic(), h.is_cubic());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(g.degree(v), h.degree(v));
      EXPECT_EQ(g.neighbors(v), h.neighbors(v));
      for (Port p = 0; p < g.degree(v); ++p) {
        EXPECT_EQ(g.rotate(v, p), h.rotate(v, p));
        EXPECT_EQ(g.neighbor(v, p), h.neighbor(v, p));
        EXPECT_EQ(g.is_half_loop(v, p), h.is_half_loop(v, p));
      }
    }
    EXPECT_NO_THROW(h.validate());
    // Relabel by a random permutation and undo it: identity round trip.
    std::vector<std::vector<Port>> perms(g.num_nodes());
    std::vector<std::vector<Port>> inverse(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      perms[v].resize(g.degree(v));
      std::iota(perms[v].begin(), perms[v].end(), Port{0});
      std::shuffle(perms[v].begin(), perms[v].end(), rng);
      inverse[v].resize(perms[v].size());
      for (Port p = 0; p < perms[v].size(); ++p) inverse[v][perms[v][p]] = p;
    }
    EXPECT_EQ(g.relabeled(perms).relabeled(inverse), g) << describe(g);
  }
}

}  // namespace
}  // namespace uesr::graph
