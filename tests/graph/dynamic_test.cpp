#include "graph/dynamic.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/geometric.h"

namespace uesr::graph {
namespace {

TEST(DynamicGraph, StartsCommittedAtEpochZero) {
  DynamicGraph g(4);
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_FALSE(g.dirty());
  EXPECT_EQ(g.snapshot().num_nodes(), 4u);
  EXPECT_EQ(g.snapshot().num_edges(), 0u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(g.alive(v));
}

TEST(DynamicGraph, AdoptsGraphEdges) {
  Graph base = cycle(5);
  DynamicGraph g(base);
  EXPECT_EQ(g.snapshot().num_edges(), 5u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(4, 0));
  // Port numbering may differ (snapshot ports are sorted-order), but the
  // edge set is identical.
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = 0; v < 5; ++v)
      EXPECT_EQ(g.snapshot().adjacent(u, v), base.adjacent(u, v));
}

TEST(DynamicGraph, RejectsLoopsAndParallelEdges) {
  EXPECT_THROW(DynamicGraph(from_edges(2, {{0, 0}})), std::invalid_argument);
  EXPECT_THROW(DynamicGraph(from_edges(2, {{0, 1}, {0, 1}})),
               std::invalid_argument);
}

TEST(DynamicGraph, StagedEditsInvisibleUntilCommit) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.dirty());
  EXPECT_TRUE(g.has_edge(0, 1));                 // staged view
  EXPECT_EQ(g.snapshot().num_edges(), 0u);       // committed view
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_EQ(g.commit(), 1u);
  EXPECT_FALSE(g.dirty());
  EXPECT_TRUE(g.snapshot().adjacent(0, 1));
}

TEST(DynamicGraph, CommitWithoutChangesIsANoOp) {
  DynamicGraph g(cycle(4));
  EXPECT_EQ(g.commit(), 0u);
  EXPECT_EQ(g.commit(), 0u);
  g.add_edge(0, 2);
  g.commit();
  EXPECT_EQ(g.epoch(), 1u);
  EXPECT_EQ(g.commit(), 1u);  // nothing staged: epoch holds still
}

TEST(DynamicGraph, MutatorsReportNoOps) {
  DynamicGraph g(cycle(4));
  EXPECT_FALSE(g.add_edge(0, 1));   // already present
  EXPECT_FALSE(g.add_edge(2, 2));   // loop
  EXPECT_FALSE(g.remove_edge(0, 2));  // absent
  EXPECT_FALSE(g.set_alive(1, true));  // already alive
  EXPECT_FALSE(g.dirty());
  EXPECT_TRUE(g.remove_edge(1, 0));  // order-insensitive
  EXPECT_TRUE(g.dirty());
}

TEST(DynamicGraph, LeaveDropsIncidentEdgesAndBlocksNewOnes) {
  DynamicGraph g(star(3));  // centre 0, leaves 1..3
  EXPECT_TRUE(g.set_alive(0, false));
  EXPECT_EQ(g.num_staged_edges(), 0u);
  EXPECT_FALSE(g.add_edge(0, 1));  // dead endpoint
  EXPECT_TRUE(g.add_edge(1, 2));   // survivors may re-link
  g.commit();
  EXPECT_EQ(g.epoch(), 1u);
  EXPECT_EQ(g.snapshot().degree(0), 0u);
  EXPECT_TRUE(g.snapshot().adjacent(1, 2));
  // Rejoin restores the id as an isolated node.
  EXPECT_TRUE(g.set_alive(0, true));
  EXPECT_TRUE(g.add_edge(0, 3));
  g.commit();
  EXPECT_EQ(g.epoch(), 2u);
  EXPECT_TRUE(g.snapshot().adjacent(0, 3));
}

TEST(DynamicGraph, SnapshotIsDeterministicFunctionOfEdgeSet) {
  // Two different edit orders reaching the same edge set produce identical
  // snapshots (sorted-order port assignment).
  DynamicGraph a(4), b(4);
  a.add_edge(2, 3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 3);
  b.remove_edge(0, 3);
  a.commit();
  b.commit();
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(DynamicGraph, RederiveUnitDiskMatchesStaticGenerator) {
  auto ref = unit_disk_2d(30, 0.3, 11);
  DynamicGraph g(30);
  g.set_positions(ref.positions);
  g.rederive_unit_disk(0.3);
  g.commit();
  EXPECT_EQ(g.snapshot(), ref.graph);
  ASSERT_TRUE(g.has_positions_2d());
  EXPECT_EQ(g.positions_2d().size(), 30u);
}

TEST(DynamicGraph, RederiveRespectsAliveFlags) {
  auto ref = unit_disk_3d(20, 0.5, 3);
  DynamicGraph g(20);
  g.set_positions(ref.positions);
  g.set_alive(5, false);
  g.rederive_unit_disk(0.5);
  g.commit();
  EXPECT_EQ(g.snapshot().degree(5), 0u);
  for (NodeId u = 0; u < 20; ++u)
    for (NodeId v = u + 1; v < 20; ++v) {
      if (u == 5 || v == 5) continue;
      EXPECT_EQ(g.snapshot().adjacent(u, v), ref.graph.adjacent(u, v));
    }
}

TEST(DynamicGraph, Validation) {
  DynamicGraph g(3);
  EXPECT_THROW(g.add_edge(0, 7), std::invalid_argument);
  EXPECT_THROW(g.set_alive(9, false), std::invalid_argument);
  EXPECT_THROW(g.set_positions(std::vector<Point2>(2)),
               std::invalid_argument);
  EXPECT_THROW(g.rederive_unit_disk(0.5), std::logic_error);  // no positions
  g.set_positions(std::vector<Point2>(3));
  EXPECT_THROW(g.rederive_unit_disk(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::graph
