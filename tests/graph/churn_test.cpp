#include "graph/churn.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/geometric.h"

namespace uesr::graph {
namespace {

/// Runs `epochs` advances and returns the snapshot sequence (including
/// epoch 0).
std::vector<Graph> snapshots(Scenario& sc, int epochs) {
  std::vector<Graph> out;
  DynamicGraph g = sc.initial();
  out.push_back(g.snapshot());
  for (int k = 0; k < epochs; ++k) {
    sc.advance(g);
    out.push_back(g.snapshot());
  }
  return out;
}

TEST(LinkFlapScenario, ReplaysAreBitIdentical) {
  LinkFlapScenario sc(connected_gnp(20, 0.25, 3), 2, 7);
  auto a = snapshots(sc, 10);
  auto b = snapshots(sc, 10);  // initial() rewinds the schedule
  EXPECT_EQ(a, b);
  auto clone = sc.fresh();
  auto c = snapshots(*clone, 10);
  EXPECT_EQ(a, c);
}

TEST(LinkFlapScenario, TogglesStayWithinBaseEdges) {
  Graph base = connected_gnp(16, 0.3, 5);
  LinkFlapScenario sc(base, 3, 11);
  DynamicGraph g = sc.initial();
  bool some_epoch_differs = false;
  for (int k = 0; k < 12; ++k) {
    sc.advance(g);
    const Graph& snap = g.snapshot();
    for (NodeId u = 0; u < snap.num_nodes(); ++u)
      for (NodeId v : snap.neighbors(u))
        EXPECT_TRUE(base.adjacent(u, v)) << u << "," << v;
    some_epoch_differs =
        some_epoch_differs || snap.num_edges() != base.num_edges();
  }
  EXPECT_TRUE(some_epoch_differs);  // the schedule actually flaps
}

TEST(NodeChurnScenario, EdgesAreBaseRestrictedToAliveNodes) {
  Graph base = connected_gnp(18, 0.3, 9);
  NodeChurnScenario sc(base, 0.2, 0.5, 13);
  DynamicGraph g = sc.initial();
  bool someone_left = false;
  for (int k = 0; k < 15; ++k) {
    sc.advance(g);
    const Graph& snap = g.snapshot();
    std::size_t expected_edges = 0;
    for (NodeId u = 0; u < base.num_nodes(); ++u)
      for (NodeId v : base.neighbors(u))
        if (v > u && g.alive(u) && g.alive(v)) ++expected_edges;
    EXPECT_EQ(snap.num_edges(), expected_edges) << "epoch " << k;
    for (NodeId v = 0; v < base.num_nodes(); ++v) {
      if (!g.alive(v)) {
        EXPECT_EQ(snap.degree(v), 0u);
        someone_left = true;
      }
    }
  }
  EXPECT_TRUE(someone_left);
}

TEST(NodeChurnScenario, ReplaysAreBitIdentical) {
  NodeChurnScenario sc(connected_gnp(14, 0.3, 1), 0.15, 0.4, 21);
  EXPECT_EQ(snapshots(sc, 8), snapshots(sc, 8));
  auto clone = sc.fresh();
  EXPECT_EQ(snapshots(sc, 8), snapshots(*clone, 8));
}

TEST(WaypointScenario, RadioGraphTracksPositions) {
  WaypointScenario sc(25, 2, 0.3, 0.06, 17);
  DynamicGraph g = sc.initial();
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(g.has_positions_2d());
    const auto& pos = g.positions_2d();
    for (const auto& p : pos) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LT(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LT(p.y, 1.0);
    }
    const Graph& snap = g.snapshot();
    for (NodeId u = 0; u < snap.num_nodes(); ++u)
      for (NodeId v = u + 1; v < snap.num_nodes(); ++v)
        EXPECT_EQ(snap.adjacent(u, v), distance(pos[u], pos[v]) <= 0.3);
    sc.advance(g);
  }
}

TEST(WaypointScenario, NodesActuallyMoveAndEpochAdvances) {
  WaypointScenario sc(12, 3, 0.5, 0.08, 29);
  DynamicGraph g = sc.initial();
  const std::uint64_t e0 = g.epoch();
  auto before = g.positions_3d();
  sc.advance(g);
  EXPECT_GT(g.epoch(), e0);  // moved positions always commit a new epoch
  auto after = g.positions_3d();
  double total_motion = 0.0;
  for (NodeId i = 0; i < 12; ++i)
    total_motion += distance(before[i], after[i]);
  EXPECT_GT(total_motion, 0.0);
}

TEST(WaypointScenario, ReplaysAreBitIdentical) {
  WaypointScenario sc(20, 2, 0.28, 0.05, 31);
  EXPECT_EQ(snapshots(sc, 12), snapshots(sc, 12));
  auto clone = sc.fresh();
  EXPECT_EQ(snapshots(sc, 12), snapshots(*clone, 12));
}

TEST(Scenarios, Validation) {
  EXPECT_THROW(NodeChurnScenario(cycle(4), -0.1, 0.5, 1),
               std::invalid_argument);
  EXPECT_THROW(NodeChurnScenario(cycle(4), 0.1, 1.5, 1),
               std::invalid_argument);
  EXPECT_THROW(WaypointScenario(0, 2, 0.3, 0.05, 1), std::invalid_argument);
  EXPECT_THROW(WaypointScenario(5, 4, 0.3, 0.05, 1), std::invalid_argument);
  EXPECT_THROW(WaypointScenario(5, 2, -1.0, 0.05, 1), std::invalid_argument);
  EXPECT_THROW(WaypointScenario(5, 2, 0.3, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::graph
