#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace uesr::graph {
namespace {

TEST(Io, RoundTripSimpleGraph) {
  Graph g = petersen();
  Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);  // exact rotation map, not just isomorphism
}

TEST(Io, RoundTripWithLoops) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 1);   // full loop
  b.add_half_loop(2);
  b.add_half_loop(2);
  b.add_edge(2, 0);
  Graph g = std::move(b).build();
  Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(Io, RoundTripCrossedParallelPorts) {
  std::vector<std::vector<HalfEdge>> adj(2);
  adj[0] = {{1, 1}, {1, 0}};
  adj[1] = {{0, 1}, {0, 0}};
  Graph g = from_rotation(std::move(adj));
  Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(Io, RoundTripEmptyAndIsolated) {
  Graph g = GraphBuilder(4).build();
  Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(Io, StreamOverloadMatchesStringOverload) {
  // The stream overload is the real parser; the string form is a wrapper.
  // A stream fed in small chunks (stringstream here) must parse to the
  // identical graph, including rotation-map ports.
  Graph g = petersen();
  std::string text = to_edge_list(g);
  std::istringstream is(text);
  Graph from_stream = from_edge_list(is);
  EXPECT_EQ(from_stream, from_edge_list(text));
  EXPECT_EQ(from_stream, g);
  // The stream is consumed exactly to EOF — no lookahead beyond the data.
  EXPECT_TRUE(is.eof());
}

TEST(Io, StreamOverloadRejectsMalformedMidStream) {
  std::istringstream is("uesr-graph 2\n0 0 1 0\nbogus line\n");
  EXPECT_THROW(from_edge_list(is), std::invalid_argument);
}

TEST(Io, RejectsBadHeader) {
  EXPECT_THROW(from_edge_list("nonsense 3\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list(""), std::invalid_argument);
}

TEST(Io, RejectsOutOfRangeNode) {
  EXPECT_THROW(from_edge_list("uesr-graph 2\n0 0 5 0\n"),
               std::invalid_argument);
}

TEST(Io, RejectsDuplicateHalfEdge) {
  EXPECT_THROW(
      from_edge_list("uesr-graph 2\n0 0 1 0\n0 0 1 1\n"),
      std::invalid_argument);
}

TEST(Io, RejectsPortGap) {
  // Port 1 of node 0 is referenced but port 0 never defined.
  EXPECT_THROW(from_edge_list("uesr-graph 2\n0 1 1 0\n"),
               std::invalid_argument);
}

// Regression: the old `is >> v >> p >> w >> q` loop stopped silently at
// the first parse failure, so a corrupted or truncated record was
// accepted as a valid prefix of the graph.
TEST(Io, RejectsJunkToken) {
  try {
    from_edge_list("uesr-graph 2\n0 0 1 0\nxyz 0 1 1\n");
    FAIL() << "junk record accepted";
  } catch (const std::invalid_argument& e) {
    // The error names the offending line.
    EXPECT_NE(std::string(e.what()).find("xyz 0 1 1"), std::string::npos);
  }
}

TEST(Io, RejectsTruncatedRecord) {
  EXPECT_THROW(from_edge_list("uesr-graph 2\n0 0 1 0\n1 1\n"),
               std::invalid_argument);
}

TEST(Io, RejectsTrailingJunkOnRecord) {
  EXPECT_THROW(from_edge_list("uesr-graph 2\n0 0 1 0 extra\n"),
               std::invalid_argument);
}

TEST(Io, RejectsJunkAfterHeader) {
  EXPECT_THROW(from_edge_list("uesr-graph 2 huh\n0 0 1 0\n"),
               std::invalid_argument);
}

TEST(Io, AcceptsBlankLinesAndMissingFinalNewline) {
  Graph g = from_edge_list("uesr-graph 2\n\n0 0 1 0\n\n  \n0 1 1 1");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Io, DotOutputContainsEdges) {
  Graph g = from_edges(3, {{0, 1}, {1, 2}});
  std::string dot = to_dot(g, "T");
  EXPECT_NE(dot.find("graph T {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

TEST(Io, DotMarksHalfLoops) {
  GraphBuilder b(1);
  b.add_half_loop(0);
  std::string dot = to_dot(std::move(b).build());
  EXPECT_NE(dot.find("label=\"h\""), std::string::npos);
}

}  // namespace
}  // namespace uesr::graph
