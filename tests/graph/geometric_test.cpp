#include "graph/geometric.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace uesr::graph {
namespace {

TEST(Geometric, Distance2D) {
  EXPECT_DOUBLE_EQ(distance(Point2{0, 0}, Point2{3, 4}), 5.0);
}

TEST(Geometric, Distance3D) {
  EXPECT_DOUBLE_EQ(distance(Point3{1, 2, 2}, Point3{0, 0, 0}), 3.0);
}

TEST(Geometric, UnitDisk2dEdgesMatchRadius) {
  auto net = unit_disk_2d(50, 0.3, 11);
  const Graph& g = net.graph;
  ASSERT_EQ(net.positions.size(), 50u);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      bool close = distance(net.positions[u], net.positions[v]) <= 0.3;
      EXPECT_EQ(g.adjacent(u, v), close) << u << "," << v;
    }
}

TEST(Geometric, UnitDisk2dDeterministic) {
  auto a = unit_disk_2d(30, 0.25, 7);
  auto b = unit_disk_2d(30, 0.25, 7);
  EXPECT_EQ(a.graph, b.graph);
}

TEST(Geometric, UnitDisk3dEdgesMatchRadius) {
  auto net = unit_disk_3d(40, 0.4, 3);
  const Graph& g = net.graph;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      bool close = distance(net.positions[u], net.positions[v]) <= 0.4;
      EXPECT_EQ(g.adjacent(u, v), close);
    }
}

TEST(Geometric, ConnectedVariantsAreConnected) {
  auto g2 = connected_unit_disk_2d(60, 0.25, 5);
  EXPECT_TRUE(is_connected(g2.graph));
  auto g3 = connected_unit_disk_3d(60, 0.4, 5);
  EXPECT_TRUE(is_connected(g3.graph));
}

// Regression: the sub-critical-radius failure used to be a bare "radius
// too small" after 10000 silent resamples; the message must now carry n,
// the radius, and the attempt budget so experiment logs are actionable.
TEST(Geometric, SubCriticalRadiusThrowsWithDiagnostics) {
  try {
    connected_unit_disk_2d(10, 0.01, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("connected_unit_disk_2d"), std::string::npos) << what;
    EXPECT_NE(what.find("n=10"), std::string::npos) << what;
    EXPECT_NE(what.find("radius=0.01"), std::string::npos) << what;
    EXPECT_NE(what.find("10000"), std::string::npos) << what;
  }
  try {
    connected_unit_disk_3d(12, 0.01, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("connected_unit_disk_3d"), std::string::npos) << what;
    EXPECT_NE(what.find("n=12"), std::string::npos) << what;
  }
}

// Regression: the resample count is surfaced to callers.  Replaying the
// seeder must show `resamples` counting exactly the rejected draws before
// the returned (connected) instance.
TEST(Geometric, ResampleCountIsSurfacedAndExact) {
  EXPECT_EQ(unit_disk_2d(30, 0.25, 7).resamples, 0u);  // plain generator
  bool saw_resample = false;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto g = connected_unit_disk_2d(30, 0.22, seed);
    EXPECT_TRUE(is_connected(g.graph));
    util::SplitMix64 seeder(seed);
    for (std::uint32_t k = 0; k < g.resamples; ++k)
      EXPECT_FALSE(is_connected(unit_disk_2d(30, 0.22, seeder.next()).graph))
          << "seed " << seed << " draw " << k;
    EXPECT_TRUE(is_connected(unit_disk_2d(30, 0.22, seeder.next()).graph))
        << "seed " << seed;
    saw_resample = saw_resample || g.resamples > 0;
  }
  // At this n/radius some seed must actually reject at least once, or the
  // test is vacuous.
  EXPECT_TRUE(saw_resample);
}

TEST(Geometric, GabrielSubgraphIsSubgraph) {
  auto net = connected_unit_disk_2d(80, 0.25, 9);
  auto gg = gabriel_subgraph(net);
  EXPECT_LE(gg.graph.num_edges(), net.graph.num_edges());
  for (NodeId u = 0; u < gg.graph.num_nodes(); ++u)
    for (NodeId v : gg.graph.neighbors(u))
      EXPECT_TRUE(net.graph.adjacent(u, v));
}

TEST(Geometric, GabrielSubgraphPreservesConnectivity) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto net = connected_unit_disk_2d(70, 0.28, seed);
    auto gg = gabriel_subgraph(net);
    EXPECT_TRUE(is_connected(gg.graph)) << "seed " << seed;
  }
}

TEST(Geometric, GabrielSubgraphIsPlane) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto net = connected_unit_disk_2d(60, 0.3, seed);
    auto gg = gabriel_subgraph(net);
    EXPECT_TRUE(is_plane_embedding(gg)) << "seed " << seed;
  }
}

TEST(Geometric, GabrielRemovesBlockedEdge) {
  // Three collinear-ish points: w sits inside the diametral circle of (u,v).
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  Positioned2 net{std::move(b).build(),
                  {{0.0, 0.0}, {1.0, 0.0}, {0.5, 0.1}}};
  auto gg = gabriel_subgraph(net);
  EXPECT_FALSE(gg.graph.adjacent(0, 1));  // blocked by vertex 2
  EXPECT_TRUE(gg.graph.adjacent(0, 2));
  EXPECT_TRUE(gg.graph.adjacent(1, 2));
}

TEST(Geometric, PlaneEmbeddingDetectsCrossing) {
  // Two crossing diagonals of a square.
  GraphBuilder b(4);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  Positioned2 net{std::move(b).build(),
                  {{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
  EXPECT_FALSE(is_plane_embedding(net));
}

TEST(Geometric, PlaneEmbeddingAcceptsSquare) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  Positioned2 net{std::move(b).build(),
                  {{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
  EXPECT_TRUE(is_plane_embedding(net));
}

TEST(Geometric, Validation) {
  EXPECT_THROW(unit_disk_2d(0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(unit_disk_2d(5, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(unit_disk_3d(5, -1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::graph
