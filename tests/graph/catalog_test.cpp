#include "graph/catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.h"
#include "graph/canonical.h"
#include "graph/generators.h"

namespace uesr::graph {
namespace {

TEST(Catalog, KnownCounts) {
  EXPECT_EQ(known_cubic_count(4), 1u);
  EXPECT_EQ(known_cubic_count(6), 2u);
  EXPECT_EQ(known_cubic_count(8), 5u);
  EXPECT_EQ(known_cubic_count(10), 19u);
  EXPECT_EQ(known_cubic_count(12), 85u);
  EXPECT_THROW(known_cubic_count(14), std::invalid_argument);
  EXPECT_THROW(known_cubic_count(5), std::invalid_argument);
}

TEST(Catalog, N4IsExactlyK4) {
  auto cat = connected_cubic_graphs(4, 1);
  ASSERT_EQ(cat.size(), 1u);
  EXPECT_TRUE(is_isomorphic(cat[0], k4()));
}

TEST(Catalog, N6HasBothClasses) {
  auto cat = connected_cubic_graphs(6, 1);
  ASSERT_EQ(cat.size(), 2u);
  std::set<CanonicalCode> codes;
  for (const Graph& g : cat) codes.insert(canonical_code(g));
  EXPECT_TRUE(codes.count(canonical_code(k33())));
  EXPECT_TRUE(codes.count(canonical_code(prism(3))));
}

TEST(Catalog, N8MatchesOeis) {
  auto cat = connected_cubic_graphs(8, 2);
  EXPECT_EQ(cat.size(), 5u);
  for (const Graph& g : cat) {
    EXPECT_TRUE(g.is_regular(3));
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.num_nodes(), 8u);
  }
}

TEST(Catalog, N10MatchesOeisAndContainsPetersen) {
  auto cat = connected_cubic_graphs(10, 3);
  EXPECT_EQ(cat.size(), 19u);
  bool has_petersen = false;
  for (const Graph& g : cat)
    if (is_isomorphic(g, petersen())) has_petersen = true;
  EXPECT_TRUE(has_petersen);
}

TEST(Catalog, AllMembersDistinct) {
  auto cat = connected_cubic_graphs(8, 4);
  std::set<CanonicalCode> codes;
  for (const Graph& g : cat) codes.insert(canonical_code(g));
  EXPECT_EQ(codes.size(), cat.size());
}

TEST(Catalog, DeterministicPerSeed) {
  auto a = connected_cubic_graphs(6, 42);
  auto b = connected_cubic_graphs(6, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Catalog, RejectsOddOrTiny) {
  EXPECT_THROW(connected_cubic_graphs(5, 1), std::invalid_argument);
  EXPECT_THROW(connected_cubic_graphs(2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace uesr::graph
