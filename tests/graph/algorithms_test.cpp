#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace uesr::graph {
namespace {

TEST(Bfs, PathDistances) {
  Graph g = path(5);
  auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, DisconnectedUnreachable) {
  Graph g = from_edges(4, {{0, 1}, {2, 3}});
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, SelfDistanceZero) {
  Graph g = cycle(6);
  EXPECT_EQ(bfs_distances(g, 3)[3], 0u);
}

TEST(Bfs, CycleWrapsAround) {
  Graph g = cycle(8);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[5], 3u);
  EXPECT_EQ(d[7], 1u);
}

TEST(Bfs, BadSourceThrows) {
  Graph g = path(3);
  EXPECT_THROW(bfs_distances(g, 3), std::invalid_argument);
}

TEST(HasPath, Basics) {
  Graph g = from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(has_path(g, 0, 1));
  EXPECT_TRUE(has_path(g, 0, 0));
  EXPECT_FALSE(has_path(g, 0, 3));
}

TEST(Components, TwoComponents) {
  Graph g = from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(num_components(g), 2u);
}

TEST(Components, ComponentOfContainsExactlyReachable) {
  Graph g = from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  auto c = component_of(g, 0);
  EXPECT_EQ(c.size(), 3u);
  auto c2 = component_of(g, 5);
  EXPECT_EQ(c2.size(), 1u);
}

TEST(Components, IsolatedVerticesAreComponents) {
  Graph g = GraphBuilder(3).build();
  EXPECT_EQ(num_components(g), 3u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, EmptyGraphConnected) {
  Graph g = GraphBuilder(0).build();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(num_components(g), 0u);
}

TEST(Components, LoopsDoNotConnectAnythingNew) {
  GraphBuilder b(2);
  b.add_half_loop(0);
  b.add_edge(0, 0);
  Graph g = std::move(b).build();
  EXPECT_EQ(num_components(g), 2u);
}

TEST(Diameter, PathAndCycle) {
  EXPECT_EQ(component_diameter(path(10), 0), 9u);
  EXPECT_EQ(component_diameter(cycle(10), 0), 5u);
  EXPECT_EQ(component_diameter(complete(7), 0), 1u);
}

TEST(Diameter, OnlyCountsOwnComponent) {
  Graph g = from_edges(5, {{0, 1}, {2, 3}, {3, 4}});
  EXPECT_EQ(component_diameter(g, 0), 1u);
  EXPECT_EQ(component_diameter(g, 2), 2u);
}

TEST(Bipartite, Classification) {
  EXPECT_TRUE(is_bipartite(path(6)));
  EXPECT_TRUE(is_bipartite(cycle(8)));
  EXPECT_FALSE(is_bipartite(cycle(7)));
  EXPECT_TRUE(is_bipartite(complete_bipartite(3, 4)));
  EXPECT_FALSE(is_bipartite(complete(3)));
  EXPECT_TRUE(is_bipartite(hypercube(4)));
}

TEST(Bipartite, LoopsBreakBipartiteness) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_half_loop(0);
  Graph g = std::move(b).build();
  EXPECT_FALSE(is_bipartite(g));
}

TEST(Bfs, HandlesParallelEdgesAndLoops) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 1);
  b.add_half_loop(2);
  b.add_edge(1, 2);
  Graph g = std::move(b).build();
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
}

}  // namespace
}  // namespace uesr::graph
