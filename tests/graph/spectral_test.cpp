#include "graph/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/generators.h"

namespace uesr::graph {
namespace {

TEST(Spectral, AdjacencyMatrixCountsPorts) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 0);     // full loop: 2 on the diagonal
  b.add_half_loop(1);   // half loop: 1 on the diagonal
  Graph g = std::move(b).build();
  auto m = adjacency_matrix(g);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

TEST(Spectral, JacobiDiagonalizesKnownMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix m;
  m.n = 2;
  m.a = {2, 1, 1, 2};
  auto eig = symmetric_eigenvalues(m);
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_NEAR(eig[0], 3.0, 1e-10);
  EXPECT_NEAR(eig[1], 1.0, 1e-10);
}

TEST(Spectral, CompleteGraphSpectrum) {
  // Normalized adjacency of K_n: eigenvalue 1 once, -1/(n-1) with
  // multiplicity n-1.
  const int n = 8;
  auto eig = symmetric_eigenvalues(normalized_adjacency(complete(n)));
  EXPECT_NEAR(eig[0], 1.0, 1e-9);
  for (int i = 1; i < n; ++i) EXPECT_NEAR(eig[i], -1.0 / (n - 1), 1e-9);
  EXPECT_NEAR(lambda_exact(complete(n)), 1.0 / (n - 1), 1e-9);
}

TEST(Spectral, CycleSpectrum) {
  // C_n normalized eigenvalues are cos(2 pi k / n).
  const int n = 12;
  auto eig = symmetric_eigenvalues(normalized_adjacency(cycle(n)));
  EXPECT_NEAR(eig[0], 1.0, 1e-9);
  EXPECT_NEAR(eig[1], std::cos(2 * std::numbers::pi / n), 1e-9);
  // Bipartite (even cycle): -1 is an eigenvalue, so lambda = 1.
  EXPECT_NEAR(lambda_exact(cycle(n)), 1.0, 1e-9);
}

TEST(Spectral, OddCycleLambdaBelowOne) {
  // Odd cycle: eigenvalues cos(2 pi k / n); the most negative one,
  // -cos(pi/n), dominates in absolute value.
  const int n = 13;
  double l = lambda_exact(cycle(n));
  EXPECT_LT(l, 1.0);
  EXPECT_NEAR(l, std::cos(std::numbers::pi / n), 1e-9);
}

TEST(Spectral, HypercubeSpectrum) {
  // Q_d normalized eigenvalues are 1 - 2k/d.
  auto eig = symmetric_eigenvalues(normalized_adjacency(hypercube(3)));
  EXPECT_NEAR(eig[0], 1.0, 1e-9);
  EXPECT_NEAR(eig.back(), -1.0, 1e-9);
  EXPECT_NEAR(lambda_exact(hypercube(3)), 1.0, 1e-9);  // bipartite
}

TEST(Spectral, PetersenLambda) {
  // Petersen adjacency eigenvalues: 3, 1 (x5), -2 (x4) -> normalized 1/3
  // second, 2/3 most negative; lambda = 2/3.
  EXPECT_NEAR(lambda_exact(petersen()), 2.0 / 3.0, 1e-9);
}

TEST(Spectral, K33Bipartite) {
  EXPECT_NEAR(lambda_exact(k33()), 1.0, 1e-9);
}

TEST(Spectral, PowerIterationMatchesExact) {
  for (const Graph& g : {petersen(), complete(9), cycle(15), prism(6)}) {
    double exact = lambda_exact(g);
    double power = lambda_power(g, 3000);
    EXPECT_NEAR(power, exact, 5e-3) << describe(g);
  }
}

TEST(Spectral, PowerIterationLargeGraph) {
  Graph g = random_connected_regular(400, 3, 7);
  double l = lambda_power(g, 600);
  // Random cubic graphs are near-Ramanujan: lambda ~ 2*sqrt(2)/3 ≈ 0.9428.
  EXPECT_GT(l, 0.85);
  EXPECT_LT(l, 0.99);
}

TEST(Spectral, Validation) {
  EXPECT_THROW(lambda_exact(GraphBuilder(1).build()), std::invalid_argument);
  EXPECT_THROW(lambda_exact(from_edges(3, {{0, 1}})), std::invalid_argument);
  EXPECT_THROW(normalized_adjacency(GraphBuilder(2).build()),
               std::invalid_argument);
}

TEST(Spectral, LoopsLowerLambdaOfCycle) {
  // Adding a half loop to every vertex of an even cycle destroys
  // bipartiteness and pulls lambda strictly below 1.
  GraphBuilder b(8);
  for (NodeId i = 0; i < 8; ++i) b.add_edge(i, (i + 1) % 8);
  for (NodeId i = 0; i < 8; ++i) b.add_half_loop(i);
  Graph g = std::move(b).build();
  EXPECT_LT(lambda_exact(g), 1.0 - 1e-6);
}

}  // namespace
}  // namespace uesr::graph
