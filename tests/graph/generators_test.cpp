#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace uesr::graph {
namespace {

TEST(Generators, Path) {
  Graph g = path(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  Graph single = path(1);
  EXPECT_EQ(single.num_edges(), 0u);
}

TEST(Generators, Cycle) {
  Graph g = cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(cycle(2), std::invalid_argument);
}

TEST(Generators, Complete) {
  Graph g = complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_regular(5));
  EXPECT_EQ(component_diameter(g, 0), 1u);
}

TEST(Generators, CompleteBipartite) {
  Graph g = complete_bipartite(2, 5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, Star) {
  Graph g = star(9);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.degree(0), 9u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, Grid) {
  Graph g = grid(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4 + 3u * 5);  // horiz + vert
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);       // corner
  EXPECT_EQ(component_diameter(g, 0), 7u);
}

TEST(Generators, Torus) {
  Graph g = torus(4, 4);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Hypercube) {
  Graph g = hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_TRUE(g.is_regular(5));
  EXPECT_EQ(component_diameter(g, 0), 5u);
}

TEST(Generators, BinaryTree) {
  Graph g = binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(14), 1u);
}

TEST(Generators, Lollipop) {
  Graph g = lollipop(5, 10);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 10u + 10u);
  EXPECT_EQ(g.degree(14), 1u);  // path tip
}

TEST(Generators, Barbell) {
  Graph g = barbell(4, 3);
  EXPECT_EQ(g.num_nodes(), 11u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(component_diameter(g, 0), 6u);
}

TEST(Generators, NamedCubicGraphsAreCubic) {
  for (const Graph& g :
       {petersen(), k4(), k33(), prism(3), prism(5), moebius_kantor(),
        cube_q3()}) {
    EXPECT_TRUE(g.is_regular(3)) << describe(g);
    EXPECT_TRUE(is_connected(g)) << describe(g);
  }
}

TEST(Generators, PetersenProperties) {
  Graph g = petersen();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(component_diameter(g, 0), 2u);
  EXPECT_FALSE(is_bipartite(g));  // odd girth 5
}

TEST(Generators, MoebiusKantorProperties) {
  Graph g = moebius_kantor();
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 24u);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, GnpDeterministicPerSeed) {
  Graph a = gnp(30, 0.2, 5), b = gnp(30, 0.2, 5), c = gnp(30, 0.2, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  Graph g = gnp(100, 0.3, 17);
  double expected = 0.3 * 100 * 99 / 2.0;
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.8);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.2);
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gnp(20, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gnp(20, 1.0, 1).num_edges(), 190u);
  EXPECT_THROW(gnp(10, 1.5, 1), std::invalid_argument);
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = random_tree(40, seed);
    EXPECT_EQ(g.num_edges(), 39u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomTreeSmall) {
  EXPECT_EQ(random_tree(1, 0).num_nodes(), 1u);
  EXPECT_EQ(random_tree(2, 0).num_edges(), 1u);
  EXPECT_EQ(random_tree(3, 5).num_edges(), 2u);
}

TEST(Generators, RandomRegularIsSimpleAndRegular) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = random_regular(20, 3, seed);
    EXPECT_TRUE(g.is_regular(3));
    // Simple: no loops, no parallel edges.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_FALSE(g.adjacent(v, v));
      auto nb = g.neighbors(v);
      EXPECT_EQ(nb.size(), 3u);
    }
  }
}

TEST(Generators, RandomRegularParityCheck) {
  EXPECT_THROW(random_regular(5, 3, 1), std::invalid_argument);
  EXPECT_THROW(random_regular(4, 4, 1), std::invalid_argument);
}

TEST(Generators, RandomConnectedRegularIsConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed)
    EXPECT_TRUE(is_connected(random_connected_regular(30, 3, seed)));
}

TEST(Generators, RandomCubicMultigraphRegularConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = random_cubic_multigraph(10, seed);
    EXPECT_TRUE(g.is_regular(3));
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, ConnectedGnp) {
  Graph g = connected_gnp(60, 0.15, 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SwitchRegularIsSimpleAndRegular) {
  for (Port d : {Port{3}, Port{8}, Port{16}}) {
    Graph g = random_regular_switch(64, d, 7 + d);
    EXPECT_TRUE(g.is_regular(d)) << "d=" << d;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_FALSE(g.adjacent(v, v));
      EXPECT_EQ(g.neighbors(v).size(), d);  // no parallel edges
    }
  }
}

TEST(Generators, SwitchRegularHandlesDenseDegrees) {
  // The configuration model rejects ~e^{-(d^2-1)/4} of samples: hopeless
  // at d = 16.  Switching must still succeed.
  Graph g = random_connected_regular_switch(48, 16, 3);
  EXPECT_TRUE(g.is_regular(16));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SwitchRegularDeterministicAndSeedSensitive) {
  Graph a = random_regular_switch(30, 4, 5);
  Graph b = random_regular_switch(30, 4, 5);
  Graph c = random_regular_switch(30, 4, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Generators, SwitchRegularActuallyRandomizes) {
  // With zero switches we get the deterministic circulant; the default
  // switch budget must move far away from it.
  Graph circulant = random_regular_switch(40, 4, 1, 1);
  Graph mixed = random_regular_switch(40, 4, 1);
  std::size_t common = 0;
  for (NodeId v = 0; v < 40; ++v)
    for (NodeId w : circulant.neighbors(v))
      if (mixed.adjacent(v, w)) ++common;
  EXPECT_LT(common, 120u);  // < 75% of the 160 directed adjacencies survive
}

TEST(Generators, SwitchRegularParityChecked) {
  EXPECT_THROW(random_regular_switch(5, 3, 1), std::invalid_argument);
  EXPECT_THROW(random_regular_switch(4, 4, 1), std::invalid_argument);
}

TEST(Generators, DisjointCopiesPortIsomorphic) {
  Graph cluster = petersen();
  const NodeId n = cluster.num_nodes();
  Graph sea = disjoint_copies(cluster, 7);
  EXPECT_EQ(sea.num_nodes(), 7 * n);
  EXPECT_EQ(sea.num_edges(), 7 * cluster.num_edges());
  EXPECT_TRUE(sea.is_cubic());
  for (NodeId c = 0; c < 7; ++c)
    for (NodeId v = 0; v < n; ++v)
      for (Port p = 0; p < cluster.degree(v); ++p) {
        HalfEdge want = cluster.rotate(v, p);
        EXPECT_EQ(sea.rotate(c * n + v, p),
                  (HalfEdge{c * n + want.node, want.port}));
      }
}

TEST(Generators, DisjointCopiesSingleCopyIsIdentity) {
  Graph cluster = barbell(4, 2);  // non-regular, exercises mixed degrees
  EXPECT_EQ(disjoint_copies(cluster, 1), cluster);
  EXPECT_THROW(disjoint_copies(cluster, 0), std::invalid_argument);
  EXPECT_THROW(disjoint_copies(GraphBuilder(0).build(), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace uesr::graph
